// Edge-case and failure-injection tests across the pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "conngen/fmeasure.hpp"
#include "conngen/packet_trace.hpp"
#include "core/estimation.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "core/fit.hpp"
#include "core/priors.hpp"
#include "dataset/datasets.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "test_util.hpp"

namespace ictm {
namespace {

// ---- single-bin and tiny-network extremes -------------------------------

TEST(EdgeCases, FitOnSingleBinSeries) {
  stats::Rng rng(1);
  traffic::TrafficMatrixSeries s(4, 1, 300.0);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) s(0, i, j) = rng.uniform(1.0, 9.0);
  const core::StableFPFit fit = core::FitStableFP(s);
  EXPECT_GT(fit.sweeps, 0u);
  EXPECT_GE(fit.f, 0.0);
  EXPECT_NEAR(linalg::Sum(fit.preference), 1.0, 1e-9);
}

TEST(EdgeCases, FitOnTwoNodeNetwork) {
  // n=2 is the smallest meaningful network (one OD pair each way plus
  // self loops).
  stats::Rng rng(2);
  linalg::Matrix act(2, 10);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t t = 0; t < 10; ++t)
      act(i, t) = rng.uniform(1.0, 5.0) *
                  (1.0 + 0.3 * std::sin(0.7 * static_cast<double>(t) +
                                        static_cast<double>(i)));
  const auto series =
      core::EvaluateStableFP(0.3, act, linalg::Vector{0.7, 0.3});
  const core::StableFPFit fit = core::FitStableFP(series);
  EXPECT_LT(fit.objective() / 10.0, 0.05);
}

TEST(EdgeCases, EstimationOnTinyTopology) {
  // 3-node ring: only 6 links, heavily under-constrained.
  const topology::Graph g = topology::MakeRing(3);
  const linalg::Matrix r = topology::BuildRoutingMatrix(g);
  stats::Rng rng(3);
  const linalg::Matrix truth = test::RandomMatrix(3, 3, rng, 1.0, 5.0);
  const linalg::Vector loads = topology::ComputeLinkLoads(r, truth);
  linalg::Vector in(3, 0.0), out(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      in[i] += truth(i, j);
      out[j] += truth(i, j);
    }
  const linalg::Matrix est = core::EstimateTmBin(
      r, loads, core::GravityPredict(in, out), in, out);
  EXPECT_LE(core::RelL2Temporal(truth, est), 1.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_GE(est(i, j), 0.0);
}

// ---- sparse / degenerate traffic -----------------------------------------

TEST(EdgeCases, FitToleratesSparseTm) {
  // Many exact zeros (most OD pairs silent): the NNLS steps must not
  // produce negatives or NaNs.
  traffic::TrafficMatrixSeries s(6, 8, 300.0);
  stats::Rng rng(4);
  for (std::size_t t = 0; t < 8; ++t) {
    s(t, 0, 1) = rng.uniform(5.0, 10.0);
    s(t, 1, 0) = rng.uniform(1.0, 3.0);
    s(t, 2, 3) = rng.uniform(0.5, 1.0);
  }
  const core::StableFPFit fit = core::FitStableFP(s);
  for (double p : fit.preference) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
  }
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t t = 0; t < 8; ++t)
      EXPECT_TRUE(std::isfinite(fit.activitySeries(i, t)));
}

TEST(EdgeCases, GravityOnOneSidedMarginals) {
  // A node with ingress but zero egress and vice versa.
  const linalg::Matrix tm =
      core::GravityPredict({10.0, 0.0}, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(tm(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(tm(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(tm(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(tm(1, 1), 0.0);
}

TEST(EdgeCases, StableFPriorWithZeroMarginalNode) {
  // One node completely silent: closed forms produce zero estimates
  // for it, and the prior stays valid.
  core::MarginalSeries m{linalg::Matrix(3, 2, 0.0),
                         linalg::Matrix(3, 2, 0.0)};
  m.ingress(0, 0) = 10;
  m.egress(1, 0) = 10;
  m.ingress(0, 1) = 8;
  m.egress(1, 1) = 8;
  const auto prior = core::StableFPrior(0.25, m);
  EXPECT_TRUE(prior.isValid());
  // Silent node 2 attracts no traffic in the prior.
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_DOUBLE_EQ(prior(t, 2, 2), 0.0);
  }
}

// ---- packet-trace degeneracies --------------------------------------------

TEST(EdgeCases, TraceWithAllTrafficOneDirectionInitiated) {
  conngen::TraceSimConfig cfg;
  cfg.durationSec = 600.0;
  cfg.connectionsPerSec = 10.0;
  cfg.fracInitiatedAtA = 1.0;  // every connection initiated at A
  stats::Rng rng(5);
  const auto trace = conngen::SimulatePacketTraces(cfg, rng);
  const auto m = conngen::MeasureForwardFraction(trace, 300.0);
  // f(A->B) is measurable; f(B->A) has no B-initiated traffic, so all
  // bins are NaN and MeanFiniteF throws.
  EXPECT_NO_THROW(conngen::MeanFiniteF(m.fAB));
  EXPECT_THROW(conngen::MeanFiniteF(m.fBA), ictm::Error);
}

TEST(EdgeCases, TraceShorterThanOneBin) {
  conngen::TraceSimConfig cfg;
  cfg.durationSec = 60.0;
  cfg.connectionsPerSec = 20.0;
  cfg.warmupSec = 10.0;
  stats::Rng rng(6);
  const auto trace = conngen::SimulatePacketTraces(cfg, rng);
  const auto m = conngen::MeasureForwardFraction(trace, 300.0);
  EXPECT_EQ(m.fAB.size(), 1u);  // single partial bin
}

TEST(EdgeCases, ZeroWarmupMeansNoUnknownTraffic) {
  conngen::TraceSimConfig cfg;
  cfg.durationSec = 600.0;
  cfg.connectionsPerSec = 10.0;
  cfg.warmupSec = 0.0;
  stats::Rng rng(7);
  const auto trace = conngen::SimulatePacketTraces(cfg, rng);
  const auto m = conngen::MeasureForwardFraction(trace, 300.0);
  EXPECT_DOUBLE_EQ(m.unknownByteFraction, 0.0);
}

// ---- dataset configuration edge cases --------------------------------------

TEST(EdgeCases, DatasetWithNoJitterOrNoise) {
  dataset::DatasetConfig cfg;
  cfg.seed = 8;
  cfg.peakActivityBytes = 5e7;
  cfg.pairFJitterSigma = 0.0;
  cfg.netflowSampling = false;
  const dataset::Dataset d =
      dataset::MakeSmallDataset(6, 14, 300.0, cfg);
  EXPECT_TRUE(d.truth.isValid());
  // With no jitter, the realized f matches the mix expectation well.
  EXPECT_NEAR(d.realizedForwardFraction,
              conngen::DefaultMix2006().expectedForwardFraction(), 0.03);
}

TEST(EdgeCases, PreferenceCapDisabled) {
  dataset::DatasetConfig cfg;
  cfg.seed = 9;
  cfg.peakActivityBytes = 5e7;
  cfg.preferenceCapShare = 1.0;  // disabled
  const dataset::Dataset d =
      dataset::MakeSmallDataset(6, 14, 300.0, cfg);
  EXPECT_NEAR(linalg::Sum(d.truePreference), 1.0, 1e-9);
}

TEST(EdgeCases, DownsampleStrideLargerThanSeries) {
  traffic::TrafficMatrixSeries s(2, 5, 300.0);
  s(0, 0, 1) = 3.0;
  const auto ds = s.downsample(10);
  EXPECT_EQ(ds.binCount(), 1u);
  EXPECT_DOUBLE_EQ(ds(0, 0, 1), 3.0);
}

// ---- numerical extremes -----------------------------------------------------

TEST(EdgeCases, FitInvariantToGlobalScale) {
  // Scaling all traffic by 1e6 must not change f or P.
  stats::Rng rng(10);
  linalg::Matrix act(4, 12);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t t = 0; t < 12; ++t)
      act(i, t) = rng.uniform(1.0, 5.0) *
                  (1.0 + 0.4 * std::sin(0.5 * static_cast<double>(t) +
                                        1.3 * static_cast<double>(i)));
  const linalg::Vector pref{0.4, 0.3, 0.2, 0.1};
  const auto small = core::EvaluateStableFP(0.3, act, pref);
  const auto big = core::EvaluateStableFP(0.3, act * 1e6, pref);
  const auto fitSmall = core::FitStableFP(small);
  const auto fitBig = core::FitStableFP(big);
  EXPECT_NEAR(fitSmall.f, fitBig.f, 1e-6);
  test::ExpectVectorNear(fitSmall.preference, fitBig.preference, 1e-6);
}

TEST(EdgeCases, RelL2WithHugeValues) {
  linalg::Matrix a(2, 2, 1e300);
  linalg::Matrix b(2, 2, 1e300);
  b(0, 0) = 0.5e300;
  const double err = core::RelL2Temporal(a, b);
  EXPECT_TRUE(std::isfinite(err));
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 1.0);
}

}  // namespace
}  // namespace ictm
