// Tests for the IC model family, including the paper's Sec. 3 worked
// example (Fig. 2) and the DoF accounting of Sec. 5.1.
#include <gtest/gtest.h>

#include "core/gravity.hpp"
#include "core/ic_model.hpp"
#include "topology/routing.hpp"
#include "test_util.hpp"

namespace ictm::core {
namespace {

TEST(IcParameters, ValidationCatchesBadInputs) {
  IcParameters p{0.25, {1.0, 2.0}, {0.5, 0.5}};
  EXPECT_NO_THROW(p.validate());
  p.f = 0.0;
  EXPECT_THROW(p.validate(), ictm::Error);
  p = IcParameters{0.25, {1.0, -1.0}, {0.5, 0.5}};
  EXPECT_THROW(p.validate(), ictm::Error);
  p = IcParameters{0.25, {1.0, 1.0}, {0.0, 0.0}};
  EXPECT_THROW(p.validate(), ictm::Error);
  p = IcParameters{0.25, {1.0}, {0.5, 0.5}};
  EXPECT_THROW(p.validate(), ictm::Error);
}

TEST(SimplifiedIc, MatchesHandComputedTwoNodeCase) {
  // n=2, f=0.25, A=(100, 0), P=(0.5, 0.5) normalised.
  // X_00 = f*A_0*0.5 + (1-f)*A_0*0.5 = 50.
  // X_01 = f*A_0*0.5 + (1-f)*A_1*0.5 = 12.5.
  // X_10 = f*A_1*0.5 + (1-f)*A_0*0.5 = 37.5.
  IcParameters p{0.25, {100.0, 0.0}, {1.0, 1.0}};
  const linalg::Matrix tm = EvaluateSimplifiedIc(p);
  EXPECT_DOUBLE_EQ(tm(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(tm(0, 1), 12.5);
  EXPECT_DOUBLE_EQ(tm(1, 0), 37.5);
  EXPECT_DOUBLE_EQ(tm(1, 1), 0.0);
}

TEST(SimplifiedIc, TotalTrafficEqualsTotalActivity) {
  // Summing Eq. 2 over all (i, j) gives sum_i A_i: every activity byte
  // appears exactly once in the TM.
  stats::Rng rng(1);
  IcParameters p{0.3, test::RandomPositiveVector(6, rng),
                 test::RandomPositiveVector(6, rng)};
  const linalg::Matrix tm = EvaluateSimplifiedIc(p);
  EXPECT_NEAR(tm.sum(), linalg::Sum(p.activity), 1e-9);
}

TEST(SimplifiedIc, PreferenceScaleInvariance) {
  stats::Rng rng(2);
  IcParameters p{0.3, test::RandomPositiveVector(5, rng),
                 test::RandomPositiveVector(5, rng)};
  IcParameters scaled = p;
  scaled.preference = linalg::Scale(p.preference, 17.0);
  test::ExpectMatrixNear(EvaluateSimplifiedIc(p),
                         EvaluateSimplifiedIc(scaled), 1e-9);
}

TEST(SimplifiedIc, MirrorSymmetry) {
  // (f, A, P) and (1-f, cP, A/c) produce the same TM when A and P swap
  // roles — the identifiability caveat documented in FitOptions.
  stats::Rng rng(3);
  const linalg::Vector a = test::RandomPositiveVector(4, rng);
  const linalg::Vector p = test::RandomPositiveVector(4, rng);
  const double sumA = linalg::Sum(a);
  const double sumP = linalg::Sum(p);
  IcParameters orig{0.3, a, p};
  // Mirror: activity' = P * sumA (to preserve total traffic),
  // preference' = A (scale irrelevant), f' = 1 - f.
  IcParameters mirror{0.7, linalg::Scale(p, sumA / sumP), a};
  test::ExpectMatrixNear(EvaluateSimplifiedIc(orig),
                         EvaluateSimplifiedIc(mirror), 1e-9);
}

TEST(GeneralIc, ReducesToSimplifiedWhenFConstant) {
  stats::Rng rng(4);
  const linalg::Vector a = test::RandomPositiveVector(5, rng);
  const linalg::Vector p = test::RandomPositiveVector(5, rng);
  const linalg::Matrix fMat(5, 5, 0.3);
  test::ExpectMatrixNear(EvaluateGeneralIc(fMat, a, p),
                         EvaluateSimplifiedIc({0.3, a, p}), 1e-12);
}

TEST(GeneralIc, AsymmetricFChangesOnlyAffectedPairs) {
  linalg::Vector a{10.0, 5.0, 2.0};
  linalg::Vector p{0.5, 0.3, 0.2};
  linalg::Matrix fMat(3, 3, 0.25);
  const linalg::Matrix base = EvaluateGeneralIc(fMat, a, p);
  fMat(0, 1) = 0.9;  // affects X_01 (forward term) and X_10 (reverse)
  const linalg::Matrix changed = EvaluateGeneralIc(fMat, a, p);
  EXPECT_NE(changed(0, 1), base(0, 1));
  EXPECT_NE(changed(1, 0), base(1, 0));
  EXPECT_DOUBLE_EQ(changed(2, 2), base(2, 2));
  EXPECT_DOUBLE_EQ(changed(0, 2), base(0, 2));
}

TEST(GeneralIc, RejectsOutOfRangeF) {
  linalg::Vector a{1.0, 1.0};
  linalg::Vector p{0.5, 0.5};
  linalg::Matrix fMat(2, 2, 1.5);
  EXPECT_THROW(EvaluateGeneralIc(fMat, a, p), ictm::Error);
}

TEST(StableFP, SeriesEvaluationMatchesPerBin) {
  stats::Rng rng(5);
  const std::size_t n = 4, bins = 3;
  linalg::Matrix activity(n, bins);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t t = 0; t < bins; ++t)
      activity(i, t) = rng.uniform(1.0, 5.0);
  const linalg::Vector pref = test::RandomPositiveVector(n, rng);
  const auto series = EvaluateStableFP(0.25, activity, pref);
  for (std::size_t t = 0; t < bins; ++t) {
    IcParameters p{0.25, activity.col(t), pref};
    test::ExpectMatrixNear(series.bin(t), EvaluateSimplifiedIc(p), 1e-12);
  }
}

TEST(ActivityOperator, MatchesModelEvaluation) {
  // Phi * A must equal the flattened simplified IC output (Eq. 7).
  stats::Rng rng(6);
  const linalg::Vector pref = test::RandomPositiveVector(5, rng);
  const linalg::Vector act = test::RandomPositiveVector(5, rng);
  const linalg::Matrix phi = BuildActivityOperator(0.3, pref);
  const linalg::Vector x = phi * act;
  const linalg::Matrix tm = EvaluateSimplifiedIc({0.3, act, pref});
  test::ExpectVectorNear(x, topology::FlattenTm(tm), 1e-12);
}

TEST(ActivityOperator, ColumnSumsAreOne) {
  // Each unit of activity lands somewhere in the TM: the operator's
  // columns each sum to f + (1 - f) = 1.
  stats::Rng rng(7);
  const linalg::Vector pref = test::RandomPositiveVector(6, rng);
  const linalg::Matrix phi = BuildActivityOperator(0.27, pref);
  for (std::size_t k = 0; k < 6; ++k) {
    double colSum = 0.0;
    for (std::size_t r = 0; r < phi.rows(); ++r) colSum += phi(r, k);
    EXPECT_NEAR(colSum, 1.0, 1e-12);
  }
}

TEST(DegreesOfFreedomTest, MatchesPaperSection51) {
  // Paper: gravity 2nt-1, time-varying 3nt, stable-f 2nt+1,
  // stable-fP nt+n+1.
  const std::size_t n = 22, t = 2016;
  EXPECT_EQ(DegreesOfFreedom::Gravity(n, t), 2 * n * t - 1);
  EXPECT_EQ(DegreesOfFreedom::TimeVaryingIc(n, t), 3 * n * t);
  EXPECT_EQ(DegreesOfFreedom::StableFIc(n, t), 2 * n * t + 1);
  EXPECT_EQ(DegreesOfFreedom::StableFPIc(n, t), n * t + n + 1);
  // The headline claim: stable-fP has about half the gravity DoF.
  EXPECT_LT(DegreesOfFreedom::StableFPIc(n, t),
            DegreesOfFreedom::Gravity(n, t));
}

// ---- the Sec. 3 / Fig. 2 worked example --------------------------------

TEST(Fig2Example, MatrixMarginalsMatchPaper) {
  const linalg::Matrix tm = BuildFig2ExampleTm();
  // Row sums (X_i*): A=403, B=109, C=106; total 618.
  double rowA = 0, rowB = 0, rowC = 0;
  for (std::size_t j = 0; j < 3; ++j) {
    rowA += tm(0, j);
    rowB += tm(1, j);
    rowC += tm(2, j);
  }
  EXPECT_DOUBLE_EQ(rowA, 403.0);
  EXPECT_DOUBLE_EQ(rowB, 109.0);
  EXPECT_DOUBLE_EQ(rowC, 106.0);
  EXPECT_DOUBLE_EQ(tm.sum(), 618.0);
}

TEST(Fig2Example, ConditionalProbabilitiesMatchPaper) {
  // P[E=A|I=A] ~ 0.50, P[E=A|I=B] ~ 0.93, P[E=A|I=C] ~ 0.95,
  // P[E=A] ~ 0.65 — the packet-independence violation.
  const linalg::Matrix tm = BuildFig2ExampleTm();
  EXPECT_NEAR(ConditionalEgressProbability(tm, 0, 0), 200.0 / 403.0, 1e-12);
  EXPECT_NEAR(ConditionalEgressProbability(tm, 1, 0), 102.0 / 109.0, 1e-12);
  EXPECT_NEAR(ConditionalEgressProbability(tm, 2, 0), 101.0 / 106.0, 1e-12);
  EXPECT_NEAR(EgressProbability(tm, 0), 403.0 / 618.0, 1e-12);
}

TEST(Fig2Example, GravityModelCannotReproduceIt) {
  // Under gravity all conditional egress probabilities are equal; on
  // the Fig. 2 matrix they differ wildly.
  const linalg::Matrix tm = BuildFig2ExampleTm();
  const double pAA = ConditionalEgressProbability(tm, 0, 0);
  const double pBA = ConditionalEgressProbability(tm, 1, 0);
  EXPECT_GT(pBA - pAA, 0.4);
  // And the gravity reconstruction has substantial error.
  const linalg::Matrix grav =
      GravityPredict(linalg::Vector{403, 109, 106},
                     linalg::Vector{403, 109, 106});
  EXPECT_GT((tm - grav).frobeniusNorm() / tm.frobeniusNorm(), 0.2);
}

TEST(Fig2Example, IsExactlyAnIcModelInstance) {
  // The example *is* an IC instance: equal fwd/rev volumes (f = 1/2),
  // uniform preference, activities 600/12/6 bytes... in connection
  // counts: A initiates 3x100 both ways = 600 total, etc.
  IcParameters p{0.5, {600.0, 12.0, 6.0}, {1.0, 1.0, 1.0}};
  test::ExpectMatrixNear(EvaluateSimplifiedIc(p), BuildFig2ExampleTm(),
                         1e-9);
}

TEST(ConditionalProbability, ErrorsOnDegenerateInputs) {
  linalg::Matrix zero(2, 2, 0.0);
  EXPECT_THROW(ConditionalEgressProbability(zero, 0, 0), ictm::Error);
  EXPECT_THROW(EgressProbability(zero, 0), ictm::Error);
  EXPECT_THROW(ConditionalEgressProbability(linalg::Matrix(2, 3), 0, 0),
               ictm::Error);
}

}  // namespace
}  // namespace ictm::core
