// Tests for the simulated dataset builders (the D1/D2 substitutes) and
// the Sec. 5.5 synthetic TM generator.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/synthesis.hpp"
#include "dataset/datasets.hpp"
#include "timeseries/diurnal.hpp"
#include "test_util.hpp"

namespace ictm::dataset {
namespace {

DatasetConfig FastConfig(std::uint64_t seed = 1) {
  DatasetConfig cfg;
  cfg.seed = seed;
  cfg.peakActivityBytes = 1e8;  // keep tests quick
  return cfg;
}

TEST(Datasets, SmallDatasetShapesAndValidity) {
  const Dataset d = MakeSmallDataset(8, 21, 300.0, FastConfig());
  EXPECT_EQ(d.truth.nodeCount(), 8u);
  EXPECT_EQ(d.truth.binCount(), 21u);
  EXPECT_EQ(d.measured.nodeCount(), 8u);
  EXPECT_TRUE(d.truth.isValid());
  EXPECT_TRUE(d.measured.isValid());
  EXPECT_EQ(d.truePreference.size(), 8u);
  EXPECT_NEAR(linalg::Sum(d.truePreference), 1.0, 1e-9);
  EXPECT_THROW(MakeSmallDataset(8, 3, 300.0, FastConfig()), ictm::Error);
}

TEST(Datasets, DeterministicGivenSeed) {
  const Dataset a = MakeSmallDataset(6, 14, 300.0, FastConfig(5));
  const Dataset b = MakeSmallDataset(6, 14, 300.0, FastConfig(5));
  EXPECT_DOUBLE_EQ(a.truth.grandTotal(), b.truth.grandTotal());
  EXPECT_DOUBLE_EQ(a.measured.grandTotal(), b.measured.grandTotal());
  const Dataset c = MakeSmallDataset(6, 14, 300.0, FastConfig(6));
  EXPECT_NE(a.truth.grandTotal(), c.truth.grandTotal());
}

TEST(Datasets, RealizedForwardFractionInPaperBand) {
  const Dataset d = MakeSmallDataset(10, 21, 300.0, FastConfig(2));
  EXPECT_GT(d.realizedForwardFraction, 0.15);
  EXPECT_LT(d.realizedForwardFraction, 0.40);
}

TEST(Datasets, PreferenceCapRespected) {
  DatasetConfig cfg = FastConfig(3);
  cfg.preferenceCapShare = 0.25;
  const Dataset d = MakeSmallDataset(10, 14, 300.0, cfg);
  for (double p : d.truePreference) {
    EXPECT_LE(p, 0.25 + 1e-9);
    EXPECT_GE(p, 0.0);
  }
  EXPECT_NEAR(linalg::Sum(d.truePreference), 1.0, 1e-9);
}

TEST(Datasets, MeasurementNoiseKeepsTotalsClose) {
  DatasetConfig noisy = FastConfig(4);
  noisy.measurementNoiseSigma = 0.5;
  const Dataset d = MakeSmallDataset(8, 14, 300.0, noisy);
  // Mean-one lognormal noise: totals should stay within ~15%.
  EXPECT_NEAR(d.measured.grandTotal() / d.truth.grandTotal(), 1.0, 0.15);
  // But individual entries must differ.
  bool anyDiff = false;
  for (std::size_t t = 0; t < 14 && !anyDiff; ++t)
    for (std::size_t i = 0; i < 8 && !anyDiff; ++i)
      for (std::size_t j = 0; j < 8; ++j)
        if (d.measured(t, i, j) != d.truth(t, i, j)) {
          anyDiff = true;
          break;
        }
  EXPECT_TRUE(anyDiff);
}

TEST(Datasets, NoSamplingMeansMeasuredEqualsTruth) {
  DatasetConfig cfg = FastConfig(5);
  cfg.netflowSampling = false;
  const Dataset d = MakeSmallDataset(6, 14, 300.0, cfg);
  EXPECT_DOUBLE_EQ(d.measured.grandTotal(), d.truth.grandTotal());
}

TEST(Datasets, GeantLikeDimensions) {
  // Shrink activity so this stays fast; dimensions are what matter.
  DatasetConfig cfg = FastConfig(6);
  cfg.peakActivityBytes = 5e6;
  const Dataset d = MakeGeantLike(cfg);
  EXPECT_EQ(d.truth.nodeCount(), 22u);
  EXPECT_EQ(d.truth.binCount(), 2016u);  // one week of 5-min bins
  EXPECT_EQ(d.binsPerWeek, 2016u);
  EXPECT_DOUBLE_EQ(d.binSeconds, 300.0);
}

TEST(Datasets, TotemLikeDimensionsAndWeeks) {
  DatasetConfig cfg = FastConfig(7);
  cfg.peakActivityBytes = 5e6;
  cfg.weeks = 2;
  const Dataset d = MakeTotemLike(cfg);
  EXPECT_EQ(d.truth.nodeCount(), 23u);
  EXPECT_EQ(d.truth.binCount(), 2u * 672u);  // 15-min bins
  EXPECT_DOUBLE_EQ(d.binSeconds, 900.0);
}

TEST(Datasets, ActivityDiurnalStructurePresent) {
  // Ingress of a large node should show the daily period.
  DatasetConfig cfg = FastConfig(8);
  const Dataset d = MakeSmallDataset(6, 7 * 24, 3600.0, cfg);
  // Build total-traffic series; period should be ~24 bins (1 day).
  std::vector<double> totals(d.truth.binCount());
  for (std::size_t t = 0; t < totals.size(); ++t)
    totals[t] = d.truth.total(t);
  const std::size_t period =
      timeseries::DominantPeriod(totals, 12, 36);
  EXPECT_NEAR(double(period), 24.0, 3.0);
}

}  // namespace
}  // namespace ictm::dataset

namespace ictm::core {
namespace {

TEST(Synthesis, RecipeProducesValidSeries) {
  SynthesisConfig cfg;
  cfg.nodes = 8;
  cfg.bins = 96;
  cfg.activityModel.profile.binsPerDay = 14;
  stats::Rng rng(1);
  const SyntheticTm out = GenerateSyntheticTm(cfg, rng);
  EXPECT_EQ(out.series.nodeCount(), 8u);
  EXPECT_EQ(out.series.binCount(), 96u);
  EXPECT_TRUE(out.series.isValid());
  EXPECT_NEAR(linalg::Sum(out.preference), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.f, cfg.f);
}

TEST(Synthesis, SeriesMatchesStableFPOfItsOwnParameters) {
  SynthesisConfig cfg;
  cfg.nodes = 5;
  cfg.bins = 28;
  cfg.activityModel.profile.binsPerDay = 4;
  stats::Rng rng(2);
  const SyntheticTm out = GenerateSyntheticTm(cfg, rng);
  const auto direct =
      EvaluateStableFP(out.f, out.activitySeries, out.preference,
                       cfg.binSeconds);
  for (std::size_t t = 0; t < 28; ++t) {
    test::ExpectMatrixNear(out.series.bin(t), direct.bin(t), 1e-9);
  }
}

TEST(Synthesis, PreferencesLongTailed) {
  SynthesisConfig cfg;
  cfg.nodes = 40;
  cfg.bins = 7;
  cfg.activityModel.profile.binsPerDay = 1;
  stats::Rng rng(3);
  const SyntheticTm out = GenerateSyntheticTm(cfg, rng);
  // Long tail: the max preference should dwarf the median.
  linalg::Vector sorted = out.preference;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted.back() / sorted[sorted.size() / 2], 3.0);
}

TEST(Synthesis, InvalidConfigThrows) {
  SynthesisConfig cfg;
  cfg.nodes = 0;
  stats::Rng rng(4);
  EXPECT_THROW(GenerateSyntheticTm(cfg, rng), ictm::Error);
  cfg = SynthesisConfig{};
  cfg.f = 1.0;
  EXPECT_THROW(GenerateSyntheticTm(cfg, rng), ictm::Error);
}

}  // namespace
}  // namespace ictm::core
