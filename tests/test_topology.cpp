// Tests for the graph, shortest paths, routing matrices and canned
// topologies.
#include <gtest/gtest.h>

#include <cmath>

#include "topology/graph.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "test_util.hpp"

namespace ictm::topology {
namespace {

Graph Triangle() {
  Graph g;
  g.addNode("a");
  g.addNode("b");
  g.addNode("c");
  g.addBidirectionalLink(0, 1, 1.0);
  g.addBidirectionalLink(1, 2, 1.0);
  g.addBidirectionalLink(0, 2, 3.0);  // expensive direct path
  return g;
}

TEST(Graph, AddNodesAndLinks) {
  Graph g;
  const NodeId a = g.addNode("a");
  const NodeId b = g.addNode("b");
  EXPECT_EQ(g.nodeCount(), 2u);
  const LinkId l = g.addLink(a, b, 2.0, 1e9);
  EXPECT_EQ(g.linkCount(), 1u);
  EXPECT_EQ(g.link(l).src, a);
  EXPECT_EQ(g.link(l).dst, b);
  EXPECT_DOUBLE_EQ(g.link(l).igpWeight, 2.0);
  EXPECT_EQ(g.nodeByName("b"), b);
  EXPECT_THROW(g.nodeByName("zz"), ictm::Error);
  EXPECT_THROW(g.addLink(a, a), ictm::Error);
  EXPECT_THROW(g.addLink(a, 7), ictm::Error);
  EXPECT_THROW(g.addLink(a, b, -1.0), ictm::Error);
}

TEST(Graph, BidirectionalAddsTwoLinks) {
  Graph g;
  g.addNode("a");
  g.addNode("b");
  const LinkId fwd = g.addBidirectionalLink(0, 1, 1.5);
  EXPECT_EQ(g.linkCount(), 2u);
  EXPECT_EQ(g.link(fwd).src, 0u);
  EXPECT_EQ(g.link(fwd + 1).src, 1u);
}

TEST(ShortestPathsTest, PrefersCheaperTwoHopPath) {
  const Graph g = Triangle();
  const ShortestPaths sp = ComputeShortestPaths(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.dist[1], 1.0);
  // a->c direct costs 3; a->b->c costs 2.
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  ASSERT_EQ(sp.predecessors[2].size(), 1u);
  EXPECT_EQ(g.link(sp.predecessors[2][0]).src, 1u);
}

TEST(ShortestPathsTest, RecordsEqualCostPredecessors) {
  // Square: two equal paths from 0 to 2.
  Graph g;
  for (std::size_t i = 0; i < 4; ++i) g.addNode(IndexedName('n', i));
  g.addBidirectionalLink(0, 1, 1.0);
  g.addBidirectionalLink(1, 2, 1.0);
  g.addBidirectionalLink(0, 3, 1.0);
  g.addBidirectionalLink(3, 2, 1.0);
  const ShortestPaths sp = ComputeShortestPaths(g, 0);
  EXPECT_DOUBLE_EQ(sp.dist[2], 2.0);
  EXPECT_EQ(sp.predecessors[2].size(), 2u);
}

TEST(ShortestPathsTest, UnreachableIsInfinite) {
  Graph g;
  g.addNode("a");
  g.addNode("b");
  g.addLink(0, 1);  // one-way only
  const ShortestPaths sp = ComputeShortestPaths(g, 1);
  EXPECT_FALSE(std::isfinite(sp.dist[0]));
  EXPECT_FALSE(IsStronglyConnected(g));
}

TEST(RoutingMatrix, SingleLinkNetwork) {
  Graph g;
  g.addNode("a");
  g.addNode("b");
  g.addBidirectionalLink(0, 1, 1.0);
  const linalg::Matrix r = BuildRoutingMatrix(g);
  ASSERT_EQ(r.rows(), 2u);
  ASSERT_EQ(r.cols(), 4u);
  // OD (0,1) = column 1 rides link 0; OD (1,0) = column 2 rides link 1.
  EXPECT_DOUBLE_EQ(r(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(r(1, 2), 1.0);
  // Diagonal OD pairs use no link.
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(1, 3), 0.0);
}

TEST(RoutingMatrix, EcmpSplitsEvenly) {
  // Square topology: flow 0->2 splits 50/50 across the two paths.
  Graph g;
  for (std::size_t i = 0; i < 4; ++i) g.addNode(IndexedName('n', i));
  g.addBidirectionalLink(0, 1, 1.0);
  g.addBidirectionalLink(1, 2, 1.0);
  g.addBidirectionalLink(0, 3, 1.0);
  g.addBidirectionalLink(3, 2, 1.0);
  const linalg::Matrix r = BuildRoutingMatrix(g, {.ecmp = true});
  const std::size_t col = 0 * 4 + 2;
  double onLinks = 0.0;
  double maxFrac = 0.0;
  for (std::size_t l = 0; l < g.linkCount(); ++l) {
    onLinks += r(l, col);
    maxFrac = std::max(maxFrac, r(l, col));
  }
  // Two links per path, two paths, each carrying 1/2 => total 2.0.
  EXPECT_NEAR(onLinks, 2.0, 1e-9);
  EXPECT_NEAR(maxFrac, 0.5, 1e-9);

  const linalg::Matrix r1 = BuildRoutingMatrix(g, {.ecmp = false});
  double maxFrac1 = 0.0;
  for (std::size_t l = 0; l < g.linkCount(); ++l)
    maxFrac1 = std::max(maxFrac1, r1(l, col));
  EXPECT_DOUBLE_EQ(maxFrac1, 1.0);  // single path carries everything
}

TEST(RoutingMatrix, FlowConservationOnRandomTm) {
  // Per OD pair, the flow leaving the origin equals 1 and the flow
  // arriving at the destination equals 1 (fractions sum correctly).
  const Graph g = MakeRing(8, 2);
  const linalg::Matrix r = BuildRoutingMatrix(g);
  const std::size_t n = g.nodeCount();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const std::size_t col = s * n + d;
      double outOfSource = 0.0, intoDest = 0.0;
      for (std::size_t l = 0; l < g.linkCount(); ++l) {
        if (r(l, col) == 0.0) continue;
        if (g.link(l).src == s) outOfSource += r(l, col);
        if (g.link(l).dst == d) intoDest += r(l, col);
        EXPECT_GE(r(l, col), 0.0);
        EXPECT_LE(r(l, col), 1.0 + 1e-9);
      }
      EXPECT_NEAR(outOfSource, 1.0, 1e-9) << "od " << s << "->" << d;
      EXPECT_NEAR(intoDest, 1.0, 1e-9) << "od " << s << "->" << d;
    }
  }
}

TEST(RoutingMatrix, LinkLoadsMatchManualPathSum) {
  const Graph g = Triangle();
  const linalg::Matrix r = BuildRoutingMatrix(g);
  linalg::Matrix tm(3, 3, 0.0);
  tm(0, 2) = 10.0;  // routed a->b->c
  const linalg::Vector y = ComputeLinkLoads(r, tm);
  double total = 0.0;
  for (double v : y) total += v;
  EXPECT_NEAR(total, 20.0, 1e-9);  // two hops * 10
}

TEST(FlattenUnflatten, RoundTrip) {
  stats::Rng rng(3);
  const linalg::Matrix tm = test::RandomMatrix(5, 5, rng, 0.0, 10.0);
  test::ExpectMatrixNear(UnflattenTm(FlattenTm(tm), 5), tm, 0.0);
  EXPECT_THROW(FlattenTm(linalg::Matrix(2, 3)), ictm::Error);
  EXPECT_THROW(UnflattenTm(linalg::Vector(5), 2), ictm::Error);
}

TEST(CannedTopologies, GeantHas22ConnectedNodes) {
  const Graph g = MakeGeant22();
  EXPECT_EQ(g.nodeCount(), 22u);
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_NO_THROW(g.nodeByName("de"));
  EXPECT_NO_THROW(g.nodeByName("ny"));
}

TEST(CannedTopologies, TotemSplitsGermany) {
  const Graph g = MakeTotem23();
  EXPECT_EQ(g.nodeCount(), 23u);
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_NO_THROW(g.nodeByName("de1"));
  EXPECT_NO_THROW(g.nodeByName("de2"));
  EXPECT_THROW(g.nodeByName("de"), ictm::Error);
}

TEST(CannedTopologies, AbileneHasInstrumentedNodes) {
  const Graph g = MakeAbilene11();
  EXPECT_EQ(g.nodeCount(), 11u);
  EXPECT_TRUE(IsStronglyConnected(g));
  // The D3 dataset instruments IPLS and its neighbours CLEV... KSCY.
  EXPECT_NO_THROW(g.nodeByName("IPLS"));
  EXPECT_NO_THROW(g.nodeByName("KSCY"));
}

TEST(CannedTopologies, RingProperties) {
  const Graph g = MakeRing(6);
  EXPECT_EQ(g.nodeCount(), 6u);
  EXPECT_EQ(g.linkCount(), 12u);  // 6 bidirectional links
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_THROW(MakeRing(2), ictm::Error);
  // Chorded ring has strictly more links.
  EXPECT_GT(MakeRing(8, 2).linkCount(), MakeRing(8).linkCount());
}

TEST(RoutingMatrix, GeantRankDeficiency) {
  // The TM estimation problem is under-constrained: rank(R) < n^2.
  // (This is the paper's Sec. 6 premise.)
  const Graph g = MakeGeant22();
  const linalg::Matrix r = BuildRoutingMatrix(g);
  EXPECT_EQ(r.cols(), 22u * 22u);
  EXPECT_LT(r.rows(), r.cols());
}

}  // namespace
}  // namespace ictm::topology
