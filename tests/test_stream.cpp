// Tests for the streaming subsystem: the ictmb binary trace format
// (v2 codecs, round-trip, the corruption/fuzz battery, converters,
// repack), the StreamingEstimator's streaming ≡ batch bit-identity
// contract, and the connection aggregator.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "conngen/generator.hpp"
#include "core/estimation.hpp"
#include "core/priors.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "stream/aggregate.hpp"
#include "stream/codec.hpp"
#include "stream/format.hpp"
#include "stream/online.hpp"
#include "test_util.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "traffic/io.hpp"

namespace ictm::stream {
namespace {

// Temp paths, trace fixtures and the bit-identity assertion live in
// tests/test_util.hpp, shared with the scenario, topology-format and
// server suites.
using test::ExpectBitIdentical;
using test::RandomSeries;
using test::TempPath;

// ---- local fixtures --------------------------------------------------------

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Smooth diurnal TM series quantised to multiples of 256 bytes — the
// compressible fixture of the codec tests and bench_stream (measured
// SNMP byte counters are integral, and consecutive bins differ
// little, so delta + byte-shuffle collapses most planes to zeros).
traffic::TrafficMatrixSeries SmoothSeries(std::size_t nodes,
                                          std::size_t bins,
                                          std::uint64_t seed) {
  stats::Rng rng(seed);
  traffic::TrafficMatrixSeries s(nodes, bins, 300.0);
  const std::size_t n2 = nodes * nodes;
  std::vector<double> base(n2), phase(n2);
  for (std::size_t k = 0; k < n2; ++k) {
    base[k] = rng.uniform(1e6, 1e9);
    phase[k] = rng.uniform(0.0, 6.28318530717958648);
  }
  for (std::size_t t = 0; t < bins; ++t) {
    double* bin = s.binData(t);
    for (std::size_t k = 0; k < n2; ++k) {
      const double diurnal =
          1.0 + 0.5 * std::sin(6.28318530717958648 *
                                   (double(t) / 288.0) +
                               phase[k]);
      bin[k] = std::round(base[k] * diurnal / 256.0) * 256.0;
    }
  }
  return s;
}

// splitmix64: high-entropy deterministic bit patterns — genuinely
// incompressible payloads for the per-chunk raw-fallback tests.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Hand-written ictmb v1 file (the pre-codec layout: version 1, frames
// of payload-length · doubles · CRC-32 of the payload alone).  The
// writer only emits v2 now, so the v1 compatibility tests synthesise
// their inputs byte by byte against the normative docs/FORMATS.md
// grammar.
void WriteV1TraceFile(const std::string& path,
                      const traffic::TrafficMatrixSeries& series,
                      std::size_t binsPerChunk) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  const auto put = [&out](const void* p, std::size_t nbytes) {
    out.write(static_cast<const char*>(p),
              static_cast<std::streamsize>(nbytes));
  };
  const char magic[8] = {'I', 'C', 'T', 'M', 'B', '1', '\r', '\n'};
  put(magic, 8);
  const std::uint32_t sentinel = 0x01020304u;
  const std::uint32_t version = 1;
  put(&sentinel, 4);
  put(&version, 4);
  const std::uint64_t nodes = series.nodeCount();
  const double binSeconds = series.binSeconds();
  const std::uint64_t bpc = binsPerChunk;
  put(&nodes, 8);
  put(&binSeconds, 8);
  put(&bpc, 8);

  const std::size_t n2 = series.nodeCount() * series.nodeCount();
  std::vector<std::uint64_t> records;  // {offset, binCount} pairs
  for (std::size_t t = 0; t < series.binCount(); t += binsPerChunk) {
    const std::size_t binCount =
        std::min(binsPerChunk, series.binCount() - t);
    records.push_back(static_cast<std::uint64_t>(out.tellp()));
    records.push_back(binCount);
    const std::uint64_t payloadLen = binCount * n2 * sizeof(double);
    put(&payloadLen, 8);
    std::uint32_t crc = 0;
    for (std::size_t b = 0; b < binCount; ++b) {
      put(series.binData(t + b), n2 * sizeof(double));
      crc = Crc32(series.binData(t + b), n2 * sizeof(double), crc);
    }
    put(&crc, 4);
  }

  const std::uint64_t indexOffset = static_cast<std::uint64_t>(out.tellp());
  const std::uint64_t marker = ~std::uint64_t{0};
  put(&marker, 8);
  std::vector<std::uint64_t> words;
  words.push_back(records.size() / 2);
  words.insert(words.end(), records.begin(), records.end());
  words.push_back(series.binCount());
  put(words.data(), words.size() * sizeof(std::uint64_t));
  const std::uint32_t indexCrc =
      Crc32(words.data(), words.size() * sizeof(std::uint64_t));
  put(&indexCrc, 4);
  put(&indexOffset, 8);
  const char endMagic[8] = {'I', 'C', 'T', 'M', 'B', 'E', 'O', 'F'};
  put(endMagic, 8);
  out.close();
  ASSERT_FALSE(out.fail()) << path;
}

// ---- binary format ---------------------------------------------------------

TEST(TraceFormat, RoundTripsAtFullPrecision) {
  const auto series = RandomSeries(5, 23, 7);
  const std::string path = TempPath("roundtrip.ictmb");
  // binsPerChunk = 4 forces several chunks plus a partial tail chunk.
  WriteTraceFile(path, series, 4);

  TraceReader reader(path);
  EXPECT_EQ(reader.info().nodes, 5u);
  EXPECT_EQ(reader.info().bins, 23u);
  EXPECT_DOUBLE_EQ(reader.info().binSeconds, 300.0);
  EXPECT_EQ(reader.info().binsPerChunk, 4u);
  EXPECT_EQ(reader.info().chunks, 6u);  // 5 full + 1 partial

  const auto back = reader.readAll();
  ExpectBitIdentical(series, back);
}

TEST(TraceFormat, StreamingWriterMatchesWholeSeriesWriter) {
  const auto series = RandomSeries(3, 10, 11);
  const std::string a = TempPath("writer_a.ictmb");
  const std::string b = TempPath("writer_b.ictmb");
  WriteTraceFile(a, series, 4);
  {
    TraceWriter writer(b, series.nodeCount(), series.binSeconds(), 4);
    for (std::size_t t = 0; t < series.binCount(); ++t) {
      writer.append(series.binData(t));
    }
    writer.close();
    EXPECT_EQ(writer.binsWritten(), 10u);
  }
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  std::string ca((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string cb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(ca, cb);  // byte-identical files
}

TEST(TraceFormat, RandomAccessSeek) {
  const auto series = RandomSeries(4, 17, 3);
  const std::string path = TempPath("seek.ictmb");
  WriteTraceFile(path, series, 5);

  TraceReader reader(path);
  std::vector<double> bin(16);
  for (std::size_t t : {13u, 2u, 16u, 0u, 9u}) {
    reader.seek(t);
    ASSERT_TRUE(reader.next(bin.data()));
    for (std::size_t k = 0; k < 16; ++k) {
      EXPECT_EQ(bin[k], series.binData(t)[k]) << "bin " << t;
    }
  }
  reader.seek(17);
  EXPECT_FALSE(reader.next(bin.data()));
  EXPECT_THROW(reader.seek(18), Error);
}

TEST(TraceFormat, RejectsTruncationAndCorruption) {
  const auto series = RandomSeries(3, 8, 5);
  const std::string path = TempPath("corrupt.ictmb");
  WriteTraceFile(path, series, 4);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Truncation loses the footer/index.
  {
    const std::string p = TempPath("truncated.ictmb");
    std::ofstream out(p, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    EXPECT_THROW(TraceReader r(p), Error);
  }
  // A flipped payload byte fails the chunk CRC (header is 40 bytes;
  // offset 60 sits inside the first chunk's payload).
  {
    std::string damaged = bytes;
    damaged[60] = static_cast<char>(damaged[60] ^ 0x01);
    const std::string p = TempPath("bitflip.ictmb");
    std::ofstream out(p, std::ios::binary);
    out.write(damaged.data(),
              static_cast<std::streamsize>(damaged.size()));
    out.close();
    TraceReader reader(p);  // header/index still valid
    std::vector<double> bin(9);
    EXPECT_THROW(reader.next(bin.data()), Error);
  }
  // A flipped index byte fails the index CRC at open.
  {
    std::string damaged = bytes;
    damaged[damaged.size() - 30] =
        static_cast<char>(damaged[damaged.size() - 30] ^ 0x01);
    const std::string p = TempPath("badindex.ictmb");
    std::ofstream out(p, std::ios::binary);
    out.write(damaged.data(),
              static_cast<std::streamsize>(damaged.size()));
    out.close();
    EXPECT_THROW(TraceReader r(p), Error);
  }
  // Not a trace at all.
  {
    const std::string p = TempPath("not_a_trace.ictmb");
    std::ofstream out(p);
    out << "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,2,3,4\n";
    out.close();
    EXPECT_FALSE(IsTraceFile(p));
    EXPECT_THROW(TraceReader r(p), Error);
  }
  EXPECT_TRUE(IsTraceFile(path));
}

TEST(TraceFormat, CsvConvertersRoundTrip) {
  const auto series = RandomSeries(4, 9, 13);
  const std::string csv = TempPath("convert_in.csv");
  const std::string trace = TempPath("convert.ictmb");
  const std::string csvBack = TempPath("convert_out.csv");
  traffic::WriteCsvFile(csv, series);

  ConvertCsvToTrace(csv, trace, 4);
  ExpectBitIdentical(series, ReadTraceFile(trace));

  ConvertTraceToCsv(trace, csvBack);
  ExpectBitIdentical(series, traffic::ReadCsvFile(csvBack));
}

// ---- chunk codecs ----------------------------------------------------------

TEST(ChunkCodecs, NamesAndParsingRoundTrip) {
  for (std::size_t i = 0; i < kChunkCodecCount; ++i) {
    const ChunkCodec codec = static_cast<ChunkCodec>(i);
    ChunkCodec parsed = ChunkCodec::kRaw;
    EXPECT_TRUE(ParseChunkCodec(ChunkCodecName(codec), &parsed));
    EXPECT_EQ(parsed, codec);
  }
  ChunkCodec parsed = ChunkCodec::kRaw;
  EXPECT_FALSE(ParseChunkCodec("zstd", &parsed));
  EXPECT_FALSE(ParseChunkCodec("", &parsed));
}

TEST(ChunkCodecs, ByteShuffleIsInvertible) {
  stats::Rng rng(3);
  std::vector<double> values(37);
  for (double& v : values) v = rng.uniform(-1e9, 1e9);
  std::vector<std::uint8_t> shuffled(values.size() * sizeof(double));
  ByteShuffle(values.data(), values.size(), shuffled.data());
  std::vector<double> back(values.size());
  ByteUnshuffle(shuffled.data(), back.size(), back.data());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], back[i]) << "index " << i;
  }
}

TEST(ChunkCodecs, LzRoundTripsCompressibleAndIncompressibleData) {
  // Compressible: long runs and repeats must shrink.
  std::vector<std::uint8_t> repeats(4096);
  for (std::size_t i = 0; i < repeats.size(); ++i) {
    repeats[i] = static_cast<std::uint8_t>((i / 512) * 7);
  }
  const auto packed = LzCompress(repeats.data(), repeats.size());
  EXPECT_LT(packed.size(), repeats.size() / 4);
  std::vector<std::uint8_t> back(repeats.size());
  LzDecompress(packed.data(), packed.size(), back.data(), back.size());
  EXPECT_EQ(back, repeats);

  // Incompressible: splitmix64 bytes still round-trip and stay within
  // the declared worst-case bound.
  std::uint64_t state = 42;
  std::vector<std::uint8_t> noise(2048);
  for (std::size_t i = 0; i < noise.size(); i += 8) {
    const std::uint64_t w = SplitMix64(&state);
    std::memcpy(noise.data() + i, &w, 8);
  }
  const auto packedNoise = LzCompress(noise.data(), noise.size());
  EXPECT_LE(packedNoise.size(), LzBound(noise.size()));
  std::vector<std::uint8_t> backNoise(noise.size());
  LzDecompress(packedNoise.data(), packedNoise.size(), backNoise.data(),
               backNoise.size());
  EXPECT_EQ(backNoise, noise);

  // Empty input round-trips through the empty terminator sequence.
  const auto packedEmpty = LzCompress(noise.data(), 0);
  EXPECT_FALSE(packedEmpty.empty());
  LzDecompress(packedEmpty.data(), packedEmpty.size(), backNoise.data(), 0);
}

TEST(ChunkCodecs, LzDecompressRejectsCorruptStreams) {
  std::vector<std::uint8_t> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i / 64);
  }
  const auto packed = LzCompress(data.data(), data.size());
  std::vector<std::uint8_t> out(data.size());

  // Declared output size disagrees with what the stream decodes to.
  EXPECT_THROW(LzDecompress(packed.data(), packed.size(), out.data(),
                            data.size() - 1),
               Error);
  std::vector<std::uint8_t> bigger(data.size() + 1);
  EXPECT_THROW(LzDecompress(packed.data(), packed.size(), bigger.data(),
                            bigger.size()),
               Error);
  // Every truncation of the compressed stream is a typed error (or, if
  // a prefix happens to decode, it must disagree with the declared
  // size — either way LzDecompress throws, never reads past the end).
  for (std::size_t len = 0; len < packed.size(); ++len) {
    EXPECT_THROW(LzDecompress(packed.data(), len, out.data(), out.size()),
                 Error)
        << "prefix " << len;
  }
  // A zero match offset is invalid by construction.
  const std::uint8_t zeroOffset[] = {0x04, 0x00, 0x00};  // match, offset 0
  EXPECT_THROW(LzDecompress(zeroOffset, sizeof zeroOffset, out.data(), 8),
               Error);
}

TEST(ChunkCodecs, EncodeDecodeBitIdenticalForEveryCodec) {
  stats::Rng rng(17);
  const std::size_t binCount = 5, n2 = 16;
  std::vector<double> bins(binCount * n2);
  for (double& v : bins) v = rng.uniform(0.0, 1e9);
  for (std::size_t i = 0; i < kChunkCodecCount; ++i) {
    const ChunkCodec codec = static_cast<ChunkCodec>(i);
    SCOPED_TRACE(ChunkCodecName(codec));
    const auto payload = EncodeChunk(codec, bins.data(), binCount, n2);
    std::vector<double> back(bins.size());
    DecodeChunk(codec, payload.data(), payload.size(), back.data(),
                binCount, n2);
    for (std::size_t k = 0; k < bins.size(); ++k) {
      ASSERT_EQ(bins[k], back[k]) << "element " << k;
    }
  }
  // Unknown tags and empty chunks are typed errors.
  std::vector<double> out(bins.size());
  const auto payload =
      EncodeChunk(ChunkCodec::kRaw, bins.data(), binCount, n2);
  EXPECT_THROW(DecodeChunk(static_cast<ChunkCodec>(7), payload.data(),
                           payload.size(), out.data(), binCount, n2),
               Error);
  EXPECT_THROW(EncodeChunk(ChunkCodec::kRaw, bins.data(), 0, n2), Error);
}

// ---- ictmb v2: codecs, compression pool, prefetch --------------------------

TEST(TraceFormatV2, RoundTripsEveryCodecAndChunking) {
  const auto smooth = SmoothSeries(4, 70, 11);
  const auto noise = RandomSeries(4, 70, 12);
  for (const auto* series : {&smooth, &noise}) {
    for (std::size_t i = 0; i < kChunkCodecCount; ++i) {
      for (std::size_t binsPerChunk : {1u, 7u, 64u}) {
        TraceWriterOptions options;
        options.binsPerChunk = binsPerChunk;
        options.codec = static_cast<ChunkCodec>(i);
        SCOPED_TRACE(std::string(ChunkCodecName(options.codec)) +
                     " chunk=" + std::to_string(binsPerChunk));
        const std::string path = TempPath("v2_roundtrip.ictmb");
        WriteTraceFile(path, *series, options);
        TraceReader reader(path);
        EXPECT_EQ(reader.info().version, 2u);
        ExpectBitIdentical(*series, reader.readAll());
      }
    }
  }
}

TEST(TraceFormatV2, FileBytesIdenticalForEveryPoolSize) {
  const auto series = SmoothSeries(5, 50, 21);
  std::string reference;
  for (std::size_t threads : {0u, 1u, 2u, 5u}) {
    TraceWriterOptions options;
    options.binsPerChunk = 4;
    options.codec = ChunkCodec::kDelta;
    options.compressThreads = threads;
    const std::string path = TempPath("pool.ictmb");
    WriteTraceFile(path, series, options);
    const std::string bytes = ReadBytes(path);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "compressThreads=" << threads;
    }
  }
}

TEST(TraceFormatV2, DeltaHalvesTheSmoothFixture) {
  // The acceptance floor of the compression work: ≥ 2x reduction on
  // the smooth diurnal fixture (bench_stream gates the same bound in
  // CI on its own fixture).
  const auto series = SmoothSeries(6, 96, 31);
  const std::string rawPath = TempPath("ratio_raw.ictmb");
  const std::string deltaPath = TempPath("ratio_delta.ictmb");
  WriteTraceFile(rawPath, series,
                 TraceWriterOptions{16, ChunkCodec::kRaw, 0});
  WriteTraceFile(deltaPath, series,
                 TraceWriterOptions{16, ChunkCodec::kDelta, 0});
  const std::string raw = ReadBytes(rawPath);
  const std::string delta = ReadBytes(deltaPath);
  EXPECT_LE(2 * delta.size(), raw.size())
      << "delta " << delta.size() << " bytes vs raw " << raw.size();
  ExpectBitIdentical(series, ReadTraceFile(deltaPath));
}

TEST(TraceFormatV2, IncompressibleChunksFallBackToRaw) {
  // splitmix64 bit patterns cannot shrink, so every chunk must carry
  // the raw tag even though delta was requested — and the file can
  // never be larger than the raw-codec encoding of the same series.
  const std::size_t nodes = 3, bins = 8;
  traffic::TrafficMatrixSeries series(nodes, bins, 300.0);
  std::uint64_t state = 7;
  for (std::size_t t = 0; t < bins; ++t) {
    double* bin = series.binData(t);
    for (std::size_t k = 0; k < nodes * nodes; ++k) {
      // High entropy in all eight byte planes (exponent included), so
      // neither shuffling nor deltas can find structure; only NaN/Inf
      // patterns are excluded (NaN breaks bitwise == comparison).
      std::uint64_t word = SplitMix64(&state);
      if (((word >> 52) & 0x7FFu) == 0x7FFu) word ^= std::uint64_t{1} << 62;
      std::memcpy(&bin[k], &word, sizeof word);
    }
  }
  const std::string rawPath = TempPath("fallback_raw.ictmb");
  const std::string deltaPath = TempPath("fallback_delta.ictmb");
  WriteTraceFile(rawPath, series,
                 TraceWriterOptions{4, ChunkCodec::kRaw, 0});
  WriteTraceFile(deltaPath, series,
                 TraceWriterOptions{4, ChunkCodec::kDelta, 0});
  const std::string rawBytes = ReadBytes(rawPath);
  const std::string deltaBytes = ReadBytes(deltaPath);
  EXPECT_EQ(deltaBytes.size(), rawBytes.size());
  // First frame: u64 stored length at 40, u32 codec tag at 48.
  std::uint32_t tag = 0;
  std::memcpy(&tag, deltaBytes.data() + 48, 4);
  EXPECT_EQ(tag, 0u) << "incompressible chunk was not stored raw";
  ExpectBitIdentical(series, ReadTraceFile(deltaPath));
}

TEST(TraceFormatV2, PrefetchReaderBitIdenticalIncludingSeeks) {
  const auto series = SmoothSeries(4, 33, 41);
  const std::string path = TempPath("prefetch.ictmb");
  WriteTraceFile(path, series,
                 TraceWriterOptions{5, ChunkCodec::kShuffleLz, 0});

  TraceReader plain(path);
  TraceReader ahead(path, TraceReaderOptions{true});
  ExpectBitIdentical(plain.readAll(), ahead.readAll());

  // A seek-heavy access pattern (backwards, forwards, across chunks)
  // must serve the same bins whether or not prefetch is racing ahead.
  TraceReader seeker(path, TraceReaderOptions{true});
  std::vector<double> bin(16);
  for (std::size_t t : {30u, 2u, 17u, 3u, 32u, 0u, 19u}) {
    seeker.seek(t);
    ASSERT_TRUE(seeker.next(bin.data()));
    for (std::size_t k = 0; k < bin.size(); ++k) {
      ASSERT_EQ(bin[k], series.binData(t)[k]) << "bin " << t;
    }
  }
}

TEST(TraceFormatV2, PrefetchDefersErrorsToTheFailingChunk) {
  const auto series = SmoothSeries(3, 12, 43);
  const std::string path = TempPath("prefetch_err.ictmb");
  WriteTraceFile(path, series,
                 TraceWriterOptions{4, ChunkCodec::kDelta, 0});
  std::string bytes = ReadBytes(path);

  // Corrupt the second chunk's payload (first frame starts at 40; its
  // stored length names where the next frame begins).
  std::uint64_t stored0 = 0;
  std::memcpy(&stored0, bytes.data() + 40, 8);
  const std::size_t frame1 = 40 + 8 + 4 + 8 +
                             static_cast<std::size_t>(stored0) + 4;
  bytes[frame1 + 8 + 4 + 8 + 2] =
      static_cast<char>(bytes[frame1 + 8 + 4 + 8 + 2] ^ 0x40);
  const std::string damaged = TempPath("prefetch_err_damaged.ictmb");
  WriteBytes(damaged, bytes);

  // Chunk 0 reads fine; demanding chunk 1 surfaces the prefetch error.
  {
    TraceReader reader(damaged, TraceReaderOptions{true});
    std::vector<double> bin(9);
    for (std::size_t t = 0; t < 4; ++t) {
      ASSERT_TRUE(reader.next(bin.data())) << "bin " << t;
    }
    EXPECT_THROW(reader.next(bin.data()), Error);
  }
  // Seeking over the damaged chunk discards the stale prefetch result
  // (deferred error included) and serves chunk 2 correctly.
  {
    TraceReader reader(damaged, TraceReaderOptions{true});
    std::vector<double> bin(9);
    ASSERT_TRUE(reader.next(bin.data()));  // chunk 0; prefetch of 1 fails
    reader.seek(8);                        // skip the damaged chunk
    ASSERT_TRUE(reader.next(bin.data()));
    for (std::size_t k = 0; k < 9; ++k) {
      EXPECT_EQ(bin[k], series.binData(8)[k]);
    }
  }
}

TEST(TraceFormatV2, CodecMetricsAccumulate) {
  const auto before = obs::Registry::Instance().snapshot();
  const auto series = SmoothSeries(4, 20, 47);
  const std::string path = TempPath("codec_metrics.ictmb");
  WriteTraceFile(path, series,
                 TraceWriterOptions{8, ChunkCodec::kDelta, 0});
  ReadTraceFile(path);
  const auto after = obs::Registry::Instance().snapshot();
  const auto valueOf = [](const obs::MetricsSnapshot& snap,
                          const std::string& name) {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return std::uint64_t{0};
  };
  EXPECT_GT(valueOf(after, "trace_codec.delta.compress_chunks"),
            valueOf(before, "trace_codec.delta.compress_chunks"));
  EXPECT_GT(valueOf(after, "trace_codec.delta.decompress_chunks"),
            valueOf(before, "trace_codec.delta.decompress_chunks"));
  EXPECT_GT(valueOf(after, "trace_codec.delta.compress_bytes_in"),
            valueOf(after, "trace_codec.delta.compress_bytes_out"));
}

// ---- ictmb v2: corruption matrix and fuzz battery --------------------------

// Small compressed fixture shared by the corruption tests: 3 nodes,
// 8 bins, 4 bins/chunk, delta codec → two compressed frames.
std::string CorruptionFixtureBytes() {
  const auto series = SmoothSeries(3, 8, 53);
  const std::string path = TempPath("corruption_fixture.ictmb");
  WriteTraceFile(path, series,
                 TraceWriterOptions{4, ChunkCodec::kDelta, 0});
  return ReadBytes(path);
}

TEST(TraceFormatV2, EveryTruncationPrefixIsRejected) {
  const std::string bytes = CorruptionFixtureBytes();
  const std::string path = TempPath("truncation.ictmb");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(path, bytes.substr(0, len));
    // Any truncation loses the footer (and usually the index), so the
    // reader must reject the file at open — loudly, never UB.
    EXPECT_THROW(TraceReader r(path), Error) << "prefix " << len;
  }
}

TEST(TraceFormatV2, BitFlipsInEveryFrameFieldAreRejected) {
  const std::string bytes = CorruptionFixtureBytes();
  std::uint64_t stored0 = 0;
  std::memcpy(&stored0, bytes.data() + 40, 8);
  const std::size_t frameEnd = 40 + 8 + 4 + 8 +
                               static_cast<std::size_t>(stored0) + 4;
  const std::string path = TempPath("bitflip_matrix.ictmb");
  // Flip one bit in every byte of the first frame in turn: the stored
  // length prefix, the codec tag, the uncompressed length, the whole
  // compressed payload, and the trailing CRC.  Each must surface as a
  // typed error when the chunk is read.
  for (std::size_t at = 40; at < frameEnd; ++at) {
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x10);
    WriteBytes(path, damaged);
    TraceReader reader(path);  // header and trailing index are intact
    std::vector<double> bin(9);
    EXPECT_THROW(reader.next(bin.data()), Error) << "byte " << at;
  }
}

TEST(TraceFormatV2, ForgedFrameHeadersWithValidCrcAreRejected) {
  const std::string bytes = CorruptionFixtureBytes();
  std::uint64_t stored0 = 0;
  std::memcpy(&stored0, bytes.data() + 40, 8);
  const std::size_t payloadAt = 40 + 8 + 4 + 8;
  const auto reforge = [&](std::uint32_t tag, std::uint64_t rawBytes) {
    std::string damaged = bytes;
    std::memcpy(damaged.data() + 48, &tag, 4);
    std::memcpy(damaged.data() + 52, &rawBytes, 8);
    std::uint32_t crc = Crc32(&tag, 4);
    crc = Crc32(&rawBytes, 8, crc);
    crc = Crc32(damaged.data() + payloadAt,
                static_cast<std::size_t>(stored0), crc);
    std::memcpy(damaged.data() + payloadAt + stored0, &crc, 4);
    return damaged;
  };
  const std::uint64_t rawExpected = 4 * 9 * sizeof(double);
  const std::string path = TempPath("forged.ictmb");
  struct Case {
    const char* what;
    std::uint32_t tag;
    std::uint64_t rawBytes;
  };
  // A recomputed CRC makes the frame internally consistent, so these
  // exercise the semantic validation, not the checksum.
  const Case cases[] = {
      {"unknown codec tag", 7, rawExpected},
      {"uncompressed length too small", 2, rawExpected - 8},
      {"uncompressed length too large", 2, rawExpected + 8},
      {"uncompressed length zero", 2, 0},
  };
  for (const Case& c : cases) {
    WriteBytes(path, reforge(c.tag, c.rawBytes));
    TraceReader reader(path);
    std::vector<double> bin(9);
    EXPECT_THROW(reader.next(bin.data()), Error) << c.what;
  }
}

TEST(TraceFormatV2, FuzzedCorruptionIsAlwaysATypedError) {
  // Seeded fuzz battery: random single-byte XORs, truncations and
  // range zeroing over a valid compressed trace.  Every mutation must
  // either fail with ictm::Error or decode bins bit-identical to the
  // original (a mutation of unprotected metadata, e.g. binSeconds,
  // may "succeed" — the payload guarantees still hold).  Under the
  // sanitizer CI jobs this doubles as a UB hunt.
  const auto series = SmoothSeries(3, 8, 53);
  const std::string bytes = CorruptionFixtureBytes();
  const std::string path = TempPath("fuzz.ictmb");
  stats::Rng rng(1234);
  int errors = 0, intact = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::string damaged = bytes;
    const int kind = int(rng.uniform(0.0, 3.0));
    if (kind == 0) {
      const auto at = std::size_t(
          rng.uniform(0.0, double(damaged.size())));
      const auto mask = 1 + int(rng.uniform(0.0, 255.0));
      damaged[at] = static_cast<char>(damaged[at] ^ mask);
    } else if (kind == 1) {
      damaged.resize(std::size_t(rng.uniform(0.0, double(damaged.size()))));
    } else {
      const auto at = std::size_t(
          rng.uniform(0.0, double(damaged.size())));
      const auto len = std::min(
          damaged.size() - at,
          1 + std::size_t(rng.uniform(0.0, 32.0)));
      std::memset(damaged.data() + at, 0, len);
    }
    WriteBytes(path, damaged);
    try {
      TraceReader reader(path);
      const auto back = reader.readAll();
      ExpectBitIdentical(series, back);
      ++intact;
    } catch (const Error&) {
      ++errors;  // the sanctioned failure mode
    }
  }
  // The battery must actually exercise the rejection paths.
  EXPECT_GT(errors, 100) << "fuzzer mutated too gently";
  (void)intact;
}

// ---- repack ----------------------------------------------------------------

TEST(Repack, IdempotentAndInheritsChunking) {
  const auto series = SmoothSeries(4, 30, 61);
  const std::string a = TempPath("rp_a.ictmb");
  WriteTraceFile(a, series, TraceWriterOptions{4, ChunkCodec::kRaw, 0});

  TraceWriterOptions delta;
  delta.binsPerChunk = 0;  // keep the input's chunking
  delta.codec = ChunkCodec::kDelta;
  const std::string b = TempPath("rp_b.ictmb");
  const std::string c = TempPath("rp_c.ictmb");
  const RepackResult r1 = RepackTrace(a, b, delta);
  const RepackResult r2 = RepackTrace(b, c, delta);
  EXPECT_EQ(r1.bins, 30u);
  EXPECT_EQ(r2.bins, 30u);
  EXPECT_EQ(ReadBytes(b), ReadBytes(c)) << "repack is not idempotent";

  TraceReader reader(b);
  EXPECT_EQ(reader.info().binsPerChunk, 4u);  // inherited
  ExpectBitIdentical(series, reader.readAll());

  EXPECT_THROW(RepackTrace(a, a, delta), Error);  // in-place refused
}

TEST(Repack, CrossCodecCycleRecoversTheOriginalBytes) {
  const auto series = SmoothSeries(5, 40, 67);
  const std::string raw = TempPath("cycle_raw.ictmb");
  WriteTraceFile(raw, series, TraceWriterOptions{8, ChunkCodec::kRaw, 0});

  const auto repackTo = [&](const std::string& in, const std::string& out,
                            ChunkCodec codec) {
    TraceWriterOptions options;
    options.binsPerChunk = 0;
    options.codec = codec;
    RepackTrace(in, out, options);
  };
  const std::string d = TempPath("cycle_delta.ictmb");
  const std::string s = TempPath("cycle_slz.ictmb");
  const std::string raw2 = TempPath("cycle_raw2.ictmb");
  repackTo(raw, d, ChunkCodec::kDelta);
  repackTo(d, s, ChunkCodec::kShuffleLz);
  repackTo(s, raw2, ChunkCodec::kRaw);
  EXPECT_EQ(ReadBytes(raw2), ReadBytes(raw))
      << "raw -> delta -> shuffle-lz -> raw did not recover the file";
  ExpectBitIdentical(series, ReadTraceFile(d));
  ExpectBitIdentical(series, ReadTraceFile(s));
}

TEST(Repack, UpgradesV1FilesToV2) {
  const auto series = RandomSeries(4, 18, 71);
  const std::string v1 = TempPath("legacy_v1.ictmb");
  WriteV1TraceFile(v1, series, 5);

  // The hand-written v1 file is readable as-is...
  {
    TraceReader reader(v1);
    EXPECT_EQ(reader.info().version, 1u);
    EXPECT_EQ(reader.info().binsPerChunk, 5u);
    EXPECT_EQ(reader.info().chunks, 4u);
    ExpectBitIdentical(series, reader.readAll());
  }
  // ...its corruption guarantees still hold (v1 payload CRC)...
  {
    std::string damaged = ReadBytes(v1);
    damaged[55] = static_cast<char>(damaged[55] ^ 0x01);  // first payload
    const std::string p = TempPath("legacy_v1_damaged.ictmb");
    WriteBytes(p, damaged);
    TraceReader reader(p);
    std::vector<double> bin(16);
    EXPECT_THROW(reader.next(bin.data()), Error);
  }
  // ...and repack upgrades it to a v2 container bit-exactly.
  TraceWriterOptions options;
  options.binsPerChunk = 0;
  options.codec = ChunkCodec::kDelta;
  const std::string v2 = TempPath("legacy_v2.ictmb");
  RepackTrace(v1, v2, options);
  TraceReader upgraded(v2);
  EXPECT_EQ(upgraded.info().version, 2u);
  EXPECT_EQ(upgraded.info().binsPerChunk, 5u);
  ExpectBitIdentical(series, upgraded.readAll());
}

// ---- writer close error path -----------------------------------------------

TEST(TraceWriter, CloseSurfacesWriteFailuresOnFullDevice) {
  // /dev/full fails every flush with ENOSPC — exactly the silent-loss
  // scenario the close() contract exists for.  Both the serial and the
  // pooled writer must surface it as ictm::Error from append()/close(),
  // never swallow it.
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  const auto series = SmoothSeries(8, 256, 73);
  for (std::size_t threads : {0u, 2u}) {
    SCOPED_TRACE("compressThreads=" + std::to_string(threads));
    const auto run = [&] {
      TraceWriterOptions options;
      options.binsPerChunk = 16;
      options.codec = ChunkCodec::kRaw;  // incompressible-size output
      options.compressThreads = threads;
      TraceWriter writer("/dev/full", series.nodeCount(),
                         series.binSeconds(), options);
      for (std::size_t t = 0; t < series.binCount(); ++t) {
        writer.append(series.binData(t));
      }
      writer.close();
    };
    EXPECT_THROW(run(), Error);
  }
  // The destructor swallows the same failure by design (close() is the
  // sanctioned error path); destroying an unclosed writer must not
  // throw or crash.
  {
    TraceWriter writer("/dev/full", series.nodeCount(),
                       series.binSeconds(), 16);
    try {
      for (std::size_t t = 0; t < 64; ++t) {
        writer.append(series.binData(t));
      }
    } catch (const Error&) {
      // append may already surface the failure; the destructor of the
      // still-unclosed writer must stay silent either way.
    }
  }
}

// ---- streaming estimator ---------------------------------------------------

struct StreamFixture {
  topology::Graph graph = topology::MakeRing(6, 2);
  linalg::CsrMatrix routing = topology::BuildRoutingCsr(graph);
  traffic::TrafficMatrixSeries truth = RandomSeries(6, 24, 99);
};

TEST(StreamingEstimator, BitIdenticalAcrossThreadsAndQueueSizes) {
  StreamFixture fx;
  StreamingOptions base;
  base.f = 0.25;
  base.window = 8;
  base.threads = 1;
  const StreamingRunResult serial =
      EstimateSeriesStreaming(fx.routing, fx.truth, base);

  for (std::size_t threads : {2u, 8u}) {
    for (std::size_t capacity : {1u, 3u, 64u}) {
      StreamingOptions opts = base;
      opts.threads = threads;
      opts.queueCapacity = capacity;
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " capacity=" + std::to_string(capacity));
      const StreamingRunResult run =
          EstimateSeriesStreaming(fx.routing, fx.truth, opts);
      ExpectBitIdentical(serial.estimates, run.estimates);
      ExpectBitIdentical(serial.priors, run.priors);
    }
  }
}

TEST(StreamingEstimator, CompressedTraceReplayBitIdentical) {
  // The whole point of the codec layer: replaying a compressed trace
  // must produce byte-identical estimates to the raw trace, for every
  // codec and worker count.
  StreamFixture fx;
  const std::string rawPath = TempPath("replay_raw.ictmb");
  WriteTraceFile(rawPath, fx.truth,
                 TraceWriterOptions{8, ChunkCodec::kRaw, 0});

  StreamingOptions base;
  base.f = 0.25;
  base.window = 8;
  for (std::size_t threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StreamingOptions opts = base;
    opts.threads = threads;
    TraceReader rawReader(rawPath, TraceReaderOptions{true});
    const StreamingRunResult reference =
        EstimateSeriesStreaming(fx.routing, rawReader.readAll(), opts);
    for (const ChunkCodec codec :
         {ChunkCodec::kShuffleLz, ChunkCodec::kDelta}) {
      SCOPED_TRACE(ChunkCodecName(codec));
      const std::string path = TempPath("replay_codec.ictmb");
      TraceWriterOptions writerOptions;
      writerOptions.binsPerChunk = 8;
      writerOptions.codec = codec;
      writerOptions.compressThreads = 2;
      WriteTraceFile(path, fx.truth, writerOptions);
      TraceReader reader(path, TraceReaderOptions{true});
      const StreamingRunResult run =
          EstimateSeriesStreaming(fx.routing, reader.readAll(), opts);
      ExpectBitIdentical(reference.estimates, run.estimates);
      ExpectBitIdentical(reference.priors, run.priors);
    }
  }
}

TEST(StreamingEstimator, MatchesBatchEstimateSeriesBitForBit) {
  StreamFixture fx;
  for (std::size_t window : {1u, 8u}) {
    for (std::size_t threads : {1u, 2u, 8u}) {
      StreamingOptions opts;
      opts.f = 0.25;
      opts.window = window;
      opts.threads = threads;
      SCOPED_TRACE("window=" + std::to_string(window) +
                   " threads=" + std::to_string(threads));
      const StreamingRunResult run =
          EstimateSeriesStreaming(fx.routing, fx.truth, opts);

      // The batch engine fed the exact priors the streaming path
      // derived must reproduce the streaming estimates bit for bit.
      core::EstimationOptions batch;
      batch.threads = 2;
      const auto reference = core::EstimateSeries(fx.routing, fx.truth,
                                                  run.priors, batch);
      ExpectBitIdentical(reference, run.estimates);
    }
  }
}

TEST(StreamingEstimator, WindowZeroReproducesBatchStableFPPrior) {
  StreamFixture fx;
  const linalg::Vector preference{0.30, 0.25, 0.15, 0.12, 0.10, 0.08};
  StreamingOptions opts;
  opts.f = 0.3;
  opts.preference = preference;
  opts.window = 0;
  opts.threads = 4;
  const StreamingRunResult run =
      EstimateSeriesStreaming(fx.routing, fx.truth, opts);

  const auto marginals = core::ExtractMarginals(fx.truth);
  const auto batchPrior = core::StableFPPrior(
      0.3, preference, marginals, fx.truth.binSeconds());
  ExpectBitIdentical(batchPrior, run.priors);
}

TEST(StreamingEstimator, RejectsBadConfiguration) {
  StreamFixture fx;
  auto noop = [](std::size_t, const double*, const double*) {};
  {
    StreamingOptions opts;
    opts.queueCapacity = 0;
    EXPECT_THROW(
        StreamingEstimator e(fx.routing, 6, opts, noop), Error);
  }
  {
    StreamingOptions opts;
    opts.f = 0.5;
    opts.window = 4;  // closed forms are singular at f = 1/2
    EXPECT_THROW(
        StreamingEstimator e(fx.routing, 6, opts, noop), Error);
  }
  {
    StreamingOptions opts;
    StreamingEstimator e(fx.routing, 6, opts, noop);
    BinEvent bad;
    bad.linkLoads.assign(fx.routing.rows(), 0.0);
    bad.ingress.assign(5, 0.0);  // wrong length
    bad.egress.assign(6, 0.0);
    EXPECT_THROW(e.push(std::move(bad)), Error);
    e.finish();
    EXPECT_THROW(e.push(BinEvent{}), Error);
  }
}

TEST(StreamingEstimator, WorkerFailurePropagatesWithoutDeadlock) {
  // Regression for the PR-6 TSan audit: fail() used to flip `failed`
  // and notify outside queueMutex, so a producer blocked on a full
  // queue could miss the wakeup and hang forever.  queueCapacity = 1
  // keeps push() blocked on notFull while the worker fails, which is
  // exactly the lost-wakeup window.
  StreamFixture fx;
  const std::size_t n = fx.truth.nodeCount();
  for (std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StreamingOptions opts;
    opts.threads = threads;
    opts.queueCapacity = 1;
    auto boom = [](std::size_t seq, const double*, const double*) {
      if (seq == 2) throw Error("callback exploded");
    };
    StreamingEstimator estimator(fx.routing, n, opts, boom);
    bool caught = false;
    try {
      for (std::size_t t = 0; t < fx.truth.binCount(); ++t) {
        estimator.push(MakeBinEvent(fx.routing, n, fx.truth.binData(t)));
      }
      estimator.finish();
    } catch (const Error& e) {
      caught = true;
      EXPECT_NE(std::string(e.what()).find("callback exploded"),
                std::string::npos);
    }
    EXPECT_TRUE(caught) << "worker failure was swallowed";
  }
}

// ---- connection aggregator -------------------------------------------------

TEST(ConnectionAggregator, ReproducesGeneratorSeriesAndLinkLoads) {
  const std::size_t n = 5;
  const std::size_t bins = 6;
  topology::Graph g = topology::MakeRing(n, 2);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  conngen::GeneratorConfig cfg;
  cfg.activities.assign(n, std::vector<double>(bins, 5e6));
  cfg.preferences.assign(n, 1.0);
  stats::Rng rng(21);
  std::vector<conngen::Connection> connections;
  const auto generated =
      conngen::GenerateTraffic(cfg, 300.0, rng, &connections);

  traffic::TrafficMatrixSeries rebuilt(n, bins, 300.0);
  std::vector<std::vector<double>> loads;
  ConnectionAggregator aggr(
      routing, n,
      [&](std::size_t bin, const BinEvent& event, const double* tmBin) {
        ASSERT_LT(bin, bins);
        std::copy(tmBin, tmBin + n * n, rebuilt.binData(bin));
        loads.push_back(event.linkLoads);
        // Marginals must match the accumulated bin.
        for (std::size_t i = 0; i < n; ++i) {
          double rowSum = 0.0, colSum = 0.0;
          for (std::size_t j = 0; j < n; ++j) {
            rowSum += tmBin[i * n + j];
            colSum += tmBin[j * n + i];
          }
          EXPECT_DOUBLE_EQ(event.ingress[i], rowSum);
          EXPECT_DOUBLE_EQ(event.egress[i], colSum);
        }
      });
  for (const auto& c : connections) aggr.add(c);
  aggr.flush();

  ASSERT_EQ(aggr.binsEmitted(), bins);
  ExpectBitIdentical(generated.series, rebuilt);

  // Link loads equal R · x for every emitted bin.
  std::vector<double> expected(routing.rows());
  for (std::size_t t = 0; t < bins; ++t) {
    routing.MultiplyInto(generated.series.binData(t), expected.data());
    for (std::size_t l = 0; l < expected.size(); ++l) {
      EXPECT_EQ(loads[t][l], expected[l]) << "bin " << t;
    }
  }
}

TEST(ConnectionAggregator, EmitsEmptyBinsForGapsAndRejectsRegression) {
  const std::size_t n = 3;
  topology::Graph g = topology::MakeRing(n, 1);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  std::vector<std::size_t> seen;
  ConnectionAggregator aggr(
      routing, n,
      [&](std::size_t bin, const BinEvent&, const double*) {
        seen.push_back(bin);
      });
  aggr.add({0, 1, 0, 100.0, 50.0, 2});  // first activity in bin 2
  aggr.add({1, 2, 0, 10.0, 5.0, 4});
  EXPECT_THROW(aggr.add({0, 1, 0, 1.0, 1.0, 3}), Error);  // goes back
  aggr.flush();
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ---- end-to-end: connections → aggregator → estimator ----------------------

TEST(StreamingPipeline, ConnectionsToEstimatesEndToEnd) {
  const std::size_t n = 6;
  const std::size_t bins = 12;
  topology::Graph g = topology::MakeRing(n, 2);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  conngen::GeneratorConfig cfg;
  cfg.activities.assign(n, std::vector<double>(bins, 2e7));
  cfg.preferences = {4.0, 3.0, 2.0, 1.0, 1.0, 1.0};
  stats::Rng rng(5);
  std::vector<conngen::Connection> connections;
  const auto generated =
      conngen::GenerateTraffic(cfg, 300.0, rng, &connections);

  StreamingOptions opts;
  opts.threads = 4;
  opts.window = 4;
  traffic::TrafficMatrixSeries estimates(n, bins, 300.0);
  StreamingEstimator estimator(
      routing, n, opts,
      [&](std::size_t seq, const double* estimate, const double*) {
        std::copy(estimate, estimate + n * n, estimates.binData(seq));
      });
  ConnectionAggregator aggr(
      routing, n,
      [&](std::size_t, const BinEvent& event, const double*) {
        estimator.push(BinEvent(event));
      });
  for (const auto& c : connections) aggr.add(c);
  aggr.flush();
  estimator.finish();

  EXPECT_EQ(estimator.emittedCount(), bins);
  EXPECT_TRUE(estimates.isValid());
  // Estimates respect the marginals (IPF step): ingress sums match.
  for (std::size_t t = 0; t < bins; ++t) {
    const auto estIn = estimates.ingress(t);
    const auto truthIn = generated.series.ingress(t);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(estIn[i], truthIn[i],
                  1e-6 * std::max(1.0, truthIn[i]));
    }
  }
}

}  // namespace
}  // namespace ictm::stream
