// Tests for the streaming subsystem: the ictmb binary trace format
// (round-trip, CRC rejection, converters), the StreamingEstimator's
// streaming ≡ batch bit-identity contract, and the connection
// aggregator.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "conngen/generator.hpp"
#include "core/estimation.hpp"
#include "core/priors.hpp"
#include "stats/rng.hpp"
#include "stream/aggregate.hpp"
#include "stream/format.hpp"
#include "stream/online.hpp"
#include "test_util.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "traffic/io.hpp"

namespace ictm::stream {
namespace {

// Temp paths, trace fixtures and the bit-identity assertion live in
// tests/test_util.hpp, shared with the scenario, topology-format and
// server suites.
using test::ExpectBitIdentical;
using test::RandomSeries;
using test::TempPath;

// ---- binary format ---------------------------------------------------------

TEST(TraceFormat, RoundTripsAtFullPrecision) {
  const auto series = RandomSeries(5, 23, 7);
  const std::string path = TempPath("roundtrip.ictmb");
  // binsPerChunk = 4 forces several chunks plus a partial tail chunk.
  WriteTraceFile(path, series, 4);

  TraceReader reader(path);
  EXPECT_EQ(reader.info().nodes, 5u);
  EXPECT_EQ(reader.info().bins, 23u);
  EXPECT_DOUBLE_EQ(reader.info().binSeconds, 300.0);
  EXPECT_EQ(reader.info().binsPerChunk, 4u);
  EXPECT_EQ(reader.info().chunks, 6u);  // 5 full + 1 partial

  const auto back = reader.readAll();
  ExpectBitIdentical(series, back);
}

TEST(TraceFormat, StreamingWriterMatchesWholeSeriesWriter) {
  const auto series = RandomSeries(3, 10, 11);
  const std::string a = TempPath("writer_a.ictmb");
  const std::string b = TempPath("writer_b.ictmb");
  WriteTraceFile(a, series, 4);
  {
    TraceWriter writer(b, series.nodeCount(), series.binSeconds(), 4);
    for (std::size_t t = 0; t < series.binCount(); ++t) {
      writer.append(series.binData(t));
    }
    writer.close();
    EXPECT_EQ(writer.binsWritten(), 10u);
  }
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  std::string ca((std::istreambuf_iterator<char>(fa)),
                 std::istreambuf_iterator<char>());
  std::string cb((std::istreambuf_iterator<char>(fb)),
                 std::istreambuf_iterator<char>());
  EXPECT_EQ(ca, cb);  // byte-identical files
}

TEST(TraceFormat, RandomAccessSeek) {
  const auto series = RandomSeries(4, 17, 3);
  const std::string path = TempPath("seek.ictmb");
  WriteTraceFile(path, series, 5);

  TraceReader reader(path);
  std::vector<double> bin(16);
  for (std::size_t t : {13u, 2u, 16u, 0u, 9u}) {
    reader.seek(t);
    ASSERT_TRUE(reader.next(bin.data()));
    for (std::size_t k = 0; k < 16; ++k) {
      EXPECT_EQ(bin[k], series.binData(t)[k]) << "bin " << t;
    }
  }
  reader.seek(17);
  EXPECT_FALSE(reader.next(bin.data()));
  EXPECT_THROW(reader.seek(18), Error);
}

TEST(TraceFormat, RejectsTruncationAndCorruption) {
  const auto series = RandomSeries(3, 8, 5);
  const std::string path = TempPath("corrupt.ictmb");
  WriteTraceFile(path, series, 4);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Truncation loses the footer/index.
  {
    const std::string p = TempPath("truncated.ictmb");
    std::ofstream out(p, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    EXPECT_THROW(TraceReader r(p), Error);
  }
  // A flipped payload byte fails the chunk CRC (header is 40 bytes;
  // offset 60 sits inside the first chunk's payload).
  {
    std::string damaged = bytes;
    damaged[60] = static_cast<char>(damaged[60] ^ 0x01);
    const std::string p = TempPath("bitflip.ictmb");
    std::ofstream out(p, std::ios::binary);
    out.write(damaged.data(),
              static_cast<std::streamsize>(damaged.size()));
    out.close();
    TraceReader reader(p);  // header/index still valid
    std::vector<double> bin(9);
    EXPECT_THROW(reader.next(bin.data()), Error);
  }
  // A flipped index byte fails the index CRC at open.
  {
    std::string damaged = bytes;
    damaged[damaged.size() - 30] =
        static_cast<char>(damaged[damaged.size() - 30] ^ 0x01);
    const std::string p = TempPath("badindex.ictmb");
    std::ofstream out(p, std::ios::binary);
    out.write(damaged.data(),
              static_cast<std::streamsize>(damaged.size()));
    out.close();
    EXPECT_THROW(TraceReader r(p), Error);
  }
  // Not a trace at all.
  {
    const std::string p = TempPath("not_a_trace.ictmb");
    std::ofstream out(p);
    out << "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,2,3,4\n";
    out.close();
    EXPECT_FALSE(IsTraceFile(p));
    EXPECT_THROW(TraceReader r(p), Error);
  }
  EXPECT_TRUE(IsTraceFile(path));
}

TEST(TraceFormat, CsvConvertersRoundTrip) {
  const auto series = RandomSeries(4, 9, 13);
  const std::string csv = TempPath("convert_in.csv");
  const std::string trace = TempPath("convert.ictmb");
  const std::string csvBack = TempPath("convert_out.csv");
  traffic::WriteCsvFile(csv, series);

  ConvertCsvToTrace(csv, trace, 4);
  ExpectBitIdentical(series, ReadTraceFile(trace));

  ConvertTraceToCsv(trace, csvBack);
  ExpectBitIdentical(series, traffic::ReadCsvFile(csvBack));
}

// ---- streaming estimator ---------------------------------------------------

struct StreamFixture {
  topology::Graph graph = topology::MakeRing(6, 2);
  linalg::CsrMatrix routing = topology::BuildRoutingCsr(graph);
  traffic::TrafficMatrixSeries truth = RandomSeries(6, 24, 99);
};

TEST(StreamingEstimator, BitIdenticalAcrossThreadsAndQueueSizes) {
  StreamFixture fx;
  StreamingOptions base;
  base.f = 0.25;
  base.window = 8;
  base.threads = 1;
  const StreamingRunResult serial =
      EstimateSeriesStreaming(fx.routing, fx.truth, base);

  for (std::size_t threads : {2u, 8u}) {
    for (std::size_t capacity : {1u, 3u, 64u}) {
      StreamingOptions opts = base;
      opts.threads = threads;
      opts.queueCapacity = capacity;
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " capacity=" + std::to_string(capacity));
      const StreamingRunResult run =
          EstimateSeriesStreaming(fx.routing, fx.truth, opts);
      ExpectBitIdentical(serial.estimates, run.estimates);
      ExpectBitIdentical(serial.priors, run.priors);
    }
  }
}

TEST(StreamingEstimator, MatchesBatchEstimateSeriesBitForBit) {
  StreamFixture fx;
  for (std::size_t window : {1u, 8u}) {
    for (std::size_t threads : {1u, 2u, 8u}) {
      StreamingOptions opts;
      opts.f = 0.25;
      opts.window = window;
      opts.threads = threads;
      SCOPED_TRACE("window=" + std::to_string(window) +
                   " threads=" + std::to_string(threads));
      const StreamingRunResult run =
          EstimateSeriesStreaming(fx.routing, fx.truth, opts);

      // The batch engine fed the exact priors the streaming path
      // derived must reproduce the streaming estimates bit for bit.
      core::EstimationOptions batch;
      batch.threads = 2;
      const auto reference = core::EstimateSeries(fx.routing, fx.truth,
                                                  run.priors, batch);
      ExpectBitIdentical(reference, run.estimates);
    }
  }
}

TEST(StreamingEstimator, WindowZeroReproducesBatchStableFPPrior) {
  StreamFixture fx;
  const linalg::Vector preference{0.30, 0.25, 0.15, 0.12, 0.10, 0.08};
  StreamingOptions opts;
  opts.f = 0.3;
  opts.preference = preference;
  opts.window = 0;
  opts.threads = 4;
  const StreamingRunResult run =
      EstimateSeriesStreaming(fx.routing, fx.truth, opts);

  const auto marginals = core::ExtractMarginals(fx.truth);
  const auto batchPrior = core::StableFPPrior(
      0.3, preference, marginals, fx.truth.binSeconds());
  ExpectBitIdentical(batchPrior, run.priors);
}

TEST(StreamingEstimator, RejectsBadConfiguration) {
  StreamFixture fx;
  auto noop = [](std::size_t, const double*, const double*) {};
  {
    StreamingOptions opts;
    opts.queueCapacity = 0;
    EXPECT_THROW(
        StreamingEstimator e(fx.routing, 6, opts, noop), Error);
  }
  {
    StreamingOptions opts;
    opts.f = 0.5;
    opts.window = 4;  // closed forms are singular at f = 1/2
    EXPECT_THROW(
        StreamingEstimator e(fx.routing, 6, opts, noop), Error);
  }
  {
    StreamingOptions opts;
    StreamingEstimator e(fx.routing, 6, opts, noop);
    BinEvent bad;
    bad.linkLoads.assign(fx.routing.rows(), 0.0);
    bad.ingress.assign(5, 0.0);  // wrong length
    bad.egress.assign(6, 0.0);
    EXPECT_THROW(e.push(std::move(bad)), Error);
    e.finish();
    EXPECT_THROW(e.push(BinEvent{}), Error);
  }
}

TEST(StreamingEstimator, WorkerFailurePropagatesWithoutDeadlock) {
  // Regression for the PR-6 TSan audit: fail() used to flip `failed`
  // and notify outside queueMutex, so a producer blocked on a full
  // queue could miss the wakeup and hang forever.  queueCapacity = 1
  // keeps push() blocked on notFull while the worker fails, which is
  // exactly the lost-wakeup window.
  StreamFixture fx;
  const std::size_t n = fx.truth.nodeCount();
  for (std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StreamingOptions opts;
    opts.threads = threads;
    opts.queueCapacity = 1;
    auto boom = [](std::size_t seq, const double*, const double*) {
      if (seq == 2) throw Error("callback exploded");
    };
    StreamingEstimator estimator(fx.routing, n, opts, boom);
    bool caught = false;
    try {
      for (std::size_t t = 0; t < fx.truth.binCount(); ++t) {
        estimator.push(MakeBinEvent(fx.routing, n, fx.truth.binData(t)));
      }
      estimator.finish();
    } catch (const Error& e) {
      caught = true;
      EXPECT_NE(std::string(e.what()).find("callback exploded"),
                std::string::npos);
    }
    EXPECT_TRUE(caught) << "worker failure was swallowed";
  }
}

// ---- connection aggregator -------------------------------------------------

TEST(ConnectionAggregator, ReproducesGeneratorSeriesAndLinkLoads) {
  const std::size_t n = 5;
  const std::size_t bins = 6;
  topology::Graph g = topology::MakeRing(n, 2);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  conngen::GeneratorConfig cfg;
  cfg.activities.assign(n, std::vector<double>(bins, 5e6));
  cfg.preferences.assign(n, 1.0);
  stats::Rng rng(21);
  std::vector<conngen::Connection> connections;
  const auto generated =
      conngen::GenerateTraffic(cfg, 300.0, rng, &connections);

  traffic::TrafficMatrixSeries rebuilt(n, bins, 300.0);
  std::vector<std::vector<double>> loads;
  ConnectionAggregator aggr(
      routing, n,
      [&](std::size_t bin, const BinEvent& event, const double* tmBin) {
        ASSERT_LT(bin, bins);
        std::copy(tmBin, tmBin + n * n, rebuilt.binData(bin));
        loads.push_back(event.linkLoads);
        // Marginals must match the accumulated bin.
        for (std::size_t i = 0; i < n; ++i) {
          double rowSum = 0.0, colSum = 0.0;
          for (std::size_t j = 0; j < n; ++j) {
            rowSum += tmBin[i * n + j];
            colSum += tmBin[j * n + i];
          }
          EXPECT_DOUBLE_EQ(event.ingress[i], rowSum);
          EXPECT_DOUBLE_EQ(event.egress[i], colSum);
        }
      });
  for (const auto& c : connections) aggr.add(c);
  aggr.flush();

  ASSERT_EQ(aggr.binsEmitted(), bins);
  ExpectBitIdentical(generated.series, rebuilt);

  // Link loads equal R · x for every emitted bin.
  std::vector<double> expected(routing.rows());
  for (std::size_t t = 0; t < bins; ++t) {
    routing.MultiplyInto(generated.series.binData(t), expected.data());
    for (std::size_t l = 0; l < expected.size(); ++l) {
      EXPECT_EQ(loads[t][l], expected[l]) << "bin " << t;
    }
  }
}

TEST(ConnectionAggregator, EmitsEmptyBinsForGapsAndRejectsRegression) {
  const std::size_t n = 3;
  topology::Graph g = topology::MakeRing(n, 1);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  std::vector<std::size_t> seen;
  ConnectionAggregator aggr(
      routing, n,
      [&](std::size_t bin, const BinEvent&, const double*) {
        seen.push_back(bin);
      });
  aggr.add({0, 1, 0, 100.0, 50.0, 2});  // first activity in bin 2
  aggr.add({1, 2, 0, 10.0, 5.0, 4});
  EXPECT_THROW(aggr.add({0, 1, 0, 1.0, 1.0, 3}), Error);  // goes back
  aggr.flush();
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ---- end-to-end: connections → aggregator → estimator ----------------------

TEST(StreamingPipeline, ConnectionsToEstimatesEndToEnd) {
  const std::size_t n = 6;
  const std::size_t bins = 12;
  topology::Graph g = topology::MakeRing(n, 2);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  conngen::GeneratorConfig cfg;
  cfg.activities.assign(n, std::vector<double>(bins, 2e7));
  cfg.preferences = {4.0, 3.0, 2.0, 1.0, 1.0, 1.0};
  stats::Rng rng(5);
  std::vector<conngen::Connection> connections;
  const auto generated =
      conngen::GenerateTraffic(cfg, 300.0, rng, &connections);

  StreamingOptions opts;
  opts.threads = 4;
  opts.window = 4;
  traffic::TrafficMatrixSeries estimates(n, bins, 300.0);
  StreamingEstimator estimator(
      routing, n, opts,
      [&](std::size_t seq, const double* estimate, const double*) {
        std::copy(estimate, estimate + n * n, estimates.binData(seq));
      });
  ConnectionAggregator aggr(
      routing, n,
      [&](std::size_t, const BinEvent& event, const double*) {
        estimator.push(BinEvent(event));
      });
  for (const auto& c : connections) aggr.add(c);
  aggr.flush();
  estimator.finish();

  EXPECT_EQ(estimator.emittedCount(), bins);
  EXPECT_TRUE(estimates.isValid());
  // Estimates respect the marginals (IPF step): ingress sums match.
  for (std::size_t t = 0; t < bins; ++t) {
    const auto estIn = estimates.ingress(t);
    const auto truthIn = generated.series.ingress(t);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(estIn[i], truthIn[i],
                  1e-6 * std::max(1.0, truthIn[i]));
    }
  }
}

}  // namespace
}  // namespace ictm::stream
