// Tests for the QR and SVD factorisations and the pseudo-inverse.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "test_util.hpp"

namespace ictm::linalg {
namespace {

TEST(HouseholderQR, ReconstructsInput) {
  stats::Rng rng(1);
  const Matrix a = test::RandomMatrix(8, 5, rng);
  HouseholderQR qr(a);
  test::ExpectMatrixNear(qr.thinQ() * qr.thinR(), a, 1e-10);
}

TEST(HouseholderQR, ThinQHasOrthonormalColumns) {
  stats::Rng rng(2);
  const Matrix a = test::RandomMatrix(9, 4, rng);
  const Matrix q = HouseholderQR(a).thinQ();
  test::ExpectMatrixNear(q.transposed() * q, Matrix::Identity(4), 1e-10);
}

TEST(HouseholderQR, SolvesSquareSystemExactly) {
  const Matrix a{{2, 1}, {1, 3}};
  const Vector x{1.5, -2.0};
  const Vector b = a * x;
  test::ExpectVectorNear(HouseholderQR(a).solve(b), x, 1e-12);
}

TEST(HouseholderQR, LeastSquaresMatchesNormalEquations) {
  stats::Rng rng(3);
  const Matrix a = test::RandomMatrix(12, 4, rng);
  const Vector b = test::RandomVector(12, rng);
  const Vector x = HouseholderQR(a).solve(b);
  // Normal equations: A^T A x = A^T b.
  test::ExpectVectorNear(a.transposed() * (a * x),
                         TransposeTimes(a, b), 1e-9);
}

TEST(HouseholderQR, RejectsWideMatrices) {
  EXPECT_THROW(HouseholderQR(Matrix(2, 5)), ictm::Error);
}

TEST(HouseholderQR, RankDetectsDeficiency) {
  // Second column is twice the first.
  Matrix a(5, 2);
  stats::Rng rng(4);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = rng.uniform();
    a(i, 1) = 2.0 * a(i, 0);
  }
  HouseholderQR qr(a);
  EXPECT_EQ(qr.rank(1e-10), 1u);
  EXPECT_THROW(qr.solve(Vector(5, 1.0)), ictm::Error);
}

TEST(HouseholderQR, SolveMultipleRhs) {
  stats::Rng rng(5);
  const Matrix a = test::RandomMatrix(6, 3, rng);
  const Matrix xTrue = test::RandomMatrix(3, 2, rng);
  const Matrix b = a * xTrue;
  test::ExpectMatrixNear(HouseholderQR(a).solve(b), xTrue, 1e-9);
}

TEST(Svd, ReconstructsTallMatrix) {
  stats::Rng rng(6);
  const Matrix a = test::RandomMatrix(7, 4, rng);
  test::ExpectMatrixNear(ComputeSvd(a).reconstruct(), a, 1e-10);
}

TEST(Svd, ReconstructsWideMatrix) {
  stats::Rng rng(7);
  const Matrix a = test::RandomMatrix(3, 8, rng);
  test::ExpectMatrixNear(ComputeSvd(a).reconstruct(), a, 1e-10);
}

TEST(Svd, SingularValuesSortedNonNegative) {
  stats::Rng rng(8);
  const SvdResult svd = ComputeSvd(test::RandomMatrix(6, 6, rng));
  for (std::size_t i = 0; i + 1 < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i], svd.s[i + 1]);
  }
  EXPECT_GE(svd.s.back(), 0.0);
}

TEST(Svd, FactorsAreOrthonormal) {
  stats::Rng rng(9);
  const SvdResult svd = ComputeSvd(test::RandomMatrix(8, 5, rng));
  test::ExpectMatrixNear(svd.u.transposed() * svd.u, Matrix::Identity(5),
                         1e-10);
  test::ExpectMatrixNear(svd.v.transposed() * svd.v, Matrix::Identity(5),
                         1e-10);
}

TEST(Svd, KnownDiagonalMatrix) {
  const SvdResult svd = ComputeSvd(Matrix::Diagonal({3.0, 1.0, 2.0}));
  EXPECT_NEAR(svd.s[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.s[1], 2.0, 1e-12);
  EXPECT_NEAR(svd.s[2], 1.0, 1e-12);
}

TEST(Svd, RankOfLowRankMatrix) {
  // Outer product => rank 1.
  Matrix a(5, 4);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      a(i, j) = double(i + 1) * double(j + 1);
  EXPECT_EQ(ComputeSvd(a).rank(1e-10), 1u);
}

TEST(Svd, MatchesQrOnFullRank) {
  // ||A||_2 from SVD equals sqrt(largest eigenvalue of A^T A) —
  // cross-check the two factorizations agree on the Frobenius norm.
  stats::Rng rng(10);
  const Matrix a = test::RandomMatrix(6, 4, rng);
  const SvdResult svd = ComputeSvd(a);
  double fro2 = 0.0;
  for (double s : svd.s) fro2 += s * s;
  EXPECT_NEAR(std::sqrt(fro2), a.frobeniusNorm(), 1e-10);
}

// --- Moore–Penrose conditions for the pseudo-inverse -------------------

class PinvProperty : public ::testing::TestWithParam<
                         std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(PinvProperty, MoorePenroseConditions) {
  const auto [rows, cols, seed] = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(seed));
  const Matrix a = test::RandomMatrix(rows, cols, rng);
  const Matrix p = PseudoInverse(a);
  ASSERT_EQ(p.rows(), cols);
  ASSERT_EQ(p.cols(), rows);
  // 1. A P A = A;  2. P A P = P;  3/4. (AP), (PA) symmetric.
  test::ExpectMatrixNear(a * p * a, a, 1e-8);
  test::ExpectMatrixNear(p * a * p, p, 1e-8);
  test::ExpectMatrixNear((a * p).transposed(), a * p, 1e-8);
  test::ExpectMatrixNear((p * a).transposed(), p * a, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PinvProperty,
    ::testing::Values(std::make_tuple(5, 5, 11), std::make_tuple(8, 3, 12),
                      std::make_tuple(3, 8, 13), std::make_tuple(10, 7, 14),
                      std::make_tuple(4, 9, 15), std::make_tuple(6, 6, 16)));

TEST(Pinv, RankDeficientStillSatisfiesConditions) {
  // Rank-2 matrix built from two outer products.
  stats::Rng rng(20);
  const Matrix u = test::RandomMatrix(6, 2, rng);
  const Matrix v = test::RandomMatrix(2, 5, rng);
  const Matrix a = u * v;
  const Matrix p = PseudoInverse(a);
  test::ExpectMatrixNear(a * p * a, a, 1e-8);
  test::ExpectMatrixNear(p * a * p, p, 1e-8);
}

TEST(Pinv, InverseOfInvertibleMatrix) {
  const Matrix a{{2, 0}, {0, 4}};
  test::ExpectMatrixNear(PseudoInverse(a), Matrix{{0.5, 0}, {0, 0.25}},
                         1e-12);
}

TEST(SolveMinNorm, PicksMinimumNormSolution) {
  // Underdetermined: x0 + x1 = 2 has min-norm solution (1, 1).
  const Matrix a{{1, 1}};
  const Vector x = SolveMinNorm(a, {2.0});
  test::ExpectVectorNear(x, {1.0, 1.0}, 1e-10);
}

TEST(SolveMinNorm, ConsistentWithQrOnFullRank) {
  stats::Rng rng(21);
  const Matrix a = test::RandomMatrix(9, 4, rng);
  const Vector b = test::RandomVector(9, rng);
  test::ExpectVectorNear(SolveMinNorm(a, b), HouseholderQR(a).solve(b),
                         1e-8);
}

}  // namespace
}  // namespace ictm::linalg
