// Fault-tolerance battery for the estimation server: kill the server
// mid-stream at randomized (seeded) points, restart it on the same
// checkpoint directory, reconnect with the session key, and assert
// the concatenated estimate frames are byte-identical to an
// uninterrupted run.  Also covers the CheckpointStore file format
// (corruption fallback, retention, drop) and the StreamingEstimator
// checkpoint/resume contract the whole scheme rests on.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/checkpoint.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "stats/rng.hpp"
#include "stream/online.hpp"
#include "test_util.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"

namespace ictm::server {
namespace {

constexpr char kSpec[] = "abilene11";
constexpr std::size_t kBins = 48;
constexpr std::uint64_t kWindow = 5;
constexpr double kF = 0.3;

/// The uninterrupted `ictm stream` baseline, framed as the server
/// frames it.
std::vector<std::vector<std::uint8_t>> BaselinePayloads(
    const traffic::TrafficMatrixSeries& truth) {
  const topology::Graph graph = topology::MakeTopology(kSpec, 0);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(graph);
  stream::StreamingOptions options;
  options.window = kWindow;
  options.f = kF;
  const stream::StreamingRunResult run =
      stream::EstimateSeriesStreaming(routing, truth, options);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(truth.binCount());
  for (std::size_t t = 0; t < truth.binCount(); ++t) {
    payloads.push_back(EncodeEstimatePayload(
        t, run.estimates.binData(t), run.priors.binData(t),
        truth.nodeCount()));
  }
  return payloads;
}

HelloRequest HelloFor(const std::string& sessionKey) {
  HelloRequest hello;
  hello.topologySpec = kSpec;
  hello.f = kF;
  hello.window = kWindow;
  hello.threads = 2;
  hello.queueCapacity = 8;
  hello.sessionKey = sessionKey;
  return hello;
}

std::unique_ptr<Server> StartServer(const std::string& socketName,
                                    const std::string& checkpointDir,
                                    std::size_t checkpointEvery) {
  ServerOptions options;
  if (!Endpoint::Parse(test::TempPath(socketName), &options.listen)) {
    ADD_FAILURE() << "bad endpoint";
    return nullptr;
  }
  options.checkpointDir = checkpointDir;
  options.limits.checkpointEvery = checkpointEvery;
  // Keep the per-session pipeline shallow (tiny output queue and
  // socket buffers) so a gated client bounds how far the server can
  // run ahead — the kill below must land mid-stream, never after the
  // whole run has drained into kernel buffers.
  options.limits.outputQueueCapacity = 2;
  options.limits.socketBufferBytes = 4096;
  auto server = std::make_unique<Server>(options);
  std::string error;
  if (!server->start(&error)) {
    ADD_FAILURE() << error;
    return nullptr;
  }
  return server;
}

/// Runs a client whose receiver gates (blocks) once `gateAt` frames
/// arrived, keeps it gated until the caller stopped the server, then
/// drains whatever was already buffered.  Returns the (unfinished)
/// result — this is the deterministic "crash mid-stream" harness.
ClientResult RunClientKilledAt(Server* server, const HelloRequest& hello,
                               const Client::BinSource& source,
                               std::size_t gateAt) {
  std::mutex mutex;
  std::condition_variable reachedCv;
  std::condition_variable gateCv;
  std::size_t received = 0;
  bool gateOpen = false;
  ClientResult result;
  std::thread clientThread([&] {
    ClientConfig config{server->endpoint(), hello, 4096};
    result = Client::Run(
        config, kBins, source,
        [&](std::uint64_t, const std::vector<std::uint8_t>&) {
          std::unique_lock<std::mutex> lock(mutex);
          if (++received >= gateAt) {
            reachedCv.notify_all();
            gateCv.wait(lock, [&] { return gateOpen; });
          }
        });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    reachedCv.wait(lock, [&] { return received >= gateAt; });
  }
  server->stop();  // crash: abortive, no graceful drain
  {
    std::lock_guard<std::mutex> lock(mutex);
    gateOpen = true;
  }
  gateCv.notify_all();
  clientThread.join();
  return result;
}

TEST(ServerResume, KillAtRandomizedCheckpointsThenResumeBitIdentical) {
  const auto truth = test::RandomSeries(11, kBins, 301);
  const auto baseline = BaselinePayloads(truth);
  const auto source = [&truth](std::uint64_t seq) {
    return truth.binData(static_cast<std::size_t>(seq));
  };

  // Seeded randomized kill points: each trial gates the client after
  // a different number of received frames, then stops the server
  // abortively — the crash the checkpoint scheme promises to survive.
  stats::Rng rng(20260807);
  for (int trial = 0; trial < 3; ++trial) {
    // The shallow pipeline caps the server's run-ahead at roughly a
    // dozen frames past the gate, so any gate in [1, kBins/2) kills
    // strictly mid-stream.
    const auto killAfter =
        static_cast<std::size_t>(rng.uniform(1.0, double(kBins / 2)));
    SCOPED_TRACE("trial " + std::to_string(trial) + " killAfter " +
                 std::to_string(killAfter));
    const std::string checkpointDir =
        test::TempPath("resume_ckpt_" + std::to_string(trial));
    const std::string sessionKey = "resume-job-" + std::to_string(trial);

    // --- first run: killed mid-stream -------------------------------
    auto server = StartServer("resume_a_" + std::to_string(trial) + ".sock",
                              checkpointDir, /*checkpointEvery=*/4);
    ASSERT_NE(server, nullptr);
    const ClientResult first = RunClientKilledAt(
        server.get(), HelloFor(sessionKey), source, killAfter);
    ASSERT_FALSE(first.finished);
    const std::uint64_t have = first.estimatePayloads.size();
    ASSERT_GE(have, killAfter);
    ASSERT_LT(have, static_cast<std::uint64_t>(kBins));

    // --- second run: restart, reconnect, resume ---------------------
    server = StartServer("resume_b_" + std::to_string(trial) + ".sock",
                         checkpointDir, /*checkpointEvery=*/4);
    ASSERT_NE(server, nullptr);
    HelloRequest hello = HelloFor(sessionKey);
    hello.resume = true;
    hello.clientFrames = have;
    const ClientResult second =
        Client::Run({server->endpoint(), hello, 0}, kBins, source);
    ASSERT_TRUE(second.finished)
        << second.transportError
        << (second.serverError ? " / " + second.serverError->message : "");
    // The server resumed from a durable checkpoint at or before the
    // client's received count, on a checkpoint boundary.
    EXPECT_LE(second.resumeFrom, have);
    EXPECT_EQ(second.resumeFrom % 4, 0u);
    ASSERT_EQ(second.firstFrameSeq, have);

    // The concatenation across the crash is the uninterrupted run.
    std::vector<std::vector<std::uint8_t>> combined = first.estimatePayloads;
    combined.insert(combined.end(), second.estimatePayloads.begin(),
                    second.estimatePayloads.end());
    ASSERT_EQ(combined.size(), baseline.size());
    for (std::size_t t = 0; t < baseline.size(); ++t) {
      ASSERT_EQ(combined[t], baseline[t])
          << "estimate frame " << t << " differs across the crash";
    }

    // Clean completion dropped the session's checkpoints.
    CheckpointStore store(checkpointDir);
    EXPECT_FALSE(store.load(sessionKey, kBins).has_value());
    server->stop();
  }
}

TEST(ServerResume, ResumeWithChangedOptionsIsRefused) {
  const auto truth = test::RandomSeries(11, kBins, 302);
  const auto source = [&truth](std::uint64_t seq) {
    return truth.binData(static_cast<std::size_t>(seq));
  };
  const std::string checkpointDir = test::TempPath("resume_mismatch_ckpt");

  auto server = StartServer("mismatch_a.sock", checkpointDir, 4);
  ASSERT_NE(server, nullptr);
  const ClientResult first =
      RunClientKilledAt(server.get(), HelloFor("mismatch-job"), source, 10);
  ASSERT_FALSE(first.finished);

  server = StartServer("mismatch_b.sock", checkpointDir, 4);
  ASSERT_NE(server, nullptr);
  HelloRequest hello = HelloFor("mismatch-job");
  hello.resume = true;
  hello.clientFrames = first.estimatePayloads.size();
  hello.window = kWindow + 1;  // config echo mismatch
  const ClientResult second =
      Client::Run({server->endpoint(), hello, 0}, kBins, source);
  EXPECT_FALSE(second.finished);
  ASSERT_TRUE(second.serverError.has_value());
  EXPECT_EQ(second.serverError->code, ErrorCode::kSessionMismatch);
  server->stop();
}

TEST(CheckpointStoreFormat, RoundTripRetentionCorruptionAndDrop) {
  const std::string dir = test::TempPath("ckpt_store_unit");
  CheckpointStore store(dir, /*keep=*/2);

  SessionCheckpoint checkpoint;
  checkpoint.sessionKey = "unit/key with spaces";
  checkpoint.topologySpec = "ring:6";
  checkpoint.topologySeed = 7;
  checkpoint.f = 0.4;
  checkpoint.window = 3;
  checkpoint.state.preference = linalg::Vector{0.1, 0.2, 0.3};
  checkpoint.state.windowIngress = linalg::Vector{1.0, 2.0, 3.0};
  checkpoint.state.windowEgress = linalg::Vector{4.0, 5.0, 6.0};
  for (const std::uint64_t seq : {4u, 8u, 12u}) {
    checkpoint.state.seq = seq;
    checkpoint.state.windowFill = static_cast<std::size_t>(seq % 3);
    store.save(checkpoint);
  }

  // keep=2 pruned the oldest.
  EXPECT_FALSE(store.load(checkpoint.sessionKey, 7).has_value());
  const auto at10 = store.load(checkpoint.sessionKey, 10);
  ASSERT_TRUE(at10.has_value());
  EXPECT_EQ(at10->state.seq, 8u);
  EXPECT_EQ(at10->topologySpec, "ring:6");
  EXPECT_EQ(at10->f, 0.4);
  EXPECT_EQ(at10->state.preference, checkpoint.state.preference);
  EXPECT_EQ(at10->state.windowIngress, checkpoint.state.windowIngress);

  const auto newest = store.load(checkpoint.sessionKey, 100);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->state.seq, 12u);

  // A torn newest file must fall back to the older good checkpoint.
  std::filesystem::path newestFile;
  std::uint64_t newestSeq = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    const auto dash = name.rfind('-');
    const std::uint64_t seq = std::stoull(name.substr(dash + 1));
    if (seq >= newestSeq) {
      newestSeq = seq;
      newestFile = entry.path();
    }
  }
  std::filesystem::resize_file(newestFile,
                               std::filesystem::file_size(newestFile) / 2);
  const auto fallback = store.load(checkpoint.sessionKey, 100);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->state.seq, 8u);

  // Wrong key sees nothing; drop removes everything.
  EXPECT_FALSE(store.load("other-key", 100).has_value());
  store.drop(checkpoint.sessionKey);
  EXPECT_FALSE(store.load(checkpoint.sessionKey, 100).has_value());
}

TEST(StreamingCheckpointContract, ResumedEstimatorIsBitIdentical) {
  // The library-level fact the server build on: checkpoint at k,
  // resume a fresh estimator, feed bins [k, T) — outputs match the
  // uninterrupted run bit for bit.
  const std::size_t nodes = 8;
  const std::size_t bins = 30;
  const std::size_t k = 13;  // deliberately not a window boundary
  const auto truth = test::RandomSeries(nodes, bins, 303);
  const topology::Graph graph = topology::MakeTopology("ring:8:2", 0);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(graph);

  stream::StreamingOptions options;
  options.window = 4;
  options.f = kF;
  const stream::StreamingRunResult whole =
      stream::EstimateSeriesStreaming(routing, truth, options);

  traffic::TrafficMatrixSeries resumedEstimates(nodes, bins);
  traffic::TrafficMatrixSeries resumedPriors(nodes, bins);
  const auto collect = [&](std::size_t seq, const double* estimate,
                           const double* prior) {
    double* e = resumedEstimates.binData(seq);
    double* p = resumedPriors.binData(seq);
    for (std::size_t i = 0; i < nodes * nodes; ++i) {
      e[i] = estimate[i];
      p[i] = prior[i];
    }
  };

  stream::StreamingCheckpoint saved;
  {
    stream::StreamingEstimator estimator(routing, nodes, options, collect);
    for (std::size_t t = 0; t < k; ++t) {
      estimator.push(stream::MakeBinEvent(routing, nodes, truth.binData(t)));
    }
    saved = estimator.checkpoint();
    estimator.finish();
  }
  EXPECT_EQ(saved.seq, k);
  {
    stream::StreamingOptions resumedOptions = options;
    resumedOptions.resume = saved;
    stream::StreamingEstimator estimator(routing, nodes, resumedOptions,
                                         collect);
    for (std::size_t t = k; t < bins; ++t) {
      estimator.push(stream::MakeBinEvent(routing, nodes, truth.binData(t)));
    }
    estimator.finish();
  }

  test::ExpectBitIdentical(resumedEstimates, whole.estimates);
  test::ExpectBitIdentical(resumedPriors, whole.priors);
}

}  // namespace
}  // namespace ictm::server
