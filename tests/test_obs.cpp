// Tests for the observability layer (src/obs/): the metrics registry
// (counters, gauges, histograms, snapshot/flatten), the tracing
// session, and the determinism contract — deterministic-class metrics
// are identical across thread counts, and neither metrics nor tracing
// ever changes an estimation output byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/now.hpp"
#include "obs/trace.hpp"
#include "stream/online.hpp"
#include "test_util.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"

namespace ictm {
namespace {

using test::ExpectBitIdentical;
using test::RandomSeries;
using test::TempPath;

// The registry is process-global; every test starts from zeroed
// metrics (names stay registered) with recording on.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Instance().reset();
  }
};

#if defined(ICTM_OBS_DISABLED)
#define SKIP_WHEN_COMPILED_OUT() \
  GTEST_SKIP() << "observability layer compiled out (ICTM_OBS=OFF)"
#else
#define SKIP_WHEN_COMPILED_OUT() (void)0
#endif

// ---- primitives ------------------------------------------------------------

TEST_F(ObsTest, CounterAccumulatesAcrossThreads) {
  SKIP_WHEN_COMPILED_OUT();
  obs::Counter& c =
      obs::GetCounter("test.counter", obs::MetricClass::kDeterministic);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  c.add(5);
  EXPECT_EQ(c.value(), 8005u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeTracksLevelAndHighWaterMark) {
  SKIP_WHEN_COMPILED_OUT();
  obs::Gauge& g = obs::GetGauge("test.gauge", obs::MetricClass::kTiming);
  g.set(10);
  g.recordMax(10);
  g.add(-3);
  g.recordMax(7);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(g.maxValue(), 10);
  g.recordMax(42);
  EXPECT_EQ(g.maxValue(), 42);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.maxValue(), 0);
}

TEST_F(ObsTest, HistogramBucketsByInclusiveUpperBound) {
  SKIP_WHEN_COMPILED_OUT();
  obs::Histogram& h = obs::GetHistogram(
      "test.hist", obs::MetricClass::kTiming, {1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0
  h.record(1.0);    // bucket 0 (inclusive upper bound)
  h.record(5.0);    // bucket 1
  h.record(100.0);  // bucket 2
  h.record(1e6);    // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST_F(ObsTest, ExponentialBoundsAreAscendingDecades) {
  const auto b = obs::ExponentialBounds(1.0, 10.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 10.0);
  EXPECT_DOUBLE_EQ(b[2], 100.0);
  EXPECT_EQ(obs::LatencyBoundsNs().size(), 8u);
  EXPECT_DOUBLE_EQ(obs::LatencyBoundsNs().front(), 1e3);
}

TEST_F(ObsTest, RegistryReturnsStableReferencesAndFirstClassWins) {
  obs::Counter& a =
      obs::GetCounter("test.stable", obs::MetricClass::kDeterministic);
  obs::Counter& b =
      obs::GetCounter("test.stable", obs::MetricClass::kTiming);
  EXPECT_EQ(&a, &b);  // same object; re-registration cannot fork it
  const auto snap = obs::Registry::Instance().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == "test.stable") {
      EXPECT_EQ(c.cls, obs::MetricClass::kDeterministic);
    }
  }
}

TEST_F(ObsTest, SetEnabledGatesRecording) {
  SKIP_WHEN_COMPILED_OUT();
  obs::Counter& c =
      obs::GetCounter("test.gated", obs::MetricClass::kDeterministic);
  obs::SetEnabled(false);
  c.add(7);
  EXPECT_EQ(c.value(), 0u);
  obs::SetEnabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsTest, SnapshotIsNameSortedAndFlattenCoversEverything) {
  SKIP_WHEN_COMPILED_OUT();
  obs::GetCounter("test.z", obs::MetricClass::kDeterministic).add(1);
  obs::GetCounter("test.a", obs::MetricClass::kDeterministic).add(2);
  obs::GetGauge("test.g", obs::MetricClass::kTiming).set(3);
  obs::GetHistogram("test.h", obs::MetricClass::kTiming, {1.0}).record(0.5);

  const auto snap = obs::Registry::Instance().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }

  const auto flat = snap.flatten();
  for (std::size_t i = 1; i < flat.size(); ++i) {
    EXPECT_LT(flat[i - 1].first, flat[i].first);
  }
  std::map<std::string, std::uint64_t> byName(flat.begin(), flat.end());
  EXPECT_EQ(byName.at("test.z"), 1u);
  EXPECT_EQ(byName.at("test.a"), 2u);
  EXPECT_EQ(byName.at("test.g"), 3u);
  EXPECT_EQ(byName.at("test.g.max"), 3u);
  EXPECT_EQ(byName.at("test.h.count"), 1u);
}

TEST_F(ObsTest, JsonSnapshotCarriesSchemaAndClasses) {
  SKIP_WHEN_COMPILED_OUT();
  obs::GetCounter("test.json", obs::MetricClass::kDeterministic).add(4);
  obs::GetHistogram("test.jh", obs::MetricClass::kTiming, {1.0}).record(2.0);
  const std::string json = obs::Registry::Instance().snapshot().toJson();
  EXPECT_NE(json.find("\"ictm-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"inf\""), std::string::npos);  // overflow bucket
}

#if !defined(ICTM_OBS_DISABLED)
TEST(ObsNow, MonotonicAndNonZero) {
  const std::uint64_t a = obs::Now();
  const std::uint64_t b = obs::Now();
  EXPECT_GT(a, 0u);
  EXPECT_GE(b, a);
}
#endif

// ---- determinism contract --------------------------------------------------

struct StreamFixture {
  topology::Graph graph = topology::MakeRing(6, 2);
  linalg::CsrMatrix routing = topology::BuildRoutingCsr(graph);
  traffic::TrafficMatrixSeries truth = RandomSeries(6, 24, 99);
};

stream::StreamingOptions FixtureOptions(std::size_t threads) {
  stream::StreamingOptions opts;
  opts.f = 0.25;
  opts.window = 8;
  opts.threads = threads;
  // cg exercises the PCG iteration/residual metrics on every bin.
  opts.estimation.solver = core::SolverKind::kCg;
  return opts;
}

/// Every deterministic-class value in the registry, keyed so two runs
/// can be compared exactly: counters by name, histograms by per-bucket
/// counts.  Timing-class metrics are excluded by definition.
std::map<std::string, std::uint64_t> DeterministicValues() {
  const obs::MetricsSnapshot snap = obs::Registry::Instance().snapshot();
  std::map<std::string, std::uint64_t> out;
  for (const auto& c : snap.counters) {
    if (c.cls == obs::MetricClass::kDeterministic) out[c.name] = c.value;
  }
  for (const auto& h : snap.histograms) {
    if (h.cls != obs::MetricClass::kDeterministic) continue;
    out[h.name + ".count"] = h.total;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out[h.name + ".bucket" + std::to_string(i)] = h.counts[i];
    }
  }
  return out;
}

TEST_F(ObsTest, DeterministicMetricsIdenticalAcrossThreadCounts) {
  SKIP_WHEN_COMPILED_OUT();
  StreamFixture fx;

  obs::Registry::Instance().reset();
  const auto serial =
      stream::EstimateSeriesStreaming(fx.routing, fx.truth,
                                      FixtureOptions(1));
  const auto serialMetrics = DeterministicValues();
  EXPECT_GT(serialMetrics.at("stream.bins_pushed"), 0u);
  EXPECT_GT(serialMetrics.at("pcg.solves"), 0u);
  EXPECT_GT(serialMetrics.at("solver.solves.cg"), 0u);

  obs::Registry::Instance().reset();
  const auto threaded =
      stream::EstimateSeriesStreaming(fx.routing, fx.truth,
                                      FixtureOptions(8));
  const auto threadedMetrics = DeterministicValues();

  ExpectBitIdentical(serial.estimates, threaded.estimates);
  EXPECT_EQ(serialMetrics, threadedMetrics);
}

TEST_F(ObsTest, DisablingMetricsDoesNotChangeResults) {
  StreamFixture fx;

  const auto enabled =
      stream::EstimateSeriesStreaming(fx.routing, fx.truth,
                                      FixtureOptions(4));

  obs::SetEnabled(false);
  const auto disabled =
      stream::EstimateSeriesStreaming(fx.routing, fx.truth,
                                      FixtureOptions(4));
  obs::SetEnabled(true);

  ExpectBitIdentical(enabled.estimates, disabled.estimates);
  ExpectBitIdentical(enabled.priors, disabled.priors);
}

TEST_F(ObsTest, TracingChangesNeitherResultsNorDeterministicMetrics) {
  SKIP_WHEN_COMPILED_OUT();
  StreamFixture fx;

  obs::Registry::Instance().reset();
  const auto plain =
      stream::EstimateSeriesStreaming(fx.routing, fx.truth,
                                      FixtureOptions(4));
  const auto plainMetrics = DeterministicValues();

  const std::string tracePath = TempPath("obs_run.trace.json");
  std::string error;
  ASSERT_TRUE(obs::tracing::Start(tracePath, &error)) << error;
  obs::Registry::Instance().reset();
  const auto traced =
      stream::EstimateSeriesStreaming(fx.routing, fx.truth,
                                      FixtureOptions(4));
  const auto tracedMetrics = DeterministicValues();
  ASSERT_TRUE(obs::tracing::Stop(&error)) << error;

  ExpectBitIdentical(plain.estimates, traced.estimates);
  ExpectBitIdentical(plain.priors, traced.priors);
  EXPECT_EQ(plainMetrics, tracedMetrics);
  std::remove(tracePath.c_str());
}

// ---- tracing sessions ------------------------------------------------------

TEST_F(ObsTest, TraceFileIsWellFormedChromeTraceJson) {
  SKIP_WHEN_COMPILED_OUT();
  const std::string path = TempPath("obs_wellformed.trace.json");
  std::string error;
  ASSERT_TRUE(obs::tracing::Start(path, &error)) << error;
  EXPECT_TRUE(obs::tracing::Active());
  // A second Start on an active session must fail cleanly.
  EXPECT_FALSE(obs::tracing::Start(path, &error));
  {
    obs::TraceScope outer("outer", "test");
    obs::TraceScope inner("inner", "test");
    obs::tracing::Instant("marker", "test");
  }
  std::thread worker([] { obs::TraceScope s("worker_scope", "test"); });
  worker.join();
  ASSERT_TRUE(obs::tracing::Stop(&error)) << error;
  EXPECT_FALSE(obs::tracing::Active());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker_scope\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);

  // Structural balance; no payload string can contain braces (names
  // are identifiers), so a raw count is a real well-formedness check.
  long braces = 0, brackets = 0;
  for (char ch : json) {
    braces += ch == '{';
    braces -= ch == '}';
    brackets += ch == '[';
    brackets -= ch == ']';
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TraceStartFailsOnUnwritablePath) {
  std::string error;
  EXPECT_FALSE(
      obs::tracing::Start("/nonexistent-dir/trace.json", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::tracing::Active());
}

}  // namespace
}  // namespace ictm
