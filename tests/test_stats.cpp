// Tests for distributions, MLE fitting, and descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"
#include "stats/fitting.hpp"
#include "stats/summary.hpp"
#include "test_util.hpp"

namespace ictm::stats {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
  EXPECT_THROW(rng.uniform(3.0, 2.0), ictm::Error);
}

TEST(Rng, GaussianMoments) {
  Rng rng(2);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), ictm::Error);
}

TEST(Rng, PoissonMean) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += double(rng.poisson(7.5));
  EXPECT_NEAR(sum / n, 7.5, 0.15);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(10);
  Rng b = a.fork();
  // Forked stream should not reproduce the parent's next draws.
  bool allEqual = true;
  for (int i = 0; i < 8; ++i) {
    if (a.uniform() != b.uniform()) allEqual = false;
  }
  EXPECT_FALSE(allEqual);
}

TEST(Lognormal, PdfIntegratesToCdf) {
  const Lognormal d(0.5, 0.8);
  // Numerical integral of the pdf approximates the cdf.
  double acc = 0.0;
  const double dx = 1e-3;
  for (double x = dx / 2; x < 4.0; x += dx) acc += d.pdf(x) * dx;
  EXPECT_NEAR(acc, d.cdf(4.0), 1e-3);
}

TEST(Lognormal, CdfCcdfComplement) {
  const Lognormal d(-4.3, 1.7);
  for (double x : {0.001, 0.01, 0.1, 1.0}) {
    EXPECT_NEAR(d.cdf(x) + d.ccdf(x), 1.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(-1.0), 0.0);
}

TEST(Lognormal, SampleMomentsMatchTheory) {
  const Lognormal d(1.0, 0.5);
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), d.mean() * 0.02);
  EXPECT_THROW(Lognormal(0.0, 0.0), ictm::Error);
}

TEST(Exponential, BasicProperties) {
  const Exponential d(2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_NEAR(d.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.ccdf(0.5), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.pdf(-1.0), 0.0);
  EXPECT_THROW(Exponential(0.0), ictm::Error);
}

TEST(Pareto, TailAndMean) {
  const Pareto d(1.0, 2.5);
  EXPECT_NEAR(d.mean(), 2.5 / 1.5, 1e-12);
  EXPECT_NEAR(d.ccdf(2.0), std::pow(0.5, 2.5), 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_THROW(Pareto(1.0, 0.9).mean(), ictm::Error);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_GE(d.sample(rng), 1.0);
}

TEST(NormalCdfFn, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(DiscreteSampling, RespectsWeights) {
  Rng rng(6);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  DiscreteSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
  EXPECT_NEAR(sampler.probability(1), 0.3, 1e-12);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), ictm::Error);
  EXPECT_THROW(SampleDiscrete(rng, {}), ictm::Error);
}

TEST(FitLognormal, RecoversParameters) {
  const Lognormal truth(-4.3, 1.7);
  Rng rng(7);
  std::vector<double> xs(20000);
  for (double& x : xs) x = truth.sample(rng);
  const Lognormal fit = FitLognormalMle(xs);
  EXPECT_NEAR(fit.mu(), -4.3, 0.05);
  EXPECT_NEAR(fit.sigma(), 1.7, 0.05);
  EXPECT_THROW(FitLognormalMle({1.0, -1.0}), ictm::Error);
}

TEST(FitExponential, RecoversRate) {
  const Exponential truth(0.25);
  Rng rng(8);
  std::vector<double> xs(20000);
  for (double& x : xs) x = truth.sample(rng);
  EXPECT_NEAR(FitExponentialMle(xs).lambda(), 0.25, 0.01);
}

TEST(Fitting, LognormalWinsOnLognormalData) {
  // The Fig. 7 comparison: on lognormal samples the lognormal fit must
  // dominate the exponential on likelihood, KS and log-CCDF MSE.
  const Lognormal truth(-4.3, 1.7);
  Rng rng(9);
  std::vector<double> xs(500);
  for (double& x : xs) x = truth.sample(rng);
  const Lognormal lnFit = FitLognormalMle(xs);
  const Exponential expFit = FitExponentialMle(xs);
  EXPECT_GT(LogLikelihood(lnFit, xs), LogLikelihood(expFit, xs));
  EXPECT_LT(KsStatistic(xs, lnFit), KsStatistic(xs, expFit));
  EXPECT_LT(LogCcdfMse(xs, lnFit), LogCcdfMse(xs, expFit));
}

TEST(Fitting, ExponentialWinsOnExponentialData) {
  const Exponential truth(1.0);
  Rng rng(10);
  std::vector<double> xs(2000);
  for (double& x : xs) x = truth.sample(rng);
  EXPECT_LT(KsStatistic(xs, FitExponentialMle(xs)),
            KsStatistic(xs, FitLognormalMle(xs)) + 0.05);
}

TEST(Summary, BasicMoments) {
  const Summary s = Summarize({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_THROW(Summarize({}), ictm::Error);
}

TEST(Quantiles, InterpolatedValues) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Median(xs), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2}, 0.5), 1.5);
  EXPECT_THROW(Quantile(xs, 1.5), ictm::Error);
}

TEST(Correlation, PerfectAndInverse) {
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_NEAR(PearsonCorrelation(x, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, {8, 6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {5, 5, 5, 5}), 0.0);
}

TEST(Correlation, SpearmanRankInvariantToMonotoneTransform) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};  // x^3: monotone
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(Correlation, FractionalRanksHandleTies) {
  const auto r = FractionalRanks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Ccdf, MonotoneNonIncreasing) {
  const auto ccdf = EmpiricalCcdf({3, 1, 2, 2, 5});
  for (std::size_t i = 0; i + 1 < ccdf.size(); ++i) {
    EXPECT_LT(ccdf[i].x, ccdf[i + 1].x);
    EXPECT_GE(ccdf[i].prob, ccdf[i + 1].prob);
  }
  // Largest sample has CCDF 0 (P(X > max) = 0).
  EXPECT_DOUBLE_EQ(ccdf.back().prob, 0.0);
  // First point: P(X > min) = 1 - count(min)/n = 1 - 1/5.
  EXPECT_NEAR(ccdf.front().prob, 0.8, 1e-12);
}

TEST(HistogramTest, CountsSumToSampleSize) {
  const auto h = MakeHistogram({1, 2, 3, 4, 5, 5.0}, 4);
  std::size_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, 6u);
  EXPECT_DOUBLE_EQ(h.lo, 1.0);
  EXPECT_DOUBLE_EQ(h.hi, 5.0);
  EXPECT_THROW(MakeHistogram({1.0}, 0), ictm::Error);
}

}  // namespace
}  // namespace ictm::stats
