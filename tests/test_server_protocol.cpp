// Frame-codec fuzz battery for the server wire protocol: truncated
// frames, oversize length prefixes, CRC bit-flips, unknown frame
// types and handshake replay must each be rejected with the right
// typed error frame — and a damaged session must never disturb its
// siblings.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/socket.hpp"
#include "stream/online.hpp"
#include "test_util.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"

namespace ictm::server {
namespace {

HelloRequest ValidHello() {
  HelloRequest hello;
  hello.topologySpec = "abilene11";
  hello.f = 0.3;
  hello.window = 4;
  hello.threads = 1;
  hello.queueCapacity = 8;
  return hello;
}

// ---- pure codec ------------------------------------------------------------

TEST(FrameCodec, RoundTripsEveryPayloadKind) {
  const HelloRequest hello = ValidHello();
  const auto helloPayload = hello.encode();
  const auto bytes =
      EncodeFrame(FrameType::kHello, helloPayload.data(), helloPayload.size());

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes.data(), bytes.size(), kMaxHandshakeFrameBytes,
                        &frame, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, FrameType::kHello);
  HelloRequest back;
  ASSERT_TRUE(back.decode(frame.payload));
  EXPECT_EQ(back.topologySpec, hello.topologySpec);
  EXPECT_EQ(back.f, hello.f);
  EXPECT_EQ(back.window, hello.window);
  EXPECT_EQ(back.queueCapacity, hello.queueCapacity);

  WelcomeReply welcome;
  welcome.nodes = 11;
  welcome.resumeFrom = 42;
  WelcomeReply welcomeBack;
  ASSERT_TRUE(welcomeBack.decode(welcome.encode()));
  EXPECT_EQ(welcomeBack.nodes, 11u);
  EXPECT_EQ(welcomeBack.resumeFrom, 42u);

  ErrorInfo error;
  error.code = ErrorCode::kBadSequence;
  error.message = "expected bin 3";
  ErrorInfo errorBack;
  ASSERT_TRUE(errorBack.decode(error.encode()));
  EXPECT_EQ(errorBack.code, ErrorCode::kBadSequence);
  EXPECT_EQ(errorBack.message, "expected bin 3");

  const std::size_t nodes = 3;
  std::vector<double> bin(nodes * nodes);
  for (std::size_t k = 0; k < bin.size(); ++k) bin[k] = double(k) * 1.5;
  const auto binPayload = EncodeBinPayload(7, bin.data(), nodes);
  std::uint64_t seq = 0;
  std::vector<double> binBack(nodes * nodes);
  ASSERT_TRUE(DecodeBinPayload(binPayload, nodes, &seq, binBack.data()));
  EXPECT_EQ(seq, 7u);
  EXPECT_EQ(bin, binBack);

  std::vector<double> prior(nodes * nodes, 2.0);
  const auto estPayload =
      EncodeEstimatePayload(9, bin.data(), prior.data(), nodes);
  std::vector<double> estBack(nodes * nodes), priorBack(nodes * nodes);
  ASSERT_TRUE(DecodeEstimatePayload(estPayload, nodes, &seq, estBack.data(),
                                    priorBack.data()));
  EXPECT_EQ(seq, 9u);
  EXPECT_EQ(bin, estBack);
  EXPECT_EQ(prior, priorBack);

  std::uint64_t count = 0;
  ASSERT_TRUE(DecodeCountPayload(EncodeCountPayload(123), &count));
  EXPECT_EQ(count, 123u);
}

TEST(FrameCodec, EveryTruncationAsksForMoreBytes) {
  const auto payload = EncodeCountPayload(5);
  const auto bytes =
      EncodeFrame(FrameType::kFin, payload.data(), payload.size());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(bytes.data(), len, kMaxHandshakeFrameBytes, &frame,
                          &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(FrameCodec, OversizeAndZeroLengthPrefixesAreRejected) {
  std::vector<std::uint8_t> bytes(8, 0);
  const std::uint32_t huge = 1u << 30;
  std::memcpy(bytes.data(), &huge, sizeof(huge));
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), kMaxHandshakeFrameBytes,
                        &frame, &consumed),
            DecodeStatus::kOversize);

  // A zero body length can never be valid; it must not spin as
  // kNeedMore forever.
  std::memset(bytes.data(), 0, bytes.size());
  EXPECT_EQ(DecodeFrame(bytes.data(), bytes.size(), kMaxHandshakeFrameBytes,
                        &frame, &consumed),
            DecodeStatus::kOversize);
}

TEST(FrameCodec, EveryCrcBitFlipIsDetected) {
  const auto payload = EncodeCountPayload(77);
  const auto clean =
      EncodeFrame(FrameType::kFin, payload.data(), payload.size());
  // Flip one bit in every body/CRC byte (the length prefix is not CRC
  // protected — flipping it changes framing, covered above).
  for (std::size_t i = 4; i < clean.size(); ++i) {
    auto damaged = clean;
    damaged[i] ^= 0x10;
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(damaged.data(), damaged.size(),
                          kMaxHandshakeFrameBytes, &frame, &consumed),
              DecodeStatus::kCrcMismatch)
        << "flipped byte " << i;
    EXPECT_EQ(consumed, damaged.size());
  }
}

TEST(FrameCodec, MalformedPayloadsFailToDecode) {
  HelloRequest hello;
  auto bytes = ValidHello().encode();
  bytes.pop_back();
  EXPECT_FALSE(hello.decode(bytes));  // truncated

  bytes = ValidHello().encode();
  bytes.push_back(0);
  EXPECT_FALSE(hello.decode(bytes));  // trailing junk

  auto badSolver = ValidHello();
  bytes = badSolver.encode();
  // The solver byte sits after sentinel(4) version(4) resume(1)
  // seed(8) f(8) window(8).
  bytes[4 + 4 + 1 + 8 + 8 + 8] = 0xee;
  EXPECT_FALSE(hello.decode(bytes));

  auto wrongOrder = ValidHello().encode();
  wrongOrder[0] ^= 0xff;  // byte-order sentinel
  EXPECT_FALSE(hello.decode(wrongOrder));

  WelcomeReply welcome;
  EXPECT_FALSE(welcome.decode(std::vector<std::uint8_t>(3, 0)));
  ErrorInfo error;
  EXPECT_FALSE(error.decode(std::vector<std::uint8_t>(1, 0)));
  std::uint64_t seq = 0;
  double bin[4] = {};
  EXPECT_FALSE(DecodeBinPayload(std::vector<std::uint8_t>(9, 0), 2, &seq,
                                bin));
}

TEST(FrameCodec, StatsReplyRoundTripsAndRejectsDamage) {
  StatsReply reply;
  reply.entries = {{"server.bins_received", 17},
                   {"server.sessions_opened", 2},
                   {"stream.bins_pushed", 17}};
  const auto bytes = reply.encode();

  StatsReply back;
  ASSERT_TRUE(back.decode(bytes));
  EXPECT_EQ(back.entries, reply.entries);

  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(back.decode(truncated));

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(back.decode(trailing));

  // An absurd entry count must be rejected before any allocation.
  std::vector<std::uint8_t> huge(sizeof(std::uint32_t));
  const std::uint32_t bigCount = 0xffffffffu;
  std::memcpy(huge.data(), &bigCount, sizeof(bigCount));
  EXPECT_FALSE(back.decode(huge));
}

TEST(FrameCodec, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kCrc), "crc");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kOversize), "oversize");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kHandshakeReplay),
               "handshake-replay");
  EXPECT_STREQ(ErrorCodeName(static_cast<ErrorCode>(999)), "unknown");
}

// ---- live-server rejection paths -------------------------------------------

/// Raw protocol probe: a socket plus a buffered frame reader, for
/// sending deliberately damaged bytes a well-behaved Client never
/// would.
struct Probe {
  Socket socket;
  std::vector<std::uint8_t> buffer;
  std::size_t parsed = 0;

  static Probe ConnectTo(const Server& server) {
    std::string error;
    Probe probe;
    probe.socket = Socket::Connect(server.endpoint(), &error);
    EXPECT_TRUE(probe.socket.valid()) << error;
    return probe;
  }

  bool sendRaw(const std::vector<std::uint8_t>& bytes) {
    return socket.sendAll(bytes.data(), bytes.size());
  }

  bool sendFrame(FrameType type, const std::vector<std::uint8_t>& payload) {
    return sendRaw(EncodeFrame(type, payload.data(), payload.size()));
  }

  /// Reads until one frame decodes (or the peer closes).
  bool readFrame(Frame* frame) {
    for (;;) {
      std::size_t consumed = 0;
      const DecodeStatus status =
          DecodeFrame(buffer.data() + parsed, buffer.size() - parsed,
                      1u << 24, frame, &consumed);
      if (status == DecodeStatus::kOk) {
        parsed += consumed;
        return true;
      }
      if (status != DecodeStatus::kNeedMore) return false;
      std::uint8_t chunk[4096];
      const long n = socket.recvSome(chunk, sizeof(chunk));
      if (n <= 0) return false;
      buffer.insert(buffer.end(), chunk, chunk + n);
    }
  }

  /// Expects the next inbound frame to be a typed error.
  void expectError(ErrorCode code) {
    Frame frame;
    ASSERT_TRUE(readFrame(&frame)) << "connection closed without an "
                                      "ERROR frame";
    ASSERT_EQ(frame.type, FrameType::kError);
    ErrorInfo info;
    ASSERT_TRUE(info.decode(frame.payload));
    EXPECT_EQ(info.code, code) << "message: " << info.message;
  }

  /// Completes a healthy handshake.
  void handshake(const HelloRequest& hello) {
    ASSERT_TRUE(sendFrame(FrameType::kHello, hello.encode()));
    Frame frame;
    ASSERT_TRUE(readFrame(&frame));
    ASSERT_EQ(frame.type, FrameType::kWelcome);
  }
};

class ProtocolServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    ASSERT_TRUE(Endpoint::Parse(
        test::TempPath("proto_server.sock"), &options.listen));
    server_ = std::make_unique<Server>(options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override { server_->stop(); }

  std::unique_ptr<Server> server_;
};

TEST_F(ProtocolServerTest, CrcDamageGetsTypedErrorWithoutHurtingSibling) {
  // Healthy sibling mid-handshake while the damage lands.
  Probe sibling = Probe::ConnectTo(*server_);
  sibling.handshake(ValidHello());

  Probe victim = Probe::ConnectTo(*server_);
  auto bytes = EncodeFrame(FrameType::kHello, ValidHello().encode().data(),
                           ValidHello().encode().size());
  bytes[bytes.size() - 1] ^= 0x01;  // CRC trailer bit-flip
  ASSERT_TRUE(victim.sendRaw(bytes));
  victim.expectError(ErrorCode::kCrc);

  // The sibling still streams fine after the victim's teardown.
  const std::size_t nodes = 11;
  const auto truth = test::RandomSeries(nodes, 3, 21);
  for (std::uint64_t t = 0; t < 3; ++t) {
    ASSERT_TRUE(sibling.sendFrame(
        FrameType::kBin,
        EncodeBinPayload(t, truth.binData(static_cast<std::size_t>(t)),
                         nodes)));
  }
  ASSERT_TRUE(sibling.sendFrame(FrameType::kFin, EncodeCountPayload(3)));
  std::size_t estimates = 0;
  for (;;) {
    Frame frame;
    ASSERT_TRUE(sibling.readFrame(&frame));
    if (frame.type == FrameType::kEstimate) {
      ++estimates;
      continue;
    }
    ASSERT_EQ(frame.type, FrameType::kFinAck);
    break;
  }
  EXPECT_EQ(estimates, 3u);
}

TEST_F(ProtocolServerTest, OversizeLengthPrefixIsRejected) {
  Probe probe = Probe::ConnectTo(*server_);
  std::vector<std::uint8_t> bytes(16, 0xab);
  const std::uint32_t huge = 1u << 28;
  std::memcpy(bytes.data(), &huge, sizeof(huge));
  ASSERT_TRUE(probe.sendRaw(bytes));
  probe.expectError(ErrorCode::kOversize);
}

TEST_F(ProtocolServerTest, UnknownFrameTypeIsRejected) {
  Probe probe = Probe::ConnectTo(*server_);
  const std::vector<std::uint8_t> empty;
  ASSERT_TRUE(probe.sendFrame(static_cast<FrameType>(99), empty));
  probe.expectError(ErrorCode::kUnknownType);
}

TEST_F(ProtocolServerTest, HandshakeReplayTearsTheSessionDown) {
  Probe probe = Probe::ConnectTo(*server_);
  probe.handshake(ValidHello());
  ASSERT_TRUE(probe.sendFrame(FrameType::kHello, ValidHello().encode()));
  probe.expectError(ErrorCode::kHandshakeReplay);
}

TEST_F(ProtocolServerTest, RefusalsCarryTheRightCode) {
  {
    Probe probe = Probe::ConnectTo(*server_);
    auto hello = ValidHello();
    hello.version = 99;
    ASSERT_TRUE(probe.sendFrame(FrameType::kHello, hello.encode()));
    probe.expectError(ErrorCode::kVersion);
  }
  {
    Probe probe = Probe::ConnectTo(*server_);
    auto hello = ValidHello();
    hello.topologySpec = "no-such-topology";
    ASSERT_TRUE(probe.sendFrame(FrameType::kHello, hello.encode()));
    probe.expectError(ErrorCode::kBadHandshake);
  }
  {
    // Non-positive queue capacity: the `--queue 0` class of bug is
    // rejected at the protocol boundary too, not only in the CLIs.
    Probe probe = Probe::ConnectTo(*server_);
    auto hello = ValidHello();
    hello.queueCapacity = 0;
    ASSERT_TRUE(probe.sendFrame(FrameType::kHello, hello.encode()));
    probe.expectError(ErrorCode::kBadHandshake);
  }
  {
    Probe probe = Probe::ConnectTo(*server_);
    auto hello = ValidHello();
    hello.f = 1.5;
    ASSERT_TRUE(probe.sendFrame(FrameType::kHello, hello.encode()));
    probe.expectError(ErrorCode::kBadHandshake);
  }
  {
    // This server has no checkpoint store, so resume cannot work.
    Probe probe = Probe::ConnectTo(*server_);
    auto hello = ValidHello();
    hello.resume = true;
    hello.sessionKey = "job-1";
    ASSERT_TRUE(probe.sendFrame(FrameType::kHello, hello.encode()));
    probe.expectError(ErrorCode::kUnknownSession);
  }
  {
    Probe probe = Probe::ConnectTo(*server_);
    ASSERT_TRUE(probe.sendFrame(FrameType::kFin, EncodeCountPayload(0)));
    probe.expectError(ErrorCode::kProtocol);  // FIN before HELLO
  }
}

TEST_F(ProtocolServerTest, StatsProbeReturnsSortedSnapshotThenCloses) {
  // One real handshake first, so server-side counters exist.
  Probe session = Probe::ConnectTo(*server_);
  session.handshake(ValidHello());

  Probe probe = Probe::ConnectTo(*server_);
  ASSERT_TRUE(probe.sendFrame(FrameType::kStats, {}));
  Frame frame;
  ASSERT_TRUE(probe.readFrame(&frame));
  ASSERT_EQ(frame.type, FrameType::kStats);
  StatsReply reply;
  ASSERT_TRUE(reply.decode(frame.payload));
  for (std::size_t i = 1; i < reply.entries.size(); ++i) {
    EXPECT_LT(reply.entries[i - 1].first, reply.entries[i].first);
  }
#if !defined(ICTM_OBS_DISABLED)
  std::uint64_t opened = 0;
  bool sawOpened = false;
  for (const auto& [name, value] : reply.entries) {
    if (name == "server.sessions_opened") {
      sawOpened = true;
      opened = value;
    }
  }
  EXPECT_TRUE(sawOpened);
  EXPECT_GE(opened, 1u);
#endif
  // The probe is one-shot: the server replies, then closes.
  EXPECT_FALSE(probe.readFrame(&frame));
}

TEST_F(ProtocolServerTest, StatsRefusalPaths) {
  {
    // Non-empty payload: protocol error, no reply.
    Probe probe = Probe::ConnectTo(*server_);
    const std::vector<std::uint8_t> junk{1, 2, 3};
    ASSERT_TRUE(probe.sendFrame(FrameType::kStats, junk));
    probe.expectError(ErrorCode::kProtocol);
  }
  {
    // STATS after the handshake: the session is torn down.
    Probe probe = Probe::ConnectTo(*server_);
    probe.handshake(ValidHello());
    ASSERT_TRUE(probe.sendFrame(FrameType::kStats, {}));
    probe.expectError(ErrorCode::kProtocol);
  }
}

TEST_F(ProtocolServerTest, ClientFetchStatsHelperDecodesTheReply) {
  StatsReply reply;
  std::string error;
  ASSERT_TRUE(Client::FetchStats(server_->endpoint(), &reply, &error))
      << error;
}

TEST_F(ProtocolServerTest, OutOfOrderBinIsRejected) {
  Probe probe = Probe::ConnectTo(*server_);
  probe.handshake(ValidHello());
  const std::size_t nodes = 11;
  const std::vector<double> bin(nodes * nodes, 1.0);
  ASSERT_TRUE(probe.sendFrame(FrameType::kBin,
                              EncodeBinPayload(5, bin.data(), nodes)));
  probe.expectError(ErrorCode::kBadSequence);
}

TEST(EndpointSpec, ParsesAndRejects) {
  Endpoint ep;
  ASSERT_TRUE(Endpoint::Parse("unix:/tmp/x.sock", &ep));
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/x.sock");
  ASSERT_TRUE(Endpoint::Parse("tcp:127.0.0.1:0", &ep));
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.port, 0);
  ASSERT_TRUE(Endpoint::Parse("/bare/path.sock", &ep));
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_FALSE(Endpoint::Parse("", &ep));
  EXPECT_FALSE(Endpoint::Parse("tcp:hostonly", &ep));
  EXPECT_FALSE(Endpoint::Parse("tcp:h:99999", &ep));
  EXPECT_FALSE(Endpoint::Parse("udp:1.2.3.4:5", &ep));
}

}  // namespace
}  // namespace ictm::server
