// Tests for the topology workbench: the .ictp parser/writer (error
// paths with line-indexed messages, canonical round trips), the
// synthetic generators (shape and seed determinism), and the registry
// spec resolution.
#include <gtest/gtest.h>

#include <fstream>

#include "core/estimation.hpp"
#include "core/gravity.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"
#include "topology/generators.hpp"
#include "topology/ictp.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"

namespace ictm::topology {
namespace {

// Expects ParseIctpString to throw and the message to contain every
// given fragment (used to pin the source:line prefix of errors).
void ExpectParseError(const std::string& text,
                      std::initializer_list<const char*> fragments) {
  try {
    ParseIctpString(text, "t.ictp");
    FAIL() << "expected ictm::Error for:\n" << text;
  } catch (const Error& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message '" << what << "' lacks '" << fragment << "'";
    }
  }
}

// ---- parser ----------------------------------------------------------------

TEST(IctpParse, MinimalTopology) {
  const Graph g = ParseIctpString(
      "# a comment\n"
      "ictp 1\n"
      "node a\n"
      "node b\n"
      "node c\n"
      "bilink a b 1.5\n"
      "link b c 2 5e9\n"
      "link c a 2.5   # trailing comment\n");
  EXPECT_EQ(g.nodeCount(), 3u);
  EXPECT_EQ(g.linkCount(), 4u);  // bilink expands to two links
  EXPECT_DOUBLE_EQ(g.link(0).igpWeight, 1.5);
  EXPECT_DOUBLE_EQ(g.link(2).capacityBps, 5e9);
  EXPECT_DOUBLE_EQ(g.link(3).capacityBps, 10e9);  // default capacity
  EXPECT_EQ(g.link(2).src, g.nodeByName("b"));
  EXPECT_EQ(g.link(2).dst, g.nodeByName("c"));
}

TEST(IctpParse, ErrorsCarrySourceAndLine) {
  // Duplicate node on line 4.
  ExpectParseError("ictp 1\nnode a\nnode b\nnode a\nbilink a b 1\n",
                   {"t.ictp:4", "duplicate node name 'a'"});
}

TEST(IctpParse, RejectsDanglingLinkEndpoint) {
  ExpectParseError("ictp 1\nnode a\nnode b\nbilink a b 1\nlink a zz 1\n",
                   {"t.ictp:5", "unknown node 'zz'"});
}

TEST(IctpParse, RejectsNonPositiveWeight) {
  ExpectParseError("ictp 1\nnode a\nnode b\nbilink a b 0\n",
                   {"t.ictp:4", "weight"});
  ExpectParseError("ictp 1\nnode a\nnode b\nbilink a b -2\n",
                   {"t.ictp:4", "weight"});
  ExpectParseError("ictp 1\nnode a\nnode b\nbilink a b nan\n",
                   {"t.ictp:4", "weight"});
  ExpectParseError("ictp 1\nnode a\nnode b\nbilink a b 1 0\n",
                   {"t.ictp:4", "capacity"});
}

TEST(IctpParse, RejectsSelfLoopAndBadFieldCounts) {
  ExpectParseError("ictp 1\nnode a\nbilink a a 1\n",
                   {"t.ictp:3", "self-loop"});
  ExpectParseError("ictp 1\nnode a\nnode b\nlink a b\n",
                   {"t.ictp:4", "3 or 4 fields"});
  ExpectParseError("ictp 1\nnode a b\n", {"t.ictp:2", "node takes"});
  ExpectParseError("ictp 1\nnode a\nnode b\nedge a b 1\n",
                   {"t.ictp:4", "unknown directive 'edge'"});
}

TEST(IctpParse, RejectsTruncatedOrMagiclessFiles) {
  ExpectParseError("", {"t.ictp", "missing 'ictp 1' magic"});
  ExpectParseError("# only comments\n\n", {"missing 'ictp 1' magic"});
  ExpectParseError("node a\n", {"t.ictp:1", "expected magic"});
  ExpectParseError("ictp 2\nnode a\n", {"unsupported ictp version"});
  ExpectParseError("ictp 1\n# no nodes follow\n", {"declares no nodes"});
}

TEST(IctpParse, RejectsDisconnectedTopologies) {
  ExpectParseError(
      "ictp 1\nnode a\nnode b\nnode c\nnode d\nbilink a b 1\n"
      "bilink c d 1\n",
      {"not strongly connected"});
  // One-way reachability is not enough either.
  ExpectParseError("ictp 1\nnode a\nnode b\nlink a b 1\n",
                   {"not strongly connected"});
}

// ---- writer ----------------------------------------------------------------

TEST(IctpWrite, CannedTopologyRoundTripsByteStable) {
  const Graph g = MakeGeant22();
  const std::string text = WriteIctpString(g);
  const Graph parsed = ParseIctpString(text);
  EXPECT_EQ(parsed.nodeCount(), g.nodeCount());
  EXPECT_EQ(parsed.linkCount(), g.linkCount());
  for (LinkId l = 0; l < g.linkCount(); ++l) {
    EXPECT_EQ(parsed.link(l).src, g.link(l).src);
    EXPECT_EQ(parsed.link(l).dst, g.link(l).dst);
    EXPECT_DOUBLE_EQ(parsed.link(l).igpWeight, g.link(l).igpWeight);
    EXPECT_DOUBLE_EQ(parsed.link(l).capacityBps, g.link(l).capacityBps);
  }
  // Canonical form is a fixed point: write(parse(write(g))) == write(g).
  EXPECT_EQ(WriteIctpString(parsed), text);
}

TEST(IctpWrite, FoldsBidirectionalPairsOnly) {
  Graph g;
  g.addNode("a");
  g.addNode("b");
  g.addNode("c");
  g.addBidirectionalLink(0, 1, 1.0);
  // Asymmetric pair: same endpoints, different weights — two links.
  g.addLink(1, 2, 1.0);
  g.addLink(2, 1, 2.0);
  g.addLink(2, 0, 1.0);
  g.addLink(0, 2, 1.0);  // reverse exists but is not adjacent
  const std::string text = WriteIctpString(g);
  EXPECT_NE(text.find("bilink a b 1"), std::string::npos);
  EXPECT_NE(text.find("link b c 1"), std::string::npos);
  EXPECT_NE(text.find("link c b 2"), std::string::npos);
  const Graph parsed = ParseIctpString(text);
  EXPECT_EQ(parsed.linkCount(), g.linkCount());
}

TEST(IctpWrite, FileRoundTrip) {
  const std::string path = test::TempPath("ictm_roundtrip.ictp");
  const Graph g = MakeAbilene11();
  WriteIctpFile(path, g);
  const Graph parsed = ReadIctpFile(path);
  EXPECT_EQ(parsed.nodeCount(), 11u);
  EXPECT_EQ(WriteIctpString(parsed), WriteIctpString(g));
  EXPECT_THROW(ReadIctpFile(path + ".missing"), Error);
}

// ---- generators ------------------------------------------------------------

TEST(Generators, GridShapeAndConnectivity) {
  const Graph g = MakeGrid(3, 4);
  EXPECT_EQ(g.nodeCount(), 12u);
  // 3*(4-1) horizontal + 4*(3-1) vertical bidirectional links.
  EXPECT_EQ(g.linkCount(), 2u * (3 * 3 + 4 * 2));
  EXPECT_TRUE(IsStronglyConnected(g));
  EXPECT_NO_THROW(g.nodeByName("g2_3"));
  EXPECT_THROW(MakeGrid(1, 1), Error);
  // Degenerate single row still connects.
  EXPECT_TRUE(IsStronglyConnected(MakeGrid(1, 5)));
}

TEST(Generators, HierarchyHitsExactNodeCountAcrossSizes) {
  for (std::size_t n : {std::size_t{3}, std::size_t{8}, std::size_t{22},
                        std::size_t{50}, std::size_t{100},
                        std::size_t{200}}) {
    HierarchyConfig cfg;
    cfg.nodes = n;
    const Graph g = MakeHierarchy(cfg, 7);
    EXPECT_EQ(g.nodeCount(), n) << n;
    EXPECT_TRUE(IsStronglyConnected(g)) << n;
  }
  EXPECT_THROW(MakeHierarchy({.nodes = 2}, 0), Error);
}

TEST(Generators, HierarchySameSeedIsByteIdentical) {
  HierarchyConfig cfg;
  cfg.nodes = 50;
  const std::string a = WriteIctpString(MakeHierarchy(cfg, 7));
  const std::string b = WriteIctpString(MakeHierarchy(cfg, 7));
  const std::string c = WriteIctpString(MakeHierarchy(cfg, 8));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // the seed jitters IGP weights
  // Jitter off: the seed no longer matters.
  cfg.weightJitter = 0.0;
  EXPECT_EQ(WriteIctpString(MakeHierarchy(cfg, 7)),
            WriteIctpString(MakeHierarchy(cfg, 8)));
}

TEST(Generators, WaxmanSeedReproducibleAndConnected) {
  WaxmanConfig cfg;
  cfg.nodes = 40;
  const std::string a = WriteIctpString(MakeWaxman(cfg, 3));
  const std::string b = WriteIctpString(MakeWaxman(cfg, 3));
  const std::string c = WriteIctpString(MakeWaxman(cfg, 4));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(IsStronglyConnected(MakeWaxman(cfg, 3)));
  // Sparse settings still come out connected (the component-joining
  // pass guarantees it).
  cfg.beta = 0.05;
  cfg.alpha = 0.05;
  EXPECT_TRUE(IsStronglyConnected(MakeWaxman(cfg, 11)));
  EXPECT_THROW(MakeWaxman({.nodes = 1}, 0), Error);
}

// ---- registry --------------------------------------------------------------

TEST(Registry, ListsCannedAndGeneratorFamilies) {
  const auto& all = ListTopologies();
  EXPECT_GE(all.size(), 7u);
  bool sawCanned = false, sawGenerator = false;
  for (const auto& info : all) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.spec.empty());
    EXPECT_FALSE(info.summary.empty());
    sawCanned = sawCanned || info.kind == "canned";
    sawGenerator = sawGenerator || info.kind == "generator";
  }
  EXPECT_TRUE(sawCanned);
  EXPECT_TRUE(sawGenerator);
}

TEST(Registry, ResolvesSpecs) {
  EXPECT_EQ(MakeTopology("geant22").nodeCount(), 22u);
  EXPECT_EQ(MakeTopology("totem23").nodeCount(), 23u);
  EXPECT_EQ(MakeTopology("abilene11").nodeCount(), 11u);
  EXPECT_EQ(MakeTopology("ring:8").nodeCount(), 8u);
  EXPECT_GT(MakeTopology("ring:8:2").linkCount(),
            MakeTopology("ring:8").linkCount());
  EXPECT_EQ(MakeTopology("grid:3x4").nodeCount(), 12u);
  EXPECT_EQ(MakeTopology("hierarchy:30", 5).nodeCount(), 30u);
  EXPECT_EQ(MakeTopology("waxman:20", 5).nodeCount(), 20u);
  EXPECT_EQ(MakeTopology("waxman:20:0.2:0.5", 5).nodeCount(), 20u);
}

TEST(Registry, RejectsMalformedSpecs) {
  EXPECT_THROW(MakeTopology(""), Error);
  EXPECT_THROW(MakeTopology("bogus"), Error);
  EXPECT_THROW(MakeTopology("geant22:5"), Error);
  EXPECT_THROW(MakeTopology("ring"), Error);
  EXPECT_THROW(MakeTopology("ring:2"), Error);
  EXPECT_THROW(MakeTopology("ring:x"), Error);
  EXPECT_THROW(MakeTopology("grid:3"), Error);
  EXPECT_THROW(MakeTopology("grid:3x"), Error);
  EXPECT_THROW(MakeTopology("hierarchy:0"), Error);
  EXPECT_THROW(MakeTopology("hierarchy:5:7"), Error);
  EXPECT_THROW(MakeTopology("waxman:20:-1:0.5"), Error);
  EXPECT_THROW(MakeTopology("no/such/file.ictp"), Error);
}

TEST(Registry, ResolvesIctpFiles) {
  const std::string path = test::TempPath("ictm_registry.ictp");
  {
    std::ofstream os(path);
    os << "ictp 1\nnode x\nnode y\nnode z\nbilink x y 1\nbilink y z 1\n";
  }
  EXPECT_TRUE(IsTopologyFileSpec(path));
  EXPECT_FALSE(IsTopologyFileSpec("hierarchy:50"));
  const Graph g = MakeTopology(path);
  EXPECT_EQ(g.nodeCount(), 3u);
  EXPECT_EQ(g.nodeByName("z"), 2u);
}

// ---- generated topologies feed the sparse estimation path ------------------

TEST(GeneratedEstimation, HierarchyRoutesAndEstimatesBitIdentically) {
  const Graph g = MakeTopology("hierarchy:12", 3);
  const std::size_t n = g.nodeCount();
  const linalg::CsrMatrix routing = BuildRoutingCsr(g);
  EXPECT_EQ(routing.cols(), n * n);
  EXPECT_EQ(routing.rows(), g.linkCount());

  stats::Rng rng(9);
  traffic::TrafficMatrixSeries truth(n, 4, 300.0);
  for (std::size_t t = 0; t < truth.binCount(); ++t) {
    for (std::size_t k = 0; k < n * n; ++k) {
      truth.binData(t)[k] = rng.uniform(1e5, 1e6);
    }
  }
  const auto priors = core::GravityPredictSeries(truth);

  core::EstimationOptions options;
  options.threads = 1;
  const auto est1 = core::EstimateSeries(routing, truth, priors, options);
  options.threads = 2;
  const auto est2 = core::EstimateSeries(routing, truth, priors, options);
  for (std::size_t t = 0; t < truth.binCount(); ++t) {
    const double* a = est1.binData(t);
    const double* b = est2.binData(t);
    for (std::size_t k = 0; k < n * n; ++k) {
      ASSERT_EQ(a[k], b[k]) << "bin " << t << " element " << k;
    }
  }
}

}  // namespace
}  // namespace ictm::topology
