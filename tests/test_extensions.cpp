// Tests for the extension modules: general-IC fitting (Sec. 5.6
// future work), cyclo-stationary model fitting (Sec. 5.4 future work)
// and bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <cmath>

#include "core/general_fit.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "dataset/datasets.hpp"
#include "stats/bootstrap.hpp"
#include "stats/summary.hpp"
#include "timeseries/cyclo_fit.hpp"
#include "timeseries/cyclostationary.hpp"
#include "test_util.hpp"

namespace ictm {
namespace {

// ---- general IC fit -----------------------------------------------------

// Builds an exact general-IC series with a chosen asymmetric F.
struct GeneralInstance {
  linalg::Matrix forwardFractions;
  linalg::Vector preference;
  linalg::Matrix activity;
  traffic::TrafficMatrixSeries series{1, 1};
};

GeneralInstance MakeGeneralInstance(std::size_t n, std::size_t bins,
                                    std::uint64_t seed,
                                    double asymmetry) {
  stats::Rng rng(seed);
  GeneralInstance inst;
  inst.preference = test::RandomPositiveVector(n, rng, 0.2, 2.0);
  const double s = linalg::Sum(inst.preference);
  for (double& p : inst.preference) p /= s;
  inst.forwardFractions = linalg::Matrix(n, n, 0.25);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double delta =
          asymmetry > 0.0 ? rng.uniform(-asymmetry, asymmetry) : 0.0;
      inst.forwardFractions(i, j) = std::clamp(0.25 + delta, 0.02, 0.6);
      inst.forwardFractions(j, i) = std::clamp(0.25 - delta, 0.02, 0.6);
    }
  }
  inst.activity = linalg::Matrix(n, bins);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = rng.uniform(1e5, 1e7);
    const double wobble = rng.uniform(0.2, 0.7);
    const double phase = rng.uniform(0.0, 6.0);
    for (std::size_t t = 0; t < bins; ++t) {
      inst.activity(i, t) =
          base * (1.0 + wobble * std::sin(phase + 0.41 * double(t) +
                                          0.13 * double(i * t)));
    }
  }
  inst.series = core::EvaluateGeneralIcSeries(
      inst.forwardFractions, inst.activity, inst.preference);
  return inst;
}

TEST(GeneralFit, EvaluateSeriesMatchesPerBin) {
  const GeneralInstance inst = MakeGeneralInstance(4, 6, 1, 0.15);
  for (std::size_t t = 0; t < 6; ++t) {
    test::ExpectMatrixNear(
        inst.series.bin(t),
        core::EvaluateGeneralIc(inst.forwardFractions,
                                inst.activity.col(t), inst.preference),
        1e-9);
  }
}

TEST(GeneralFit, BeatsSimplifiedOnAsymmetricData) {
  const GeneralInstance inst = MakeGeneralInstance(6, 40, 2, 0.2);
  const core::GeneralIcFit fit = core::FitGeneralIc(inst.series);
  EXPECT_LT(fit.objective, fit.simplifiedObjective);
  // And the general fit should be near-exact on exact general data.
  EXPECT_LT(fit.objective / 40.0, 0.05);
}

TEST(GeneralFit, RecoversAsymmetryMagnitude) {
  const GeneralInstance inst = MakeGeneralInstance(6, 60, 3, 0.18);
  const core::GeneralIcFit fit = core::FitGeneralIc(inst.series);
  const double trueAsym =
      core::ForwardFractionAsymmetry(inst.forwardFractions);
  const double fitAsym =
      core::ForwardFractionAsymmetry(fit.forwardFractions);
  EXPECT_NEAR(fitAsym, trueAsym, 0.5 * trueAsym + 0.02);
}

TEST(GeneralFit, SymmetricDataYieldsNearSymmetricF) {
  const GeneralInstance inst = MakeGeneralInstance(5, 40, 4, 0.0);
  const core::GeneralIcFit fit = core::FitGeneralIc(inst.series);
  EXPECT_LT(core::ForwardFractionAsymmetry(fit.forwardFractions), 0.08);
}

TEST(GeneralFit, FStaysInUnitInterval) {
  const GeneralInstance inst = MakeGeneralInstance(5, 25, 5, 0.3);
  const core::GeneralIcFit fit = core::FitGeneralIc(inst.series);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_GE(fit.forwardFractions(i, j), 0.0);
      EXPECT_LE(fit.forwardFractions(i, j), 1.0);
    }
  }
}

TEST(GeneralFit, ZeroRefinementRoundsEqualsSimplified) {
  const GeneralInstance inst = MakeGeneralInstance(4, 20, 6, 0.1);
  core::GeneralFitOptions opt;
  opt.refinementRounds = 0;
  const core::GeneralIcFit fit = core::FitGeneralIc(inst.series, opt);
  EXPECT_DOUBLE_EQ(fit.objective, fit.simplifiedObjective);
  // F is the constant simplified f.
  EXPECT_DOUBLE_EQ(fit.forwardFractions(0, 1),
                   fit.forwardFractions(1, 0));
}

TEST(GeneralFit, HelpsUnderRoutingAsymmetry) {
  // On hot-potato data (Sec. 5.6) the general model fits better than
  // the simplified one.
  dataset::DatasetConfig cfg;
  cfg.seed = 7;
  cfg.peakActivityBytes = 2e8;
  cfg.netflowSampling = false;
  cfg.routingAsymmetry = 0.4;
  const dataset::Dataset d = dataset::MakeSmallDataset(8, 42, 300.0, cfg);
  const core::GeneralIcFit fit = core::FitGeneralIc(d.measured);
  EXPECT_LT(fit.objective, fit.simplifiedObjective);
}

TEST(GeneralFit, AsymmetryMetricValidation) {
  EXPECT_THROW(core::ForwardFractionAsymmetry(linalg::Matrix(2, 3)),
               ictm::Error);
  EXPECT_THROW(core::ForwardFractionAsymmetry(linalg::Matrix(1, 1)),
               ictm::Error);
  linalg::Matrix f(3, 3, 0.25);
  EXPECT_DOUBLE_EQ(core::ForwardFractionAsymmetry(f), 0.0);
  f(0, 1) = 0.45;
  f(1, 0) = 0.05;
  EXPECT_NEAR(core::ForwardFractionAsymmetry(f), 0.4 / 3.0, 1e-12);
}

// ---- cyclo-stationary fitting -------------------------------------------

TEST(CycloFit, RecoversTemplateFromCleanPeriodicData) {
  const std::size_t binsPerWeek = 28;
  std::vector<double> series(binsPerWeek * 4);
  for (std::size_t t = 0; t < series.size(); ++t) {
    series[t] = 100.0 + 50.0 * std::sin(2.0 * M_PI *
                                        double(t % binsPerWeek) /
                                        double(binsPerWeek));
  }
  const auto model =
      timeseries::FitCyclostationary(series, binsPerWeek);
  ASSERT_EQ(model.weeklyTemplate.size(), binsPerWeek);
  for (std::size_t s = 0; s < binsPerWeek; ++s) {
    EXPECT_NEAR(model.weeklyTemplate[s], series[s], 1e-9);
  }
  EXPECT_NEAR(model.residualSigma, 0.0, 1e-9);
  EXPECT_GT(timeseries::SeasonalR2(series, model), 0.999);
}

TEST(CycloFit, RoundTripsThroughGenerator) {
  // Fit a model to generated activity, regenerate, and check the
  // regenerated series has the same weekly shape (high seasonal R^2
  // against the fitted template).
  timeseries::ActivityModel gen;
  gen.profile.binsPerDay = 24;
  gen.noiseSigma = 0.1;
  stats::Rng rng(11);
  const auto original =
      timeseries::GenerateActivitySeries(gen, 24 * 7 * 4, rng);
  const auto model = timeseries::FitCyclostationary(original, 24 * 7);
  EXPECT_GT(timeseries::SeasonalR2(original, model), 0.8);

  stats::Rng rng2(12);
  const auto regen =
      timeseries::GenerateFromCycloModel(model, 24 * 7 * 2, rng2);
  EXPECT_GT(timeseries::SeasonalR2(regen, model), 0.8);
  for (double v : regen) EXPECT_GT(v, 0.0);
}

TEST(CycloFit, EstimatesResidualSigma) {
  timeseries::ActivityModel gen;
  gen.profile.binsPerDay = 24;
  gen.noiseSigma = 0.25;
  gen.noisePhi = 0.0;
  gen.weeklyDriftSigma = 0.0;
  stats::Rng rng(13);
  const auto series =
      timeseries::GenerateActivitySeries(gen, 24 * 7 * 6, rng);
  const auto model = timeseries::FitCyclostationary(series, 24 * 7);
  EXPECT_NEAR(model.residualSigma, 0.25, 0.06);
}

TEST(CycloFit, EstimatesArCoefficient) {
  timeseries::ActivityModel gen;
  gen.profile.binsPerDay = 24;
  gen.noiseSigma = 0.3;
  gen.noisePhi = 0.7;
  gen.weeklyDriftSigma = 0.0;
  stats::Rng rng(14);
  const auto series =
      timeseries::GenerateActivitySeries(gen, 24 * 7 * 8, rng);
  const auto model = timeseries::FitCyclostationary(series, 24 * 7);
  EXPECT_NEAR(model.residualPhi, 0.7, 0.15);
}

TEST(CycloFit, ValidationErrors) {
  EXPECT_THROW(timeseries::FitCyclostationary({1.0, 2.0}, 0),
               ictm::Error);
  EXPECT_THROW(timeseries::FitCyclostationary({1.0, 2.0}, 5),
               ictm::Error);
  EXPECT_THROW(timeseries::FitCyclostationary({1.0, -2.0}, 2),
               ictm::Error);
  // Template slot of all zeros.
  EXPECT_THROW(timeseries::FitCyclostationary({1.0, 0.0, 1.0, 0.0}, 2),
               ictm::Error);
  timeseries::CycloModel empty;
  stats::Rng rng(1);
  EXPECT_THROW(timeseries::GenerateFromCycloModel(empty, 5, rng),
               ictm::Error);
}

// ---- bootstrap -----------------------------------------------------------

TEST(Bootstrap, MeanIntervalCoversTruthOnGaussianData) {
  stats::Rng rng(21);
  std::vector<double> sample(200);
  for (double& x : sample) x = rng.gaussian(5.0, 2.0);
  stats::Rng bootRng(22);
  const auto ci =
      stats::BootstrapMeanCi(sample, 0.95, 500, bootRng);
  EXPECT_LT(ci.lower, 5.0);
  EXPECT_GT(ci.upper, 5.0);
  EXPECT_NEAR(ci.estimate, 5.0, 0.5);
  EXPECT_LT(ci.lower, ci.estimate);
  EXPECT_GT(ci.upper, ci.estimate);
  // 95% half-width of the mean of 200 draws of sd 2: ~1.96*2/sqrt(200).
  EXPECT_NEAR(ci.upper - ci.lower, 2 * 1.96 * 2.0 / std::sqrt(200.0),
              0.2);
}

TEST(Bootstrap, IntervalShrinksWithSampleSize) {
  stats::Rng rng(23);
  std::vector<double> small(50), large(2000);
  for (double& x : small) x = rng.gaussian(0.0, 1.0);
  for (double& x : large) x = rng.gaussian(0.0, 1.0);
  stats::Rng b1(24), b2(25);
  const auto ciSmall = stats::BootstrapMeanCi(small, 0.9, 400, b1);
  const auto ciLarge = stats::BootstrapMeanCi(large, 0.9, 400, b2);
  EXPECT_LT(ciLarge.upper - ciLarge.lower,
            ciSmall.upper - ciSmall.lower);
}

TEST(Bootstrap, CustomStatistic) {
  std::vector<double> sample{1, 2, 3, 4, 100};
  stats::Rng rng(26);
  const auto ci = stats::BootstrapCi(
      sample,
      [](const std::vector<double>& xs) { return stats::Median(xs); },
      0.9, 300, rng);
  EXPECT_DOUBLE_EQ(ci.estimate, 3.0);
  EXPECT_GE(ci.lower, 1.0);
  EXPECT_LE(ci.upper, 100.0);
}

TEST(Bootstrap, ValidationErrors) {
  stats::Rng rng(27);
  EXPECT_THROW(stats::BootstrapMeanCi({}, 0.9, 100, rng), ictm::Error);
  EXPECT_THROW(stats::BootstrapMeanCi({1.0}, 1.5, 100, rng),
               ictm::Error);
  EXPECT_THROW(stats::BootstrapMeanCi({1.0}, 0.9, 5, rng), ictm::Error);
}

}  // namespace
}  // namespace ictm
