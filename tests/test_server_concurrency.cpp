// Concurrency battery for the estimation server: N simultaneous
// sessions over mixed topologies and thread counts must each produce
// estimate frames bit-identical to their single-process `ictm stream`
// baseline, sharing per-topology state through the cache; and a slow
// reader must stall only its own session.  Runs under TSan in CI.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/estimation.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "stream/online.hpp"
#include "test_util.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"

namespace ictm::server {
namespace {

/// One session's worth of workload plus its expected wire bytes.
struct SessionPlan {
  std::string spec;
  std::uint64_t seed = 0;
  std::uint32_t threads = 1;
  std::uint64_t window = 0;
  std::uint64_t trafficSeed = 0;
  std::size_t bins = 0;

  std::size_t nodes = 0;
  traffic::TrafficMatrixSeries truth{1, 1, 300.0};  // placeholder; prepare() fills it
  std::vector<std::vector<std::uint8_t>> expected;

  /// Computes the `ictm stream` baseline and encodes it exactly as
  /// the server would frame it.
  void prepare() {
    const topology::Graph graph = topology::MakeTopology(spec, seed);
    nodes = graph.nodeCount();
    truth = test::RandomSeries(nodes, bins, trafficSeed);
    const linalg::CsrMatrix routing = topology::BuildRoutingCsr(graph);
    stream::StreamingOptions options;
    options.threads = 1;
    options.window = window;
    options.f = 0.3;
    const stream::StreamingRunResult run =
        stream::EstimateSeriesStreaming(routing, truth, options);
    expected.reserve(bins);
    for (std::size_t t = 0; t < bins; ++t) {
      expected.push_back(EncodeEstimatePayload(
          t, run.estimates.binData(t), run.priors.binData(t), nodes));
    }
  }

  HelloRequest hello() const {
    HelloRequest h;
    h.topologySpec = spec;
    h.topologySeed = seed;
    h.f = 0.3;
    h.window = window;
    h.threads = threads;
    h.queueCapacity = 8;
    return h;
  }
};

SessionPlan MakePlan(const std::string& spec, std::uint32_t threads,
                     std::uint64_t window, std::uint64_t trafficSeed,
                     std::size_t bins) {
  SessionPlan plan;
  plan.spec = spec;
  plan.threads = threads;
  plan.window = window;
  plan.trafficSeed = trafficSeed;
  plan.bins = bins;
  plan.prepare();
  return plan;
}

ClientConfig ConfigFor(const Server& server, const SessionPlan& plan) {
  ClientConfig config;
  config.endpoint = server.endpoint();
  config.hello = plan.hello();
  return config;
}

Client::BinSource SourceFor(const SessionPlan& plan) {
  return [&plan](std::uint64_t seq) {
    return plan.truth.binData(static_cast<std::size_t>(seq));
  };
}

TEST(ServerConcurrency, MixedSessionsBitIdenticalToStreamBaseline) {
  // Two topologies, thread counts {1, 4}, two sessions sharing each
  // topology so the cache serves hits as well as misses.
  std::vector<SessionPlan> plans;
  plans.push_back(MakePlan("abilene11", 1, 4, 101, 12));
  plans.push_back(MakePlan("abilene11", 4, 4, 102, 12));
  plans.push_back(MakePlan("ring:8:2", 4, 3, 103, 10));
  plans.push_back(MakePlan("ring:8:2", 1, 3, 104, 10));
  plans.push_back(MakePlan("grid:3x3", 4, 0, 105, 8));

  ServerOptions options;
  ASSERT_TRUE(
      Endpoint::Parse(test::TempPath("concurrency.sock"), &options.listen));
  options.cacheCapacity = 4;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::vector<ClientResult> results(plans.size());
  {
    std::vector<std::thread> clients;
    clients.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      clients.emplace_back([&, i] {
        results[i] = Client::Run(ConfigFor(server, plans[i]), plans[i].bins,
                                 SourceFor(plans[i]));
      });
    }
    for (auto& thread : clients) thread.join();
  }

  for (std::size_t i = 0; i < plans.size(); ++i) {
    const ClientResult& result = results[i];
    ASSERT_TRUE(result.finished)
        << "session " << i << ": " << result.transportError
        << (result.serverError ? " / " + result.serverError->message : "");
    EXPECT_EQ(result.nodes, plans[i].nodes);
    ASSERT_EQ(result.estimatePayloads.size(), plans[i].expected.size())
        << "session " << i;
    for (std::size_t t = 0; t < plans[i].expected.size(); ++t) {
      ASSERT_EQ(result.estimatePayloads[t], plans[i].expected[t])
          << "session " << i << " estimate frame " << t
          << " differs from the ictm stream baseline";
    }
  }

  // Three distinct (spec, seed) keys, five sessions: the cache must
  // have built each topology exactly once.
  const TopologyStateCache::Stats stats = server.cacheStats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(server.sessionsAccepted(), plans.size());
  server.stop();
}

TEST(ServerConcurrency, SlowReaderStallsOnlyItsOwnSession) {
  // Small socket buffers and a tiny output queue so a non-reading
  // client exhausts every elastic stage of its own pipeline while the
  // streams next to it run to completion.
  const SessionPlan slowPlan = MakePlan("abilene11", 2, 4, 201, 96);
  const SessionPlan fastA = MakePlan("abilene11", 1, 4, 202, 24);
  const SessionPlan fastB = MakePlan("ring:6", 2, 3, 203, 24);

  ServerOptions options;
  ASSERT_TRUE(
      Endpoint::Parse(test::TempPath("slow_reader.sock"), &options.listen));
  options.limits.outputQueueCapacity = 2;
  options.limits.socketBufferBytes = 4096;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // The slow client's estimate hook blocks on a gate after the first
  // frame; because the hook runs on the client's receiver thread, the
  // client stops reading and backpressure propagates through the
  // server's writer, output queue, estimator and reader — all scoped
  // to this one session.
  std::mutex gateMutex;
  std::condition_variable gateCv;
  bool gateOpen = false;
  std::size_t slowFramesSeen = 0;

  ClientResult slowResult;
  std::thread slowThread([&] {
    ClientConfig config = ConfigFor(server, slowPlan);
    config.socketBufferBytes = 4096;
    slowResult = Client::Run(
        config, slowPlan.bins, SourceFor(slowPlan),
        [&](std::uint64_t, const std::vector<std::uint8_t>&) {
          std::unique_lock<std::mutex> lock(gateMutex);
          ++slowFramesSeen;
          gateCv.wait(lock, [&] { return gateOpen; });
        });
  });

  // Both fast sessions run start-to-finish while the slow session is
  // gated.  Their completion is the isolation proof: Run() returning
  // with finished=true means FIN_ACK made it through a server whose
  // sibling session is fully stalled.
  ClientResult fastResults[2];
  std::thread fastThreadA([&] {
    fastResults[0] = Client::Run(ConfigFor(server, fastA), fastA.bins,
                                 SourceFor(fastA));
  });
  std::thread fastThreadB([&] {
    fastResults[1] = Client::Run(ConfigFor(server, fastB), fastB.bins,
                                 SourceFor(fastB));
  });
  fastThreadA.join();
  fastThreadB.join();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(fastResults[i].finished)
        << fastResults[i].transportError;
  }

  // The gated session cannot have completed: its hook has run at most
  // once, so at most one estimate frame ever left its reorder buffer.
  {
    std::lock_guard<std::mutex> lock(gateMutex);
    EXPECT_LE(slowFramesSeen, 1u);
    gateOpen = true;
  }
  gateCv.notify_all();
  slowThread.join();

  // Once released, the stalled session drains losslessly and remains
  // bit-identical — backpressure never dropped or reordered a frame.
  ASSERT_TRUE(slowResult.finished)
      << slowResult.transportError
      << (slowResult.serverError ? " / " + slowResult.serverError->message
                                 : "");
  ASSERT_EQ(slowResult.estimatePayloads.size(), slowPlan.expected.size());
  for (std::size_t t = 0; t < slowPlan.expected.size(); ++t) {
    ASSERT_EQ(slowResult.estimatePayloads[t], slowPlan.expected[t])
        << "estimate frame " << t;
  }
  for (int i = 0; i < 2; ++i) {
    const SessionPlan& plan = i == 0 ? fastA : fastB;
    ASSERT_EQ(fastResults[i].estimatePayloads.size(), plan.expected.size());
    for (std::size_t t = 0; t < plan.expected.size(); ++t) {
      ASSERT_EQ(fastResults[i].estimatePayloads[t], plan.expected[t])
          << "fast session " << i << " estimate frame " << t;
    }
  }
  server.stop();
}

}  // namespace
}  // namespace ictm::server
