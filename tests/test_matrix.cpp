// Unit tests for the dense matrix/vector substrate.
#include <gtest/gtest.h>

#include <sstream>

#include "linalg/matrix.hpp"
#include "test_util.hpp"

namespace ictm::linalg {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 7.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 7.5);
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 2), 3);
  EXPECT_DOUBLE_EQ(m(1, 0), 4);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), ictm::Error);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(1, 2), 0.0);
  const Matrix d = Matrix::Diagonal({2, 3});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, FromRowsAndFromColumn) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  const Matrix c = Matrix::FromColumn({7, 8});
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(1, 0), 8.0);
  EXPECT_THROW(Matrix::FromRows({{1, 2}, {3}}), ictm::Error);
}

TEST(Matrix, CheckedAccessThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), ictm::Error);
  EXPECT_THROW(m.at(0, 2), ictm::Error);
  const Matrix& cm = m;
  EXPECT_THROW(cm.at(2, 2), ictm::Error);
}

TEST(Matrix, RowColumnAccessors) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.row(1), (Vector{3, 4}));
  EXPECT_EQ(m.col(0), (Vector{1, 3}));
  m.setRow(0, {9, 8});
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
  m.setCol(1, {7, 6});
  EXPECT_DOUBLE_EQ(m(1, 1), 6.0);
  EXPECT_THROW(m.setRow(0, {1}), ictm::Error);
  EXPECT_THROW(m.setCol(5, {1, 2}), ictm::Error);
}

TEST(Matrix, Transpose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.transposed() == m);
}

TEST(Matrix, ArithmeticOperators) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  EXPECT_TRUE((a + b) == (Matrix{{6, 8}, {10, 12}}));
  EXPECT_TRUE((b - a) == (Matrix{{4, 4}, {4, 4}}));
  EXPECT_TRUE((a * 2.0) == (Matrix{{2, 4}, {6, 8}}));
  EXPECT_TRUE((2.0 * a) == (Matrix{{2, 4}, {6, 8}}));
  Matrix c = a;
  c += b;
  EXPECT_TRUE(c == (a + b));
  EXPECT_THROW(a + Matrix(3, 3), ictm::Error);
}

TEST(Matrix, MatrixProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  EXPECT_TRUE((a * b) == (Matrix{{19, 22}, {43, 50}}));
  // Identity is neutral.
  EXPECT_TRUE((a * Matrix::Identity(2)) == a);
  EXPECT_THROW(a * Matrix(3, 2), ictm::Error);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a * Vector({1, 1}), (Vector{3, 7}));
  EXPECT_THROW(a * Vector({1, 2, 3}), ictm::Error);
}

TEST(Matrix, ProductAssociativityRandom) {
  stats::Rng rng(99);
  const Matrix a = test::RandomMatrix(4, 6, rng);
  const Matrix b = test::RandomMatrix(6, 3, rng);
  const Matrix c = test::RandomMatrix(3, 5, rng);
  EXPECT_TRUE(AlmostEqual((a * b) * c, a * (b * c), 1e-12));
}

TEST(Matrix, NormsAndSums) {
  const Matrix m{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.maxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.sum(), 7.0);
}

TEST(Matrix, FillAndBlock) {
  Matrix m(3, 3);
  m.fill(2.0);
  EXPECT_DOUBLE_EQ(m.sum(), 18.0);
  m(1, 1) = 5.0;
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  EXPECT_THROW(m.block(2, 2, 2, 2), ictm::Error);
}

TEST(Matrix, StreamOutputContainsElements) {
  const Matrix m{{1, 2}, {3, 4}};
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find('1'), std::string::npos);
  EXPECT_NE(os.str().find('4'), std::string::npos);
}

TEST(Matrix, AlmostEqualToleratesSmallDifferences) {
  const Matrix a{{1.0}};
  const Matrix b{{1.0 + 1e-13}};
  EXPECT_TRUE(AlmostEqual(a, b, 1e-12));
  EXPECT_FALSE(AlmostEqual(a, b, 1e-14));
  EXPECT_FALSE(AlmostEqual(a, Matrix(2, 1), 1.0));
}

TEST(VectorOps, DotNormSum) {
  const Vector a{1, 2, 3};
  const Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Sum(a), 6.0);
  EXPECT_THROW(Dot(a, {1.0}), ictm::Error);
}

TEST(VectorOps, AddSubScaleAxpy) {
  const Vector a{1, 2};
  const Vector b{3, 5};
  EXPECT_EQ(Add(a, b), (Vector{4, 7}));
  EXPECT_EQ(Sub(b, a), (Vector{2, 3}));
  EXPECT_EQ(Scale(a, 3.0), (Vector{3, 6}));
  Vector y{1, 1};
  Axpy(2.0, a, y);
  EXPECT_EQ(y, (Vector{3, 5}));
}

TEST(VectorOps, TransposeTimesMatchesExplicitTranspose) {
  stats::Rng rng(5);
  const Matrix a = test::RandomMatrix(7, 4, rng);
  const Vector v = test::RandomVector(7, rng);
  test::ExpectVectorNear(TransposeTimes(a, v), a.transposed() * v, 1e-12);
}

TEST(VectorOps, MaxAbs) {
  EXPECT_DOUBLE_EQ(MaxAbs({-3, 2}), 3.0);
  EXPECT_DOUBLE_EQ(MaxAbs({}), 0.0);
}

}  // namespace
}  // namespace ictm::linalg
