// End-to-end integration tests: the paper's headline claims exercised
// on small simulated datasets through the full public API.
#include <gtest/gtest.h>

#include "conngen/fmeasure.hpp"
#include "conngen/packet_trace.hpp"
#include "core/estimation.hpp"
#include "core/fit.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "core/priors.hpp"
#include "core/synthesis.hpp"
#include "dataset/datasets.hpp"
#include "stats/summary.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "test_util.hpp"

namespace ictm {
namespace {

dataset::Dataset SmallWorld(std::uint64_t seed) {
  dataset::DatasetConfig cfg;
  cfg.seed = seed;
  cfg.peakActivityBytes = 2e8;
  return dataset::MakeSmallDataset(10, 56, 300.0, cfg);
}

TEST(Integration, IcModelFitsConnectionTrafficBetterThanGravity) {
  // The Fig. 3 claim on a small instance: the stable-fP IC model,
  // despite ~half the DoF, reconstructs connection-generated traffic
  // better than the gravity model.
  const dataset::Dataset d = SmallWorld(101);
  const core::StableFPFit fit = core::FitStableFP(d.measured);
  const auto icErr = core::RelL2TemporalSeries(
      d.measured, core::ReconstructSeries(fit, 300.0));
  const auto gErr = core::RelL2TemporalSeries(
      d.measured, core::GravityPredictSeries(d.measured));
  EXPECT_GT(core::Mean(core::PercentImprovementSeries(gErr, icErr)), 5.0);
}

TEST(Integration, FittedForwardFractionNearGeneratorTruth) {
  const dataset::Dataset d = SmallWorld(102);
  const core::StableFPFit fit = core::FitStableFP(d.measured);
  EXPECT_NEAR(fit.f, d.realizedForwardFraction, 0.12);
}

TEST(Integration, FittedPreferenceCorrelatesWithTruth) {
  const dataset::Dataset d = SmallWorld(103);
  const core::StableFPFit fit = core::FitStableFP(d.measured);
  // Rank correlation between fitted and generating preferences.
  std::vector<double> a(fit.preference.begin(), fit.preference.end());
  std::vector<double> b(d.truePreference.begin(), d.truePreference.end());
  EXPECT_GT(stats::SpearmanCorrelation(a, b), 0.7);
}

TEST(Integration, ParameterStabilityAcrossWeeks) {
  // Sec. 5.2/5.3: f and P fitted on consecutive "weeks" of the same
  // network are close.
  dataset::DatasetConfig cfg;
  cfg.seed = 104;
  cfg.peakActivityBytes = 2e8;
  // Moderate per-pair jitter keeps the realized f in the paper's
  // 0.2-0.3 band (at n=8 the default jitter can push a realization
  // towards the f = 1/2 identifiability boundary).
  cfg.pairFJitterSigma = 0.5;
  const dataset::Dataset d =
      dataset::MakeSmallDataset(8, 112, 300.0, cfg);
  const auto week1 = d.measured.slice(0, 56);
  const auto week2 = d.measured.slice(56, 56);
  const core::StableFPFit f1 = core::FitStableFP(week1);
  const core::StableFPFit f2 = core::FitStableFP(week2);
  EXPECT_NEAR(f1.f, f2.f, 0.08);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(f1.preference[i], f2.preference[i], 0.06) << "node " << i;
  }
}

TEST(Integration, EstimationWithIcPriorBeatsGravityPrior) {
  // The Fig. 11/12 claim end-to-end: tomogravity estimation from link
  // loads is more accurate with the IC prior than the gravity prior.
  const dataset::Dataset d = SmallWorld(105);
  const topology::Graph g = topology::MakeRing(10, 3);
  const linalg::Matrix r = topology::BuildRoutingMatrix(g);

  const core::StableFPFit fit = core::FitStableFP(d.measured);
  const core::MarginalSeries margs = core::ExtractMarginals(d.truth);
  const auto sub = d.truth.slice(0, 12);

  const auto icPrior =
      core::StableFPPrior(fit.f, fit.preference, margs).slice(0, 12);
  const auto gravPrior = core::GravityPriorSeries(margs).slice(0, 12);

  const auto estIc = core::EstimateSeries(r, sub, icPrior);
  const auto estGrav = core::EstimateSeries(r, sub, gravPrior);
  const double icErr = core::Mean(core::RelL2TemporalSeries(sub, estIc));
  const double gravErr =
      core::Mean(core::RelL2TemporalSeries(sub, estGrav));
  EXPECT_LT(icErr, gravErr);
}

TEST(Integration, StableFPriorAlsoBeatsGravityOnAverage) {
  // The Fig. 13 scenario: only f is known; A and P come from the
  // closed forms on current marginals.
  const dataset::Dataset d = SmallWorld(106);
  const core::MarginalSeries margs = core::ExtractMarginals(d.truth);
  const auto icPrior =
      core::StableFPrior(d.realizedForwardFraction, margs);
  const auto gravPrior = core::GravityPriorSeries(margs);
  const double icErr =
      core::Mean(core::RelL2TemporalSeries(d.truth, icPrior));
  const double gravErr =
      core::Mean(core::RelL2TemporalSeries(d.truth, gravPrior));
  EXPECT_LT(icErr, gravErr);
}

TEST(Integration, SyntheticRecipeRoundTrips) {
  // Sec. 5.5: generate a synthetic TM with the recipe, then verify the
  // fitter recovers the generating parameters from the series alone.
  core::SynthesisConfig cfg;
  cfg.nodes = 8;
  cfg.bins = 56;
  cfg.f = 0.28;
  cfg.activityModel.profile.binsPerDay = 8;
  stats::Rng rng(107);
  const core::SyntheticTm synth = core::GenerateSyntheticTm(cfg, rng);
  const core::StableFPFit fit = core::FitStableFP(synth.series);
  EXPECT_NEAR(fit.f, 0.28, 0.05);
  test::ExpectVectorNear(fit.preference, synth.preference, 0.05);
}

TEST(Integration, PacketTraceFMatchesTmLevelFit) {
  // The two ways of measuring f (packet traces, Sec. 5.2; TM fitting,
  // Sec. 5.1) agree on data from the same application mix.
  conngen::TraceSimConfig traceCfg;
  traceCfg.durationSec = 1800.0;
  traceCfg.connectionsPerSec = 40.0;
  stats::Rng rngTrace(108);
  const auto trace = conngen::SimulatePacketTraces(traceCfg, rngTrace);
  const auto fm = conngen::MeasureForwardFraction(trace);
  const double fFromTraces = conngen::MeanFiniteF(fm.fAB);

  const dataset::Dataset d = SmallWorld(109);
  const core::StableFPFit fit = core::FitStableFP(d.measured);
  EXPECT_NEAR(fFromTraces, fit.f, 0.15);
}

TEST(Integration, RoutingAsymmetryDegradesSimplifiedIcFit) {
  // Sec. 5.6: hot-potato asymmetry hurts the simplified IC model.
  dataset::DatasetConfig clean;
  clean.seed = 110;
  clean.peakActivityBytes = 2e8;
  clean.netflowSampling = false;
  dataset::DatasetConfig asym = clean;
  asym.routingAsymmetry = 0.5;
  const auto dClean = dataset::MakeSmallDataset(8, 42, 300.0, clean);
  const auto dAsym = dataset::MakeSmallDataset(8, 42, 300.0, asym);
  const auto fitClean = core::FitStableFP(dClean.measured);
  const auto fitAsym = core::FitStableFP(dAsym.measured);
  const double errClean =
      fitClean.objective() / double(dClean.measured.binCount());
  const double errAsym =
      fitAsym.objective() / double(dAsym.measured.binCount());
  EXPECT_GT(errAsym, errClean);
}

}  // namespace
}  // namespace ictm
