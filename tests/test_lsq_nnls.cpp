// Tests for least-squares solvers, Cholesky helpers, NNLS and the
// simplex projection.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lsq.hpp"
#include "linalg/nnls.hpp"
#include "linalg/simplex.hpp"
#include "test_util.hpp"

namespace ictm::linalg {
namespace {

TEST(LeastSquares, ExactOnConsistentSystem) {
  stats::Rng rng(1);
  const Matrix a = test::RandomMatrix(10, 4, rng);
  const Vector xTrue = test::RandomVector(4, rng);
  test::ExpectVectorNear(SolveLeastSquares(a, a * xTrue), xTrue, 1e-9);
}

TEST(LeastSquares, FallsBackToMinNormWhenRankDeficient) {
  Matrix a(4, 3);
  stats::Rng rng(2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = rng.uniform();
    a(i, 1) = 3.0 * a(i, 0);  // dependent column
    a(i, 2) = rng.uniform();
  }
  const Vector b = test::RandomVector(4, rng);
  const Vector x = SolveLeastSquares(a, b);
  // Residual must satisfy the normal equations (orthogonality).
  const Vector grad = TransposeTimes(a, Sub(a * x, b));
  EXPECT_LT(MaxAbs(grad), 1e-8);
}

TEST(WeightedLeastSquares, ZeroWeightIgnoresRow) {
  // Two inconsistent equations: x = 1 (weight 1) and x = 5 (weight 0).
  const Matrix a{{1.0}, {1.0}};
  const Vector b{1.0, 5.0};
  const Vector x = SolveWeightedLeastSquares(a, b, {1.0, 0.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
}

TEST(WeightedLeastSquares, WeightsInterpolate) {
  const Matrix a{{1.0}, {1.0}};
  const Vector b{0.0, 10.0};
  // Equal weights -> mean 5; weight ratio 3:1 -> 2.5.
  EXPECT_NEAR(SolveWeightedLeastSquares(a, b, {1, 1})[0], 5.0, 1e-12);
  EXPECT_NEAR(SolveWeightedLeastSquares(a, b, {3, 1})[0], 2.5, 1e-12);
  EXPECT_THROW(SolveWeightedLeastSquares(a, b, {-1, 1}), ictm::Error);
}

TEST(Ridge, ShrinksTowardsZero) {
  stats::Rng rng(3);
  const Matrix a = test::RandomMatrix(8, 3, rng);
  const Vector b = test::RandomVector(8, rng);
  const Vector x0 = SolveLeastSquares(a, b);
  const Vector xBig = SolveRidge(a, b, 1e6);
  EXPECT_LT(Norm2(xBig), Norm2(x0));
  EXPECT_LT(Norm2(xBig), 1e-3);
  EXPECT_THROW(SolveRidge(a, b, 0.0), ictm::Error);
}

TEST(Ridge, TinyLambdaMatchesLeastSquares) {
  stats::Rng rng(4);
  const Matrix a = test::RandomMatrix(9, 4, rng);
  const Vector b = test::RandomVector(9, rng);
  test::ExpectVectorNear(SolveRidge(a, b, 1e-12),
                         SolveLeastSquares(a, b), 1e-5);
}

TEST(Cholesky, FactorReconstructs) {
  stats::Rng rng(5);
  const Matrix m = test::RandomMatrix(5, 5, rng);
  const Matrix spd = m.transposed() * m + Matrix::Identity(5);
  const Matrix u = CholeskyUpper(spd);
  test::ExpectMatrixNear(u.transposed() * u, spd, 1e-10);
  // Upper triangular: below-diagonal entries are zero.
  for (std::size_t i = 1; i < 5; ++i)
    for (std::size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(u(i, j), 0.0);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  EXPECT_THROW(CholeskyUpper(Matrix{{1, 2}, {2, 1}}), ictm::Error);
}

TEST(Cholesky, ForwardSubstituteSolvesTransposedSystem) {
  stats::Rng rng(6);
  const Matrix m = test::RandomMatrix(4, 4, rng);
  const Matrix spd = m.transposed() * m + Matrix::Identity(4);
  const Matrix u = CholeskyUpper(spd);
  const Vector b = test::RandomVector(4, rng);
  const Vector y = ForwardSubstituteTranspose(u, b);
  test::ExpectVectorNear(u.transposed() * y, b, 1e-10);
}

TEST(ResidualNorm, MatchesDirectComputation) {
  const Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const Vector x{1, 2};
  const Vector b{1, 2, 4};
  EXPECT_NEAR(ResidualNorm(a, x, b), 1.0, 1e-12);
}

// ---- NNLS --------------------------------------------------------------

TEST(Nnls, UnconstrainedOptimumWhenPositive) {
  const Matrix a{{1, 0}, {0, 1}};
  const Vector b{2, 3};
  const NnlsResult r = SolveNnls(a, b);
  EXPECT_TRUE(r.converged);
  test::ExpectVectorNear(r.x, {2, 3}, 1e-10);
  EXPECT_NEAR(r.residualNorm, 0.0, 1e-10);
}

TEST(Nnls, ClampsNegativeComponent) {
  // Unconstrained solution of x = -1 clamps to 0.
  const Matrix a{{1.0}};
  const NnlsResult r = SolveNnls(a, {-1.0});
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
  EXPECT_NEAR(r.residualNorm, 1.0, 1e-12);
}

TEST(Nnls, LawsonHansonStyleInstance) {
  // A small instance with an active constraint at the optimum
  // (reference solution computed independently by projected gradient:
  // x = (0, 0.692934), residual 0.911842).
  const Matrix a{{0.0372, 0.2869},
                 {0.6861, 0.7071},
                 {0.6233, 0.6245},
                 {0.6344, 0.6170}};
  const Vector b{0.8587, 0.1781, 0.0747, 0.8405};
  const NnlsResult r = SolveNnls(a, b);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);  // active constraint
  EXPECT_NEAR(r.x[1], 0.692934, 1e-5);
  EXPECT_NEAR(r.residualNorm, 0.911842, 1e-5);
}

class NnlsProperty : public ::testing::TestWithParam<int> {};

TEST_P(NnlsProperty, KktConditionsHold) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 6 + GetParam() % 5;
  const std::size_t n = 3 + GetParam() % 4;
  const Matrix a = test::RandomMatrix(m, n, rng);
  const Vector b = test::RandomVector(m, rng);
  const NnlsResult r = SolveNnls(a, b);
  ASSERT_TRUE(r.converged);
  const Vector grad = TransposeTimes(a, Sub(a * r.x, b));
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_GE(r.x[j], 0.0);
    if (r.x[j] > 1e-10) {
      // Active variables: zero gradient.
      EXPECT_NEAR(grad[j], 0.0, 1e-7) << "j=" << j;
    } else {
      // Clamped variables: non-negative gradient (no descent into the
      // feasible region).
      EXPECT_GE(grad[j], -1e-7) << "j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, NnlsProperty,
                         ::testing::Range(100, 120));

TEST(Nnls, BeatsClampedLeastSquares) {
  // NNLS residual must never exceed the residual of clamping the
  // unconstrained solution at zero.
  stats::Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const Matrix a = test::RandomMatrix(8, 4, rng);
    const Vector b = test::RandomVector(8, rng);
    const NnlsResult r = SolveNnls(a, b);
    Vector clamped = SolveLeastSquares(a, b);
    for (double& c : clamped) c = std::max(c, 0.0);
    EXPECT_LE(r.residualNorm, ResidualNorm(a, clamped, b) + 1e-9);
  }
}

// ---- Simplex projection -------------------------------------------------

TEST(Simplex, ProjectionLandsOnSimplex) {
  stats::Rng rng(8);
  for (int rep = 0; rep < 20; ++rep) {
    const Vector v = test::RandomVector(6, rng, -2.0, 2.0);
    const Vector p = ProjectToSimplex(v);
    EXPECT_NEAR(Sum(p), 1.0, 1e-10);
    for (double x : p) EXPECT_GE(x, 0.0);
  }
}

TEST(Simplex, FixedPointForSimplexVectors) {
  const Vector v{0.2, 0.3, 0.5};
  test::ExpectVectorNear(ProjectToSimplex(v), v, 1e-12);
}

TEST(Simplex, ProjectionIsClosestPoint) {
  // For any other simplex point, the distance must not be smaller.
  stats::Rng rng(9);
  const Vector v = test::RandomVector(4, rng, -1.0, 2.0);
  const Vector p = ProjectToSimplex(v);
  for (int rep = 0; rep < 50; ++rep) {
    Vector q = test::RandomPositiveVector(4, rng, 0.0, 1.0);
    const double s = Sum(q);
    if (s <= 0) continue;
    for (double& x : q) x /= s;
    EXPECT_LE(Norm2(Sub(v, p)), Norm2(Sub(v, q)) + 1e-10);
  }
}

TEST(Simplex, CustomRadius) {
  const Vector p = ProjectToSimplex({5.0, 1.0}, 2.0);
  EXPECT_NEAR(Sum(p), 2.0, 1e-12);
  EXPECT_THROW(ProjectToSimplex({1.0}, 0.0), ictm::Error);
}

TEST(NormalizeNonNegative, ClampsAndRescales) {
  const Vector v{-1.0, 1.0, 3.0};
  const Vector p = NormalizeNonNegative(v);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.75, 1e-12);
}

TEST(NormalizeNonNegative, UniformFallbackWhenAllNonPositive) {
  const Vector p = NormalizeNonNegative({-1.0, -2.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

}  // namespace
}  // namespace ictm::linalg
