// Parameterized property suites: model and pipeline invariants swept
// across parameter grids (f values, network sizes, seeds, topologies).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/estimation.hpp"
#include "core/fit.hpp"
#include "core/gravity.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "core/priors.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "traffic/io.hpp"
#include "test_util.hpp"

namespace ictm {
namespace {

// ---- IC model invariants across (f, n) ----------------------------------

class IcModelSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(IcModelSweep, TotalTrafficEqualsTotalActivity) {
  const auto [f, n] = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(n * 1000 + std::size_t(f * 100)));
  core::IcParameters p{f, test::RandomPositiveVector(n, rng),
                       test::RandomPositiveVector(n, rng)};
  const linalg::Matrix tm = core::EvaluateSimplifiedIc(p);
  EXPECT_NEAR(tm.sum(), linalg::Sum(p.activity),
              1e-9 * linalg::Sum(p.activity));
}

TEST_P(IcModelSweep, AllEntriesNonNegative) {
  const auto [f, n] = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(n * 2000 + std::size_t(f * 100)));
  core::IcParameters p{f, test::RandomPositiveVector(n, rng, 0.0, 5.0),
                       test::RandomPositiveVector(n, rng)};
  const linalg::Matrix tm = core::EvaluateSimplifiedIc(p);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) EXPECT_GE(tm(i, j), 0.0);
}

TEST_P(IcModelSweep, ActivityOperatorConsistent) {
  const auto [f, n] = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(n * 3000 + std::size_t(f * 100)));
  const linalg::Vector pref = test::RandomPositiveVector(n, rng);
  const linalg::Vector act = test::RandomPositiveVector(n, rng);
  const linalg::Vector viaOperator =
      core::BuildActivityOperator(f, pref) * act;
  const linalg::Matrix direct =
      core::EvaluateSimplifiedIc({f, act, pref});
  test::ExpectVectorNear(viaOperator, topology::FlattenTm(direct), 1e-10);
}

TEST_P(IcModelSweep, StableFClosedFormsInvertTheModel) {
  const auto [f, n] = GetParam();
  if (std::fabs(f - 0.5) < 0.02) {
    GTEST_SKIP() << "closed forms singular near f = 1/2";
  }
  stats::Rng rng(static_cast<std::uint64_t>(n * 4000 + std::size_t(f * 100)));
  const linalg::Vector act = test::RandomPositiveVector(n, rng, 0.5, 3.0);
  linalg::Vector pref = test::RandomPositiveVector(n, rng);
  const double s = linalg::Sum(pref);
  for (double& p : pref) p /= s;
  const linalg::Matrix tm = core::EvaluateSimplifiedIc({f, act, pref});
  linalg::Vector in(n, 0.0), out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      in[i] += tm(i, j);
      out[j] += tm(i, j);
    }
  const core::StableFEstimates est =
      core::EstimateStableFParameters(f, in, out);
  test::ExpectVectorNear(est.activity, act, 1e-8);
  test::ExpectVectorNear(est.preference, pref, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IcModelSweep,
    ::testing::Combine(::testing::Values(0.05, 0.15, 0.25, 0.35, 0.45,
                                         0.65, 0.9),
                       ::testing::Values(std::size_t{2}, std::size_t{5},
                                         std::size_t{12},
                                         std::size_t{23})));

// ---- gravity invariants ---------------------------------------------------

class GravitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GravitySweep, MarginalsPreserved) {
  const std::size_t n = GetParam();
  stats::Rng rng(n);
  // Build consistent marginals (equal sums).
  linalg::Vector in = test::RandomPositiveVector(n, rng, 1.0, 10.0);
  linalg::Vector out = test::RandomPositiveVector(n, rng, 1.0, 10.0);
  const double scale = linalg::Sum(in) / linalg::Sum(out);
  for (double& o : out) o *= scale;
  const linalg::Matrix tm = core::GravityPredict(in, out);
  for (std::size_t i = 0; i < n; ++i) {
    double rowSum = 0.0, colSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      rowSum += tm(i, j);
      colSum += tm(j, i);
    }
    EXPECT_NEAR(rowSum, in[i], 1e-9 * in[i]);
    EXPECT_NEAR(colSum, out[i], 1e-9 * out[i]);
  }
}

TEST_P(GravitySweep, IdempotentOnItsOwnOutput) {
  // gravity(marginals(gravity TM)) == gravity TM.
  const std::size_t n = GetParam();
  stats::Rng rng(n + 77);
  linalg::Vector in = test::RandomPositiveVector(n, rng, 1.0, 10.0);
  linalg::Vector out = test::RandomPositiveVector(n, rng, 1.0, 10.0);
  const double scale = linalg::Sum(in) / linalg::Sum(out);
  for (double& o : out) o *= scale;
  const linalg::Matrix tm = core::GravityPredict(in, out);
  linalg::Vector in2(n, 0.0), out2(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      in2[i] += tm(i, j);
      out2[j] += tm(i, j);
    }
  test::ExpectMatrixNear(core::GravityPredict(in2, out2), tm, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GravitySweep,
                         ::testing::Values(std::size_t{2}, std::size_t{4},
                                           std::size_t{9}, std::size_t{22},
                                           std::size_t{40}));

// ---- fit recovery across true f -------------------------------------------

class FitRecoverySweep : public ::testing::TestWithParam<double> {};

TEST_P(FitRecoverySweep, RecoversTrueFOnExactData) {
  const double trueF = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(trueF * 1e4));
  const std::size_t n = 6, bins = 36;
  linalg::Vector pref = test::RandomPositiveVector(n, rng, 0.2, 2.0);
  linalg::Matrix act(n, bins);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = rng.uniform(1.0, 10.0);
    const double wobble = rng.uniform(0.3, 0.8);
    const double phase = rng.uniform(0.0, 6.0);
    for (std::size_t t = 0; t < bins; ++t)
      act(i, t) = base * (1.0 + wobble * std::sin(phase + 0.41 * double(t) +
                                                  0.17 * double(i * t)));
  }
  const auto series = core::EvaluateStableFP(trueF, act, pref);
  const core::StableFPFit fit = core::FitStableFP(series);
  EXPECT_NEAR(fit.f, trueF, 0.03) << "true f = " << trueF;
  EXPECT_LT(fit.objective() / double(bins), 0.02);
}

INSTANTIATE_TEST_SUITE_P(FGrid, FitRecoverySweep,
                         ::testing::Values(0.08, 0.15, 0.22, 0.30, 0.38,
                                           0.45));

// ---- IPF properties ---------------------------------------------------------

class IpfSweep : public ::testing::TestWithParam<int> {};

TEST_P(IpfSweep, RandomInstancesMatchMarginals) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + GetParam() % 6;
  const linalg::Matrix seed = test::RandomMatrix(n, n, rng, 0.05, 2.0);
  linalg::Vector rows = test::RandomPositiveVector(n, rng, 1.0, 10.0);
  linalg::Vector cols = test::RandomPositiveVector(n, rng, 1.0, 10.0);
  const double scale = linalg::Sum(rows) / linalg::Sum(cols);
  for (double& c : cols) c *= scale;
  const linalg::Matrix out = core::Ipf(seed, rows, cols, 500, 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    double rowSum = 0.0, colSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      rowSum += out(i, j);
      colSum += out(j, i);
      EXPECT_GE(out(i, j), 0.0);
    }
    EXPECT_NEAR(rowSum, rows[i], 1e-6 * rows[i]);
    EXPECT_NEAR(colSum, cols[i], 1e-6 * cols[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IpfSweep, ::testing::Range(200, 215));

// ---- routing invariants across topologies ----------------------------------

class TopologySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologySweep, RingRoutingConservesFlow) {
  const std::size_t n = GetParam();
  const topology::Graph g = topology::MakeRing(n, n >= 6 ? 3 : 0);
  const linalg::Matrix r = topology::BuildRoutingMatrix(g);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      double outOfSource = 0.0;
      for (std::size_t l = 0; l < g.linkCount(); ++l) {
        if (g.link(l).src == s) outOfSource += r(l, s * n + d);
      }
      EXPECT_NEAR(outOfSource, 1.0, 1e-9);
    }
  }
}

TEST_P(TopologySweep, LinkLoadsScaleLinearly) {
  const std::size_t n = GetParam();
  const topology::Graph g = topology::MakeRing(n);
  const linalg::Matrix r = topology::BuildRoutingMatrix(g);
  stats::Rng rng(n);
  const linalg::Matrix tm = test::RandomMatrix(n, n, rng, 0.0, 5.0);
  const linalg::Vector y1 = topology::ComputeLinkLoads(r, tm);
  const linalg::Vector y2 = topology::ComputeLinkLoads(r, tm * 3.0);
  for (std::size_t l = 0; l < y1.size(); ++l) {
    EXPECT_NEAR(y2[l], 3.0 * y1[l], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, TopologySweep,
                         ::testing::Values(std::size_t{3}, std::size_t{5},
                                           std::size_t{8},
                                           std::size_t{13}));

// ---- estimation end-to-end invariants ---------------------------------------

class EstimationSweep : public ::testing::TestWithParam<int> {};

TEST_P(EstimationSweep, EstimateNeverWorseThanPriorOnLinkFit) {
  // After refinement, the estimate reproduces the link loads at least
  // as well as the raw prior did.
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 6;
  const topology::Graph g = topology::MakeRing(n, 2);
  const linalg::Matrix r = topology::BuildRoutingMatrix(g);
  const linalg::Matrix truth = test::RandomMatrix(n, n, rng, 1.0, 10.0);
  const linalg::Vector loads = topology::ComputeLinkLoads(r, truth);
  linalg::Vector in(n, 0.0), out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      in[i] += truth(i, j);
      out[j] += truth(i, j);
    }
  const linalg::Matrix prior = core::GravityPredict(in, out);
  const linalg::Matrix est =
      core::EstimateTmBin(r, loads, prior, in, out);

  const double priorLinkErr =
      linalg::Norm2(linalg::Sub(topology::ComputeLinkLoads(r, prior),
                                loads));
  const double estLinkErr = linalg::Norm2(
      linalg::Sub(topology::ComputeLinkLoads(r, est), loads));
  EXPECT_LE(estLinkErr, priorLinkErr * 1.05 + 1e-9);
  // And the TM error does not regress either.
  EXPECT_LE(core::RelL2Temporal(truth, est),
            core::RelL2Temporal(truth, prior) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimationSweep,
                         ::testing::Range(300, 312));

// ---- CSV round trips across shapes -----------------------------------------

class CsvSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CsvSweep, RoundTrip) {
  const auto [n, bins] = GetParam();
  stats::Rng rng(n * 100 + bins);
  traffic::TrafficMatrixSeries s(n, bins, 300.0);
  for (std::size_t t = 0; t < bins; ++t)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        s(t, i, j) = rng.uniform(0.0, 1e12);
  std::stringstream ss;
  traffic::WriteCsv(ss, s);
  const traffic::TrafficMatrixSeries back = traffic::ReadCsv(ss);
  for (std::size_t t = 0; t < bins; ++t)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_DOUBLE_EQ(back(t, i, j), s(t, i, j));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CsvSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{10}),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{20})));

// ---- prior exactness across f ----------------------------------------------

class PriorSweep : public ::testing::TestWithParam<double> {};

TEST_P(PriorSweep, StableFPPriorExactAcrossF) {
  const double f = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(f * 1e4) + 9);
  const std::size_t n = 7, bins = 5;
  linalg::Vector pref = test::RandomPositiveVector(n, rng);
  const double s = linalg::Sum(pref);
  for (double& p : pref) p /= s;
  linalg::Matrix act(n, bins);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t t = 0; t < bins; ++t)
      act(i, t) = rng.uniform(1e5, 1e7);
  const auto series = core::EvaluateStableFP(f, act, pref);
  const auto prior = core::StableFPPrior(
      f, pref, core::ExtractMarginals(series));
  for (std::size_t t = 0; t < bins; ++t) {
    EXPECT_LT(core::RelL2Temporal(series.bin(t), prior.bin(t)), 1e-6)
        << "f = " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(FGrid, PriorSweep,
                         ::testing::Values(0.05, 0.2, 0.35, 0.5, 0.7,
                                           0.95));

}  // namespace
}  // namespace ictm
