// Lint fixture: MUST fire ICTM-D001 (and nothing else).
// Iterating an unordered container feeds hash order — which depends on
// pointer values and standard-library version — into the output.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

double SumInHashOrder(const std::unordered_map<int, double>& weights) {
  std::unordered_map<int, double> scaled = weights;
  double total = 0.0;
  for (const auto& kv : scaled) {  // ICTM-D001: range-for over unordered
    total = total * 2.0 + kv.second;
  }
  return total;
}

std::size_t CountViaIterators(const std::unordered_set<int>& seen) {
  std::unordered_set<int> copy = seen;
  std::size_t count = 0;
  for (auto it = copy.begin(); it != copy.end(); ++it) {  // ICTM-D001
    ++count;
  }
  return count;
}
