// Lint fixture: MUST fire ICTM-D004 (and nothing else).
// A static mutable local is shared across every caller and thread:
// a data race in parallel regions, and an order dependence everywhere.
#include <cstddef>
#include <vector>

double RunningMean(double sample) {
  static double sum = 0.0;        // ICTM-D004: static mutable local
  static std::size_t count = 0;   // ICTM-D004
  sum += sample;
  ++count;
  return sum / static_cast<double>(count);
}

static std::vector<double> gScratch;  // ICTM-D004: mutable global
