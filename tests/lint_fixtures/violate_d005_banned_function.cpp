// Lint fixture: MUST fire ICTM-D005 (and nothing else).
// sprintf/strcpy overflow silently; atoi/atof accept trailing junk and
// return 0 on error — the repo's strict strtod/strtoul parsers reject
// malformed input with a located error instead.
#include <cstdio>
#include <cstdlib>
#include <cstring>

int ParseLoosely(const char* text) {
  char buffer[16];
  std::strcpy(buffer, text);          // ICTM-D005
  std::sprintf(buffer, "%d", 42);     // ICTM-D005
  return std::atoi(buffer);           // ICTM-D005
}

double ParseRate(const char* text) {
  return std::atof(text);             // ICTM-D005
}
