// Lint fixture: MUST produce zero findings.  Exercises the sanctioned
// observability idioms: timestamps via obs::Now() (the one allowlisted
// clock wrapper — a literal steady_clock::now() here would fire
// ICTM-D002) and static references to registry-owned metrics (the
// referent is atomic and order-independent, so ICTM-D004 does not
// apply; a `static std::uint64_t total;` would be flagged).
#include <cstdint>

namespace obs {
class Counter {
 public:
  void add(std::uint64_t n = 1);
};
class Histogram {
 public:
  void record(double v);
};
enum class MetricClass { kDeterministic, kTiming };
Counter& GetCounter(const char* name, MetricClass cls);
Histogram& GetHistogram(const char* name, MetricClass cls);
std::uint64_t Now();
bool Enabled();
}  // namespace obs

// Legal: the static binds a reference to registry-owned metric state;
// the clang-format wrap puts the initializer call on the next line, so
// the declaration line itself carries no parenthesis.
void RecordSolve(double elapsedHint) {
  static obs::Counter& solves =
      obs::GetCounter("fixture.solves", obs::MetricClass::kDeterministic);
  static obs::Histogram& solveNs =
      obs::GetHistogram("fixture.solve_ns", obs::MetricClass::kTiming);

  // Legal: every clock read goes through obs::Now(), and only when
  // recording is on — the estimation path never observes the clock.
  const bool recording = obs::Enabled();
  const std::uint64_t t0 = recording ? obs::Now() : 0;
  (void)elapsedHint;
  if (recording) {
    solves.add();
    solveNs.record(static_cast<double>(obs::Now() - t0));
  }
}
