// Lint fixture: MUST fire ICTM-D003 (and nothing else).
// fp32 accumulation rounds differently across compilers, vector widths
// and summation orders — estimation paths accumulate in double.
#include <cstddef>
#include <vector>

double SumLinkLoads(const std::vector<double>& loads) {
  float total = 0.0f;  // ICTM-D003: float accumulator
  for (std::size_t i = 0; i < loads.size(); ++i) {
    total += static_cast<float>(loads[i]);  // ICTM-D003
  }
  return static_cast<double>(total);
}

struct BinScratch {
  std::vector<float> partials;  // ICTM-D003: fp32 storage
};
