// Lint fixture: MUST fire ICTM-D002 (and nothing else).
// Wall-clock and ambient-entropy reads make results depend on when and
// where the run happens instead of on the inputs alone.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

double JitterForBin(double value) {
  std::srand(42);                              // ICTM-D002
  const int noise = std::rand();               // ICTM-D002
  return value + static_cast<double>(noise % 3);
}

long SeedFromEnvironment() {
  std::random_device entropy;                  // ICTM-D002
  const std::time_t stamp = std::time(nullptr);  // ICTM-D002
  const auto tick =
      std::chrono::steady_clock::now().time_since_epoch();  // ICTM-D002
  return static_cast<long>(entropy() + stamp) +
         static_cast<long>(tick.count());
}
