// Lint fixture: MUST produce zero findings.  Exercises the legal
// near-misses of every rule, including the comment/string stripping:
// rand(), time(), sprintf and "for (x : unordered)" appear below in
// comments and string literals only.
#include <cstddef>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

// Legal: lookups into unordered containers never observe hash order —
// only iteration does (e.g. `for (auto& kv : table)` would be flagged).
double LookupOnly(const std::unordered_map<int, double>& table, int key) {
  const auto it = table.find(key);
  return it == table.end() ? 0.0 : it->second;
}

// Legal: ordered containers iterate deterministically.
double SumOrdered(const std::map<int, double>& table) {
  double total = 0.0;
  for (const auto& kv : table) total += kv.second;
  return total;
}

// Legal: double accumulator; `floating` is not the float keyword.
double SumDoubles(const std::vector<double>& xs) {
  double floating_total = 0.0;
  for (const double x : xs) floating_total += x;
  return floating_total;
}

// Legal: static const / constexpr / thread_local are not shared
// mutable state.
double Scaled(double x) {
  static const double kScale = 4096.0;
  static constexpr std::size_t kRepeat = 2;
  static thread_local std::string scratch;
  scratch = "rand() time() sprintf( for (auto& kv : table)";
  return x * kScale * static_cast<double>(kRepeat + scratch.empty());
}

// Legal: strict parser with end-pointer verification, not atoi.
double ParseStrict(const char* text, bool* ok) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  *ok = end != text && *end == '\0';
  return v;
}

// Legal: snprintf is bounds-checked (sprintf is the banned spelling).
std::string FormatBin(std::size_t bin) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "bin-%zu", bin);
  return std::string(buffer);
}
