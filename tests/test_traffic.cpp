// Tests for the TM series container, marginal operators and CSV IO.
#include <gtest/gtest.h>

#include <sstream>

#include "topology/routing.hpp"
#include "traffic/io.hpp"
#include "traffic/tm_series.hpp"
#include "test_util.hpp"

namespace ictm::traffic {
namespace {

TrafficMatrixSeries SmallSeries() {
  TrafficMatrixSeries s(3, 2, 300.0);
  // bin 0
  s(0, 0, 1) = 10;
  s(0, 1, 0) = 20;
  s(0, 2, 2) = 5;
  // bin 1
  s(1, 0, 2) = 7;
  s(1, 1, 1) = 3;
  return s;
}

TEST(TmSeries, ConstructionAndAccess) {
  const TrafficMatrixSeries s = SmallSeries();
  EXPECT_EQ(s.nodeCount(), 3u);
  EXPECT_EQ(s.binCount(), 2u);
  EXPECT_DOUBLE_EQ(s.binSeconds(), 300.0);
  EXPECT_DOUBLE_EQ(s.at(0, 0, 1), 10.0);
  EXPECT_THROW(s.at(2, 0, 0), ictm::Error);
  EXPECT_THROW(s.at(0, 3, 0), ictm::Error);
  EXPECT_THROW(TrafficMatrixSeries(0, 1), ictm::Error);
  EXPECT_THROW(TrafficMatrixSeries(1, 0), ictm::Error);
  EXPECT_THROW(TrafficMatrixSeries(1, 1, 0.0), ictm::Error);
}

TEST(TmSeries, BinExtractAndSet) {
  TrafficMatrixSeries s = SmallSeries();
  const linalg::Matrix b0 = s.bin(0);
  EXPECT_DOUBLE_EQ(b0(1, 0), 20.0);
  linalg::Matrix m(3, 3, 1.0);
  s.setBin(1, m);
  EXPECT_DOUBLE_EQ(s(1, 2, 2), 1.0);
  m(0, 0) = -1.0;
  EXPECT_THROW(s.setBin(0, m), ictm::Error);
  EXPECT_THROW(s.setBin(0, linalg::Matrix(2, 2)), ictm::Error);
}

TEST(TmSeries, MarginalsMatchPaperNotation) {
  const TrafficMatrixSeries s = SmallSeries();
  // X_i* (ingress) is the row sum; X_*j (egress) the column sum.
  const linalg::Vector in = s.ingress(0);
  const linalg::Vector out = s.egress(0);
  EXPECT_DOUBLE_EQ(in[0], 10.0);
  EXPECT_DOUBLE_EQ(in[1], 20.0);
  EXPECT_DOUBLE_EQ(in[2], 5.0);
  EXPECT_DOUBLE_EQ(out[0], 20.0);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
  EXPECT_DOUBLE_EQ(out[2], 5.0);
  EXPECT_DOUBLE_EQ(s.total(0), 35.0);
  EXPECT_DOUBLE_EQ(linalg::Sum(in), linalg::Sum(out));
}

TEST(TmSeries, OdSeriesAndGrandTotal) {
  const TrafficMatrixSeries s = SmallSeries();
  EXPECT_EQ(s.odSeries(0, 1), (linalg::Vector{10.0, 0.0}));
  EXPECT_DOUBLE_EQ(s.grandTotal(), 45.0);
}

TEST(TmSeries, MeanNormalizedEgress) {
  TrafficMatrixSeries s(2, 2, 60.0);
  s(0, 0, 1) = 1.0;  // bin 0: all egress at node 1
  s(1, 1, 0) = 1.0;  // bin 1: all egress at node 0
  const linalg::Vector e = s.meanNormalizedEgress();
  EXPECT_DOUBLE_EQ(e[0], 0.5);
  EXPECT_DOUBLE_EQ(e[1], 0.5);
}

TEST(TmSeries, SliceAndDownsample) {
  TrafficMatrixSeries s(2, 6, 300.0);
  for (std::size_t t = 0; t < 6; ++t) s(t, 0, 1) = double(t);
  const TrafficMatrixSeries mid = s.slice(2, 3);
  EXPECT_EQ(mid.binCount(), 3u);
  EXPECT_DOUBLE_EQ(mid(0, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(mid(2, 0, 1), 4.0);
  EXPECT_THROW(s.slice(4, 3), ictm::Error);

  const TrafficMatrixSeries ds = s.downsample(2);
  EXPECT_EQ(ds.binCount(), 3u);
  EXPECT_DOUBLE_EQ(ds(0, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ds(1, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(ds(2, 0, 1), 4.0);
  EXPECT_DOUBLE_EQ(ds.binSeconds(), 600.0);
  EXPECT_THROW(s.downsample(0), ictm::Error);
}

TEST(TmSeries, ValidityCheck) {
  TrafficMatrixSeries s(2, 1, 300.0);
  EXPECT_TRUE(s.isValid());
  s(0, 0, 0) = -1.0;
  EXPECT_FALSE(s.isValid());
}

TEST(MarginalOperators, IngressOperatorSelectsRows) {
  const std::size_t n = 4;
  const linalg::Matrix h = BuildIngressOperator(n);
  ASSERT_EQ(h.rows(), n);
  ASSERT_EQ(h.cols(), n * n);
  stats::Rng rng(1);
  const linalg::Matrix tm = test::RandomMatrix(n, n, rng, 0.0, 5.0);
  const linalg::Vector x = topology::FlattenTm(tm);
  const linalg::Vector hx = h * x;
  for (std::size_t i = 0; i < n; ++i) {
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) rowSum += tm(i, j);
    EXPECT_NEAR(hx[i], rowSum, 1e-12);
  }
}

TEST(MarginalOperators, EgressOperatorSelectsColumns) {
  const std::size_t n = 4;
  const linalg::Matrix g = BuildEgressOperator(n);
  stats::Rng rng(2);
  const linalg::Matrix tm = test::RandomMatrix(n, n, rng, 0.0, 5.0);
  const linalg::Vector gx = g * topology::FlattenTm(tm);
  for (std::size_t j = 0; j < n; ++j) {
    double colSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) colSum += tm(i, j);
    EXPECT_NEAR(gx[j], colSum, 1e-12);
  }
}

TEST(MarginalOperators, StackedQMatchesHandG) {
  const std::size_t n = 3;
  const linalg::Matrix q = BuildMarginalOperator(n);
  ASSERT_EQ(q.rows(), 2 * n);
  const linalg::Matrix h = BuildIngressOperator(n);
  const linalg::Matrix g = BuildEgressOperator(n);
  for (std::size_t c = 0; c < n * n; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_DOUBLE_EQ(q(r, c), h(r, c));
      EXPECT_DOUBLE_EQ(q(n + r, c), g(r, c));
    }
  }
}

TEST(CsvIo, RoundTripsExactly) {
  stats::Rng rng(3);
  TrafficMatrixSeries s(4, 5, 900.0);
  for (std::size_t t = 0; t < 5; ++t)
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j)
        s(t, i, j) = rng.uniform(0.0, 1e9);
  std::stringstream ss;
  WriteCsv(ss, s);
  const TrafficMatrixSeries back = ReadCsv(ss);
  EXPECT_EQ(back.nodeCount(), 4u);
  EXPECT_EQ(back.binCount(), 5u);
  EXPECT_DOUBLE_EQ(back.binSeconds(), 900.0);
  for (std::size_t t = 0; t < 5; ++t)
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j)
        EXPECT_DOUBLE_EQ(back(t, i, j), s(t, i, j));
}

TEST(CsvIo, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(ReadCsv(empty), ictm::Error);

  std::stringstream badHeader("hello world\n1,2\n");
  EXPECT_THROW(ReadCsv(badHeader), ictm::Error);

  std::stringstream truncated(
      "# ictm-tm nodes=2 bins=2 binSeconds=300\n1,2,3,4\n");
  EXPECT_THROW(ReadCsv(truncated), ictm::Error);

  std::stringstream shortRow(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,2,3\n");
  EXPECT_THROW(ReadCsv(shortRow), ictm::Error);
}

TEST(CsvIo, RejectsNanInfAndNegativeValues) {
  // NaN, Inf and negative cells must raise a clear error instead of
  // silently producing a corrupt series.
  std::stringstream nan(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,nan,3,4\n");
  EXPECT_THROW(ReadCsv(nan), ictm::Error);

  std::stringstream inf(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,inf,3,4\n");
  EXPECT_THROW(ReadCsv(inf), ictm::Error);

  std::stringstream negative(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,-2,3,4\n");
  EXPECT_THROW(ReadCsv(negative), ictm::Error);

  std::stringstream garbage(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,abc,3,4\n");
  EXPECT_THROW(ReadCsv(garbage), ictm::Error);
}

TEST(CsvIo, RejectsMismatchedCellCounts) {
  std::stringstream tooMany(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,2,3,4,5\n");
  EXPECT_THROW(ReadCsv(tooMany), ictm::Error);

  std::stringstream tooFew(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,2\n");
  EXPECT_THROW(ReadCsv(tooFew), ictm::Error);

  // Trailing carriage returns (Windows line endings) are tolerated.
  std::stringstream crlf(
      "# ictm-tm nodes=2 bins=1 binSeconds=300\n1,2,3,4\r\n");
  const TrafficMatrixSeries s = ReadCsv(crlf);
  EXPECT_DOUBLE_EQ(s(0, 1, 1), 4.0);
}

TEST(CsvIo, StreamingHelpersMatchWholeSeriesPath) {
  TrafficMatrixSeries s(2, 3, 300.0);
  for (std::size_t t = 0; t < 3; ++t)
    for (std::size_t k = 0; k < 4; ++k)
      s.binData(t)[k] = double(t * 4 + k) / 3.0;
  std::stringstream ss;
  WriteCsv(ss, s);

  const CsvHeader h = ReadCsvHeader(ss);
  EXPECT_EQ(h.nodes, 2u);
  EXPECT_EQ(h.bins, 3u);
  double bin[4];
  for (std::size_t t = 0; t < 3; ++t) {
    ReadCsvBin(ss, h, t, bin);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_DOUBLE_EQ(bin[k], s.binData(t)[k]);
  }
}

TEST(CsvIo, FileRoundTrip) {
  TrafficMatrixSeries s(2, 2, 300.0);
  s(0, 0, 1) = 42.5;
  const std::string path = ::testing::TempDir() + "/ictm_test_tm.csv";
  WriteCsvFile(path, s);
  const TrafficMatrixSeries back = ReadCsvFile(path);
  EXPECT_DOUBLE_EQ(back(0, 0, 1), 42.5);
  EXPECT_THROW(ReadCsvFile("/nonexistent/dir/file.csv"), ictm::Error);
}

}  // namespace
}  // namespace ictm::traffic
