// Tests for the compressed sparse-matrix kernels (linalg/sparse.hpp),
// the ParallelFor fan-out (common/parallel.hpp), and the regression
// guarantees of the parallel estimation path: EstimateSeries must be
// bit-identical across thread counts and across the dense/sparse
// routing overloads.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/parallel.hpp"
#include "core/estimation.hpp"
#include "core/gravity.hpp"
#include "linalg/lsq.hpp"
#include "linalg/sparse.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "test_util.hpp"

namespace ictm::linalg {
namespace {

// Random matrix with ~70% structural zeros, exercising empty rows and
// columns too.
Matrix RandomSparseDense(std::size_t rows, std::size_t cols,
                         stats::Rng& rng) {
  Matrix m(rows, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform(0.0, 1.0) < 0.3) m(r, c) = rng.uniform(-2.0, 2.0);
    }
  }
  return m;
}

TEST(CsrMatrix, DenseRoundTrip) {
  stats::Rng rng(1);
  const Matrix dense = RandomSparseDense(7, 11, rng);
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_EQ(csr.rows(), 7u);
  EXPECT_EQ(csr.cols(), 11u);
  EXPECT_TRUE(csr.ToDense() == dense);
}

TEST(CsrMatrix, SpMVMatchesDense) {
  stats::Rng rng(2);
  const Matrix dense = RandomSparseDense(9, 13, rng);
  const CsrMatrix csr = CsrMatrix::FromDense(dense);
  const Vector x = test::RandomVector(13, rng);
  test::ExpectVectorNear(csr.Multiply(x), dense * x, 1e-12);
  const Vector y = test::RandomVector(9, rng);
  test::ExpectVectorNear(csr.TransposeMultiply(y), TransposeTimes(dense, y),
                         1e-12);
}

TEST(CsrMatrix, SpMVRejectsBadLength) {
  const CsrMatrix csr = CsrMatrix::FromDense(Matrix(3, 4, 1.0));
  EXPECT_THROW(csr.Multiply(Vector(3)), ictm::Error);
  EXPECT_THROW(csr.TransposeMultiply(Vector(4)), ictm::Error);
}

TEST(CsrMatrix, TripletsAccumulateDuplicatesAndDropZeros) {
  // Duplicate positions sum; a pair cancelling to zero is dropped.
  const CsrMatrix csr = CsrMatrix::FromTriplets(
      2, 3, {{0, 1, 2.0}, {0, 1, 3.0}, {1, 2, 1.0}, {1, 2, -1.0}});
  EXPECT_EQ(csr.nonZeros(), 1u);
  const Matrix expected{{0, 5, 0}, {0, 0, 0}};
  EXPECT_TRUE(csr.ToDense() == expected);
  EXPECT_THROW(CsrMatrix::FromTriplets(2, 3, {{2, 0, 1.0}}), ictm::Error);
  EXPECT_THROW(CsrMatrix::FromTriplets(2, 3, {{0, 3, 1.0}}), ictm::Error);
}

TEST(CscMatrix, DenseAndCsrRoundTrip) {
  stats::Rng rng(3);
  const Matrix dense = RandomSparseDense(8, 6, rng);
  const CscMatrix fromDense = CscMatrix::FromDense(dense);
  const CscMatrix fromCsr = CscMatrix::FromCsr(CsrMatrix::FromDense(dense));
  EXPECT_TRUE(fromDense.ToDense() == dense);
  EXPECT_TRUE(fromCsr.ToDense() == dense);
  const Vector x = test::RandomVector(6, rng);
  test::ExpectVectorNear(fromDense.Multiply(x), dense * x, 1e-12);
  const Vector y = test::RandomVector(8, rng);
  test::ExpectVectorNear(fromDense.TransposeMultiply(y),
                         TransposeTimes(dense, y), 1e-12);
}

TEST(WeightedGram, MatchesDenseTripleProduct) {
  // A diag(w) Aᵀ against the dense computation, on a routing-shaped
  // matrix (non-negative weights; zero weights must be skipped).
  stats::Rng rng(4);
  const Matrix a = RandomSparseDense(10, 25, rng);
  Vector w = test::RandomVector(25, rng, 0.0, 3.0);
  w[3] = 0.0;
  w[17] = 0.0;
  const Matrix expected = a * Matrix::Diagonal(w) * a.transposed();
  const Matrix got = WeightedGram(CscMatrix::FromDense(a), w);
  test::ExpectMatrixNear(got, expected, 1e-10);
}

TEST(WeightedGram, NegativeWeightsTreatedAsUnsupported) {
  // The estimation pipeline weights by a prior; entries <= 0 carry no
  // information and are skipped, exactly like the dense reference with
  // those weights zeroed.
  const Matrix a{{1, 2}, {3, 4}};
  Vector w{-1.0, 2.0};
  Vector clamped{0.0, 2.0};
  const Matrix expected =
      a * Matrix::Diagonal(clamped) * a.transposed();
  test::ExpectMatrixNear(WeightedGram(CscMatrix::FromDense(a), w),
                         expected, 1e-12);
}

TEST(CholeskySolveInPlace, MatchesTextbookCholeskyPath) {
  // The blocked in-place kernel against CholeskyUpper + substitution,
  // on sizes around the rank-4 blocking boundaries (n mod 4 = 0..3).
  stats::Rng rng(5);
  for (std::size_t n : {1u, 3u, 4u, 7u, 16u, 21u}) {
    // SPD by construction: AᵀA + n·I.
    const Matrix a = test::RandomMatrix(n, n, rng);
    Matrix spd = a.transposed() * a;
    for (std::size_t i = 0; i < n; ++i) spd(i, i) += double(n);
    const Vector b = test::RandomVector(n, rng);

    const Matrix u = CholeskyUpper(spd);
    const Vector y = ForwardSubstituteTranspose(u, b);
    Vector expected(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      double acc = y[i];
      for (std::size_t j = i + 1; j < n; ++j) acc -= u(i, j) * expected[j];
      expected[i] = acc / u(i, i);
    }

    Matrix work = spd;
    Vector z = b;
    CholeskySolveInPlace(work.data().data(), z.data(), n);
    test::ExpectVectorNear(z, expected, 1e-9);
    // The factor itself must match too (upper triangle only).
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i; j < n; ++j)
        EXPECT_NEAR(work(i, j), u(i, j), 1e-9) << n << ":" << i << "," << j;
  }
}

TEST(CholeskySolveInPlace, RejectsIndefiniteMatrix) {
  Matrix m{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  Vector d{1.0, 1.0};
  EXPECT_THROW(CholeskySolveInPlace(m.data().data(), d.data(), 2),
               ictm::Error);
}

}  // namespace
}  // namespace ictm::linalg

namespace ictm {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce) {
  for (std::size_t threads : {0u, 1u, 3u, 8u, 64u}) {
    std::vector<int> hits(100, 0);
    ParallelFor(std::size_t{5}, std::size_t{100}, threads,
                [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 100; ++i) {
      EXPECT_EQ(hits[i], i >= 5 ? 1 : 0) << "index " << i;
    }
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  ParallelFor(std::size_t{4}, std::size_t{4}, 8,
              [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, PropagatesWorkerException) {
  EXPECT_THROW(
      ParallelFor(std::size_t{0}, std::size_t{32}, 4,
                  [&](std::size_t i) {
                    if (i == 17) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForRanges, ChunksPartitionTheRange) {
  std::vector<int> hits(64, 0);
  std::atomic<int> chunks{0};
  ParallelForRanges(std::size_t{0}, std::size_t{64}, 4,
                    [&](std::size_t lo, std::size_t hi) {
                      ++chunks;
                      EXPECT_LT(lo, hi);
                      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                    });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_LE(chunks.load(), 4);
}

}  // namespace
}  // namespace ictm

namespace ictm::core {
namespace {

struct SeriesFixture {
  topology::Graph graph = topology::MakeAbilene11();
  linalg::CsrMatrix routingCsr = topology::BuildRoutingCsr(graph);
  traffic::TrafficMatrixSeries truth;
  traffic::TrafficMatrixSeries priors;

  SeriesFixture() : truth(11, 24, 300.0), priors(11, 24, 300.0) {
    stats::Rng rng(77);
    for (std::size_t t = 0; t < truth.binCount(); ++t)
      for (std::size_t i = 0; i < 11; ++i)
        for (std::size_t j = 0; j < 11; ++j)
          truth(t, i, j) = rng.uniform(1e5, 1e7);
    priors = GravityPredictSeries(truth);
  }
};

TEST(EstimateSeriesParallel, ThreadedRunsBitIdenticalToSerial) {
  SeriesFixture fx;
  const auto serial =
      EstimateSeries(fx.routingCsr, fx.truth, fx.priors);  // threads = 1
  for (std::size_t threads : {2u, 5u, 8u, 0u}) {
    EstimationOptions opt;
    opt.threads = threads;
    const auto parallel =
        EstimateSeries(fx.routingCsr, fx.truth, fx.priors, opt);
    for (std::size_t t = 0; t < fx.truth.binCount(); ++t) {
      const double* a = serial.binData(t);
      const double* b = parallel.binData(t);
      for (std::size_t k = 0; k < 11 * 11; ++k) {
        ASSERT_EQ(a[k], b[k])
            << "threads=" << threads << " bin " << t << " entry " << k;
      }
    }
  }
}

TEST(EstimateSeriesParallel, DenseOverloadMatchesSparse) {
  SeriesFixture fx;
  const linalg::Matrix dense = fx.routingCsr.ToDense();
  EstimationOptions opt;
  opt.threads = 3;
  const auto fromSparse =
      EstimateSeries(fx.routingCsr, fx.truth, fx.priors, opt);
  const auto fromDense = EstimateSeries(dense, fx.truth, fx.priors, opt);
  for (std::size_t t = 0; t < fx.truth.binCount(); ++t) {
    const double* a = fromSparse.binData(t);
    const double* b = fromDense.binData(t);
    for (std::size_t k = 0; k < 11 * 11; ++k) {
      ASSERT_EQ(a[k], b[k]) << "bin " << t << " entry " << k;
    }
  }
}

TEST(EstimateSeriesParallel, SparseBinMatchesDenseBin) {
  // Single-bin API: the CSR overload and the dense overload must agree
  // exactly (the dense one compresses and delegates).
  SeriesFixture fx;
  const linalg::Matrix dense = fx.routingCsr.ToDense();
  const linalg::Matrix truthBin = fx.truth.bin(0);
  const linalg::Vector loads =
      topology::ComputeLinkLoads(fx.routingCsr, truthBin);
  test::ExpectVectorNear(loads, topology::ComputeLinkLoads(dense, truthBin),
                         1e-9);
  const auto a = EstimateTmBin(fx.routingCsr, loads, fx.priors.bin(0),
                               fx.truth.ingress(0), fx.truth.egress(0));
  const auto b = EstimateTmBin(dense, loads, fx.priors.bin(0),
                               fx.truth.ingress(0), fx.truth.egress(0));
  EXPECT_TRUE(a == b);
}

TEST(RoutingCsr, MatchesDenseRoutingMatrix) {
  for (const topology::Graph& g :
       {topology::MakeAbilene11(), topology::MakeRing(6, 2)}) {
    const linalg::CsrMatrix csr = topology::BuildRoutingCsr(g);
    EXPECT_TRUE(csr.ToDense() == topology::BuildRoutingMatrix(g));
  }
}

}  // namespace
}  // namespace ictm::core
