// Tests for the TM-estimation priors (paper Sec. 6): gravity,
// stable-fP (Eqs. 7-9) and stable-f closed forms (Eqs. 11-12).
#include <gtest/gtest.h>

#include "core/fit.hpp"
#include "core/gravity.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "core/priors.hpp"
#include "test_util.hpp"

namespace ictm::core {
namespace {

// Exact stable-fP instance shared by the prior tests.
struct Instance {
  double f = 0.25;
  linalg::Vector preference;
  linalg::Matrix activity;
  traffic::TrafficMatrixSeries series{1, 1};
};

Instance MakeInstance(std::size_t n, std::size_t bins, std::uint64_t seed,
                      double f = 0.25) {
  stats::Rng rng(seed);
  Instance inst;
  inst.f = f;
  inst.preference = test::RandomPositiveVector(n, rng, 0.2, 2.0);
  const double s = linalg::Sum(inst.preference);
  for (double& p : inst.preference) p /= s;
  inst.activity = linalg::Matrix(n, bins);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t t = 0; t < bins; ++t)
      inst.activity(i, t) = rng.uniform(1e5, 1e7);
  inst.series = EvaluateStableFP(f, inst.activity, inst.preference);
  return inst;
}

TEST(Marginals, ExtractionMatchesSeries) {
  const Instance inst = MakeInstance(4, 5, 1);
  const MarginalSeries m = ExtractMarginals(inst.series);
  EXPECT_EQ(m.nodeCount(), 4u);
  EXPECT_EQ(m.binCount(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    test::ExpectVectorNear(m.ingress.col(t), inst.series.ingress(t),
                           1e-12);
    test::ExpectVectorNear(m.egress.col(t), inst.series.egress(t), 1e-12);
  }
  EXPECT_NO_THROW(m.validate());
}

TEST(Marginals, ValidationCatchesShapeAndSign) {
  MarginalSeries m{linalg::Matrix(2, 3), linalg::Matrix(2, 2)};
  EXPECT_THROW(m.validate(), ictm::Error);
  m.egress = linalg::Matrix(2, 3);
  m.ingress(0, 0) = -1.0;
  EXPECT_THROW(m.validate(), ictm::Error);
}

TEST(GravityPrior, MatchesDirectGravityPrediction) {
  const Instance inst = MakeInstance(5, 4, 2);
  const MarginalSeries m = ExtractMarginals(inst.series);
  const auto prior = GravityPriorSeries(m);
  for (std::size_t t = 0; t < 4; ++t) {
    test::ExpectMatrixNear(prior.bin(t),
                           GravityPredictBin(inst.series, t), 1e-9);
  }
}

TEST(StableFPPriorTest, ExactWhenModelHolds) {
  // With the true (f, P) and marginals from exact stable-fP data, the
  // pseudo-inverse recovers A(t) and the prior equals the truth.
  const Instance inst = MakeInstance(6, 8, 3);
  const MarginalSeries m = ExtractMarginals(inst.series);
  linalg::Matrix estActivity;
  const auto prior =
      StableFPPrior(inst.f, inst.preference, m, 300.0, &estActivity);
  for (std::size_t t = 0; t < 8; ++t) {
    test::ExpectMatrixNear(prior.bin(t), inst.series.bin(t),
                           1e-6 * inst.series.bin(t).maxAbs());
  }
  // Recovered activities match the generating ones.
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t t = 0; t < 8; ++t)
      EXPECT_NEAR(estActivity(i, t), inst.activity(i, t),
                  1e-6 * inst.activity(i, t));
}

TEST(StableFPPriorTest, BetterThanGravityWithWrongishParameters) {
  // Even with (f, P) measured on a *different* week (here: perturbed),
  // the IC prior should reconstruct IC-structured traffic better than
  // gravity — the Sec. 6.2 scenario.
  const Instance inst = MakeInstance(6, 10, 4);
  stats::Rng rng(5);
  linalg::Vector noisyPref = inst.preference;
  for (double& p : noisyPref) p *= rng.uniform(0.9, 1.1);
  const MarginalSeries m = ExtractMarginals(inst.series);
  const auto icPrior = StableFPPrior(inst.f + 0.02, noisyPref, m);
  const auto gravPrior = GravityPriorSeries(m);
  const double icErr = RelL2Objective(inst.series, icPrior);
  const double gravErr = RelL2Objective(inst.series, gravPrior);
  EXPECT_LT(icErr, gravErr);
}

TEST(StableFPPriorTest, OutputNonNegative) {
  const Instance inst = MakeInstance(5, 6, 6);
  const MarginalSeries m = ExtractMarginals(inst.series);
  const auto prior = StableFPPrior(0.3, inst.preference, m);
  EXPECT_TRUE(prior.isValid());
}

TEST(StableFEstimatesTest, ClosedFormsExactOnExactData) {
  // Eqs. 11-12 derive (A, P) from one bin's marginals when the
  // simplified IC model holds exactly.
  const Instance inst = MakeInstance(6, 3, 7, 0.25);
  for (std::size_t t = 0; t < 3; ++t) {
    const StableFEstimates est = EstimateStableFParameters(
        inst.f, inst.series.ingress(t), inst.series.egress(t));
    test::ExpectVectorNear(est.preference, inst.preference, 1e-9);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(est.activity[i], inst.activity(i, t),
                  1e-6 * inst.activity(i, t));
    }
  }
}

TEST(StableFEstimatesTest, SingularAtHalf) {
  EXPECT_THROW(EstimateStableFParameters(0.5, {1.0, 2.0}, {2.0, 1.0}),
               ictm::Error);
  EXPECT_THROW(
      EstimateStableFParameters(0.5 + 1e-9, {1.0, 2.0}, {2.0, 1.0}),
      ictm::Error);
  EXPECT_NO_THROW(
      EstimateStableFParameters(0.45, {1.0, 2.0}, {2.0, 1.0}));
}

TEST(StableFEstimatesTest, NegativeEstimatesClampToZero) {
  // Marginals inconsistent with the model can push raw estimates
  // negative; the implementation clamps (documented behaviour).
  const StableFEstimates est =
      EstimateStableFParameters(0.25, {100.0, 0.0}, {0.0, 100.0});
  for (double a : est.activity) EXPECT_GE(a, 0.0);
  for (double p : est.preference) EXPECT_GE(p, 0.0);
  EXPECT_NEAR(linalg::Sum(est.preference), 1.0, 1e-9);
}

TEST(StableFPriorTest, ExactOnExactData) {
  const Instance inst = MakeInstance(5, 6, 8, 0.3);
  const MarginalSeries m = ExtractMarginals(inst.series);
  const auto prior = StableFPrior(inst.f, m);
  for (std::size_t t = 0; t < 6; ++t) {
    test::ExpectMatrixNear(prior.bin(t), inst.series.bin(t),
                           1e-6 * inst.series.bin(t).maxAbs());
  }
}

TEST(StableFPriorTest, WorksAcrossFRange) {
  for (double f : {0.1, 0.2, 0.35, 0.45, 0.6, 0.8}) {
    const Instance inst = MakeInstance(4, 4, 9, f);
    const MarginalSeries m = ExtractMarginals(inst.series);
    const auto prior = StableFPrior(f, m);
    const double err = RelL2Objective(inst.series, prior) / 4.0;
    EXPECT_LT(err, 1e-6) << "f=" << f;
  }
}

TEST(StableFPriorTest, DegradesGracefullyWithWrongF) {
  // Using a wrong f produces a worse—but still valid—prior.
  const Instance inst = MakeInstance(5, 5, 10, 0.25);
  const MarginalSeries m = ExtractMarginals(inst.series);
  const auto right = StableFPrior(0.25, m);
  const auto wrong = StableFPrior(0.4, m);
  EXPECT_LE(RelL2Objective(inst.series, right),
            RelL2Objective(inst.series, wrong));
  EXPECT_TRUE(wrong.isValid());
}

TEST(Priors, FitThenPriorPipelineRecoversHeldOutWeek) {
  // Sec. 6.2 end-to-end on exact data: fit (f, P) on "week 1", build
  // the stable-fP prior for "week 2" from marginals only.
  const Instance week1 = MakeInstance(5, 12, 11);
  stats::Rng rng(12);
  linalg::Matrix act2(5, 12);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t t = 0; t < 12; ++t)
      act2(i, t) = rng.uniform(1e5, 1e7);
  const auto week2 =
      EvaluateStableFP(week1.f, act2, week1.preference);

  const StableFPFit fit = FitStableFP(week1.series);
  const auto prior =
      StableFPPrior(fit.f, fit.preference, ExtractMarginals(week2));
  const double err = RelL2Objective(week2, prior) / 12.0;
  EXPECT_LT(err, 0.05);
}

}  // namespace
}  // namespace ictm::core
