// Tests for IPF and the tomogravity estimation pipeline (paper Sec. 6).
#include <gtest/gtest.h>

#include "core/estimation.hpp"
#include "core/gravity.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "test_util.hpp"

namespace ictm::core {
namespace {

TEST(IpfTest, MatchesMarginalsOnRandomMatrix) {
  stats::Rng rng(1);
  const linalg::Matrix seed = test::RandomMatrix(5, 5, rng, 0.1, 2.0);
  linalg::Vector rows{10, 20, 5, 8, 7};
  linalg::Vector cols{12, 9, 9, 10, 10};  // both sum to 50
  const linalg::Matrix out = Ipf(seed, rows, cols, 200, 1e-12);
  for (std::size_t i = 0; i < 5; ++i) {
    double rowSum = 0.0, colSum = 0.0;
    for (std::size_t j = 0; j < 5; ++j) {
      rowSum += out(i, j);
      colSum += out(j, i);
      EXPECT_GE(out(i, j), 0.0);
    }
    EXPECT_NEAR(rowSum, rows[i], 1e-6);
    EXPECT_NEAR(colSum, cols[i], 1e-6);
  }
}

TEST(IpfTest, FixedPointWhenAlreadyConsistent) {
  // A matrix already matching its targets is unchanged.
  linalg::Matrix m{{1, 2}, {3, 4}};
  const linalg::Matrix out = Ipf(m, {3, 7}, {4, 6}, 50, 1e-12);
  test::ExpectMatrixNear(out, m, 1e-9);
}

TEST(IpfTest, PreservesZeroCells) {
  // Structural zeros stay zero (IPF multiplies, never adds, once a
  // row/col is non-empty).
  linalg::Matrix m{{0, 2}, {3, 4}};
  const linalg::Matrix out = Ipf(m, {2, 7}, {3, 6}, 200, 1e-12);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
}

TEST(IpfTest, SeedsEmptyRowsWithPositiveTarget) {
  // Structural-zero instances converge only geometrically (the limit
  // is the permutation matrix [[0,5],[5,0]]), so allow many rounds and
  // a modest tolerance.
  linalg::Matrix m(2, 2, 0.0);
  m(1, 0) = 1.0;
  const linalg::Matrix out = Ipf(m, {5, 5}, {5, 5}, 5000, 1e-12);
  double row0 = out(0, 0) + out(0, 1);
  EXPECT_NEAR(row0, 5.0, 1e-2);
  EXPECT_NEAR(out(0, 1), 5.0, 0.1);
}

TEST(IpfTest, RejectsBadInputs) {
  EXPECT_THROW(Ipf(linalg::Matrix(2, 3), {1, 1}, {1, 1}), ictm::Error);
  EXPECT_THROW(Ipf(linalg::Matrix(2, 2), {1}, {1, 1}), ictm::Error);
  EXPECT_THROW(Ipf(linalg::Matrix(2, 2), {-1, 1}, {0, 0}), ictm::Error);
}

// ---- tomogravity bin estimation -----------------------------------------

struct EstimationFixture {
  topology::Graph graph = topology::MakeRing(6, 2);
  linalg::Matrix routing = topology::BuildRoutingMatrix(graph);
  linalg::Matrix truth;
  linalg::Vector loads;

  EstimationFixture() {
    stats::Rng rng(7);
    truth = test::RandomMatrix(6, 6, rng, 1.0, 10.0);
    loads = topology::ComputeLinkLoads(routing, truth);
  }

  linalg::Vector ingress() const {
    linalg::Vector v(6, 0.0);
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) v[i] += truth(i, j);
    return v;
  }
  linalg::Vector egress() const {
    linalg::Vector v(6, 0.0);
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) v[j] += truth(i, j);
    return v;
  }
};

TEST(EstimateTmBinTest, PerfectPriorIsReturnedUnchanged) {
  EstimationFixture fx;
  const linalg::Matrix est = EstimateTmBin(
      fx.routing, fx.loads, fx.truth, fx.ingress(), fx.egress());
  test::ExpectMatrixNear(est, fx.truth, 1e-4);
}

TEST(EstimateTmBinTest, EstimateRespectsMarginals) {
  EstimationFixture fx;
  // Distorted prior: gravity from the marginals.
  const linalg::Matrix prior = GravityPredict(fx.ingress(), fx.egress());
  const linalg::Matrix est = EstimateTmBin(
      fx.routing, fx.loads, prior, fx.ingress(), fx.egress());
  const linalg::Vector in = fx.ingress();
  const linalg::Vector out = fx.egress();
  for (std::size_t i = 0; i < 6; ++i) {
    double rowSum = 0.0, colSum = 0.0;
    for (std::size_t j = 0; j < 6; ++j) {
      rowSum += est(i, j);
      colSum += est(j, i);
    }
    EXPECT_NEAR(rowSum, in[i], in[i] * 1e-4);
    EXPECT_NEAR(colSum, out[i], out[i] * 1e-4);
  }
}

TEST(EstimateTmBinTest, RefinementImprovesOnRawPrior) {
  EstimationFixture fx;
  const linalg::Matrix prior = GravityPredict(fx.ingress(), fx.egress());
  const linalg::Matrix est = EstimateTmBin(
      fx.routing, fx.loads, prior, fx.ingress(), fx.egress());
  EXPECT_LT(RelL2Temporal(fx.truth, est), RelL2Temporal(fx.truth, prior));
}

TEST(EstimateTmBinTest, BetterPriorGivesBetterEstimate) {
  EstimationFixture fx;
  // "Good" prior: truth with mild multiplicative noise.  "Bad" prior:
  // gravity.  The pipeline must preserve the ordering.
  stats::Rng rng(8);
  linalg::Matrix good = fx.truth;
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) good(i, j) *= rng.uniform(0.9, 1.1);
  const linalg::Matrix bad = GravityPredict(fx.ingress(), fx.egress());
  const linalg::Matrix estGood = EstimateTmBin(
      fx.routing, fx.loads, good, fx.ingress(), fx.egress());
  const linalg::Matrix estBad = EstimateTmBin(
      fx.routing, fx.loads, bad, fx.ingress(), fx.egress());
  EXPECT_LT(RelL2Temporal(fx.truth, estGood),
            RelL2Temporal(fx.truth, estBad));
}

TEST(EstimateTmBinTest, WithoutMarginalConstraintsStillReasonable) {
  EstimationFixture fx;
  EstimationOptions opt;
  opt.useMarginalConstraints = false;
  const linalg::Matrix prior = GravityPredict(fx.ingress(), fx.egress());
  const linalg::Matrix est =
      EstimateTmBin(fx.routing, fx.loads, prior, fx.ingress(),
                    fx.egress(), opt);
  EXPECT_LE(RelL2Temporal(fx.truth, est),
            RelL2Temporal(fx.truth, prior) + 1e-9);
}

TEST(EstimateTmBinTest, OutputNonNegative) {
  EstimationFixture fx;
  // Extremely bad prior to provoke negative LS corrections.
  linalg::Matrix prior(6, 6, 1.0);
  const linalg::Matrix est = EstimateTmBin(
      fx.routing, fx.loads, prior, fx.ingress(), fx.egress());
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_GE(est(i, j), 0.0);
}

TEST(EstimateTmBinTest, ShapeErrorsThrow) {
  EstimationFixture fx;
  EXPECT_THROW(EstimateTmBin(fx.routing, linalg::Vector(3), fx.truth,
                             fx.ingress(), fx.egress()),
               ictm::Error);
  EXPECT_THROW(EstimateTmBin(fx.routing, fx.loads, linalg::Matrix(5, 5),
                             fx.ingress(), fx.egress()),
               ictm::Error);
  EXPECT_THROW(EstimateTmBin(fx.routing, fx.loads, fx.truth,
                             linalg::Vector(3), fx.egress()),
               ictm::Error);
}

TEST(EstimateSeriesTest, PipelineOverMultipleBins) {
  const topology::Graph g = topology::MakeRing(5, 2);
  const linalg::Matrix r = topology::BuildRoutingMatrix(g);
  stats::Rng rng(9);
  traffic::TrafficMatrixSeries truth(5, 4, 300.0);
  for (std::size_t t = 0; t < 4; ++t)
    for (std::size_t i = 0; i < 5; ++i)
      for (std::size_t j = 0; j < 5; ++j)
        truth(t, i, j) = rng.uniform(1.0, 10.0);
  const auto prior = GravityPredictSeries(truth);
  const auto est = EstimateSeries(r, truth, prior);
  EXPECT_EQ(est.binCount(), 4u);
  // Refined estimates beat the raw prior in every bin.
  const auto errEst = RelL2TemporalSeries(truth, est);
  const auto errPrior = RelL2TemporalSeries(truth, prior);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_LE(errEst[t], errPrior[t] + 1e-9);
  }
  EXPECT_THROW(EstimateSeries(r, truth, prior.slice(0, 2)), ictm::Error);
}

}  // namespace
}  // namespace ictm::core
