// Tests for the alternating-least-squares parameter estimation
// (paper Sec. 5.1): recovery on exact model data, convergence
// behaviour, and option handling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fit.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "test_util.hpp"

namespace ictm::core {
namespace {

// Builds an exact stable-fP series with heterogeneous activity shapes
// (so the mirror solution is distinguishable).
struct ExactInstance {
  double f;
  linalg::Vector preference;
  linalg::Matrix activity;
  traffic::TrafficMatrixSeries series;
};

ExactInstance MakeExact(double f, std::size_t n, std::size_t bins,
                        std::uint64_t seed) {
  stats::Rng rng(seed);
  linalg::Vector pref(n);
  for (double& p : pref) p = rng.uniform(0.2, 2.0);
  const double s = linalg::Sum(pref);
  for (double& p : pref) p /= s;
  linalg::Matrix act(n, bins);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = rng.uniform(1e6, 2e7);
    const double phase = rng.uniform(0.0, 6.28);
    const double wobble = rng.uniform(0.2, 0.8);
    for (std::size_t t = 0; t < bins; ++t) {
      act(i, t) =
          base * (1.0 + wobble * std::sin(phase + 0.37 * static_cast<double>(t) +
                                          0.11 * static_cast<double>(i * t)));
    }
  }
  traffic::TrafficMatrixSeries series = EvaluateStableFP(f, act, pref);
  return {f, pref, act, std::move(series)};
}

TEST(FitStableFPTest, RecoversParametersOnExactData) {
  const ExactInstance inst = MakeExact(0.25, 6, 40, 1);
  const StableFPFit fit = FitStableFP(inst.series);
  EXPECT_NEAR(fit.f, 0.25, 0.02);
  test::ExpectVectorNear(fit.preference, inst.preference, 0.02);
  // Near-zero residual objective.
  EXPECT_LT(fit.objective(), 0.05 * double(inst.series.binCount()));
}

TEST(FitStableFPTest, RecoversActivitiesUpToScale) {
  const ExactInstance inst = MakeExact(0.3, 5, 30, 2);
  const StableFPFit fit = FitStableFP(inst.series);
  // Activities are identified once P is normalised; compare directly.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t t = 0; t < 30; ++t) {
      EXPECT_NEAR(fit.activitySeries(i, t), inst.activity(i, t),
                  0.1 * inst.activity(i, t))
          << "node " << i << " bin " << t;
    }
  }
}

TEST(FitStableFPTest, ObjectiveDecreasesAcrossSweeps) {
  const ExactInstance inst = MakeExact(0.2, 5, 20, 3);
  FitOptions opt;
  opt.gridPoints = 0;  // single ALS run so the history is one descent
  opt.relativeTolerance = 0.0;
  opt.maxSweeps = 8;
  const StableFPFit fit = FitStableFP(inst.series, opt);
  for (std::size_t k = 1; k < fit.objectiveHistory.size(); ++k) {
    EXPECT_LE(fit.objectiveHistory[k],
              fit.objectiveHistory[k - 1] + 1e-9);
  }
}

TEST(FitStableFPTest, PreferenceOnSimplex) {
  const ExactInstance inst = MakeExact(0.35, 7, 25, 4);
  const StableFPFit fit = FitStableFP(inst.series);
  EXPECT_NEAR(linalg::Sum(fit.preference), 1.0, 1e-9);
  for (double p : fit.preference) EXPECT_GE(p, 0.0);
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t t = 0; t < 25; ++t)
      EXPECT_GE(fit.activitySeries(i, t), 0.0);
}

TEST(FitStableFPTest, FixedFIsRespected) {
  const ExactInstance inst = MakeExact(0.25, 5, 20, 5);
  FitOptions opt;
  opt.fitF = false;
  opt.initialF = 0.4;
  const StableFPFit fit = FitStableFP(inst.series, opt);
  EXPECT_DOUBLE_EQ(fit.f, 0.4);
}

TEST(FitStableFPTest, FStaysInsideConfiguredClamp) {
  const ExactInstance inst = MakeExact(0.3, 5, 20, 6);
  FitOptions opt;
  opt.fMin = 0.1;
  opt.fMax = 0.2;  // deliberately excludes the true value
  const StableFPFit fit = FitStableFP(inst.series, opt);
  EXPECT_GE(fit.f, 0.1);
  EXPECT_LE(fit.f, 0.2);
}

TEST(FitStableFPTest, MirroredDataFitsEquallyWell) {
  // Data generated at f = 0.75 is the mirror of f = 0.25 data; the
  // constrained search (f < 1/2) must still reach a near-perfect fit
  // via the mirrored parameters.
  // The exact mirror requires activities sharing a common temporal
  // shape (A_i(t) = base_i * s(t)); build exactly that.
  stats::Rng rng(7);
  linalg::Vector pref = test::RandomPositiveVector(5, rng);
  linalg::Matrix act(5, 20);
  for (std::size_t i = 0; i < 5; ++i) {
    const double base = rng.uniform(1.0, 10.0);
    for (std::size_t t = 0; t < 20; ++t)
      act(i, t) = base * (1.0 + 0.5 * std::sin(0.3 * double(t)));
  }
  const auto series = EvaluateStableFP(0.75, act, pref);
  const StableFPFit fit = FitStableFP(series);
  EXPECT_LT(fit.objective() / 20.0, 0.05);
  EXPECT_LE(fit.f, 0.49);
}

TEST(FitStableFPTest, ThrowsOnAllZeroBin) {
  traffic::TrafficMatrixSeries s(3, 2, 300.0);
  s(0, 0, 1) = 5.0;  // bin 1 left all-zero
  EXPECT_THROW(FitStableFP(s), ictm::Error);
}

TEST(FitStableFPTest, InvalidOptionsThrow) {
  const ExactInstance inst = MakeExact(0.25, 4, 10, 8);
  FitOptions opt;
  opt.maxSweeps = 0;
  EXPECT_THROW(FitStableFP(inst.series, opt), ictm::Error);
  opt = FitOptions{};
  opt.fMin = 0.4;
  opt.fMax = 0.3;
  EXPECT_THROW(FitStableFP(inst.series, opt), ictm::Error);
}

TEST(FitStableFPTest, ObjectiveAccessorRequiresRun) {
  StableFPFit fit;
  EXPECT_THROW(fit.objective(), ictm::Error);
}

TEST(FitStableFPTest, ReconstructMatchesFittedParameters) {
  const ExactInstance inst = MakeExact(0.3, 4, 15, 9);
  const StableFPFit fit = FitStableFP(inst.series);
  const auto rec = ReconstructSeries(fit, 300.0);
  const auto direct =
      EvaluateStableFP(fit.f, fit.activitySeries, fit.preference);
  for (std::size_t t = 0; t < 15; ++t) {
    test::ExpectMatrixNear(rec.bin(t), direct.bin(t), 1e-9);
  }
}

TEST(FitStableFPTest, BeatsGravityDoFOnParameterCount) {
  // Structural check of the Sec. 5.1 claim: the stable-fP fit uses
  // nt + n + 1 numbers; make sure our result exposes exactly that.
  const ExactInstance inst = MakeExact(0.25, 6, 12, 10);
  const StableFPFit fit = FitStableFP(inst.series);
  const std::size_t paramCount =
      fit.activitySeries.rows() * fit.activitySeries.cols() +
      fit.preference.size() + 1;
  EXPECT_EQ(paramCount, DegreesOfFreedom::StableFPIc(6, 12));
}

TEST(FitTimeVaryingTest, PerBinFitIsAtLeastAsGoodAsStableFP) {
  // More DoF can only help the objective.
  const ExactInstance inst = MakeExact(0.3, 4, 8, 11);
  // Perturb the series so neither model is exact.
  traffic::TrafficMatrixSeries noisy = inst.series;
  stats::Rng rng(12);
  for (std::size_t t = 0; t < noisy.binCount(); ++t)
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j)
        noisy(t, i, j) *= rng.uniform(0.9, 1.1);
  FitOptions opt;
  opt.gridPoints = 5;
  opt.gridStride = 1;
  const StableFPFit stable = FitStableFP(noisy, opt);
  const TimeVaryingFit varying = FitTimeVarying(noisy, opt);
  EXPECT_LE(varying.objective, stable.objective() + 1e-6);
  EXPECT_EQ(varying.f.size(), noisy.binCount());
  EXPECT_EQ(varying.preference.size(), noisy.binCount());
}

TEST(FitStableFPTest, WarmGridHandlesSmallBinCounts) {
  // Grid stage with stride larger than the series must not break.
  const ExactInstance inst = MakeExact(0.25, 4, 3, 13);
  FitOptions opt;
  opt.gridStride = 10;
  const StableFPFit fit = FitStableFP(inst.series, opt);
  EXPECT_GT(fit.sweeps, 0u);
}

}  // namespace
}  // namespace ictm::core
