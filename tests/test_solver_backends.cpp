// Tests for the pluggable solver-backend layer (core/solver_backend.hpp):
// dense/sparse/cg agreement on the tier-1 fixtures, per-backend
// thread-count bit-identity, streaming == batch equivalence under the
// non-dense backends, and the linalg building blocks against their
// dense references.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimation.hpp"
#include "core/gravity.hpp"
#include "core/solver_backend.hpp"
#include "linalg/lsq.hpp"
#include "linalg/pcg.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_chol.hpp"
#include "scenario/common.hpp"
#include "stream/online.hpp"
#include "test_util.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"

namespace ictm {
namespace {

// Diurnally varying random traffic with every OD pair active — the
// dense-prior worst case the scale scenarios use.
traffic::TrafficMatrixSeries MakeTraffic(std::size_t n, std::size_t bins,
                                         std::uint64_t seed) {
  stats::Rng rng(seed);
  traffic::TrafficMatrixSeries truth(n, bins, 300.0);
  for (std::size_t t = 0; t < bins; ++t) {
    const double diurnal =
        1.0 + 0.5 * std::sin(2.0 * M_PI * double(t) / 288.0);
    for (std::size_t k = 0; k < n * n; ++k) {
      truth.binData(t)[k] = diurnal * rng.uniform(1e6, 1e7);
    }
  }
  return truth;
}

double MaxRelDiff(const traffic::TrafficMatrixSeries& a,
                  const traffic::TrafficMatrixSeries& b) {
  const std::size_t n = a.nodeCount();
  double worst = 0.0;
  for (std::size_t t = 0; t < a.binCount(); ++t) {
    const double* pa = a.binData(t);
    const double* pb = b.binData(t);
    for (std::size_t k = 0; k < n * n; ++k) {
      const double scale =
          std::max({std::fabs(pa[k]), std::fabs(pb[k]), 1.0});
      worst = std::max(worst, std::fabs(pa[k] - pb[k]) / scale);
    }
  }
  return worst;
}

using scenario::BitIdentical;  // the shared exact-equality check

struct Fixture {
  topology::Graph graph;
  linalg::CsrMatrix routing;
  traffic::TrafficMatrixSeries truth;
  traffic::TrafficMatrixSeries priors;

  Fixture(const std::string& spec, std::size_t bins, std::uint64_t seed)
      : graph(topology::MakeTopology(spec, 0)),
        routing(topology::BuildRoutingCsr(graph)),
        truth(MakeTraffic(graph.nodeCount(), bins, seed)),
        priors(core::GravityPredictSeries(truth)) {}

  traffic::TrafficMatrixSeries Estimate(core::SolverKind kind,
                                        std::size_t threads = 1) const {
    core::EstimationOptions options;
    options.solver = kind;
    options.threads = threads;
    return core::EstimateSeries(routing, truth, priors, options);
  }
};

// ---- backend agreement on the tier-1 fixtures ----------------------

TEST(SolverBackendsTest, AgreeOnGeant22) {
  const Fixture fx("geant22", 4, 11);
  const auto dense = fx.Estimate(core::SolverKind::kDense);
  const auto sparse = fx.Estimate(core::SolverKind::kSparse);
  const auto cg = fx.Estimate(core::SolverKind::kCg);
  EXPECT_LT(MaxRelDiff(dense, sparse), 1e-8);
  EXPECT_LT(MaxRelDiff(dense, cg), 1e-8);
}

TEST(SolverBackendsTest, AgreeOnHierarchy50) {
  const Fixture fx("hierarchy:50", 3, 12);
  const auto dense = fx.Estimate(core::SolverKind::kDense);
  const auto sparse = fx.Estimate(core::SolverKind::kSparse);
  const auto cg = fx.Estimate(core::SolverKind::kCg);
  EXPECT_LT(MaxRelDiff(dense, sparse), 1e-8);
  EXPECT_LT(MaxRelDiff(dense, cg), 1e-8);
}

TEST(SolverBackendsTest, AutoMatchesItsResolvedBackendBitForBit) {
  // geant22 and hierarchy:50 sit below the threshold (dense),
  // hierarchy:100 above (cg); auto must be the same code path, not
  // merely close.
  const Fixture small("hierarchy:50", 2, 13);
  EXPECT_TRUE(
      BitIdentical(small.Estimate(core::SolverKind::kAuto),
                   small.Estimate(core::SolverKind::kDense)));
  const Fixture large("hierarchy:100", 2, 14);
  EXPECT_TRUE(
      BitIdentical(large.Estimate(core::SolverKind::kAuto),
                   large.Estimate(core::SolverKind::kCg)));
}

// ---- per-backend thread-count bit-identity -------------------------

TEST(SolverBackendsTest, ThreadFanoutBitIdenticalPerBackend) {
  const Fixture fx("hierarchy:50", 8, 15);
  for (const core::SolverKind kind :
       {core::SolverKind::kDense, core::SolverKind::kSparse,
        core::SolverKind::kCg}) {
    const auto t1 = fx.Estimate(kind, 1);
    const auto t8 = fx.Estimate(kind, 8);
    EXPECT_TRUE(BitIdentical(t1, t8))
        << "backend " << core::SolverKindName(kind)
        << " diverges across thread counts";
  }
}

// ---- streaming == batch under the non-dense backends ---------------

TEST(SolverBackendsTest, StreamingMatchesBatchUnderSparseAndCg) {
  const topology::Graph g = topology::MakeGeant22();
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);
  const std::size_t n = g.nodeCount();
  const auto truth = MakeTraffic(n, 12, 16);

  for (const core::SolverKind kind :
       {core::SolverKind::kSparse, core::SolverKind::kCg}) {
    stream::StreamingOptions options;
    options.threads = 4;
    options.queueCapacity = 3;
    options.window = 4;
    options.estimation.solver = kind;
    const stream::StreamingRunResult run =
        stream::EstimateSeriesStreaming(routing, truth, options);

    core::EstimationOptions batch;
    batch.solver = kind;
    const auto batchEst =
        core::EstimateSeries(routing, truth, run.priors, batch);
    EXPECT_TRUE(BitIdentical(run.estimates, batchEst))
        << "streaming != batch under "
        << core::SolverKindName(kind);
  }
}

// ---- kind resolution and parsing -----------------------------------

TEST(SolverBackendsTest, AutoResolvesByRowCount) {
  using core::ResolveSolverKind;
  using core::SolverKind;
  EXPECT_EQ(ResolveSolverKind(SolverKind::kAuto,
                              core::kAutoSolverRowThreshold - 1),
            SolverKind::kDense);
  EXPECT_EQ(ResolveSolverKind(SolverKind::kAuto,
                              core::kAutoSolverRowThreshold),
            SolverKind::kCg);
  // Concrete kinds pass through regardless of size.
  EXPECT_EQ(ResolveSolverKind(SolverKind::kSparse, 10),
            SolverKind::kSparse);
  EXPECT_EQ(ResolveSolverKind(SolverKind::kDense, 1 << 20),
            SolverKind::kDense);
}

TEST(SolverBackendsTest, SolverNameReportsResolvedBackend) {
  const topology::Graph g = topology::MakeGeant22();
  const core::AugmentedTmSystem sys(topology::BuildRoutingCsr(g),
                                    g.nodeCount(), true);
  core::EstimationOptions options;
  options.solver = core::SolverKind::kAuto;
  EXPECT_STREQ(core::TmBinSolver(sys, options).solverName(), "dense");
  options.solver = core::SolverKind::kSparse;
  EXPECT_STREQ(core::TmBinSolver(sys, options).solverName(), "sparse");
  options.solver = core::SolverKind::kCg;
  EXPECT_STREQ(core::TmBinSolver(sys, options).solverName(), "cg");
}

TEST(SolverBackendsTest, ParseSolverKindRoundTrips) {
  for (const core::SolverKind kind :
       {core::SolverKind::kAuto, core::SolverKind::kDense,
        core::SolverKind::kSparse, core::SolverKind::kCg}) {
    core::SolverKind parsed = core::SolverKind::kAuto;
    EXPECT_TRUE(
        core::ParseSolverKind(core::SolverKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  core::SolverKind parsed = core::SolverKind::kAuto;
  EXPECT_FALSE(core::ParseSolverKind("cholesky", &parsed));
  EXPECT_FALSE(core::ParseSolverKind("", &parsed));
  EXPECT_FALSE(core::ParseSolverKind("Dense", &parsed));
}

TEST(SolverBackendsTest, CgHandlesSparseSupportPriors) {
  // Priors with zero and tiny entries (overnight bins, IC priors)
  // create outlier eigenvalues the frozen preconditioner cannot see;
  // CG then spends a long plateau picking them off before its final
  // plunge.  Regression: an early stagnation guard used to abort
  // mid-plateau, leaving estimates off by O(1) instead of solver
  // tolerance.
  const Fixture fx("geant22", 4, 18);
  traffic::TrafficMatrixSeries sparsePriors = fx.priors;
  stats::Rng rng(19);
  const std::size_t n = fx.graph.nodeCount();
  for (std::size_t t = 0; t < sparsePriors.binCount(); ++t) {
    double* bin = sparsePriors.binData(t);
    for (std::size_t k = 0; k < n * n; ++k) {
      const double u = rng.uniform(0.0, 1.0);
      if (u < 0.3) {
        bin[k] = 0.0;  // structurally absent OD pair
      } else if (u < 0.5) {
        bin[k] *= 1e-5;  // tiny weight, huge spread
      }
    }
  }
  core::EstimationOptions options;
  options.solver = core::SolverKind::kDense;
  const auto dense =
      core::EstimateSeries(fx.routing, fx.truth, sparsePriors, options);
  options.solver = core::SolverKind::kCg;
  const auto cg =
      core::EstimateSeries(fx.routing, fx.truth, sparsePriors, options);
  EXPECT_LT(MaxRelDiff(dense, cg), 1e-6);
}

// ---- degenerate inputs ---------------------------------------------

TEST(SolverBackendsTest, AllZeroPriorBinIdenticalAcrossBackends) {
  // With an all-zero prior the least-squares correction vanishes and
  // every backend must produce the exact same IPF-seeded estimate.
  const topology::Graph g = topology::MakeRing(6, 2);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);
  const auto truth = MakeTraffic(6, 2, 17);
  traffic::TrafficMatrixSeries zeros(6, 2, 300.0);

  core::EstimationOptions options;
  options.solver = core::SolverKind::kDense;
  const auto dense = core::EstimateSeries(routing, truth, zeros, options);
  options.solver = core::SolverKind::kSparse;
  const auto sparse = core::EstimateSeries(routing, truth, zeros, options);
  options.solver = core::SolverKind::kCg;
  const auto cg = core::EstimateSeries(routing, truth, zeros, options);
  EXPECT_TRUE(BitIdentical(dense, sparse));
  EXPECT_TRUE(BitIdentical(dense, cg));
}

// ---- linalg building blocks against dense references ---------------

TEST(SparseNormalCholeskyTest, MatchesDenseCholeskyOnRandomSystem) {
  stats::Rng rng(3);
  const std::size_t rows = 14, cols = 40;
  // Sparse random A with a few entries per column (some zero columns).
  std::vector<linalg::Triplet> entries;
  for (std::size_t c = 0; c < cols; ++c) {
    if (c % 7 == 0) continue;
    const std::size_t k = 1 + static_cast<std::size_t>(
                                  rng.uniform(0.0, 3.0));
    for (std::size_t e = 0; e < k; ++e) {
      const std::size_t r =
          static_cast<std::size_t>(rng.uniform(0.0, double(rows) - 0.01));
      entries.push_back({r, c, rng.uniform(0.5, 2.0)});
    }
  }
  const auto a = linalg::CscMatrix::FromTriplets(rows, cols,
                                                 std::move(entries));
  std::vector<double> w(cols);
  for (double& wi : w) wi = rng.uniform(0.0, 5.0);
  w[3] = 0.0;  // skipped column

  const double relativeRidge = 1e-10;
  std::vector<double> d(rows);
  for (double& di : d) di = rng.uniform(-1.0, 1.0);

  // Dense reference: WeightedGramInto + trace ridge + Cholesky.
  std::vector<double> m(rows * rows, 0.0);
  linalg::WeightedGramInto(a, w.data(), m.data());
  double trace = 0.0;
  for (std::size_t r = 0; r < rows; ++r) trace += m[r * rows + r];
  const double ridge = std::max(trace, 1.0) * relativeRidge + 1e-30;
  for (std::size_t r = 0; r < rows; ++r) m[r * rows + r] += ridge;
  std::vector<double> zDense = d;
  linalg::CholeskySolveInPlace(m.data(), zDense.data(), rows);

  const linalg::SparseNormalAnalysis analysis(a);
  std::vector<double> scratch(
      linalg::SparseNormalSolver::RequiredScratch(analysis), 0.0);
  linalg::SparseNormalSolver solver(analysis, scratch.data());
  std::vector<double> zSparse = d;
  solver.Factor(w.data(), relativeRidge);
  solver.Solve(zSparse.data());

  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(zSparse[r], zDense[r],
                1e-9 * std::max(std::fabs(zDense[r]), 1.0));
  }

  // Refactoring with different weights against the same analysis must
  // keep working (the per-bin reuse path).
  for (double& wi : w) wi = rng.uniform(0.1, 2.0);
  linalg::WeightedGramInto(a, w.data(), m.data());
  trace = 0.0;
  for (std::size_t r = 0; r < rows; ++r) trace += m[r * rows + r];
  const double ridge2 = std::max(trace, 1.0) * relativeRidge + 1e-30;
  for (std::size_t r = 0; r < rows; ++r) m[r * rows + r] += ridge2;
  zDense = d;
  linalg::CholeskySolveInPlace(m.data(), zDense.data(), rows);
  zSparse = d;
  solver.Factor(w.data(), relativeRidge);
  solver.Solve(zSparse.data());
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(zSparse[r], zDense[r],
                1e-9 * std::max(std::fabs(zDense[r]), 1.0));
  }
}

TEST(NormalPcgTest, MatchesDenseSolveOnRoutingSystem) {
  const topology::Graph g = topology::MakeRing(8, 2);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);
  const core::AugmentedTmSystem sys(routing, 8, true);
  const linalg::CscMatrix& a = sys.matrix();

  stats::Rng rng(4);
  std::vector<double> w(a.cols());
  for (double& wi : w) wi = rng.uniform(0.5, 5.0);
  std::vector<double> d(a.rows());
  for (double& di : d) di = rng.uniform(-1.0, 1.0);
  // Keep the rhs in range(A): d = A * random — the shape every
  // estimation residual has.
  {
    linalg::Vector x(a.cols());
    for (double& xi : x) xi = rng.uniform(-1.0, 1.0);
    const linalg::Vector ax = a.Multiply(x);
    for (std::size_t r = 0; r < a.rows(); ++r) d[r] = ax[r];
  }

  const double relativeRidge = 1e-10;
  std::vector<double> m(a.rows() * a.rows(), 0.0);
  linalg::WeightedGramInto(a, w.data(), m.data());
  double trace = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) trace += m[r * a.rows() + r];
  const double ridge = std::max(trace, 1.0) * relativeRidge + 1e-30;
  for (std::size_t r = 0; r < a.rows(); ++r) m[r * a.rows() + r] += ridge;
  std::vector<double> zDense = d;
  linalg::CholeskySolveInPlace(m.data(), zDense.data(), a.rows());

  const linalg::FrozenNormalPreconditioner precond(a);
  std::vector<double> scratch(linalg::NormalPcg::RequiredScratch(a), 0.0);
  linalg::NormalPcg pcg(a, precond, scratch.data());
  std::vector<double> zCg = d;
  const linalg::PcgResult res =
      pcg.Solve(w.data(), relativeRidge, zCg.data());
  EXPECT_GT(res.iterations, 0u);

  // Compare through the operator image (the null-space component of z
  // is irrelevant to the estimate, which only consumes Aᵀ z).
  const std::size_t n2 = a.cols();
  linalg::Vector atDense(n2, 0.0), atCg(n2, 0.0);
  for (std::size_t c = 0; c < n2; ++c) {
    double accD = 0.0, accC = 0.0;
    for (std::size_t k = a.colPtr()[c]; k < a.colPtr()[c + 1]; ++k) {
      accD += a.values()[k] * zDense[a.rowIdx()[k]];
      accC += a.values()[k] * zCg[a.rowIdx()[k]];
    }
    atDense[c] = accD;
    atCg[c] = accC;
  }
  for (std::size_t c = 0; c < n2; ++c) {
    EXPECT_NEAR(atCg[c], atDense[c],
                1e-7 * std::max(std::fabs(atDense[c]), 1.0));
  }
}

TEST(NormalPcgTest, ZeroRhsReturnsZero) {
  const topology::Graph g = topology::MakeRing(5, 2);
  const core::AugmentedTmSystem sys(topology::BuildRoutingCsr(g), 5, true);
  const linalg::CscMatrix& a = sys.matrix();
  std::vector<double> w(a.cols(), 1.0);
  std::vector<double> d(a.rows(), 0.0);
  const linalg::FrozenNormalPreconditioner precond(a);
  std::vector<double> scratch(linalg::NormalPcg::RequiredScratch(a), 0.0);
  linalg::NormalPcg pcg(a, precond, scratch.data());
  const linalg::PcgResult res = pcg.Solve(w.data(), 1e-10, d.data());
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  for (const double di : d) EXPECT_EQ(di, 0.0);
}

}  // namespace
}  // namespace ictm
