// Tests for the gravity baseline and the RelL2 error metrics (Eq. 6).
#include <gtest/gtest.h>

#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "test_util.hpp"

namespace ictm::core {
namespace {

TEST(Gravity, PreservesMarginals) {
  const linalg::Vector in{10, 20, 30};
  const linalg::Vector out{30, 20, 10};
  const linalg::Matrix tm = GravityPredict(in, out);
  for (std::size_t i = 0; i < 3; ++i) {
    double rowSum = 0.0, colSum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      rowSum += tm(i, j);
      colSum += tm(j, i);
    }
    EXPECT_NEAR(rowSum, in[i], 1e-9);
    EXPECT_NEAR(colSum, out[i], 1e-9);
  }
}

TEST(Gravity, ExactOnProductFormTraffic) {
  // Gravity is exact when the TM is rank-1 (X_ij = u_i v_j).
  const linalg::Vector u{1, 2, 3};
  const linalg::Vector v{4, 5, 6};
  linalg::Matrix tm(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) tm(i, j) = u[i] * v[j];
  linalg::Vector in(3, 0.0), out(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      in[i] += tm(i, j);
      out[j] += tm(i, j);
    }
  test::ExpectMatrixNear(GravityPredict(in, out), tm, 1e-9);
}

TEST(Gravity, ConditionalEgressIndependentOfIngress) {
  // The defining property the paper attacks: under gravity,
  // P[E=j | I=i] is the same for every i.
  const linalg::Matrix tm =
      GravityPredict({5, 10, 15}, {12, 9, 9});
  for (std::size_t j = 0; j < 3; ++j) {
    double p0 = tm(0, j) / 5.0;
    double p1 = tm(1, j) / 10.0;
    double p2 = tm(2, j) / 15.0;
    EXPECT_NEAR(p0, p1, 1e-12);
    EXPECT_NEAR(p1, p2, 1e-12);
  }
}

TEST(Gravity, InvalidInputsThrow) {
  EXPECT_THROW(GravityPredict({}, {}), ictm::Error);
  EXPECT_THROW(GravityPredict({1.0}, {1.0, 2.0}), ictm::Error);
  EXPECT_THROW(GravityPredict({-1.0, 1.0}, {0.5, 0.5}), ictm::Error);
  EXPECT_THROW(GravityPredict({0.0, 0.0}, {0.0, 0.0}), ictm::Error);
}

TEST(Gravity, SeriesUsesPerBinMarginals) {
  traffic::TrafficMatrixSeries s(2, 2, 300.0);
  s(0, 0, 1) = 10.0;
  s(1, 1, 0) = 4.0;
  const auto grav = GravityPredictSeries(s);
  EXPECT_EQ(grav.binCount(), 2u);
  // Bin 0: all ingress at 0, all egress at 1 -> X_01 = 10.
  EXPECT_NEAR(grav(0, 0, 1), 10.0, 1e-9);
  EXPECT_NEAR(grav(1, 1, 0), 4.0, 1e-9);
}

TEST(RelL2, ZeroForPerfectEstimate) {
  stats::Rng rng(1);
  const linalg::Matrix m = test::RandomMatrix(4, 4, rng, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(RelL2Temporal(m, m), 0.0);
}

TEST(RelL2, OneForZeroEstimate) {
  stats::Rng rng(2);
  const linalg::Matrix m = test::RandomMatrix(4, 4, rng, 1.0, 5.0);
  EXPECT_NEAR(RelL2Temporal(m, linalg::Matrix(4, 4, 0.0)), 1.0, 1e-12);
}

TEST(RelL2, ScaleInvariant) {
  stats::Rng rng(3);
  const linalg::Matrix a = test::RandomMatrix(4, 4, rng, 1.0, 5.0);
  const linalg::Matrix b = test::RandomMatrix(4, 4, rng, 1.0, 5.0);
  EXPECT_NEAR(RelL2Temporal(a, b), RelL2Temporal(a * 7.0, b * 7.0), 1e-12);
}

TEST(RelL2, KnownHandComputedValue) {
  const linalg::Matrix actual{{3, 0}, {0, 4}};
  const linalg::Matrix est{{3, 0}, {0, 1}};  // error norm 3, actual norm 5
  EXPECT_NEAR(RelL2Temporal(actual, est), 0.6, 1e-12);
  EXPECT_THROW(RelL2Temporal(linalg::Matrix(2, 2, 0.0), est), ictm::Error);
}

TEST(RelL2, SeriesAndObjective) {
  traffic::TrafficMatrixSeries a(2, 2, 300.0), b(2, 2, 300.0);
  a(0, 0, 1) = 3.0;
  b(0, 0, 1) = 3.0;  // exact in bin 0
  a(1, 0, 1) = 4.0;
  b(1, 0, 1) = 2.0;  // 50% off in bin 1
  const auto errs = RelL2TemporalSeries(a, b);
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_DOUBLE_EQ(errs[0], 0.0);
  EXPECT_DOUBLE_EQ(errs[1], 0.5);
  EXPECT_DOUBLE_EQ(RelL2Objective(a, b), 0.5);
}

TEST(RelL2, SpatialErrorPerOdPair) {
  traffic::TrafficMatrixSeries a(2, 3, 300.0), b(2, 3, 300.0);
  for (std::size_t t = 0; t < 3; ++t) {
    a(t, 0, 1) = 4.0;
    b(t, 0, 1) = 2.0;
  }
  EXPECT_NEAR(RelL2Spatial(a, b, 0, 1), 0.5, 1e-12);
  EXPECT_THROW(RelL2Spatial(a, b, 1, 0), ictm::Error);  // all-zero series
}

TEST(Improvement, PositiveWhenCandidateBetter) {
  const auto imp = PercentImprovementSeries({0.4, 0.5}, {0.3, 0.25});
  EXPECT_NEAR(imp[0], 25.0, 1e-9);
  EXPECT_NEAR(imp[1], 50.0, 1e-9);
}

TEST(Improvement, NegativeWhenCandidateWorse) {
  const auto imp = PercentImprovementSeries({0.4}, {0.5});
  EXPECT_NEAR(imp[0], -25.0, 1e-9);
  EXPECT_THROW(PercentImprovementSeries({0.0}, {0.1}), ictm::Error);
  EXPECT_THROW(PercentImprovementSeries({0.1, 0.2}, {0.1}), ictm::Error);
}

TEST(MeanFn, SimpleAverageAndErrors) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(Mean({}), ictm::Error);
}

}  // namespace
}  // namespace ictm::core
