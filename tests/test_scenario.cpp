// Scenario registry, runner and JSON determinism tests, plus the
// synthesis threads=N ≡ threads=1 regression.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "core/synthesis.hpp"
#include "scenario/common.hpp"
#include "scenario/json.hpp"
#include "scenario/scenario.hpp"
#include "stats/rng.hpp"
#include "test_util.hpp"

namespace ictm {
namespace {

using scenario::json::Parse;
using scenario::json::Value;

// ---- JSON document model ---------------------------------------------------

TEST(Json, SerializesDeterministically) {
  scenario::json::Object o;
  o.set("b_first", 1);
  o.set("a_second", 0.5);
  o.set("nested", Value(scenario::json::Array{Value(true), Value()}));
  const Value v{std::move(o)};
  // Insertion order is preserved; equal documents dump identically.
  EXPECT_EQ(v.dump(),
            "{\"b_first\":1,\"a_second\":0.5,\"nested\":[true,null]}");
  EXPECT_EQ(v.dump(2), v.dump(2));
}

TEST(Json, NumbersRoundTripShortest) {
  EXPECT_EQ(Value(0.1).dump(), "0.1");
  EXPECT_EQ(Value(1.0 / 3.0).dump(), "0.3333333333333333");
  EXPECT_EQ(Value(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Value(-1.5e-300).dump(), "-1.5e-300");
  // Non-finite doubles serialise as null.
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(Value("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,\"x\",true,false,null],\"b\":{\"c\":-3}}";
  const Value v = Parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(v.asObject().find("b")->asObject().find("c")->asInt(), -3);
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_THROW(Parse("{"), Error);
  EXPECT_THROW(Parse("[1,]2"), Error);
  EXPECT_THROW(Parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Parse("nulL"), Error);
}

TEST(Json, PrettyPrintParses) {
  scenario::json::Object o;
  o.set("xs", Value(scenario::json::Array{Value(1), Value(2)}));
  o.set("s", "hi");
  const Value v{std::move(o)};
  const Value reparsed = Parse(v.dump(2));
  EXPECT_EQ(reparsed.dump(), v.dump());
}

// ---- registry --------------------------------------------------------------

TEST(ScenarioRegistry, ListsAtLeastSeventeenUniqueScenarios) {
  const auto& all = scenario::ListScenarios();
  EXPECT_GE(all.size(), 17u);
  std::set<std::string> names;
  for (const auto& info : all) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.title.empty());
    EXPECT_FALSE(info.expectation.empty());
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate scenario name: " << info.name;
    EXPECT_TRUE(scenario::HasScenario(info.name));
  }
}

TEST(ScenarioRegistry, CoversEveryPaperFigure) {
  for (const char* name :
       {"fig2_example", "fig3_model_fit", "fig4_f_traces",
        "fig5_f_stability", "fig6_p_stability", "fig7_p_ccdf",
        "fig8_p_vs_egress", "fig9_activity_series",
        "fig10_activity_estimates", "fig11_est_measured",
        "fig12_est_stable_fp", "fig13_est_stable_f", "dof_table",
        "asymmetry_ablation", "synthesis_ablation", "estimation_scale",
        "synthesis_scale", "topo_scale", "stream_equivalence",
        "stream_scale", "whatif_hotspot"}) {
    EXPECT_TRUE(scenario::HasScenario(name)) << name;
  }
}

TEST(ScenarioRegistry, RejectsUnknownNames) {
  scenario::ScenarioContext ctx;
  EXPECT_FALSE(scenario::HasScenario("no_such_scenario"));
  EXPECT_THROW(scenario::RunScenario("no_such_scenario", ctx), Error);
}

// ---- running every scenario on the tiny configuration ----------------------

scenario::ScenarioContext TinyContext(std::size_t threads = 2) {
  scenario::ScenarioContext ctx;
  ctx.tiny = true;
  ctx.threads = threads;
  return ctx;
}

void ExpectSchemaValid(const scenario::ScenarioResult& r) {
  ASSERT_TRUE(r.error.empty()) << r.info.name << ": " << r.error;
  // The document must survive a serialise/parse round trip …
  const std::string text = r.doc.dump(2);
  const Value reparsed = Parse(text);
  EXPECT_EQ(reparsed.dump(2), text) << r.info.name;
  // … and carry the envelope schema.
  const auto& obj = reparsed.asObject();
  ASSERT_NE(obj.find("schema"), nullptr) << r.info.name;
  EXPECT_EQ(obj.find("schema")->asString(), "ictm-scenario-result-v1");
  ASSERT_NE(obj.find("scenario"), nullptr);
  EXPECT_EQ(obj.find("scenario")->asString(), r.info.name);
  for (const char* key :
       {"artifact", "title", "expectation", "scale"}) {
    ASSERT_NE(obj.find(key), nullptr) << r.info.name << " lacks " << key;
    EXPECT_TRUE(obj.find(key)->isString());
  }
  ASSERT_NE(obj.find("seed_offset"), nullptr);
  EXPECT_TRUE(obj.find("seed_offset")->isInteger());
  ASSERT_NE(obj.find("pass"), nullptr);
  EXPECT_TRUE(obj.find("pass")->isBool());
  ASSERT_NE(obj.find("results"), nullptr);
  EXPECT_TRUE(obj.find("results")->isObject());
}

TEST(ScenarioRun, EveryScenarioPassesOnTinyConfigWithValidJson) {
  for (const auto& info : scenario::ListScenarios()) {
    SCOPED_TRACE(info.name);
    const auto r = scenario::RunScenario(info.name, TinyContext());
    ExpectSchemaValid(r);
    EXPECT_TRUE(r.pass) << info.name << " failed: " << r.doc.dump(2);
  }
}

TEST(ScenarioRun, DeterministicForFixedSeedAndAcrossThreadCounts) {
  for (const auto& info : scenario::ListScenarios()) {
    SCOPED_TRACE(info.name);
    const auto a = scenario::RunScenario(info.name, TinyContext(1));
    const auto b = scenario::RunScenario(info.name, TinyContext(1));
    const auto c = scenario::RunScenario(info.name, TinyContext(4));
    ASSERT_TRUE(a.error.empty()) << a.error;
    // Same seed, same scale → byte-identical documents, regardless of
    // the thread count (the runner's determinism contract).
    EXPECT_EQ(a.doc.dump(2), b.doc.dump(2));
    EXPECT_EQ(a.doc.dump(2), c.doc.dump(2));
  }
}

TEST(ScenarioRun, SeedOffsetChangesDataNotSchema) {
  scenario::ScenarioContext shifted = TinyContext();
  shifted.seedOffset = 1;
  const auto base =
      scenario::RunScenario("fig3_model_fit", TinyContext());
  const auto moved = scenario::RunScenario("fig3_model_fit", shifted);
  ExpectSchemaValid(moved);
  EXPECT_NE(base.doc.dump(2), moved.doc.dump(2));
}

TEST(ScenarioRun, TopologyOverrideEntersDocumentDeterministically) {
  // --topology is configuration: it changes the result document (like
  // --seed), while thread counts still never do.
  scenario::ScenarioContext ctx = TinyContext(1);
  ctx.topology = "ring:6:2";
  const auto a = scenario::RunScenario("topo_scale", ctx);
  ExpectSchemaValid(a);
  EXPECT_TRUE(a.pass) << a.doc.dump(2);
  const auto& results = a.doc.asObject().find("results")->asObject();
  EXPECT_EQ(results.find("topology_override")->asString(), "ring:6:2");
  const auto& rows = results.find("topologies")->asArray();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].asObject().find("topology")->asString(), "ring:6:2");

  ctx.threads = 4;
  const auto b = scenario::RunScenario("topo_scale", ctx);
  EXPECT_EQ(a.doc.dump(2), b.doc.dump(2));

  // The default tiny sweep differs from the override run.
  const auto base = scenario::RunScenario("topo_scale", TinyContext(1));
  EXPECT_NE(base.doc.dump(2), a.doc.dump(2));
}

TEST(ScenarioRun, ParallelRunnerMatchesSerialRuns) {
  const std::vector<std::string> names{"fig2_example", "dof_table",
                                      "whatif_hotspot"};
  const auto ctx = TinyContext();
  const auto fanned = scenario::RunScenarios(names, ctx, 3);
  ASSERT_EQ(fanned.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(fanned[i].info.name, names[i]);
    const auto solo = scenario::RunScenario(names[i], ctx);
    EXPECT_EQ(fanned[i].doc.dump(2), solo.doc.dump(2));
  }
}

TEST(ScenarioRun, WriteResultFilesEmitsParsableFilesAndManifest) {
  const auto ctx = TinyContext();
  const auto results =
      scenario::RunScenarios({"fig2_example", "dof_table"}, ctx, 2);
  const std::string dir = test::TempPath("ictm_scenario_results");
  scenario::WriteResultFiles(results, ctx, dir);

  for (const char* name : {"fig2_example", "dof_table"}) {
    std::ifstream is(dir + "/" + name + ".json");
    ASSERT_TRUE(is.good()) << name;
    std::stringstream ss;
    ss << is.rdbuf();
    const Value v = Parse(ss.str());
    EXPECT_EQ(v.asObject().find("scenario")->asString(), name);
  }
  std::ifstream is(dir + "/manifest.json");
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const Value manifest = Parse(ss.str());
  EXPECT_EQ(manifest.asObject().find("schema")->asString(),
            "ictm-scenario-manifest-v1");
  EXPECT_EQ(manifest.asObject().find("scenarios")->asArray().size(), 2u);
}

// ---- synthesis threads=N ≡ threads=1 regression ----------------------------

TEST(SynthesisParallel, ThreadedGenerationIsBitIdentical) {
  core::SynthesisConfig cfg;
  cfg.nodes = 9;
  cfg.bins = 140;
  cfg.activityModel.profile.binsPerDay = 20;

  cfg.threads = 1;
  stats::Rng rng1(2024);
  const core::SyntheticTm serial = core::GenerateSyntheticTm(cfg, rng1);

  for (std::size_t threads : {2u, 4u, 9u, 0u}) {
    cfg.threads = threads;
    stats::Rng rngN(2024);
    const core::SyntheticTm fanned = core::GenerateSyntheticTm(cfg, rngN);
    SCOPED_TRACE(threads);
    for (std::size_t i = 0; i < cfg.nodes; ++i) {
      ASSERT_EQ(serial.preference[i], fanned.preference[i]);
      for (std::size_t t = 0; t < cfg.bins; ++t) {
        ASSERT_EQ(serial.activitySeries(i, t),
                  fanned.activitySeries(i, t));
      }
    }
    for (std::size_t t = 0; t < cfg.bins; ++t) {
      const double* a = serial.series.binData(t);
      const double* b = fanned.series.binData(t);
      for (std::size_t k = 0; k < cfg.nodes * cfg.nodes; ++k) {
        ASSERT_EQ(a[k], b[k]) << "bin " << t << " element " << k;
      }
    }
  }
}

}  // namespace
}  // namespace ictm
