// Tests for diurnal profiles and the cyclo-stationary activity model.
#include <gtest/gtest.h>

#include <cmath>

#include "timeseries/cyclostationary.hpp"
#include "timeseries/diurnal.hpp"
#include "test_util.hpp"

namespace ictm::timeseries {
namespace {

TEST(Diurnal, ValuesPositiveAndBounded) {
  const DiurnalProfile p;
  for (std::size_t t = 0; t < p.binsPerDay * 7; ++t) {
    const double v = ProfileValue(p, t);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(Diurnal, PeaksNearConfiguredHour) {
  DiurnalProfile p;
  p.peakHour = 15.0;
  p.secondHarmonic = 0.0;
  // Scan Monday; the max must fall within an hour of 15:00.
  double best = -1.0;
  std::size_t bestT = 0;
  for (std::size_t t = 0; t < p.binsPerDay; ++t) {
    const double v = ProfileValue(p, t);
    if (v > best) {
      best = v;
      bestT = t;
    }
  }
  const double peakHourSeen =
      24.0 * double(bestT) / double(p.binsPerDay);
  EXPECT_NEAR(peakHourSeen, 15.0, 1.0);
}

TEST(Diurnal, WeekendAttenuated) {
  DiurnalProfile p;
  p.weekendFactor = 0.5;
  const auto xs = GenerateProfile(p, p.binsPerDay * 7);
  const double ratio = WeekendWeekdayRatio(xs, p.binsPerDay);
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(Diurnal, DailyPeriodicityExact) {
  const DiurnalProfile p;
  // Within the same week-part, the profile repeats every day.
  for (std::size_t t = 0; t < p.binsPerDay; ++t) {
    EXPECT_DOUBLE_EQ(ProfileValue(p, t),
                     ProfileValue(p, t + p.binsPerDay));
  }
}

TEST(Diurnal, InvalidParametersThrow) {
  DiurnalProfile p;
  p.nightFloor = 0.0;
  EXPECT_THROW(ProfileValue(p, 0), ictm::Error);
  p = DiurnalProfile{};
  p.binsPerDay = 0;
  EXPECT_THROW(ProfileValue(p, 0), ictm::Error);
  p = DiurnalProfile{};
  p.weekendFactor = 1.5;
  EXPECT_THROW(ProfileValue(p, 0), ictm::Error);
}

TEST(Autocorr, LagZeroIsOne) {
  const std::vector<double> xs{1, 3, 2, 5, 4};
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, 0), 1.0);
}

TEST(Autocorr, DetectsSinePeriod) {
  std::vector<double> xs(400);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    xs[t] = std::sin(2.0 * M_PI * double(t) / 40.0);
  }
  EXPECT_EQ(DominantPeriod(xs, 20, 60), 40u);
  EXPECT_THROW(DominantPeriod(xs, 0, 10), ictm::Error);
}

TEST(Autocorr, ConstantSeriesZeroAtPositiveLag) {
  const std::vector<double> xs(50, 3.0);
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, 5), 0.0);
}

TEST(Activity, SeriesNonNegativeAndReproducible) {
  ActivityModel m;
  m.profile.binsPerDay = 48;
  stats::Rng rng1(11), rng2(11);
  const auto a = GenerateActivitySeries(m, 48 * 7, rng1);
  const auto b = GenerateActivitySeries(m, 48 * 7, rng2);
  EXPECT_EQ(a, b);
  for (double v : a) EXPECT_GE(v, 0.0);
}

TEST(Activity, DailyPeriodDetected) {
  ActivityModel m;
  m.profile.binsPerDay = 96;
  m.noiseSigma = 0.05;
  m.phaseJitterHours = 0.0;
  stats::Rng rng(12);
  const auto a = GenerateActivitySeries(m, 96 * 7, rng);
  const std::size_t period = DominantPeriod(a, 48, 160);
  EXPECT_NEAR(double(period), 96.0, 4.0);
}

TEST(Activity, WeekendDipPresent) {
  ActivityModel m;
  m.profile.binsPerDay = 48;
  m.profile.weekendFactor = 0.5;
  m.noiseSigma = 0.02;
  stats::Rng rng(13);
  const auto a = GenerateActivitySeries(m, 48 * 7, rng);
  EXPECT_LT(WeekendWeekdayRatio(a, 48), 0.75);
}

TEST(Activity, NoiseSigmaZeroIsDeterministicProfile) {
  ActivityModel m;
  m.profile.binsPerDay = 24;
  m.noiseSigma = 0.0;
  m.weeklyDriftSigma = 0.0;
  m.phaseJitterHours = 0.0;
  stats::Rng rng(14);
  const auto a = GenerateActivitySeries(m, 24, rng);
  for (std::size_t t = 0; t < 24; ++t) {
    EXPECT_NEAR(a[t], ProfileValue(m.profile, t) * m.peakLevel, 1e-9);
  }
}

TEST(Activity, InvalidConfigThrows) {
  ActivityModel m;
  m.peakLevel = 0.0;
  stats::Rng rng(15);
  EXPECT_THROW(GenerateActivitySeries(m, 10, rng), ictm::Error);
  m = ActivityModel{};
  m.noisePhi = 1.0;
  EXPECT_THROW(GenerateActivitySeries(m, 10, rng), ictm::Error);
}

TEST(Ensemble, ShapesAndHeterogeneity) {
  ActivityModel m;
  m.profile.binsPerDay = 24;
  stats::Rng rng(16);
  const auto ens = GenerateActivityEnsemble(12, 24 * 7, m, 1.0, rng);
  ASSERT_EQ(ens.size(), 12u);
  for (const auto& s : ens) EXPECT_EQ(s.size(), std::size_t(24 * 7));
  // Peak spread: with sigma 1.0 the largest mean should clearly exceed
  // the smallest.
  double lo = 1e300, hi = 0.0;
  for (const auto& s : ens) {
    double mean = 0.0;
    for (double v : s) mean += v;
    mean /= double(s.size());
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
  }
  EXPECT_GT(hi / lo, 2.0);
  EXPECT_THROW(GenerateActivityEnsemble(0, 10, m, 1.0, rng), ictm::Error);
}

}  // namespace
}  // namespace ictm::timeseries
