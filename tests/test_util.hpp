// Shared helpers for the ictm test suite.
#pragma once

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::test {

/// Random matrix with entries uniform in [lo, hi).
inline linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                                   stats::Rng& rng, double lo = -1.0,
                                   double hi = 1.0) {
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(lo, hi);
  return m;
}

/// Random vector with entries uniform in [lo, hi).
inline linalg::Vector RandomVector(std::size_t n, stats::Rng& rng,
                                   double lo = -1.0, double hi = 1.0) {
  linalg::Vector v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Random strictly-positive vector.
inline linalg::Vector RandomPositiveVector(std::size_t n, stats::Rng& rng,
                                           double lo = 0.1,
                                           double hi = 2.0) {
  return RandomVector(n, rng, lo, hi);
}

/// Asserts two matrices agree elementwise within tol, with a readable
/// failure message.
inline void ExpectMatrixNear(const linalg::Matrix& a,
                             const linalg::Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), tol)
          << "mismatch at (" << r << ", " << c << ")";
    }
  }
}

inline void ExpectVectorNear(const linalg::Vector& a,
                             const linalg::Vector& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "mismatch at index " << i;
  }
}

}  // namespace ictm::test
