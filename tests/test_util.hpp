// Shared helpers for the ictm test suite.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::test {

/// Path of a scratch file under gtest's temp directory.  The name is
/// prefixed with the pid: parallel ctest runs each test case as its
/// own process from the same binary, so a bare name would make
/// concurrent cases collide on sockets and checkpoint directories.
inline std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/ictm-" + std::to_string(::getpid()) + "-" +
         name;
}

/// Deterministic random TM series (entries uniform in [0, 1e9),
/// binSeconds 300) — the standard trace fixture of the stream and
/// server suites.
inline traffic::TrafficMatrixSeries RandomSeries(std::size_t nodes,
                                                 std::size_t bins,
                                                 std::uint64_t seed) {
  stats::Rng rng(seed);
  traffic::TrafficMatrixSeries s(nodes, bins, 300.0);
  for (std::size_t t = 0; t < bins; ++t) {
    double* bin = s.binData(t);
    for (std::size_t k = 0; k < nodes * nodes; ++k) {
      bin[k] = rng.uniform(0.0, 1e9);
    }
  }
  return s;
}

/// Asserts two TM series are equal to the last bit — the determinism
/// contract every streaming/server surface is held to.
inline void ExpectBitIdentical(const traffic::TrafficMatrixSeries& a,
                               const traffic::TrafficMatrixSeries& b) {
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  ASSERT_EQ(a.binCount(), b.binCount());
  const std::size_t n2 = a.nodeCount() * a.nodeCount();
  for (std::size_t t = 0; t < a.binCount(); ++t) {
    const double* pa = a.binData(t);
    const double* pb = b.binData(t);
    for (std::size_t k = 0; k < n2; ++k) {
      ASSERT_EQ(pa[k], pb[k]) << "bin " << t << " element " << k;
    }
  }
}

/// Random matrix with entries uniform in [lo, hi).
inline linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                                   stats::Rng& rng, double lo = -1.0,
                                   double hi = 1.0) {
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(lo, hi);
  return m;
}

/// Random vector with entries uniform in [lo, hi).
inline linalg::Vector RandomVector(std::size_t n, stats::Rng& rng,
                                   double lo = -1.0, double hi = 1.0) {
  linalg::Vector v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Random strictly-positive vector.
inline linalg::Vector RandomPositiveVector(std::size_t n, stats::Rng& rng,
                                           double lo = 0.1,
                                           double hi = 2.0) {
  return RandomVector(n, rng, lo, hi);
}

/// Asserts two matrices agree elementwise within tol, with a readable
/// failure message.
inline void ExpectMatrixNear(const linalg::Matrix& a,
                             const linalg::Matrix& b, double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), tol)
          << "mismatch at (" << r << ", " << c << ")";
    }
  }
}

inline void ExpectVectorNear(const linalg::Vector& a,
                             const linalg::Vector& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "mismatch at index " << i;
  }
}

}  // namespace ictm::test
