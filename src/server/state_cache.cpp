#include "server/state_cache.hpp"

#include <algorithm>

#include "topology/registry.hpp"
#include "topology/routing.hpp"

namespace ictm::server {

TopologyStateCache::TopologyStateCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const TopologyState> TopologyStateCache::acquire(
    const std::string& spec, std::uint64_t seed) {
  const auto key = std::make_pair(spec, seed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.lastUse = ++clock_;
      ++stats_.hits;
      return it->second.state;
    }
  }

  // Build outside the lock: topology materialisation and operator
  // compression can take a while, and sibling sessions on *other*
  // topologies must not stall behind it.  Two racing builders of the
  // same key both succeed; the second insert loses and adopts the
  // first one's state, so callers still share.
  const topology::Graph g = topology::MakeTopology(spec, seed);
  auto state = std::make_shared<TopologyState>();
  state->spec = spec;
  state->seed = seed;
  state->nodes = g.nodeCount();
  state->routing = topology::BuildRoutingCsr(g);
  state->system = std::make_shared<core::AugmentedTmSystem>(
      state->routing, state->nodes, /*marginalConstraints=*/true);

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    it->second.state = std::move(state);
    ++stats_.misses;
    evictIdleLocked();
  } else {
    ++stats_.hits;
  }
  it->second.lastUse = ++clock_;
  return it->second.state;
}

TopologyStateCache::Stats TopologyStateCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

void TopologyStateCache::evictIdleLocked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.state.use_count() > 1) continue;  // pinned by a session
      if (victim == entries_.end() ||
          it->second.lastUse < victim->second.lastUse) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned; over-stay
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace ictm::server
