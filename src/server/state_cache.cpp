#include "server/state_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"

namespace ictm::server {

namespace {

// Registry mirrors of Stats (ISSUE 8 satellite): hit/miss/eviction
// counts are functions of the session workload (deterministic class);
// the resident-entry level is a gauge.
obs::Counter& CacheHits() {
  static obs::Counter& c = obs::GetCounter(
      "server.topo_cache.hits", obs::MetricClass::kDeterministic);
  return c;
}

obs::Counter& CacheMisses() {
  static obs::Counter& c = obs::GetCounter(
      "server.topo_cache.misses", obs::MetricClass::kDeterministic);
  return c;
}

obs::Counter& CacheEvictions() {
  static obs::Counter& c = obs::GetCounter(
      "server.topo_cache.evictions", obs::MetricClass::kDeterministic);
  return c;
}

obs::Gauge& CacheEntries() {
  static obs::Gauge& g = obs::GetGauge("server.topo_cache.entries",
                                       obs::MetricClass::kDeterministic);
  return g;
}

}  // namespace

TopologyStateCache::TopologyStateCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const TopologyState> TopologyStateCache::acquire(
    const std::string& spec, std::uint64_t seed) {
  const auto key = std::make_pair(spec, seed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.lastUse = ++clock_;
      ++stats_.hits;
      CacheHits().add();
      return it->second.state;
    }
  }

  // Build outside the lock: topology materialisation and operator
  // compression can take a while, and sibling sessions on *other*
  // topologies must not stall behind it.  Two racing builders of the
  // same key both succeed; the second insert loses and adopts the
  // first one's state, so callers still share.
  const topology::Graph g = topology::MakeTopology(spec, seed);
  auto state = std::make_shared<TopologyState>();
  state->spec = spec;
  state->seed = seed;
  state->nodes = g.nodeCount();
  state->routing = topology::BuildRoutingCsr(g);
  state->system = std::make_shared<core::AugmentedTmSystem>(
      state->routing, state->nodes, /*marginalConstraints=*/true);

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    it->second.state = std::move(state);
    ++stats_.misses;
    CacheMisses().add();
    evictIdleLocked();
  } else {
    ++stats_.hits;
    CacheHits().add();
  }
  it->second.lastUse = ++clock_;
  CacheEntries().set(static_cast<std::int64_t>(entries_.size()));
  return it->second.state;
}

TopologyStateCache::Stats TopologyStateCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

void TopologyStateCache::evictIdleLocked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.state.use_count() > 1) continue;  // pinned by a session
      if (victim == entries_.end() ||
          it->second.lastUse < victim->second.lastUse) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned; over-stay
    entries_.erase(victim);
    ++stats_.evictions;
    CacheEvictions().add();
  }
}

}  // namespace ictm::server
