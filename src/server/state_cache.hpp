// Shared per-topology state for the estimation server.
//
// Opening a session costs far more than serving one bin: the topology
// must be materialised, routing computed, the augmented [R; Q]
// operator compressed, and — lazily, on first solve — the sparse
// symbolic factorisation or frozen PCG preconditioner built.  All of
// that is a pure function of (topology spec, generator seed), so N
// concurrent sessions on the same topology should pay it once.
//
// TopologyStateCache interns exactly that: acquire() returns a
// shared_ptr<const TopologyState> holding the routing matrix and the
// shared core::AugmentedTmSystem (whose lazy sparseAnalysis() /
// cgPreconditioner() are themselves built once and shared read-only
// across every bin solver).  The shared_ptr is the refcount; the
// cache keeps entries past their last user up to `capacity`, evicting
// the least-recently-acquired idle entry first.  Entries still
// referenced by a live session are never evicted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/estimation.hpp"
#include "linalg/sparse.hpp"

namespace ictm::server {

/// Everything expensive a session needs that depends only on the
/// topology: the routing operator and the compressed augmented
/// system.  Immutable after construction; shared read-only.
struct TopologyState {
  std::string spec;          ///< the resolved topology spec
  std::uint64_t seed = 0;    ///< generator seed the spec was built with
  std::size_t nodes = 0;     ///< node count n
  linalg::CsrMatrix routing;  ///< shortest-path routing, links x n²
  std::shared_ptr<const core::AugmentedTmSystem> system;  ///< [R; Q]
};

/// Interning cache of TopologyState keyed by (spec, seed), with LRU
/// eviction of idle entries.  Thread-safe.
class TopologyStateCache {
 public:
  /// Counters for observability and tests.
  struct Stats {
    std::size_t entries = 0;    ///< entries currently resident
    std::size_t hits = 0;       ///< acquire() calls served from cache
    std::size_t misses = 0;     ///< acquire() calls that built state
    std::size_t evictions = 0;  ///< idle entries dropped by LRU
  };

  /// `capacity` bounds resident entries; at least 1.
  explicit TopologyStateCache(std::size_t capacity = 4);

  /// Returns the shared state for (spec, seed), building it on first
  /// use.  Throws ictm::Error when the spec cannot be resolved.  The
  /// returned pointer keeps the entry pinned (never evicted while any
  /// caller holds it).
  std::shared_ptr<const TopologyState> acquire(const std::string& spec,
                                               std::uint64_t seed);

  /// Snapshot of the counters.
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const TopologyState> state;
    std::uint64_t lastUse = 0;  ///< logical clock, not wall time
  };

  void evictIdleLocked();

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::uint64_t>, Entry> entries_;
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  Stats stats_;
};

}  // namespace ictm::server
