#include "server/server.hpp"

#include <utility>

namespace ictm::server {

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cacheCapacity) {
  if (!options_.checkpointDir.empty()) {
    store_ = std::make_unique<CheckpointStore>(options_.checkpointDir,
                                               options_.checkpointKeep);
  }
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (!listener_.bind(options_.listen, error)) return false;
  started_ = true;
  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

const Endpoint& Server::endpoint() const noexcept {
  return listener_.boundEndpoint();
}

void Server::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_.interrupt();
  {
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (SessionSlot& slot : sessions_) slot.session->abort();
  }
  if (acceptThread_.joinable()) acceptThread_.join();
  std::vector<SessionSlot> slots;
  {
    // Second abort pass: the accept loop may have registered one last
    // session between the first pass and the stopping_ check it does
    // after accept() returns.
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    for (SessionSlot& slot : sessions_) slot.session->abort();
    slots.swap(sessions_);
  }
  for (SessionSlot& slot : slots) {
    if (slot.thread.joinable()) slot.thread.join();
  }
  listener_.close();
  started_ = false;
}

TopologyStateCache::Stats Server::cacheStats() const { return cache_.stats(); }

std::size_t Server::sessionsAccepted() const noexcept {
  return accepted_.load(std::memory_order_relaxed);
}

void Server::acceptLoop() {
  for (;;) {
    Socket client = listener_.accept();
    if (!client.valid()) return;  // interrupted or listener failed
    if (stopping_.load(std::memory_order_acquire)) return;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto session = std::make_unique<Session>(std::move(client), &cache_,
                                             store_.get(), options_.limits,
                                             &stopping_);
    Session* raw = session.get();
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    reapFinishedLocked();
    SessionSlot slot;
    slot.session = std::move(session);
    slot.thread = std::thread([raw] { raw->run(); });
    sessions_.push_back(std::move(slot));
  }
}

void Server::reapFinishedLocked() {
  for (std::size_t i = 0; i < sessions_.size();) {
    if (sessions_[i].session->done()) {
      if (sessions_[i].thread.joinable()) sessions_[i].thread.join();
      sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

}  // namespace ictm::server
