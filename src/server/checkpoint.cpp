#include "server/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/error.hpp"
#include "stream/format.hpp"

namespace ictm::server {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'I', 'C', 'K', 'S', '1', '\r', '\n', '\0'};
constexpr char kSuffix[] = ".icks";

std::string HexEncode(const std::string& raw) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(raw.size() * 2);
  for (unsigned char ch : raw) {
    out.push_back(kDigits[ch >> 4]);
    out.push_back(kDigits[ch & 0x0f]);
  }
  return out;
}

void PutBytes(std::vector<std::uint8_t>& out, const void* data,
              std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + len);
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutBytes(out, &v, sizeof(v));
}

void PutF64(std::vector<std::uint8_t>& out, double v) {
  PutBytes(out, &v, sizeof(v));
}

void PutString(std::vector<std::uint8_t>& out, const std::string& s) {
  PutU64(out, s.size());
  PutBytes(out, s.data(), s.size());
}

void PutVector(std::vector<std::uint8_t>& out, const linalg::Vector& v) {
  PutU64(out, v.size());
  PutBytes(out, v.data(), v.size() * sizeof(double));
}

struct Reader {
  const std::vector<std::uint8_t>& bytes;
  std::size_t at = 0;
  bool ok = true;

  bool take(std::size_t len) {
    if (!ok || bytes.size() - at < len) {
      ok = false;
      return false;
    }
    at += len;
    return true;
  }

  std::uint64_t getU64() {
    std::uint64_t v = 0;
    if (take(sizeof(v))) std::memcpy(&v, bytes.data() + at - sizeof(v), sizeof(v));
    return v;
  }

  double getF64() {
    double v = 0;
    if (take(sizeof(v))) std::memcpy(&v, bytes.data() + at - sizeof(v), sizeof(v));
    return v;
  }

  std::string getString() {
    const std::uint64_t len = getU64();
    if (len > bytes.size() || !take(static_cast<std::size_t>(len))) {
      ok = false;
      return {};
    }
    return std::string(
        reinterpret_cast<const char*>(bytes.data() + at - len),
        static_cast<std::size_t>(len));
  }

  linalg::Vector getVector() {
    const std::uint64_t count = getU64();
    if (count > bytes.size() ||
        !take(static_cast<std::size_t>(count) * sizeof(double))) {
      ok = false;
      return {};
    }
    linalg::Vector v(static_cast<std::size_t>(count));
    if (count > 0) {
      std::memcpy(v.data(), bytes.data() + at - count * sizeof(double),
                  static_cast<std::size_t>(count) * sizeof(double));
    }
    return v;
  }
};

std::vector<std::uint8_t> Serialize(const SessionCheckpoint& cp) {
  std::vector<std::uint8_t> body;
  PutString(body, cp.sessionKey);
  PutString(body, cp.topologySpec);
  PutU64(body, cp.topologySeed);
  PutF64(body, cp.f);
  PutU64(body, cp.window);
  PutU64(body, static_cast<std::uint64_t>(cp.solver));
  PutU64(body, cp.state.seq);
  PutVector(body, cp.state.preference);
  PutVector(body, cp.state.windowIngress);
  PutVector(body, cp.state.windowEgress);
  PutU64(body, cp.state.windowFill);
  return body;
}

bool Deserialize(const std::vector<std::uint8_t>& body,
                 SessionCheckpoint* out) {
  Reader r{body};
  SessionCheckpoint cp;
  cp.sessionKey = r.getString();
  cp.topologySpec = r.getString();
  cp.topologySeed = r.getU64();
  cp.f = r.getF64();
  cp.window = r.getU64();
  const std::uint64_t solver = r.getU64();
  cp.state.seq = r.getU64();
  cp.state.preference = r.getVector();
  cp.state.windowIngress = r.getVector();
  cp.state.windowEgress = r.getVector();
  cp.state.windowFill = static_cast<std::size_t>(r.getU64());
  if (!r.ok || r.at != body.size()) return false;
  switch (solver) {
    case static_cast<std::uint64_t>(core::SolverKind::kAuto):
    case static_cast<std::uint64_t>(core::SolverKind::kDense):
    case static_cast<std::uint64_t>(core::SolverKind::kSparse):
    case static_cast<std::uint64_t>(core::SolverKind::kCg):
      cp.solver = static_cast<core::SolverKind>(solver);
      break;
    default:
      return false;
  }
  *out = cp;
  return true;
}

/// Parses "<hexkey>-<seq>.icks"; false for foreign files.
bool ParseFileName(const std::string& name, const std::string& hexKey,
                   std::uint64_t* seq) {
  const std::string prefix = hexKey + "-";
  if (name.rfind(prefix, 0) != 0) return false;
  const std::size_t suffixLen = sizeof(kSuffix) - 1;
  if (name.size() <= prefix.size() + suffixLen) return false;
  if (name.compare(name.size() - suffixLen, suffixLen, kSuffix) != 0)
    return false;
  std::uint64_t value = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffixLen; ++i) {
    const char ch = name[i];
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  *seq = value;
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(std::max<std::size_t>(keep, 1)) {}

void CheckpointStore::save(const SessionCheckpoint& checkpoint) {
  ICTM_REQUIRE(!checkpoint.sessionKey.empty(),
               "cannot checkpoint a session without a key");
  fs::create_directories(dir_);
  const std::string hexKey = HexEncode(checkpoint.sessionKey);
  const std::vector<std::uint8_t> body = Serialize(checkpoint);
  const std::uint32_t crc = stream::Crc32(body.data(), body.size());
  const std::uint64_t bodyLen = body.size();

  const std::string finalPath = dir_ + "/" + hexKey + "-" +
                                std::to_string(checkpoint.state.seq) + kSuffix;
  const std::string tmpPath = finalPath + ".tmp";
  {
    std::ofstream os(tmpPath, std::ios::binary | std::ios::trunc);
    ICTM_REQUIRE(os.is_open(), "cannot open checkpoint file: " + tmpPath);
    os.write(kMagic, sizeof(kMagic));
    os.write(reinterpret_cast<const char*>(&bodyLen), sizeof(bodyLen));
    os.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.flush();
    ICTM_REQUIRE(os.good(), "short write to checkpoint file: " + tmpPath);
  }
  std::error_code ec;
  fs::rename(tmpPath, finalPath, ec);
  ICTM_REQUIRE(!ec, "cannot publish checkpoint " + finalPath + ": " +
                        ec.message());

  // Prune beyond the retention bound, oldest (lowest seq) first.
  std::vector<std::uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::uint64_t seq = 0;
    if (ParseFileName(entry.path().filename().string(), hexKey, &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  while (seqs.size() > keep_) {
    const std::string victim =
        dir_ + "/" + hexKey + "-" + std::to_string(seqs.front()) + kSuffix;
    fs::remove(victim, ec);  // best effort; a survivor is harmless
    seqs.erase(seqs.begin());
  }
}

std::optional<SessionCheckpoint> CheckpointStore::load(
    const std::string& sessionKey, std::uint64_t maxSeq) const {
  std::error_code ec;
  if (!fs::is_directory(dir_, ec)) return std::nullopt;
  const std::string hexKey = HexEncode(sessionKey);

  std::vector<std::uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::uint64_t seq = 0;
    if (ParseFileName(entry.path().filename().string(), hexKey, &seq) &&
        seq <= maxSeq) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end(), std::greater<>());

  for (std::uint64_t seq : seqs) {  // newest usable wins; skip corrupt
    const std::string path =
        dir_ + "/" + hexKey + "-" + std::to_string(seq) + kSuffix;
    std::ifstream is(path, std::ios::binary);
    if (!is.is_open()) continue;
    char magic[sizeof(kMagic)] = {};
    std::uint64_t bodyLen = 0;
    is.read(magic, sizeof(magic));
    is.read(reinterpret_cast<char*>(&bodyLen), sizeof(bodyLen));
    if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
      continue;
    if (bodyLen > (1ull << 32)) continue;
    std::vector<std::uint8_t> body(static_cast<std::size_t>(bodyLen));
    std::uint32_t crc = 0;
    is.read(reinterpret_cast<char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
    is.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    if (!is.good() || stream::Crc32(body.data(), body.size()) != crc) continue;
    SessionCheckpoint cp;
    if (!Deserialize(body, &cp) || cp.sessionKey != sessionKey ||
        cp.state.seq != seq) {
      continue;
    }
    return cp;
  }
  return std::nullopt;
}

void CheckpointStore::drop(const std::string& sessionKey) {
  std::error_code ec;
  if (!fs::is_directory(dir_, ec)) return;
  const std::string hexKey = HexEncode(sessionKey);
  std::vector<fs::path> victims;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::uint64_t seq = 0;
    if (ParseFileName(entry.path().filename().string(), hexKey, &seq)) {
      victims.push_back(entry.path());
    }
  }
  for (const auto& path : victims) fs::remove(path, ec);
}

}  // namespace ictm::server
