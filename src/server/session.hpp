// One server session: a connection's whole lifecycle from HELLO to
// FIN_ACK (or a typed ERROR and teardown).
//
// Thread anatomy per session (nothing shared with siblings except the
// read-only TopologyState and the checkpoint directory):
//
//   reader (the session thread)
//     decodes frames, validates sequence numbers, turns truth bins
//     into BinEvents and pushes them into the StreamingEstimator;
//     captures + persists checkpoints at push boundaries
//   estimator workers (inside StreamingEstimator)
//     solve bins; the in-order emit callback encodes each ESTIMATE
//     frame and pushes it onto the bounded output queue
//   writer
//     drains the output queue into the socket
//
// Backpressure is the chain of bounded stages: a client that stops
// reading fills its kernel socket buffer, which blocks the writer,
// which fills the output queue, which blocks the emit callback, which
// stalls the workers, which fills the estimator's input queue, which
// blocks push() in the reader, which stops reading the socket — so
// the *client's* sends stall.  Every stage is per-session, so a slow
// reader throttles exactly itself.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "server/checkpoint.hpp"
#include "server/socket.hpp"
#include "server/state_cache.hpp"

namespace ictm::server {

/// Bounded FIFO of encoded frames between the estimator's emit
/// callback and the writer thread.  push() blocks while full — that
/// blocking IS the session's backpressure.  pushUnbounded() bypasses
/// the bound for the rare control frame (FIN_ACK, ERROR) so teardown
/// can never deadlock on a full queue.
class FrameQueue {
 public:
  /// `capacity` bounds pending frames; at least 1.
  explicit FrameQueue(std::size_t capacity);

  /// Blocks until space or close; false (frame dropped) once closed.
  bool push(std::vector<std::uint8_t> frame);
  /// Appends regardless of capacity; dropped silently once closed.
  void pushUnbounded(std::vector<std::uint8_t> frame);
  /// Blocks for the next frame; false when closed and (drained, or
  /// closed in discard mode).
  bool pop(std::vector<std::uint8_t>* frame);
  /// Closes the queue.  `discardPending` drops queued frames (abort
  /// path); otherwise the writer drains them first (graceful path).
  void close(bool discardPending);

 private:
  std::mutex mutex_;
  std::condition_variable canPush_;
  std::condition_variable canPop_;
  std::deque<std::vector<std::uint8_t>> frames_;
  std::size_t capacity_;
  bool closed_ = false;
  bool discard_ = false;
};

/// Per-session resource caps and hooks, fixed server-side (the client
/// may request less; requests are clamped, never trusted).  None of
/// these affect estimate bytes — the determinism contract.
struct SessionLimits {
  std::size_t maxThreads = 4;         ///< cap on estimator workers
  std::size_t maxQueueCapacity = 256;  ///< cap on estimator input queue
  std::size_t outputQueueCapacity = 16;  ///< writer-side frame queue bound
  std::size_t checkpointEvery = 16;   ///< checkpoint period in bins
  int socketBufferBytes = 0;          ///< >0 shrinks SO_SNDBUF/SO_RCVBUF
                                      ///< (test hook for backpressure)
};

/// Runs one connection to completion.  Construct, then call run()
/// from the session's thread; abort() from any other thread forces
/// prompt teardown.
class Session {
 public:
  /// `store` may be null (checkpointing disabled; resume is refused
  /// with kUnknownSession).  `stopping` is the server's shutdown
  /// flag: a HELLO arriving while it is set is answered with
  /// kShuttingDown.
  Session(Socket socket, TopologyStateCache* cache, CheckpointStore* store,
          SessionLimits limits, const std::atomic<bool>* stopping);
  ~Session();

  Session(const Session&) = delete;             ///< non-copyable
  Session& operator=(const Session&) = delete;  ///< non-copyable

  /// Serves the connection until it ends (never throws; every failure
  /// becomes an ERROR frame and/or teardown of this session only).
  void run();

  /// Forces teardown: shuts the socket both ways, unblocking the
  /// reader and writer wherever they are parked.  Thread-safe.
  void abort();

  /// True once run() has returned (the owner may reap the thread).
  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

 private:
  struct Impl;
  Impl* impl_;  // raw: lifetime == Session, keeps the header light
  std::atomic<bool> done_{false};
};

}  // namespace ictm::server
