// Thin RAII layer over POSIX stream sockets for the estimation
// server: Unix-domain and TCP listeners, blocking connected sockets
// with full-buffer send/recv loops, and an Endpoint parser for the
// CLI's `--listen`/`--connect` spec ("unix:/path" or "tcp:host:port").
//
// Everything here is blocking by design — backpressure is the
// feature: a full kernel send buffer stalls exactly the writer that
// owns the socket, which is how a slow client throttles only its own
// session (docs/FORMATS.md, "Flow control").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ictm::server {

/// A parsed socket address: "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  /// Address family of an Endpoint.
  enum class Kind {
    kUnix,  ///< Unix-domain stream socket at `path`
    kTcp,   ///< TCP socket at `host`:`port`
  };
  Kind kind = Kind::kUnix;  ///< address family
  std::string path;         ///< socket path (kUnix)
  std::string host;         ///< host or numeric address (kTcp)
  std::uint16_t port = 0;   ///< TCP port (kTcp)

  /// Parses a spec; returns false (leaving `*out` untouched) on a
  /// malformed one.  A bare path (contains '/' or no ':') is accepted
  /// as unix for convenience.
  static bool Parse(const std::string& spec, Endpoint* out);

  /// Canonical spec string ("unix:..." / "tcp:...") for diagnostics.
  std::string describe() const;
};

/// A connected stream socket (one session's transport).  Movable,
/// closes on destruction.
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected file descriptor (-1 = empty).
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;             ///< non-copyable
  Socket& operator=(const Socket&) = delete;  ///< non-copyable
  Socket(Socket&& other) noexcept;            ///< move-constructs, empties other
  Socket& operator=(Socket&& other) noexcept;  ///< closes self, adopts other

  /// True when a descriptor is held.
  bool valid() const noexcept { return fd_ >= 0; }
  /// The raw descriptor (-1 when empty).
  int fd() const noexcept { return fd_; }

  /// Sends exactly `len` bytes, looping over partial writes; false on
  /// a peer reset / shutdown.
  bool sendAll(const void* data, std::size_t len) noexcept;
  /// Receives up to `len` bytes; returns the count, 0 on orderly EOF,
  /// -1 on error.
  long recvSome(void* data, std::size_t len) noexcept;

  /// Shrinks the kernel send/receive buffers toward `bytes` (the
  /// kernel clamps to its floor).  Test hook: makes backpressure
  /// observable with few frames in flight.
  void setBufferSizes(int bytes) noexcept;

  /// Half-closes both directions, unblocking any thread parked in
  /// sendAll/recvSome on this socket (they see EOF/reset).  Safe to
  /// call from another thread; the descriptor stays owned.
  void shutdownBoth() noexcept;

  /// Closes the descriptor now (idempotent).
  void close() noexcept;

  /// Connects to an endpoint; returns an empty socket and sets
  /// `*error` on failure.
  static Socket Connect(const Endpoint& ep, std::string* error);

 private:
  int fd_ = -1;
};

/// A listening socket bound to an Endpoint.  accept() can be woken
/// from another thread via interrupt() (self-pipe), which is how the
/// server's stop() path unblocks the accept loop without signals.
class Listener {
 public:
  Listener();
  ~Listener();

  Listener(const Listener&) = delete;             ///< non-copyable
  Listener& operator=(const Listener&) = delete;  ///< non-copyable

  /// Binds and listens; false (with `*error` set) on failure.  For
  /// unix endpoints a stale socket file is unlinked first.  Port 0
  /// binds an ephemeral TCP port — read it back via boundEndpoint().
  bool bind(const Endpoint& ep, std::string* error);

  /// The endpoint actually bound (resolves port 0 to the real port).
  const Endpoint& boundEndpoint() const noexcept { return bound_; }

  /// Blocks until a connection arrives (returns it), or interrupt()
  /// is called / an unrecoverable error occurs (returns an empty
  /// socket).
  Socket accept();

  /// Wakes every blocked accept() call; subsequent accepts return
  /// empty immediately.  Thread-safe, idempotent.
  void interrupt() noexcept;

  /// Closes the listening socket and removes a unix socket file.
  void close() noexcept;

 private:
  int fd_ = -1;
  int wakePipe_[2] = {-1, -1};
  Endpoint bound_;
  std::string unlinkPath_;
};

}  // namespace ictm::server
