#include "server/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "server/protocol.hpp"
#include "stream/online.hpp"

namespace ictm::server {

FrameQueue::FrameQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool FrameQueue::push(std::vector<std::uint8_t> frame) {
  // Stall count depends on how fast the peer drains — timing class.
  static obs::Counter& stalls = obs::GetCounter(
      "server.backpressure_stalls", obs::MetricClass::kTiming);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!closed_ && frames_.size() >= capacity_) stalls.add();
  canPush_.wait(lock,
                [this] { return closed_ || frames_.size() < capacity_; });
  if (closed_) return false;
  frames_.push_back(std::move(frame));
  canPop_.notify_one();
  return true;
}

void FrameQueue::pushUnbounded(std::vector<std::uint8_t> frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  frames_.push_back(std::move(frame));
  canPop_.notify_one();
}

bool FrameQueue::pop(std::vector<std::uint8_t>* frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  canPop_.wait(lock, [this] { return closed_ || !frames_.empty(); });
  if (discard_ || frames_.empty()) return false;
  *frame = std::move(frames_.front());
  frames_.pop_front();
  canPush_.notify_one();
  return true;
}

void FrameQueue::close(bool discardPending) {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  if (discardPending) {
    discard_ = true;
    frames_.clear();
  }
  canPush_.notify_all();
  canPop_.notify_all();
}

namespace {

/// Encodes one whole frame ready for the wire.
std::vector<std::uint8_t> MakeFrame(FrameType type,
                                    const std::vector<std::uint8_t>& payload) {
  return EncodeFrame(type, payload.data(), payload.size());
}

std::vector<std::uint8_t> MakeErrorFrame(ErrorCode code,
                                         const std::string& message) {
  ErrorInfo info;
  info.code = code;
  info.message = message;
  return MakeFrame(FrameType::kError, info.encode());
}

}  // namespace

struct Session::Impl {
  Socket socket;
  TopologyStateCache* cache;
  CheckpointStore* store;
  SessionLimits limits;
  const std::atomic<bool>* stopping;

  // Populated by the handshake.
  HelloRequest hello;
  std::shared_ptr<const TopologyState> topo;
  std::unique_ptr<stream::StreamingEstimator> estimator;
  std::unique_ptr<FrameQueue> outQueue;
  std::thread writer;
  std::atomic<bool> writeFailed{false};

  std::uint64_t expectedSeq = 0;  ///< next BIN seq the reader accepts
  bool handshaken = false;

  Impl(Socket sock, TopologyStateCache* c, CheckpointStore* s,
       SessionLimits lim, const std::atomic<bool>* stop)
      : socket(std::move(sock)),
        cache(c),
        store(s),
        limits(lim),
        stopping(stop) {}

  // ---- writes --------------------------------------------------------------

  /// Direct socket write; legal only before the writer thread starts.
  bool sendDirect(FrameType type, const std::vector<std::uint8_t>& payload) {
    const auto frame = MakeFrame(type, payload);
    return socket.sendAll(frame.data(), frame.size());
  }

  void startWriter() {
    outQueue = std::make_unique<FrameQueue>(limits.outputQueueCapacity);
    writer = std::thread([this] {
      static obs::Counter& bytesSent = obs::GetCounter(
          "server.bytes_sent", obs::MetricClass::kDeterministic);
      std::vector<std::uint8_t> frame;
      while (outQueue->pop(&frame)) {
        if (writeFailed.load(std::memory_order_relaxed)) continue;
        if (!socket.sendAll(frame.data(), frame.size())) {
          // Keep draining so pushers never wedge on a dead peer.
          writeFailed.store(true, std::memory_order_relaxed);
        } else {
          bytesSent.add(frame.size());
        }
      }
    });
  }

  /// Tears the data path down.  `errorFrame` (may be empty) is queued
  /// ahead of the close so a graceful drain still flushes it.
  void teardown(std::vector<std::uint8_t> errorFrame, bool discardPending) {
    if (outQueue != nullptr) {
      if (!errorFrame.empty()) outQueue->pushUnbounded(std::move(errorFrame));
      outQueue->close(discardPending);
    } else if (!errorFrame.empty()) {
      socket.sendAll(errorFrame.data(), errorFrame.size());
    }
    // The estimator is destroyed while the queue is closed: its emit
    // callbacks see push() == false and drop, so the drain inside the
    // destructor can never block on a full queue.
    estimator.reset();
    if (writer.joinable()) writer.join();
    // Shutdown, not close: abort() may race us with its own
    // shutdown, which is safe on a live descriptor; the fd itself is
    // closed by ~Session after the owning thread is joined.
    socket.shutdownBoth();
  }

  // ---- handshake -----------------------------------------------------------

  /// Answers a handshake failure and reports "session over".
  bool refuse(ErrorCode code, const std::string& message) {
    sendDirect(FrameType::kError, [&] {
      ErrorInfo info;
      info.code = code;
      info.message = message;
      return info.encode();
    }());
    return false;
  }

  bool handleHello(const Frame& frame) {
    if (handshaken) {
      // Replay after a successful handshake: typed error, teardown.
      teardown(MakeErrorFrame(ErrorCode::kHandshakeReplay,
                              "session already established"),
               /*discardPending=*/false);
      return false;
    }
    if (!hello.decode(frame.payload)) {
      return refuse(ErrorCode::kProtocol, "malformed HELLO payload");
    }
    if (hello.version != kProtocolVersion) {
      return refuse(ErrorCode::kVersion,
                    "unsupported protocol version " +
                        std::to_string(hello.version));
    }
    if (stopping != nullptr && stopping->load(std::memory_order_acquire)) {
      return refuse(ErrorCode::kShuttingDown, "server is shutting down");
    }
    if (hello.topologySpec.empty()) {
      return refuse(ErrorCode::kBadHandshake, "empty topology spec");
    }
    if (!std::isfinite(hello.f) || hello.f <= 0.0 || hello.f >= 1.0) {
      return refuse(ErrorCode::kBadHandshake,
                    "forward fraction f must lie in (0, 1)");
    }
    if (hello.queueCapacity == 0) {
      return refuse(ErrorCode::kBadHandshake,
                    "queue capacity must be positive");
    }
    if (hello.threads == 0) {
      return refuse(ErrorCode::kBadHandshake,
                    "thread count must be positive");
    }
    if (hello.resume && hello.sessionKey.empty()) {
      return refuse(ErrorCode::kBadHandshake,
                    "resume requires a session key");
    }
    if (hello.resume && store == nullptr) {
      return refuse(ErrorCode::kUnknownSession,
                    "server has checkpointing disabled");
    }

    try {
      topo = cache->acquire(hello.topologySpec, hello.topologySeed);
    } catch (const std::exception& e) {
      return refuse(ErrorCode::kBadHandshake, e.what());
    }

    std::optional<SessionCheckpoint> resumePoint;
    if (hello.resume) {
      resumePoint = store->load(hello.sessionKey, hello.clientFrames);
      if (resumePoint.has_value()) {
        const SessionCheckpoint& cp = *resumePoint;
        if (cp.topologySpec != hello.topologySpec ||
            cp.topologySeed != hello.topologySeed || cp.f != hello.f ||
            cp.window != hello.window || cp.solver != hello.solver) {
          return refuse(ErrorCode::kSessionMismatch,
                        "resume HELLO disagrees with the checkpointed "
                        "topology/options");
        }
      }
    }

    stream::StreamingOptions options;
    options.threads = std::min<std::size_t>(hello.threads, limits.maxThreads);
    options.queueCapacity =
        std::min<std::size_t>(hello.queueCapacity, limits.maxQueueCapacity);
    options.window = static_cast<std::size_t>(hello.window);
    options.f = hello.f;
    options.estimation.solver = hello.solver;
    if (resumePoint.has_value()) {
      options.resume = resumePoint->state;
      expectedSeq = resumePoint->state.seq;
    }

    startWriter();
    FrameQueue* queue = outQueue.get();
    const std::size_t nodes = topo->nodes;
    try {
      estimator = std::make_unique<stream::StreamingEstimator>(
          topo->system, std::move(options),
          [queue, nodes](std::size_t seq, const double* estimate,
                         const double* prior) {
            const auto payload = EncodeEstimatePayload(
                static_cast<std::uint64_t>(seq), estimate, prior, nodes);
            // push() == false means the session is tearing down; the
            // frame is dropped on purpose (the client is gone or the
            // server is aborting — determinism only covers delivered
            // prefixes).
            (void)queue->push(MakeFrame(FrameType::kEstimate, payload));
          });
    } catch (const std::exception& e) {
      teardown(MakeErrorFrame(ErrorCode::kInternal, e.what()),
               /*discardPending=*/false);
      return false;
    }

    WelcomeReply welcome;
    welcome.nodes = static_cast<std::uint64_t>(nodes);
    welcome.resumeFrom = expectedSeq;
    outQueue->pushUnbounded(MakeFrame(FrameType::kWelcome, welcome.encode()));
    handshaken = true;
    static obs::Counter& sessionsOpened = obs::GetCounter(
        "server.sessions_opened", obs::MetricClass::kDeterministic);
    sessionsOpened.add();
    return true;
  }

  /// Pre-handshake metrics probe: reply with the flattened registry
  /// snapshot, then close.  After the handshake the frame is a
  /// protocol violation like any other out-of-place type.
  bool handleStats(const Frame& frame) {
    if (handshaken) {
      teardown(MakeErrorFrame(ErrorCode::kProtocol,
                              "STATS is only valid before the handshake"),
               /*discardPending=*/false);
      return false;
    }
    if (!frame.payload.empty()) {
      return refuse(ErrorCode::kProtocol, "STATS payload must be empty");
    }
    StatsReply reply;
    reply.entries = obs::Registry::Instance().snapshot().flatten();
    sendDirect(FrameType::kStats, reply.encode());
    // One-shot probe: reply, then close.  The active shutdown (rather
    // than waiting for ~Session) lets the client treat EOF as
    // end-of-reply.
    socket.shutdownBoth();
    return false;
  }

  // ---- streaming -----------------------------------------------------------

  bool handleBin(const Frame& frame) {
    std::uint64_t seq = 0;
    std::vector<double> bin(topo->nodes * topo->nodes);
    if (!DecodeBinPayload(frame.payload, topo->nodes, &seq, bin.data())) {
      teardown(MakeErrorFrame(ErrorCode::kProtocol, "malformed BIN payload"),
               /*discardPending=*/false);
      return false;
    }
    if (seq != expectedSeq) {
      teardown(MakeErrorFrame(ErrorCode::kBadSequence,
                              "expected bin " + std::to_string(expectedSeq) +
                                  ", got " + std::to_string(seq)),
               /*discardPending=*/false);
      return false;
    }
    try {
      estimator->push(
          stream::MakeBinEvent(topo->routing, topo->nodes, bin.data()));
      ++expectedSeq;
      static obs::Counter& binsReceived = obs::GetCounter(
          "server.bins_received", obs::MetricClass::kDeterministic);
      binsReceived.add();
      if (store != nullptr && !hello.sessionKey.empty() &&
          limits.checkpointEvery > 0 &&
          expectedSeq % limits.checkpointEvery == 0) {
        SessionCheckpoint cp;
        cp.sessionKey = hello.sessionKey;
        cp.topologySpec = hello.topologySpec;
        cp.topologySeed = hello.topologySeed;
        cp.f = hello.f;
        cp.window = hello.window;
        cp.solver = hello.solver;
        cp.state = estimator->checkpoint();
        store->save(cp);
      }
    } catch (const std::exception& e) {
      teardown(MakeErrorFrame(ErrorCode::kInternal, e.what()),
               /*discardPending=*/false);
      return false;
    }
    return true;
  }

  bool handleFin(const Frame& frame) {
    std::uint64_t count = 0;
    if (!DecodeCountPayload(frame.payload, &count)) {
      teardown(MakeErrorFrame(ErrorCode::kProtocol, "malformed FIN payload"),
               /*discardPending=*/false);
      return false;
    }
    if (count != expectedSeq) {
      teardown(MakeErrorFrame(ErrorCode::kBadSequence,
                              "FIN count " + std::to_string(count) +
                                  " does not match " +
                                  std::to_string(expectedSeq) + " bins"),
               /*discardPending=*/false);
      return false;
    }
    try {
      estimator->finish();
    } catch (const std::exception& e) {
      teardown(MakeErrorFrame(ErrorCode::kInternal, e.what()),
               /*discardPending=*/false);
      return false;
    }
    if (store != nullptr && !hello.sessionKey.empty()) {
      store->drop(hello.sessionKey);
    }
    outQueue->pushUnbounded(
        MakeFrame(FrameType::kFinAck, EncodeCountPayload(count)));
    teardown({}, /*discardPending=*/false);
    return false;  // session complete
  }

  /// Dispatches one decoded frame; false ends the read loop.
  bool handleFrame(const Frame& frame) {
    switch (frame.type) {
      case FrameType::kHello:
        return handleHello(frame);
      case FrameType::kBin:
        if (!handshaken) {
          return refuse(ErrorCode::kProtocol, "BIN before HELLO");
        }
        return handleBin(frame);
      case FrameType::kFin:
        if (!handshaken) {
          return refuse(ErrorCode::kProtocol, "FIN before HELLO");
        }
        return handleFin(frame);
      case FrameType::kStats:
        return handleStats(frame);
      case FrameType::kError:
        // Peer reported an error: tear down quietly.
        teardown({}, /*discardPending=*/true);
        return false;
      case FrameType::kWelcome:
      case FrameType::kEstimate:
      case FrameType::kFinAck:
        break;  // server-to-client types are invalid inbound
    }
    const auto error = MakeErrorFrame(
        ErrorCode::kUnknownType,
        "unexpected frame type " +
            std::to_string(static_cast<unsigned>(frame.type)));
    if (handshaken) {
      teardown(error, /*discardPending=*/false);
    } else {
      socket.sendAll(error.data(), error.size());
    }
    return false;
  }

  void runLoop() {
    std::vector<std::uint8_t> rx;
    std::size_t parsed = 0;
    std::uint8_t chunk[16384];
    for (;;) {
      // Drain every complete frame already buffered.
      for (;;) {
        const std::size_t cap = handshaken
                                    ? MaxFrameBytesForNodes(topo->nodes)
                                    : kMaxHandshakeFrameBytes;
        Frame frame;
        std::size_t consumed = 0;
        const DecodeStatus status =
            DecodeFrame(rx.data() + parsed, rx.size() - parsed, cap, &frame,
                        &consumed);
        if (status == DecodeStatus::kNeedMore) break;
        if (status == DecodeStatus::kOversize) {
          const auto error =
              MakeErrorFrame(ErrorCode::kOversize, "frame length exceeds bound");
          if (handshaken) {
            teardown(error, /*discardPending=*/false);
          } else {
            socket.sendAll(error.data(), error.size());
          }
          return;
        }
        if (status == DecodeStatus::kCrcMismatch) {
          const auto error =
              MakeErrorFrame(ErrorCode::kCrc, "frame CRC mismatch");
          if (handshaken) {
            teardown(error, /*discardPending=*/false);
          } else {
            socket.sendAll(error.data(), error.size());
          }
          return;
        }
        parsed += consumed;
        if (!handleFrame(frame)) return;
      }
      if (parsed > 0) {
        rx.erase(rx.begin(),
                 rx.begin() + static_cast<std::ptrdiff_t>(parsed));
        parsed = 0;
      }
      const long n = socket.recvSome(chunk, sizeof(chunk));
      if (n <= 0) {
        // Peer vanished (or abort() shut the socket): nothing to say.
        teardown({}, /*discardPending=*/true);
        return;
      }
      static obs::Counter& bytesReceived = obs::GetCounter(
          "server.bytes_received", obs::MetricClass::kDeterministic);
      bytesReceived.add(static_cast<std::uint64_t>(n));
      rx.insert(rx.end(), chunk, chunk + n);
    }
  }
};

Session::Session(Socket socket, TopologyStateCache* cache,
                 CheckpointStore* store, SessionLimits limits,
                 const std::atomic<bool>* stopping)
    : impl_(new Impl(std::move(socket), cache, store, limits, stopping)) {}

Session::~Session() { delete impl_; }

void Session::run() {
  if (impl_->limits.socketBufferBytes > 0) {
    impl_->socket.setBufferSizes(impl_->limits.socketBufferBytes);
  }
  try {
    impl_->runLoop();
  } catch (...) {
    // A session must never take the server down; force local cleanup.
    impl_->teardown({}, /*discardPending=*/true);
  }
  done_.store(true, std::memory_order_release);
}

void Session::abort() { impl_->socket.shutdownBoth(); }

}  // namespace ictm::server
