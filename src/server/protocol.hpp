// Wire protocol of the `ictm serve` estimation server.
//
// One session = one connection.  The client opens with a HELLO frame
// naming a topology spec and the estimation options, the server
// answers WELCOME with the resume position, then BIN frames (truth
// bins) flow client → server and ESTIMATE frames (estimate + prior)
// flow server → client until FIN/FIN_ACK.  Every violation — CRC
// mismatch, oversize length prefix, unknown frame type, handshake
// replay, out-of-order sequence — is answered with a typed ERROR
// frame and the session is torn down without touching its siblings.
//
// Frame layout (native little-endian byte order, validated by the
// sentinel in HELLO/WELCOME — the same convention as the `ictmb`
// container, whose CRC-32 this protocol reuses):
//
//   u32 length     byte count of type + payload (bounded; oversize
//                  prefixes are rejected before any allocation)
//   u8  type       FrameType
//   payload        length - 1 bytes
//   u32 crc        stream::Crc32 over the type byte and the payload
//
// docs/FORMATS.md ("Server wire protocol") is the normative grammar;
// this header is the reference implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/estimation.hpp"

namespace ictm::server {

/// Protocol version spoken by this build (HELLO/WELCOME carry it; a
/// mismatch is answered with kErrVersion).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Byte-order sentinel carried by HELLO and WELCOME (as in `ictmb`).
inline constexpr std::uint32_t kByteOrderSentinel = 0x01020304;

/// Hard cap on any frame before the handshake fixes the node count;
/// HELLO is the only frame a server accepts this early and it is
/// tiny, so the cap only needs to cover pathological spec strings.
inline constexpr std::size_t kMaxHandshakeFrameBytes = 1u << 16;

/// Frame types.  Values are wire format — never renumber.
enum class FrameType : std::uint8_t {
  kHello = 1,     ///< client → server: open or resume a session
  kWelcome = 2,   ///< server → client: session accepted, resume position
  kBin = 3,       ///< client → server: one truth bin (seq + n² doubles)
  kEstimate = 4,  ///< server → client: seq + n² estimate + n² prior
  kFin = 5,       ///< client → server: end of stream (total bin count)
  kFinAck = 6,    ///< server → client: every estimate emitted
  kError = 7,     ///< either direction: typed error, then teardown
  kStats = 8,     ///< client → server: metrics snapshot request (empty
                  ///< payload, pre-handshake only); server → client:
                  ///< the StatsReply, after which the server closes
};

/// Typed error codes carried by kError frames.  Values are wire
/// format — never renumber.
enum class ErrorCode : std::uint16_t {
  kProtocol = 1,         ///< malformed frame for its type / wrong state
  kCrc = 2,              ///< frame CRC mismatch
  kOversize = 3,         ///< length prefix beyond the frame bound
  kUnknownType = 4,      ///< unknown frame type byte
  kVersion = 5,          ///< protocol version / byte-order mismatch
  kBadHandshake = 6,     ///< unresolvable topology, bad options
  kHandshakeReplay = 7,  ///< second HELLO on an open session
  kUnknownSession = 8,   ///< resume without server-side checkpointing
  kSessionMismatch = 9,  ///< resume with different topology/options
  kBadSequence = 10,     ///< BIN seq out of order / FIN count wrong
  kInternal = 11,        ///< estimator failure server-side
  kShuttingDown = 12,    ///< server stopping; reconnect and resume
};

/// Stable name of an error code for diagnostics ("crc", "oversize",
/// ...); "unknown" for unmapped values.
const char* ErrorCodeName(ErrorCode code) noexcept;

/// One decoded frame: the type byte plus the raw payload.
struct Frame {
  FrameType type = FrameType::kError;  ///< frame type byte
  std::vector<std::uint8_t> payload;   ///< payload bytes (may be empty)
};

/// Result of DecodeFrame.
enum class DecodeStatus {
  kOk,           ///< one frame decoded, CRC verified
  kNeedMore,     ///< buffer holds a valid prefix of a frame
  kCrcMismatch,  ///< frame complete but the CRC check failed
  kOversize,     ///< length prefix exceeds maxFrameBytes
};

/// Appends one encoded frame (length prefix, type, payload, CRC) to
/// `out`.
void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::uint8_t* payload, std::size_t payloadLen);

/// Encodes one frame as a fresh byte vector.
std::vector<std::uint8_t> EncodeFrame(FrameType type,
                                      const std::uint8_t* payload,
                                      std::size_t payloadLen);

/// Decodes the frame at the start of `data`.  On kOk, `*out` holds the
/// frame and `*consumed` the encoded byte count; on kNeedMore both are
/// untouched; on kCrcMismatch `*consumed` still advances past the
/// damaged frame so a tolerant reader could resynchronise (the server
/// never does — any damage tears the session down).
DecodeStatus DecodeFrame(const std::uint8_t* data, std::size_t len,
                         std::size_t maxFrameBytes, Frame* out,
                         std::size_t* consumed);

/// Frame byte budget for a session over n-node matrices: covers the
/// largest legal frame (kEstimate: seq + 2 n² doubles) with headroom
/// for the control frames.
std::size_t MaxFrameBytesForNodes(std::size_t nodes) noexcept;

// ---- payload schemas -------------------------------------------------------

/// HELLO payload — everything the server needs to open (or resume) a
/// session.  The options subset here is exactly the set that changes
/// estimate bytes (plus the two resource knobs, which the server caps;
/// they never change results — the determinism contract).
struct HelloRequest {
  std::uint32_t version = kProtocolVersion;  ///< protocol version
  bool resume = false;          ///< resume `sessionKey` from a checkpoint
  std::uint64_t topologySeed = 0;  ///< generator seed for seeded specs
  double f = 0.25;              ///< forward fraction of the prior
  std::uint64_t window = 0;     ///< preference re-fit window (0 = off)
  core::SolverKind solver = core::SolverKind::kAuto;  ///< backend
  std::uint32_t threads = 1;    ///< requested workers (server caps)
  std::uint32_t queueCapacity = 64;  ///< requested queue (server caps)
  std::uint64_t clientFrames = 0;  ///< estimate frames the client already
                                   ///< holds (resume only)
  std::string topologySpec;     ///< registry spec or .ictp path
  std::string sessionKey;       ///< empty = ephemeral (no checkpoints)

  /// Serialises into a payload byte vector.
  std::vector<std::uint8_t> encode() const;
  /// Parses a payload; false on short/overlong/malformed bytes.
  bool decode(const std::vector<std::uint8_t>& payload);
};

/// WELCOME payload — the accepted session's facts.
struct WelcomeReply {
  std::uint32_t version = kProtocolVersion;  ///< protocol version
  std::uint64_t nodes = 0;       ///< topology node count n
  std::uint64_t resumeFrom = 0;  ///< first bin seq the server expects

  /// Serialises into a payload byte vector.
  std::vector<std::uint8_t> encode() const;
  /// Parses a payload; false on short/overlong/malformed bytes.
  bool decode(const std::vector<std::uint8_t>& payload);
};

/// ERROR payload — a typed code plus a human-readable message.
struct ErrorInfo {
  ErrorCode code = ErrorCode::kProtocol;  ///< typed error code
  std::string message;                    ///< diagnostic text

  /// Serialises into a payload byte vector.
  std::vector<std::uint8_t> encode() const;
  /// Parses a payload; false on short/overlong/malformed bytes.
  bool decode(const std::vector<std::uint8_t>& payload);
};

/// Encodes a BIN payload: u64 seq + n² doubles.
std::vector<std::uint8_t> EncodeBinPayload(std::uint64_t seq,
                                           const double* bin,
                                           std::size_t nodes);

/// Decodes a BIN payload into `*seq` and `bin` (n² doubles); false on
/// a size mismatch.
bool DecodeBinPayload(const std::vector<std::uint8_t>& payload,
                      std::size_t nodes, std::uint64_t* seq, double* bin);

/// Encodes an ESTIMATE payload: u64 seq + n² estimate + n² prior.
std::vector<std::uint8_t> EncodeEstimatePayload(std::uint64_t seq,
                                                const double* estimate,
                                                const double* prior,
                                                std::size_t nodes);

/// Decodes an ESTIMATE payload; false on a size mismatch.  `estimate`
/// and `prior` receive n² doubles each.
bool DecodeEstimatePayload(const std::vector<std::uint8_t>& payload,
                           std::size_t nodes, std::uint64_t* seq,
                           double* estimate, double* prior);

/// Encodes a FIN / FIN_ACK payload: the u64 final bin count.
std::vector<std::uint8_t> EncodeCountPayload(std::uint64_t count);

/// Decodes a FIN / FIN_ACK payload; false on a size mismatch.
bool DecodeCountPayload(const std::vector<std::uint8_t>& payload,
                        std::uint64_t* count);

/// STATS payload — the server's flattened metrics snapshot
/// (obs::MetricsSnapshot::flatten()): name-sorted (name, u64 value)
/// pairs.  Wire format: u32 entry count, then per entry u32 name
/// length + name bytes + u64 value.
struct StatsReply {
  std::vector<std::pair<std::string, std::uint64_t>> entries;

  /// Serialises into a payload byte vector.
  std::vector<std::uint8_t> encode() const;
  /// Parses a payload; false on short/overlong/malformed bytes.
  bool decode(const std::vector<std::uint8_t>& payload);
};

}  // namespace ictm::server
