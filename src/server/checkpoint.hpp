// Durable session checkpoints for the estimation server.
//
// The restart-losslessness contract (ISSUE 7): a client reconnecting
// with its session key after a server crash resumes from the last
// durable checkpoint and the concatenation of estimate frames it
// receives — pre-crash plus post-resume — is byte-identical to an
// uninterrupted run.  Two facts make this cheap:
//
//   1. stream::StreamingCheckpoint is captured at a push boundary and
//      is a pure function of the pushed prefix, so a checkpoint at
//      seq k is valid no matter how far emission had progressed.
//   2. Estimates are pure functions of (checkpoint state, bin), so
//      the server may conservatively resume from any k ≤ the client's
//      received-frame count e; re-sent frames with seq < e are
//      discarded client-side by definition of e.
//
// Each save is one file `<hex(sessionKey)>-<seq>.icks` written via
// temp + atomic rename, self-validating (magic, CRC-32 trailer), and
// carrying a config echo so a resume with different topology/options
// is rejected as kSessionMismatch instead of silently diverging.  The
// store keeps the newest `keep` checkpoints per key and never reads
// the clock — retention is by sequence number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/estimation.hpp"
#include "stream/online.hpp"

namespace ictm::server {

/// One durable checkpoint: the estimator state plus the config echo
/// that must match on resume.
struct SessionCheckpoint {
  std::string sessionKey;    ///< client-chosen session identity
  std::string topologySpec;  ///< config echo: topology spec
  std::uint64_t topologySeed = 0;  ///< config echo: generator seed
  double f = 0.25;                 ///< config echo: forward fraction
  std::uint64_t window = 0;        ///< config echo: re-fit window
  core::SolverKind solver = core::SolverKind::kAuto;  ///< config echo
  stream::StreamingCheckpoint state;  ///< estimator producer state
};

/// Directory-backed store of SessionCheckpoints.  Thread-compatible:
/// the server serialises saves per session (each session checkpoints
/// only itself); distinct sessions write distinct files.
class CheckpointStore {
 public:
  /// `dir` is created on first save; `keep` bounds retained
  /// checkpoints per session key (at least 1).
  explicit CheckpointStore(std::string dir, std::size_t keep = 8);

  /// Persists one checkpoint (temp file + atomic rename), then prunes
  /// older checkpoints of the same key beyond the retention bound.
  /// Throws ictm::Error on IO failure.
  void save(const SessionCheckpoint& checkpoint);

  /// Loads the newest durable checkpoint for `sessionKey` with
  /// state.seq <= maxSeq; nullopt when none exists (resume then
  /// starts from bin 0).  Unreadable or corrupt files are skipped —
  /// a torn write must never block a resume that an older checkpoint
  /// can serve.
  std::optional<SessionCheckpoint> load(const std::string& sessionKey,
                                        std::uint64_t maxSeq) const;

  /// Deletes every checkpoint of `sessionKey` (normal end of stream).
  void drop(const std::string& sessionKey);

  /// The backing directory.
  const std::string& directory() const noexcept { return dir_; }

 private:
  std::string dir_;
  std::size_t keep_;
};

}  // namespace ictm::server
