#include "server/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ictm::server {
namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

bool ParsePort(const std::string& text, std::uint16_t* out) {
  if (text.empty() || text.size() > 5) return false;
  unsigned long value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<unsigned long>(ch - '0');
  }
  if (value > 65535) return false;
  *out = static_cast<std::uint16_t>(value);
  return true;
}

int OpenTcp(const Endpoint& ep, bool listen, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listen) hints.ai_flags = AI_PASSIVE;
  const std::string portText = std::to_string(ep.port);
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(ep.host.empty() ? nullptr : ep.host.c_str(),
                               portText.c_str(), &hints, &res);
  if (rc != 0) {
    if (error != nullptr) *error = std::string("resolve: ") + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  std::string lastError = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      lastError = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (listen) {
      int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      lastError = std::string("bind: ") + std::strerror(errno);
    } else {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      lastError = std::string("connect: ") + std::strerror(errno);
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0 && error != nullptr) *error = lastError;
  return fd;
}

bool FillUnixAddr(const std::string& path, sockaddr_un* addr,
                  std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) *error = "unix socket path too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool Endpoint::Parse(const std::string& spec, Endpoint* out) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) return false;
  } else if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) return false;
    ep.host = rest.substr(0, colon);
    if (!ParsePort(rest.substr(colon + 1), &ep.port)) return false;
  } else if (spec.find('/') != std::string::npos ||
             spec.find(':') == std::string::npos) {
    if (spec.empty()) return false;
    ep.kind = Kind::kUnix;
    ep.path = spec;
  } else {
    return false;
  }
  *out = ep;
  return true;
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::sendAll(const void* data, std::size_t len) noexcept {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const long n = ::send(fd_, p, len, kSendFlags);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

long Socket::recvSome(void* data, std::size_t len) noexcept {
  for (;;) {
    const long n = ::recv(fd_, data, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

void Socket::setBufferSizes(int bytes) noexcept {
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

void Socket::shutdownBoth() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::Connect(const Endpoint& ep, std::string* error) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!FillUnixAddr(ep.path, &addr, error)) return Socket();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
      return Socket();
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (error != nullptr)
        *error = std::string("connect ") + ep.path + ": " + std::strerror(errno);
      ::close(fd);
      return Socket();
    }
    return Socket(fd);
  }
  return Socket(OpenTcp(ep, /*listen=*/false, error));
}

Listener::Listener() = default;

Listener::~Listener() {
  close();
  for (int& fd : wakePipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

bool Listener::bind(const Endpoint& ep, std::string* error) {
  if (::pipe(wakePipe_) != 0) {
    if (error != nullptr) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!FillUnixAddr(ep.path, &addr, error)) return false;
    ::unlink(ep.path.c_str());
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr)
        *error = std::string("bind ") + ep.path + ": " + std::strerror(errno);
      close();
      return false;
    }
    unlinkPath_ = ep.path;
  } else {
    fd_ = OpenTcp(ep, /*listen=*/true, error);
    if (fd_ < 0) return false;
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    close();
    return false;
  }
  bound_ = ep;
  if (ep.kind == Endpoint::Kind::kTcp && ep.port == 0) {
    sockaddr_storage ss{};
    socklen_t slen = sizeof(ss);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&ss), &slen) == 0) {
      if (ss.ss_family == AF_INET) {
        bound_.port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&ss)->sin_port);
      } else if (ss.ss_family == AF_INET6) {
        bound_.port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&ss)->sin6_port);
      }
    }
  }
  return true;
}

Socket Listener::accept() {
  for (;;) {
    if (fd_ < 0) return Socket();
    pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wakePipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if ((fds[1].revents & POLLIN) != 0) return Socket();
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket();
    }
    return Socket(client);
  }
}

void Listener::interrupt() noexcept {
  if (wakePipe_[1] >= 0) {
    const char byte = 1;
    // A full pipe already guarantees a pending wake-up.
    [[maybe_unused]] const long n = ::write(wakePipe_[1], &byte, 1);
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlinkPath_.empty()) {
    ::unlink(unlinkPath_.c_str());
    unlinkPath_.clear();
  }
}

}  // namespace ictm::server
