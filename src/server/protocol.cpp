#include "server/protocol.hpp"

#include <cstring>

#include "stream/format.hpp"

namespace ictm::server {
namespace {

constexpr std::size_t kLenPrefixBytes = 4;
constexpr std::size_t kCrcBytes = 4;

// Byte-at-a-time on purpose: GCC 12's -Wstringop-overflow misfires on
// vector::insert/memcpy of small scalar ranges inlined into the
// encode() bodies, and -Werror would turn that false positive fatal.
void PutBytes(std::vector<std::uint8_t>& out, const void* data,
              std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) out.push_back(p[i]);
}

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  PutBytes(out, &v, sizeof(v));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  PutBytes(out, &v, sizeof(v));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutBytes(out, &v, sizeof(v));
}

void PutF64(std::vector<std::uint8_t>& out, double v) {
  PutBytes(out, &v, sizeof(v));
}

/// Sequential reader over a payload; every Get* fails sticky once the
/// payload runs short, so decode() bodies can chain reads and check
/// ok() once at the end.
class Cursor {
 public:
  explicit Cursor(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool ok() const noexcept { return ok_; }
  bool atEnd() const noexcept { return ok_ && at_ == bytes_.size(); }

  std::uint8_t getU8() { return getScalar<std::uint8_t>(); }
  std::uint16_t getU16() { return getScalar<std::uint16_t>(); }
  std::uint32_t getU32() { return getScalar<std::uint32_t>(); }
  std::uint64_t getU64() { return getScalar<std::uint64_t>(); }
  double getF64() { return getScalar<double>(); }

  std::string getString(std::size_t len) {
    if (!take(len)) return {};
    std::string s(reinterpret_cast<const char*>(bytes_.data() + at_ - len),
                  len);
    return s;
  }

  bool getDoubles(double* out, std::size_t count) {
    const std::size_t len = count * sizeof(double);
    if (!take(len)) return false;
    if (len > 0) std::memcpy(out, bytes_.data() + at_ - len, len);
    return true;
  }

 private:
  template <typename T>
  T getScalar() {
    T v{};
    if (take(sizeof(T))) {
      std::memcpy(&v, bytes_.data() + at_ - sizeof(T), sizeof(T));
    }
    return v;
  }

  bool take(std::size_t len) {
    if (!ok_ || bytes_.size() - at_ < len) {
      ok_ = false;
      return false;
    }
    at_ += len;
    return true;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

}  // namespace

const char* ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kProtocol:
      return "protocol";
    case ErrorCode::kCrc:
      return "crc";
    case ErrorCode::kOversize:
      return "oversize";
    case ErrorCode::kUnknownType:
      return "unknown-type";
    case ErrorCode::kVersion:
      return "version";
    case ErrorCode::kBadHandshake:
      return "bad-handshake";
    case ErrorCode::kHandshakeReplay:
      return "handshake-replay";
    case ErrorCode::kUnknownSession:
      return "unknown-session";
    case ErrorCode::kSessionMismatch:
      return "session-mismatch";
    case ErrorCode::kBadSequence:
      return "bad-sequence";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::uint8_t* payload, std::size_t payloadLen) {
  const std::uint32_t length = static_cast<std::uint32_t>(1 + payloadLen);
  out.reserve(out.size() + kLenPrefixBytes + length + kCrcBytes);
  PutU32(out, length);
  const std::size_t bodyAt = out.size();
  PutU8(out, static_cast<std::uint8_t>(type));
  PutBytes(out, payload, payloadLen);
  PutU32(out, stream::Crc32(out.data() + bodyAt, length));
}

std::vector<std::uint8_t> EncodeFrame(FrameType type,
                                      const std::uint8_t* payload,
                                      std::size_t payloadLen) {
  std::vector<std::uint8_t> out;
  AppendFrame(out, type, payload, payloadLen);
  return out;
}

DecodeStatus DecodeFrame(const std::uint8_t* data, std::size_t len,
                         std::size_t maxFrameBytes, Frame* out,
                         std::size_t* consumed) {
  if (len < kLenPrefixBytes) return DecodeStatus::kNeedMore;
  std::uint32_t bodyLen = 0;
  std::memcpy(&bodyLen, data, sizeof(bodyLen));
  // A zero body (no type byte) can never be valid; reject it as
  // oversize-class damage rather than spinning on kNeedMore forever.
  if (bodyLen == 0 || bodyLen > maxFrameBytes) return DecodeStatus::kOversize;
  const std::size_t total = kLenPrefixBytes + bodyLen + kCrcBytes;
  if (len < total) return DecodeStatus::kNeedMore;
  std::uint32_t wireCrc = 0;
  std::memcpy(&wireCrc, data + kLenPrefixBytes + bodyLen, sizeof(wireCrc));
  if (stream::Crc32(data + kLenPrefixBytes, bodyLen) != wireCrc) {
    *consumed = total;
    return DecodeStatus::kCrcMismatch;
  }
  out->type = static_cast<FrameType>(data[kLenPrefixBytes]);
  out->payload.assign(data + kLenPrefixBytes + 1,
                      data + kLenPrefixBytes + bodyLen);
  *consumed = total;
  return DecodeStatus::kOk;
}

std::size_t MaxFrameBytesForNodes(std::size_t nodes) noexcept {
  // Largest legal frame body: kEstimate = type + seq + 2 n² doubles.
  // Headroom covers every control frame (HELLO specs included).
  const std::size_t estimateBody =
      1 + sizeof(std::uint64_t) + 2 * nodes * nodes * sizeof(double);
  return estimateBody + kMaxHandshakeFrameBytes;
}

std::vector<std::uint8_t> HelloRequest::encode() const {
  std::vector<std::uint8_t> out;
  PutU32(out, kByteOrderSentinel);
  PutU32(out, version);
  PutU8(out, resume ? 1 : 0);
  PutU64(out, topologySeed);
  PutF64(out, f);
  PutU64(out, window);
  PutU8(out, static_cast<std::uint8_t>(solver));
  PutU32(out, threads);
  PutU32(out, queueCapacity);
  PutU64(out, clientFrames);
  PutU32(out, static_cast<std::uint32_t>(topologySpec.size()));
  PutBytes(out, topologySpec.data(), topologySpec.size());
  PutU32(out, static_cast<std::uint32_t>(sessionKey.size()));
  PutBytes(out, sessionKey.data(), sessionKey.size());
  return out;
}

bool HelloRequest::decode(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  if (c.getU32() != kByteOrderSentinel) return false;
  version = c.getU32();
  resume = c.getU8() != 0;
  topologySeed = c.getU64();
  f = c.getF64();
  window = c.getU64();
  const std::uint8_t solverByte = c.getU8();
  threads = c.getU32();
  queueCapacity = c.getU32();
  clientFrames = c.getU64();
  const std::uint32_t specLen = c.getU32();
  if (specLen > kMaxHandshakeFrameBytes) return false;
  topologySpec = c.getString(specLen);
  const std::uint32_t keyLen = c.getU32();
  if (keyLen > kMaxHandshakeFrameBytes) return false;
  sessionKey = c.getString(keyLen);
  if (!c.atEnd()) return false;
  switch (solverByte) {
    case static_cast<std::uint8_t>(core::SolverKind::kAuto):
    case static_cast<std::uint8_t>(core::SolverKind::kDense):
    case static_cast<std::uint8_t>(core::SolverKind::kSparse):
    case static_cast<std::uint8_t>(core::SolverKind::kCg):
      solver = static_cast<core::SolverKind>(solverByte);
      return true;
    default:
      return false;
  }
}

std::vector<std::uint8_t> WelcomeReply::encode() const {
  std::vector<std::uint8_t> out;
  PutU32(out, kByteOrderSentinel);
  PutU32(out, version);
  PutU64(out, nodes);
  PutU64(out, resumeFrom);
  return out;
}

bool WelcomeReply::decode(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  if (c.getU32() != kByteOrderSentinel) return false;
  version = c.getU32();
  nodes = c.getU64();
  resumeFrom = c.getU64();
  return c.atEnd();
}

std::vector<std::uint8_t> ErrorInfo::encode() const {
  std::vector<std::uint8_t> out;
  PutU16(out, static_cast<std::uint16_t>(code));
  PutU32(out, static_cast<std::uint32_t>(message.size()));
  PutBytes(out, message.data(), message.size());
  return out;
}

bool ErrorInfo::decode(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  code = static_cast<ErrorCode>(c.getU16());
  const std::uint32_t msgLen = c.getU32();
  if (msgLen > kMaxHandshakeFrameBytes) return false;
  message = c.getString(msgLen);
  return c.atEnd();
}

std::vector<std::uint8_t> EncodeBinPayload(std::uint64_t seq,
                                           const double* bin,
                                           std::size_t nodes) {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(seq) + nodes * nodes * sizeof(double));
  PutU64(out, seq);
  PutBytes(out, bin, nodes * nodes * sizeof(double));
  return out;
}

bool DecodeBinPayload(const std::vector<std::uint8_t>& payload,
                      std::size_t nodes, std::uint64_t* seq, double* bin) {
  Cursor c(payload);
  *seq = c.getU64();
  if (!c.getDoubles(bin, nodes * nodes)) return false;
  return c.atEnd();
}

std::vector<std::uint8_t> EncodeEstimatePayload(std::uint64_t seq,
                                                const double* estimate,
                                                const double* prior,
                                                std::size_t nodes) {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(seq) + 2 * nodes * nodes * sizeof(double));
  PutU64(out, seq);
  PutBytes(out, estimate, nodes * nodes * sizeof(double));
  PutBytes(out, prior, nodes * nodes * sizeof(double));
  return out;
}

bool DecodeEstimatePayload(const std::vector<std::uint8_t>& payload,
                           std::size_t nodes, std::uint64_t* seq,
                           double* estimate, double* prior) {
  Cursor c(payload);
  *seq = c.getU64();
  if (!c.getDoubles(estimate, nodes * nodes)) return false;
  if (!c.getDoubles(prior, nodes * nodes)) return false;
  return c.atEnd();
}

std::vector<std::uint8_t> EncodeCountPayload(std::uint64_t count) {
  std::vector<std::uint8_t> out;
  PutU64(out, count);
  return out;
}

bool DecodeCountPayload(const std::vector<std::uint8_t>& payload,
                        std::uint64_t* count) {
  Cursor c(payload);
  *count = c.getU64();
  return c.atEnd();
}

std::vector<std::uint8_t> StatsReply::encode() const {
  std::vector<std::uint8_t> out;
  PutU32(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [name, value] : entries) {
    PutU32(out, static_cast<std::uint32_t>(name.size()));
    PutBytes(out, name.data(), name.size());
    PutU64(out, value);
  }
  return out;
}

bool StatsReply::decode(const std::vector<std::uint8_t>& payload) {
  Cursor c(payload);
  const std::uint32_t count = c.getU32();
  // The reply travels pre-handshake, so it must fit the handshake
  // frame cap; reject counts that could not possibly (12 bytes is the
  // smallest legal entry) before allocating.
  if (count > kMaxHandshakeFrameBytes / 12) return false;
  entries.clear();
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t nameLen = c.getU32();
    if (nameLen > kMaxHandshakeFrameBytes) return false;
    std::string name = c.getString(nameLen);
    const std::uint64_t value = c.getU64();
    if (!c.ok()) return false;
    entries.emplace_back(std::move(name), value);
  }
  return c.atEnd();
}

}  // namespace ictm::server
