// Client side of the server wire protocol — the library behind
// `ictm client`, and the driver every server test uses.
//
// Run() executes one whole session synchronously: connect, HELLO,
// stream bins [resumeFrom, totalBins) from a caller-supplied source
// while a receiver thread collects estimate frames, FIN, wait for
// FIN_ACK.  The estimate hook runs on the receiver thread, so a test
// that blocks inside it stops the client from reading — which is
// exactly how the slow-reader backpressure test creates a slow
// reader.
//
// Resume: after a failed session (server killed), run again with
// `hello.resume = true` and `hello.clientFrames` set to the number of
// estimate frames already in hand.  The server re-streams from its
// best checkpoint at or before that point; Run() discards re-sent
// frames below `clientFrames`, so the payloads the hook sees across
// both runs concatenate into exactly the uninterrupted sequence.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "server/protocol.hpp"
#include "server/socket.hpp"

namespace ictm::server {

/// Everything one client session needs.
struct ClientConfig {
  Endpoint endpoint;      ///< server address
  HelloRequest hello;     ///< session request (spec, options, key, resume)
  int socketBufferBytes = 0;  ///< >0 shrinks the socket buffers (tests)
};

/// Outcome of one client session.
struct ClientResult {
  bool finished = false;  ///< FIN_ACK received — stream fully served
  std::uint64_t nodes = 0;       ///< node count from WELCOME
  std::uint64_t resumeFrom = 0;  ///< first bin seq the server asked for
  std::uint64_t firstFrameSeq = 0;  ///< seq of the first kept estimate
  std::vector<std::vector<std::uint8_t>> estimatePayloads;  ///< kept, in order
  std::optional<ErrorInfo> serverError;  ///< typed ERROR frame, if any
  std::string transportError;  ///< socket/decode diagnostic, if any
};

/// Runs one client session to completion (or failure).
class Client {
 public:
  /// Returns the truth bin for `seq` (n² doubles, valid until the next
  /// call).  Called from the sending thread in ascending seq order.
  using BinSource = std::function<const double*(std::uint64_t seq)>;

  /// Observes each kept estimate frame, on the receiver thread, in
  /// seq order.  Blocking here blocks the client's reads (and,
  /// through the server's backpressure chain, eventually its sends).
  using EstimateHook = std::function<void(
      std::uint64_t seq, const std::vector<std::uint8_t>& payload)>;

  /// Executes the session: bins [resumeFrom, totalBins) are pulled
  /// from `source` and streamed; estimate frames with seq >=
  /// hello.clientFrames are kept (re-sent ones below it discarded).
  /// Never throws; failures land in the result's error fields.
  static ClientResult Run(const ClientConfig& config,
                          std::uint64_t totalBins, const BinSource& source,
                          const EstimateHook& hook = nullptr);

  /// One-shot metrics probe (`ictm client --stats`): connects, sends
  /// an empty STATS frame pre-handshake, decodes the server's
  /// StatsReply.  False (with `*error` set) on refusal or transport
  /// failure.
  static bool FetchStats(const Endpoint& endpoint, StatsReply* reply,
                         std::string* error);
};

}  // namespace ictm::server
