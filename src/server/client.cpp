#include "server/client.hpp"

#include <cstddef>
#include <thread>
#include <utility>

namespace ictm::server {
namespace {

/// Buffered frame reader over a socket (client side).
class FrameReader {
 public:
  explicit FrameReader(Socket* socket) : socket_(socket) {}

  /// Reads the next frame.  False on EOF / error / damage, with
  /// `*error` describing why.
  bool next(std::size_t maxFrameBytes, Frame* frame, std::string* error) {
    for (;;) {
      std::size_t consumed = 0;
      const DecodeStatus status = DecodeFrame(
          buffer_.data() + parsed_, buffer_.size() - parsed_, maxFrameBytes,
          frame, &consumed);
      if (status == DecodeStatus::kOk) {
        parsed_ += consumed;
        return true;
      }
      if (status == DecodeStatus::kCrcMismatch) {
        *error = "frame CRC mismatch from server";
        return false;
      }
      if (status == DecodeStatus::kOversize) {
        *error = "oversize frame from server";
        return false;
      }
      if (parsed_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(parsed_));
        parsed_ = 0;
      }
      std::uint8_t chunk[16384];
      const long n = socket_->recvSome(chunk, sizeof(chunk));
      if (n <= 0) {
        *error = "connection closed by server";
        return false;
      }
      buffer_.insert(buffer_.end(), chunk, chunk + n);
    }
  }

 private:
  Socket* socket_;
  std::vector<std::uint8_t> buffer_;
  std::size_t parsed_ = 0;
};

bool SendFrame(Socket* socket, FrameType type,
               const std::vector<std::uint8_t>& payload) {
  const auto frame = EncodeFrame(type, payload.data(), payload.size());
  return socket->sendAll(frame.data(), frame.size());
}

}  // namespace

ClientResult Client::Run(const ClientConfig& config, std::uint64_t totalBins,
                         const BinSource& source, const EstimateHook& hook) {
  ClientResult result;
  result.firstFrameSeq = config.hello.clientFrames;

  std::string error;
  Socket socket = Socket::Connect(config.endpoint, &error);
  if (!socket.valid()) {
    result.transportError = error;
    return result;
  }
  if (config.socketBufferBytes > 0) {
    socket.setBufferSizes(config.socketBufferBytes);
  }

  if (!SendFrame(&socket, FrameType::kHello, config.hello.encode())) {
    result.transportError = "failed to send HELLO";
    return result;
  }

  FrameReader reader(&socket);
  Frame frame;
  if (!reader.next(kMaxHandshakeFrameBytes, &frame, &error)) {
    result.transportError = error;
    return result;
  }
  if (frame.type == FrameType::kError) {
    ErrorInfo info;
    if (info.decode(frame.payload)) result.serverError = info;
    result.transportError = "server refused the session";
    return result;
  }
  WelcomeReply welcome;
  if (frame.type != FrameType::kWelcome || !welcome.decode(frame.payload) ||
      welcome.version != kProtocolVersion || welcome.nodes == 0) {
    result.transportError = "malformed handshake reply";
    return result;
  }
  result.nodes = welcome.nodes;
  result.resumeFrom = welcome.resumeFrom;
  if (welcome.resumeFrom > totalBins ||
      welcome.resumeFrom > config.hello.clientFrames) {
    result.transportError = "server requested a resume point beyond what "
                            "this client can serve";
    return result;
  }

  const std::size_t nodes = static_cast<std::size_t>(welcome.nodes);
  const std::size_t maxFrameBytes = MaxFrameBytesForNodes(nodes);

  // Receiver: collects estimate frames while the main thread sends
  // bins — both directions must progress concurrently or the server's
  // backpressure (by design) deadlocks a half-duplex client.
  struct ReceiverState {
    bool finished = false;
    std::optional<ErrorInfo> serverError;
    std::string transportError;
    std::vector<std::vector<std::uint8_t>> payloads;
  } recv;
  std::thread receiver([&] {
    std::uint64_t nextSeq = welcome.resumeFrom;
    for (;;) {
      Frame in;
      std::string recvError;
      if (!reader.next(maxFrameBytes, &in, &recvError)) {
        recv.transportError = recvError;
        return;
      }
      if (in.type == FrameType::kEstimate) {
        std::uint64_t seq = 0;
        std::vector<double> estimate(nodes * nodes);
        std::vector<double> prior(nodes * nodes);
        if (!DecodeEstimatePayload(in.payload, nodes, &seq, estimate.data(),
                                   prior.data())) {
          recv.transportError = "malformed ESTIMATE payload";
          return;
        }
        if (seq != nextSeq) {
          recv.transportError = "estimate frames out of order";
          return;
        }
        ++nextSeq;
        if (seq < config.hello.clientFrames) continue;  // already held
        if (hook) hook(seq, in.payload);
        recv.payloads.push_back(std::move(in.payload));
        continue;
      }
      if (in.type == FrameType::kFinAck) {
        recv.finished = true;
        return;
      }
      if (in.type == FrameType::kError) {
        ErrorInfo info;
        if (info.decode(in.payload)) recv.serverError = info;
        recv.transportError = "server reported an error";
        return;
      }
      recv.transportError = "unexpected frame type from server";
      return;
    }
  });

  // Sender: bins the server asked for, then FIN.  A send failure just
  // stops sending — the receiver owns the diagnosis (it will see the
  // ERROR frame or the close that caused it).
  bool sendOk = true;
  std::vector<std::uint8_t> binPayload;
  for (std::uint64_t seq = welcome.resumeFrom; sendOk && seq < totalBins;
       ++seq) {
    const double* bin = source(seq);
    binPayload = EncodeBinPayload(seq, bin, nodes);
    sendOk = SendFrame(&socket, FrameType::kBin, binPayload);
  }
  if (sendOk) {
    sendOk = SendFrame(&socket, FrameType::kFin, EncodeCountPayload(totalBins));
  }

  receiver.join();
  result.finished = recv.finished;
  result.serverError = std::move(recv.serverError);
  result.transportError = std::move(recv.transportError);
  result.estimatePayloads = std::move(recv.payloads);
  if (!result.finished && result.transportError.empty()) {
    result.transportError = "session ended before FIN_ACK";
  }
  return result;
}

bool Client::FetchStats(const Endpoint& endpoint, StatsReply* reply,
                        std::string* error) {
  Socket socket = Socket::Connect(endpoint, error);
  if (!socket.valid()) return false;
  if (!SendFrame(&socket, FrameType::kStats, {})) {
    *error = "failed to send STATS";
    return false;
  }
  FrameReader reader(&socket);
  Frame frame;
  if (!reader.next(kMaxHandshakeFrameBytes, &frame, error)) return false;
  if (frame.type == FrameType::kError) {
    ErrorInfo info;
    *error = info.decode(frame.payload)
                 ? "server refused STATS: " + info.message
                 : "server refused STATS";
    return false;
  }
  if (frame.type != FrameType::kStats || !reply->decode(frame.payload)) {
    *error = "malformed STATS reply";
    return false;
  }
  return true;
}

}  // namespace ictm::server
