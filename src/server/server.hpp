// The `ictm serve` daemon: a Listener accept loop spawning one
// Session thread per connection, all sessions sharing one
// TopologyStateCache (expensive per-topology state paid once) and one
// CheckpointStore (restart losslessness).
//
// stop() is deliberately abortive — it shuts every live session's
// socket and returns once all threads are joined.  Because session
// checkpoints are durable the moment they are captured, an abortive
// stop is exactly the crash the resume tests simulate: a client
// reconnecting with its session key continues from the last
// checkpoint and loses nothing.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/checkpoint.hpp"
#include "server/session.hpp"
#include "server/socket.hpp"
#include "server/state_cache.hpp"

namespace ictm::server {

/// Configuration of a Server instance.
struct ServerOptions {
  Endpoint listen;            ///< where to accept sessions
  std::string checkpointDir;  ///< empty = checkpointing (and resume) off
  std::size_t cacheCapacity = 4;  ///< resident TopologyState entries
  std::size_t checkpointKeep = 8;  ///< retained checkpoints per session
  SessionLimits limits;       ///< per-session caps and test hooks
};

/// The estimation server.  start()/stop() bracket the accept loop;
/// the instance is reusable only as far as one start/stop cycle.
class Server {
 public:
  /// Builds an idle server; nothing is bound yet.
  explicit Server(ServerOptions options);
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;             ///< non-copyable
  Server& operator=(const Server&) = delete;  ///< non-copyable

  /// Binds the endpoint and starts accepting; false (with `*error`
  /// set) when the bind fails.
  bool start(std::string* error);

  /// The bound endpoint (ephemeral TCP ports resolved to real ones).
  const Endpoint& endpoint() const noexcept;

  /// Aborts every live session, stops accepting, joins all threads.
  /// Idempotent.  This is also the crash lever of the resume tests —
  /// in-flight sessions lose only work since their last durable
  /// checkpoint.
  void stop();

  /// Shared-cache counters (tests assert hit/miss/eviction behavior).
  TopologyStateCache::Stats cacheStats() const;

  /// Connections accepted over the server's lifetime.
  std::size_t sessionsAccepted() const noexcept;

 private:
  void acceptLoop();
  void reapFinishedLocked();

  ServerOptions options_;
  TopologyStateCache cache_;
  std::unique_ptr<CheckpointStore> store_;
  Listener listener_;
  std::thread acceptThread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  struct SessionSlot {
    std::unique_ptr<Session> session;
    std::thread thread;
  };
  mutable std::mutex sessionsMutex_;
  std::vector<SessionSlot> sessions_;
  std::atomic<std::size_t> accepted_{0};
};

}  // namespace ictm::server
