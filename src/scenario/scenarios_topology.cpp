// Topology-workbench scenario: sparse estimation must keep working —
// and stay bit-identical across thread counts — as the backbone grows
// from the paper's 22 PoPs to generated 200-node hierarchies.  The
// sweep body (traffic synthesis, CSR-only routing, the two-thread
// comparison) lives in common.hpp's RunTopoSweepEntry, shared with
// `bench_estimation_scale --topo-sweep`.  As everywhere: correctness
// facts go into the deterministic result document, wall-clock timings
// go to the notes channel only.
#include <cstdio>

#include "core/metrics.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"

namespace ictm::scenario::detail {

namespace {

constexpr std::size_t kBaselineThreads = 1;
constexpr std::size_t kFanoutThreads = 8;

// Canonical seeds: one for the topology generators, one for the
// synthetic traffic (offset per sweep entry so the series differ).
constexpr std::uint64_t kTopologySeed = 91;
constexpr std::uint64_t kTrafficSeed = 92;

std::vector<TopoSweepEntry> BuildSweep(const ScenarioContext& ctx) {
  if (!ctx.topology.empty()) {
    return {{ctx.topology, ctx.tiny ? std::size_t{6} : std::size_t{12}}};
  }
  if (ctx.tiny) {
    return {{"hierarchy:8", 6}, {"ring:6:2", 6}};
  }
  return DefaultTopoSweep();  // 22 -> 50 -> 100 -> 200 nodes
}

json::Value RunTopoScale(const ScenarioContext& ctx, std::string& notes) {
  const std::vector<TopoSweepEntry> sweep = BuildSweep(ctx);
  const core::SolverKind solver = ContextSolverKind(ctx);

  bool allIdentical = true;
  bool allFinite = true;
  json::Array rows;
  for (std::size_t idx = 0; idx < sweep.size(); ++idx) {
    const TopoSweepEntry& entry = sweep[idx];
    const TopoSweepRun run = RunTopoSweepEntry(
        entry, ctx.seed(kTopologySeed),
        ctx.seed(kTrafficSeed) + idx * 1000003, kBaselineThreads,
        kFanoutThreads, solver);
    notes += entry.spec + ": " +
             SolverNote(solver,
                        core::AugmentedRowCount(run.routingRows,
                                                run.nodes, true));
    allIdentical = allIdentical && run.bitIdentical;
    allFinite = allFinite && AllFinite(run.errEst);

    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%s: %.1f ms/bin at %zu thread(s), %.1f ms/bin at %zu "
                  "(%zu bins)\n",
                  entry.spec.c_str(),
                  1e3 * run.secBaseline / double(entry.bins),
                  kBaselineThreads,
                  1e3 * run.secFanout / double(entry.bins),
                  kFanoutThreads, entry.bins);
    notes += buf;

    json::Object row;
    row.set("topology", entry.spec);
    row.set("nodes", run.nodes);
    row.set("links", run.links);
    row.set("routing_rows", run.routingRows);
    row.set("routing_cols", run.nodes * run.nodes);
    row.set("routing_nnz", run.routingNnz);
    row.set("routing_density_pct", run.routingDensityPct);
    row.set("bins", entry.bins);
    row.set("bit_identical_across_threads", run.bitIdentical);
    row.set("est_err_mean", core::Mean(run.errEst));
    row.set("prior_err_mean", core::Mean(run.errPrior));
    row.set("improvement_pct_mean",
            core::Mean(core::PercentImprovementSeries(run.errPrior,
                                                      run.errEst)));
    rows.push_back(json::Value(std::move(row)));
  }

  json::Object body;
  body.set("topology_override",
           ctx.topology.empty() ? "none" : ctx.topology);
  body.set("threads_compared",
           json::Array{json::Value(kBaselineThreads),
                       json::Value(kFanoutThreads)});
  body.set("topologies", json::Value(std::move(rows)));
  body.set("bit_identical_across_threads", allIdentical);
  body.set("pass", allIdentical && allFinite);
  return json::Value(std::move(body));
}

}  // namespace

void RegisterTopologyScenarios() {
  RegisterScenario(
      {"topo_scale", "repo",
       "topology scaling: sparse estimation on generated backbones",
       "EstimateSeries stays bit-identical across thread counts as "
       "generated hierarchical backbones grow 22 -> 50 -> 100 -> 200 "
       "nodes, with routing built directly in CSR (the dense matrix "
       "is never materialised); --topology substitutes any registry "
       "spec or .ictp file for the sweep"},
      RunTopoScale);
}

}  // namespace ictm::scenario::detail
