// Weekly-stability scenarios: the f and {P_i} stability studies
// (Figs. 5-6), the preference CCDF (Fig. 7), preference vs egress
// volume (Fig. 8) and the fitted activity time series (Fig. 9).
#include <algorithm>
#include <cmath>
#include <numeric>

#include "scenario/builtin.hpp"
#include "scenario/common.hpp"
#include "stats/bootstrap.hpp"
#include "stats/fitting.hpp"
#include "stats/summary.hpp"
#include "timeseries/cyclo_fit.hpp"
#include "timeseries/diurnal.hpp"

namespace ictm::scenario::detail {

namespace {

json::Value RunFig5FStability(const ScenarioContext& ctx, std::string&) {
  const std::size_t weeks = ctx.tiny ? 3 : 7;
  const WeeklyFitResult r = FitWeekly(ctx, /*totem=*/true, weeks, 7);

  json::Object body;
  body.set("weeks", weeks);
  body.set("realized_f_whole_horizon", r.data.realizedForwardFraction);
  json::Array perWeek;
  std::vector<double> fs;
  for (std::size_t w = 0; w < r.fits.size(); ++w) {
    json::Object o;
    o.set("week", w + 1);
    o.set("fitted_f", r.fits[w].f);
    o.set("fit_objective", r.fits[w].objective());
    perWeek.push_back(json::Value(std::move(o)));
    fs.push_back(r.fits[w].f);
  }
  body.set("per_week", json::Value(std::move(perWeek)));
  body.set("fitted_f_summary", SummaryJson(fs));

  // Bootstrap CI on the cross-week mean: how much of the week-to-week
  // variation is explained by sampling noise alone.
  stats::Rng bootRng(ctx.seed(123));
  const auto ci = stats::BootstrapMeanCi(fs, 0.95, 2000, bootRng);
  json::Object ciObj;
  ciObj.set("lower", ci.lower);
  ciObj.set("upper", ci.upper);
  body.set("bootstrap_95_ci_mean_f", json::Value(std::move(ciObj)));

  body.set("pass", AllFinite(fs) && ci.lower <= ci.upper);
  return json::Value(std::move(body));
}

json::Value Fig6One(const ScenarioContext& ctx, const char* label,
                    bool totem, std::size_t weeks,
                    std::uint64_t canonicalSeed) {
  const WeeklyFitResult r = FitWeekly(ctx, totem, weeks, canonicalSeed);
  const std::size_t n = r.data.truth.nodeCount();

  json::Object o;
  o.set("label", label);
  o.set("weeks", weeks);
  json::Array nodes;
  std::vector<double> deviations;
  for (std::size_t i = 0; i < n; ++i) {
    json::Object node;
    node.set("node", i);
    json::Array byWeek;
    byWeek.reserve(weeks);
    double lo = 1e300, hi = -1e300;
    for (std::size_t w = 0; w < weeks; ++w) {
      const double p = r.fits[w].preference[i];
      byWeek.push_back(json::Value(p));
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    node.set("p_by_week", json::Value(std::move(byWeek)));
    node.set("p_true", r.data.truePreference[i]);
    nodes.push_back(json::Value(std::move(node)));
    deviations.push_back(hi - lo);
  }
  o.set("nodes", json::Value(std::move(nodes)));
  o.set("per_node_max_p_drift", SummaryJson(deviations));

  // Cross-node variability of the week-1 values (paper: ~10x).  The
  // NNLS fit can zero out half the preferences, making the median 0;
  // degrade to null rather than serialising infinity.
  std::vector<double> p1(r.fits[0].preference.begin(),
                         r.fits[0].preference.end());
  std::sort(p1.begin(), p1.end());
  const double median = stats::Median(p1);
  o.set("week1_max_over_median",
        median > 0.0 ? json::Value(p1.back() / median) : json::Value());
  o.set("finite", AllFinite(deviations));
  return json::Value(std::move(o));
}

json::Value RunFig6PStability(const ScenarioContext& ctx, std::string&) {
  json::Object body;
  json::Array datasets;
  datasets.push_back(
      Fig6One(ctx, "geant_3wk", /*totem=*/false, 3, 11));
  datasets.push_back(Fig6One(ctx, "totem_7wk", /*totem=*/true,
                             ctx.tiny ? 3 : 7, 7));
  bool pass = true;
  for (const json::Value& d : datasets) {
    pass = pass && d.asObject().find("finite")->asBool();
  }
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

json::Value Fig7One(const ScenarioContext& ctx, const char* label,
                    bool totem, std::uint64_t canonicalSeed) {
  const WeeklyFitResult r = FitWeekly(ctx, totem, 1, canonicalSeed);
  // Restrict to the positive support: the NNLS fit can produce exact
  // zeros, which the lognormal cannot represent.
  std::vector<double> p;
  for (double v : r.fits[0].preference) {
    if (v > 0.0) p.push_back(v);
  }

  const stats::Lognormal ln = stats::FitLognormalMle(p);
  const stats::Exponential ex = stats::FitExponentialMle(p);

  json::Object o;
  o.set("label", label);
  o.set("positive_p_count", p.size());
  json::Object lnObj;
  lnObj.set("mu", ln.mu());
  lnObj.set("sigma", ln.sigma());
  o.set("lognormal_mle", json::Value(std::move(lnObj)));
  o.set("exponential_mle_lambda", ex.lambda());

  json::Array ccdf;
  for (const auto& pt : stats::EmpiricalCcdf(p)) {
    if (pt.prob <= 0.0) continue;
    json::Object row;
    row.set("p_value", pt.x);
    row.set("empirical", pt.prob);
    row.set("lognormal", ln.ccdf(pt.x));
    row.set("exponential", ex.ccdf(pt.x));
    ccdf.push_back(json::Value(std::move(row)));
  }
  o.set("ccdf", json::Value(std::move(ccdf)));

  json::Object fitQuality;
  fitQuality.set("ks_lognormal", stats::KsStatistic(p, ln));
  fitQuality.set("ks_exponential", stats::KsStatistic(p, ex));
  fitQuality.set("log_ccdf_mse_lognormal", stats::LogCcdfMse(p, ln));
  fitQuality.set("log_ccdf_mse_exponential", stats::LogCcdfMse(p, ex));
  fitQuality.set("loglik_lognormal", stats::LogLikelihood(ln, p));
  fitQuality.set("loglik_exponential", stats::LogLikelihood(ex, p));
  o.set("goodness_of_fit", json::Value(std::move(fitQuality)));
  o.set("finite", !p.empty() && std::isfinite(ln.mu()) &&
                      std::isfinite(ex.lambda()));
  return json::Value(std::move(o));
}

json::Value RunFig7PCcdf(const ScenarioContext& ctx, std::string&) {
  json::Object body;
  json::Array datasets;
  datasets.push_back(Fig7One(ctx, "geant", /*totem=*/false, 21));
  datasets.push_back(Fig7One(ctx, "totem", /*totem=*/true, 22));
  bool pass = true;
  for (const json::Value& d : datasets) {
    pass = pass && d.asObject().find("finite")->asBool();
  }
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

json::Value Fig8One(const ScenarioContext& ctx, const char* label,
                    bool totem, std::uint64_t canonicalSeed) {
  const WeeklyFitResult r = FitWeekly(ctx, totem, 1, canonicalSeed);
  const core::StableFPFit& fit = r.fits[0];
  const linalg::Vector egressShare =
      r.data.measured.meanNormalizedEgress();
  const std::size_t n = egressShare.size();

  json::Object o;
  o.set("label", label);
  json::Array nodes;
  for (std::size_t i = 0; i < n; ++i) {
    json::Object node;
    node.set("node", i);
    node.set("p_value", fit.preference[i]);
    node.set("mean_egress_share", egressShare[i]);
    nodes.push_back(json::Value(std::move(node)));
  }
  o.set("nodes", json::Value(std::move(nodes)));

  std::vector<double> p(fit.preference.begin(), fit.preference.end());
  std::vector<double> e(egressShare.begin(), egressShare.end());
  json::Object corr;
  corr.set("pearson", stats::PearsonCorrelation(p, e));
  corr.set("spearman", stats::SpearmanCorrelation(p, e));
  o.set("corr_p_vs_egress", json::Value(std::move(corr)));

  // Above-median subset (the paper's observation is about large nodes).
  const double median = stats::Median(e);
  std::vector<double> pTop, eTop;
  for (std::size_t i = 0; i < n; ++i) {
    if (e[i] > median) {
      pTop.push_back(p[i]);
      eTop.push_back(e[i]);
    }
  }
  o.set("corr_above_median_pearson",
        stats::PearsonCorrelation(pTop, eTop));

  // Sec. 5.4: preference vs mean activity level.
  std::vector<double> meanA(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t t = 0; t < fit.activitySeries.cols(); ++t)
      acc += fit.activitySeries(i, t);
    meanA[i] = acc / double(fit.activitySeries.cols());
  }
  json::Object corrA;
  corrA.set("pearson", stats::PearsonCorrelation(p, meanA));
  corrA.set("spearman", stats::SpearmanCorrelation(p, meanA));
  o.set("corr_p_vs_mean_activity", json::Value(std::move(corrA)));
  o.set("finite", AllFinite(p) && AllFinite(e));
  return json::Value(std::move(o));
}

json::Value RunFig8PVsEgress(const ScenarioContext& ctx, std::string&) {
  json::Object body;
  json::Array datasets;
  datasets.push_back(Fig8One(ctx, "geant", /*totem=*/false, 31));
  datasets.push_back(Fig8One(ctx, "totem", /*totem=*/true, 32));
  bool pass = true;
  for (const json::Value& d : datasets) {
    pass = pass && d.asObject().find("finite")->asBool();
  }
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

json::Value Fig9One(const ScenarioContext& ctx, const char* label,
                    bool totem, std::uint64_t canonicalSeed) {
  const WeeklyFitResult r = FitWeekly(ctx, totem, 1, canonicalSeed);
  const core::StableFPFit& fit = r.fits[0];
  const std::size_t n = fit.activitySeries.rows();
  const std::size_t bins = fit.activitySeries.cols();
  const std::size_t binsPerDay = r.data.binsPerWeek / 7;

  // Order nodes by mean activity.
  std::vector<double> meanA(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < bins; ++t)
      meanA[i] += fit.activitySeries(i, t);
    meanA[i] /= double(bins);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return meanA[a] > meanA[b];
  });

  json::Object o;
  o.set("label", label);
  json::Array roles;
  bool finite = true;
  for (const char* role : {"largest", "medium", "smallest"}) {
    std::size_t node = order[0];
    if (role[0] == 'm') node = order[n / 2];
    if (role[0] == 's') node = order[n - 1];
    std::vector<double> series(bins);
    for (std::size_t t = 0; t < bins; ++t)
      series[t] = fit.activitySeries(node, t);

    const std::size_t period = timeseries::DominantPeriod(
        series, binsPerDay / 2, binsPerDay * 3 / 2);
    const double weekendRatio =
        timeseries::WeekendWeekdayRatio(series, binsPerDay);

    json::Object entry;
    entry.set("role", role);
    entry.set("node", node);
    entry.set("mean_activity", meanA[node]);
    entry.set("dominant_period_bins", period);
    entry.set("bins_per_day", binsPerDay);
    entry.set("weekend_weekday_ratio", weekendRatio);
    // The cyclo-stationary fit requires every bin-of-week slot to see
    // positive activity; the NNLS-fitted series of the smallest node
    // can contain exact zeros, so degrade to null fields there.
    std::vector<bool> slotPositive(binsPerDay * 7, false);
    for (std::size_t t = 0; t < bins; ++t) {
      if (series[t] > 0.0) slotPositive[t % (binsPerDay * 7)] = true;
    }
    const bool cycloFittable =
        std::all_of(slotPositive.begin(), slotPositive.end(),
                    [](bool b) { return b; });
    entry.set("cyclo_fit_ok", cycloFittable);
    if (cycloFittable) {
      const auto cyclo =
          timeseries::FitCyclostationary(series, binsPerDay * 7);
      entry.set("cyclo_seasonal_r2",
                timeseries::SeasonalR2(series, cyclo));
      entry.set("cyclo_residual_sigma", cyclo.residualSigma);
    } else {
      entry.set("cyclo_seasonal_r2", json::Value());
      entry.set("cyclo_residual_sigma", json::Value());
    }
    entry.set("activity_series", SeriesJson(series, 14));
    roles.push_back(json::Value(std::move(entry)));
    finite = finite && AllFinite(series);
  }
  o.set("roles", json::Value(std::move(roles)));
  o.set("finite", finite);
  return json::Value(std::move(o));
}

json::Value RunFig9ActivitySeries(const ScenarioContext& ctx,
                                  std::string&) {
  json::Object body;
  json::Array datasets;
  datasets.push_back(Fig9One(ctx, "geant", /*totem=*/false, 41));
  datasets.push_back(Fig9One(ctx, "totem", /*totem=*/true, 42));
  bool pass = true;
  for (const json::Value& d : datasets) {
    pass = pass && d.asObject().find("finite")->asBool();
  }
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

}  // namespace

void RegisterStabilityScenarios() {
  RegisterScenario(
      {"fig5_f_stability", "Fig. 5",
       "optimal f over consecutive Totem weeks",
       "f close to 0.2 and stable across all seven weeks"},
      RunFig5FStability);
  RegisterScenario(
      {"fig6_p_stability", "Fig. 6",
       "optimal P values over weeks (Geant 3wk, Totem 7wk)",
       "P_i stable week-to-week (tiny drift); across nodes highly "
       "variable: a few nodes up to ~10x the typical preference"},
      RunFig6PStability);
  RegisterScenario(
      {"fig7_p_ccdf", "Fig. 7",
       "CCDF of optimal P values with exponential/lognormal fits",
       "long-tailed distribution; lognormal clearly beats exponential "
       "in the tail (few data points, so indicative only)"},
      RunFig7PCcdf);
  RegisterScenario(
      {"fig8_p_vs_egress", "Fig. 8",
       "optimal P values vs normalised egress counts",
       "above the median, egress volume correlates weakly with "
       "preference; P and mean activity are uncorrelated (Sec. 5.4)"},
      RunFig8PVsEgress);
  RegisterScenario(
      {"fig9_activity_series", "Fig. 9",
       "fitted A_i(t) for the largest / medium / smallest node",
       "strong daily periodicity plus a weekend dip; the pattern is "
       "most pronounced for high-activity nodes"},
      RunFig9ActivitySeries);
}

}  // namespace ictm::scenario::detail
