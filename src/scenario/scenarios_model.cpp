// Model-side scenarios: the Sec. 3 worked example (Fig. 2), the
// stable-fP fit-vs-gravity comparison (Fig. 3) and the Sec. 5.1
// degrees-of-freedom table.
#include <cmath>

#include "core/gravity.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"

namespace ictm::scenario::detail {

namespace {

json::Value RunFig2Example(const ScenarioContext&, std::string&) {
  const linalg::Matrix tm = core::BuildFig2ExampleTm();

  json::Object body;
  json::Array rows;
  rows.reserve(3);
  for (std::size_t i = 0; i < 3; ++i) {
    json::Array row;
    row.reserve(3);
    for (std::size_t j = 0; j < 3; ++j) row.push_back(json::Value(tm(i, j)));
    rows.push_back(json::Value(std::move(row)));
  }
  body.set("traffic_matrix_packets", json::Value(std::move(rows)));

  // The gravity assumption requires P[E=A|I=i] to be equal for all i;
  // the worked example shows they differ wildly.
  json::Object conditional;
  const char* names[] = {"A", "B", "C"};
  for (std::size_t i = 0; i < 3; ++i) {
    conditional.set(std::string("P[E=A|I=") + names[i] + "]",
                    core::ConditionalEgressProbability(tm, i, 0));
  }
  conditional.set("P[E=A]", core::EgressProbability(tm, 0));
  body.set("egress_probabilities", json::Value(std::move(conditional)));

  linalg::Vector in(3, 0.0), out(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      in[i] += tm(i, j);
      out[j] += tm(i, j);
    }
  const double gravityErr =
      core::RelL2Temporal(tm, core::GravityPredict(in, out));
  body.set("gravity_rel_l2", gravityErr);

  // The same matrix is an exact IC instance (f = 1/2, equal two-way
  // volumes) — zero reconstruction error.
  core::IcParameters p{0.5, {600.0, 12.0, 6.0}, {1.0, 1.0, 1.0}};
  const double icErr =
      core::RelL2Temporal(tm, core::EvaluateSimplifiedIc(p));
  body.set("ic_rel_l2", icErr);

  body.set("pass", icErr < 1e-9 && gravityErr > 0.1);
  return json::Value(std::move(body));
}

json::Value Fig3One(const ScenarioContext& ctx, const char* label,
                    bool totem, std::uint64_t canonicalSeed) {
  const dataset::Dataset d =
      MakeScenarioDataset(ctx, totem, canonicalSeed);
  const core::StableFPFit fit = core::FitStableFP(d.measured);
  const auto rec = core::ReconstructSeries(fit, d.binSeconds);
  const auto grav = core::GravityPredictSeries(d.measured);
  const auto icErr = core::RelL2TemporalSeries(d.measured, rec);
  const auto gErr = core::RelL2TemporalSeries(d.measured, grav);
  const auto improvement = core::PercentImprovementSeries(gErr, icErr);

  json::Object o;
  o.set("label", label);
  o.set("nodes", d.measured.nodeCount());
  o.set("bins", d.measured.binCount());
  o.set("fitted_f", fit.f);
  o.set("realized_f", d.realizedForwardFraction);
  o.set("rel_l2_gravity", SummaryJson(gErr));
  o.set("rel_l2_ic", SummaryJson(icErr));
  o.set("improvement_pct", SummaryJson(improvement));
  o.set("improvement_series", SeriesJson(improvement, 14));
  o.set("finite", AllFinite(icErr) && AllFinite(gErr));
  return json::Value(std::move(o));
}

json::Value RunFig3ModelFit(const ScenarioContext& ctx, std::string&) {
  json::Object body;
  json::Array datasets;
  datasets.push_back(Fig3One(ctx, "geant_1wk", /*totem=*/false, 1));
  datasets.push_back(Fig3One(ctx, "totem_1wk", /*totem=*/true, 2));
  bool pass = true;
  for (const json::Value& d : datasets) {
    pass = pass && d.asObject().find("finite")->asBool();
  }
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

json::Value RunDofTable(const ScenarioContext& ctx, std::string&) {
  using D = core::DegreesOfFreedom;
  json::Object body;

  // The paper's dataset shapes (constants, independent of scale).
  json::Array table;
  const struct {
    const char* model;
    std::size_t geant, totem;
  } rows[] = {
      {"gravity_2nt_minus_1", D::Gravity(22, 2016), D::Gravity(23, 672)},
      {"time_varying_ic_3nt", D::TimeVaryingIc(22, 2016),
       D::TimeVaryingIc(23, 672)},
      {"stable_f_ic_2nt_plus_1", D::StableFIc(22, 2016),
       D::StableFIc(23, 672)},
      {"stable_fp_ic_nt_plus_n_plus_1", D::StableFPIc(22, 2016),
       D::StableFPIc(23, 672)},
  };
  for (const auto& r : rows) {
    json::Object o;
    o.set("model", r.model);
    o.set("geant_22x2016", r.geant);
    o.set("totem_23x672", r.totem);
    table.push_back(json::Value(std::move(o)));
  }
  body.set("dof_table", json::Value(std::move(table)));

  // Empirical ordering check on a small shared dataset: more DoF must
  // buy a better or equal fit, and stable-fP must beat gravity with
  // roughly half the inputs.
  const std::size_t nodes = ctx.tiny ? 6 : 10;
  const std::size_t bins = ctx.tiny ? 42 : 48;
  dataset::DatasetConfig cfg = GeantConfig(ctx.seed(99));
  const dataset::Dataset d =
      dataset::MakeSmallDataset(nodes, bins, 300.0, cfg);
  const auto stable = core::FitStableFP(d.measured);
  core::FitOptions perBin;
  perBin.gridPoints = 5;
  perBin.gridStride = 1;
  const auto varying = core::FitTimeVarying(d.measured, perBin);
  const auto grav = core::GravityPredictSeries(d.measured);
  const double binCount = double(d.measured.binCount());
  const double gravErr =
      core::Mean(core::RelL2TemporalSeries(d.measured, grav));
  const double stableErr = stable.objective() / binCount;
  const double varyingErr = varying.objective / binCount;

  json::Object empirical;
  empirical.set("nodes", nodes);
  empirical.set("bins", bins);
  empirical.set("gravity_mean_rel_l2", gravErr);
  empirical.set("gravity_dof", D::Gravity(nodes, bins));
  empirical.set("stable_fp_mean_rel_l2", stableErr);
  empirical.set("stable_fp_dof", D::StableFPIc(nodes, bins));
  empirical.set("time_varying_mean_rel_l2", varyingErr);
  empirical.set("time_varying_dof", D::TimeVaryingIc(nodes, bins));
  body.set("empirical_check", json::Value(std::move(empirical)));

  const bool dofOrdering =
      D::StableFPIc(22, 2016) < D::Gravity(22, 2016) &&
      D::Gravity(22, 2016) < D::StableFIc(22, 2016) &&
      D::StableFIc(22, 2016) < D::TimeVaryingIc(22, 2016);
  body.set("pass", dofOrdering && std::isfinite(gravErr) &&
                       std::isfinite(stableErr) &&
                       std::isfinite(varyingErr));
  return json::Value(std::move(body));
}

}  // namespace

void RegisterModelScenarios() {
  RegisterScenario(
      {"fig2_example", "Fig. 2",
       "three-node worked example (Sec. 3)",
       "P[E=A|I=A]~0.50, P[E=A|I=B]~0.93, P[E=A|I=C]~0.95, P[E=A]~0.65; "
       "under gravity these would all be equal"},
      RunFig2Example);
  RegisterScenario(
      {"fig3_model_fit", "Fig. 3",
       "stable-fP IC fit vs gravity, % temporal-error improvement",
       "Geant ~20-25% improvement; Totem ~6-8% (noisier data, dips "
       "below 0); IC has about half the gravity model's degrees of "
       "freedom"},
      RunFig3ModelFit);
  RegisterScenario(
      {"dof_table", "Sec. 5.1 table",
       "degrees-of-freedom accounting",
       "stable-fP has about half the gravity model's inputs yet fits "
       "better; more-flexible IC variants fit at least as well"},
      RunDofTable);
}

}  // namespace ictm::scenario::detail
