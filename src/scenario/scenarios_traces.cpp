// Packet-trace scenario: f measured directly from bidirectional
// packet-header traces (Fig. 4, the D3 Abilene substitute).
#include <cmath>

#include "conngen/fmeasure.hpp"
#include "conngen/packet_trace.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"

namespace ictm::scenario::detail {

namespace {

json::Value RunFig4FTraces(const ScenarioContext& ctx, std::string&) {
  conngen::TraceSimConfig cfg;  // 2-hour trace, like D3
  cfg.connectionsPerSec = 10.0;  // keep the packet buffers modest
  if (ctx.tiny) {
    cfg.durationSec = 900.0;
    cfg.connectionsPerSec = 5.0;
  }
  stats::Rng rng(ctx.seed(42));
  const conngen::LinkTracePair trace =
      conngen::SimulatePacketTraces(cfg, rng);
  const conngen::FMeasurement m =
      conngen::MeasureForwardFraction(trace, 300.0);

  json::Object body;
  body.set("duration_sec", trace.durationSec);
  body.set("packets_a_to_b", trace.aToB.size());
  body.set("packets_b_to_a", trace.bToA.size());
  body.set("unknown_byte_fraction", m.unknownByteFraction);

  json::Array bins;
  for (std::size_t b = 0; b < m.fAB.size(); ++b) {
    json::Object o;
    o.set("bin", b);
    o.set("f_ab", m.fAB[b]);
    o.set("f_ba", m.fBA[b]);
    bins.push_back(json::Value(std::move(o)));
  }
  body.set("per_bin_f", json::Value(std::move(bins)));

  std::vector<double> finAB, finBA;
  for (double v : m.fAB)
    if (std::isfinite(v)) finAB.push_back(v);
  for (double v : m.fBA)
    if (std::isfinite(v)) finBA.push_back(v);
  body.set("f_ab_summary", SummaryJson(finAB));
  body.set("f_ba_summary", SummaryJson(finBA));
  body.set("mix_expected_f", cfg.mix.expectedForwardFraction());

  body.set("pass", !finAB.empty() && !finBA.empty() &&
                       m.unknownByteFraction >= 0.0 &&
                       m.unknownByteFraction <= 1.0);
  return json::Value(std::move(body));
}

}  // namespace

void RegisterTraceScenarios() {
  RegisterScenario(
      {"fig4_f_traces", "Fig. 4",
       "f for both directions of an instrumented link pair over time",
       "f stays in 0.2-0.3 over all 5-min bins; the two directions "
       "track each other; unknown (pre-trace) traffic < 20% of bytes"},
      RunFig4FTraces);
}

}  // namespace ictm::scenario::detail
