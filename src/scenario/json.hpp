// Minimal JSON document model for scenario results.
//
// Design goals, in order: deterministic serialisation (insertion-
// ordered object keys, shortest-round-trip number formatting via
// std::to_chars, no locale dependence), a small surface, and zero
// third-party dependencies.  Two runs that build the same document
// produce byte-identical text — the property the scenario runner's
// threads=N ≡ threads=1 contract rests on.  A strict parser is
// included so tests (and tools) can round-trip result files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

/// Deterministic JSON document model used by the scenario results.
namespace ictm::scenario::json {

class Value;

/// JSON array: an ordered sequence of values.
using Array = std::vector<Value>;

/// JSON object preserving key insertion order — serialising the same
/// build sequence always yields the same text (std::map ordering would
/// also be deterministic, but insertion order keeps the emitted files
/// in the reading order the scenarios intend).
class Object {
 public:
  /// Appends `key` (or overwrites it in place when already present).
  void set(std::string key, Value value);
  /// Pointer to the value stored under `key`, or nullptr.
  const Value* find(const std::string& key) const;
  /// Number of members.
  std::size_t size() const noexcept { return members_.size(); }
  /// The members in insertion order.
  const std::vector<std::pair<std::string, Value>>& members() const
      noexcept {
    return members_;
  }

 private:
  std::vector<std::pair<std::string, Value>> members_;
};

/// A JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so counts serialise without
/// a decimal point.
class Value {
 public:
  /// Constructs null.
  Value() : data_(nullptr) {}
  /// Constructs a boolean.
  Value(bool b) : data_(b) {}
  /// Constructs an integer.
  Value(std::int64_t i) : data_(i) {}
  /// Constructs an integer (convenience for sizes/counts).
  Value(std::size_t i) : data_(static_cast<std::int64_t>(i)) {}
  /// Constructs an integer (convenience for literals).
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  /// Constructs a double; non-finite values serialise as null (JSON
  /// has no NaN/Inf) — scenarios record finiteness checks separately.
  Value(double d) : data_(d) {}
  /// Constructs a string.
  Value(std::string s) : data_(std::move(s)) {}
  /// Constructs a string from a literal.
  Value(const char* s) : data_(std::string(s)) {}
  /// Constructs an array.
  Value(Array a) : data_(std::move(a)) {}
  /// Constructs an object.
  Value(Object o) : data_(std::move(o)) {}

  /// True when the value is null.
  bool isNull() const noexcept {
    return std::holds_alternative<std::nullptr_t>(data_);
  }
  /// True when the value is a boolean.
  bool isBool() const noexcept {
    return std::holds_alternative<bool>(data_);
  }
  /// True when the value is an integer or a double.
  bool isNumber() const noexcept {
    return std::holds_alternative<std::int64_t>(data_) ||
           std::holds_alternative<double>(data_);
  }
  /// True when the value is specifically an integer.
  bool isInteger() const noexcept {
    return std::holds_alternative<std::int64_t>(data_);
  }
  /// True when the value is a string.
  bool isString() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }
  /// True when the value is an array.
  bool isArray() const noexcept {
    return std::holds_alternative<Array>(data_);
  }
  /// True when the value is an object.
  bool isObject() const noexcept {
    return std::holds_alternative<Object>(data_);
  }

  /// The boolean payload; throws when not a bool.
  bool asBool() const;
  /// The numeric payload as a double; throws when not a number.
  double asDouble() const;
  /// The integer payload; throws when not an integer.
  std::int64_t asInt() const;
  /// The string payload; throws when not a string.
  const std::string& asString() const;
  /// The array payload; throws when not an array.
  const Array& asArray() const;
  /// The object payload; throws when not an object.
  const Object& asObject() const;

  /// Serialises the value.  `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits compact single-line JSON.  Output is
  /// byte-deterministic for equal documents.
  std::string dump(int indent = 0) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Array, Object>
      data_;
};

/// Parses a complete JSON text (one value plus whitespace); throws
/// ictm::Error on malformed input or trailing garbage.
Value Parse(const std::string& text);

}  // namespace ictm::scenario::json
