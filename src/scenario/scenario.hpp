// Scenario registry and experiment runner.
//
// Every paper experiment (Figs. 2-13, the DoF table, the ablations)
// plus the repo's own scaling/what-if studies is a *scenario*: a named,
// seeded, thread-aware function producing a deterministic JSON result
// document.  The registry lets `ictm list` enumerate them and
// `ictm run <scenario|all>` execute them — fanning independent
// scenarios out across workers — while the per-figure bench binaries
// remain as thin wrappers over the same entries.
//
// Determinism contract: a scenario's JSON document depends only on
// (scenario, seed offset, scale).  Thread counts, wall-clock timings
// and other run-environment facts never enter the document; they are
// reported through the out-of-band `notes` channel instead.  Hence
// `ictm run all --threads N` writes files bit-identical to
// `--threads 1`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/json.hpp"

/// Scenario registry and experiment runner: every paper figure/table
/// plus the repo's scaling and what-if studies as named, seeded,
/// thread-aware experiments with deterministic JSON results.
namespace ictm::scenario {

/// Execution parameters shared by every scenario.
struct ScenarioContext {
  /// Offset added to each scenario's canonical seeds; 0 reproduces the
  /// paper-figure defaults.
  std::uint64_t seedOffset = 0;
  /// Worker threads for the parallel kernels a scenario exercises
  /// (estimation, synthesis); 0 = all hardware threads.  Never affects
  /// the result document (the kernels are bit-identical by contract).
  std::size_t threads = 1;
  /// Run the reduced 6-node configuration (used by tests and smoke
  /// runs) instead of the full paper-scale one.
  bool tiny = false;
  /// Optional topology override for the topology-aware scenarios
  /// (estimation_scale, topo_scale): a registry spec like
  /// "hierarchy:100" or an `.ictp` file path — see
  /// topology/registry.hpp.  Empty keeps each scenario's canonical
  /// topology.  Like the seed offset this is configuration: result
  /// documents depend on it, thread counts never.
  std::string topology;
  /// Solver backend for the estimation kernels: "auto" (default when
  /// empty), "dense", "sparse" or "cg" — see core/solver_backend.hpp.
  /// Configuration like the seed offset (backends differ in low-order
  /// floating-point bits); the resolved backend is reported through
  /// the notes channel, never inside result documents.
  std::string solver;

  /// The effective seed for a canonical per-scenario seed constant.
  std::uint64_t seed(std::uint64_t canonicalSeed) const {
    return canonicalSeed + seedOffset;
  }
};

/// Registry metadata for one scenario.
struct ScenarioInfo {
  /// Unique registry key, e.g. "fig3_model_fit".
  std::string name;
  /// The paper artifact reproduced, e.g. "Fig. 3" — or "repo" for
  /// scenarios that go beyond the paper.
  std::string artifact;
  /// One-line human title.
  std::string title;
  /// The paper's claim (or this repo's expectation) the scenario checks.
  std::string expectation;
};

/// A scenario body: returns the result document (a JSON object that
/// must contain a boolean "pass") and may append human-readable,
/// run-environment-dependent lines (timings, speedups) to `notes`.
using ScenarioFn = json::Value (*)(const ScenarioContext& ctx,
                                   std::string& notes);

/// Registers a scenario; throws on duplicate names.  The built-in
/// scenarios self-register on first registry access.
void RegisterScenario(ScenarioInfo info, ScenarioFn fn);

/// All registered scenarios in registration (figure) order.
const std::vector<ScenarioInfo>& ListScenarios();

/// True when `name` is a registered scenario.
bool HasScenario(const std::string& name);

/// Outcome of one scenario execution.
struct ScenarioResult {
  /// The scenario's registry metadata.
  ScenarioInfo info;
  /// The deterministic result document (null on error).
  json::Value doc;
  /// Value of the document's "pass" field (false on error).
  bool pass = false;
  /// Non-deterministic notes (timings); never part of `doc`.
  std::string notes;
  /// Non-empty when the scenario threw; holds the exception text.
  std::string error;
  /// Wall-clock runtime in seconds (reporting only).
  double seconds = 0.0;
};

/// Runs one scenario by name; throws when the name is unknown.
/// Exceptions from the scenario body are captured in `result.error`.
ScenarioResult RunScenario(const std::string& name,
                           const ScenarioContext& ctx);

/// Runs the named scenarios, fanning them out across `workers`
/// (0 = all hardware threads); results come back in input order and
/// are independent of the fan-out, because each scenario is seeded
/// from the context alone.
std::vector<ScenarioResult> RunScenarios(
    const std::vector<std::string>& names, const ScenarioContext& ctx,
    std::size_t workers);

/// Writes one pretty-printed JSON file per result into `outDir`
/// (created if missing) as <name>.json, plus a manifest.json listing
/// the run configuration and scenario names.  File contents are
/// bit-identical across thread counts.  Throws on IO failure.
void WriteResultFiles(const std::vector<ScenarioResult>& results,
                      const ScenarioContext& ctx,
                      const std::string& outDir);

/// Entry point shared by the per-figure bench binaries: parses
/// optional flags (--tiny, --threads N, --seed S), runs `name`, prints
/// a header, the pretty JSON document and the notes, and returns the
/// process exit code (0 pass, 1 fail/error).
int RunScenarioMain(const std::string& name, int argc, char** argv);

}  // namespace ictm::scenario
