// What-if scenario: the paper's Sec. 5.5 argument is that the IC
// inputs are physically meaningful dials.  This study turns the
// preference dial for one node — a flash crowd / new content hot spot
// — and quantifies how the whole TM responds, something the gravity
// model cannot express (it would rescale every flow proportionally).
#include <algorithm>
#include <cmath>

#include "core/gravity.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "core/synthesis.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"

namespace ictm::scenario::detail {

namespace {

json::Value RunWhatIfHotspot(const ScenarioContext& ctx, std::string&) {
  core::SynthesisConfig cfg;
  if (ctx.tiny) {
    cfg.nodes = 6;
    cfg.bins = 42;
    cfg.activityModel.profile.binsPerDay = 6;
  } else {
    cfg.nodes = 16;
    cfg.bins = 672;
    cfg.activityModel.profile.binsPerDay = 96;
  }
  cfg.threads = ctx.threads;
  stats::Rng rng(ctx.seed(77));
  const core::SyntheticTm base = core::GenerateSyntheticTm(cfg, rng);

  // Find the node with the median preference — boosting an already-hot
  // node would understate the redistribution.
  std::size_t hotspot = 0;
  {
    std::vector<std::size_t> order(cfg.nodes);
    for (std::size_t i = 0; i < cfg.nodes; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return base.preference[a] < base.preference[b];
              });
    hotspot = order[cfg.nodes / 2];
  }

  json::Object body;
  body.set("nodes", cfg.nodes);
  body.set("bins", cfg.bins);
  body.set("hotspot_node", hotspot);
  body.set("baseline_preference", VectorJson(base.preference));

  const double baseEgress =
      base.series.meanNormalizedEgress()[hotspot];
  body.set("baseline_hotspot_egress_share", baseEgress);

  json::Array sweep;
  bool pass = true;
  double prevEgress = baseEgress;
  for (double boost : {2.0, 5.0, 10.0}) {
    // Re-compose the same activities with the boosted preference —
    // the what-if keeps user populations fixed and only moves content.
    linalg::Vector pref = base.preference;
    pref[hotspot] *= boost;
    double sum = 0.0;
    for (double p : pref) sum += p;
    for (double& p : pref) p /= sum;

    const auto what = core::EvaluateStableFP(
        cfg.f, base.activitySeries, pref, cfg.binSeconds, ctx.threads);

    const double egress = what.meanNormalizedEgress()[hotspot];
    // How far the new TM is from the baseline, and from what a
    // gravity-style proportional rescale would predict.
    const auto shift = core::RelL2TemporalSeries(base.series, what);
    const auto grav = core::GravityPredictSeries(what);
    const auto gravErr = core::RelL2TemporalSeries(what, grav);

    json::Object row;
    row.set("preference_boost", boost);
    row.set("hotspot_preference_share", pref[hotspot]);
    row.set("hotspot_egress_share", egress);
    row.set("tm_shift_rel_l2", SummaryJson(shift));
    row.set("gravity_fit_rel_l2", SummaryJson(gravErr));
    // The dial must actually move traffic toward the hot spot,
    // monotonically in the boost.
    pass = pass && egress > prevEgress && AllFinite(shift);
    prevEgress = egress;
    sweep.push_back(json::Value(std::move(row)));
  }
  body.set("boost_sweep", json::Value(std::move(sweep)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

}  // namespace

void RegisterWhatIfScenarios() {
  RegisterScenario(
      {"whatif_hotspot", "repo",
       "what-if study: preference hot spot (flash crowd)",
       "boosting one node's preference pulls egress share toward it "
       "monotonically while activities stay fixed — the IC dials "
       "express a scenario the gravity model cannot"},
      RunWhatIfHotspot);
}

}  // namespace ictm::scenario::detail
