// Scaling scenarios: the thread fan-outs of the estimation and
// synthesis engines must be bit-identical for every thread count, and
// should speed up on multicore hosts.  The correctness facts go into
// the (deterministic) result document; wall-clock timings are
// run-environment facts and go to the notes channel only, keeping
// `ictm run all --threads N` output bit-identical to `--threads 1`.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/estimation.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "core/synthesis.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"

namespace ictm::scenario::detail {

namespace {

/// Thread counts the determinism checks compare.  Fixed (rather than
/// taken from the context) so the result document does not depend on
/// the run environment.
constexpr std::size_t kBaselineThreads = 1;
constexpr std::size_t kFanoutThreads = 4;

void AppendTimingNote(std::string& notes, const char* what, double sec1,
                      double secN) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s: %.3f s at %zu thread(s), %.3f s at %zu "
                "(speedup %.2fx)\n",
                what, sec1, kBaselineThreads, secN, kFanoutThreads,
                secN > 0.0 ? sec1 / secN : 0.0);
  notes += buf;
}

json::Value RunEstimationScale(const ScenarioContext& ctx,
                               std::string& notes) {
  // --topology substitutes any registry spec or .ictp file for the
  // canonical backbone (configuration, like the seed offset).
  const topology::Graph g =
      !ctx.topology.empty()
          ? topology::MakeTopology(ctx.topology, ctx.seed(91))
          : (ctx.tiny ? topology::MakeRing(6, 2)
                      : topology::MakeGeant22());
  const std::size_t n = g.nodeCount();
  const std::size_t bins = ctx.tiny ? 24 : 504;
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  // Diurnally varying random traffic plus gravity priors from the
  // marginals (the realistic worst case for the refinement: every OD
  // pair active, dense prior support).
  stats::Rng rng(ctx.seed(42));
  traffic::TrafficMatrixSeries truth(n, bins, 300.0);
  for (std::size_t t = 0; t < bins; ++t) {
    const double diurnal =
        1.0 + 0.5 * std::sin(2.0 * M_PI * double(t) / 288.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        truth(t, i, j) = diurnal * rng.uniform(1e6, 1e7);
  }
  const traffic::TrafficMatrixSeries priors =
      core::GravityPredictSeries(truth);

  core::EstimationOptions options;
  options.solver = ContextSolverKind(ctx);
  notes += SolverNote(options.solver,
                      core::AugmentedRowCount(
                          routing.rows(), n,
                          options.useMarginalConstraints));
  options.threads = kBaselineThreads;
  auto t0 = StartTimer();
  const auto est1 = core::EstimateSeries(routing, truth, priors, options);
  const double sec1 = SecondsSince(t0);

  options.threads = kFanoutThreads;
  t0 = StartTimer();
  const auto estN = core::EstimateSeries(routing, truth, priors, options);
  const double secN = SecondsSince(t0);
  AppendTimingNote(notes, "EstimateSeries", sec1, secN);

  const bool identical = BitIdentical(est1, estN);
  const auto errEst = core::RelL2TemporalSeries(truth, est1);
  const auto errPrior = core::RelL2TemporalSeries(truth, priors);

  json::Object body;
  body.set("topology", ctx.topology.empty()
                           ? (ctx.tiny ? "ring:6:2" : "geant22")
                           : ctx.topology);
  body.set("nodes", n);
  body.set("links", g.linkCount());
  body.set("bins", bins);
  body.set("threads_compared", json::Array{json::Value(kBaselineThreads),
                                           json::Value(kFanoutThreads)});
  body.set("bit_identical_across_threads", identical);
  body.set("est_err_summary", SummaryJson(errEst));
  body.set("prior_err_summary", SummaryJson(errPrior));
  body.set("improvement_pct_mean",
           core::Mean(core::PercentImprovementSeries(errPrior, errEst)));
  body.set("pass", identical && AllFinite(errEst));
  return json::Value(std::move(body));
}

json::Value RunSynthesisScale(const ScenarioContext& ctx,
                              std::string& notes) {
  core::SynthesisConfig cfg;
  if (ctx.tiny) {
    cfg.nodes = 6;
    cfg.bins = 42;
    cfg.activityModel.profile.binsPerDay = 6;
  } else {
    cfg.nodes = 22;
    cfg.bins = 2016;  // one week of 5-minute bins
  }

  cfg.threads = kBaselineThreads;
  stats::Rng rng1(ctx.seed(7));
  auto t0 = StartTimer();
  const core::SyntheticTm synth1 = core::GenerateSyntheticTm(cfg, rng1);
  const double sec1 = SecondsSince(t0);

  cfg.threads = kFanoutThreads;
  stats::Rng rngN(ctx.seed(7));
  t0 = StartTimer();
  const core::SyntheticTm synthN = core::GenerateSyntheticTm(cfg, rngN);
  const double secN = SecondsSince(t0);
  AppendTimingNote(notes, "GenerateSyntheticTm", sec1, secN);

  bool identical = BitIdentical(synth1.series, synthN.series);
  for (std::size_t i = 0; i < synth1.preference.size(); ++i) {
    identical = identical &&
                synth1.preference[i] == synthN.preference[i];
  }
  for (std::size_t i = 0; i < cfg.nodes && identical; ++i) {
    for (std::size_t t = 0; t < cfg.bins; ++t) {
      if (synth1.activitySeries(i, t) != synthN.activitySeries(i, t)) {
        identical = false;
        break;
      }
    }
  }

  std::vector<double> totals(synth1.series.binCount());
  for (std::size_t t = 0; t < totals.size(); ++t)
    totals[t] = synth1.series.total(t);

  json::Object body;
  body.set("nodes", cfg.nodes);
  body.set("bins", cfg.bins);
  body.set("f", cfg.f);
  body.set("threads_compared", json::Array{json::Value(kBaselineThreads),
                                           json::Value(kFanoutThreads)});
  body.set("bit_identical_across_threads", identical);
  body.set("total_traffic_summary", SummaryJson(totals));
  body.set("preference", VectorJson(synth1.preference));
  body.set("pass", identical && AllFinite(totals) &&
                       synth1.series.isValid());
  return json::Value(std::move(body));
}

}  // namespace

void RegisterScaleScenarios() {
  RegisterScenario(
      {"estimation_scale", "repo",
       "estimation thread fan-out: determinism and scaling",
       "EstimateSeries is bit-identical for every thread count and "
       "speeds up on multicore hosts (see also "
       "bench_estimation_scale for the legacy-baseline comparison)"},
      RunEstimationScale);
  RegisterScenario(
      {"synthesis_scale", "repo",
       "synthesis thread fan-out: determinism and scaling",
       "GenerateSyntheticTm is bit-identical for every thread count; "
       "per-node activity generation and per-bin composition fan out "
       "across workers"},
      RunSynthesisScale);
}

}  // namespace ictm::scenario::detail
