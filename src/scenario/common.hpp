// Shared setup for the built-in scenarios: the canonical dataset
// configurations the bench harnesses used (peak activity reduced from
// the realistic default to keep each scenario under a minute — the
// gravity/IC comparison is insensitive to absolute scale), their tiny
// 6-node counterparts for tests, and JSON builders for the summary
// statistics every figure reports.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/estimation.hpp"
#include "core/fit.hpp"
#include "dataset/datasets.hpp"
#include "scenario/json.hpp"
#include "scenario/scenario.hpp"

namespace ictm::scenario {

/// The context's solver-backend request as a core::SolverKind (empty
/// string = auto); throws on an unknown name — the CLI validates
/// before any scenario runs, so this only fires on programmatic use.
core::SolverKind ContextSolverKind(const ScenarioContext& ctx);

/// One "solver backend: ..." notes line: the requested kind plus what
/// `auto` resolved to for a system with `rows` augmented rows.
std::string SolverNote(core::SolverKind kind, std::size_t rows);

/// Starts a notes-channel timer.  StartTimer/SecondsSince are the only
/// sanctioned wall-clock reads in src/ (see ICTM-D002 in
/// docs/ARCHITECTURE.md "Correctness tooling"): timings feed the
/// out-of-band notes channel, never a result JSON.
std::chrono::steady_clock::time_point StartTimer();

/// Seconds elapsed since `t0` (for the notes-channel timings).
double SecondsSince(std::chrono::steady_clock::time_point t0);

/// True when both series have the same shape and every element
/// compares exactly equal — the check behind each threads=N ≡
/// threads=1 contract.
bool BitIdentical(const traffic::TrafficMatrixSeries& a,
                  const traffic::TrafficMatrixSeries& b);

/// Géant-like dataset configuration shared across scenarios.
dataset::DatasetConfig GeantConfig(std::uint64_t seed);
/// Totem-like dataset configuration shared across scenarios.
dataset::DatasetConfig TotemConfig(std::uint64_t seed);

/// Scale-aware dataset builder: full scale uses the 22-node Géant-like
/// or 23-node Totem-like paper shapes; tiny uses a 6-node, 42-bins-
/// per-week equivalent so every scenario also runs in tests.
dataset::Dataset MakeScenarioDataset(const ScenarioContext& ctx,
                                     bool totem,
                                     std::uint64_t canonicalSeed,
                                     std::size_t weeks = 1);

/// Generates `weeks` of data and fits the stable-fP model to each week
/// separately (used by Figs. 5-9).
struct WeeklyFitResult {
  /// The generated dataset spanning all weeks.
  dataset::Dataset data;
  /// One stable-fP fit per week.
  std::vector<core::StableFPFit> fits;
};

/// Builds the dataset and runs the per-week fits.
WeeklyFitResult FitWeekly(const ScenarioContext& ctx, bool totem,
                          std::size_t weeks, std::uint64_t canonicalSeed);

/// One entry of the generated-backbone node-count sweep shared by the
/// topo_scale scenario and `bench_estimation_scale --topo-sweep`.
struct TopoSweepEntry {
  std::string spec;  ///< topology registry spec, e.g. "hierarchy:50"
  std::size_t bins;  ///< synthetic bins to estimate
};

/// The canonical full-scale sweep: hierarchical backbones at 22, 50,
/// 100 and 200 nodes, bin counts shrinking as n² grows so a run stays
/// under a minute.
const std::vector<TopoSweepEntry>& DefaultTopoSweep();

/// Measurements from one sweep entry run through the compressed
/// estimation path at two thread counts under one solver backend.
struct TopoSweepRun {
  std::size_t nodes = 0;          ///< resolved node count
  std::size_t links = 0;          ///< directed link count
  std::size_t routingRows = 0;    ///< routing CSR rows (= links)
  std::size_t routingNnz = 0;     ///< routing CSR non-zeros
  double routingDensityPct = 0.0; ///< non-zero fraction in percent
  double secBaseline = 0.0;       ///< wall clock at baselineThreads
  double secFanout = 0.0;         ///< wall clock at fanoutThreads
  bool bitIdentical = false;      ///< fan-out ≡ baseline bit for bit
  std::vector<double> errEst;     ///< per-bin RelL2 of the estimate
  std::vector<double> errPrior;   ///< per-bin RelL2 of the gravity prior
  /// The baseline-thread estimates, for cross-backend comparisons.
  traffic::TrafficMatrixSeries estimates{1, 1};
};

/// Resolves `entry.spec` (seeded generators use `topologySeed`),
/// synthesizes diurnally varying random traffic from `trafficSeed`
/// with gravity priors, and runs the CSR-only EstimateSeries at the
/// two thread counts under `solver`.  The dense routing matrix is
/// never materialised — the point of the sweep at n = 200.
TopoSweepRun RunTopoSweepEntry(const TopoSweepEntry& entry,
                               std::uint64_t topologySeed,
                               std::uint64_t trafficSeed,
                               std::size_t baselineThreads,
                               std::size_t fanoutThreads,
                               core::SolverKind solver =
                                   core::SolverKind::kAuto);

/// {"mean","p10","p50","p90","min","max"} of a sample.
json::Value SummaryJson(const std::vector<double>& xs);

/// Downsampled rendering of a series: up to `points` evenly spaced
/// [index, value] pairs plus the full length, mirroring the benches'
/// PrintSeries.
json::Value SeriesJson(const std::vector<double>& xs,
                       std::size_t points = 16);

/// A numeric vector as a JSON array (linalg::Vector is an alias of
/// std::vector<double>, so this covers both).
json::Value VectorJson(const std::vector<double>& xs);

/// True when every element is finite.
bool AllFinite(const std::vector<double>& xs);

}  // namespace ictm::scenario
