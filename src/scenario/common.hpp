// Shared setup for the built-in scenarios: the canonical dataset
// configurations the bench harnesses used (peak activity reduced from
// the realistic default to keep each scenario under a minute — the
// gravity/IC comparison is insensitive to absolute scale), their tiny
// 6-node counterparts for tests, and JSON builders for the summary
// statistics every figure reports.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/fit.hpp"
#include "dataset/datasets.hpp"
#include "scenario/json.hpp"
#include "scenario/scenario.hpp"

namespace ictm::scenario {

/// Seconds elapsed since `t0` (for the notes-channel timings).
double SecondsSince(std::chrono::steady_clock::time_point t0);

/// True when both series have the same shape and every element
/// compares exactly equal — the check behind each threads=N ≡
/// threads=1 contract.
bool BitIdentical(const traffic::TrafficMatrixSeries& a,
                  const traffic::TrafficMatrixSeries& b);

/// Géant-like dataset configuration shared across scenarios.
dataset::DatasetConfig GeantConfig(std::uint64_t seed);
/// Totem-like dataset configuration shared across scenarios.
dataset::DatasetConfig TotemConfig(std::uint64_t seed);

/// Scale-aware dataset builder: full scale uses the 22-node Géant-like
/// or 23-node Totem-like paper shapes; tiny uses a 6-node, 42-bins-
/// per-week equivalent so every scenario also runs in tests.
dataset::Dataset MakeScenarioDataset(const ScenarioContext& ctx,
                                     bool totem,
                                     std::uint64_t canonicalSeed,
                                     std::size_t weeks = 1);

/// Generates `weeks` of data and fits the stable-fP model to each week
/// separately (used by Figs. 5-9).
struct WeeklyFitResult {
  /// The generated dataset spanning all weeks.
  dataset::Dataset data;
  /// One stable-fP fit per week.
  std::vector<core::StableFPFit> fits;
};

/// Builds the dataset and runs the per-week fits.
WeeklyFitResult FitWeekly(const ScenarioContext& ctx, bool totem,
                          std::size_t weeks, std::uint64_t canonicalSeed);

/// {"mean","p10","p50","p90","min","max"} of a sample.
json::Value SummaryJson(const std::vector<double>& xs);

/// Downsampled rendering of a series: up to `points` evenly spaced
/// [index, value] pairs plus the full length, mirroring the benches'
/// PrintSeries.
json::Value SeriesJson(const std::vector<double>& xs,
                       std::size_t points = 16);

/// A numeric vector as a JSON array (linalg::Vector is an alias of
/// std::vector<double>, so this covers both).
json::Value VectorJson(const std::vector<double>& xs);

/// True when every element is finite.
bool AllFinite(const std::vector<double>& xs);

}  // namespace ictm::scenario
