// TM-estimation scenarios (paper Sec. 6): activity recovery from
// marginals (Fig. 10 companion study), and the three prior scenarios —
// all parameters measured (Fig. 11), stable-fP calibrated on an
// earlier week (Fig. 12), stable-f only (Fig. 13).
#include <cmath>

#include "core/estimation.hpp"
#include "core/fit.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "core/priors.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"
#include "stats/summary.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"

namespace ictm::scenario::detail {

namespace {

/// The canned topology matching a scenario dataset: Géant-22/Totem-23
/// at full scale, a 6-node ring-with-chords at tiny scale.
topology::Graph ScenarioTopology(const ScenarioContext& ctx, bool totem) {
  if (ctx.tiny) return topology::MakeRing(6, 2);
  return totem ? topology::MakeTotem23() : topology::MakeGeant22();
}

json::Value EstimationComparison(
    const traffic::TrafficMatrixSeries& ref,
    const traffic::TrafficMatrixSeries& icPrior,
    const traffic::TrafficMatrixSeries& gravPrior,
    const linalg::CsrMatrix& routing, const ScenarioContext& ctx,
    const char* icLabel, bool* finiteOut) {
  core::EstimationOptions options;
  options.threads = ctx.threads;
  options.solver = ContextSolverKind(ctx);
  const auto estIc = core::EstimateSeries(routing, ref, icPrior, options);
  const auto estGrav =
      core::EstimateSeries(routing, ref, gravPrior, options);

  const auto icErr = core::RelL2TemporalSeries(ref, estIc);
  const auto gravErr = core::RelL2TemporalSeries(ref, estGrav);
  const auto improvement = core::PercentImprovementSeries(gravErr, icErr);

  json::Object o;
  o.set("links", routing.rows());
  o.set("est_err_gravity_prior", SummaryJson(gravErr));
  o.set(std::string("est_err_") + icLabel, SummaryJson(icErr));
  o.set("improvement_pct", SummaryJson(improvement));
  o.set("improvement_series", SeriesJson(improvement, 14));
  *finiteOut = AllFinite(icErr) && AllFinite(gravErr);
  return json::Value(std::move(o));
}

json::Value Fig10One(const ScenarioContext& ctx, const char* label,
                     bool totem, std::uint64_t canonicalSeed) {
  // Fit on one week, then re-estimate the activities from the same
  // week's marginals alone via Atilde = pinv(Q*Phi) * QX (Eqs. 7-9) —
  // how much of A(t) the stable-fP prior machinery actually recovers.
  const dataset::Dataset d =
      MakeScenarioDataset(ctx, totem, canonicalSeed);
  const core::StableFPFit fit = core::FitStableFP(d.measured);
  const core::MarginalSeries margs = core::ExtractMarginals(d.measured);
  linalg::Matrix atilde;
  core::StableFPPrior(fit.f, fit.preference, margs, d.binSeconds,
                      &atilde);

  const std::size_t n = fit.activitySeries.rows();
  const std::size_t bins = fit.activitySeries.cols();
  json::Object o;
  o.set("label", label);
  o.set("nodes", n);
  o.set("bins", bins);
  o.set("fitted_f", fit.f);

  // Per-node relative L2 error of the recovered activity series.
  std::vector<double> nodeErr(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double num = 0.0, den = 0.0;
    for (std::size_t t = 0; t < bins; ++t) {
      const double a = fit.activitySeries(i, t);
      const double b = atilde(i, t);
      num += (a - b) * (a - b);
      den += a * a;
    }
    nodeErr[i] = den > 0.0 ? std::sqrt(num / den) : 0.0;
  }
  o.set("per_node_activity_rel_l2", SummaryJson(nodeErr));

  // Cross-node correlation of mean levels (are big nodes recovered
  // big?).
  std::vector<double> meanFit(n, 0.0), meanTilde(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < bins; ++t) {
      meanFit[i] += fit.activitySeries(i, t);
      meanTilde[i] += atilde(i, t);
    }
    meanFit[i] /= double(bins);
    meanTilde[i] /= double(bins);
  }
  o.set("mean_level_pearson",
        stats::PearsonCorrelation(meanFit, meanTilde));
  o.set("finite", AllFinite(nodeErr));
  return json::Value(std::move(o));
}

json::Value RunFig10ActivityEstimates(const ScenarioContext& ctx,
                                      std::string&) {
  json::Object body;
  json::Array datasets;
  datasets.push_back(Fig10One(ctx, "geant", /*totem=*/false, 45));
  datasets.push_back(Fig10One(ctx, "totem", /*totem=*/true, 46));
  bool pass = true;
  for (const json::Value& d : datasets) {
    pass = pass && d.asObject().find("finite")->asBool();
  }
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

json::Value Fig11One(const ScenarioContext& ctx, const char* label,
                     bool totem, std::uint64_t canonicalSeed,
                     bool* passOut) {
  const dataset::Dataset d =
      MakeScenarioDataset(ctx, totem, canonicalSeed);
  const topology::Graph g = ScenarioTopology(ctx, totem);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  // As in the paper, the reference TM is the measured (netflow) one.
  const traffic::TrafficMatrixSeries& ref = d.measured;

  // Measured-parameter IC prior: fit on this same week (Sec. 6.1 is
  // explicitly the best case / upper bound).
  const core::StableFPFit fit = core::FitStableFP(ref);
  const auto icPrior = core::ReconstructSeries(fit, d.binSeconds);
  const auto gravPrior = core::GravityPredictSeries(ref);

  bool finite = false;
  json::Value cmp = EstimationComparison(ref, icPrior, gravPrior, routing,
                                         ctx, "ic_prior", &finite);
  json::Object o;
  o.set("label", label);
  o.set("nodes", ref.nodeCount());
  o.set("bins", ref.binCount());
  o.set("fitted_f", fit.f);
  o.set("comparison", std::move(cmp));
  *passOut = finite;
  return json::Value(std::move(o));
}

json::Value RunFig11EstMeasured(const ScenarioContext& ctx,
                                std::string&) {
  json::Object body;
  json::Array datasets;
  bool passA = false, passB = false;
  datasets.push_back(
      Fig11One(ctx, "geant", /*totem=*/false, 51, &passA));
  datasets.push_back(
      Fig11One(ctx, "totem", /*totem=*/true, 52, &passB));
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", passA && passB);
  return json::Value(std::move(body));
}

json::Value Fig12One(const ScenarioContext& ctx, const char* label,
                     bool totem, std::size_t calibrationLag,
                     std::uint64_t canonicalSeed, bool* passOut) {
  const dataset::Dataset d = MakeScenarioDataset(
      ctx, totem, canonicalSeed, /*weeks=*/calibrationLag + 1);
  const topology::Graph g = ScenarioTopology(ctx, totem);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  const std::size_t bpw = d.binsPerWeek;
  const auto calibrationWeek = d.measured.slice(0, bpw);
  const auto targetWeek = d.measured.slice(calibrationLag * bpw, bpw);

  // Calibrate (f, P) on the old week; build priors for the target week
  // from its marginals only.
  const core::StableFPFit fit = core::FitStableFP(calibrationWeek);
  const core::MarginalSeries margs = core::ExtractMarginals(targetWeek);
  const auto icPrior =
      core::StableFPPrior(fit.f, fit.preference, margs, d.binSeconds);
  const auto gravPrior = core::GravityPriorSeries(margs, d.binSeconds);

  bool finite = false;
  json::Value cmp =
      EstimationComparison(targetWeek, icPrior, gravPrior, routing, ctx,
                           "stable_fp_prior", &finite);
  json::Object o;
  o.set("label", label);
  o.set("calibration_weeks_back", calibrationLag);
  o.set("calibrated_f", fit.f);
  o.set("comparison", std::move(cmp));
  *passOut = finite;
  return json::Value(std::move(o));
}

json::Value RunFig12EstStableFP(const ScenarioContext& ctx,
                                std::string&) {
  json::Object body;
  json::Array datasets;
  bool passA = false, passB = false;
  datasets.push_back(Fig12One(ctx, "geant", /*totem=*/false,
                              /*calibrationLag=*/1, 61, &passA));
  datasets.push_back(Fig12One(ctx, "totem", /*totem=*/true,
                              /*calibrationLag=*/2, 62, &passB));
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", passA && passB);
  return json::Value(std::move(body));
}

json::Value Fig13One(const ScenarioContext& ctx, const char* label,
                     bool totem, std::uint64_t canonicalSeed,
                     bool* passOut) {
  const dataset::Dataset d =
      MakeScenarioDataset(ctx, totem, canonicalSeed, /*weeks=*/2);
  const topology::Graph g = ScenarioTopology(ctx, totem);
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  const std::size_t bpw = d.binsPerWeek;
  const auto calibrationWeek = d.measured.slice(0, bpw);
  const auto targetWeek = d.measured.slice(bpw, bpw);

  // Only f is calibrated (from the previous week's fit).
  const core::StableFPFit fit = core::FitStableFP(calibrationWeek);
  const core::MarginalSeries margs = core::ExtractMarginals(targetWeek);
  const auto icPrior = core::StableFPrior(fit.f, margs, d.binSeconds);
  const auto gravPrior = core::GravityPriorSeries(margs, d.binSeconds);

  bool finite = false;
  json::Value cmp =
      EstimationComparison(targetWeek, icPrior, gravPrior, routing, ctx,
                           "stable_f_prior", &finite);
  json::Object o;
  o.set("label", label);
  o.set("calibrated_f", fit.f);
  o.set("comparison", std::move(cmp));
  *passOut = finite;
  return json::Value(std::move(o));
}

json::Value RunFig13EstStableF(const ScenarioContext& ctx, std::string&) {
  json::Object body;
  json::Array datasets;
  bool passA = false, passB = false;
  datasets.push_back(
      Fig13One(ctx, "geant", /*totem=*/false, 71, &passA));
  datasets.push_back(
      Fig13One(ctx, "totem", /*totem=*/true, 72, &passB));
  body.set("datasets", json::Value(std::move(datasets)));
  body.set("pass", passA && passB);
  return json::Value(std::move(body));
}

}  // namespace

void RegisterEstimationScenarios() {
  RegisterScenario(
      {"fig10_activity_estimates", "Sec. 6.2 (Fig. 10 companion)",
       "activity recovery from marginals via pinv(Q*Phi)",
       "the marginal-only estimate Atilde tracks the directly fitted "
       "activities, so the stable-fP prior can reconstruct A(t) it "
       "never observed"},
      RunFig10ActivityEstimates);
  RegisterScenario(
      {"fig11_est_measured", "Fig. 11",
       "TM estimation improvement, all IC parameters measured (Sec. 6.1)",
       "Geant ~10-20% improvement over the gravity prior, Totem "
       "~20-30%; this scenario bounds the gain the IC model can "
       "deliver"},
      RunFig11EstMeasured);
  RegisterScenario(
      {"fig12_est_stable_fp", "Fig. 12",
       "TM estimation with the stable-fP prior (f, P from an earlier "
       "week; Sec. 6.2)",
       "~10-20% improvement over gravity whether calibration is one "
       "week back (Geant) or two weeks back (Totem)"},
      RunFig12EstStableFP);
  RegisterScenario(
      {"fig13_est_stable_f", "Fig. 13",
       "TM estimation with the stable-f prior (only f known; Sec. 6.3)",
       "Geant ~8% improvement; Totem only 1-2% — still preferable to "
       "the gravity prior even with minimal side information"},
      RunFig13EstStableF);
}

}  // namespace ictm::scenario::detail
