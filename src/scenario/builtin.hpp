// Internal: registration hooks for the built-in scenario translation
// units.  Explicit registration (instead of static initialisers) keeps
// the scenarios alive inside the static library — the linker would
// otherwise drop translation units nothing references.
#pragma once

/// Internal registration hooks for the built-in scenarios.
namespace ictm::scenario::detail {

/// Registers fig2_example, fig3_model_fit and dof_table.
void RegisterModelScenarios();
/// Registers fig4_f_traces.
void RegisterTraceScenarios();
/// Registers fig5-fig9 (weekly stability and activity structure).
void RegisterStabilityScenarios();
/// Registers fig10-fig13 (TM estimation with the IC priors).
void RegisterEstimationScenarios();
/// Registers the Sec. 5.5/5.6 ablations.
void RegisterAblationScenarios();
/// Registers the estimation/synthesis scaling scenarios.
void RegisterScaleScenarios();
/// Registers the topology-workbench scaling scenario (topo_scale).
void RegisterTopologyScenarios();
/// Registers the streaming-subsystem scenarios.
void RegisterStreamScenarios();
/// Registers the what-if studies.
void RegisterWhatIfScenarios();

}  // namespace ictm::scenario::detail
