// Ablation scenarios: routing asymmetry vs the simplified IC model
// (Sec. 5.6) and the synthetic-TM generation dials (Sec. 5.5).
#include <cmath>

#include "core/general_fit.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "core/synthesis.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"
#include "stats/summary.hpp"

namespace ictm::scenario::detail {

namespace {

json::Value RunAsymmetryAblation(const ScenarioContext& ctx,
                                 std::string&) {
  const std::size_t nodes = ctx.tiny ? 6 : 14;
  const std::size_t bins = ctx.tiny ? 42 : 336;
  const std::vector<double> sweep =
      ctx.tiny ? std::vector<double>{0.0, 0.25, 0.5}
               : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  json::Object body;
  json::Array rows;
  bool pass = true;
  for (double asym : sweep) {
    dataset::DatasetConfig cfg = GeantConfig(ctx.seed(91));
    cfg.routingAsymmetry = asym;
    cfg.netflowSampling = false;   // isolate the asymmetry effect
    cfg.pairFJitterSigma = 0.3;    // mild jitter so hot-potato dominates
    const dataset::Dataset d =
        dataset::MakeSmallDataset(nodes, bins, 300.0, cfg);
    const core::GeneralIcFit fit = core::FitGeneralIc(d.measured);
    const auto grav = core::GravityPredictSeries(d.measured);
    const double binCount = double(d.measured.binCount());

    // Mean off-diagonal fitted forward fraction.
    double meanF = 0.0;
    std::size_t cnt = 0;
    const std::size_t n = fit.forwardFractions.rows();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (i != j) {
          meanF += fit.forwardFractions(i, j);
          ++cnt;
        }
    meanF /= double(cnt);

    json::Object row;
    row.set("asymmetric_fraction", asym);
    row.set("simplified_mean_rel_l2", fit.simplifiedObjective / binCount);
    row.set("general_ic_mean_rel_l2", fit.objective / binCount);
    row.set("gravity_mean_rel_l2",
            core::Mean(core::RelL2TemporalSeries(d.measured, grav)));
    row.set("mean_fitted_f", meanF);
    row.set("fitted_asymmetry",
            core::ForwardFractionAsymmetry(fit.forwardFractions));
    pass = pass && std::isfinite(meanF) &&
           std::isfinite(fit.objective) &&
           fit.objective <= fit.simplifiedObjective + 1e-9;
    rows.push_back(json::Value(std::move(row)));
  }
  body.set("nodes", nodes);
  body.set("bins", bins);
  body.set("sweep", json::Value(std::move(rows)));
  body.set("pass", pass);
  return json::Value(std::move(body));
}

core::SynthesisConfig AblationBaseConfig(const ScenarioContext& ctx) {
  core::SynthesisConfig cfg;
  if (ctx.tiny) {
    cfg.nodes = 6;
    cfg.bins = 42;
    cfg.activityModel.profile.binsPerDay = 6;
  } else {
    cfg.nodes = 16;
    cfg.bins = 672;  // one week of 15-min bins
    cfg.activityModel.profile.binsPerDay = 96;
  }
  cfg.threads = ctx.threads;
  return cfg;
}

/// Mean |X_ij - X_ji| / (X_ij + X_ji) over pairs and bins: how
/// two-way-asymmetric the traffic is.
double Asymmetry(const traffic::TrafficMatrixSeries& s) {
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t < s.binCount(); ++t) {
    for (std::size_t i = 0; i < s.nodeCount(); ++i) {
      for (std::size_t j = i + 1; j < s.nodeCount(); ++j) {
        const double a = s(t, i, j), b = s(t, j, i);
        if (a + b > 0) {
          acc += std::abs(a - b) / (a + b);
          ++count;
        }
      }
    }
  }
  return acc / double(count);
}

json::Value RunSynthesisAblation(const ScenarioContext& ctx,
                                 std::string&) {
  json::Object body;
  bool pass = true;

  // Dial 1: f controls directional asymmetry (what-if: application
  // mix); asymmetry falls to 0 at f = 0.5, and the fitter should
  // round-trip the dialled value.
  json::Array fSweep;
  for (double f : {0.05, 0.15, 0.25, 0.35, 0.45}) {
    core::SynthesisConfig cfg = AblationBaseConfig(ctx);
    cfg.f = f;
    stats::Rng rng(ctx.seed(81));
    const auto synth = core::GenerateSyntheticTm(cfg, rng);
    const auto fit = core::FitStableFP(synth.series);
    json::Object row;
    row.set("f", f);
    row.set("tm_asymmetry", Asymmetry(synth.series));
    row.set("fit_recovers_f", fit.f);
    pass = pass && std::isfinite(fit.f);
    fSweep.push_back(json::Value(std::move(row)));
  }
  body.set("f_sweep", json::Value(std::move(fSweep)));

  // Dial 2: preference spread (hot-spot concentration).
  json::Array sigmaSweep;
  for (double sigma : {0.5, 1.0, 1.7, 2.4}) {
    core::SynthesisConfig cfg = AblationBaseConfig(ctx);
    cfg.preferenceSigma = sigma;
    stats::Rng rng(ctx.seed(82));
    const auto synth = core::GenerateSyntheticTm(cfg, rng);
    std::vector<double> p(synth.preference.begin(),
                          synth.preference.end());
    const auto grav = core::GravityPredictSeries(synth.series);
    json::Object row;
    row.set("sigma", sigma);
    row.set("max_p_over_median", stats::Quantile(p, 1.0) / stats::Median(p));
    row.set("gravity_mean_rel_l2",
            core::Mean(core::RelL2TemporalSeries(synth.series, grav)));
    sigmaSweep.push_back(json::Value(std::move(row)));
  }
  body.set("preference_sigma_sweep", json::Value(std::move(sigmaSweep)));

  // Dial 3: weekend depth of the activity model (user-population dial).
  json::Array weekendSweep;
  for (double wf : {0.3, 0.55, 0.8, 1.0}) {
    core::SynthesisConfig cfg = AblationBaseConfig(ctx);
    cfg.activityModel.profile.weekendFactor = wf;
    stats::Rng rng(ctx.seed(83));
    const auto synth = core::GenerateSyntheticTm(cfg, rng);
    std::vector<double> totals(synth.series.binCount());
    for (std::size_t t = 0; t < totals.size(); ++t)
      totals[t] = synth.series.total(t);
    double weekend = 0.0, weekday = 0.0;
    const std::size_t bpd = cfg.activityModel.profile.binsPerDay;
    std::size_t wkndCount = 0, wkdyCount = 0;
    for (std::size_t t = 0; t < totals.size(); ++t) {
      if ((t / bpd) % 7 >= 5) {
        weekend += totals[t];
        ++wkndCount;
      } else {
        weekday += totals[t];
        ++wkdyCount;
      }
    }
    json::Object row;
    row.set("weekend_factor", wf);
    row.set("weekend_weekday_traffic_ratio",
            (weekend / double(wkndCount)) / (weekday / double(wkdyCount)));
    weekendSweep.push_back(json::Value(std::move(row)));
  }
  body.set("weekend_factor_sweep", json::Value(std::move(weekendSweep)));

  body.set("pass", pass);
  return json::Value(std::move(body));
}

}  // namespace

void RegisterAblationScenarios() {
  RegisterScenario(
      {"asymmetry_ablation", "Sec. 5.6 ablation",
       "routing asymmetry vs the simplified IC model",
       "the simplified (single-f) model degrades as hot-potato "
       "asymmetry grows; the general per-pair IC model recovers the "
       "lost fit quality"},
      RunAsymmetryAblation);
  RegisterScenario(
      {"synthesis_ablation", "Sec. 5.5 ablation",
       "synthetic TM generation dials",
       "f controls directional asymmetry (what-if: application mix); "
       "preference sigma controls hot-spot concentration; the recipe "
       "round-trips through the fitter"},
      RunSynthesisAblation);
}

}  // namespace ictm::scenario::detail
