// Streaming scenarios: the online estimator must be bit-identical to
// the batch engine (and to itself for every thread count and queue
// capacity), and the binary trace format must beat CSV parsing by a
// wide margin.  As everywhere: correctness facts go into the
// deterministic result document, wall-clock timings and throughputs go
// to the notes channel only.
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/estimation.hpp"
#include "core/metrics.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"
#include "stream/format.hpp"
#include "stream/online.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"
#include "traffic/io.hpp"

namespace ictm::scenario::detail {

namespace {

// Diurnally varying random traffic on a canned topology — the same
// shape estimation_scale uses, so the streaming numbers are comparable.
struct StreamSetup {
  topology::Graph graph;
  linalg::CsrMatrix routing;
  traffic::TrafficMatrixSeries truth;

  StreamSetup(const ScenarioContext& ctx, std::uint64_t canonicalSeed,
              std::size_t fullBins)
      : graph(ctx.tiny ? topology::MakeRing(6, 2)
                       : topology::MakeGeant22()),
        routing(topology::BuildRoutingCsr(graph)),
        truth(graph.nodeCount(), ctx.tiny ? 24 : fullBins, 300.0) {
    stats::Rng rng(ctx.seed(canonicalSeed));
    const std::size_t n = graph.nodeCount();
    for (std::size_t t = 0; t < truth.binCount(); ++t) {
      const double diurnal =
          1.0 + 0.5 * std::sin(2.0 * M_PI * double(t) / 288.0);
      for (std::size_t k = 0; k < n * n; ++k) {
        truth.binData(t)[k] = diurnal * rng.uniform(1e6, 1e7);
      }
    }
  }
};

json::Value RunStreamEquivalence(const ScenarioContext& ctx,
                                 std::string& notes) {
  const StreamSetup setup(ctx, 77, 504);
  const std::size_t n = setup.graph.nodeCount();
  const std::size_t window = ctx.tiny ? 8 : 96;

  stream::StreamingOptions base;
  base.f = 0.25;
  base.window = window;
  base.threads = 1;
  base.estimation.solver = ContextSolverKind(ctx);
  notes += SolverNote(base.estimation.solver,
                      core::AugmentedRowCount(
                          setup.routing.rows(), n,
                          base.estimation.useMarginalConstraints));
  const auto t0 = StartTimer();
  const stream::StreamingRunResult serial =
      stream::EstimateSeriesStreaming(setup.routing, setup.truth, base);
  const double serialSec = SecondsSince(t0);

  // Thread counts and queue capacities are fixed constants (not taken
  // from the context) so the document stays environment-independent.
  bool identicalAcrossConfigs = true;
  for (const auto& [threads, capacity] :
       {std::pair<std::size_t, std::size_t>{2, 1},
        std::pair<std::size_t, std::size_t>{4, 8},
        std::pair<std::size_t, std::size_t>{8, 64}}) {
    stream::StreamingOptions opts = base;
    opts.threads = threads;
    opts.queueCapacity = capacity;
    const stream::StreamingRunResult run =
        stream::EstimateSeriesStreaming(setup.routing, setup.truth, opts);
    identicalAcrossConfigs =
        identicalAcrossConfigs &&
        BitIdentical(serial.estimates, run.estimates) &&
        BitIdentical(serial.priors, run.priors);
  }

  // The batch engine on the streaming-derived priors must reproduce
  // the streaming estimates exactly — same augmented system, same
  // per-bin solver, different orchestration.
  core::EstimationOptions batchOpts;
  batchOpts.threads = 2;
  batchOpts.solver = ContextSolverKind(ctx);
  const auto t1 = StartTimer();
  const auto batch = core::EstimateSeries(setup.routing, setup.truth,
                                          serial.priors, batchOpts);
  const double batchSec = SecondsSince(t1);
  const bool matchesBatch = BitIdentical(batch, serial.estimates);

  const auto errEst =
      core::RelL2TemporalSeries(setup.truth, serial.estimates);
  const auto errPrior =
      core::RelL2TemporalSeries(setup.truth, serial.priors);

  char buf[160];
  std::snprintf(buf, sizeof buf,
                "streaming (1 thread): %.3f s, batch reference: %.3f s "
                "over %zu bins\n",
                serialSec, batchSec, setup.truth.binCount());
  notes += buf;

  json::Object body;
  body.set("nodes", n);
  body.set("links", setup.graph.linkCount());
  body.set("bins", setup.truth.binCount());
  body.set("window", window);
  body.set("bit_identical_across_thread_queue_configs",
           identicalAcrossConfigs);
  body.set("streaming_matches_batch_bit_for_bit", matchesBatch);
  body.set("est_err_summary", SummaryJson(errEst));
  body.set("prior_err_summary", SummaryJson(errPrior));
  body.set("improvement_pct_mean",
           core::Mean(core::PercentImprovementSeries(errPrior, errEst)));
  body.set("pass", identicalAcrossConfigs && matchesBatch &&
                       AllFinite(errEst));
  return json::Value(std::move(body));
}

json::Value RunStreamScale(const ScenarioContext& ctx,
                           std::string& notes) {
  const StreamSetup setup(ctx, 78, 504);
  const std::size_t bins = setup.truth.binCount();
  const std::size_t window = ctx.tiny ? 8 : 96;

  // Worker-pool throughput at 1 vs 4 threads (timings → notes only).
  stream::StreamingOptions opts;
  opts.f = 0.25;
  opts.window = window;
  opts.estimation.solver = ContextSolverKind(ctx);
  traffic::TrafficMatrixSeries first(setup.truth.nodeCount(), bins,
                                     300.0);
  bool identical = true;
  double sec1 = 0.0, sec4 = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    opts.threads = threads;
    const auto t0 = StartTimer();
    const stream::StreamingRunResult run =
        stream::EstimateSeriesStreaming(setup.routing, setup.truth, opts);
    const double sec = SecondsSince(t0);
    (threads == 1 ? sec1 : sec4) = sec;
    if (threads == 1) {
      first = run.estimates;
    } else {
      identical = identical && BitIdentical(first, run.estimates);
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "StreamingEstimator: %zu thread(s): %.3f s "
                  "(%.0f bins/s)\n",
                  threads, sec, sec > 0.0 ? double(bins) / sec : 0.0);
    notes += buf;
  }
  if (sec4 > 0.0) {
    char buf[80];
    std::snprintf(buf, sizeof buf, "worker-pool speedup: %.2fx\n",
                  sec1 / sec4);
    notes += buf;
  }

  // Binary trace reads vs CSV parsing on the same series (sizes are
  // deterministic facts; timings go to notes).  The directory is
  // per-process and RAII-cleaned so concurrent invocations cannot
  // clobber each other and failures do not leak files.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("ictm_stream_scale_") +
       (ctx.tiny ? "tiny_" : "full_") + std::to_string(getpid()));
  struct DirGuard {
    fs::path path;
    ~DirGuard() {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  } guard{dir};
  fs::create_directories(dir);
  const std::string csvPath = (dir / "series.csv").string();
  const std::string tracePath = (dir / "series.ictmb").string();
  traffic::WriteCsvFile(csvPath, setup.truth);
  stream::WriteTraceFile(tracePath, setup.truth);

  auto t0 = StartTimer();
  const auto fromCsv = traffic::ReadCsvFile(csvPath);
  const double csvSec = SecondsSince(t0);
  t0 = StartTimer();
  const auto fromTrace = stream::ReadTraceFile(tracePath);
  const double traceSec = SecondsSince(t0);
  const bool formatsAgree = BitIdentical(fromCsv, fromTrace) &&
                            BitIdentical(fromCsv, setup.truth);
  const auto csvBytes = fs::file_size(csvPath);
  const auto traceBytes = fs::file_size(tracePath);
  {
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "trace read: CSV %.4f s vs binary %.4f s "
                  "(%.1fx faster; %zu vs %zu bytes)\n",
                  csvSec, traceSec,
                  traceSec > 0.0 ? csvSec / traceSec : 0.0,
                  static_cast<std::size_t>(csvBytes),
                  static_cast<std::size_t>(traceBytes));
    notes += buf;
  }

  json::Object body;
  body.set("nodes", setup.truth.nodeCount());
  body.set("bins", bins);
  body.set("window", window);
  body.set("threads_compared",
           json::Array{json::Value(std::size_t{1}),
                       json::Value(std::size_t{4})});
  body.set("bit_identical_across_threads", identical);
  body.set("formats_agree_bit_for_bit", formatsAgree);
  body.set("csv_bytes", static_cast<std::size_t>(csvBytes));
  body.set("trace_bytes", static_cast<std::size_t>(traceBytes));
  body.set("pass", identical && formatsAgree);
  return json::Value(std::move(body));
}

}  // namespace

void RegisterStreamScenarios() {
  RegisterScenario(
      {"stream_equivalence", "repo",
       "streaming vs batch estimation: bit-for-bit equivalence",
       "StreamingEstimator (queue + worker pool + reorder buffer) "
       "produces estimates bit-identical to the batch EstimateSeries "
       "on the same priors, for every thread count and queue capacity"},
      RunStreamEquivalence);
  RegisterScenario(
      {"stream_scale", "repo",
       "streaming throughput: worker-pool scaling and binary trace I/O",
       "the online estimator scales with workers at unchanged results, "
       "and ictmb binary trace reads beat CSV parsing by a wide margin"},
      RunStreamScale);
}

}  // namespace ictm::scenario::detail
