#include "scenario/scenario.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/estimation.hpp"
#include "scenario/builtin.hpp"
#include "scenario/common.hpp"

namespace ictm::scenario {

namespace {

struct Registry {
  std::vector<ScenarioInfo> order;
  std::map<std::string, ScenarioFn> byName;
};

Registry& MutableRegistry() {
  static Registry registry;
  return registry;
}

void EnsureBuiltins() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    detail::RegisterModelScenarios();
    detail::RegisterTraceScenarios();
    detail::RegisterStabilityScenarios();
    detail::RegisterEstimationScenarios();
    detail::RegisterAblationScenarios();
    detail::RegisterScaleScenarios();
    detail::RegisterTopologyScenarios();
    detail::RegisterStreamScenarios();
    detail::RegisterWhatIfScenarios();
  });
}

// Strict non-negative integer parse for the bench-harness flags —
// rejects trailing junk and overflow instead of silently yielding 0
// the way atoll does (ICTM-D005).
bool ParseNonNegative(const char* arg, unsigned long long max,
                      unsigned long long* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v > max ||
      arg[0] == '-') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

void RegisterScenario(ScenarioInfo info, ScenarioFn fn) {
  Registry& r = MutableRegistry();
  ICTM_REQUIRE(fn != nullptr, "scenario function is null");
  ICTM_REQUIRE(!info.name.empty(), "scenario name is empty");
  ICTM_REQUIRE(r.byName.find(info.name) == r.byName.end(),
               "duplicate scenario name: " + info.name);
  r.byName.emplace(info.name, fn);
  r.order.push_back(std::move(info));
}

const std::vector<ScenarioInfo>& ListScenarios() {
  EnsureBuiltins();
  return MutableRegistry().order;
}

bool HasScenario(const std::string& name) {
  EnsureBuiltins();
  const Registry& r = MutableRegistry();
  return r.byName.find(name) != r.byName.end();
}

ScenarioResult RunScenario(const std::string& name,
                           const ScenarioContext& ctx) {
  EnsureBuiltins();
  const Registry& r = MutableRegistry();
  const auto it = r.byName.find(name);
  ICTM_REQUIRE(it != r.byName.end(), "unknown scenario: " + name);

  ScenarioResult result;
  for (const ScenarioInfo& info : r.order) {
    if (info.name == name) result.info = info;
  }

  const auto start = StartTimer();
  try {
    json::Value body = it->second(ctx, result.notes);
    const json::Object& obj = body.asObject();
    const json::Value* pass = obj.find("pass");
    ICTM_REQUIRE(pass != nullptr && pass->isBool(),
                 "scenario result lacks a boolean 'pass': " + name);
    result.pass = pass->asBool();

    // Wrap the body in the common envelope.  Only deterministic,
    // configuration-derived fields may appear here — never thread
    // counts or timings.
    json::Object envelope;
    envelope.set("schema", "ictm-scenario-result-v1");
    envelope.set("scenario", result.info.name);
    envelope.set("artifact", result.info.artifact);
    envelope.set("title", result.info.title);
    envelope.set("expectation", result.info.expectation);
    envelope.set("seed_offset",
                 static_cast<std::int64_t>(ctx.seedOffset));
    envelope.set("scale", ctx.tiny ? "tiny" : "full");
    envelope.set("pass", result.pass);
    envelope.set("results", std::move(body));
    result.doc = json::Value(std::move(envelope));
  } catch (const std::exception& e) {
    result.error = e.what();
    result.pass = false;
  }
  result.seconds = SecondsSince(start);
  return result;
}

std::vector<ScenarioResult> RunScenarios(
    const std::vector<std::string>& names, const ScenarioContext& ctx,
    std::size_t workers) {
  EnsureBuiltins();
  for (const std::string& name : names) {
    ICTM_REQUIRE(HasScenario(name), "unknown scenario: " + name);
  }
  std::vector<ScenarioResult> results(names.size());
  // Scenario-level fan-out: each scenario is seeded from the context
  // alone, so concurrent execution cannot change any result.
  ParallelFor(0, names.size(), workers, [&](std::size_t i) {
    results[i] = RunScenario(names[i], ctx);
  });
  return results;
}

void WriteResultFiles(const std::vector<ScenarioResult>& results,
                      const ScenarioContext& ctx,
                      const std::string& outDir) {
  namespace fs = std::filesystem;
  fs::create_directories(outDir);

  json::Array names;
  for (const ScenarioResult& r : results) {
    if (!r.error.empty()) continue;  // no document to write
    const fs::path path = fs::path(outDir) / (r.info.name + ".json");
    std::ofstream os(path);
    ICTM_REQUIRE(os.good(), "cannot open for writing: " + path.string());
    os << r.doc.dump(2);
    ICTM_REQUIRE(os.good(), "write failed: " + path.string());
    names.push_back(json::Value(r.info.name));
  }

  json::Object manifest;
  manifest.set("schema", "ictm-scenario-manifest-v1");
  manifest.set("seed_offset", static_cast<std::int64_t>(ctx.seedOffset));
  manifest.set("scale", ctx.tiny ? "tiny" : "full");
  manifest.set("topology",
               ctx.topology.empty() ? "default" : ctx.topology);
  manifest.set("solver", ctx.solver.empty() ? "auto" : ctx.solver);
  manifest.set("scenarios", json::Value(std::move(names)));
  const fs::path path = fs::path(outDir) / "manifest.json";
  std::ofstream os(path);
  ICTM_REQUIRE(os.good(), "cannot open for writing: " + path.string());
  os << json::Value(std::move(manifest)).dump(2);
  ICTM_REQUIRE(os.good(), "write failed: " + path.string());
}

int RunScenarioMain(const std::string& name, int argc, char** argv) {
  ScenarioContext ctx;
  ctx.threads = 0;  // bench binaries default to all cores
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      ctx.tiny = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      unsigned long long v = 0;
      if (!ParseNonNegative(argv[++i], 4096, &v)) {
        std::fprintf(stderr, "--threads must be an integer in [0, 4096], got: %s\n",
                     argv[i]);
        return 2;
      }
      ctx.threads = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      unsigned long long v = 0;
      if (!ParseNonNegative(argv[++i], ~0ULL, &v)) {
        std::fprintf(stderr, "--seed must be a non-negative integer, got: %s\n",
                     argv[i]);
        return 2;
      }
      ctx.seedOffset = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < argc) {
      ctx.topology = argv[++i];
    } else if (std::strcmp(argv[i], "--solver") == 0 && i + 1 < argc) {
      core::SolverKind kind;
      if (!core::ParseSolverKind(argv[i + 1], &kind)) {
        std::fprintf(stderr,
                     "unknown solver: %s (expected dense|sparse|cg|auto)\n",
                     argv[i + 1]);
        return 2;
      }
      ctx.solver = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--tiny] [--threads N] [--seed S] "
                   "[--topology SPEC] [--solver dense|sparse|cg|auto]\n",
                   argv[0]);
      return 2;
    }
  }

  const ScenarioResult r = RunScenario(name, ctx);
  std::printf("==============================================================\n");
  std::printf("%s — %s [%s]\n", r.info.artifact.c_str(),
              r.info.title.c_str(), r.info.name.c_str());
  std::printf("paper: %s\n", r.info.expectation.c_str());
  std::printf("(simulated datasets; compare shape, not absolute values)\n");
  std::printf("==============================================================\n");
  if (!r.error.empty()) {
    std::fprintf(stderr, "error: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("%s", r.doc.dump(2).c_str());
  if (!r.notes.empty()) std::printf("%s", r.notes.c_str());
  std::printf("[%s] %s in %.2f s\n", r.pass ? "PASS" : "FAIL",
              r.info.name.c_str(), r.seconds);
  return r.pass ? 0 : 1;
}

}  // namespace ictm::scenario
