#include "scenario/common.hpp"

#include <algorithm>
#include <cmath>

#include "core/estimation.hpp"
#include "core/gravity.hpp"
#include "core/solver_backend.hpp"
#include "core/metrics.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "topology/registry.hpp"
#include "topology/routing.hpp"

namespace ictm::scenario {

core::SolverKind ContextSolverKind(const ScenarioContext& ctx) {
  if (ctx.solver.empty()) return core::SolverKind::kAuto;
  core::SolverKind kind;
  ICTM_REQUIRE(core::ParseSolverKind(ctx.solver, &kind),
               "unknown solver backend: " + ctx.solver);
  return kind;
}

std::string SolverNote(core::SolverKind kind, std::size_t rows) {
  std::string note = "solver backend: ";
  note += core::SolverKindName(core::ResolveSolverKind(kind, rows));
  if (kind == core::SolverKind::kAuto) note += " (auto)";
  note += "\n";
  return note;
}

std::chrono::steady_clock::time_point StartTimer() {
  return std::chrono::steady_clock::now();
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

bool BitIdentical(const traffic::TrafficMatrixSeries& a,
                  const traffic::TrafficMatrixSeries& b) {
  const std::size_t n = a.nodeCount();
  if (b.nodeCount() != n || b.binCount() != a.binCount()) return false;
  for (std::size_t t = 0; t < a.binCount(); ++t) {
    const double* pa = a.binData(t);
    const double* pb = b.binData(t);
    for (std::size_t k = 0; k < n * n; ++k) {
      if (pa[k] != pb[k]) return false;
    }
  }
  return true;
}

dataset::DatasetConfig GeantConfig(std::uint64_t seed) {
  dataset::DatasetConfig cfg;
  cfg.seed = seed;
  cfg.peakActivityBytes = 2e8;  // reduced for scenario runtime
  return cfg;
}

dataset::DatasetConfig TotemConfig(std::uint64_t seed) {
  dataset::DatasetConfig cfg;
  cfg.seed = seed;
  cfg.peakActivityBytes = 2e8;
  return cfg;
}

dataset::Dataset MakeScenarioDataset(const ScenarioContext& ctx,
                                     bool totem,
                                     std::uint64_t canonicalSeed,
                                     std::size_t weeks) {
  dataset::DatasetConfig cfg = totem
                                   ? TotemConfig(ctx.seed(canonicalSeed))
                                   : GeantConfig(ctx.seed(canonicalSeed));
  cfg.weeks = weeks;
  if (ctx.tiny) {
    // 6 nodes, 42 bins per week (6 per day) — the same generative
    // machinery at test scale.
    return dataset::MakeSmallWeeklyDataset(6, 42, 300.0, cfg);
  }
  return totem ? dataset::MakeTotemLike(cfg) : dataset::MakeGeantLike(cfg);
}

WeeklyFitResult FitWeekly(const ScenarioContext& ctx, bool totem,
                          std::size_t weeks,
                          std::uint64_t canonicalSeed) {
  WeeklyFitResult out{
      MakeScenarioDataset(ctx, totem, canonicalSeed, weeks), {}};
  const std::size_t binsPerWeek = out.data.binsPerWeek;
  out.fits.reserve(weeks);
  for (std::size_t w = 0; w < weeks; ++w) {
    const auto week = out.data.measured.slice(w * binsPerWeek, binsPerWeek);
    out.fits.push_back(core::FitStableFP(week));
  }
  return out;
}

const std::vector<TopoSweepEntry>& DefaultTopoSweep() {
  // Bin counts shrink as n² grows so a full sweep stays fast; the
  // 22-node entry gets a week-scale count so the auto-vs-dense timing
  // gate in bench_estimation_scale measures more than timer noise.
  static const std::vector<TopoSweepEntry> sweep = {
      {"hierarchy:22", 96},
      {"hierarchy:50", 16},
      {"hierarchy:100", 8},
      {"hierarchy:200", 6}};
  return sweep;
}

TopoSweepRun RunTopoSweepEntry(const TopoSweepEntry& entry,
                               std::uint64_t topologySeed,
                               std::uint64_t trafficSeed,
                               std::size_t baselineThreads,
                               std::size_t fanoutThreads,
                               core::SolverKind solver) {
  const topology::Graph g =
      topology::MakeTopology(entry.spec, topologySeed);
  const std::size_t n = g.nodeCount();
  const linalg::CsrMatrix routing = topology::BuildRoutingCsr(g);

  // Diurnally varying random traffic plus gravity priors, as the
  // estimation_scale scenario uses — every OD pair active.
  stats::Rng rng(trafficSeed);
  traffic::TrafficMatrixSeries truth(n, entry.bins, 300.0);
  for (std::size_t t = 0; t < entry.bins; ++t) {
    const double diurnal =
        1.0 + 0.5 * std::sin(2.0 * M_PI * double(t) / 288.0);
    for (std::size_t k = 0; k < n * n; ++k) {
      truth.binData(t)[k] = diurnal * rng.uniform(1e6, 1e7);
    }
  }
  const traffic::TrafficMatrixSeries priors =
      core::GravityPredictSeries(truth);

  core::EstimationOptions options;
  options.solver = solver;

  // Compress the system once and pre-warm the backend's shared
  // per-system setup (sparse symbolic / frozen CG factor), so the
  // timed runs measure steady-state per-bin throughput — the regime a
  // production deployment estimating week-long series lives in.
  const core::AugmentedTmSystem system(routing, n,
                                       options.useMarginalConstraints);
  { core::TmBinSolver warmup(system, options); }

  options.threads = baselineThreads;
  auto t0 = StartTimer();
  auto estBase =
      core::EstimateSeries(system, routing, truth, priors, options);
  const double secBase = SecondsSince(t0);

  options.threads = fanoutThreads;
  t0 = StartTimer();
  const auto estFan =
      core::EstimateSeries(system, routing, truth, priors, options);
  const double secFan = SecondsSince(t0);

  TopoSweepRun run;
  run.nodes = n;
  run.links = g.linkCount();
  run.routingRows = routing.rows();
  run.routingNnz = routing.nonZeros();
  run.routingDensityPct = 100.0 * double(routing.nonZeros()) /
                          double(routing.rows() * routing.cols());
  run.secBaseline = secBase;
  run.secFanout = secFan;
  run.bitIdentical = BitIdentical(estBase, estFan);
  run.errEst = core::RelL2TemporalSeries(truth, estBase);
  run.errPrior = core::RelL2TemporalSeries(truth, priors);
  run.estimates = std::move(estBase);
  return run;
}

json::Value SummaryJson(const std::vector<double>& xs) {
  const stats::Summary s = stats::Summarize(xs);
  json::Object o;
  o.set("mean", s.mean);
  o.set("p10", stats::Quantile(xs, 0.1));
  o.set("p50", stats::Quantile(xs, 0.5));
  o.set("p90", stats::Quantile(xs, 0.9));
  o.set("min", s.min);
  o.set("max", s.max);
  return json::Value(std::move(o));
}

json::Value SeriesJson(const std::vector<double>& xs, std::size_t points) {
  json::Object o;
  o.set("length", xs.size());
  json::Array samples;
  const std::size_t step = std::max<std::size_t>(1, xs.size() / points);
  samples.reserve(xs.size() / step + 1);
  for (std::size_t t = 0; t < xs.size(); t += step) {
    json::Array pair;
    pair.push_back(json::Value(t));
    pair.push_back(json::Value(xs[t]));
    samples.push_back(json::Value(std::move(pair)));
  }
  o.set("samples", json::Value(std::move(samples)));
  return json::Value(std::move(o));
}

json::Value VectorJson(const std::vector<double>& xs) {
  json::Array a;
  a.reserve(xs.size());
  for (const double x : xs) a.push_back(json::Value(x));
  return json::Value(std::move(a));
}

bool AllFinite(const std::vector<double>& xs) {
  for (const double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace ictm::scenario
