#include "scenario/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace ictm::scenario::json {

void Object::set(std::string key, Value value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Value::asBool() const {
  ICTM_REQUIRE(isBool(), "JSON value is not a bool");
  return std::get<bool>(data_);
}

double Value::asDouble() const {
  ICTM_REQUIRE(isNumber(), "JSON value is not a number");
  if (std::holds_alternative<std::int64_t>(data_)) {
    return static_cast<double>(std::get<std::int64_t>(data_));
  }
  return std::get<double>(data_);
}

std::int64_t Value::asInt() const {
  ICTM_REQUIRE(isInteger(), "JSON value is not an integer");
  return std::get<std::int64_t>(data_);
}

const std::string& Value::asString() const {
  ICTM_REQUIRE(isString(), "JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::asArray() const {
  ICTM_REQUIRE(isArray(), "JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::asObject() const {
  ICTM_REQUIRE(isObject(), "JSON value is not an object");
  return std::get<Object>(data_);
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // std::to_chars emits the shortest representation that round-trips,
  // independent of locale — the determinism workhorse.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
}

void Dump(const Value& v, std::string& out, int indent, int depth) {
  const std::string pad(indent > 0 ? std::size_t(indent) * (depth + 1) : 0,
                        ' ');
  const std::string padEnd(indent > 0 ? std::size_t(indent) * depth : 0,
                           ' ');
  if (v.isNull()) {
    out += "null";
  } else if (v.isBool()) {
    out += v.asBool() ? "true" : "false";
  } else if (v.isString()) {
    AppendEscaped(out, v.asString());
  } else if (v.isInteger()) {
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, v.asInt());
    out.append(buf, res.ptr);
  } else if (v.isNumber()) {
    AppendNumber(out, v.asDouble());
  } else if (v.isArray()) {
    const Array& a = v.asArray();
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out += ',';
      if (indent > 0) {
        out += '\n';
        out += pad;
      }
      Dump(a[i], out, indent, depth + 1);
    }
    if (indent > 0 && !a.empty()) {
      out += '\n';
      out += padEnd;
    }
    out += ']';
  } else {
    const Object& o = v.asObject();
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out += ',';
      if (indent > 0) {
        out += '\n';
        out += pad;
      }
      AppendEscaped(out, o.members()[i].first);
      out += indent > 0 ? ": " : ":";
      Dump(o.members()[i].second, out, indent, depth + 1);
    }
    if (indent > 0 && o.size() > 0) {
      out += '\n';
      out += padEnd;
    }
    out += '}';
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  Dump(*this, out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// ---- parser ----------------------------------------------------------------

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("JSON parse error at offset " + std::to_string(pos) +
                ": " + why);
  }

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text.compare(pos, len, literal) == 0) {
      pos += len;
      return true;
    }
    return false;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code += unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += unsigned(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Scenario files only escape control characters; encode the
            // code point as UTF-8 (BMP only, no surrogate pairing).
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            } else {
              out += char(0xE0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3F));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string tok = text.substr(start, pos - start);
    if (tok.find('.') == std::string::npos &&
        tok.find('e') == std::string::npos &&
        tok.find('E') == std::string::npos) {
      std::int64_t i = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        return Value(i);
      }
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("malformed number '" + tok + "'");
    }
    return Value(d);
  }

  Value parseValue() {
    skipWs();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Object obj;
      skipWs();
      if (peek() == '}') {
        ++pos;
        return Value(std::move(obj));
      }
      while (true) {
        skipWs();
        std::string key = parseString();
        skipWs();
        expect(':');
        obj.set(std::move(key), parseValue());
        skipWs();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return Value(std::move(obj));
      }
    }
    if (c == '[') {
      ++pos;
      Array arr;
      skipWs();
      if (peek() == ']') {
        ++pos;
        return Value(std::move(arr));
      }
      while (true) {
        arr.push_back(parseValue());
        skipWs();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return Value(std::move(arr));
      }
    }
    if (c == '"') return Value(parseString());
    if (consume("true")) return Value(true);
    if (consume("false")) return Value(false);
    if (consume("null")) return Value();
    return parseNumber();
  }
};

}  // namespace

Value Parse(const std::string& text) {
  Parser p{text};
  Value v = p.parseValue();
  p.skipWs();
  if (p.pos != text.size()) p.fail("trailing characters after document");
  return v;
}

}  // namespace ictm::scenario::json
