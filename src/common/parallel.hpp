// Minimal thread fan-out for embarrassingly parallel loops.
//
// The estimation hot path processes thousands of independent time bins;
// ParallelFor partitions the index range into contiguous chunks, one
// per worker, so results land in disjoint output slots and the
// computation is bit-identical for any thread count.  No pool is kept
// alive between calls — the loops here run long enough (many
// milliseconds) that thread start-up cost is noise.
#pragma once

#include <cstddef>
#include <exception>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

namespace ictm {

/// Maps a requested thread count to an actual one: 0 means "all
/// hardware threads"; anything else is taken literally (capped at the
/// iteration count by ParallelFor).
inline std::size_t ResolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Splits [begin, end) into one contiguous chunk per worker (0 = all
/// hardware threads) and runs rangeFn(lo, hi) on each — workers that
/// need per-thread scratch set it up once per chunk.  A loop whose
/// iterations touch disjoint state produces the same result for every
/// thread count.  The first exception thrown by any worker is rethrown
/// on the calling thread after all workers join.
template <typename RangeFn>
void ParallelForRanges(std::size_t begin, std::size_t end,
                       std::size_t threads, RangeFn&& rangeFn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  std::size_t workers = ResolveThreadCount(threads);
  if (workers > count) workers = count;
  if (workers <= 1) {
    rangeFn(begin, end);
    return;
  }

  std::exception_ptr firstError;
  std::mutex errorMutex;
  auto runChunk = [&](std::size_t lo, std::size_t hi) {
    try {
      rangeFn(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = std::current_exception();
    }
  };

  // Spread the remainder over the first chunks so sizes differ by at
  // most one.
  const std::size_t base = count / workers;
  const std::size_t extra = count % workers;
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  std::size_t lo = begin;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t hi = lo + base + (w < extra ? 1 : 0);
    if (w + 1 == workers) {
      runChunk(lo, hi);  // run the last chunk on the calling thread
    } else {
      try {
        pool.emplace_back(runChunk, lo, hi);
      } catch (const std::system_error&) {
        // Thread limit hit (huge requested count): degrade to running
        // this chunk inline rather than unwinding past joinable
        // threads, which would std::terminate.
        runChunk(lo, hi);
      }
    }
    lo = hi;
  }
  for (std::thread& t : pool) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

/// Runs fn(i) for every i in [begin, end), fanned out as one chunk per
/// worker via ParallelForRanges.
template <typename Fn>
void ParallelFor(std::size_t begin, std::size_t end, std::size_t threads,
                 Fn&& fn) {
  ParallelForRanges(begin, end, threads,
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) fn(i);
                    });
}

}  // namespace ictm
