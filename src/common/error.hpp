// Common error-handling utilities for the ictm library.
//
// All precondition violations throw ictm::Error (derived from
// std::runtime_error) carrying the failing expression and location.
// Per the C++ Core Guidelines (E.2, I.5) we prefer exceptions for
// error reporting and keep interfaces precondition-checked.
#pragma once

#include <stdexcept>
#include <string>

namespace ictm {

/// Exception type thrown on any precondition or invariant violation
/// inside the ictm library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void ThrowRequireFailure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::string full = "ictm requirement failed: ";
  full += expr;
  full += " at ";
  full += file;
  full += ":";
  full += std::to_string(line);
  if (!msg.empty()) {
    full += " — ";
    full += msg;
  }
  throw Error(full);
}
}  // namespace detail

}  // namespace ictm

/// Checks a precondition; throws ictm::Error with location info on failure.
#define ICTM_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::ictm::detail::ThrowRequireFailure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)
