#include "stream/codec.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/now.hpp"

namespace ictm::stream {

namespace {

// LZ token geometry (docs/FORMATS.md "codec semantics"): a sequence is
// one token byte — literal length in the high nibble, match length
// minus kMinMatch in the low nibble, 15 meaning "extended by 255-run
// bytes" — followed by the literals, a 2-byte little-endian match
// offset and any match-length extension bytes.  A stream always ends
// with a literals-only sequence (possibly empty), which carries no
// offset; the decoder recognises it by input exhaustion.
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 15;

// Per-codec compression statistics, cached per the registry's static
// reference idiom.  All eight counters of a codec live in one struct
// so the call sites stay one lookup.
struct CodecMetrics {
  obs::Counter& compressChunks;
  obs::Counter& compressBytesIn;
  obs::Counter& compressBytesOut;
  obs::Counter& compressNs;
  obs::Counter& decompressChunks;
  obs::Counter& decompressBytesIn;
  obs::Counter& decompressBytesOut;
  obs::Counter& decompressNs;
};

CodecMetrics MakeCodecMetrics(const char* name) {
  const std::string prefix = std::string("trace_codec.") + name + ".";
  const auto counter = [&prefix](const char* leaf, obs::MetricClass cls)
      -> obs::Counter& {
    return obs::GetCounter((prefix + leaf).c_str(), cls);
  };
  return CodecMetrics{
      counter("compress_chunks", obs::MetricClass::kDeterministic),
      counter("compress_bytes_in", obs::MetricClass::kDeterministic),
      counter("compress_bytes_out", obs::MetricClass::kDeterministic),
      counter("compress_ns", obs::MetricClass::kTiming),
      counter("decompress_chunks", obs::MetricClass::kDeterministic),
      counter("decompress_bytes_in", obs::MetricClass::kDeterministic),
      counter("decompress_bytes_out", obs::MetricClass::kDeterministic),
      counter("decompress_ns", obs::MetricClass::kTiming),
  };
}

const CodecMetrics& MetricsFor(ChunkCodec codec) {
  static const std::array<CodecMetrics, kChunkCodecCount> metrics = {
      MakeCodecMetrics("raw"),
      MakeCodecMetrics("shuffle-lz"),
      MakeCodecMetrics("delta"),
  };
  return metrics[static_cast<std::size_t>(codec)];
}

// Appends the 255-run extension bytes for a nibble that saturated at
// 15: each 255 byte adds 255, the first byte below 255 terminates.
void EmitLengthExtension(std::vector<std::uint8_t>& out, std::size_t value) {
  while (value >= 255) {
    out.push_back(255);
    value -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

// Reads the extension bytes of a saturated nibble.  `ip` advances past
// the run; truncation raises.
std::size_t ReadLengthExtension(const std::uint8_t* in, std::size_t inSize,
                                std::size_t& ip, std::size_t base) {
  std::size_t len = base;
  while (true) {
    ICTM_REQUIRE(ip < inSize, "ictmb/lz: truncated length extension");
    const std::uint8_t b = in[ip++];
    len += b;
    if (b != 255) return len;
  }
}

// One sequence: literals [lit, lit+litLen) then, when matchLen > 0, a
// back-reference of matchLen bytes at `offset`.  matchLen == 0 emits
// the stream-final literals-only sequence.
void EmitSequence(std::vector<std::uint8_t>& out, const std::uint8_t* lit,
                  std::size_t litLen, std::size_t matchLen,
                  std::size_t offset) {
  const std::size_t litNibble = litLen < 15 ? litLen : 15;
  std::size_t matchNibble = 0;
  if (matchLen > 0) {
    const std::size_t code = matchLen - kMinMatch;
    matchNibble = code < 15 ? code : 15;
  }
  out.push_back(static_cast<std::uint8_t>((litNibble << 4) | matchNibble));
  if (litNibble == 15) EmitLengthExtension(out, litLen - 15);
  out.insert(out.end(), lit, lit + litLen);
  if (matchLen > 0) {
    out.push_back(static_cast<std::uint8_t>(offset & 0xFFu));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    if (matchNibble == 15) {
      EmitLengthExtension(out, matchLen - kMinMatch - 15);
    }
  }
}

// Gathers byte k of every 8-byte element into plane k.
void ShufflePlanes(const std::uint8_t* src, std::size_t count,
                   std::uint8_t* dst) {
  for (std::size_t k = 0; k < sizeof(double); ++k) {
    for (std::size_t i = 0; i < count; ++i) {
      dst[k * count + i] = src[i * sizeof(double) + k];
    }
  }
}

void UnshufflePlanes(const std::uint8_t* src, std::size_t count,
                     std::uint8_t* dst) {
  for (std::size_t k = 0; k < sizeof(double); ++k) {
    for (std::size_t i = 0; i < count; ++i) {
      dst[i * sizeof(double) + k] = src[k * count + i];
    }
  }
}

// XOR-deltas every bin against its predecessor (first bin kept
// verbatim so the chunk stays self-contained for O(1) seek), then
// byte-shuffles the residue.
std::vector<std::uint8_t> DeltaShuffle(const double* bins,
                                       std::size_t binCount,
                                       std::size_t valuesPerBin) {
  const std::size_t count = binCount * valuesPerBin;
  std::vector<std::uint64_t> words(count);
  std::memcpy(words.data(), bins, count * sizeof(double));
  for (std::size_t b = binCount; b-- > 1;) {
    std::uint64_t* cur = words.data() + b * valuesPerBin;
    const std::uint64_t* prev = cur - valuesPerBin;
    for (std::size_t v = 0; v < valuesPerBin; ++v) cur[v] ^= prev[v];
  }
  std::vector<std::uint8_t> shuffled(count * sizeof(double));
  ShufflePlanes(reinterpret_cast<const std::uint8_t*>(words.data()), count,
                shuffled.data());
  return shuffled;
}

}  // namespace

const char* ChunkCodecName(ChunkCodec codec) {
  switch (codec) {
    case ChunkCodec::kRaw:
      return "raw";
    case ChunkCodec::kShuffleLz:
      return "shuffle-lz";
    case ChunkCodec::kDelta:
      return "delta";
  }
  return "unknown";
}

bool ParseChunkCodec(const std::string& name, ChunkCodec* out) {
  for (std::size_t i = 0; i < kChunkCodecCount; ++i) {
    const auto codec = static_cast<ChunkCodec>(i);
    if (name == ChunkCodecName(codec)) {
      *out = codec;
      return true;
    }
  }
  return false;
}

void ByteShuffle(const double* src, std::size_t count, std::uint8_t* dst) {
  ShufflePlanes(reinterpret_cast<const std::uint8_t*>(src), count, dst);
}

void ByteUnshuffle(const std::uint8_t* src, std::size_t count, double* dst) {
  UnshufflePlanes(src, count, reinterpret_cast<std::uint8_t*>(dst));
}

std::size_t LzBound(std::size_t size) {
  // All-literals worst case: one extension byte per 255 input bytes
  // plus the token and terminator overhead.
  return size + size / 255 + 16;
}

std::vector<std::uint8_t> LzCompress(const std::uint8_t* data,
                                     std::size_t size) {
  // Positions are tracked in 32 bits in the hash table (pos + 1, so 0
  // can mean "empty"); chunk payloads are far below this bound.
  ICTM_REQUIRE(size < 0xFFFFFFFFu, "ictmb/lz: input too large");
  std::vector<std::uint8_t> out;
  out.reserve(size / 4 + 16);
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0);
  std::size_t anchor = 0;
  if (size >= kMinMatch) {
    const std::size_t limit = size - kMinMatch;
    std::size_t pos = 0;
    while (pos <= limit) {
      std::uint32_t v = 0;
      std::memcpy(&v, data + pos, 4);
      const std::uint32_t h = (v * 2654435761u) >> (32u - kHashBits);
      const std::uint32_t candPlus1 = table[h];
      table[h] = static_cast<std::uint32_t>(pos) + 1;
      if (candPlus1 != 0) {
        const std::size_t cand = candPlus1 - 1;
        std::uint32_t cv = 0;
        std::memcpy(&cv, data + cand, 4);
        if (cv == v && pos - cand <= kMaxOffset) {
          std::size_t len = kMinMatch;
          while (pos + len < size && data[cand + len] == data[pos + len]) {
            ++len;
          }
          EmitSequence(out, data + anchor, pos - anchor, len, pos - cand);
          pos += len;
          anchor = pos;
          continue;
        }
      }
      ++pos;
    }
  }
  EmitSequence(out, data + anchor, size - anchor, 0, 0);
  return out;
}

void LzDecompress(const std::uint8_t* data, std::size_t size,
                  std::uint8_t* out, std::size_t outSize) {
  std::size_t ip = 0;
  std::size_t op = 0;
  while (true) {
    ICTM_REQUIRE(ip < size, "ictmb/lz: truncated stream (missing token)");
    const std::uint8_t token = data[ip++];
    std::size_t litLen = static_cast<std::size_t>(token) >> 4;
    if (litLen == 15) litLen = ReadLengthExtension(data, size, ip, 15);
    ICTM_REQUIRE(litLen <= size - ip, "ictmb/lz: truncated literal run");
    ICTM_REQUIRE(litLen <= outSize - op,
                 "ictmb/lz: literal run overflows the declared size");
    std::memcpy(out + op, data + ip, litLen);
    ip += litLen;
    op += litLen;
    if (ip == size) break;  // stream-final literals-only sequence
    ICTM_REQUIRE(size - ip >= 2, "ictmb/lz: truncated match offset");
    const std::size_t offset = static_cast<std::size_t>(data[ip]) |
                               (static_cast<std::size_t>(data[ip + 1]) << 8);
    ip += 2;
    ICTM_REQUIRE(offset != 0, "ictmb/lz: zero match offset");
    ICTM_REQUIRE(offset <= op,
                 "ictmb/lz: match offset reaches before the output start");
    std::size_t matchLen = static_cast<std::size_t>(token) & 0x0Fu;
    if (matchLen == 15) matchLen = ReadLengthExtension(data, size, ip, 15);
    matchLen += kMinMatch;
    ICTM_REQUIRE(matchLen <= outSize - op,
                 "ictmb/lz: match overflows the declared size");
    // Byte-wise copy: offsets smaller than the match length replicate
    // the window (RLE-style), so memmove would be wrong here.
    const std::uint8_t* src = out + (op - offset);
    for (std::size_t i = 0; i < matchLen; ++i) out[op + i] = src[i];
    op += matchLen;
  }
  ICTM_REQUIRE(op == outSize,
               "ictmb/lz: decoded size disagrees with the declared size");
}

std::vector<std::uint8_t> EncodeChunk(ChunkCodec codec, const double* bins,
                                      std::size_t binCount,
                                      std::size_t valuesPerBin) {
  ICTM_REQUIRE(binCount > 0 && valuesPerBin > 0,
               "ictmb: cannot encode an empty chunk");
  const std::size_t count = binCount * valuesPerBin;
  const std::size_t rawBytes = count * sizeof(double);
  const bool recording = obs::Enabled();
  const std::uint64_t t0 = recording ? obs::Now() : 0;
  std::vector<std::uint8_t> payload;
  switch (codec) {
    case ChunkCodec::kRaw: {
      payload.resize(rawBytes);
      std::memcpy(payload.data(), bins, rawBytes);
      break;
    }
    case ChunkCodec::kShuffleLz: {
      std::vector<std::uint8_t> shuffled(rawBytes);
      ByteShuffle(bins, count, shuffled.data());
      payload = LzCompress(shuffled.data(), shuffled.size());
      break;
    }
    case ChunkCodec::kDelta: {
      const std::vector<std::uint8_t> shuffled =
          DeltaShuffle(bins, binCount, valuesPerBin);
      payload = LzCompress(shuffled.data(), shuffled.size());
      break;
    }
    default:
      ICTM_REQUIRE(false, "ictmb: unknown chunk codec");
  }
  if (recording) {
    const CodecMetrics& m = MetricsFor(codec);
    m.compressChunks.add();
    m.compressBytesIn.add(rawBytes);
    m.compressBytesOut.add(payload.size());
    m.compressNs.add(obs::Now() - t0);
  }
  return payload;
}

void DecodeChunk(ChunkCodec codec, const std::uint8_t* payload,
                 std::size_t payloadSize, double* out, std::size_t binCount,
                 std::size_t valuesPerBin) {
  ICTM_REQUIRE(binCount > 0 && valuesPerBin > 0,
               "ictmb: cannot decode an empty chunk");
  const std::size_t count = binCount * valuesPerBin;
  const std::size_t rawBytes = count * sizeof(double);
  const bool recording = obs::Enabled();
  const std::uint64_t t0 = recording ? obs::Now() : 0;
  switch (codec) {
    case ChunkCodec::kRaw: {
      ICTM_REQUIRE(payloadSize == rawBytes,
                   "ictmb: raw chunk payload size disagrees with the "
                   "declared size");
      std::memcpy(out, payload, rawBytes);
      break;
    }
    case ChunkCodec::kShuffleLz: {
      std::vector<std::uint8_t> shuffled(rawBytes);
      LzDecompress(payload, payloadSize, shuffled.data(), rawBytes);
      ByteUnshuffle(shuffled.data(), count, out);
      break;
    }
    case ChunkCodec::kDelta: {
      std::vector<std::uint8_t> shuffled(rawBytes);
      LzDecompress(payload, payloadSize, shuffled.data(), rawBytes);
      std::vector<std::uint64_t> words(count);
      UnshufflePlanes(shuffled.data(), count,
                      reinterpret_cast<std::uint8_t*>(words.data()));
      for (std::size_t b = 1; b < binCount; ++b) {
        std::uint64_t* cur = words.data() + b * valuesPerBin;
        const std::uint64_t* prev = cur - valuesPerBin;
        for (std::size_t v = 0; v < valuesPerBin; ++v) cur[v] ^= prev[v];
      }
      std::memcpy(out, words.data(), rawBytes);
      break;
    }
    default:
      ICTM_REQUIRE(
          false, "ictmb: unknown chunk codec tag " +
                     std::to_string(static_cast<std::uint32_t>(codec)));
  }
  if (recording) {
    const CodecMetrics& m = MetricsFor(codec);
    m.decompressChunks.add();
    m.decompressBytesIn.add(payloadSize);
    m.decompressBytesOut.add(rawBytes);
    m.decompressNs.add(obs::Now() - t0);
  }
}

}  // namespace ictm::stream
