// Chunk codecs for the `ictmb` v2 trace container.
//
// A v2 chunk frame is self-describing: it names the codec its payload
// was stored with, so every chunk of a file can pick the encoding that
// fits its data (the DataSeries per-extent multi-codec design).  Three
// codecs exist:
//
//   raw         the doubles verbatim — the v1 payload, zero cost.
//   shuffle-lz  byte-shuffle (the k-th byte of every double is
//               gathered into plane k) followed by a self-contained
//               LZ77 pass.  Doubles drawn from a common scale share
//               sign/exponent bytes, so the shuffled planes are long
//               runs the LZ stage collapses.
//   delta       every bin is XOR-ed against the previous bin of the
//               chunk before the shuffle+LZ pass.  Adjacent bins of
//               diurnal traffic are close (the paper's
//               cyclostationarity argument), so the XOR residue is
//               mostly zero bytes — the strongest codec on real
//               traces.
//
// All three are bit-lossless (pure byte permutations, XOR and LZ) and
// deterministic: the same input always encodes to the same bytes, on
// any thread, which is what keeps compressed traces byte-reproducible.
// Decoders treat their input as untrusted — every read and copy is
// bounds-checked and malformed streams raise ictm::Error, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ictm::stream {

/// Per-chunk payload encoding of the `ictmb` v2 container.  The
/// numeric values are the on-disk codec tags (docs/FORMATS.md).
enum class ChunkCodec : std::uint32_t {
  kRaw = 0,        ///< doubles verbatim
  kShuffleLz = 1,  ///< byte-shuffle + self-contained LZ
  kDelta = 2,      ///< previous-bin XOR delta + byte-shuffle + LZ
};

/// Number of defined codecs (valid tags are 0 .. kChunkCodecCount-1).
inline constexpr std::size_t kChunkCodecCount = 3;

/// The codec's CLI/metrics name: "raw", "shuffle-lz" or "delta".
const char* ChunkCodecName(ChunkCodec codec);

/// Parses a codec name as spelled by ChunkCodecName; returns false on
/// an unknown name.
bool ParseChunkCodec(const std::string& name, ChunkCodec* out);

/// Encodes one chunk of `binCount` bins x `valuesPerBin` doubles with
/// `codec` and returns the payload bytes.  Deterministic: equal input
/// yields equal bytes.
std::vector<std::uint8_t> EncodeChunk(ChunkCodec codec, const double* bins,
                                      std::size_t binCount,
                                      std::size_t valuesPerBin);

/// Decodes a chunk payload produced by EncodeChunk back into exactly
/// `binCount * valuesPerBin` doubles at `out`.  The payload is treated
/// as untrusted input: truncation, trailing garbage, out-of-window
/// matches and a decoded size that disagrees with the declared one all
/// raise ictm::Error.
void DecodeChunk(ChunkCodec codec, const std::uint8_t* payload,
                 std::size_t payloadSize, double* out, std::size_t binCount,
                 std::size_t valuesPerBin);

/// Byte-shuffle `count` doubles: byte k of every double lands in plane
/// k of `dst` (dst[k*count + i] = byte k of src[i]).  `dst` must hold
/// count * 8 bytes.
void ByteShuffle(const double* src, std::size_t count, std::uint8_t* dst);

/// Inverse of ByteShuffle.
void ByteUnshuffle(const std::uint8_t* src, std::size_t count, double* dst);

/// Compresses `size` bytes with the self-contained LZ77 coder used by
/// the shuffle-lz and delta codecs (token format in docs/FORMATS.md).
/// The output never exceeds LzBound(size).
std::vector<std::uint8_t> LzCompress(const std::uint8_t* data,
                                     std::size_t size);

/// Worst-case LzCompress output size for `size` input bytes.
std::size_t LzBound(std::size_t size);

/// Decompresses an LzCompress stream into exactly `outSize` bytes at
/// `out`.  Malformed input — truncated tokens, zero or out-of-range
/// match offsets, or a stream that decodes to any size other than
/// `outSize` — raises ictm::Error.  Never reads or writes out of
/// bounds.
void LzDecompress(const std::uint8_t* data, std::size_t size,
                  std::uint8_t* out, std::size_t outSize);

}  // namespace ictm::stream
