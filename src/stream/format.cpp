#include "stream/format.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/now.hpp"
#include "obs/trace.hpp"
#include "traffic/io.hpp"

namespace ictm::stream {

namespace {

constexpr std::array<char, 8> kMagic = {'I', 'C', 'T', 'M',
                                        'B', '1', '\r', '\n'};
constexpr std::array<char, 8> kEndMagic = {'I', 'C', 'T', 'M',
                                           'B', 'E', 'O', 'F'};
constexpr std::uint32_t kByteOrderSentinel = 0x01020304u;
constexpr std::uint32_t kVersion = 1;
// Length-prefix value that marks the index frame; no real chunk can be
// this large.
constexpr std::uint64_t kIndexMarker = ~std::uint64_t{0};

template <typename T>
void WriteRaw(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void ReadRaw(std::istream& is, T& value, const std::string& what) {
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  ICTM_REQUIRE(is.good(), "ictmb: truncated while reading " + what);
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len,
                    std::uint32_t seed) {
  // Slice-by-8 tables generated once from the reflected polynomial —
  // a byte-at-a-time table runs at ~300 MB/s, which would make CRC
  // validation (not disk) the bottleneck of chunk reads.
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();

  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  // 8 bytes per step; the unaligned loads are little-endian, which the
  // header sentinel already requires of the host.
  while (len >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- TraceWriter -----------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, std::size_t nodes,
                         double binSeconds, std::size_t binsPerChunk)
    : out_(path, std::ios::binary),
      path_(path),
      nodes_(nodes),
      binsPerChunk_(binsPerChunk) {
  ICTM_REQUIRE(out_.is_open(), "cannot open file for writing: " + path);
  ICTM_REQUIRE(nodes > 0, "ictmb: node count must be positive");
  ICTM_REQUIRE(binSeconds > 0.0, "ictmb: binSeconds must be positive");
  ICTM_REQUIRE(binsPerChunk > 0, "ictmb: binsPerChunk must be positive");
  buffer_.reserve(binsPerChunk * nodes * nodes);

  out_.write(kMagic.data(), kMagic.size());
  WriteRaw(out_, kByteOrderSentinel);
  WriteRaw(out_, kVersion);
  WriteRaw(out_, static_cast<std::uint64_t>(nodes));
  WriteRaw(out_, binSeconds);
  WriteRaw(out_, static_cast<std::uint64_t>(binsPerChunk));
  ICTM_REQUIRE(out_.good(), "ictmb: header write failed: " + path);
}

TraceWriter::~TraceWriter() {
  if (closed_) return;
  try {
    close();
  } catch (...) {
    // Destructor fallback only; call close() to observe failures.
  }
}

void TraceWriter::append(const double* bin) {
  ICTM_REQUIRE(!closed_, "ictmb: append after close: " + path_);
  buffer_.insert(buffer_.end(), bin, bin + nodes_ * nodes_);
  ++binsWritten_;
  if (buffer_.size() == binsPerChunk_ * nodes_ * nodes_) flushChunk();
}

void TraceWriter::flushChunk() {
  if (buffer_.empty()) return;
  // Chunk/byte counts are pure functions of the workload; the write
  // time (CRC included) is wall clock.
  static obs::Counter& chunksWritten = obs::GetCounter(
      "trace_io.chunks_written", obs::MetricClass::kDeterministic);
  static obs::Counter& bytesWritten = obs::GetCounter(
      "trace_io.bytes_written", obs::MetricClass::kDeterministic);
  static obs::Counter& writeNs =
      obs::GetCounter("trace_io.write_ns", obs::MetricClass::kTiming);
  obs::TraceScope traceWrite("chunk_write", "trace_io");
  const bool recording = obs::Enabled();
  const std::uint64_t t0 = recording ? obs::Now() : 0;
  const std::uint64_t payloadBytes = buffer_.size() * sizeof(double);
  const std::uint64_t offset = static_cast<std::uint64_t>(out_.tellp());
  WriteRaw(out_, payloadBytes);
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(payloadBytes));
  WriteRaw(out_, Crc32(buffer_.data(), payloadBytes));
  ICTM_REQUIRE(out_.good(), "ictmb: chunk write failed: " + path_);
  index_.push_back({offset, buffer_.size() / (nodes_ * nodes_)});
  buffer_.clear();
  if (recording) {
    chunksWritten.add();
    bytesWritten.add(payloadBytes);
    writeNs.add(obs::Now() - t0);
  }
}

void TraceWriter::close() {
  ICTM_REQUIRE(!closed_, "ictmb: close called twice: " + path_);
  closed_ = true;
  flushChunk();

  // Index frame: marker, chunk count, per-chunk records, total bins,
  // CRC over everything after the marker.
  const std::uint64_t indexOffset =
      static_cast<std::uint64_t>(out_.tellp());
  WriteRaw(out_, kIndexMarker);
  std::vector<std::uint64_t> words;
  words.reserve(2 + 2 * index_.size());
  words.push_back(index_.size());
  for (const ChunkRecord& c : index_) {
    words.push_back(c.offset);
    words.push_back(c.binCount);
  }
  words.push_back(binsWritten_);
  out_.write(reinterpret_cast<const char*>(words.data()),
             static_cast<std::streamsize>(words.size() *
                                          sizeof(std::uint64_t)));
  WriteRaw(out_, Crc32(words.data(), words.size() * sizeof(std::uint64_t)));

  // Footer.
  WriteRaw(out_, indexOffset);
  out_.write(kEndMagic.data(), kEndMagic.size());
  out_.flush();
  ICTM_REQUIRE(out_.good(), "ictmb: index/footer write failed: " + path_);
  out_.close();
}

// ---- TraceReader -----------------------------------------------------------

TraceReader::TraceReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  ICTM_REQUIRE(in_.is_open(), "cannot open file for reading: " + path);

  std::array<char, 8> magic{};
  in_.read(magic.data(), magic.size());
  ICTM_REQUIRE(in_.good() && magic == kMagic,
               "ictmb: bad magic (not an ictmb trace): " + path);
  std::uint32_t sentinel = 0, version = 0;
  ReadRaw(in_, sentinel, "header");
  ICTM_REQUIRE(sentinel == kByteOrderSentinel,
               "ictmb: byte-order mismatch (file written on a host with "
               "different endianness): " + path);
  ReadRaw(in_, version, "header");
  ICTM_REQUIRE(version == kVersion,
               "ictmb: unsupported version " + std::to_string(version) +
                   ": " + path);
  std::uint64_t nodes = 0, binsPerChunk = 0;
  double binSeconds = 0.0;
  ReadRaw(in_, nodes, "header");
  ReadRaw(in_, binSeconds, "header");
  ReadRaw(in_, binsPerChunk, "header");
  ICTM_REQUIRE(nodes > 0 && binsPerChunk > 0 && binSeconds > 0.0,
               "ictmb: malformed header fields: " + path);

  // Footer → index offset → index frame.
  in_.seekg(0, std::ios::end);
  const auto fileSize = static_cast<std::uint64_t>(in_.tellg());
  ICTM_REQUIRE(fileSize >= 16,
               "ictmb: truncated (no footer): " + path);
  in_.seekg(static_cast<std::streamoff>(fileSize - 16));
  std::uint64_t indexOffset = 0;
  ReadRaw(in_, indexOffset, "footer");
  std::array<char, 8> endMagic{};
  in_.read(endMagic.data(), endMagic.size());
  ICTM_REQUIRE(in_.good() && endMagic == kEndMagic,
               "ictmb: truncated or missing footer: " + path);
  ICTM_REQUIRE(indexOffset < fileSize,
               "ictmb: corrupt footer (index offset out of range): " +
                   path);

  in_.seekg(static_cast<std::streamoff>(indexOffset));
  std::uint64_t marker = 0;
  ReadRaw(in_, marker, "index marker");
  ICTM_REQUIRE(marker == kIndexMarker,
               "ictmb: corrupt footer (no index at recorded offset): " +
                   path);
  std::uint64_t chunkCount = 0;
  ReadRaw(in_, chunkCount, "index");
  ICTM_REQUIRE(chunkCount <= fileSize / 16,
               "ictmb: corrupt index (chunk count too large): " + path);
  std::vector<std::uint64_t> words(2 * chunkCount + 1);
  in_.read(reinterpret_cast<char*>(words.data()),
           static_cast<std::streamsize>(words.size() *
                                        sizeof(std::uint64_t)));
  ICTM_REQUIRE(in_.good(), "ictmb: truncated index: " + path);
  std::uint32_t storedCrc = 0;
  ReadRaw(in_, storedCrc, "index CRC");
  std::uint32_t crc = Crc32(&chunkCount, sizeof chunkCount);
  crc = Crc32(words.data(), words.size() * sizeof(std::uint64_t), crc);
  ICTM_REQUIRE(crc == storedCrc, "ictmb: index CRC mismatch: " + path);

  index_.resize(chunkCount);
  std::uint64_t firstBin = 0;
  for (std::uint64_t c = 0; c < chunkCount; ++c) {
    index_[c] = {words[2 * c], words[2 * c + 1], firstBin};
    ICTM_REQUIRE(index_[c].binCount > 0 && index_[c].offset < fileSize,
                 "ictmb: corrupt index entry: " + path);
    firstBin += index_[c].binCount;
  }
  const std::uint64_t totalBins = words[2 * chunkCount];
  ICTM_REQUIRE(firstBin == totalBins,
               "ictmb: index bin counts do not sum to the total: " + path);

  info_ = {static_cast<std::size_t>(nodes),
           static_cast<std::size_t>(totalBins), binSeconds,
           static_cast<std::size_t>(binsPerChunk),
           static_cast<std::size_t>(chunkCount)};
}

void TraceReader::loadChunk(std::size_t chunk) {
  static obs::Counter& chunksRead = obs::GetCounter(
      "trace_io.chunks_read", obs::MetricClass::kDeterministic);
  static obs::Counter& bytesRead = obs::GetCounter(
      "trace_io.bytes_read", obs::MetricClass::kDeterministic);
  static obs::Counter& readNs =
      obs::GetCounter("trace_io.read_ns", obs::MetricClass::kTiming);
  static obs::Counter& crcVerifyNs =
      obs::GetCounter("trace_io.crc_verify_ns", obs::MetricClass::kTiming);
  obs::TraceScope traceRead("chunk_read", "trace_io");
  const bool recording = obs::Enabled();
  const std::uint64_t t0 = recording ? obs::Now() : 0;
  const ChunkRecord& rec = index_[chunk];
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(rec.offset));
  std::uint64_t payloadBytes = 0;
  ReadRaw(in_, payloadBytes, "chunk length");
  const std::uint64_t n2 = info_.nodes * info_.nodes;
  ICTM_REQUIRE(payloadBytes == rec.binCount * n2 * sizeof(double),
               "ictmb: chunk length disagrees with the index: " + path_);
  chunk_.resize(static_cast<std::size_t>(payloadBytes / sizeof(double)));
  in_.read(reinterpret_cast<char*>(chunk_.data()),
           static_cast<std::streamsize>(payloadBytes));
  ICTM_REQUIRE(in_.good(), "ictmb: truncated chunk payload: " + path_);
  std::uint32_t storedCrc = 0;
  ReadRaw(in_, storedCrc, "chunk CRC");
  const std::uint64_t tCrc = recording ? obs::Now() : 0;
  const std::uint32_t computedCrc = Crc32(chunk_.data(), payloadBytes);
  if (recording) crcVerifyNs.add(obs::Now() - tCrc);
  ICTM_REQUIRE(computedCrc == storedCrc,
               "ictmb: chunk CRC mismatch (corrupt data) in chunk " +
                   std::to_string(chunk) + ": " + path_);
  loadedChunk_ = chunk;
  if (recording) {
    chunksRead.add();
    bytesRead.add(payloadBytes);
    readNs.add(obs::Now() - t0);
  }
}

bool TraceReader::next(double* outBin) {
  if (position_ >= info_.bins) return false;
  // Chunks are K bins each except possibly the last, so the owning
  // chunk is a division away; verify against the index anyway.
  std::size_t chunk = position_ / info_.binsPerChunk;
  if (chunk >= index_.size() || position_ < index_[chunk].firstBin ||
      position_ >= index_[chunk].firstBin + index_[chunk].binCount) {
    chunk = 0;
    while (position_ >=
           index_[chunk].firstBin + index_[chunk].binCount) {
      ++chunk;
    }
  }
  if (chunk != loadedChunk_) loadChunk(chunk);
  const std::size_t n2 = info_.nodes * info_.nodes;
  const std::size_t offsetInChunk = position_ - index_[chunk].firstBin;
  std::memcpy(outBin, chunk_.data() + offsetInChunk * n2,
              n2 * sizeof(double));
  ++position_;
  return true;
}

void TraceReader::seek(std::size_t bin) {
  ICTM_REQUIRE(bin <= info_.bins,
               "ictmb: seek past the end of the trace: " + path_);
  position_ = bin;
}

traffic::TrafficMatrixSeries TraceReader::readAll() {
  const std::size_t remaining = info_.bins - position_;
  ICTM_REQUIRE(remaining > 0, "ictmb: no bins left to read: " + path_);
  traffic::TrafficMatrixSeries series(info_.nodes, remaining,
                                      info_.binSeconds);
  for (std::size_t t = 0; t < remaining; ++t) {
    ICTM_REQUIRE(next(series.binData(t)),
                 "ictmb: unexpected end of trace: " + path_);
  }
  return series;
}

// ---- converters ------------------------------------------------------------

void WriteTraceFile(const std::string& path,
                    const traffic::TrafficMatrixSeries& series,
                    std::size_t binsPerChunk) {
  TraceWriter writer(path, series.nodeCount(), series.binSeconds(),
                     binsPerChunk);
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    writer.append(series.binData(t));
  }
  writer.close();
}

traffic::TrafficMatrixSeries ReadTraceFile(const std::string& path) {
  TraceReader reader(path);
  return reader.readAll();
}

void ConvertCsvToTrace(const std::string& csvPath,
                       const std::string& tracePath,
                       std::size_t binsPerChunk) {
  std::ifstream in(csvPath);
  ICTM_REQUIRE(in.is_open(), "cannot open file for reading: " + csvPath);
  const traffic::CsvHeader h = traffic::ReadCsvHeader(in);
  TraceWriter writer(tracePath, h.nodes, h.binSeconds, binsPerChunk);
  std::vector<double> bin(h.nodes * h.nodes);
  for (std::size_t t = 0; t < h.bins; ++t) {
    traffic::ReadCsvBin(in, h, t, bin.data());
    writer.append(bin.data());
  }
  writer.close();
}

void ConvertTraceToCsv(const std::string& tracePath,
                       const std::string& csvPath) {
  TraceReader reader(tracePath);
  std::ofstream out(csvPath);
  ICTM_REQUIRE(out.is_open(), "cannot open file for writing: " + csvPath);
  const TraceInfo& info = reader.info();
  traffic::WriteCsvHeader(out, {info.nodes, info.bins, info.binSeconds});
  std::vector<double> bin(info.nodes * info.nodes);
  while (reader.next(bin.data())) {
    traffic::WriteCsvBin(out, info.nodes, bin.data());
  }
  ICTM_REQUIRE(out.good(), "stream failure while writing TM CSV: " +
                               csvPath);
}

bool IsTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  return in.good() && magic == kMagic;
}

}  // namespace ictm::stream
