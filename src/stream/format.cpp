#include "stream/format.hpp"

#include <array>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/now.hpp"
#include "obs/trace.hpp"
#include "traffic/io.hpp"

namespace ictm::stream {

namespace {

constexpr std::array<char, 8> kMagic = {'I', 'C', 'T', 'M',
                                        'B', '1', '\r', '\n'};
constexpr std::array<char, 8> kEndMagic = {'I', 'C', 'T', 'M',
                                           'B', 'E', 'O', 'F'};
constexpr std::uint32_t kByteOrderSentinel = 0x01020304u;
// v1 frames carry the payload verbatim; v2 frames are self-describing
// (codec tag + uncompressed length).  The writer always emits v2; the
// reader accepts both.
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;
// Length-prefix value that marks the index frame; no real chunk can be
// this large.
constexpr std::uint64_t kIndexMarker = ~std::uint64_t{0};

template <typename T>
void WriteRaw(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
void ReadRaw(std::istream& is, T& value, const std::string& what) {
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  ICTM_REQUIRE(is.good(), "ictmb: truncated while reading " + what);
}

std::uint64_t FileSizeOf(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ICTM_REQUIRE(in.is_open(), "cannot open file for reading: " + path);
  return static_cast<std::uint64_t>(in.tellg());
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len,
                    std::uint32_t seed) {
  // Slice-by-8 tables generated once from the reflected polynomial —
  // a byte-at-a-time table runs at ~300 MB/s, which would make CRC
  // validation (not disk) the bottleneck of chunk reads.
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xFFu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();

  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  // 8 bytes per step; the unaligned loads are little-endian, which the
  // header sentinel already requires of the host.
  while (len >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    crc = tables[0][(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---- TraceWriter -----------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, std::size_t nodes,
                         double binSeconds,
                         const TraceWriterOptions& options)
    : out_(path, std::ios::binary),
      path_(path),
      nodes_(nodes),
      options_(options) {
  ICTM_REQUIRE(out_.is_open(), "cannot open file for writing: " + path);
  ICTM_REQUIRE(nodes > 0, "ictmb: node count must be positive");
  ICTM_REQUIRE(binSeconds > 0.0, "ictmb: binSeconds must be positive");
  ICTM_REQUIRE(options.binsPerChunk > 0,
               "ictmb: binsPerChunk must be positive");
  ICTM_REQUIRE(static_cast<std::size_t>(options.codec) < kChunkCodecCount,
               "ictmb: unknown chunk codec");
  buffer_.reserve(options.binsPerChunk * nodes * nodes);

  out_.write(kMagic.data(), kMagic.size());
  WriteRaw(out_, kByteOrderSentinel);
  WriteRaw(out_, kVersionV2);
  WriteRaw(out_, static_cast<std::uint64_t>(nodes));
  WriteRaw(out_, binSeconds);
  WriteRaw(out_, static_cast<std::uint64_t>(options.binsPerChunk));
  ICTM_REQUIRE(out_.good(), "ictmb: header write failed: " + path);
}

TraceWriter::TraceWriter(const std::string& path, std::size_t nodes,
                         double binSeconds, std::size_t binsPerChunk)
    : TraceWriter(path, nodes, binSeconds,
                  TraceWriterOptions{binsPerChunk, ChunkCodec::kRaw, 0}) {}

TraceWriter::~TraceWriter() {
  if (closed_) return;
  try {
    close();
  } catch (...) {
    // Destructor fallback only; call close() to observe failures.
  }
}

void TraceWriter::append(const double* bin) {
  ICTM_REQUIRE(!closed_, "ictmb: append after close: " + path_);
  if (poolStarted_) {
    // Surface a worker failure as early as possible instead of
    // accepting bins that can never land.
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (poolError_) std::rethrow_exception(firstError_);
  }
  buffer_.insert(buffer_.end(), bin, bin + nodes_ * nodes_);
  ++binsWritten_;
  if (buffer_.size() == options_.binsPerChunk * nodes_ * nodes_) {
    flushChunk();
  }
}

TraceWriter::EncodedChunk TraceWriter::encodeChunk(
    const double* bins, std::size_t binCount) const {
  const std::size_t n2 = nodes_ * nodes_;
  EncodedChunk encoded;
  encoded.binCount = binCount;
  encoded.codec = options_.codec;
  encoded.payload = EncodeChunk(options_.codec, bins, binCount, n2);
  if (options_.codec != ChunkCodec::kRaw &&
      encoded.payload.size() >= binCount * n2 * sizeof(double)) {
    // Per-chunk fallback: incompressible data is stored raw, so a
    // codec can never inflate a chunk beyond the frame header cost.
    encoded.codec = ChunkCodec::kRaw;
    encoded.payload = EncodeChunk(ChunkCodec::kRaw, bins, binCount, n2);
  }
  return encoded;
}

void TraceWriter::writeFrame(const EncodedChunk& chunk) {
  // Chunk/byte counts are pure functions of the workload; the write
  // time (CRC included) is wall clock.
  static obs::Counter& chunksWritten = obs::GetCounter(
      "trace_io.chunks_written", obs::MetricClass::kDeterministic);
  static obs::Counter& bytesWritten = obs::GetCounter(
      "trace_io.bytes_written", obs::MetricClass::kDeterministic);
  static obs::Counter& writeNs =
      obs::GetCounter("trace_io.write_ns", obs::MetricClass::kTiming);
  obs::TraceScope traceWrite("chunk_write", "trace_io");
  const bool recording = obs::Enabled();
  const std::uint64_t t0 = recording ? obs::Now() : 0;
  const std::uint64_t storedBytes = chunk.payload.size();
  const std::uint64_t rawBytes =
      chunk.binCount * nodes_ * nodes_ * sizeof(double);
  const std::uint32_t codecTag = static_cast<std::uint32_t>(chunk.codec);
  const std::uint64_t offset = static_cast<std::uint64_t>(out_.tellp());
  WriteRaw(out_, storedBytes);
  WriteRaw(out_, codecTag);
  WriteRaw(out_, rawBytes);
  out_.write(reinterpret_cast<const char*>(chunk.payload.data()),
             static_cast<std::streamsize>(storedBytes));
  std::uint32_t crc = Crc32(&codecTag, sizeof codecTag);
  crc = Crc32(&rawBytes, sizeof rawBytes, crc);
  crc = Crc32(chunk.payload.data(), chunk.payload.size(), crc);
  WriteRaw(out_, crc);
  ICTM_REQUIRE(out_.good(), "ictmb: chunk write failed: " + path_);
  index_.push_back({offset, chunk.binCount});
  if (recording) {
    chunksWritten.add();
    bytesWritten.add(storedBytes);
    writeNs.add(obs::Now() - t0);
  }
}

void TraceWriter::flushChunk() {
  if (buffer_.empty()) return;
  if (options_.compressThreads > 0) {
    if (!poolStarted_) startPool();
    enqueueChunk();
    return;
  }
  const std::size_t n2 = nodes_ * nodes_;
  writeFrame(encodeChunk(buffer_.data(), buffer_.size() / n2));
  buffer_.clear();
}

void TraceWriter::startPool() {
  poolStarted_ = true;
  jobCapacity_ = 2 * options_.compressThreads;
  resultWindow_ = options_.compressThreads + 2;
  compressors_.reserve(options_.compressThreads);
  for (std::size_t i = 0; i < options_.compressThreads; ++i) {
    compressors_.emplace_back([this] { compressLoop(); });
  }
  writerThread_ = std::thread([this] { writeLoop(); });
}

void TraceWriter::enqueueChunk() {
  const std::size_t n2 = nodes_ * nodes_;
  PendingChunk job;
  job.binCount = buffer_.size() / n2;
  job.bins = std::move(buffer_);
  buffer_ = {};
  buffer_.reserve(options_.binsPerChunk * n2);
  std::unique_lock<std::mutex> lock(poolMutex_);
  cvSpace_.wait(lock,
                [&] { return jobs_.size() < jobCapacity_ || poolError_; });
  // A failed pool stops accepting chunks; close() (or the next
  // append()) reports the stored error.
  if (poolError_) return;
  job.seq = sealed_++;
  jobs_.push_back(std::move(job));
  cvJob_.notify_one();
}

void TraceWriter::compressLoop() {
  for (;;) {
    PendingChunk job;
    {
      std::unique_lock<std::mutex> lock(poolMutex_);
      cvJob_.wait(lock,
                  [&] { return !jobs_.empty() || done_ || poolError_; });
      if (poolError_) return;
      if (jobs_.empty()) return;  // done_ and fully drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      cvSpace_.notify_all();
    }
    try {
      EncodedChunk encoded =
          encodeChunk(job.bins.data(), static_cast<std::size_t>(job.binCount));
      std::unique_lock<std::mutex> lock(poolMutex_);
      // Reorder window: hold the result until the write cursor is
      // close, bounding results_ memory.  Jobs are popped in seq
      // order, so the worker holding the cursor's chunk always passes
      // this predicate — no deadlock.
      cvSpace_.wait(lock, [&] {
        return job.seq < written_ + resultWindow_ || poolError_;
      });
      if (poolError_) return;
      results_.emplace(job.seq, std::move(encoded));
      cvResult_.notify_one();
    } catch (...) {
      setPoolError(std::current_exception());
      return;
    }
  }
}

void TraceWriter::writeLoop() {
  for (;;) {
    EncodedChunk chunk;
    {
      std::unique_lock<std::mutex> lock(poolMutex_);
      cvResult_.wait(lock, [&] {
        return poolError_ || results_.count(written_) != 0 ||
               (done_ && written_ == sealed_);
      });
      if (poolError_) return;
      auto it = results_.find(written_);
      if (it == results_.end()) return;  // everything sealed is on disk
      chunk = std::move(it->second);
      results_.erase(it);
    }
    try {
      writeFrame(chunk);
    } catch (...) {
      setPoolError(std::current_exception());
      return;
    }
    {
      std::lock_guard<std::mutex> lock(poolMutex_);
      ++written_;
    }
    cvSpace_.notify_all();
  }
}

void TraceWriter::setPoolError(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(poolMutex_);
    if (!poolError_) {
      poolError_ = true;
      firstError_ = std::move(error);
    }
  }
  cvJob_.notify_all();
  cvSpace_.notify_all();
  cvResult_.notify_all();
}

void TraceWriter::shutdownPool() {
  {
    std::lock_guard<std::mutex> lock(poolMutex_);
    done_ = true;
  }
  cvJob_.notify_all();
  cvResult_.notify_all();
  for (std::thread& t : compressors_) t.join();
  writerThread_.join();
  compressors_.clear();
}

void TraceWriter::close() {
  ICTM_REQUIRE(!closed_, "ictmb: close called twice: " + path_);
  closed_ = true;
  flushChunk();
  if (poolStarted_) {
    shutdownPool();
    // Threads are joined; pool state is safe to read unlocked.
    if (poolError_) std::rethrow_exception(firstError_);
  }

  // Index frame: marker, chunk count, per-chunk records, total bins,
  // CRC over everything after the marker.
  const std::uint64_t indexOffset =
      static_cast<std::uint64_t>(out_.tellp());
  WriteRaw(out_, kIndexMarker);
  std::vector<std::uint64_t> words;
  words.reserve(2 + 2 * index_.size());
  words.push_back(index_.size());
  for (const ChunkRecord& c : index_) {
    words.push_back(c.offset);
    words.push_back(c.binCount);
  }
  words.push_back(binsWritten_);
  out_.write(reinterpret_cast<const char*>(words.data()),
             static_cast<std::streamsize>(words.size() *
                                          sizeof(std::uint64_t)));
  WriteRaw(out_, Crc32(words.data(), words.size() * sizeof(std::uint64_t)));

  // Footer.
  WriteRaw(out_, indexOffset);
  out_.write(kEndMagic.data(), kEndMagic.size());
  out_.flush();
  ICTM_REQUIRE(out_.good(), "ictmb: index/footer write failed: " + path_);
  out_.close();
  // close() flushes any remaining buffered bytes; a short write or
  // full disk detected here must surface, not vanish.
  ICTM_REQUIRE(!out_.fail(),
               "ictmb: close failed (short write or full disk): " + path_);
}

// ---- TraceReader -----------------------------------------------------------

TraceReader::TraceReader(const std::string& path,
                         const TraceReaderOptions& options)
    : in_(path, std::ios::binary), path_(path), options_(options) {
  ICTM_REQUIRE(in_.is_open(), "cannot open file for reading: " + path);

  std::array<char, 8> magic{};
  in_.read(magic.data(), magic.size());
  ICTM_REQUIRE(in_.good() && magic == kMagic,
               "ictmb: bad magic (not an ictmb trace): " + path);
  std::uint32_t sentinel = 0, version = 0;
  ReadRaw(in_, sentinel, "header");
  ICTM_REQUIRE(sentinel == kByteOrderSentinel,
               "ictmb: byte-order mismatch (file written on a host with "
               "different endianness): " + path);
  ReadRaw(in_, version, "header");
  ICTM_REQUIRE(version == kVersionV1 || version == kVersionV2,
               "ictmb: unsupported version " + std::to_string(version) +
                   ": " + path);
  std::uint64_t nodes = 0, binsPerChunk = 0;
  double binSeconds = 0.0;
  ReadRaw(in_, nodes, "header");
  ReadRaw(in_, binSeconds, "header");
  ReadRaw(in_, binsPerChunk, "header");
  ICTM_REQUIRE(nodes > 0 && binsPerChunk > 0 && binSeconds > 0.0,
               "ictmb: malformed header fields: " + path);
  // Keeps nodes² · 8 below 2^59 so the consistency check against the
  // index can never overflow.
  ICTM_REQUIRE(nodes <= (std::uint64_t{1} << 28),
               "ictmb: header node count is implausible: " + path);

  // Footer → index offset → index frame.
  in_.seekg(0, std::ios::end);
  fileSize_ = static_cast<std::uint64_t>(in_.tellg());
  ICTM_REQUIRE(fileSize_ >= 16,
               "ictmb: truncated (no footer): " + path);
  in_.seekg(static_cast<std::streamoff>(fileSize_ - 16));
  std::uint64_t indexOffset = 0;
  ReadRaw(in_, indexOffset, "footer");
  std::array<char, 8> endMagic{};
  in_.read(endMagic.data(), endMagic.size());
  ICTM_REQUIRE(in_.good() && endMagic == kEndMagic,
               "ictmb: truncated or missing footer: " + path);
  ICTM_REQUIRE(indexOffset < fileSize_,
               "ictmb: corrupt footer (index offset out of range): " +
                   path);

  in_.seekg(static_cast<std::streamoff>(indexOffset));
  std::uint64_t marker = 0;
  ReadRaw(in_, marker, "index marker");
  ICTM_REQUIRE(marker == kIndexMarker,
               "ictmb: corrupt footer (no index at recorded offset): " +
                   path);
  std::uint64_t chunkCount = 0;
  ReadRaw(in_, chunkCount, "index");
  ICTM_REQUIRE(chunkCount <= fileSize_ / 16,
               "ictmb: corrupt index (chunk count too large): " + path);
  std::vector<std::uint64_t> words(2 * chunkCount + 1);
  in_.read(reinterpret_cast<char*>(words.data()),
           static_cast<std::streamsize>(words.size() *
                                        sizeof(std::uint64_t)));
  ICTM_REQUIRE(in_.good(), "ictmb: truncated index: " + path);
  std::uint32_t storedCrc = 0;
  ReadRaw(in_, storedCrc, "index CRC");
  std::uint32_t crc = Crc32(&chunkCount, sizeof chunkCount);
  crc = Crc32(words.data(), words.size() * sizeof(std::uint64_t), crc);
  ICTM_REQUIRE(crc == storedCrc, "ictmb: index CRC mismatch: " + path);

  index_.resize(chunkCount);
  std::uint64_t firstBin = 0;
  for (std::uint64_t c = 0; c < chunkCount; ++c) {
    index_[c] = {words[2 * c], words[2 * c + 1], firstBin};
    ICTM_REQUIRE(index_[c].binCount > 0 && index_[c].offset < fileSize_,
                 "ictmb: corrupt index entry: " + path);
    firstBin += index_[c].binCount;
  }
  const std::uint64_t totalBins = words[2 * chunkCount];
  ICTM_REQUIRE(firstBin == totalBins,
               "ictmb: index bin counts do not sum to the total: " + path);

  // The header is not CRC-protected (a v1 legacy), so its node count
  // must be cross-checked against the CRC-protected index before any
  // caller sizes a buffer from it: even the strongest codec stores at
  // least one byte per ~255 raw bytes (v1 stores payloads verbatim),
  // so the implied raw size cannot exceed this multiple of the file.
  const std::uint64_t maxExpand = version == kVersionV1 ? 1 : 512;
  if (totalBins > 0) {
    ICTM_REQUIRE(nodes * nodes * sizeof(double) <=
                     fileSize_ * maxExpand / totalBins,
                 "ictmb: header node count is inconsistent with the "
                 "file size: " + path);
  }

  info_.nodes = static_cast<std::size_t>(nodes);
  info_.bins = static_cast<std::size_t>(totalBins);
  info_.binSeconds = binSeconds;
  info_.binsPerChunk = static_cast<std::size_t>(binsPerChunk);
  info_.chunks = static_cast<std::size_t>(chunkCount);
  info_.version = version;
}

TraceReader::~TraceReader() {
  if (!prefetchStarted_) return;
  {
    std::lock_guard<std::mutex> lock(prefetchMutex_);
    prefetchStop_ = true;
  }
  prefetchCv_.notify_all();
  prefetchThread_.join();
}

void TraceReader::loadChunkData(std::istream& in, std::size_t chunk,
                                std::vector<double>& bins) const {
  static obs::Counter& chunksRead = obs::GetCounter(
      "trace_io.chunks_read", obs::MetricClass::kDeterministic);
  static obs::Counter& bytesRead = obs::GetCounter(
      "trace_io.bytes_read", obs::MetricClass::kDeterministic);
  static obs::Counter& readNs =
      obs::GetCounter("trace_io.read_ns", obs::MetricClass::kTiming);
  static obs::Counter& crcVerifyNs =
      obs::GetCounter("trace_io.crc_verify_ns", obs::MetricClass::kTiming);
  obs::TraceScope traceRead("chunk_read", "trace_io");
  const bool recording = obs::Enabled();
  const std::uint64_t t0 = recording ? obs::Now() : 0;
  const ChunkRecord& rec = index_[chunk];
  in.clear();
  in.seekg(static_cast<std::streamoff>(rec.offset));
  std::uint64_t storedBytes = 0;
  ReadRaw(in, storedBytes, "chunk length");
  const std::uint64_t n2 = info_.nodes * info_.nodes;
  const std::uint64_t rawExpected = rec.binCount * n2 * sizeof(double);

  if (info_.version == kVersionV1) {
    // v1 frame: payload length · payload doubles · CRC of payload.
    ICTM_REQUIRE(storedBytes == rawExpected,
                 "ictmb: chunk length disagrees with the index: " + path_);
    bins.resize(static_cast<std::size_t>(rawExpected / sizeof(double)));
    in.read(reinterpret_cast<char*>(bins.data()),
            static_cast<std::streamsize>(storedBytes));
    ICTM_REQUIRE(in.good(), "ictmb: truncated chunk payload: " + path_);
    std::uint32_t storedCrc = 0;
    ReadRaw(in, storedCrc, "chunk CRC");
    const std::uint64_t tCrc = recording ? obs::Now() : 0;
    const std::uint32_t computedCrc = Crc32(bins.data(), storedBytes);
    if (recording) crcVerifyNs.add(obs::Now() - tCrc);
    ICTM_REQUIRE(computedCrc == storedCrc,
                 "ictmb: chunk CRC mismatch (corrupt data) in chunk " +
                     std::to_string(chunk) + ": " + path_);
  } else {
    // v2 frame: stored length · codec tag · uncompressed length ·
    // payload · CRC of (codec ‖ uncompressed length ‖ payload).  The
    // length prefix is untrusted until these checks pass: it must fit
    // inside the file and inside the codec's worst-case expansion of
    // the index-declared bin count, so a forged prefix cannot trigger
    // an oversized allocation or a read past EOF.
    ICTM_REQUIRE(storedBytes <= fileSize_ - rec.offset,
                 "ictmb: chunk length prefix runs past the end of the "
                 "file: " + path_);
    ICTM_REQUIRE(storedBytes <= LzBound(static_cast<std::size_t>(rawExpected)),
                 "ictmb: chunk length exceeds the codec expansion bound: " +
                     path_);
    std::uint32_t codecTag = 0;
    std::uint64_t rawBytes = 0;
    ReadRaw(in, codecTag, "chunk codec tag");
    ReadRaw(in, rawBytes, "chunk uncompressed length");
    ICTM_REQUIRE(codecTag < kChunkCodecCount,
                 "ictmb: unknown chunk codec tag " +
                     std::to_string(codecTag) + ": " + path_);
    ICTM_REQUIRE(rawBytes == rawExpected,
                 "ictmb: chunk uncompressed length disagrees with the "
                 "index: " + path_);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(storedBytes));
    in.read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(storedBytes));
    ICTM_REQUIRE(in.good(), "ictmb: truncated chunk payload: " + path_);
    std::uint32_t storedCrc = 0;
    ReadRaw(in, storedCrc, "chunk CRC");
    const std::uint64_t tCrc = recording ? obs::Now() : 0;
    std::uint32_t crc = Crc32(&codecTag, sizeof codecTag);
    crc = Crc32(&rawBytes, sizeof rawBytes, crc);
    crc = Crc32(payload.data(), payload.size(), crc);
    if (recording) crcVerifyNs.add(obs::Now() - tCrc);
    ICTM_REQUIRE(crc == storedCrc,
                 "ictmb: chunk CRC mismatch (corrupt data) in chunk " +
                     std::to_string(chunk) + ": " + path_);
    bins.resize(static_cast<std::size_t>(rawExpected / sizeof(double)));
    DecodeChunk(static_cast<ChunkCodec>(codecTag), payload.data(),
                payload.size(), bins.data(),
                static_cast<std::size_t>(rec.binCount),
                static_cast<std::size_t>(n2));
  }
  if (recording) {
    chunksRead.add();
    bytesRead.add(storedBytes);
    readNs.add(obs::Now() - t0);
  }
}

void TraceReader::startPrefetch() {
  prefetchStarted_ = true;
  prefetchThread_ = std::thread([this] { prefetchLoop(); });
}

void TraceReader::prefetchLoop() {
  // The prefetch thread owns its own file handle so the synchronous
  // path's stream state never races with it.
  std::ifstream in(path_, std::ios::binary);
  for (;;) {
    std::size_t chunk = SIZE_MAX;
    {
      std::unique_lock<std::mutex> lock(prefetchMutex_);
      prefetchCv_.wait(lock, [&] {
        return prefetchStop_ || prefetchRequest_ != SIZE_MAX;
      });
      if (prefetchStop_) return;
      chunk = prefetchRequest_;
      prefetchRequest_ = SIZE_MAX;
    }
    std::vector<double> bins;
    std::exception_ptr error;
    try {
      ICTM_REQUIRE(in.is_open(),
                   "cannot open file for reading: " + path_);
      loadChunkData(in, chunk, bins);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(prefetchMutex_);
      prefetchData_ = std::move(bins);
      prefetchError_ = error;
      prefetchResultChunk_ = chunk;
    }
    prefetchCv_.notify_all();
  }
}

void TraceReader::requestPrefetch(std::size_t chunk) {
  if (!prefetchStarted_) startPrefetch();
  {
    std::lock_guard<std::mutex> lock(prefetchMutex_);
    if (prefetchResultChunk_ == chunk || prefetchRequest_ == chunk) return;
    if (prefetchResultChunk_ != SIZE_MAX) {
      // Stale unconsumed result (a seek moved elsewhere) — drop it,
      // deferred error included.
      prefetchResultChunk_ = SIZE_MAX;
      prefetchData_.clear();
      prefetchError_ = nullptr;
    }
    prefetchRequest_ = chunk;
  }
  prefetchCv_.notify_all();
}

bool TraceReader::consumePrefetch(std::size_t chunk) {
  if (!prefetchStarted_) return false;
  std::unique_lock<std::mutex> lock(prefetchMutex_);
  if (prefetchRequest_ != chunk && prefetchResultChunk_ != chunk) {
    // Nothing useful in flight; drop any stale result and let the
    // caller load synchronously.
    if (prefetchResultChunk_ != SIZE_MAX) {
      prefetchResultChunk_ = SIZE_MAX;
      prefetchData_.clear();
      prefetchError_ = nullptr;
    }
    return false;
  }
  prefetchCv_.wait(lock, [&] { return prefetchResultChunk_ == chunk; });
  std::exception_ptr error = prefetchError_;
  prefetchError_ = nullptr;
  prefetchResultChunk_ = SIZE_MAX;
  if (error) {
    // A prefetch failure surfaces exactly when its chunk is demanded.
    prefetchData_.clear();
    std::rethrow_exception(error);
  }
  std::swap(chunk_, prefetchData_);
  prefetchData_.clear();
  loadedChunk_ = chunk;
  return true;
}

void TraceReader::loadChunk(std::size_t chunk) {
  if (!consumePrefetch(chunk)) {
    loadChunkData(in_, chunk, chunk_);
    loadedChunk_ = chunk;
  }
  if (options_.prefetch && chunk + 1 < index_.size()) {
    requestPrefetch(chunk + 1);
  }
}

bool TraceReader::next(double* outBin) {
  if (position_ >= info_.bins) return false;
  // Chunks are K bins each except possibly the last, so the owning
  // chunk is a division away; verify against the index anyway.
  std::size_t chunk = position_ / info_.binsPerChunk;
  if (chunk >= index_.size() || position_ < index_[chunk].firstBin ||
      position_ >= index_[chunk].firstBin + index_[chunk].binCount) {
    chunk = 0;
    while (position_ >=
           index_[chunk].firstBin + index_[chunk].binCount) {
      ++chunk;
    }
  }
  if (chunk != loadedChunk_) loadChunk(chunk);
  const std::size_t n2 = info_.nodes * info_.nodes;
  const std::size_t offsetInChunk = position_ - index_[chunk].firstBin;
  std::memcpy(outBin, chunk_.data() + offsetInChunk * n2,
              n2 * sizeof(double));
  ++position_;
  return true;
}

void TraceReader::seek(std::size_t bin) {
  ICTM_REQUIRE(bin <= info_.bins,
               "ictmb: seek past the end of the trace: " + path_);
  position_ = bin;
}

traffic::TrafficMatrixSeries TraceReader::readAll() {
  const std::size_t remaining = info_.bins - position_;
  ICTM_REQUIRE(remaining > 0, "ictmb: no bins left to read: " + path_);
  traffic::TrafficMatrixSeries series(info_.nodes, remaining,
                                      info_.binSeconds);
  for (std::size_t t = 0; t < remaining; ++t) {
    ICTM_REQUIRE(next(series.binData(t)),
                 "ictmb: unexpected end of trace: " + path_);
  }
  return series;
}

// ---- converters ------------------------------------------------------------

void WriteTraceFile(const std::string& path,
                    const traffic::TrafficMatrixSeries& series,
                    std::size_t binsPerChunk) {
  WriteTraceFile(path, series,
                 TraceWriterOptions{binsPerChunk, ChunkCodec::kRaw, 0});
}

void WriteTraceFile(const std::string& path,
                    const traffic::TrafficMatrixSeries& series,
                    const TraceWriterOptions& options) {
  TraceWriter writer(path, series.nodeCount(), series.binSeconds(),
                     options);
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    writer.append(series.binData(t));
  }
  writer.close();
}

traffic::TrafficMatrixSeries ReadTraceFile(const std::string& path) {
  TraceReader reader(path);
  return reader.readAll();
}

void ConvertCsvToTrace(const std::string& csvPath,
                       const std::string& tracePath,
                       std::size_t binsPerChunk) {
  ConvertCsvToTrace(csvPath, tracePath,
                    TraceWriterOptions{binsPerChunk, ChunkCodec::kRaw, 0});
}

void ConvertCsvToTrace(const std::string& csvPath,
                       const std::string& tracePath,
                       const TraceWriterOptions& options) {
  std::ifstream in(csvPath);
  ICTM_REQUIRE(in.is_open(), "cannot open file for reading: " + csvPath);
  const traffic::CsvHeader h = traffic::ReadCsvHeader(in);
  TraceWriter writer(tracePath, h.nodes, h.binSeconds, options);
  std::vector<double> bin(h.nodes * h.nodes);
  for (std::size_t t = 0; t < h.bins; ++t) {
    traffic::ReadCsvBin(in, h, t, bin.data());
    writer.append(bin.data());
  }
  writer.close();
}

void ConvertTraceToCsv(const std::string& tracePath,
                       const std::string& csvPath) {
  TraceReader reader(tracePath);
  std::ofstream out(csvPath);
  ICTM_REQUIRE(out.is_open(), "cannot open file for writing: " + csvPath);
  const TraceInfo& info = reader.info();
  traffic::WriteCsvHeader(out, {info.nodes, info.bins, info.binSeconds});
  std::vector<double> bin(info.nodes * info.nodes);
  while (reader.next(bin.data())) {
    traffic::WriteCsvBin(out, info.nodes, bin.data());
  }
  ICTM_REQUIRE(out.good(), "stream failure while writing TM CSV: " +
                               csvPath);
}

bool IsTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  return in.good() && magic == kMagic;
}

// ---- repack ----------------------------------------------------------------

RepackResult RepackTrace(const std::string& inPath,
                         const std::string& outPath,
                         const TraceWriterOptions& options) {
  ICTM_REQUIRE(inPath != outPath,
               "ictmb repack: input and output paths must differ: " +
                   inPath);
  TraceReaderOptions readerOptions;
  readerOptions.prefetch = true;
  TraceReader reader(inPath, readerOptions);
  const TraceInfo info = reader.info();
  TraceWriterOptions writerOptions = options;
  if (writerOptions.binsPerChunk == 0) {
    writerOptions.binsPerChunk = info.binsPerChunk;
  }
  TraceWriter writer(outPath, info.nodes, info.binSeconds, writerOptions);
  std::vector<double> bin(info.nodes * info.nodes);
  while (reader.next(bin.data())) writer.append(bin.data());
  writer.close();

  RepackResult result;
  result.bins = info.bins;
  result.inputBytes = FileSizeOf(inPath);
  result.outputBytes = FileSizeOf(outPath);
  return result;
}

}  // namespace ictm::stream
