#include "stream/aggregate.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ictm::stream {

ConnectionAggregator::ConnectionAggregator(const linalg::CsrMatrix& routing,
                                           std::size_t nodes,
                                           BinCallback onBin)
    : routing_(routing), n_(nodes), onBin_(std::move(onBin)) {
  ICTM_REQUIRE(onBin_ != nullptr, "bin callback is null");
  ICTM_REQUIRE(routing.cols() == nodes * nodes,
               "routing matrix column mismatch");
  tm_.assign(n_ * n_, 0.0);
}

void ConnectionAggregator::add(const conngen::Connection& connection) {
  ICTM_REQUIRE(connection.initiator < n_ && connection.responder < n_,
               "connection node index out of range");
  if (!open_) {
    open_ = true;
    currentBin_ = 0;  // bin 0 of the stream is time bin 0
  }
  ICTM_REQUIRE(connection.bin >= currentBin_,
               "connections must arrive in non-decreasing bin order");
  // Close (possibly empty) bins up to the connection's bin, so stream
  // sequence numbers stay aligned with time.
  while (connection.bin > currentBin_) {
    emitCurrentBin();
    ++currentBin_;
  }
  tm_[connection.initiator * n_ + connection.responder] +=
      connection.forwardBytes;
  tm_[connection.responder * n_ + connection.initiator] +=
      connection.reverseBytes;
}

void ConnectionAggregator::flush() {
  if (!open_) return;
  emitCurrentBin();
  open_ = false;
}

void ConnectionAggregator::emitCurrentBin() {
  BinEvent event = MakeBinEvent(routing_, n_, tm_.data());
  onBin_(currentBin_, event, tm_.data());
  ++binsEmitted_;
  std::fill(tm_.begin(), tm_.end(), 0.0);
}

}  // namespace ictm::stream
