#include "stream/online.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/ic_model.hpp"
#include "core/priors.hpp"
#include "linalg/svd.hpp"
#include "obs/metrics.hpp"
#include "obs/now.hpp"
#include "obs/trace.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::stream {

namespace {

// Immutable prior-model snapshot shared by every event of one window
// generation.  Workers only read it; push() swaps in a new snapshot at
// window boundaries, so an event's prior is fixed at push time — the
// root of the thread-count/queue-capacity determinism contract.
struct PriorModel {
  double f = 0.25;
  linalg::Vector preference;  // the exact vector phi was built from,
                              // so checkpoint() can rebuild the model
  linalg::Matrix phi;         // n² x n  (Eq. 7 operator for fixed f, P)
  linalg::Matrix qphiPinv;    // n x 2n  (Eq. 8 pseudo-inverse)
};

std::shared_ptr<const PriorModel> BuildPriorModel(
    double f, const linalg::Vector& preference, std::size_t n) {
  auto model = std::make_shared<PriorModel>();
  model->f = f;
  model->preference = preference;
  model->phi = core::BuildActivityOperator(f, preference);
  model->qphiPinv =
      linalg::PseudoInverse(traffic::BuildMarginalOperator(n) * model->phi);
  return model;
}

// Stable-fP prior for one bin — the exact floating-point sequence of
// core::StableFPPrior, so a streaming run with window = 0 reproduces
// the batch prior series bit for bit.
void ComputePriorBin(const PriorModel& model, const double* ingress,
                     const double* egress, std::size_t n, double* outBin) {
  linalg::Vector counts(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] = ingress[i];
    counts[n + i] = egress[i];
  }
  const linalg::Vector aTilde = model.qphiPinv * counts;
  const linalg::Vector x = model.phi * aTilde;
  for (std::size_t k = 0; k < n * n; ++k) {
    outBin[k] = std::max(x[k], 0.0);
  }
}

struct QueueItem {
  std::size_t seq = 0;
  BinEvent event;
  std::shared_ptr<const PriorModel> model;
  // Enqueue timestamp for the queue-wait metric; 0 when metrics are
  // disabled (obs::Now() is monotonic-since-boot, never 0 live).
  std::uint64_t enqueueNs = 0;
};

struct PendingResult {
  std::vector<double> estimate;
  std::vector<double> prior;
};

}  // namespace

struct StreamingEstimator::Impl {
  std::shared_ptr<const core::AugmentedTmSystem> system;
  StreamingOptions options;
  EstimateCallback callback;
  std::size_t n = 0;

  // Producer-side state (touched only inside push, which serialises
  // under queueMutex): window accumulators and the current snapshot.
  std::shared_ptr<const PriorModel> currentModel;
  linalg::Vector windowIngress, windowEgress;
  std::size_t windowFill = 0;

  // Bounded queue.
  std::mutex queueMutex;
  std::condition_variable notFull, notEmpty;
  std::deque<QueueItem> queue;
  bool finished = false;

  // Reorder buffer: results enter keyed by sequence number and leave
  // strictly in order through the callback.
  std::mutex emitMutex;
  std::map<std::size_t, PendingResult> pending;
  std::size_t nextEmit = 0;

  // First worker failure; failed unblocks every waiter.
  std::mutex errorMutex;
  std::exception_ptr firstError;
  std::atomic<bool> failed{false};

  std::atomic<std::size_t> pushed{0};
  std::atomic<std::size_t> emitted{0};
  std::vector<std::thread> workers;
  bool joined = false;

  Impl(std::shared_ptr<const core::AugmentedTmSystem> sys,
       StreamingOptions opts, EstimateCallback cb)
      : system(std::move(sys)),
        options(std::move(opts)),
        callback(std::move(cb)),
        n(system->nodeCount()) {}

  void fail(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = e;
    }
    // `failed` must flip under queueMutex: both condvars wait on
    // predicates that read it, and a store+notify outside the mutex
    // can land between a waiter's predicate check and its block —
    // the wakeup is lost and push()/workerLoop wait forever on a
    // failure that already happened (found in the PR-6 TSan audit;
    // regression-tested by StreamingEstimator.WorkerFailurePropagates).
    {
      std::lock_guard<std::mutex> lock(queueMutex);
      failed.store(true);
    }
    notFull.notify_all();
    notEmpty.notify_all();
  }

  void workerLoop() {
    // Stage metrics (docs/ARCHITECTURE.md "Observability").  Timing
    // metrics depend on scheduling; the counters are deterministic
    // (bins emitted == bins pushed for any thread count).
    static obs::Counter& binsEmitted = obs::GetCounter(
        "stream.bins_emitted", obs::MetricClass::kDeterministic);
    static obs::Counter& workerIdleNs =
        obs::GetCounter("stream.worker_idle_ns", obs::MetricClass::kTiming);
    static obs::Counter& workerBusyNs =
        obs::GetCounter("stream.worker_busy_ns", obs::MetricClass::kTiming);
    static obs::Histogram& queueWaitNs =
        obs::GetHistogram("stream.queue_wait_ns", obs::MetricClass::kTiming,
                          obs::LatencyBoundsNs());
    static obs::Histogram& solveNs =
        obs::GetHistogram("stream.solve_ns", obs::MetricClass::kTiming,
                          obs::LatencyBoundsNs());
    static obs::Histogram& reorderOccupancy = obs::GetHistogram(
        "stream.reorder_occupancy", obs::MetricClass::kTiming,
        obs::ExponentialBounds(1.0, 2.0, 10));
    static obs::Gauge& reorderMax = obs::GetGauge(
        "stream.reorder_pending", obs::MetricClass::kTiming);
    try {
      core::TmBinSolver solver(*system, options.estimation);
      std::vector<double> prior(n * n), estimate(n * n);
      for (;;) {
        QueueItem item;
        {
          std::unique_lock<std::mutex> lock(queueMutex);
          const bool recording = obs::Enabled();
          const std::uint64_t idleStart = recording ? obs::Now() : 0;
          notEmpty.wait(lock, [&] {
            return !queue.empty() || finished || failed.load();
          });
          if (recording) workerIdleNs.add(obs::Now() - idleStart);
          if (failed.load()) return;
          if (queue.empty()) return;  // finished and drained
          item = std::move(queue.front());
          queue.pop_front();
        }
        notFull.notify_one();
        if (item.enqueueNs != 0) {
          queueWaitNs.record(
              static_cast<double>(obs::Now() - item.enqueueNs));
        }

        {
          obs::TraceScope traceSolve("solve", "stream");
          const bool recording = obs::Enabled();
          const std::uint64_t solveStart = recording ? obs::Now() : 0;
          ComputePriorBin(*item.model, item.event.ingress.data(),
                          item.event.egress.data(), n, prior.data());
          solver.Solve(item.event.linkLoads.data(), prior.data(),
                       item.event.ingress.data(), item.event.egress.data(),
                       estimate.data());
          if (recording) {
            const std::uint64_t busy = obs::Now() - solveStart;
            solveNs.record(static_cast<double>(busy));
            workerBusyNs.add(busy);
          }
        }

        std::lock_guard<std::mutex> lock(emitMutex);
        pending.emplace(item.seq, PendingResult{estimate, prior});
        reorderOccupancy.record(static_cast<double>(pending.size()));
        reorderMax.recordMax(static_cast<std::int64_t>(pending.size()));
        while (!pending.empty() &&
               pending.begin()->first == nextEmit) {
          const PendingResult& r = pending.begin()->second;
          callback(nextEmit, r.estimate.data(), r.prior.data());
          pending.erase(pending.begin());
          ++nextEmit;
          emitted.fetch_add(1);
          binsEmitted.add();
        }
      }
    } catch (...) {
      fail(std::current_exception());
    }
  }
};

StreamingEstimator::StreamingEstimator(const linalg::CsrMatrix& routing,
                                       std::size_t nodes,
                                       StreamingOptions options,
                                       EstimateCallback onEstimate) {
  // The flag is read before `options` is moved into the Impl.
  auto system = std::make_shared<core::AugmentedTmSystem>(
      routing, nodes, options.estimation.useMarginalConstraints);
  impl_ = std::make_unique<Impl>(std::move(system), std::move(options),
                                 std::move(onEstimate));
  initialize();
}

StreamingEstimator::StreamingEstimator(
    std::shared_ptr<const core::AugmentedTmSystem> system,
    StreamingOptions options, EstimateCallback onEstimate) {
  ICTM_REQUIRE(system != nullptr, "augmented system is null");
  impl_ = std::make_unique<Impl>(std::move(system), std::move(options),
                                 std::move(onEstimate));
  initialize();
}

void StreamingEstimator::initialize() {
  StreamingOptions& opts = impl_->options;
  const std::size_t nodes = impl_->n;
  ICTM_REQUIRE(impl_->callback != nullptr, "estimate callback is null");
  ICTM_REQUIRE(opts.queueCapacity > 0, "queue capacity must be positive");
  ICTM_REQUIRE(opts.f > 0.0 && opts.f < 1.0, "f must be in (0, 1)");
  if (opts.window > 0) {
    // The window re-fit uses the stable-f closed forms, which lose
    // rank at f = 1/2.
    ICTM_REQUIRE(std::fabs(2.0 * opts.f - 1.0) > 1e-6,
                 "window re-fit requires f away from 1/2");
  }
  if (opts.preference.empty()) {
    opts.preference.assign(nodes, 1.0 / static_cast<double>(nodes));
  }
  ICTM_REQUIRE(opts.preference.size() == nodes,
               "preference length mismatch");

  if (opts.resume) {
    // Resume mid-stream: rebuild the prior model the original run held
    // at the checkpoint boundary (BuildPriorModel is deterministic, so
    // the rebuilt operators are bit-identical) and continue sequence
    // numbering where the checkpoint left off.
    const StreamingCheckpoint& cp = *opts.resume;
    ICTM_REQUIRE(cp.preference.size() == nodes,
                 "checkpoint preference length mismatch");
    ICTM_REQUIRE(cp.windowIngress.size() == nodes &&
                     cp.windowEgress.size() == nodes,
                 "checkpoint window accumulator length mismatch");
    ICTM_REQUIRE(opts.window == 0 || cp.windowFill < opts.window,
                 "checkpoint window fill exceeds the window");
    impl_->currentModel = BuildPriorModel(opts.f, cp.preference, nodes);
    impl_->windowIngress = cp.windowIngress;
    impl_->windowEgress = cp.windowEgress;
    impl_->windowFill = cp.windowFill;
    const auto seq = static_cast<std::size_t>(cp.seq);
    impl_->pushed.store(seq);
    impl_->emitted.store(seq);
    impl_->nextEmit = seq;
  } else {
    impl_->currentModel = BuildPriorModel(opts.f, opts.preference, nodes);
    impl_->windowIngress.assign(nodes, 0.0);
    impl_->windowEgress.assign(nodes, 0.0);
  }

  const std::size_t workers = ResolveThreadCount(opts.threads);
  impl_->workers.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    impl_->workers.emplace_back([this] { impl_->workerLoop(); });
  }
}

StreamingEstimator::~StreamingEstimator() {
  if (impl_->joined) return;
  try {
    finish();
  } catch (...) {
    // Destructor fallback only; call finish() to observe failures.
  }
}

void StreamingEstimator::push(BinEvent event) {
  static obs::Counter& binsPushed = obs::GetCounter(
      "stream.bins_pushed", obs::MetricClass::kDeterministic);
  static obs::Counter& windowRefits = obs::GetCounter(
      "stream.window_refits", obs::MetricClass::kDeterministic);
  static obs::Counter& queueFullStalls = obs::GetCounter(
      "stream.queue_full_stalls", obs::MetricClass::kTiming);
  static obs::Histogram& pushWaitNs =
      obs::GetHistogram("stream.push_wait_ns", obs::MetricClass::kTiming,
                        obs::LatencyBoundsNs());
  obs::TraceScope tracePush("push", "stream");
  Impl& im = *impl_;
  ICTM_REQUIRE(event.linkLoads.size() == im.system->linkCount(),
               "link load length mismatch");
  ICTM_REQUIRE(event.ingress.size() == im.n && event.egress.size() == im.n,
               "marginal length mismatch");

  QueueItem item;
  item.event = std::move(event);

  {
    std::unique_lock<std::mutex> lock(im.queueMutex);
    ICTM_REQUIRE(!im.finished, "push after finish");
    // Sequence-stamp and snapshot the prior model under the queue lock
    // so concurrent producers still observe one global arrival order.
    item.seq = im.pushed.fetch_add(1);
    item.model = im.currentModel;
    binsPushed.add();

    // Window accounting: the bin completing a window still uses the
    // old model; bins after it use the re-fitted one.
    if (im.options.window > 0) {
      for (std::size_t i = 0; i < im.n; ++i) {
        im.windowIngress[i] += item.event.ingress[i];
        im.windowEgress[i] += item.event.egress[i];
      }
      if (++im.windowFill == im.options.window) {
        // Stable-f closed forms on the window-aggregated marginals
        // (preference is scale-invariant, so sums work as means);
        // yesterday's f is kept, per the paper's stability result.
        const core::StableFEstimates est =
            core::EstimateStableFParameters(
                im.options.f, im.windowIngress, im.windowEgress);
        im.currentModel =
            BuildPriorModel(im.options.f, est.preference, im.n);
        im.windowIngress.assign(im.n, 0.0);
        im.windowEgress.assign(im.n, 0.0);
        im.windowFill = 0;
        windowRefits.add();
      }
    }

    const bool recording = obs::Enabled();
    if (recording && im.queue.size() >= im.options.queueCapacity) {
      queueFullStalls.add();
    }
    const std::uint64_t waitStart = recording ? obs::Now() : 0;
    im.notFull.wait(lock, [&] {
      return im.queue.size() < im.options.queueCapacity ||
             im.failed.load();
    });
    if (recording) {
      pushWaitNs.record(static_cast<double>(obs::Now() - waitStart));
      item.enqueueNs = obs::Now();
    }
    if (!im.failed.load()) {
      im.queue.push_back(std::move(item));
    }
  }
  im.notEmpty.notify_one();
  if (im.failed.load()) finish();  // rethrows the worker error
}

void StreamingEstimator::finish() {
  Impl& im = *impl_;
  if (!im.joined) {
    {
      std::lock_guard<std::mutex> lock(im.queueMutex);
      im.finished = true;
    }
    im.notEmpty.notify_all();
    for (std::thread& t : im.workers) t.join();
    im.joined = true;
  }
  {
    std::lock_guard<std::mutex> lock(im.errorMutex);
    if (im.firstError) std::rethrow_exception(im.firstError);
  }
  ICTM_REQUIRE(im.emitted.load() == im.pushed.load(),
               "streaming estimator lost bins");
}

std::size_t StreamingEstimator::pushedCount() const noexcept {
  return impl_->pushed.load();
}

StreamingCheckpoint StreamingEstimator::checkpoint() const {
  Impl& im = *impl_;
  // The producer-side state is only written inside push() under
  // queueMutex; taking the same lock gives a consistent snapshot at
  // the current push boundary.
  std::lock_guard<std::mutex> lock(im.queueMutex);
  StreamingCheckpoint cp;
  cp.seq = im.pushed.load();
  cp.preference = im.currentModel->preference;
  cp.windowIngress = im.windowIngress;
  cp.windowEgress = im.windowEgress;
  cp.windowFill = im.windowFill;
  return cp;
}

std::size_t StreamingEstimator::emittedCount() const noexcept {
  return impl_->emitted.load();
}

BinEvent MakeBinEvent(const linalg::CsrMatrix& routing, std::size_t nodes,
                      const double* truthBin) {
  BinEvent event;
  event.linkLoads.resize(routing.rows());
  routing.MultiplyInto(truthBin, event.linkLoads.data());
  event.ingress.assign(nodes, 0.0);
  event.egress.assign(nodes, 0.0);
  // Same accumulation order as core::EstimateSeries, for bit-equal
  // downstream comparisons.
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = 0; j < nodes; ++j) {
      const double v = truthBin[i * nodes + j];
      event.ingress[i] += v;
      event.egress[j] += v;
    }
  }
  return event;
}

StreamingRunResult EstimateSeriesStreaming(
    const linalg::CsrMatrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const StreamingOptions& options) {
  const std::size_t n = truth.nodeCount();
  const std::size_t bins = truth.binCount();
  ICTM_REQUIRE(bins > 0, "empty truth series");
  StreamingRunResult result{
      traffic::TrafficMatrixSeries(n, bins, truth.binSeconds()),
      traffic::TrafficMatrixSeries(n, bins, truth.binSeconds())};

  StreamingEstimator estimator(
      routing, n, options,
      [&](std::size_t seq, const double* estimate, const double* prior) {
        std::copy(estimate, estimate + n * n, result.estimates.binData(seq));
        std::copy(prior, prior + n * n, result.priors.binData(seq));
      });
  for (std::size_t t = 0; t < bins; ++t) {
    estimator.push(MakeBinEvent(routing, n, truth.binData(t)));
  }
  estimator.finish();
  return result;
}

}  // namespace ictm::stream
