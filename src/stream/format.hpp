// `ictmb` — the chunked binary trace container for TM series.
//
// The batch pipelines parse O(n²·T) CSV text before the first estimate
// can run; this format streams bins at memcpy speed with bounded
// memory and supports random access.  Layout (native little-endian
// byte order, validated by a sentinel; normative spec in
// docs/FORMATS.md):
//
//   header   magic "ICTMB1\r\n" · byte-order sentinel · version ·
//            nodes · binSeconds · binsPerChunk
//   chunks   repeated frames.  v2: u64 stored-payload length prefix ·
//            u32 codec tag · u64 uncompressed length · payload ·
//            u32 CRC-32 of (codec tag ‖ uncompressed length ‖
//            payload).  v1 frames (still readable) have no codec tag
//            or uncompressed length and the CRC covers the payload
//            alone.
//   index    frame with the length prefix set to the index marker:
//            chunk count · per-chunk {file offset, bin count} ·
//            total bins · u32 CRC-32 of the index
//   footer   u64 index offset · end magic "ICTMBEOF"
//
// The trailing index makes the file self-describing (total bin count
// without scanning) and gives TraceReader::seek O(1) random access —
// every chunk decodes independently of its neighbours, whatever its
// codec.  The per-chunk CRC turns truncation and bit rot into loud
// errors instead of corrupt estimates.  The \r\n in the magic catches
// text-mode transfer damage, as in PNG.
//
// Writers always emit version 2.  Each chunk records the codec its
// payload was actually stored with: a chunk whose compressed form
// would not be smaller than raw falls back to `raw` per chunk, so a
// codec can never inflate a file beyond the per-frame header cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stream/codec.hpp"
#include "traffic/tm_series.hpp"

/// Streaming subsystem: chunked binary trace I/O, the online
/// estimator and the connection-to-bin-event ingest adapter.
namespace ictm::stream {

/// Metadata of an open trace (header + trailing index).
struct TraceInfo {
  std::size_t nodes = 0;         ///< matrix dimension n
  std::size_t bins = 0;          ///< total bins (from the index)
  double binSeconds = 0.0;       ///< bin duration metadata
  std::size_t binsPerChunk = 0;  ///< frame granularity K
  std::size_t chunks = 0;        ///< number of chunk frames
  std::uint32_t version = 0;     ///< container version (1 or 2)
};

/// CRC-32 (polynomial 0xEDB88320, the zlib/PNG one) of a byte range;
/// chain calls by passing the previous result as `seed`.
std::uint32_t Crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);

/// TraceWriter knobs.
struct TraceWriterOptions {
  std::size_t binsPerChunk = 64;              ///< frame granularity K
  ChunkCodec codec = ChunkCodec::kRaw;        ///< requested chunk codec
  /// Compression worker threads.  0 encodes and writes inline on the
  /// appending thread; N > 0 starts N compressors plus one writer
  /// thread that lands frames in seal order, so the file bytes are
  /// identical for every pool size.  Memory stays bounded: at most
  /// ~3N sealed-or-encoded chunks are in flight and append() blocks
  /// when the queue is full.
  std::size_t compressThreads = 0;
};

/// Appends bins to an `ictmb` v2 file without materialising the
/// series: bins are buffered into frames of `binsPerChunk`, encoded
/// with the configured codec (falling back to raw per chunk when
/// compression would not shrink it) and flushed with a self-describing
/// frame header and CRC.  close() writes the chunk index and footer
/// and is the sanctioned error-reporting path: any write failure —
/// including one detected on a compression worker — surfaces there
/// (or from an earlier append()) as ictm::Error.  The destructor
/// calls close() as a last-resort fallback but swallows errors; call
/// close() explicitly to observe IO failures.
class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header.
  TraceWriter(const std::string& path, std::size_t nodes,
              double binSeconds, const TraceWriterOptions& options);
  /// Convenience overload: raw codec, inline encoding.
  TraceWriter(const std::string& path, std::size_t nodes,
              double binSeconds, std::size_t binsPerChunk = 64);
  /// Calls close() as a fallback, swallowing errors.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;             ///< non-copyable
  TraceWriter& operator=(const TraceWriter&) = delete;  ///< non-copyable

  /// Appends one bin (n² doubles in FlattenTm order).  Rethrows a
  /// pending worker-pool failure instead of accepting more data.
  void append(const double* bin);

  /// Flushes the current chunk, drains the worker pool and writes the
  /// index + footer; the writer cannot append afterwards.  Throws
  /// ictm::Error on any IO failure, including short writes and full
  /// disks detected at the final flush.
  void close();

  /// Bins appended so far.
  std::size_t binsWritten() const noexcept { return binsWritten_; }

 private:
  /// One encoded chunk ready to land on disk.
  struct EncodedChunk {
    ChunkCodec codec = ChunkCodec::kRaw;  // codec actually stored
    std::uint64_t binCount = 0;
    std::vector<std::uint8_t> payload;
  };
  /// One sealed chunk awaiting compression.
  struct PendingChunk {
    std::uint64_t seq = 0;
    std::uint64_t binCount = 0;
    std::vector<double> bins;
  };

  void flushChunk();
  void writeFrame(const EncodedChunk& chunk);
  EncodedChunk encodeChunk(const double* bins, std::size_t binCount) const;
  void startPool();
  void enqueueChunk();
  void compressLoop();
  void writeLoop();
  void setPoolError(std::exception_ptr error);
  void shutdownPool();

  std::ofstream out_;
  std::string path_;
  std::size_t nodes_ = 0;
  TraceWriterOptions options_;
  std::size_t binsWritten_ = 0;
  std::vector<double> buffer_;  // partial chunk, <= binsPerChunk bins
  struct ChunkRecord {
    std::uint64_t offset = 0;
    std::uint64_t binCount = 0;
  };
  std::vector<ChunkRecord> index_;
  bool closed_ = false;

  // Worker pool (only active when options_.compressThreads > 0).
  // jobs_ is bounded by jobCapacity_; results_ is bounded by the
  // reorder window (a worker holds its result until the write cursor
  // is close enough), so total in-flight memory is bounded.
  bool poolStarted_ = false;
  std::vector<std::thread> compressors_;
  std::thread writerThread_;
  std::mutex poolMutex_;
  std::condition_variable cvJob_;     // job available (compressors wait)
  std::condition_variable cvSpace_;   // job/result space (producers wait)
  std::condition_variable cvResult_;  // result available (writer waits)
  std::deque<PendingChunk> jobs_;
  std::map<std::uint64_t, EncodedChunk> results_;
  std::size_t jobCapacity_ = 0;
  std::size_t resultWindow_ = 0;
  std::uint64_t sealed_ = 0;   // chunks handed to the pool
  std::uint64_t written_ = 0;  // chunks landed on disk
  bool done_ = false;          // no more chunks will be sealed
  bool poolError_ = false;
  std::exception_ptr firstError_;
};

/// TraceReader knobs.
struct TraceReaderOptions {
  /// Read and decode one chunk ahead on a background thread with its
  /// own file handle, overlapping IO + decompression with the
  /// caller's consumption.  Decoded bins are bit-identical to the
  /// serial path; a prefetch failure is rethrown only when the failing
  /// chunk is actually requested (and discarded if a seek skips it).
  bool prefetch = false;
};

/// Streams bins out of an `ictmb` file (version 1 or 2).
/// Construction validates the header, footer and index; each chunk's
/// CRC is checked and its payload decoded when the chunk is first
/// read, so truncated or corrupted files fail loudly.
class TraceReader {
 public:
  /// Opens `path` and loads the trailing index.
  explicit TraceReader(const std::string& path,
                       const TraceReaderOptions& options = {});
  /// Joins the prefetch thread, if one was started.
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;             ///< non-copyable
  TraceReader& operator=(const TraceReader&) = delete;  ///< non-copyable

  /// The trace metadata.
  const TraceInfo& info() const noexcept { return info_; }

  /// Reads the next bin into `outBin` (n² doubles); returns false when
  /// all bins have been read.
  bool next(double* outBin);

  /// Repositions so the following next() returns bin `bin` — O(1) via
  /// the chunk index.
  void seek(std::size_t bin);

  /// Bin index the following next() call will return.
  std::size_t position() const noexcept { return position_; }

  /// Reads every remaining bin from the current position into a series
  /// (convenience for batch interop; the series holds bins
  /// [position, bins)).
  traffic::TrafficMatrixSeries readAll();

 private:
  void loadChunk(std::size_t chunk);
  /// Reads + CRC-checks + decodes chunk `chunk` from `in` into `bins`.
  /// Shared by the synchronous path and the prefetch thread (which
  /// passes its own stream), so both decode identically.
  void loadChunkData(std::istream& in, std::size_t chunk,
                     std::vector<double>& bins) const;
  void startPrefetch();
  void requestPrefetch(std::size_t chunk);
  bool consumePrefetch(std::size_t chunk);
  void prefetchLoop();

  std::ifstream in_;
  std::string path_;
  TraceInfo info_;
  std::uint64_t fileSize_ = 0;
  TraceReaderOptions options_;
  struct ChunkRecord {
    std::uint64_t offset = 0;
    std::uint64_t binCount = 0;
    std::uint64_t firstBin = 0;
  };
  std::vector<ChunkRecord> index_;
  std::vector<double> chunk_;            // decoded bins of loadedChunk_
  std::size_t loadedChunk_ = SIZE_MAX;   // index into index_, or none
  std::size_t position_ = 0;             // next bin to serve

  // Prefetch state (only active when options_.prefetch).  The thread
  // owns its own ifstream; this block is the only shared state.
  bool prefetchStarted_ = false;
  std::thread prefetchThread_;
  std::mutex prefetchMutex_;
  std::condition_variable prefetchCv_;
  bool prefetchStop_ = false;
  std::size_t prefetchRequest_ = SIZE_MAX;      // chunk to fetch next
  std::size_t prefetchResultChunk_ = SIZE_MAX;  // chunk held in result
  std::vector<double> prefetchData_;
  std::exception_ptr prefetchError_;
};

/// Writes a whole series as one `ictmb` file.
void WriteTraceFile(const std::string& path,
                    const traffic::TrafficMatrixSeries& series,
                    std::size_t binsPerChunk = 64);

/// Writes a whole series as one `ictmb` file with full writer options.
void WriteTraceFile(const std::string& path,
                    const traffic::TrafficMatrixSeries& series,
                    const TraceWriterOptions& options);

/// Reads a whole `ictmb` file into a series.
traffic::TrafficMatrixSeries ReadTraceFile(const std::string& path);

/// Converts a TM CSV into an `ictmb` trace one bin at a time (bounded
/// memory: one bin plus one chunk buffer).
void ConvertCsvToTrace(const std::string& csvPath,
                       const std::string& tracePath,
                       std::size_t binsPerChunk = 64);

/// Converts a TM CSV into an `ictmb` trace with full writer options.
void ConvertCsvToTrace(const std::string& csvPath,
                       const std::string& tracePath,
                       const TraceWriterOptions& options);

/// Converts an `ictmb` trace back into the TM CSV format, streaming
/// one bin at a time.
void ConvertTraceToCsv(const std::string& tracePath,
                       const std::string& csvPath);

/// True when the file starts with the `ictmb` magic (format sniffing
/// for CLI inputs that may be CSV or binary).
bool IsTraceFile(const std::string& path);

/// Statistics of one RepackTrace run.
struct RepackResult {
  std::uint64_t bins = 0;         ///< bins copied
  std::uint64_t inputBytes = 0;   ///< input file size
  std::uint64_t outputBytes = 0;  ///< output file size
};

/// Rewrites the trace at `inPath` (version 1 or 2, any codec) to
/// `outPath` as version 2 with `options` — bounded memory, one chunk
/// at a time, prefetching the input.  `options.binsPerChunk == 0`
/// keeps the input's chunking.  Bin payloads are preserved
/// bit-exactly; repacking with identical options is idempotent
/// (byte-identical output).
RepackResult RepackTrace(const std::string& inPath,
                         const std::string& outPath,
                         const TraceWriterOptions& options);

}  // namespace ictm::stream
