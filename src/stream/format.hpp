// `ictmb` — the chunked binary trace container for TM series.
//
// The batch pipelines parse O(n²·T) CSV text before the first estimate
// can run; this format streams bins at memcpy speed with bounded
// memory and supports random access.  Layout (native little-endian
// byte order, validated by a sentinel):
//
//   header   magic "ICTMB1\r\n" · byte-order sentinel · version ·
//            nodes · binSeconds · binsPerChunk
//   chunks   repeated frames: u64 payload length prefix ·
//            payload (binCount · n² doubles) · u32 CRC-32 of payload
//   index    frame with the length prefix set to the index marker:
//            chunk count · per-chunk {file offset, bin count} ·
//            total bins · u32 CRC-32 of the index
//   footer   u64 index offset · end magic "ICTMBEOF"
//
// The trailing index makes the file self-describing (total bin count
// without scanning) and gives TraceReader::seek O(1) random access;
// the per-chunk CRC turns truncation and bit rot into loud errors
// instead of corrupt estimates.  The \r\n in the magic catches
// text-mode transfer damage, as in PNG.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "traffic/tm_series.hpp"

/// Streaming subsystem: chunked binary trace I/O, the online
/// estimator and the connection-to-bin-event ingest adapter.
namespace ictm::stream {

/// Metadata of an open trace (header + trailing index).
struct TraceInfo {
  std::size_t nodes = 0;         ///< matrix dimension n
  std::size_t bins = 0;          ///< total bins (from the index)
  double binSeconds = 0.0;       ///< bin duration metadata
  std::size_t binsPerChunk = 0;  ///< frame granularity K
  std::size_t chunks = 0;        ///< number of chunk frames
};

/// CRC-32 (polynomial 0xEDB88320, the zlib/PNG one) of a byte range;
/// chain calls by passing the previous result as `seed`.
std::uint32_t Crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0);

/// Appends bins to an `ictmb` file without materialising the series:
/// bins are buffered into frames of `binsPerChunk` and flushed with a
/// length prefix and CRC.  close() writes the chunk index and footer;
/// the destructor calls it as a fallback but swallows errors, so call
/// close() explicitly to observe IO failures.
class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header.
  TraceWriter(const std::string& path, std::size_t nodes,
              double binSeconds, std::size_t binsPerChunk = 64);
  /// Calls close() as a fallback, swallowing errors.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;             ///< non-copyable
  TraceWriter& operator=(const TraceWriter&) = delete;  ///< non-copyable

  /// Appends one bin (n² doubles in FlattenTm order).
  void append(const double* bin);

  /// Flushes the current chunk and writes the index + footer; the
  /// writer cannot append afterwards.  Throws on IO failure.
  void close();

  /// Bins appended so far.
  std::size_t binsWritten() const noexcept { return binsWritten_; }

 private:
  void flushChunk();

  std::ofstream out_;
  std::string path_;
  std::size_t nodes_ = 0;
  std::size_t binsPerChunk_ = 0;
  std::size_t binsWritten_ = 0;
  std::vector<double> buffer_;  // partial chunk, <= binsPerChunk bins
  struct ChunkRecord {
    std::uint64_t offset = 0;
    std::uint64_t binCount = 0;
  };
  std::vector<ChunkRecord> index_;
  bool closed_ = false;
};

/// Streams bins out of an `ictmb` file.  Construction validates the
/// header, footer and index; each chunk's CRC is checked when the
/// chunk is first read, so truncated or corrupted files fail loudly.
class TraceReader {
 public:
  /// Opens `path` and loads the trailing index.
  explicit TraceReader(const std::string& path);

  /// The trace metadata.
  const TraceInfo& info() const noexcept { return info_; }

  /// Reads the next bin into `outBin` (n² doubles); returns false when
  /// all bins have been read.
  bool next(double* outBin);

  /// Repositions so the following next() returns bin `bin` — O(1) via
  /// the chunk index.
  void seek(std::size_t bin);

  /// Bin index the following next() call will return.
  std::size_t position() const noexcept { return position_; }

  /// Reads every remaining bin from the current position into a series
  /// (convenience for batch interop; the series holds bins
  /// [position, bins)).
  traffic::TrafficMatrixSeries readAll();

 private:
  void loadChunk(std::size_t chunk);

  std::ifstream in_;
  std::string path_;
  TraceInfo info_;
  struct ChunkRecord {
    std::uint64_t offset = 0;
    std::uint64_t binCount = 0;
    std::uint64_t firstBin = 0;
  };
  std::vector<ChunkRecord> index_;
  std::vector<double> chunk_;            // decoded bins of loadedChunk_
  std::size_t loadedChunk_ = SIZE_MAX;   // index into index_, or none
  std::size_t position_ = 0;             // next bin to serve
};

/// Writes a whole series as one `ictmb` file.
void WriteTraceFile(const std::string& path,
                    const traffic::TrafficMatrixSeries& series,
                    std::size_t binsPerChunk = 64);

/// Reads a whole `ictmb` file into a series.
traffic::TrafficMatrixSeries ReadTraceFile(const std::string& path);

/// Converts a TM CSV into an `ictmb` trace one bin at a time (bounded
/// memory: one bin plus one chunk buffer).
void ConvertCsvToTrace(const std::string& csvPath,
                       const std::string& tracePath,
                       std::size_t binsPerChunk = 64);

/// Converts an `ictmb` trace back into the TM CSV format, streaming
/// one bin at a time.
void ConvertTraceToCsv(const std::string& tracePath,
                       const std::string& csvPath);

/// True when the file starts with the `ictmb` magic (format sniffing
/// for CLI inputs that may be CSV or binary).
bool IsTraceFile(const std::string& path);

}  // namespace ictm::stream
