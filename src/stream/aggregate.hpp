// Ingest adapter: connection records → per-bin link-load events.
//
// The live counterpart of the batch dataset builders, shaped after
// measure-sim's FlowAggr (flows → per-bin counters): connections
// arrive in time order, their forward/reverse bytes accumulate into
// one n×n bin buffer, and each time the bin index advances the closed
// bin is flattened through the routing matrix into the
// (linkLoads, ingress, egress) event the StreamingEstimator consumes.
// Memory is O(n²) regardless of stream length — no
// TrafficMatrixSeries is ever materialised.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "conngen/generator.hpp"
#include "linalg/sparse.hpp"
#include "stream/online.hpp"

namespace ictm::stream {

/// Accumulates connections into per-bin TMs and emits one BinEvent per
/// closed bin.  Connections must arrive with non-decreasing bin
/// indices (the generator emits them that way); gaps produce empty
/// bins so downstream sequence numbers stay aligned with time.
class ConnectionAggregator {
 public:
  /// Called once per closed bin, in bin order.  `tmBin` is the
  /// accumulated n² ground-truth buffer (FlattenTm order), valid for
  /// the duration of the call — scenarios use it to score estimates.
  using BinCallback = std::function<void(
      std::size_t bin, const BinEvent& event, const double* tmBin)>;

  /// Binds the aggregator to a routing matrix (links x n²).
  ConnectionAggregator(const linalg::CsrMatrix& routing, std::size_t nodes,
                       BinCallback onBin);

  /// Adds one connection: forward bytes land in X[initiator][responder],
  /// reverse bytes in X[responder][initiator] (paper Sec. 3).  Throws
  /// when the connection's bin precedes the current one.
  void add(const conngen::Connection& connection);

  /// Closes the final bin (emitting it even when empty, provided at
  /// least one connection was ever added).
  void flush();

  /// Bins emitted so far.
  std::size_t binsEmitted() const noexcept { return binsEmitted_; }

 private:
  void emitCurrentBin();

  const linalg::CsrMatrix& routing_;
  std::size_t n_ = 0;
  BinCallback onBin_;
  std::vector<double> tm_;  // current bin accumulator, n² doubles
  std::size_t currentBin_ = 0;
  std::size_t binsEmitted_ = 0;
  bool open_ = false;  // true once the first connection arrived
};

}  // namespace ictm::stream
