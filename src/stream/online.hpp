// Online TM estimation from a live stream of link-load measurements.
//
// The paper's operational premise (Sec. 6.2): IC parameters are stable
// week to week, so an operator keeps yesterday's fitted (f, P) and
// turns today's SNMP readings into TM estimates as they arrive.
// StreamingEstimator implements that loop with bounded memory:
//
//   push(event) ──▶ bounded MPMC queue ──▶ worker pool ──▶ reorder
//                                                          buffer ──▶
//                                              callback (arrival order)
//
// Per event the worker builds the stable-fP IC prior from the event's
// ingress/egress marginals (Eqs. 7-9: Ã = pinv(Q·Φ)·[in;eg], prior =
// Φ·Ã clamped ≥ 0) and refines it against the link loads with the
// shared core::TmBinSolver — the augmented system is compressed once
// at construction.  Every `window` bins the preference vector is
// re-fitted from the window's aggregated marginals via the stable-f
// closed forms (Eqs. 11-12), so the prior tracks slow preference
// drift; f stays at yesterday's value, per the paper's stability
// result.
//
// Determinism contract: the sequence of (prior, estimate) pairs is a
// pure function of the pushed event sequence — the window re-fit
// happens serially inside push() and each event carries an immutable
// snapshot of its prior model, so results are bit-identical for every
// thread count and queue capacity, and identical to the batch
// EstimateSeries run on the same priors (regression-tested).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/estimation.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::stream {

/// One time bin's measurements as an operator sees them: SNMP link
/// byte counters plus the access-link ingress/egress marginals.
struct BinEvent {
  std::vector<double> linkLoads;  ///< length = routing rows
  std::vector<double> ingress;    ///< length n, X_i*
  std::vector<double> egress;     ///< length n, X_*j
};

/// Producer-side state of a streaming run at a bin boundary: enough
/// to rebuild the prior model and window accumulators so a new
/// StreamingEstimator resumed from it reproduces bins [seq, ...)
/// bit for bit (the state is a pure function of the pushed prefix,
/// and every estimate is a pure function of the state plus its bin).
/// Captured by StreamingEstimator::checkpoint(); persisted by the
/// estimation server's checkpoint store (server/checkpoint.hpp).
struct StreamingCheckpoint {
  std::uint64_t seq = 0;         ///< bins pushed when captured
  linalg::Vector preference;     ///< preference of the active prior model
  linalg::Vector windowIngress;  ///< window ingress-marginal accumulator
  linalg::Vector windowEgress;   ///< window egress-marginal accumulator
  std::size_t windowFill = 0;    ///< bins accumulated into the window
};

/// Configuration of the streaming estimator.
struct StreamingOptions {
  /// Worker threads consuming the queue (0 = all hardware threads).
  std::size_t threads = 1;
  /// Bounded queue capacity; push() blocks when it is full.
  std::size_t queueCapacity = 64;
  /// Re-fit the preference vector every `window` bins from the
  /// window's aggregated marginals (stable-f closed forms).  0 keeps
  /// the initial fit for the whole stream.
  std::size_t window = 0;
  /// Yesterday's fitted forward fraction.
  double f = 0.25;
  /// Yesterday's fitted preference vector (length n; normalised
  /// internally).  Empty = uniform.
  linalg::Vector preference;
  /// Inner solver knobs; `estimation.threads` is ignored (the worker
  /// pool replaces the per-series fan-out).
  core::EstimationOptions estimation;
  /// Resume from a captured checkpoint instead of bin 0: sequence
  /// numbers continue at `resume->seq`, the prior model is rebuilt
  /// from the checkpointed preference (bit-identical to the model the
  /// original run held at that boundary), and `preference`/`f` above
  /// still describe the *initial* model the checkpoint descends from.
  std::optional<StreamingCheckpoint> resume;
};

/// Consumes bin events and emits TM estimates in arrival order.
class StreamingEstimator {
 public:
  /// Called once per bin, in push order: `seq` counts from 0,
  /// `estimate` and `prior` are n² doubles (FlattenTm order) valid for
  /// the duration of the call.  Invoked under the emit lock — keep it
  /// cheap and never call back into push() from it.
  using EstimateCallback = std::function<void(
      std::size_t seq, const double* estimate, const double* prior)>;

  /// Compresses the augmented system and starts the worker pool.
  StreamingEstimator(const linalg::CsrMatrix& routing, std::size_t nodes,
                     StreamingOptions options, EstimateCallback onEstimate);
  /// Same, but over a caller-shared augmented system (which the
  /// estimator keeps alive), so many estimators on the same topology
  /// pay the compression and the backends' per-system setup once —
  /// the estimation server's per-topology state cache feeds this.
  StreamingEstimator(std::shared_ptr<const core::AugmentedTmSystem> system,
                     StreamingOptions options, EstimateCallback onEstimate);
  /// Drains and joins (finish() fallback; errors are swallowed — call
  /// finish() explicitly to observe them).
  ~StreamingEstimator();

  StreamingEstimator(const StreamingEstimator&) = delete;  ///< non-copyable
  StreamingEstimator& operator=(const StreamingEstimator&) =
      delete;  ///< non-copyable

  /// Enqueues one bin; blocks while the queue is full.  Events are
  /// sequence-stamped in push order.  Throws when a worker has failed
  /// or finish() was already called.
  void push(BinEvent event);

  /// Signals end-of-stream, waits for every queued bin to be emitted
  /// and joins the workers.  Rethrows the first worker exception.
  void finish();

  /// Bins pushed so far.
  std::size_t pushedCount() const noexcept;
  /// Bins already handed to the callback.
  std::size_t emittedCount() const noexcept;

  /// Captures the producer-side state at the current push boundary
  /// (`seq` = pushedCount()).  Call between pushes from the producer
  /// thread; a StreamingEstimator constructed with the returned state
  /// in `StreamingOptions::resume` and fed the same bins from `seq`
  /// onward emits bit-identical (estimate, prior) pairs.
  StreamingCheckpoint checkpoint() const;

 private:
  void initialize();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Builds the bin event for one truth bin: link loads via the routing
/// matrix (simulated SNMP) plus the ingress/egress marginals, using
/// the exact summation order of core::EstimateSeries so downstream
/// estimates are comparable bit for bit.
BinEvent MakeBinEvent(const linalg::CsrMatrix& routing, std::size_t nodes,
                      const double* truthBin);

/// Result of a convenience streaming run: the estimates plus the
/// priors the estimator derived (feeding these priors to the batch
/// core::EstimateSeries reproduces `estimates` bit for bit).
struct StreamingRunResult {
  traffic::TrafficMatrixSeries estimates;  ///< emitted TM estimates
  traffic::TrafficMatrixSeries priors;     ///< the IC priors used per bin
};

/// Streams a truth series through a StreamingEstimator (simulated
/// SNMP per bin) and collects the outputs in order.
StreamingRunResult EstimateSeriesStreaming(
    const linalg::CsrMatrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const StreamingOptions& options);

}  // namespace ictm::stream
