// Cyclo-stationary activity generator: a stochastic wrapper around the
// deterministic diurnal profile that produces per-node activity series
// A_i(t) with multiplicative noise and slow week-to-week drift.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"
#include "timeseries/diurnal.hpp"

namespace ictm::timeseries {

/// Parameters of the stochastic activity model for one node.
struct ActivityModel {
  DiurnalProfile profile;
  /// Long-run mean activity level in bytes per bin at the daily peak.
  double peakLevel = 1e7;
  /// Multiplicative lognormal noise sigma (log-space); 0 disables.
  double noiseSigma = 0.08;
  /// AR(1) coefficient of the log-noise (temporal smoothness).
  double noisePhi = 0.6;
  /// Per-week multiplicative drift sigma (log-space); models slow
  /// changes in user population between weeks.
  double weeklyDriftSigma = 0.05;
  /// Per-node phase jitter in hours applied to the profile peak.
  double phaseJitterHours = 0.0;
};

/// Generates `bins` samples of A(t) >= 0 for one node.
/// The same seed yields the same series.
std::vector<double> GenerateActivitySeries(const ActivityModel& model,
                                           std::size_t bins,
                                           stats::Rng& rng);

/// Generates an ensemble of n activity series with peak levels drawn
/// from a lognormal across nodes (heavy-tailed node sizes, matching
/// the spread seen in Fig. 9: largest ~ 20x smallest).  Per-node
/// profile shapes (night floor, weekend depth, peak hour) are jittered
/// so nodes are heterogeneous, as real PoPs serving different user
/// populations and time zones are.  Returns n series of length `bins`.
///
/// The per-node draws (model jitter + child RNG fork) are consumed
/// from `rng` serially in node order; the series themselves are then
/// generated from the pre-forked child RNGs fanned out across
/// `threads` workers (0 = all hardware threads), so the result is
/// bit-identical for every thread count.
std::vector<std::vector<double>> GenerateActivityEnsemble(
    std::size_t n, std::size_t bins, const ActivityModel& base,
    double peakLogSigma, stats::Rng& rng, std::size_t threads = 1);

}  // namespace ictm::timeseries
