#include "timeseries/diurnal.hpp"

#include <cmath>
#include <numbers>

namespace ictm::timeseries {

double ProfileValue(const DiurnalProfile& profile, std::size_t t) {
  ICTM_REQUIRE(profile.binsPerDay > 0, "binsPerDay must be positive");
  ICTM_REQUIRE(profile.nightFloor > 0.0 && profile.nightFloor <= 1.0,
               "nightFloor out of (0,1]");
  ICTM_REQUIRE(profile.weekendFactor > 0.0 && profile.weekendFactor <= 1.0,
               "weekendFactor out of (0,1]");

  const double day = static_cast<double>(t) /
                     static_cast<double>(profile.binsPerDay);
  const std::size_t dayIndex =
      (t / profile.binsPerDay) % 7;  // 0 = Monday
  const double hourOfDay =
      (day - std::floor(day)) * 24.0;

  // Primary 24h harmonic peaking at peakHour, plus a 12h harmonic.
  const double phase =
      2.0 * std::numbers::pi * (hourOfDay - profile.peakHour) / 24.0;
  double wave = std::cos(phase) + profile.secondHarmonic *
                                      std::cos(2.0 * phase);
  // Normalise the wave from [-1-h, 1+h] into [nightFloor, 1].
  const double lo = -(1.0 + profile.secondHarmonic);
  const double hi = 1.0 + profile.secondHarmonic;
  const double unit = (wave - lo) / (hi - lo);  // [0,1]
  double value = profile.nightFloor + (1.0 - profile.nightFloor) * unit;

  if (dayIndex >= 5) value *= profile.weekendFactor;  // Sat/Sun
  return value;
}

std::vector<double> GenerateProfile(const DiurnalProfile& profile,
                                    std::size_t bins) {
  std::vector<double> out(bins);
  for (std::size_t t = 0; t < bins; ++t) out[t] = ProfileValue(profile, t);
  return out;
}

double Autocorrelation(const std::vector<double>& xs, std::size_t lag) {
  ICTM_REQUIRE(xs.size() > lag, "lag exceeds series length");
  const double n = static_cast<double>(xs.size());
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= n;
  double denom = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    denom += d * d;
  }
  if (denom <= 0.0) return lag == 0 ? 1.0 : 0.0;
  double num = 0.0;
  for (std::size_t t = 0; t + lag < xs.size(); ++t) {
    num += (xs[t] - mean) * (xs[t + lag] - mean);
  }
  return num / denom;
}

std::size_t DominantPeriod(const std::vector<double>& xs,
                           std::size_t minLag, std::size_t maxLag) {
  ICTM_REQUIRE(minLag >= 1 && minLag <= maxLag, "invalid lag range");
  ICTM_REQUIRE(xs.size() > maxLag, "series shorter than maxLag");
  std::size_t bestLag = minLag;
  double bestAc = -2.0;
  for (std::size_t lag = minLag; lag <= maxLag; ++lag) {
    const double ac = Autocorrelation(xs, lag);
    if (ac > bestAc) {
      bestAc = ac;
      bestLag = lag;
    }
  }
  return bestLag;
}

double WeekendWeekdayRatio(const std::vector<double>& xs,
                           std::size_t binsPerDay) {
  ICTM_REQUIRE(binsPerDay > 0, "binsPerDay must be positive");
  double weekendSum = 0.0, weekdaySum = 0.0;
  std::size_t weekendCount = 0, weekdayCount = 0;
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const std::size_t dayIndex = (t / binsPerDay) % 7;
    if (dayIndex >= 5) {
      weekendSum += xs[t];
      ++weekendCount;
    } else {
      weekdaySum += xs[t];
      ++weekdayCount;
    }
  }
  ICTM_REQUIRE(weekendCount > 0 && weekdayCount > 0,
               "series does not cover both weekend and weekday bins");
  const double weekendMean =
      weekendSum / static_cast<double>(weekendCount);
  const double weekdayMean =
      weekdaySum / static_cast<double>(weekdayCount);
  ICTM_REQUIRE(weekdayMean > 0.0, "weekday mean is zero");
  return weekendMean / weekdayMean;
}

}  // namespace ictm::timeseries
