#include "timeseries/cyclo_fit.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ictm::timeseries {

CycloModel FitCyclostationary(const std::vector<double>& series,
                              std::size_t binsPerWeek) {
  ICTM_REQUIRE(binsPerWeek > 0, "binsPerWeek must be positive");
  ICTM_REQUIRE(series.size() >= binsPerWeek,
               "series must cover at least one full week");
  for (double v : series) ICTM_REQUIRE(v >= 0.0, "negative activity");

  CycloModel model;
  model.weeklyTemplate.assign(binsPerWeek, 0.0);
  std::vector<std::size_t> counts(binsPerWeek, 0);
  for (std::size_t t = 0; t < series.size(); ++t) {
    model.weeklyTemplate[t % binsPerWeek] += series[t];
    ++counts[t % binsPerWeek];
  }
  for (std::size_t s = 0; s < binsPerWeek; ++s) {
    model.weeklyTemplate[s] /= static_cast<double>(counts[s]);
    ICTM_REQUIRE(model.weeklyTemplate[s] > 0.0,
                 "weekly template slot has zero mean activity");
  }

  // Log-residuals against the template.
  std::vector<double> resid(series.size());
  double mean = 0.0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    const double ratio =
        std::max(series[t], 1e-12) / model.weeklyTemplate[t % binsPerWeek];
    resid[t] = std::log(ratio);
    mean += resid[t];
  }
  mean /= static_cast<double>(resid.size());

  double var = 0.0;
  for (double r : resid) var += (r - mean) * (r - mean);
  var /= static_cast<double>(resid.size());
  model.residualSigma = std::sqrt(var);

  if (resid.size() >= 2 && var > 0.0) {
    double acf1 = 0.0;
    for (std::size_t t = 0; t + 1 < resid.size(); ++t) {
      acf1 += (resid[t] - mean) * (resid[t + 1] - mean);
    }
    acf1 /= static_cast<double>(resid.size()) * var;
    // Clamp into the stationary region.
    model.residualPhi = std::clamp(acf1, 0.0, 0.99);
  }
  return model;
}

std::vector<double> GenerateFromCycloModel(const CycloModel& model,
                                           std::size_t bins,
                                           stats::Rng& rng) {
  ICTM_REQUIRE(!model.weeklyTemplate.empty(), "model has no template");
  ICTM_REQUIRE(model.residualSigma >= 0.0, "negative residual sigma");
  const std::size_t binsPerWeek = model.weeklyTemplate.size();
  std::vector<double> out(bins);
  const double innovSd =
      model.residualSigma *
      std::sqrt(1.0 - model.residualPhi * model.residualPhi);
  double logNoise = 0.0;
  for (std::size_t t = 0; t < bins; ++t) {
    logNoise = model.residualPhi * logNoise + rng.gaussian(0.0, innovSd);
    out[t] = model.weeklyTemplate[t % binsPerWeek] * std::exp(logNoise);
  }
  return out;
}

double SeasonalR2(const std::vector<double>& series,
                  const CycloModel& model) {
  ICTM_REQUIRE(!model.weeklyTemplate.empty(), "model has no template");
  ICTM_REQUIRE(!series.empty(), "empty series");
  const std::size_t binsPerWeek = model.weeklyTemplate.size();
  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  double ssTot = 0.0, ssRes = 0.0;
  for (std::size_t t = 0; t < series.size(); ++t) {
    const double d = series[t] - mean;
    const double r = series[t] - model.weeklyTemplate[t % binsPerWeek];
    ssTot += d * d;
    ssRes += r * r;
  }
  if (ssTot <= 0.0) return 1.0;
  return 1.0 - ssRes / ssTot;
}

}  // namespace ictm::timeseries
