#include "timeseries/cyclostationary.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"

namespace ictm::timeseries {

std::vector<double> GenerateActivitySeries(const ActivityModel& model,
                                           std::size_t bins,
                                           stats::Rng& rng) {
  ICTM_REQUIRE(model.peakLevel > 0.0, "peakLevel must be positive");
  ICTM_REQUIRE(model.noiseSigma >= 0.0, "noiseSigma must be >= 0");
  ICTM_REQUIRE(model.noisePhi >= 0.0 && model.noisePhi < 1.0,
               "noisePhi must lie in [0,1)");
  ICTM_REQUIRE(model.weeklyDriftSigma >= 0.0,
               "weeklyDriftSigma must be >= 0");

  DiurnalProfile profile = model.profile;
  if (model.phaseJitterHours != 0.0) {
    profile.peakHour +=
        rng.uniform(-model.phaseJitterHours, model.phaseJitterHours);
  }

  const std::size_t binsPerWeek = profile.binsPerDay * 7;
  std::vector<double> out(bins);
  double logNoise = 0.0;
  double weekDrift = 0.0;
  // Stationary AR(1) innovation sd so the marginal sd equals noiseSigma.
  const double innovSd =
      model.noiseSigma * std::sqrt(1.0 - model.noisePhi * model.noisePhi);

  for (std::size_t t = 0; t < bins; ++t) {
    if (binsPerWeek > 0 && t % binsPerWeek == 0 && t > 0) {
      weekDrift += rng.gaussian(0.0, model.weeklyDriftSigma);
    }
    logNoise = model.noisePhi * logNoise + rng.gaussian(0.0, innovSd);
    const double base = ProfileValue(profile, t) * model.peakLevel;
    out[t] = base * std::exp(logNoise + weekDrift);
  }
  return out;
}

std::vector<std::vector<double>> GenerateActivityEnsemble(
    std::size_t n, std::size_t bins, const ActivityModel& base,
    double peakLogSigma, stats::Rng& rng, std::size_t threads) {
  ICTM_REQUIRE(n > 0, "ensemble must contain at least one node");
  ICTM_REQUIRE(peakLogSigma >= 0.0, "peakLogSigma must be >= 0");
  // Serial pass: consume the master RNG in node order so the draw
  // sequence (and hence every series) is independent of the thread
  // count, stashing one (model, child RNG) pair per node.
  std::vector<ActivityModel> models;
  std::vector<stats::Rng> children;
  models.reserve(n);
  children.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ActivityModel m = base;
    m.peakLevel = base.peakLevel *
                  std::exp(rng.gaussian(0.0, peakLogSigma));
    // Heterogeneous node shapes: different user populations produce
    // different overnight floors, weekend depths and peak times.
    m.profile.nightFloor = std::clamp(
        base.profile.nightFloor * std::exp(rng.gaussian(0.0, 0.45)),
        0.05, 0.85);
    m.profile.weekendFactor = std::clamp(
        base.profile.weekendFactor * std::exp(rng.gaussian(0.0, 0.3)),
        0.2, 1.0);
    m.profile.secondHarmonic =
        std::clamp(base.profile.secondHarmonic +
                       rng.gaussian(0.0, 0.08), 0.0, 0.5);
    models.push_back(m);
    children.push_back(rng.fork());
  }
  // Parallel pass: each node's series depends only on its own child
  // RNG, so the fan-out writes disjoint slots.
  std::vector<std::vector<double>> out(n);
  ParallelFor(0, n, threads, [&](std::size_t i) {
    out[i] = GenerateActivitySeries(models[i], bins, children[i]);
  });
  return out;
}

}  // namespace ictm::timeseries
