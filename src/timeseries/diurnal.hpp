// Diurnal / weekly activity profiles.
//
// Paper Sec. 5.4 observes that activity levels A_i(t) show "strong
// periodic patterns ... corresponding to daily variation as well as to
// reduced activity on the weekend", and Sec. 5.5 recommends a
// cyclo-stationary generator (superposition of periodic waveforms, per
// Soule et al.) for synthesising them.  This module provides both the
// deterministic profile and analysis helpers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace ictm::timeseries {

/// Parameters of a smooth day/week activity profile.
struct DiurnalProfile {
  /// Number of time bins per day (e.g. 288 for 5-minute bins).
  std::size_t binsPerDay = 288;
  /// Relative depth of the overnight trough in (0, 1]; 0.25 means the
  /// nightly minimum is 25% of the daily peak.
  double nightFloor = 0.25;
  /// Hour of day (0-24) at which activity peaks.
  double peakHour = 15.0;
  /// Weekend attenuation factor in (0, 1]; 0.5 halves weekend traffic.
  double weekendFactor = 0.55;
  /// Relative amplitude of the secondary (12-hour) harmonic.
  double secondHarmonic = 0.15;
};

/// Evaluates the deterministic profile at absolute bin index t
/// (bin 0 = Monday 00:00).  Result is a positive multiplier with
/// daily mean near 1 on weekdays.
double ProfileValue(const DiurnalProfile& profile, std::size_t t);

/// Generates `bins` samples of the deterministic profile.
std::vector<double> GenerateProfile(const DiurnalProfile& profile,
                                    std::size_t bins);

/// Sample autocorrelation at the given lag (biased estimator,
/// normalised so lag 0 == 1).  Used to verify the daily period in
/// generated and fitted activity series.
double Autocorrelation(const std::vector<double>& xs, std::size_t lag);

/// Returns the lag in [minLag, maxLag] with the highest autocorrelation
/// — a simple dominant-period detector.
std::size_t DominantPeriod(const std::vector<double>& xs,
                           std::size_t minLag, std::size_t maxLag);

/// Mean of the series restricted to weekend bins (Saturday+Sunday),
/// divided by the mean over weekday bins; < 1 indicates weekend dip.
double WeekendWeekdayRatio(const std::vector<double>& xs,
                           std::size_t binsPerDay);

}  // namespace ictm::timeseries
