// Fitting the cyclo-stationary model to observed activity series —
// the extension paper Sec. 5.4 leaves as future work ("the
// cyclo-stationary model may be suitable for describing the timeseries
// of A_i(t)").
//
// The estimator is the classical seasonal decomposition: the weekly
// template is the per-bin-of-week mean across weeks, and the residual
// is modelled as AR(1) multiplicative log-noise, giving a generator
// whose synthetic weeks are statistically exchangeable with the fitted
// data.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace ictm::timeseries {

/// A fitted cyclo-stationary model of one activity series.
struct CycloModel {
  /// Weekly template: mean value per bin-of-week (length binsPerWeek).
  std::vector<double> weeklyTemplate;
  /// Log-space residual standard deviation.
  double residualSigma = 0.0;
  /// AR(1) coefficient of the log residuals.
  double residualPhi = 0.0;
};

/// Fits the cyclo-stationary model.  `series` must cover at least one
/// full week (length >= binsPerWeek) and be strictly positive on at
/// least one sample of every bin-of-week slot.
CycloModel FitCyclostationary(const std::vector<double>& series,
                              std::size_t binsPerWeek);

/// Generates `bins` samples from a fitted model.
std::vector<double> GenerateFromCycloModel(const CycloModel& model,
                                           std::size_t bins,
                                           stats::Rng& rng);

/// Fraction of the series' variance explained by the weekly template
/// (R^2 of the seasonal decomposition); 1 = perfectly periodic.
double SeasonalR2(const std::vector<double>& series,
                  const CycloModel& model);

}  // namespace ictm::timeseries
