// Maximum-likelihood distribution fitting and goodness-of-fit
// comparison.  Paper Fig. 7 fits exponential and lognormal models to
// the empirical preference values {P_i} and reports the lognormal MLE
// (mu ~ -4.3, sigma ~ 1.7) as the better tail match.
#pragma once

#include <vector>

#include "stats/distributions.hpp"

namespace ictm::stats {

/// MLE fit of a lognormal to a strictly-positive sample:
/// mu = mean(log x), sigma^2 = mean((log x - mu)^2).
Lognormal FitLognormalMle(const std::vector<double>& xs);

/// MLE fit of an exponential to a non-negative sample with positive
/// mean: lambda = 1 / mean(x).
Exponential FitExponentialMle(const std::vector<double>& xs);

/// Log-likelihood of a sample under each distribution (higher = better).
double LogLikelihood(const Lognormal& d, const std::vector<double>& xs);
double LogLikelihood(const Exponential& d, const std::vector<double>& xs);

/// Kolmogorov–Smirnov statistic sup_x |F_emp(x) - F(x)| against a
/// fitted CDF; smaller = better fit.
double KsStatistic(const std::vector<double>& xs,
                   const Lognormal& d);
double KsStatistic(const std::vector<double>& xs,
                   const Exponential& d);

/// Mean squared error between the empirical log10-CCDF and the model
/// log10-CCDF, evaluated at the sample points whose empirical CCDF is
/// positive.  This mirrors the visual log-log tail comparison in
/// Fig. 7 (which distribution tracks the tail better).
double LogCcdfMse(const std::vector<double>& xs, const Lognormal& d);
double LogCcdfMse(const std::vector<double>& xs, const Exponential& d);

}  // namespace ictm::stats
