// Seeded random number generation for reproducible experiments.
//
// Every workload generator and synthetic-dataset builder in this
// library takes an explicit seed so that benchmark rows are exactly
// reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

#include "common/error.hpp"

namespace ictm::stats {

/// Thin wrapper around std::mt19937_64 with convenience draws.
///
/// Not thread-safe; use one Rng per thread / per generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi) {
    ICTM_REQUIRE(lo < hi, "uniform bounds inverted");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi) {
    ICTM_REQUIRE(lo <= hi, "uniformInt bounds inverted");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double gaussian() {
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal draw with the given mean and standard deviation (sd >= 0).
  double gaussian(double mean, double sd) {
    ICTM_REQUIRE(sd >= 0.0, "negative standard deviation");
    if (sd == 0.0) return mean;
    return std::normal_distribution<double>(mean, sd)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    ICTM_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson draw with mean lambda >= 0.
  std::uint64_t poisson(double lambda) {
    ICTM_REQUIRE(lambda >= 0.0, "negative Poisson mean");
    if (lambda == 0.0) return 0;
    return static_cast<std::uint64_t>(
        std::poisson_distribution<long long>(lambda)(engine_));
  }

  /// Exponential draw with rate lambda > 0 (mean 1/lambda).
  double exponential(double lambda) {
    ICTM_REQUIRE(lambda > 0.0, "exponential rate must be positive");
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// Access to the raw engine (for std distributions not wrapped here).
  std::mt19937_64& engine() noexcept { return engine_; }

  /// Derives an independent child generator; useful to decorrelate
  /// sub-streams (e.g. one per node) from a master seed.
  Rng fork() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ictm::stats
