#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ictm::stats {

Summary Summarize(const std::vector<double>& xs) {
  ICTM_REQUIRE(!xs.empty(), "Summarize of empty sample");
  Summary s;
  s.count = xs.size();
  s.min = xs.front();
  s.max = xs.front();
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.variance = ss / static_cast<double>(s.count - 1);
  }
  s.stddev = std::sqrt(s.variance);
  return s;
}

double Quantile(std::vector<double> xs, double q) {
  ICTM_REQUIRE(!xs.empty(), "Quantile of empty sample");
  ICTM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(const std::vector<double>& xs) { return Quantile(xs, 0.5); }

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  ICTM_REQUIRE(x.size() == y.size(), "sample size mismatch");
  ICTM_REQUIRE(!x.empty(), "correlation of empty samples");
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) /
                           2.0 +
                       1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  ICTM_REQUIRE(x.size() == y.size(), "sample size mismatch");
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

std::vector<CcdfPoint> EmpiricalCcdf(std::vector<double> xs) {
  ICTM_REQUIRE(!xs.empty(), "CCDF of empty sample");
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  std::vector<CcdfPoint> out;
  out.reserve(xs.size());
  std::size_t i = 0;
  while (i < xs.size()) {
    std::size_t j = i;
    while (j + 1 < xs.size() && xs[j + 1] == xs[i]) ++j;
    // P(X > x) = fraction of samples strictly greater than xs[i].
    const double prob = static_cast<double>(xs.size() - 1 - j) / n;
    out.push_back({xs[i], prob});
    i = j + 1;
  }
  return out;
}

Histogram MakeHistogram(const std::vector<double>& xs, std::size_t bins) {
  ICTM_REQUIRE(!xs.empty(), "histogram of empty sample");
  ICTM_REQUIRE(bins > 0, "histogram needs at least one bin");
  Histogram h;
  h.lo = *std::min_element(xs.begin(), xs.end());
  h.hi = *std::max_element(xs.begin(), xs.end());
  h.counts.assign(bins, 0);
  const double width = h.hi - h.lo;
  for (double x : xs) {
    std::size_t b = 0;
    if (width > 0.0) {
      b = static_cast<std::size_t>((x - h.lo) / width *
                                   static_cast<double>(bins));
      if (b >= bins) b = bins - 1;
    }
    ++h.counts[b];
  }
  return h;
}

}  // namespace ictm::stats
