// Descriptive statistics: summaries, quantiles, correlation, CCDF —
// everything the characterisation experiments (paper Sec. 5) report.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace ictm::stats {

/// Basic moments and extremes of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance; 0 when n < 2
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Computes Summary for a non-empty sample.
Summary Summarize(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1]; sample must be non-empty.
double Quantile(std::vector<double> xs, double q);

/// Median (Quantile at 0.5).
double Median(const std::vector<double>& xs);

/// Pearson correlation coefficient; both samples non-empty and equal
/// length.  Returns 0 when either sample has zero variance.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (Pearson on fractional ranks).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// One point of an empirical complementary CDF.
struct CcdfPoint {
  double x;     ///< sample value
  double prob;  ///< empirical P(X > x)
};

/// Empirical CCDF evaluated at each distinct sorted sample value,
/// suitable for log-log plotting (paper Fig. 7).
std::vector<CcdfPoint> EmpiricalCcdf(std::vector<double> xs);

/// Histogram with `bins` equal-width bins spanning [min, max].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
};
Histogram MakeHistogram(const std::vector<double>& xs, std::size_t bins);

/// Fractional ranks (average rank for ties), 1-based.
std::vector<double> FractionalRanks(const std::vector<double>& xs);

}  // namespace ictm::stats
