#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>

namespace ictm::stats {

namespace {
constexpr double kSqrt2 = 1.41421356237309504880;
constexpr double kSqrt2Pi = 2.50662827463100050242;
}  // namespace

double NormalCdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

// ---- Lognormal --------------------------------------------------------

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  ICTM_REQUIRE(sigma > 0.0, "lognormal sigma must be positive");
}

double Lognormal::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * rng.gaussian());
}

double Lognormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * kSqrt2Pi);
}

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return NormalCdf((std::log(x) - mu_) / sigma_);
}

double Lognormal::ccdf(double x) const { return 1.0 - cdf(x); }

double Lognormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

// ---- Exponential ------------------------------------------------------

Exponential::Exponential(double lambda) : lambda_(lambda) {
  ICTM_REQUIRE(lambda > 0.0, "exponential rate must be positive");
}

double Exponential::sample(Rng& rng) const {
  return rng.exponential(lambda_);
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : lambda_ * std::exp(-lambda_ * x);
}

double Exponential::cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-lambda_ * x);
}

double Exponential::ccdf(double x) const {
  return x < 0.0 ? 1.0 : std::exp(-lambda_ * x);
}

double Exponential::mean() const { return 1.0 / lambda_; }

// ---- Pareto -----------------------------------------------------------

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  ICTM_REQUIRE(xm > 0.0, "Pareto scale must be positive");
  ICTM_REQUIRE(alpha > 0.0, "Pareto shape must be positive");
}

double Pareto::sample(Rng& rng) const {
  // Inverse-CDF: x = xm / U^(1/alpha).
  double u = rng.uniform();
  if (u <= 0.0) u = 1e-16;
  return xm_ / std::pow(u, 1.0 / alpha_);
}

double Pareto::pdf(double x) const {
  if (x < xm_) return 0.0;
  return alpha_ * std::pow(xm_, alpha_) / std::pow(x, alpha_ + 1.0);
}

double Pareto::cdf(double x) const {
  if (x < xm_) return 0.0;
  return 1.0 - std::pow(xm_ / x, alpha_);
}

double Pareto::ccdf(double x) const { return 1.0 - cdf(x); }

double Pareto::mean() const {
  ICTM_REQUIRE(alpha_ > 1.0, "Pareto mean is infinite for alpha <= 1");
  return alpha_ * xm_ / (alpha_ - 1.0);
}

// ---- Discrete sampling -------------------------------------------------

std::size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights) {
  ICTM_REQUIRE(!weights.empty(), "empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    ICTM_REQUIRE(w >= 0.0, "negative weight");
    total += w;
  }
  ICTM_REQUIRE(total > 0.0, "all weights zero");
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  ICTM_REQUIRE(!weights.empty(), "empty weight vector");
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ICTM_REQUIRE(weights[i] >= 0.0, "negative weight");
    acc += weights[i];
    cdf_[i] = acc;
  }
  total_ = acc;
  ICTM_REQUIRE(total_ > 0.0, "all weights zero");
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.uniform() * total_;
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double DiscreteSampler::probability(std::size_t i) const {
  ICTM_REQUIRE(i < cdf_.size(), "index out of range");
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - lo) / total_;
}

}  // namespace ictm::stats
