#include "stats/bootstrap.hpp"

#include <algorithm>

#include "stats/summary.hpp"

namespace ictm::stats {

BootstrapInterval BootstrapCi(const std::vector<double>& sample,
                              const Statistic& statistic,
                              double confidence, std::size_t replicates,
                              Rng& rng) {
  ICTM_REQUIRE(!sample.empty(), "bootstrap of empty sample");
  ICTM_REQUIRE(confidence > 0.0 && confidence < 1.0,
               "confidence out of (0,1)");
  ICTM_REQUIRE(replicates >= 10, "too few bootstrap replicates");

  BootstrapInterval out;
  out.estimate = statistic(sample);

  std::vector<double> stats(replicates);
  std::vector<double> resample(sample.size());
  for (std::size_t r = 0; r < replicates; ++r) {
    for (std::size_t i = 0; i < sample.size(); ++i) {
      resample[i] =
          sample[rng.uniformInt(0, sample.size() - 1)];
    }
    stats[r] = statistic(resample);
  }
  const double alpha = (1.0 - confidence) / 2.0;
  out.lower = Quantile(stats, alpha);
  out.upper = Quantile(stats, 1.0 - alpha);
  return out;
}

BootstrapInterval BootstrapMeanCi(const std::vector<double>& sample,
                                  double confidence,
                                  std::size_t replicates, Rng& rng) {
  return BootstrapCi(
      sample,
      [](const std::vector<double>& xs) {
        double acc = 0.0;
        for (double x : xs) acc += x;
        return acc / static_cast<double>(xs.size());
      },
      confidence, replicates, rng);
}

}  // namespace ictm::stats
