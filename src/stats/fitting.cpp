#include "stats/fitting.hpp"

#include <algorithm>
#include <cmath>

#include "stats/summary.hpp"

namespace ictm::stats {

Lognormal FitLognormalMle(const std::vector<double>& xs) {
  ICTM_REQUIRE(!xs.empty(), "fit of empty sample");
  double mu = 0.0;
  for (double x : xs) {
    ICTM_REQUIRE(x > 0.0, "lognormal fit requires positive samples");
    mu += std::log(x);
  }
  mu /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) {
    const double d = std::log(x) - mu;
    var += d * d;
  }
  var /= static_cast<double>(xs.size());
  // Guard against degenerate (constant) samples.
  const double sigma = std::max(std::sqrt(var), 1e-9);
  return Lognormal(mu, sigma);
}

Exponential FitExponentialMle(const std::vector<double>& xs) {
  ICTM_REQUIRE(!xs.empty(), "fit of empty sample");
  double mean = 0.0;
  for (double x : xs) {
    ICTM_REQUIRE(x >= 0.0, "exponential fit requires non-negative samples");
    mean += x;
  }
  mean /= static_cast<double>(xs.size());
  ICTM_REQUIRE(mean > 0.0, "exponential fit requires positive mean");
  return Exponential(1.0 / mean);
}

namespace {

template <typename Dist>
double LogLikelihoodImpl(const Dist& d, const std::vector<double>& xs) {
  ICTM_REQUIRE(!xs.empty(), "log-likelihood of empty sample");
  double ll = 0.0;
  for (double x : xs) {
    const double p = d.pdf(x);
    ll += std::log(std::max(p, 1e-300));
  }
  return ll;
}

template <typename Dist>
double KsStatisticImpl(std::vector<double> xs, const Dist& d) {
  ICTM_REQUIRE(!xs.empty(), "KS statistic of empty sample");
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double model = d.cdf(xs[i]);
    const double empLo = static_cast<double>(i) / n;
    const double empHi = static_cast<double>(i + 1) / n;
    ks = std::max(ks, std::fabs(model - empLo));
    ks = std::max(ks, std::fabs(model - empHi));
  }
  return ks;
}

template <typename Dist>
double LogCcdfMseImpl(const std::vector<double>& xs, const Dist& d) {
  const auto emp = EmpiricalCcdf(xs);
  double acc = 0.0;
  std::size_t count = 0;
  for (const auto& pt : emp) {
    if (pt.prob <= 0.0) continue;  // last point: log undefined
    const double model = std::max(d.ccdf(pt.x), 1e-300);
    const double diff = std::log10(pt.prob) - std::log10(model);
    acc += diff * diff;
    ++count;
  }
  ICTM_REQUIRE(count > 0, "no usable CCDF points");
  return acc / static_cast<double>(count);
}

}  // namespace

double LogLikelihood(const Lognormal& d, const std::vector<double>& xs) {
  return LogLikelihoodImpl(d, xs);
}
double LogLikelihood(const Exponential& d, const std::vector<double>& xs) {
  return LogLikelihoodImpl(d, xs);
}

double KsStatistic(const std::vector<double>& xs, const Lognormal& d) {
  return KsStatisticImpl(xs, d);
}
double KsStatistic(const std::vector<double>& xs, const Exponential& d) {
  return KsStatisticImpl(xs, d);
}

double LogCcdfMse(const std::vector<double>& xs, const Lognormal& d) {
  return LogCcdfMseImpl(xs, d);
}
double LogCcdfMse(const std::vector<double>& xs, const Exponential& d) {
  return LogCcdfMseImpl(xs, d);
}

}  // namespace ictm::stats
