// Non-parametric bootstrap confidence intervals.
//
// Used to put error bars on the parameter-stability results (Figs. 5-6
// report point estimates per week; the bootstrap quantifies how much
// of the week-to-week variation is sampling noise).
#pragma once

#include <functional>
#include <vector>

#include "stats/rng.hpp"

namespace ictm::stats {

/// A two-sided bootstrap percentile interval.
struct BootstrapInterval {
  double estimate = 0.0;  ///< statistic on the original sample
  double lower = 0.0;     ///< lower percentile bound
  double upper = 0.0;     ///< upper percentile bound
};

/// Statistic signature: sample -> scalar.
using Statistic = std::function<double(const std::vector<double>&)>;

/// Percentile-bootstrap interval for `statistic` on `sample`.
/// `confidence` in (0, 1); `replicates` resamples with replacement.
BootstrapInterval BootstrapCi(const std::vector<double>& sample,
                              const Statistic& statistic,
                              double confidence, std::size_t replicates,
                              Rng& rng);

/// Convenience: bootstrap CI of the sample mean.
BootstrapInterval BootstrapMeanCi(const std::vector<double>& sample,
                                  double confidence,
                                  std::size_t replicates, Rng& rng);

}  // namespace ictm::stats
