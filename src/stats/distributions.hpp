// Parametric distributions used by the paper: lognormal (preference
// values, Sec. 5.3), exponential (the alternative fit it rejects), and
// Pareto/Zipf helpers for heavy-tailed workload sizes.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace ictm::stats {

/// Lognormal distribution with log-space parameters mu, sigma.
/// The paper reports MLE fits of mu ~ -4.3, sigma ~ 1.7 for {P_i}.
class Lognormal {
 public:
  Lognormal(double mu, double sigma);

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

  /// Random draw.
  double sample(Rng& rng) const;
  /// Probability density at x > 0 (0 for x <= 0).
  double pdf(double x) const;
  /// Cumulative distribution function.
  double cdf(double x) const;
  /// Complementary CDF P(X > x).
  double ccdf(double x) const;
  /// Mean exp(mu + sigma^2/2).
  double mean() const;

 private:
  double mu_;
  double sigma_;
};

/// Exponential distribution with rate lambda (mean 1/lambda).
class Exponential {
 public:
  explicit Exponential(double lambda);

  double lambda() const noexcept { return lambda_; }

  double sample(Rng& rng) const;
  double pdf(double x) const;
  double cdf(double x) const;
  double ccdf(double x) const;
  double mean() const;

 private:
  double lambda_;
};

/// Pareto distribution with scale xm > 0 and shape alpha > 0; used for
/// heavy-tailed connection sizes in the workload generator.
class Pareto {
 public:
  Pareto(double xm, double alpha);

  double xm() const noexcept { return xm_; }
  double alpha() const noexcept { return alpha_; }

  double sample(Rng& rng) const;
  double pdf(double x) const;
  double cdf(double x) const;
  double ccdf(double x) const;
  /// Mean (infinite when alpha <= 1; throws in that case).
  double mean() const;

 private:
  double xm_;
  double alpha_;
};

/// Standard normal CDF (via std::erfc).
double NormalCdf(double z);

/// Draws an index in [0, weights.size()) with probability proportional
/// to weights[i] >= 0; at least one weight must be positive.
std::size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights);

/// Cached alias-free discrete sampler for repeated draws from the same
/// weight vector (linear scan over the CDF via binary search).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const noexcept { return cdf_.size(); }
  /// Normalised probability of index i.
  double probability(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, last == total
  double total_;
};

}  // namespace ictm::stats
