// The single sanctioned clock for the observability layer.
//
// The determinism contract (docs/ARCHITECTURE.md, "Threading model
// and determinism contract") bans wall-clock reads from
// result-producing code; ictm_lint ICTM-D002 enforces that ban
// statically.  Observability still needs timestamps, so this header
// funnels every clock read in the repo's instrumentation through one
// function whose definition (src/obs/now.cpp) is the only
// obs-side allowlisted ICTM-D002 site.  Calling obs::Now() never
// trips the lint; calling std::chrono::steady_clock::now() anywhere
// else does.
#pragma once

#include <cstdint>

namespace ictm::obs {

/// Monotonic time in nanoseconds since an arbitrary epoch
/// (std::chrono::steady_clock).  Values are only meaningful as
/// differences.  Returns 0 when the observability layer is compiled
/// out (-DICTM_OBS=OFF).
std::uint64_t Now();

}  // namespace ictm::obs
