// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms with lock-free accumulation and a deterministic merge.
//
// Design constraints (docs/ARCHITECTURE.md, "Observability"):
//
//  * Strictly off the estimation path.  Metrics only ever read
//    obs::Now() and add unsigned integers; they never touch the
//    floating-point inputs or outputs of a solve, so estimates are
//    bit-identical with instrumentation enabled, disabled
//    (SetEnabled(false)) or compiled out (-DICTM_OBS=OFF).
//
//  * Deterministic merge order.  All mergeable state is integral
//    (u64 event counts, u64 nanosecond totals, u64 bucket counts), so
//    accumulation commutes: the merged value cannot depend on which
//    thread landed in which shard or on join order.  There are no
//    floating-point accumulators anywhere in the registry.
//
//  * Two metric classes.  kDeterministic metrics (bins processed,
//    PCG iterations, cache hits) are pure functions of the workload
//    and must be identical across thread counts — tests assert them
//    exactly.  kTiming metrics (queue waits, solve nanoseconds) are
//    scheduling-dependent by nature and are never asserted exactly.
//
// Hot-path cost: one relaxed atomic load (the enable check) plus one
// relaxed fetch_add on a per-thread shard.  Registration (name
// lookup) takes a mutex, so callers cache the returned reference:
//
//   static obs::Counter& bins =
//       obs::GetCounter("stream.bins_pushed", obs::MetricClass::kDeterministic);
//   bins.add();
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ictm::obs {

/// Whether a metric's value is a pure function of the workload
/// (asserted exactly by tests) or depends on scheduling/wall time.
enum class MetricClass {
  kDeterministic,
  kTiming,
};

/// "deterministic" / "timing".
const char* MetricClassName(MetricClass cls);

namespace detail {

inline constexpr std::size_t kShardCount = 8;

/// One cache line per shard so concurrent writers on different
/// threads do not false-share.
struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

/// Stable per-thread shard slot in [0, kShardCount).
std::size_t ShardIndex();

/// Relaxed read of the process-wide enable flag (see SetEnabled).
bool RecordingEnabled();

}  // namespace detail

/// Monotonically increasing event count.  add() is lock-free: each
/// thread lands on its own cache-line-padded shard; value() sums the
/// shards (integer addition commutes, so the total is independent of
/// the thread-to-shard assignment).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
#if defined(ICTM_OBS_DISABLED)
    (void)n;
#else
    if (detail::RecordingEnabled()) {
      shards_[detail::ShardIndex()].value.fetch_add(
          n, std::memory_order_relaxed);
    }
#endif
  }

  std::uint64_t value() const;
  void reset();

 private:
  detail::Shard shards_[detail::kShardCount];
};

/// Last-write-wins level plus a monotonic high-water mark.
class Gauge {
 public:
  void set(std::int64_t v);
  void add(std::int64_t delta);
  /// Raises the high-water mark to v if v is larger.
  void recordMax(std::int64_t v);

  std::int64_t value() const;
  std::int64_t maxValue() const;
  void reset();

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper
/// bounds; one overflow bucket catches everything above the last
/// bound.  Only u64 bucket/event counts are accumulated (no sums, no
/// floating-point state), so merged values are order-independent.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v) {
#if defined(ICTM_OBS_DISABLED)
    (void)v;
#else
    if (detail::RecordingEnabled()) recordSlow(v);
#endif
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] pairs with bounds()[i]; the final entry is the
  /// overflow bucket.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total() const;
  void reset();

 private:
  void recordSlow(double v);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
};

/// Point-in-time copy of one counter.
struct CounterValue {
  std::string name;
  MetricClass cls = MetricClass::kDeterministic;
  std::uint64_t value = 0;
};

/// Point-in-time copy of one gauge.
struct GaugeValue {
  std::string name;
  MetricClass cls = MetricClass::kDeterministic;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

/// Point-in-time copy of one histogram.
struct HistogramValue {
  std::string name;
  MetricClass cls = MetricClass::kTiming;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t total = 0;
};

/// Deterministically ordered (name-sorted) snapshot of the registry.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// ictm-metrics-v1 JSON document (the `--metrics-out` payload).
  std::string toJson() const;

  /// Flat name -> value view for the wire: counters, then gauges
  /// (value and "<name>.max"), then histograms as "<name>.count";
  /// sorted by name.  This is the STATS frame payload source.
  std::vector<std::pair<std::string, std::uint64_t>> flatten() const;
};

/// The process-wide registry.  Metric objects are created on first
/// lookup and live for the life of the process; returned references
/// stay valid forever, which is what makes the cached-static caller
/// pattern safe.
class Registry {
 public:
  static Registry& Instance();

  /// Looks up or creates.  A name re-registered with a different
  /// class keeps its original class (first registration wins).
  Counter& counter(const std::string& name, MetricClass cls);
  Gauge& gauge(const std::string& name, MetricClass cls);
  /// `bounds` applies only on first registration.
  Histogram& histogram(const std::string& name, MetricClass cls,
                       std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered).  Tests
  /// call this between runs; concurrent recording during a reset is
  /// not part of the contract.
  void reset();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

 private:
  Registry() = default;

  template <typename T>
  struct Entry {
    MetricClass cls;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::atomic<bool> enabled_{true};
};

/// Registry::Instance() conveniences — the usual call sites.
Counter& GetCounter(const char* name, MetricClass cls);
Gauge& GetGauge(const char* name, MetricClass cls);
Histogram& GetHistogram(const char* name, MetricClass cls,
                        std::vector<double> bounds);

/// Process-wide enable toggle for all metric recording (tracing has
/// its own session lifecycle).  Defaults to enabled.
bool Enabled();
void SetEnabled(bool on);

/// n ascending bounds: lo, lo*factor, lo*factor^2, ...
std::vector<double> ExponentialBounds(double lo, double factor,
                                      std::size_t n);

/// Standard nanosecond-latency bounds: 1us .. 10s, decades.
std::vector<double> LatencyBoundsNs();

}  // namespace ictm::obs
