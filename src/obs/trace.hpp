// Lightweight scoped tracing that emits Chrome trace_event JSON
// (load the file at chrome://tracing or https://ui.perfetto.dev).
//
// A trace session is process-global and bound to one output file
// (`--trace-out` on the CLI).  While a session is active, TraceScope
// records one complete ("ph":"X") event per scope into a per-thread
// buffer; buffers are only merged and serialized at Stop(), so the
// per-scope cost is two obs::Now() reads and one vector push_back
// under an uncontended per-thread mutex.  When no session is active
// a scope costs one relaxed atomic load.
//
// Tracing follows the same contract as the metrics registry: it never
// touches estimation inputs or outputs, so results are bit-identical
// with tracing on, off, or compiled out.
#pragma once

#include <cstdint>
#include <string>

namespace ictm::obs {

namespace tracing {

/// Opens `path` and starts the process-wide session.  Fails (with
/// *error set) if a session is already active, the file cannot be
/// opened, or the observability layer is compiled out.
bool Start(const std::string& path, std::string* error);

/// True between a successful Start() and the matching Stop().
bool Active();

/// Serializes all buffered events to the session file and closes it.
/// No-op when no session is active.  Returns false (with *error set)
/// if the file cannot be written.
bool Stop(std::string* error);

/// Records a zero-duration instant event ("ph":"i") marker.
void Instant(const char* name, const char* category = "ictm");

}  // namespace tracing

/// RAII scope: records a complete event [construction, destruction)
/// named `name` when a trace session is active.  `name` and
/// `category` must be string literals (they are captured by pointer
/// and read at Stop()).
class TraceScope {
 public:
#if defined(ICTM_OBS_DISABLED)
  explicit TraceScope(const char*, const char* = "ictm") {}
#else
  explicit TraceScope(const char* name, const char* category = "ictm");
  ~TraceScope();
#endif
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

#if !defined(ICTM_OBS_DISABLED)
 private:
  const char* name_;
  const char* category_;
  std::uint64_t startNs_ = 0;
  bool recording_ = false;
#endif
};

}  // namespace ictm::obs
