#include "obs/now.hpp"

#include <chrono>

namespace ictm::obs {

std::uint64_t Now() {
#if defined(ICTM_OBS_DISABLED)
  return 0;
#else
  const auto sinceEpoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(sinceEpoch)
          .count());
#endif
}

}  // namespace ictm::obs
