#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace ictm::obs {

const char* MetricClassName(MetricClass cls) {
  return cls == MetricClass::kDeterministic ? "deterministic" : "timing";
}

namespace detail {

std::size_t ShardIndex() {
  // Threads claim slots round-robin on first use; short-lived worker
  // threads wrap around kShardCount, which only affects which shard
  // they add into — never the merged total.
  static std::atomic<std::uint64_t> nextSlot{0};
  thread_local const std::size_t slot = static_cast<std::size_t>(
      nextSlot.fetch_add(1, std::memory_order_relaxed) % kShardCount);
  return slot;
}

bool RecordingEnabled() { return Registry::Instance().enabled(); }

}  // namespace detail

// ---- Counter ---------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Gauge -----------------------------------------------------------------

void Gauge::set(std::int64_t v) {
#if !defined(ICTM_OBS_DISABLED)
  if (!detail::RecordingEnabled()) return;
  value_.store(v, std::memory_order_relaxed);
  recordMax(v);
#else
  (void)v;
#endif
}

void Gauge::add(std::int64_t delta) {
#if !defined(ICTM_OBS_DISABLED)
  if (!detail::RecordingEnabled()) return;
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  recordMax(now);
#else
  (void)delta;
#endif
}

void Gauge::recordMax(std::int64_t v) {
#if !defined(ICTM_OBS_DISABLED)
  if (!detail::RecordingEnabled()) return;
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

std::int64_t Gauge::value() const {
  return value_.load(std::memory_order_relaxed);
}

std::int64_t Gauge::maxValue() const {
  return max_.load(std::memory_order_relaxed);
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  ICTM_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::recordSlow(double v) {
  // First bucket whose upper bound admits v; everything above the
  // last bound lands in the overflow bucket.  The bucket index is a
  // pure function of v, so deterministic inputs give deterministic
  // bucket counts regardless of recording order.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::total() const {
  return total_.load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
}

// ---- snapshot --------------------------------------------------------------

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\n  \"schema\": \"ictm-metrics-v1\",\n";

  out += "  \"counters\": [";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const CounterValue& c = counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendJsonString(&out, c.name);
    out += ", \"class\": \"";
    out += MetricClassName(c.cls);
    out += "\", \"value\": " + std::to_string(c.value) + "}";
  }
  out += counters.empty() ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const GaugeValue& g = gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendJsonString(&out, g.name);
    out += ", \"class\": \"";
    out += MetricClassName(g.cls);
    out += "\", \"value\": " + std::to_string(g.value) +
           ", \"max\": " + std::to_string(g.max) + "}";
  }
  out += gauges.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendJsonString(&out, h.name);
    out += ", \"class\": \"";
    out += MetricClassName(h.cls);
    out += "\", \"total\": " + std::to_string(h.total) +
           ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += "{\"le\": ";
      if (b < h.bounds.size()) {
        AppendJsonDouble(&out, h.bounds[b]);
      } else {
        out += "\"inf\"";
      }
      out += ", \"count\": " + std::to_string(h.counts[b]) + "}";
    }
    out += "]}";
  }
  out += histograms.empty() ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsSnapshot::flatten()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters.size() + 2 * gauges.size() + histograms.size());
  for (const CounterValue& c : counters) out.emplace_back(c.name, c.value);
  for (const GaugeValue& g : gauges) {
    out.emplace_back(g.name, static_cast<std::uint64_t>(g.value));
    out.emplace_back(g.name + ".max", static_cast<std::uint64_t>(g.max));
  }
  for (const HistogramValue& h : histograms) {
    out.emplace_back(h.name + ".count", h.total);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Registry --------------------------------------------------------------

Registry& Registry::Instance() {
  // Process-wide by design: metrics from every subsystem land in one
  // place so `--metrics-out`, the STATS frame and the serve summary
  // all read the same state (ICTM-D004 allowlisted).
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name, MetricClass cls) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, Entry<Counter>{cls, std::make_unique<Counter>()})
             .first;
  }
  return *it->second.metric;
}

Gauge& Registry::gauge(const std::string& name, MetricClass cls) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, Entry<Gauge>{cls, std::make_unique<Gauge>()})
             .first;
  }
  return *it->second.metric;
}

Histogram& Registry::histogram(const std::string& name, MetricClass cls,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, Entry<Histogram>{
                                cls, std::make_unique<Histogram>(
                                         std::move(bounds))})
             .first;
  }
  return *it->second.metric;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  // std::map iterates in name order, so the snapshot (and everything
  // derived from it: JSON, STATS payload) is deterministically
  // ordered.
  snap.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    snap.counters.push_back({name, entry.cls, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, entry] : gauges_) {
    snap.gauges.push_back({name, entry.cls, entry.metric->value(),
                           entry.metric->maxValue()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    snap.histograms.push_back({name, entry.cls, entry.metric->bounds(),
                               entry.metric->counts(),
                               entry.metric->total()});
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : counters_) entry.metric->reset();
  for (auto& [name, entry] : gauges_) entry.metric->reset();
  for (auto& [name, entry] : histograms_) entry.metric->reset();
}

// ---- conveniences ----------------------------------------------------------

Counter& GetCounter(const char* name, MetricClass cls) {
  return Registry::Instance().counter(name, cls);
}

Gauge& GetGauge(const char* name, MetricClass cls) {
  return Registry::Instance().gauge(name, cls);
}

Histogram& GetHistogram(const char* name, MetricClass cls,
                        std::vector<double> bounds) {
  return Registry::Instance().histogram(name, cls, std::move(bounds));
}

bool Enabled() { return Registry::Instance().enabled(); }

void SetEnabled(bool on) { Registry::Instance().setEnabled(on); }

std::vector<double> ExponentialBounds(double lo, double factor,
                                      std::size_t n) {
  std::vector<double> bounds(n);
  double b = lo;
  for (std::size_t i = 0; i < n; ++i) {
    bounds[i] = b;
    b *= factor;
  }
  return bounds;
}

std::vector<double> LatencyBoundsNs() {
  // 1us, 10us, ..., 10s: eight decades covers queue waits through
  // whole-trace I/O.
  return ExponentialBounds(1e3, 10.0, 8);
}

}  // namespace ictm::obs
