#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/now.hpp"

namespace ictm::obs {

#if !defined(ICTM_OBS_DISABLED)

namespace {

struct Event {
  const char* name;
  const char* category;
  char phase;         // 'X' complete, 'i' instant
  std::uint64_t tsNs;
  std::uint64_t durNs;
};

/// Per-thread event buffer.  The mutex is uncontended on the hot path
/// (only its owner thread appends); Stop() takes it to drain safely
/// even if a straggler scope is still finishing.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> active{false};
  std::mutex mutex;  // guards buffers/freeList/path/nextTid
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<ThreadBuffer*> freeList;  // buffers of exited threads
  std::string path;
  std::uint64_t startNs = 0;
  std::uint32_t nextTid = 0;
};

TraceState& State() {
  // One session per process, like the metrics registry
  // (ICTM-D004 allowlisted).
  static TraceState state;
  return state;
}

/// Returns this thread's buffer, registering (or recycling) one on
/// first use.  The unregister-on-thread-exit hook returns the buffer
/// to the free list so serve processes that spawn per-session worker
/// threads do not grow the buffer list without bound; recycled
/// buffers keep their tid and any not-yet-drained events.
struct Registration {
  ThreadBuffer* buffer = nullptr;
  ~Registration() {
    if (buffer == nullptr) return;
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.freeList.push_back(buffer);
  }
};

ThreadBuffer* LocalBuffer() {
  thread_local Registration reg;
  if (reg.buffer == nullptr) {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.freeList.empty()) {
      reg.buffer = state.freeList.back();
      state.freeList.pop_back();
    } else {
      state.buffers.push_back(std::make_unique<ThreadBuffer>());
      reg.buffer = state.buffers.back().get();
      reg.buffer->tid = state.nextTid++;
    }
  }
  return reg.buffer;
}

void Append(const Event& event) {
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(event);
}

}  // namespace

namespace tracing {

bool Start(const std::string& path, std::string* error) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.active.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "a trace session is already active";
    return false;
  }
  // Open eagerly so a bad path fails at Start, not after the run.
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot open trace file for writing: " + path;
    }
    return false;
  }
  std::fclose(file);
  state.path = path;
  state.startNs = Now();
  state.active.store(true, std::memory_order_release);
  return true;
}

bool Active() {
  return State().active.load(std::memory_order_acquire);
}

bool Stop(std::string* error) {
  TraceState& state = State();
  // Flip the flag first: scopes that check after this point record
  // nothing, so the drain below sees a quiescent set of buffers.
  if (!state.active.exchange(false, std::memory_order_acq_rel)) {
    return true;
  }
  std::lock_guard<std::mutex> lock(state.mutex);
  std::FILE* file = std::fopen(state.path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "cannot write trace file: " + state.path;
    }
    return false;
  }
  std::fputs("{\"traceEvents\":[", file);
  bool first = true;
  for (const auto& buffer : state.buffers) {
    std::vector<Event> events;
    {
      std::lock_guard<std::mutex> bufferLock(buffer->mutex);
      events = std::move(buffer->events);
      buffer->events.clear();
    }
    for (const Event& event : events) {
      const double tsUs =
          static_cast<double>(event.tsNs - state.startNs) / 1e3;
      const double durUs = static_cast<double>(event.durNs) / 1e3;
      std::fprintf(file,
                   "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                   "\"ts\":%.3f,\"pid\":1,\"tid\":%u",
                   first ? "" : ",", event.name, event.category,
                   event.phase, tsUs, buffer->tid);
      if (event.phase == 'X') {
        std::fprintf(file, ",\"dur\":%.3f", durUs);
      } else {
        std::fputs(",\"s\":\"t\"", file);
      }
      std::fputs("}", file);
      first = false;
    }
  }
  std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", file);
  const bool ok = std::fclose(file) == 0;
  if (!ok && error != nullptr) {
    *error = "error closing trace file: " + state.path;
  }
  return ok;
}

void Instant(const char* name, const char* category) {
  if (!Active()) return;
  Append({name, category, 'i', Now(), 0});
}

}  // namespace tracing

TraceScope::TraceScope(const char* name, const char* category)
    : name_(name), category_(category) {
  recording_ = tracing::Active();
  if (recording_) startNs_ = Now();
}

TraceScope::~TraceScope() {
  if (!recording_ || !tracing::Active()) return;
  Append({name_, category_, 'X', startNs_, Now() - startNs_});
}

#else  // ICTM_OBS_DISABLED

namespace tracing {

bool Start(const std::string&, std::string* error) {
  if (error != nullptr) {
    *error = "tracing unavailable: built with -DICTM_OBS=OFF";
  }
  return false;
}

bool Active() { return false; }

bool Stop(std::string*) { return true; }

void Instant(const char*, const char*) {}

}  // namespace tracing

#endif  // ICTM_OBS_DISABLED

}  // namespace ictm::obs
