#include "traffic/io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace ictm::traffic {

CsvHeader ReadCsvHeader(std::istream& is) {
  std::string header;
  ICTM_REQUIRE(static_cast<bool>(std::getline(is, header)),
               "missing TM CSV header");
  CsvHeader h;
  {
    std::istringstream hs(header);
    std::string token;
    while (hs >> token) {
      if (token.rfind("nodes=", 0) == 0) {
        h.nodes = static_cast<std::size_t>(std::stoul(token.substr(6)));
      } else if (token.rfind("bins=", 0) == 0) {
        h.bins = static_cast<std::size_t>(std::stoul(token.substr(5)));
      } else if (token.rfind("binSeconds=", 0) == 0) {
        h.binSeconds = std::stod(token.substr(11));
      }
    }
  }
  ICTM_REQUIRE(h.nodes > 0 && h.bins > 0 && h.binSeconds > 0.0,
               "malformed TM CSV header: " + header);
  return h;
}

void ReadCsvBin(std::istream& is, const CsvHeader& header,
                std::size_t binIndex, double* outBin) {
  const std::size_t n2 = header.nodes * header.nodes;
  // One heap string reused by callers looping over bins; reserve so a
  // typical full-precision row never reallocates while growing.
  static thread_local std::string line;
  line.reserve(n2 * 24);
  ICTM_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "TM CSV truncated at bin " + std::to_string(binIndex));

  const char* p = line.c_str();
  for (std::size_t k = 0; k < n2; ++k) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    ICTM_REQUIRE(end != p,
                 "TM CSV bin " + std::to_string(binIndex) +
                     ": non-numeric cell " + std::to_string(k));
    ICTM_REQUIRE(std::isfinite(v),
                 "TM CSV bin " + std::to_string(binIndex) +
                     ": non-finite value in cell " + std::to_string(k));
    ICTM_REQUIRE(v >= 0.0, "TM CSV bin " + std::to_string(binIndex) +
                               ": negative value in cell " +
                               std::to_string(k));
    outBin[k] = v;
    p = end;
    if (k + 1 < n2) {
      ICTM_REQUIRE(*p == ',',
                   "TM CSV bin " + std::to_string(binIndex) +
                       ": row holds fewer than " + std::to_string(n2) +
                       " cells");
      ++p;
    }
  }
  while (*p == ' ' || *p == '\r') ++p;
  ICTM_REQUIRE(*p == '\0', "TM CSV bin " + std::to_string(binIndex) +
                               ": row holds more than " +
                               std::to_string(n2) + " cells");
}

void WriteCsvHeader(std::ostream& os, const CsvHeader& header) {
  ICTM_REQUIRE(header.nodes > 0 && header.bins > 0 &&
                   header.binSeconds > 0.0,
               "invalid TM CSV header fields");
  os << "# ictm-tm nodes=" << header.nodes << " bins=" << header.bins
     << " binSeconds=" << std::setprecision(17) << header.binSeconds
     << "\n";
}

void WriteCsvBin(std::ostream& os, std::size_t nodes, const double* bin) {
  os << std::setprecision(17);
  const std::size_t n2 = nodes * nodes;
  for (std::size_t k = 0; k < n2; ++k) {
    if (k != 0) os << ',';
    os << bin[k];
  }
  os << '\n';
}

void WriteCsv(std::ostream& os, const TrafficMatrixSeries& series) {
  WriteCsvHeader(os, {series.nodeCount(), series.binCount(),
                      series.binSeconds()});
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    WriteCsvBin(os, series.nodeCount(), series.binData(t));
  }
  ICTM_REQUIRE(os.good(), "stream failure while writing TM CSV");
}

void WriteCsvFile(const std::string& path,
                  const TrafficMatrixSeries& series) {
  std::ofstream out(path);
  ICTM_REQUIRE(out.is_open(), "cannot open file for writing: " + path);
  WriteCsv(out, series);
}

TrafficMatrixSeries ReadCsv(std::istream& is) {
  const CsvHeader h = ReadCsvHeader(is);
  TrafficMatrixSeries series(h.nodes, h.bins, h.binSeconds);
  for (std::size_t t = 0; t < h.bins; ++t) {
    ReadCsvBin(is, h, t, series.binData(t));
  }
  return series;
}

TrafficMatrixSeries ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  ICTM_REQUIRE(in.is_open(), "cannot open file for reading: " + path);
  return ReadCsv(in);
}

}  // namespace ictm::traffic
