#include "traffic/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace ictm::traffic {

void WriteCsv(std::ostream& os, const TrafficMatrixSeries& series) {
  const std::size_t n = series.nodeCount();
  os << "# ictm-tm nodes=" << n << " bins=" << series.binCount()
     << " binSeconds=" << series.binSeconds() << "\n";
  os << std::setprecision(17);
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != 0 || j != 0) os << ',';
        os << series(t, i, j);
      }
    }
    os << '\n';
  }
  ICTM_REQUIRE(os.good(), "stream failure while writing TM CSV");
}

void WriteCsvFile(const std::string& path,
                  const TrafficMatrixSeries& series) {
  std::ofstream out(path);
  ICTM_REQUIRE(out.is_open(), "cannot open file for writing: " + path);
  WriteCsv(out, series);
}

TrafficMatrixSeries ReadCsv(std::istream& is) {
  std::string header;
  ICTM_REQUIRE(static_cast<bool>(std::getline(is, header)),
               "missing TM CSV header");
  std::size_t nodes = 0, bins = 0;
  double binSeconds = 0.0;
  {
    std::istringstream hs(header);
    std::string token;
    while (hs >> token) {
      if (token.rfind("nodes=", 0) == 0) {
        nodes = static_cast<std::size_t>(std::stoul(token.substr(6)));
      } else if (token.rfind("bins=", 0) == 0) {
        bins = static_cast<std::size_t>(std::stoul(token.substr(5)));
      } else if (token.rfind("binSeconds=", 0) == 0) {
        binSeconds = std::stod(token.substr(11));
      }
    }
  }
  ICTM_REQUIRE(nodes > 0 && bins > 0 && binSeconds > 0.0,
               "malformed TM CSV header: " + header);

  TrafficMatrixSeries series(nodes, bins, binSeconds);
  std::string line;
  for (std::size_t t = 0; t < bins; ++t) {
    ICTM_REQUIRE(static_cast<bool>(std::getline(is, line)),
                 "TM CSV truncated at bin " + std::to_string(t));
    std::istringstream ls(line);
    std::string cell;
    for (std::size_t k = 0; k < nodes * nodes; ++k) {
      ICTM_REQUIRE(static_cast<bool>(std::getline(ls, cell, ',')),
                   "TM CSV row too short at bin " + std::to_string(t));
      series(t, k / nodes, k % nodes) = std::stod(cell);
    }
  }
  ICTM_REQUIRE(series.isValid(), "TM CSV contains invalid values");
  return series;
}

TrafficMatrixSeries ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  ICTM_REQUIRE(in.is_open(), "cannot open file for reading: " + path);
  return ReadCsv(in);
}

}  // namespace ictm::traffic
