#include "traffic/tm_series.hpp"

#include <cmath>

namespace ictm::traffic {

TrafficMatrixSeries::TrafficMatrixSeries(std::size_t nodes, std::size_t bins,
                                         double binSeconds)
    : nodes_(nodes),
      bins_(bins),
      binSeconds_(binSeconds),
      data_(nodes * nodes * bins, 0.0) {
  ICTM_REQUIRE(nodes > 0, "series needs at least one node");
  ICTM_REQUIRE(bins > 0, "series needs at least one bin");
  ICTM_REQUIRE(binSeconds > 0.0, "bin duration must be positive");
}

double& TrafficMatrixSeries::at(std::size_t t, std::size_t i,
                                std::size_t j) {
  ICTM_REQUIRE(t < bins_ && i < nodes_ && j < nodes_,
               "TM series index out of range");
  return (*this)(t, i, j);
}

double TrafficMatrixSeries::at(std::size_t t, std::size_t i,
                               std::size_t j) const {
  ICTM_REQUIRE(t < bins_ && i < nodes_ && j < nodes_,
               "TM series index out of range");
  return (*this)(t, i, j);
}

linalg::Matrix TrafficMatrixSeries::bin(std::size_t t) const {
  ICTM_REQUIRE(t < bins_, "bin index out of range");
  linalg::Matrix m(nodes_, nodes_);
  for (std::size_t i = 0; i < nodes_; ++i)
    for (std::size_t j = 0; j < nodes_; ++j) m(i, j) = (*this)(t, i, j);
  return m;
}

void TrafficMatrixSeries::setBin(std::size_t t, const linalg::Matrix& m) {
  ICTM_REQUIRE(t < bins_, "bin index out of range");
  ICTM_REQUIRE(m.rows() == nodes_ && m.cols() == nodes_,
               "bin matrix shape mismatch");
  for (std::size_t i = 0; i < nodes_; ++i) {
    for (std::size_t j = 0; j < nodes_; ++j) {
      ICTM_REQUIRE(m(i, j) >= 0.0, "negative traffic volume");
      (*this)(t, i, j) = m(i, j);
    }
  }
}

const double* TrafficMatrixSeries::binData(std::size_t t) const {
  ICTM_REQUIRE(t < bins_, "bin index out of range");
  return data_.data() + t * nodes_ * nodes_;
}

double* TrafficMatrixSeries::binData(std::size_t t) {
  ICTM_REQUIRE(t < bins_, "bin index out of range");
  return data_.data() + t * nodes_ * nodes_;
}

linalg::Vector TrafficMatrixSeries::ingress(std::size_t t) const {
  ICTM_REQUIRE(t < bins_, "bin index out of range");
  linalg::Vector v(nodes_, 0.0);
  for (std::size_t i = 0; i < nodes_; ++i)
    for (std::size_t j = 0; j < nodes_; ++j) v[i] += (*this)(t, i, j);
  return v;
}

linalg::Vector TrafficMatrixSeries::egress(std::size_t t) const {
  ICTM_REQUIRE(t < bins_, "bin index out of range");
  linalg::Vector v(nodes_, 0.0);
  for (std::size_t i = 0; i < nodes_; ++i)
    for (std::size_t j = 0; j < nodes_; ++j) v[j] += (*this)(t, i, j);
  return v;
}

double TrafficMatrixSeries::total(std::size_t t) const {
  ICTM_REQUIRE(t < bins_, "bin index out of range");
  double acc = 0.0;
  for (std::size_t i = 0; i < nodes_; ++i)
    for (std::size_t j = 0; j < nodes_; ++j) acc += (*this)(t, i, j);
  return acc;
}

linalg::Vector TrafficMatrixSeries::meanNormalizedEgress() const {
  linalg::Vector acc(nodes_, 0.0);
  std::size_t used = 0;
  for (std::size_t t = 0; t < bins_; ++t) {
    const double tot = total(t);
    if (tot <= 0.0) continue;
    const linalg::Vector eg = egress(t);
    for (std::size_t j = 0; j < nodes_; ++j) acc[j] += eg[j] / tot;
    ++used;
  }
  ICTM_REQUIRE(used > 0, "series has no non-empty bins");
  for (double& x : acc) x /= static_cast<double>(used);
  return acc;
}

linalg::Vector TrafficMatrixSeries::odSeries(std::size_t i,
                                             std::size_t j) const {
  ICTM_REQUIRE(i < nodes_ && j < nodes_, "node index out of range");
  linalg::Vector v(bins_);
  for (std::size_t t = 0; t < bins_; ++t) v[t] = (*this)(t, i, j);
  return v;
}

double TrafficMatrixSeries::grandTotal() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

TrafficMatrixSeries TrafficMatrixSeries::slice(std::size_t first,
                                               std::size_t count) const {
  ICTM_REQUIRE(first + count <= bins_ && count > 0,
               "slice out of range");
  TrafficMatrixSeries out(nodes_, count, binSeconds_);
  for (std::size_t t = 0; t < count; ++t)
    for (std::size_t i = 0; i < nodes_; ++i)
      for (std::size_t j = 0; j < nodes_; ++j)
        out(t, i, j) = (*this)(first + t, i, j);
  return out;
}

TrafficMatrixSeries TrafficMatrixSeries::downsample(
    std::size_t stride) const {
  ICTM_REQUIRE(stride >= 1, "stride must be >= 1");
  const std::size_t count = (bins_ + stride - 1) / stride;
  TrafficMatrixSeries out(nodes_, count, binSeconds_ * double(stride));
  for (std::size_t t = 0; t < count; ++t)
    for (std::size_t i = 0; i < nodes_; ++i)
      for (std::size_t j = 0; j < nodes_; ++j)
        out(t, i, j) = (*this)(t * stride, i, j);
  return out;
}

bool TrafficMatrixSeries::isValid() const {
  for (double x : data_) {
    if (!(x >= 0.0) || !std::isfinite(x)) return false;
  }
  return true;
}

linalg::Matrix BuildIngressOperator(std::size_t n) {
  ICTM_REQUIRE(n > 0, "operator of zero nodes");
  linalg::Matrix h(n, n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) h(i, i * n + j) = 1.0;
  return h;
}

linalg::Matrix BuildEgressOperator(std::size_t n) {
  ICTM_REQUIRE(n > 0, "operator of zero nodes");
  linalg::Matrix g(n, n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) g(j, i * n + j) = 1.0;
  return g;
}

linalg::Matrix BuildMarginalOperator(std::size_t n) {
  const linalg::Matrix h = BuildIngressOperator(n);
  const linalg::Matrix g = BuildEgressOperator(n);
  linalg::Matrix q(2 * n, n * n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n * n; ++c) {
      q(r, c) = h(r, c);
      q(n + r, c) = g(r, c);
    }
  return q;
}

}  // namespace ictm::traffic
