// CSV serialisation of traffic-matrix series.
//
// Format: a header line "# ictm-tm nodes=<n> bins=<T> binSeconds=<s>",
// then one line per bin with n*n comma-separated values in row-major
// (i*n+j) order.  Round-trips exactly at full double precision.
#pragma once

#include <iosfwd>
#include <string>

#include "traffic/tm_series.hpp"

namespace ictm::traffic {

/// Writes the series to a stream.
void WriteCsv(std::ostream& os, const TrafficMatrixSeries& series);

/// Writes the series to a file; throws on IO failure.
void WriteCsvFile(const std::string& path,
                  const TrafficMatrixSeries& series);

/// Parses a series from a stream; throws on malformed input.
TrafficMatrixSeries ReadCsv(std::istream& is);

/// Reads a series from a file; throws on IO failure or malformed input.
TrafficMatrixSeries ReadCsvFile(const std::string& path);

}  // namespace ictm::traffic
