// CSV serialisation of traffic-matrix series.
//
// Format: a header line "# ictm-tm nodes=<n> bins=<T> binSeconds=<s>",
// then one line per bin with n*n comma-separated values in row-major
// (i*n+j) order.  Round-trips exactly at full double precision.
//
// The whole-series readers/writers are built on streaming helpers
// (ReadCsvHeader / ReadCsvBin / WriteCsvHeader / WriteCsvBin) so the
// stream module's CSV↔binary converters can process one bin at a time
// with bounded memory.  The parser is strict: every cell must be a
// finite, non-negative number and every row must hold exactly n*n
// cells — malformed lines raise ictm::Error naming the offending bin
// instead of silently producing a corrupt series.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "traffic/tm_series.hpp"

namespace ictm::traffic {

/// Parsed metadata of a TM CSV header line.
struct CsvHeader {
  std::size_t nodes = 0;   ///< matrix dimension n
  std::size_t bins = 0;    ///< number of time bins T
  double binSeconds = 0.0; ///< bin duration metadata
};

/// Reads and validates the header line; throws on malformed input.
CsvHeader ReadCsvHeader(std::istream& is);

/// Reads the next bin line into `outBin` (n² doubles, FlattenTm
/// order).  `binIndex` is used in error messages only.  Throws on
/// truncation, non-numeric cells, NaN/Inf, negative values, or a cell
/// count different from nodes².
void ReadCsvBin(std::istream& is, const CsvHeader& header,
                std::size_t binIndex, double* outBin);

/// Writes the header line for a series of the given shape.
void WriteCsvHeader(std::ostream& os, const CsvHeader& header);

/// Writes one bin line (n² doubles) at full round-trip precision.
void WriteCsvBin(std::ostream& os, std::size_t nodes, const double* bin);

/// Writes the series to a stream.
void WriteCsv(std::ostream& os, const TrafficMatrixSeries& series);

/// Writes the series to a file; throws on IO failure.
void WriteCsvFile(const std::string& path,
                  const TrafficMatrixSeries& series);

/// Parses a series from a stream; throws on malformed input.
TrafficMatrixSeries ReadCsv(std::istream& is);

/// Reads a series from a file; throws on IO failure or malformed input.
TrafficMatrixSeries ReadCsvFile(const std::string& path);

}  // namespace ictm::traffic
