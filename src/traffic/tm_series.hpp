// Traffic-matrix time series: the central data object of the paper.
//
// A TrafficMatrixSeries holds X_ij(t) for i,j in [0,n) and t in [0,T):
// bytes entering at node i and leaving at node j during time bin t.
// Terminology follows the paper: X_i* = ingress at i (row sum),
// X_*j = egress at j (column sum), X_** = total.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace ictm::traffic {

/// A timeseries of n x n traffic matrices.
class TrafficMatrixSeries {
 public:
  /// Creates an all-zero series with n nodes and T time bins
  /// (binSeconds is metadata used by reports; must be positive).
  TrafficMatrixSeries(std::size_t nodes, std::size_t bins,
                      double binSeconds = 300.0);

  std::size_t nodeCount() const noexcept { return nodes_; }
  std::size_t binCount() const noexcept { return bins_; }
  double binSeconds() const noexcept { return binSeconds_; }

  /// Element access X_ij(t); bounds-checked variants throw.
  double& at(std::size_t t, std::size_t i, std::size_t j);
  double at(std::size_t t, std::size_t i, std::size_t j) const;
  double& operator()(std::size_t t, std::size_t i, std::size_t j) noexcept {
    return data_[(t * nodes_ + i) * nodes_ + j];
  }
  double operator()(std::size_t t, std::size_t i,
                    std::size_t j) const noexcept {
    return data_[(t * nodes_ + i) * nodes_ + j];
  }

  /// The n x n matrix for one bin (copy).
  linalg::Matrix bin(std::size_t t) const;
  /// Overwrites one bin; m must be n x n with non-negative entries.
  void setBin(std::size_t t, const linalg::Matrix& m);

  /// Raw view of one bin: n² contiguous doubles in row-major order —
  /// exactly the topology::FlattenTm layout (x[i*n+j] = X_ij), so the
  /// estimation hot path can feed bins to sparse kernels without
  /// copying.  Mutable access bypasses the setBin non-negativity
  /// check; callers must keep entries non-negative.
  const double* binData(std::size_t t) const;
  double* binData(std::size_t t);

  /// Ingress marginals X_i*(t) for one bin (length n).
  linalg::Vector ingress(std::size_t t) const;
  /// Egress marginals X_*j(t) for one bin (length n).
  linalg::Vector egress(std::size_t t) const;
  /// Total traffic X_**(t) in one bin.
  double total(std::size_t t) const;

  /// Mean over bins of the normalised egress share X_*i / X_**
  /// (used in Fig. 8 to gauge preference vs traffic volume).
  linalg::Vector meanNormalizedEgress() const;

  /// Time series of one OD pair (length T).
  linalg::Vector odSeries(std::size_t i, std::size_t j) const;

  /// Sum of all elements across all bins.
  double grandTotal() const;

  /// Extracts the sub-series of bins [first, first+count).
  TrafficMatrixSeries slice(std::size_t first, std::size_t count) const;

  /// Extracts every `stride`-th bin starting at bin 0 (stride >= 1);
  /// used to cheapen coarse parameter scans.
  TrafficMatrixSeries downsample(std::size_t stride) const;

  /// True when every element is >= 0 and finite.
  bool isValid() const;

 private:
  std::size_t nodes_;
  std::size_t bins_;
  double binSeconds_;
  std::vector<double> data_;  // [t][i][j] row-major
};

/// Builds the 0-1 matrix H (n x n^2) with H[i, col(i,j)] = 1: ingress
/// counts from flattened TMs (paper Sec. 6.2).  Column order matches
/// topology::FlattenTm (col = i*n + j).
linalg::Matrix BuildIngressOperator(std::size_t n);

/// Builds the 0-1 matrix G (n x n^2) with G[j, col(i,j)] = 1: egress
/// counts from flattened TMs.
linalg::Matrix BuildEgressOperator(std::size_t n);

/// Builds Q = [H; G] (2n x n^2), the stacked marginal operator the
/// stable-fP estimation premultiplies by (Eq. 8).
linalg::Matrix BuildMarginalOperator(std::size_t n);

}  // namespace ictm::traffic
