#include "topology/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

namespace ictm::topology {

namespace {

// One multiplicative jitter draw (1.0 when disabled), consumed in a
// fixed order so the graph is a pure function of (cfg, seed).
double Jitter(stats::Rng& rng, double jitter) {
  if (jitter <= 0.0) return 1.0;
  return rng.uniform(1.0 - jitter, 1.0 + jitter);
}

// Find-with-path-compression over a parent array (for the Waxman
// connectivity pass; all links are bidirectional, so undirected
// components are exactly the strongly connected ones).
std::size_t Find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

Graph MakeGrid(std::size_t rows, std::size_t cols) {
  ICTM_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2,
               "grid needs rows >= 1, cols >= 1 and at least 2 nodes");
  Graph g;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      std::string name = IndexedName('g', r);
      name += '_';
      name += std::to_string(c);
      g.addNode(name);
    }
  }
  const auto id = [cols](std::size_t r, std::size_t c) {
    return r * cols + c;
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.addBidirectionalLink(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) g.addBidirectionalLink(id(r, c), id(r + 1, c), 1.0);
    }
  }
  ICTM_REQUIRE(IsStronglyConnected(g), "grid must be connected");
  return g;
}

Graph MakeHierarchy(const HierarchyConfig& cfg, std::uint64_t seed) {
  const std::size_t n = cfg.nodes;
  ICTM_REQUIRE(n >= 3, "hierarchy needs at least 3 nodes");
  stats::Rng rng(seed);

  // Tier sizes: a small core ring, up to two aggregation PoPs per core
  // PoP, and everything else as access PoPs.
  const std::size_t core =
      std::min(n, std::max<std::size_t>(3, std::min<std::size_t>(10, n / 10)));
  const std::size_t agg = std::min(n - core, 2 * core);
  const std::size_t access = n - core - agg;

  Graph g;
  for (std::size_t i = 0; i < core; ++i) g.addNode(IndexedName('c', i));
  for (std::size_t i = 0; i < agg; ++i) g.addNode(IndexedName('a', i));
  for (std::size_t i = 0; i < access; ++i)
    g.addNode(IndexedName('e', i));

  auto bilink = [&](NodeId a, NodeId b, double baseWeight,
                    double capacity) {
    g.addBidirectionalLink(a, b, baseWeight * Jitter(rng, cfg.weightJitter),
                           capacity);
  };

  // Core ring plus opposite-node chords on larger cores.
  for (std::size_t i = 0; i < core; ++i) {
    bilink(i, (i + 1) % core, cfg.coreWeight, cfg.coreCapacityBps);
  }
  if (core >= 6) {
    for (std::size_t i = 0; i < core / 2; i += 2) {
      bilink(i, i + core / 2, cfg.coreWeight, cfg.coreCapacityBps);
    }
  }

  // Aggregation PoPs, dual-homed to consecutive core PoPs.
  for (std::size_t j = 0; j < agg; ++j) {
    const NodeId aggId = core + j;
    const std::size_t p1 = j % core;
    bilink(aggId, p1, cfg.aggWeight, cfg.aggCapacityBps);
    const std::size_t p2 = (p1 + 1) % core;
    if (p2 != p1) bilink(aggId, p2, cfg.aggWeight, cfg.aggCapacityBps);
  }

  // Access PoPs, dual-homed to consecutive aggregation PoPs.
  for (std::size_t k = 0; k < access; ++k) {
    const NodeId accessId = core + agg + k;
    const std::size_t q1 = k % agg;
    bilink(accessId, core + q1, cfg.accessWeight, cfg.accessCapacityBps);
    const std::size_t q2 = (q1 + 1) % agg;
    if (q2 != q1)
      bilink(accessId, core + q2, cfg.accessWeight, cfg.accessCapacityBps);
  }

  ICTM_REQUIRE(g.nodeCount() == n, "hierarchy node count mismatch");
  ICTM_REQUIRE(IsStronglyConnected(g), "hierarchy must be connected");
  return g;
}

Graph MakeWaxman(const WaxmanConfig& cfg, std::uint64_t seed) {
  const std::size_t n = cfg.nodes;
  ICTM_REQUIRE(n >= 2, "waxman needs at least 2 nodes");
  ICTM_REQUIRE(cfg.alpha > 0.0, "waxman alpha must be > 0");
  ICTM_REQUIRE(cfg.beta > 0.0 && cfg.beta <= 1.0,
               "waxman beta must be in (0, 1]");
  stats::Rng rng(seed);

  Graph g;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.addNode(IndexedName('w', i));
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  const auto dist = [&](std::size_t i, std::size_t j) {
    return std::hypot(x[i] - x[j], y[i] - y[j]);
  };

  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const double scale = cfg.alpha * std::sqrt(2.0);  // alpha * max distance
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = dist(i, j);
      const double p = cfg.beta * std::exp(-d / scale);
      if (rng.uniform() < p) {
        g.addBidirectionalLink(i, j, 1.0 + d);
        parent[Find(parent, i)] = Find(parent, j);
      }
    }
  }

  // Join remaining components through their closest node pair (ties
  // break on the smallest indices), so the graph is always connected
  // without a retry loop — deterministic in (cfg, seed).
  for (;;) {
    std::size_t bestI = n, bestJ = n;
    double bestD = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (Find(parent, i) == Find(parent, j)) continue;
        const double d = dist(i, j);
        if (d < bestD) {
          bestD = d;
          bestI = i;
          bestJ = j;
        }
      }
    }
    if (bestI == n) break;  // single component
    g.addBidirectionalLink(bestI, bestJ, 1.0 + bestD);
    parent[Find(parent, bestI)] = Find(parent, bestJ);
  }

  ICTM_REQUIRE(IsStronglyConnected(g), "waxman must be connected");
  return g;
}

}  // namespace ictm::topology
