// `.ictp` — the plain-text topology file format.
//
// The canned topologies cover the paper's three datasets; everything
// else (operator networks, generated backbones, what-if variants)
// enters the system through this format.  One directive per line:
//
//   ictp 1                                  magic + version (first
//                                           significant line)
//   node <name>                             defines node ids 0..n-1
//                                           in declaration order
//   link <src> <dst> <weight> [<capacity>]  one directed link
//   bilink <a> <b> <weight> [<capacity>]    a bidirectional pair
//
// '#' starts a comment (full-line or trailing); blank lines are
// ignored.  Node names match [A-Za-z0-9_.-]+ and must be declared
// before any link references them.  Weights and capacities must be
// finite and strictly positive; capacity defaults to 10 Gb/s.  The
// parser is strict — duplicate nodes, dangling endpoints, self-loops,
// malformed numbers and truncated files all raise ictm::Error carrying
// the source name and line number — and requires the parsed graph to
// be strongly connected, because every consumer (routing matrices,
// estimation) needs that.
//
// The writer emits a canonical form (nodes in id order, links in id
// order, adjacent reverse pairs folded into one `bilink`, numbers in
// shortest round-trip notation), so equal graphs serialise to
// byte-identical text — the property `ictm topo gen --seed S`'s
// reproducibility contract rests on.  docs/FORMATS.md holds the
// normative grammar.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/graph.hpp"

namespace ictm::topology {

/// Parses an `.ictp` document from a stream.  `source` names the input
/// in error messages ("file.ictp:12: ...").  Throws ictm::Error on any
/// grammar or semantic violation (see the file comment for the rules).
Graph ParseIctp(std::istream& is, const std::string& source = "<ictp>");

/// Parses an `.ictp` document held in a string.
Graph ParseIctpString(const std::string& text,
                      const std::string& source = "<ictp>");

/// Reads and parses an `.ictp` file; throws on IO failure or malformed
/// content.
Graph ReadIctpFile(const std::string& path);

/// Writes the graph in canonical `.ictp` form (see the file comment);
/// equal graphs produce byte-identical output.  Throws when a node
/// name cannot be represented (empty or containing characters outside
/// [A-Za-z0-9_.-]).
void WriteIctp(std::ostream& os, const Graph& g);

/// The canonical `.ictp` form as a string.
std::string WriteIctpString(const Graph& g);

/// Writes the canonical `.ictp` form to a file; throws on IO failure.
void WriteIctpFile(const std::string& path, const Graph& g);

}  // namespace ictm::topology
