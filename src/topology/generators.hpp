// Deterministic synthetic topology generators.
//
// The paper evaluates estimation on one 22-PoP backbone; scaling the
// engines past that needs families of backbones whose size is a dial.
// Every generator here is seed-reproducible: the same configuration
// and seed always produce the same graph (and hence, through the
// canonical `.ictp` writer, byte-identical files).  Randomness, where
// used at all, flows through stats::Rng in a fixed draw order.
//
// MakeRing lives in topologies.hpp (it predates this module); grid,
// hierarchy and Waxman live here.  All generated graphs are strongly
// connected by construction (and checked), so they can feed
// BuildRoutingCsr directly.
#pragma once

#include <cstdint>

#include "stats/rng.hpp"
#include "topology/graph.hpp"

namespace ictm::topology {

/// rows x cols mesh: node (r, c) is named "g<r>_<c>" and links
/// bidirectionally (weight 1) to its right and down neighbours.
/// Requires rows >= 1, cols >= 1 and at least 2 nodes total.
Graph MakeGrid(std::size_t rows, std::size_t cols);

/// Shape parameters of the access/aggregation/core hierarchy.
struct HierarchyConfig {
  /// Total node count (core + aggregation + access); >= 3.  The core
  /// ring holds max(3, min(10, nodes/10)) PoPs, up to 2 aggregation
  /// PoPs hang off each core PoP (dual-homed to consecutive core
  /// PoPs), and the remaining nodes are access PoPs dual-homed to
  /// consecutive aggregation PoPs — the star-of-rings shape of real
  /// PoP backbones.
  std::size_t nodes = 50;
  /// IGP weight of core ring/chord links.
  double coreWeight = 1.0;
  /// IGP weight of core-aggregation links.
  double aggWeight = 2.0;
  /// IGP weight of aggregation-access links.
  double accessWeight = 4.0;
  /// Capacity of core links.
  double coreCapacityBps = 100e9;
  /// Capacity of core-aggregation links.
  double aggCapacityBps = 10e9;
  /// Capacity of aggregation-access links.
  double accessCapacityBps = 2.5e9;
  /// Per-link multiplicative IGP-weight jitter: each link's weight is
  /// scaled by uniform(1 - jitter, 1 + jitter) drawn from the seed, so
  /// different seeds break routing ties differently.  0 disables
  /// jitter (the seed then has no effect).
  double weightJitter = 0.1;
};

/// Builds the hierarchical backbone described by `cfg`; deterministic
/// in (cfg, seed).  Node names are "c<i>" (core), "a<i>"
/// (aggregation) and "e<i>" (access/edge).
Graph MakeHierarchy(const HierarchyConfig& cfg, std::uint64_t seed = 0);

/// Shape parameters of the Waxman random graph.
struct WaxmanConfig {
  /// Node count; >= 2.  Nodes are placed uniformly in the unit square.
  std::size_t nodes = 50;
  /// Distance-decay scale: link probability is
  /// beta * exp(-d / (alpha * sqrt(2))).  Smaller alpha favours short
  /// links.
  double alpha = 0.15;
  /// Overall link density dial in (0, 1].
  double beta = 0.4;
};

/// Builds a Waxman random graph; deterministic in (cfg, seed).  Node
/// names are "w<i>"; link weights are 1 + euclidean distance, so IGP
/// routing prefers geographically short paths.  After the random pass
/// the components are joined by their closest node pairs, so the
/// result is always strongly connected.
Graph MakeWaxman(const WaxmanConfig& cfg, std::uint64_t seed = 0);

}  // namespace ictm::topology
