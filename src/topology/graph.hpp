// Network topology: PoP-level graph with directed links and IGP weights.
//
// The TM-estimation experiments (paper Sec. 6) need a routing matrix R
// relating OD flows to link loads (Y = Rx); this module supplies the
// graph, shortest-path routing, and canned PoP-level topologies shaped
// like the networks in the paper's datasets.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

/// Network topology: PoP-level graphs with IGP routing, the canned
/// paper backbones, synthetic generators, the `.ictp` file format and
/// the spec registry that resolves any of them by name.
namespace ictm::topology {

/// Node identifier (index into the graph's node table).
using NodeId = std::size_t;
/// Link identifier (index into the graph's link table).
using LinkId = std::size_t;

/// Builds a generator node name like "c12" via append — avoids the
/// `const char* + std::string&&` concatenation that GCC 12's -Wrestrict
/// mis-analyzes when inlined into hot loops (GCC bug 105329).
inline std::string IndexedName(char prefix, std::size_t index) {
  std::string name(1, prefix);
  name += std::to_string(index);
  return name;
}

/// A directed link with an IGP weight and capacity.
struct Link {
  NodeId src = 0;               ///< source node id
  NodeId dst = 0;               ///< destination node id
  double igpWeight = 1.0;       ///< IGP metric (> 0)
  double capacityBps = 10e9;    ///< capacity in bits per second
};

/// A PoP-level network graph.  Nodes are numbered 0..n-1 and carry
/// human-readable names; links are directed (bidirectional physical
/// links are added as two directed links).
class Graph {
 public:
  /// Constructs an empty graph.
  Graph() = default;

  /// Adds a node; returns its id.
  NodeId addNode(std::string name);

  /// Adds a directed link; endpoints must exist and weight must be > 0.
  LinkId addLink(NodeId src, NodeId dst, double igpWeight = 1.0,
                 double capacityBps = 10e9);

  /// Adds a pair of directed links (src->dst and dst->src) with the same
  /// weight/capacity; returns the id of the forward link (the reverse is
  /// the next id).
  LinkId addBidirectionalLink(NodeId a, NodeId b, double igpWeight = 1.0,
                              double capacityBps = 10e9);

  /// Number of nodes.
  std::size_t nodeCount() const noexcept { return names_.size(); }
  /// Number of directed links.
  std::size_t linkCount() const noexcept { return links_.size(); }

  /// Name of a node; throws when the id is out of range.
  const std::string& nodeName(NodeId id) const;
  /// Node id by exact name; throws when absent.
  NodeId nodeByName(const std::string& name) const;

  /// One link by id; throws when the id is out of range.
  const Link& link(LinkId id) const;
  /// All directed links in id order.
  const std::vector<Link>& links() const noexcept { return links_; }

  /// Outgoing link ids of a node.
  const std::vector<LinkId>& outLinks(NodeId id) const;

 private:
  std::vector<std::string> names_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

/// Result of a single-source shortest-path computation.
struct ShortestPaths {
  /// dist[v]: shortest IGP distance from the source (infinity when
  /// unreachable).
  std::vector<double> dist;
  /// For each node, all incoming links on *some* shortest path
  /// (multiple entries when equal-cost paths exist).
  std::vector<std::vector<LinkId>> predecessors;
};

/// Dijkstra over IGP weights from `source`.
ShortestPaths ComputeShortestPaths(const Graph& g, NodeId source);

/// True when every node can reach every other node.
bool IsStronglyConnected(const Graph& g);

}  // namespace ictm::topology
