// Canned PoP-level topologies shaped like the networks behind the
// paper's datasets:
//   - Geant22: 22 PoPs in European capitals (dataset D1),
//   - Totem23: the same network with PoP 'de' split into de1/de2
//     (dataset D2),
//   - Abilene11: the 11-PoP US research backbone (dataset D3).
//
// Link sets follow the published maps of the era at PoP granularity;
// exact IGP weights were never public, so uniform-ish weights with a
// few asymmetries are used.  Only connectivity shape matters for the
// reproduction (the routing matrix rank and the estimation problem's
// under-determinedness), not the precise weight values.
#pragma once

#include "topology/graph.hpp"

namespace ictm::topology {

/// 22-node Géant-like European research backbone.
Graph MakeGeant22();

/// 23-node Totem variant: Géant with 'de' split into 'de1' and 'de2'.
Graph MakeTotem23();

/// 11-node Abilene-like US research backbone (includes IPLS, CLEV,
/// KSCY — the nodes instrumented in dataset D3).
Graph MakeAbilene11();

/// Synthetic ring-with-chords topology for property tests: n nodes in a
/// ring plus chords every `chordStep` nodes (chordStep 0 = plain ring).
Graph MakeRing(std::size_t n, std::size_t chordStep = 0);

}  // namespace ictm::topology
