#include "topology/routing.hpp"

#include <algorithm>
#include <cmath>

namespace ictm::topology {

namespace {

// Computes, for a fixed destination-tree rooted at `source`, the
// fraction of (source -> v) traffic on every link, assuming even ECMP
// splitting at every branch point.  `sp` is the shortest-path result
// from `source`.
void AccumulateFractions(const Graph& g, const ShortestPaths& sp,
                         NodeId source, NodeId target, bool ecmp,
                         std::vector<double>& linkFraction) {
  // Walk backwards from target to source, distributing the unit of
  // traffic across predecessor links proportionally.  We process nodes
  // in order of decreasing distance so each node's mass is final before
  // we push it upstream.
  std::vector<double> nodeMass(g.nodeCount(), 0.0);
  nodeMass[target] = 1.0;

  std::vector<NodeId> order;
  order.reserve(g.nodeCount());
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    if (std::isfinite(sp.dist[v])) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return sp.dist[a] > sp.dist[b];
  });

  for (NodeId v : order) {
    if (v == source || nodeMass[v] <= 0.0) continue;
    const auto& preds = sp.predecessors[v];
    ICTM_REQUIRE(!preds.empty(), "unreachable node in routing tree");
    if (ecmp) {
      const double share = nodeMass[v] / static_cast<double>(preds.size());
      for (LinkId lid : preds) {
        linkFraction[lid] += share;
        nodeMass[g.link(lid).src] += share;
      }
    } else {
      const LinkId lid = *std::min_element(preds.begin(), preds.end());
      linkFraction[lid] += nodeMass[v];
      nodeMass[g.link(lid).src] += nodeMass[v];
    }
  }
}

}  // namespace

linalg::Matrix BuildRoutingMatrix(const Graph& g,
                                  const RoutingOptions& options) {
  return BuildRoutingCsr(g, options).ToDense();
}

linalg::CsrMatrix BuildRoutingCsr(const Graph& g,
                                  const RoutingOptions& options) {
  const std::size_t n = g.nodeCount();
  ICTM_REQUIRE(n > 0, "routing matrix of empty graph");
  ICTM_REQUIRE(IsStronglyConnected(g),
               "graph must be strongly connected for routing");
  std::vector<linalg::Triplet> entries;
  entries.reserve(4 * n * n);  // a few links per OD pair

  std::vector<double> linkFraction(g.linkCount(), 0.0);
  for (NodeId src = 0; src < n; ++src) {
    const ShortestPaths sp = ComputeShortestPaths(g, src);
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;  // intra-PoP traffic uses no backbone link
      std::fill(linkFraction.begin(), linkFraction.end(), 0.0);
      AccumulateFractions(g, sp, src, dst, options.ecmp, linkFraction);
      const std::size_t col = src * n + dst;
      for (LinkId lid = 0; lid < g.linkCount(); ++lid) {
        if (linkFraction[lid] != 0.0) {
          entries.push_back({lid, col, linkFraction[lid]});
        }
      }
    }
  }
  return linalg::CsrMatrix::FromTriplets(g.linkCount(), n * n,
                                         std::move(entries));
}

linalg::Vector ComputeLinkLoads(const linalg::Matrix& routing,
                                const linalg::Matrix& tm) {
  return routing * FlattenTm(tm);
}

linalg::Vector ComputeLinkLoads(const linalg::CsrMatrix& routing,
                                const linalg::Matrix& tm) {
  ICTM_REQUIRE(tm.rows() == tm.cols(), "TM must be square");
  ICTM_REQUIRE(routing.cols() == tm.rows() * tm.cols(),
               "routing matrix column mismatch");
  // Matrix storage is row-major, so tm.data() already is FlattenTm(tm).
  linalg::Vector y(routing.rows(), 0.0);
  routing.MultiplyInto(tm.data().data(), y.data());
  return y;
}

linalg::Vector FlattenTm(const linalg::Matrix& tm) {
  ICTM_REQUIRE(tm.rows() == tm.cols(), "TM must be square");
  const std::size_t n = tm.rows();
  linalg::Vector x(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) x[i * n + j] = tm(i, j);
  return x;
}

linalg::Matrix UnflattenTm(const linalg::Vector& x, std::size_t n) {
  ICTM_REQUIRE(x.size() == n * n, "vector length is not n^2");
  linalg::Matrix tm(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) tm(i, j) = x[i * n + j];
  return tm;
}

}  // namespace ictm::topology
