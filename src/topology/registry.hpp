// Topology registry: one string spec resolves to any topology the
// system knows — canned paper backbones, parameterised generator
// families, or `.ictp` files on disk — so every surface that needs a
// graph (`ictm estimate/stream/run/topo`, scenarios, benches) shares
// one resolution path instead of a private name switch.
//
// Spec grammar (documented normatively in docs/CLI.md):
//
//   geant22 | totem23 | abilene11        canned paper topologies
//   ring:<n>[:<chordStep>]               ring with optional chords
//   grid:<rows>x<cols>                   mesh
//   hierarchy:<n>                        access/aggregation/core PoP
//                                        hierarchy (seeded weight
//                                        jitter)
//   waxman:<n>[:<alpha>:<beta>]          Waxman random graph (seeded)
//   <path>.ictp or any path with '/'     parsed topology file
//
// The seed parameter feeds the seeded generators (hierarchy, waxman);
// canned topologies, rings, grids and files ignore it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/graph.hpp"

namespace ictm::topology {

/// Registry metadata for one resolvable topology family.
struct TopologyInfo {
  /// Family name, e.g. "geant22" or "hierarchy".
  std::string name;
  /// "canned" or "generator".
  std::string kind;
  /// The spec syntax that selects it, e.g. "hierarchy:<n>".
  std::string spec;
  /// One-line description.
  std::string summary;
};

/// All registered topology families, canned entries first.
const std::vector<TopologyInfo>& ListTopologies();

/// True when `spec` names a file (ends in ".ictp" or contains a path
/// separator) rather than a registry entry.
bool IsTopologyFileSpec(const std::string& spec);

/// Resolves a spec (see the file comment for the grammar) into a
/// graph.  `seed` drives the seeded generators.  Throws ictm::Error on
/// unknown or malformed specs, unreadable/invalid files, or generator
/// parameter violations.
Graph MakeTopology(const std::string& spec, std::uint64_t seed = 0);

}  // namespace ictm::topology
