// Routing matrix construction (Y = R x, paper Sec. 6).
//
// R has one row per directed link and one column per OD pair (column
// index i*n + j).  Entry R[l, (i,j)] is the fraction of OD flow (i,j)
// carried on link l — 1 on single shortest paths, fractional under
// equal-cost multipath splitting.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "topology/graph.hpp"

namespace ictm::topology {

/// Options controlling routing-matrix construction.
struct RoutingOptions {
  /// Split traffic evenly across equal-cost shortest paths (per-link
  /// ECMP splitting, as deployed IGPs do).  When false, the
  /// lowest-link-id shortest path carries everything.
  bool ecmp = true;
};

/// Builds the (#links x n^2) routing matrix for the graph.
/// OD pair (i,j) maps to column i*n + j; diagonal OD pairs (i == i)
/// stay inside the PoP and use no backbone link (all-zero column).
linalg::Matrix BuildRoutingMatrix(const Graph& g,
                                  const RoutingOptions& options = {});

/// Same matrix emitted directly in compressed form — the natural
/// representation: a column holds only the links on one OD pair's
/// shortest path(s), so density is about (path length)/links.
linalg::CsrMatrix BuildRoutingCsr(const Graph& g,
                                  const RoutingOptions& options = {});

/// Computes per-link loads Y = R x for a TM given as an n x n matrix.
linalg::Vector ComputeLinkLoads(const linalg::Matrix& routing,
                                const linalg::Matrix& tm);
/// ComputeLinkLoads over the compressed routing matrix (same result).
linalg::Vector ComputeLinkLoads(const linalg::CsrMatrix& routing,
                                const linalg::Matrix& tm);

/// Flattens an n x n TM into the x vector ordering used by
/// BuildRoutingMatrix (row-major, x[i*n+j] = X_ij).
linalg::Vector FlattenTm(const linalg::Matrix& tm);

/// Inverse of FlattenTm.
linalg::Matrix UnflattenTm(const linalg::Vector& x, std::size_t n);

}  // namespace ictm::topology
