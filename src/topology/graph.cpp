#include "topology/graph.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <queue>

namespace ictm::topology {

NodeId Graph::addNode(std::string name) {
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  return names_.size() - 1;
}

LinkId Graph::addLink(NodeId src, NodeId dst, double igpWeight,
                      double capacityBps) {
  ICTM_REQUIRE(src < nodeCount() && dst < nodeCount(),
               "link endpoint does not exist");
  ICTM_REQUIRE(src != dst, "self-loop links are not allowed");
  ICTM_REQUIRE(igpWeight > 0.0, "IGP weight must be positive");
  ICTM_REQUIRE(capacityBps > 0.0, "capacity must be positive");
  links_.push_back(Link{src, dst, igpWeight, capacityBps});
  adjacency_[src].push_back(links_.size() - 1);
  return links_.size() - 1;
}

LinkId Graph::addBidirectionalLink(NodeId a, NodeId b, double igpWeight,
                                   double capacityBps) {
  const LinkId forward = addLink(a, b, igpWeight, capacityBps);
  addLink(b, a, igpWeight, capacityBps);
  return forward;
}

const std::string& Graph::nodeName(NodeId id) const {
  ICTM_REQUIRE(id < nodeCount(), "node id out of range");
  return names_[id];
}

NodeId Graph::nodeByName(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  ICTM_REQUIRE(it != names_.end(), "unknown node name: " + name);
  return static_cast<NodeId>(it - names_.begin());
}

const Link& Graph::link(LinkId id) const {
  ICTM_REQUIRE(id < linkCount(), "link id out of range");
  return links_[id];
}

const std::vector<LinkId>& Graph::outLinks(NodeId id) const {
  ICTM_REQUIRE(id < nodeCount(), "node id out of range");
  return adjacency_[id];
}

ShortestPaths ComputeShortestPaths(const Graph& g, NodeId source) {
  ICTM_REQUIRE(source < g.nodeCount(), "source node out of range");
  const double inf = std::numeric_limits<double>::infinity();
  ShortestPaths sp;
  sp.dist.assign(g.nodeCount(), inf);
  sp.predecessors.assign(g.nodeCount(), {});
  sp.dist[source] = 0.0;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  pq.emplace(0.0, source);
  constexpr double kTieTol = 1e-9;

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > sp.dist[u] + kTieTol) continue;  // stale entry
    for (LinkId lid : g.outLinks(u)) {
      const Link& l = g.link(lid);
      const double nd = sp.dist[u] + l.igpWeight;
      if (nd < sp.dist[l.dst] - kTieTol) {
        sp.dist[l.dst] = nd;
        sp.predecessors[l.dst].clear();
        sp.predecessors[l.dst].push_back(lid);
        pq.emplace(nd, l.dst);
      } else if (std::abs(nd - sp.dist[l.dst]) <= kTieTol) {
        // Equal-cost path: record the extra predecessor link.
        auto& preds = sp.predecessors[l.dst];
        if (std::find(preds.begin(), preds.end(), lid) == preds.end()) {
          preds.push_back(lid);
        }
      }
    }
  }
  return sp;
}

bool IsStronglyConnected(const Graph& g) {
  if (g.nodeCount() == 0) return true;
  for (NodeId s = 0; s < g.nodeCount(); ++s) {
    const ShortestPaths sp = ComputeShortestPaths(g, s);
    for (double d : sp.dist) {
      if (!std::isfinite(d)) return false;
    }
  }
  return true;
}

}  // namespace ictm::topology
