#include "topology/ictp.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace ictm::topology {

namespace {

constexpr double kDefaultCapacityBps = 10e9;

[[noreturn]] void Fail(const std::string& source, std::size_t line,
                       const std::string& msg) {
  throw Error(source + ":" + std::to_string(line) + ": " + msg);
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-';
}

bool IsValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

// Splits a line into whitespace-separated fields, dropping everything
// from the first '#' on.
std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

// Strict positive-finite double parse (whole field must be consumed).
double ParsePositiveDouble(const std::string& field, const char* what,
                           const std::string& source, std::size_t line) {
  double value = 0.0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    Fail(source, line,
         std::string(what) + " is not a number: '" + field + "'");
  }
  if (!std::isfinite(value) || value <= 0.0) {
    Fail(source, line,
         std::string(what) + " must be finite and > 0, got: " + field);
  }
  return value;
}

// Shortest round-trip decimal form, as the JSON model uses — equal
// doubles always format to equal bytes.
std::string FormatDouble(double value) {
  std::array<char, 32> buf;
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  ICTM_REQUIRE(ec == std::errc{}, "double formatting failed");
  return std::string(buf.data(), ptr);
}

}  // namespace

Graph ParseIctp(std::istream& is, const std::string& source) {
  Graph g;
  std::unordered_map<std::string, NodeId> ids;
  std::string line;
  std::size_t lineNo = 0;
  bool sawMagic = false;

  auto nodeId = [&](const std::string& name) -> NodeId {
    const auto it = ids.find(name);
    if (it == ids.end()) {
      Fail(source, lineNo, "unknown node '" + name +
                               "' (nodes must be declared before links "
                               "reference them)");
    }
    return it->second;
  };

  while (std::getline(is, line)) {
    ++lineNo;
    const std::vector<std::string> fields = Fields(line);
    if (fields.empty()) continue;  // blank or comment-only line

    if (!sawMagic) {
      if (fields.size() != 2 || fields[0] != "ictp") {
        Fail(source, lineNo,
             "expected magic line 'ictp 1' before any directive");
      }
      if (fields[1] != "1") {
        Fail(source, lineNo,
             "unsupported ictp version: " + fields[1] +
                 " (this reader understands version 1)");
      }
      sawMagic = true;
      continue;
    }

    const std::string& directive = fields[0];
    if (directive == "node") {
      if (fields.size() != 2) {
        Fail(source, lineNo, "node takes exactly one field: node <name>");
      }
      const std::string& name = fields[1];
      if (!IsValidName(name)) {
        Fail(source, lineNo,
             "invalid node name '" + name +
                 "' (allowed characters: A-Za-z0-9_.-)");
      }
      if (ids.count(name) != 0) {
        Fail(source, lineNo, "duplicate node name '" + name + "'");
      }
      ids.emplace(name, g.addNode(name));
    } else if (directive == "link" || directive == "bilink") {
      if (fields.size() < 4 || fields.size() > 5) {
        Fail(source, lineNo,
             directive + " takes 3 or 4 fields: " + directive +
                 " <a> <b> <weight> [<capacity_bps>]");
      }
      const NodeId a = nodeId(fields[1]);
      const NodeId b = nodeId(fields[2]);
      if (a == b) {
        Fail(source, lineNo,
             "self-loop on node '" + fields[1] + "' is not allowed");
      }
      const double weight =
          ParsePositiveDouble(fields[3], "weight", source, lineNo);
      const double capacity =
          fields.size() == 5
              ? ParsePositiveDouble(fields[4], "capacity", source, lineNo)
              : kDefaultCapacityBps;
      if (directive == "link") {
        g.addLink(a, b, weight, capacity);
      } else {
        g.addBidirectionalLink(a, b, weight, capacity);
      }
    } else {
      Fail(source, lineNo,
           "unknown directive '" + directive +
               "' (expected node, link or bilink)");
    }
  }

  if (!sawMagic) {
    Fail(source, lineNo, "empty or truncated file: missing 'ictp 1' magic");
  }
  if (g.nodeCount() == 0) {
    Fail(source, lineNo, "topology declares no nodes");
  }
  if (!IsStronglyConnected(g)) {
    throw Error(source +
                ": topology is not strongly connected (every node must "
                "reach every other node)");
  }
  return g;
}

Graph ParseIctpString(const std::string& text, const std::string& source) {
  std::istringstream is(text);
  return ParseIctp(is, source);
}

Graph ReadIctpFile(const std::string& path) {
  std::ifstream is(path);
  ICTM_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return ParseIctp(is, path);
}

void WriteIctp(std::ostream& os, const Graph& g) {
  os << "ictp 1\n";
  for (NodeId id = 0; id < g.nodeCount(); ++id) {
    const std::string& name = g.nodeName(id);
    ICTM_REQUIRE(IsValidName(name),
                 "node name not representable in .ictp: '" + name + "'");
    os << "node " << name << "\n";
  }
  for (LinkId id = 0; id < g.linkCount();) {
    const Link& l = g.link(id);
    // Fold the adjacent reverse pair addBidirectionalLink creates.
    if (id + 1 < g.linkCount()) {
      const Link& r = g.link(id + 1);
      if (r.src == l.dst && r.dst == l.src &&
          r.igpWeight == l.igpWeight && r.capacityBps == l.capacityBps) {
        os << "bilink " << g.nodeName(l.src) << ' ' << g.nodeName(l.dst)
           << ' ' << FormatDouble(l.igpWeight) << ' '
           << FormatDouble(l.capacityBps) << "\n";
        id += 2;
        continue;
      }
    }
    os << "link " << g.nodeName(l.src) << ' ' << g.nodeName(l.dst) << ' '
       << FormatDouble(l.igpWeight) << ' ' << FormatDouble(l.capacityBps)
       << "\n";
    ++id;
  }
}

std::string WriteIctpString(const Graph& g) {
  std::ostringstream os;
  WriteIctp(os, g);
  return os.str();
}

void WriteIctpFile(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  ICTM_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  WriteIctp(os, g);
  os.flush();
  ICTM_REQUIRE(os.good(), "write failed: " + path);
}

}  // namespace ictm::topology
