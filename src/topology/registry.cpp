#include "topology/registry.hpp"

#include <charconv>
#include <vector>

#include "topology/generators.hpp"
#include "topology/ictp.hpp"
#include "topology/topologies.hpp"

namespace ictm::topology {

namespace {

std::vector<std::string> SplitColon(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = spec.find(':', start);
    if (pos == std::string::npos) {
      parts.push_back(spec.substr(start));
      return parts;
    }
    parts.push_back(spec.substr(start, pos - start));
    start = pos + 1;
  }
}

std::size_t ParseCount(const std::string& field, const char* what,
                       const std::string& spec) {
  std::size_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  ICTM_REQUIRE(ec == std::errc{} && ptr == end && !field.empty(),
               std::string("topology spec '") + spec + "': " + what +
                   " is not a count: '" + field + "'");
  return value;
}

double ParsePositive(const std::string& field, const char* what,
                     const std::string& spec) {
  double value = 0.0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  ICTM_REQUIRE(ec == std::errc{} && ptr == end && value > 0.0,
               std::string("topology spec '") + spec + "': " + what +
                   " is not a positive number: '" + field + "'");
  return value;
}

[[noreturn]] void FailSpec(const std::string& spec, const std::string& why) {
  throw Error("topology spec '" + spec + "': " + why +
              " (see `ictm topo list` for the grammar)");
}

}  // namespace

const std::vector<TopologyInfo>& ListTopologies() {
  static const std::vector<TopologyInfo> table = {
      {"geant22", "canned", "geant22",
       "22-PoP Géant-like European backbone (paper dataset D1)"},
      {"totem23", "canned", "totem23",
       "23-PoP Totem variant: Géant with 'de' split into de1/de2 (D2)"},
      {"abilene11", "canned", "abilene11",
       "11-PoP Abilene-like US research backbone (D3)"},
      {"ring", "generator", "ring:<n>[:<chordStep>]",
       "n-node ring, optional chords every chordStep nodes"},
      {"grid", "generator", "grid:<rows>x<cols>",
       "rows x cols mesh with unit IGP weights"},
      {"hierarchy", "generator", "hierarchy:<n>",
       "access/aggregation/core PoP hierarchy; --seed jitters IGP "
       "weights"},
      {"waxman", "generator", "waxman:<n>[:<alpha>:<beta>]",
       "Waxman random graph in the unit square; --seed places nodes "
       "and links"},
  };
  return table;
}

bool IsTopologyFileSpec(const std::string& spec) {
  if (spec.size() >= 5 && spec.compare(spec.size() - 5, 5, ".ictp") == 0) {
    return true;
  }
  return spec.find('/') != std::string::npos;
}

Graph MakeTopology(const std::string& spec, std::uint64_t seed) {
  ICTM_REQUIRE(!spec.empty(), "topology spec is empty");
  if (IsTopologyFileSpec(spec)) return ReadIctpFile(spec);

  const std::vector<std::string> parts = SplitColon(spec);
  const std::string& family = parts[0];

  if (family == "geant22" || family == "totem23" ||
      family == "abilene11") {
    if (parts.size() != 1) FailSpec(spec, "canned names take no parameters");
    if (family == "geant22") return MakeGeant22();
    if (family == "totem23") return MakeTotem23();
    return MakeAbilene11();
  }
  if (family == "ring") {
    if (parts.size() < 2 || parts.size() > 3) {
      FailSpec(spec, "expected ring:<n>[:<chordStep>]");
    }
    const std::size_t n = ParseCount(parts[1], "node count", spec);
    const std::size_t chord =
        parts.size() == 3 ? ParseCount(parts[2], "chordStep", spec) : 0;
    return MakeRing(n, chord);
  }
  if (family == "grid") {
    if (parts.size() != 2) FailSpec(spec, "expected grid:<rows>x<cols>");
    const std::size_t x = parts[1].find('x');
    if (x == std::string::npos) {
      FailSpec(spec, "expected grid:<rows>x<cols>");
    }
    const std::size_t rows =
        ParseCount(parts[1].substr(0, x), "rows", spec);
    const std::size_t cols =
        ParseCount(parts[1].substr(x + 1), "cols", spec);
    return MakeGrid(rows, cols);
  }
  if (family == "hierarchy") {
    if (parts.size() != 2) FailSpec(spec, "expected hierarchy:<n>");
    HierarchyConfig cfg;
    cfg.nodes = ParseCount(parts[1], "node count", spec);
    return MakeHierarchy(cfg, seed);
  }
  if (family == "waxman") {
    if (parts.size() != 2 && parts.size() != 4) {
      FailSpec(spec, "expected waxman:<n>[:<alpha>:<beta>]");
    }
    WaxmanConfig cfg;
    cfg.nodes = ParseCount(parts[1], "node count", spec);
    if (parts.size() == 4) {
      cfg.alpha = ParsePositive(parts[2], "alpha", spec);
      cfg.beta = ParsePositive(parts[3], "beta", spec);
    }
    return MakeWaxman(cfg, seed);
  }

  // No cwd-dependent fallback: file specs must end in .ictp or carry a
  // path separator (write "./name" for an extensionless local file),
  // so resolution never depends on what the working directory holds.
  FailSpec(spec, "unknown topology family '" + family + "'");
}

}  // namespace ictm::topology
