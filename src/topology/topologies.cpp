#include "topology/topologies.hpp"

#include <array>

namespace ictm::topology {

namespace {

// Adds a bidirectional link between nodes named a and b.
void Bi(Graph& g, const char* a, const char* b, double w = 1.0) {
  g.addBidirectionalLink(g.nodeByName(a), g.nodeByName(b), w);
}

}  // namespace

Graph MakeGeant22() {
  Graph g;
  // 22 PoPs, matching the Géant PoP list of 2004 (dataset D1).
  const std::array<const char*, 22> pops = {
      "at", "be", "ch", "cz", "de", "es", "fr", "gr", "hr", "hu", "ie",
      "il", "it", "lu", "nl", "pl", "pt", "se", "si", "sk", "uk", "ny"};
  for (const char* p : pops) g.addNode(p);

  // Core mesh between the four largest PoPs.
  Bi(g, "de", "fr", 1.0);
  Bi(g, "de", "nl", 1.0);
  Bi(g, "de", "it", 1.2);
  Bi(g, "de", "at", 1.0);
  Bi(g, "de", "ch", 1.0);
  Bi(g, "de", "se", 1.5);
  Bi(g, "fr", "uk", 1.0);
  Bi(g, "fr", "ch", 1.0);
  Bi(g, "fr", "es", 1.2);
  Bi(g, "fr", "be", 1.0);
  Bi(g, "uk", "nl", 1.0);
  Bi(g, "uk", "se", 1.4);
  Bi(g, "uk", "ny", 2.5);  // transatlantic
  Bi(g, "de", "ny", 2.6);  // transatlantic
  Bi(g, "nl", "be", 1.0);
  Bi(g, "nl", "lu", 1.1);
  Bi(g, "be", "lu", 1.0);
  Bi(g, "it", "ch", 1.0);
  Bi(g, "it", "gr", 1.8);
  Bi(g, "it", "es", 1.6);
  Bi(g, "it", "il", 2.2);
  Bi(g, "at", "hu", 1.0);
  Bi(g, "at", "si", 1.0);
  Bi(g, "at", "cz", 1.0);
  Bi(g, "at", "hr", 1.1);
  Bi(g, "at", "gr", 1.9);
  Bi(g, "cz", "sk", 1.0);
  Bi(g, "cz", "pl", 1.0);
  Bi(g, "hu", "sk", 1.0);
  Bi(g, "hu", "hr", 1.0);
  Bi(g, "pl", "de", 1.2);
  Bi(g, "se", "pl", 1.6);
  Bi(g, "es", "pt", 1.0);
  Bi(g, "pt", "uk", 1.8);
  Bi(g, "ie", "uk", 1.0);
  Bi(g, "ie", "ny", 2.8);
  Bi(g, "il", "ny", 3.0);
  Bi(g, "si", "hr", 1.0);

  ICTM_REQUIRE(IsStronglyConnected(g), "Geant22 must be connected");
  return g;
}

Graph MakeTotem23() {
  Graph g;
  // Same as Geant22, with 'de' split into 'de1' and 'de2' (the change
  // the paper notes between datasets D1 and D2).
  const std::array<const char*, 23> pops = {
      "at", "be", "ch", "cz", "de1", "de2", "es", "fr", "gr", "hr", "hu",
      "ie", "il", "it", "lu",  "nl",  "pl", "pt", "se", "si", "sk", "uk",
      "ny"};
  for (const char* p : pops) g.addNode(p);

  Bi(g, "de1", "de2", 0.5);  // intra-Germany split
  Bi(g, "de1", "fr", 1.0);
  Bi(g, "de1", "nl", 1.0);
  Bi(g, "de2", "it", 1.2);
  Bi(g, "de2", "at", 1.0);
  Bi(g, "de1", "ch", 1.0);
  Bi(g, "de2", "se", 1.5);
  Bi(g, "fr", "uk", 1.0);
  Bi(g, "fr", "ch", 1.0);
  Bi(g, "fr", "es", 1.2);
  Bi(g, "fr", "be", 1.0);
  Bi(g, "uk", "nl", 1.0);
  Bi(g, "uk", "se", 1.4);
  Bi(g, "uk", "ny", 2.5);
  Bi(g, "de1", "ny", 2.6);
  Bi(g, "nl", "be", 1.0);
  Bi(g, "nl", "lu", 1.1);
  Bi(g, "be", "lu", 1.0);
  Bi(g, "it", "ch", 1.0);
  Bi(g, "it", "gr", 1.8);
  Bi(g, "it", "es", 1.6);
  Bi(g, "it", "il", 2.2);
  Bi(g, "at", "hu", 1.0);
  Bi(g, "at", "si", 1.0);
  Bi(g, "at", "cz", 1.0);
  Bi(g, "at", "hr", 1.1);
  Bi(g, "at", "gr", 1.9);
  Bi(g, "cz", "sk", 1.0);
  Bi(g, "cz", "pl", 1.0);
  Bi(g, "hu", "sk", 1.0);
  Bi(g, "hu", "hr", 1.0);
  Bi(g, "pl", "de2", 1.2);
  Bi(g, "se", "pl", 1.6);
  Bi(g, "es", "pt", 1.0);
  Bi(g, "pt", "uk", 1.8);
  Bi(g, "ie", "uk", 1.0);
  Bi(g, "ie", "ny", 2.8);
  Bi(g, "il", "ny", 3.0);
  Bi(g, "si", "hr", 1.0);

  ICTM_REQUIRE(IsStronglyConnected(g), "Totem23 must be connected");
  return g;
}

Graph MakeAbilene11() {
  Graph g;
  // The 11 Abilene PoPs circa 2004.
  const std::array<const char*, 11> pops = {
      "STTL", "SNVA", "LOSA", "DNVR", "KSCY", "HSTN",
      "IPLS", "CHIN", "ATLA", "WASH", "NYCM"};
  for (const char* p : pops) g.addNode(p);

  // Published Abilene backbone links.
  Bi(g, "STTL", "SNVA", 1.0);
  Bi(g, "STTL", "DNVR", 1.0);
  Bi(g, "SNVA", "LOSA", 1.0);
  Bi(g, "SNVA", "DNVR", 1.1);
  Bi(g, "LOSA", "HSTN", 1.4);
  Bi(g, "DNVR", "KSCY", 1.0);
  Bi(g, "KSCY", "HSTN", 1.0);
  Bi(g, "KSCY", "IPLS", 1.0);
  Bi(g, "HSTN", "ATLA", 1.2);
  Bi(g, "IPLS", "CHIN", 1.0);
  Bi(g, "IPLS", "ATLA", 1.3);
  Bi(g, "CHIN", "NYCM", 1.0);
  Bi(g, "ATLA", "WASH", 1.0);
  Bi(g, "WASH", "NYCM", 1.0);
  ICTM_REQUIRE(IsStronglyConnected(g), "Abilene11 must be connected");
  return g;
}

Graph MakeRing(std::size_t n, std::size_t chordStep) {
  ICTM_REQUIRE(n >= 3, "ring needs at least 3 nodes");
  Graph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.addNode(IndexedName('r', i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.addBidirectionalLink(i, (i + 1) % n, 1.0);
  }
  if (chordStep >= 2) {
    for (std::size_t i = 0; i < n; i += chordStep) {
      const std::size_t j = (i + n / 2) % n;
      if (j != i && j != (i + 1) % n && i != (j + 1) % n) {
        g.addBidirectionalLink(i, j, 1.0);
      }
    }
  }
  ICTM_REQUIRE(IsStronglyConnected(g), "ring must be connected");
  return g;
}

}  // namespace ictm::topology
