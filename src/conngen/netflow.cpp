#include "conngen/netflow.hpp"

#include <cmath>

namespace ictm::conngen {

traffic::TrafficMatrixSeries ApplyNetflowSampling(
    const traffic::TrafficMatrixSeries& truth, const NetflowConfig& config,
    stats::Rng& rng) {
  ICTM_REQUIRE(config.samplingRate > 0.0 && config.samplingRate <= 1.0,
               "sampling rate out of (0,1]");
  ICTM_REQUIRE(config.meanPacketBytes > 0.0,
               "mean packet size must be positive");

  const std::size_t n = truth.nodeCount();
  traffic::TrafficMatrixSeries out(n, truth.binCount(),
                                   truth.binSeconds());
  const double invRate = 1.0 / config.samplingRate;
  for (std::size_t t = 0; t < truth.binCount(); ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double bytes = truth(t, i, j);
        if (bytes <= 0.0) continue;
        const double packets = bytes / config.meanPacketBytes;
        // Expected sampled packets; Poisson thinning is the standard
        // model for independent per-packet sampling.
        const double lambda = packets * config.samplingRate;
        const double sampled =
            static_cast<double>(rng.poisson(lambda));
        out(t, i, j) = sampled * config.meanPacketBytes * invRate;
      }
    }
  }
  return out;
}

double SamplingAggregateError(const traffic::TrafficMatrixSeries& truth,
                              const traffic::TrafficMatrixSeries& sampled) {
  const double trueTotal = truth.grandTotal();
  ICTM_REQUIRE(trueTotal > 0.0, "empty ground-truth series");
  return std::fabs(sampled.grandTotal() - trueTotal) / trueTotal;
}

}  // namespace ictm::conngen
