// Application traffic profiles.
//
// The paper grounds the forward-fraction parameter f in application
// behaviour: Web/FTP are highly asymmetric (f ~ 0.05-0.06 per Paxson
// [15] and Tstat [12]), P2P is milder (f ~ 0.35 for Gnutella), and the
// network-wide mix lands at f ~ 0.2-0.3.  The workload generator draws
// each connection's application from a mix and uses the per-app
// forward fraction, so aggregate f emerges rather than being imposed.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace ictm::conngen {

/// Static description of one application class.
struct AppProfile {
  std::string name;
  /// Forward fraction: forward bytes / (forward + reverse bytes).
  double forwardFraction = 0.25;
  /// Relative share of *connections* belonging to this app.
  double mixWeight = 1.0;
  /// Log-space mean of total (fwd+rev) connection bytes.
  double logMeanBytes = 9.0;  // ~ 8 KB
  /// Log-space sigma of total connection bytes.
  double logSigmaBytes = 1.5;

  void validate() const {
    ICTM_REQUIRE(forwardFraction > 0.0 && forwardFraction < 1.0,
                 "forwardFraction must be in (0,1)");
    ICTM_REQUIRE(mixWeight >= 0.0, "mixWeight must be >= 0");
    ICTM_REQUIRE(logSigmaBytes > 0.0, "logSigmaBytes must be > 0");
  }
};

/// An application mix: a weighted set of profiles.
class ApplicationMix {
 public:
  explicit ApplicationMix(std::vector<AppProfile> profiles);

  const std::vector<AppProfile>& profiles() const noexcept {
    return profiles_;
  }
  std::size_t size() const noexcept { return profiles_.size(); }
  const AppProfile& profile(std::size_t i) const;

  /// Byte-weighted expected forward fraction of the whole mix:
  /// sum_a w_a * E[bytes_a] * f_a / sum_a w_a * E[bytes_a].
  double expectedForwardFraction() const;

  /// Returns a copy with every mixWeight scaled so they sum to 1.
  ApplicationMix normalized() const;

 private:
  std::vector<AppProfile> profiles_;
};

/// The default 2006-era mix: Web-dominated with a substantial P2P
/// share, plus FTP/SMTP/NNTP/interactive.  Its byte-weighted forward
/// fraction lands in the paper's observed 0.2-0.3 band.
ApplicationMix DefaultMix2006();

/// A Web-heavy mix (lower aggregate f, ~0.1) for what-if experiments.
ApplicationMix WebHeavyMix();

/// A P2P-heavy mix (higher aggregate f, ~0.35) for what-if experiments.
ApplicationMix P2pHeavyMix();

}  // namespace ictm::conngen
