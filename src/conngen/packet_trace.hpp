// Bidirectional packet-header trace simulation.
//
// Dataset D3 in the paper is a pair of two-hour unidirectional packet
// header traces on the Abilene IPLS<->CLEV / IPLS<->KSCY links, used in
// Sec. 5.2 to *measure* f directly (match flows by 5-tuple, find the
// initiator via the TCP SYN, classify pre-trace connections as
// unknown).  This module synthesises equivalent trace pairs so the
// identical measurement procedure can run.
#pragma once

#include <cstdint>
#include <vector>

#include "conngen/applications.hpp"
#include "stats/rng.hpp"

namespace ictm::conngen {

/// One captured packet header (already reduced to what the
/// f-measurement tool needs: time, flow identity, size, SYN flag).
struct PacketRecord {
  double timestampSec = 0.0;  ///< seconds since trace start
  std::uint64_t flowId = 0;   ///< surrogate for the 5-tuple
  std::uint32_t bytes = 0;
  bool syn = false;           ///< TCP SYN (first packet from initiator)
};

/// A pair of unidirectional link traces between endpoints A and B.
struct LinkTracePair {
  std::vector<PacketRecord> aToB;  ///< packets on the A->B link
  std::vector<PacketRecord> bToA;  ///< packets on the B->A link
  double durationSec = 0.0;
};

/// Configuration for trace synthesis.
struct TraceSimConfig {
  double durationSec = 7200.0;       ///< 2 hours, like D3
  double connectionsPerSec = 40.0;   ///< Poisson connection arrival rate
  /// Probability a connection is initiated on side A (vs side B).
  double fracInitiatedAtA = 0.55;
  ApplicationMix mix = DefaultMix2006();
  std::uint32_t mss = 1460;          ///< max payload bytes per packet
  /// Mean per-connection throughput in bytes/sec (lognormal spread).
  double meanThroughputBps = 120e3;
  double throughputLogSigma = 0.8;
  /// Connections may start this long before the capture window; their
  /// SYNs are then outside the trace and they become "unknown" traffic
  /// (the paper reports < 20% unknown for this reason).
  double warmupSec = 600.0;
};

/// Synthesises a trace pair; packets are time-sorted per direction.
LinkTracePair SimulatePacketTraces(const TraceSimConfig& config,
                                   stats::Rng& rng);

}  // namespace ictm::conngen
