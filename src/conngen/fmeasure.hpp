// Forward-fraction measurement from bidirectional packet traces —
// the exact procedure of paper Sec. 5.2:
//
//   1. match flows across the two link traces by 5-tuple,
//   2. identify the initiator as the sender of the TCP SYN,
//   3. per time bin, accumulate
//        I_i: bytes on link i->j from connections initiated at i,
//        R_i: bytes on link i->j from connections initiated at j,
//      (and symmetrically I_j, R_j),
//   4. classify traffic with no observed SYN as unknown (connections
//      that started before the trace),
//   5. report f_ij = I_i / (I_i + R_j) per bin.
#pragma once

#include <cstddef>
#include <vector>

#include "conngen/packet_trace.hpp"

namespace ictm::conngen {

/// Per-bin f measurements for both directions of a link pair.
struct FMeasurement {
  /// f for OD direction A->B per bin: I_A / (I_A + R_B).
  std::vector<double> fAB;
  /// f for OD direction B->A per bin: I_B / (I_B + R_A).
  std::vector<double> fBA;
  /// Fraction of total observed bytes that could not be attributed to
  /// an initiator (no SYN in the trace window).
  double unknownByteFraction = 0.0;
  double binSeconds = 300.0;
};

/// Runs the Sec. 5.2 procedure on a trace pair with the given bin size
/// (the paper uses 5-minute bins).  Bins with no attributable traffic
/// report NaN for that direction.
FMeasurement MeasureForwardFraction(const LinkTracePair& trace,
                                    double binSeconds = 300.0);

/// Convenience: mean of the finite per-bin values in `series`.
double MeanFiniteF(const std::vector<double>& series);

}  // namespace ictm::conngen
