#include "conngen/applications.hpp"

#include <cmath>

namespace ictm::conngen {

ApplicationMix::ApplicationMix(std::vector<AppProfile> profiles)
    : profiles_(std::move(profiles)) {
  ICTM_REQUIRE(!profiles_.empty(), "application mix cannot be empty");
  double totalWeight = 0.0;
  for (const auto& p : profiles_) {
    p.validate();
    totalWeight += p.mixWeight;
  }
  ICTM_REQUIRE(totalWeight > 0.0, "application mix has zero total weight");
}

const AppProfile& ApplicationMix::profile(std::size_t i) const {
  ICTM_REQUIRE(i < profiles_.size(), "profile index out of range");
  return profiles_[i];
}

double ApplicationMix::expectedForwardFraction() const {
  double num = 0.0;
  double den = 0.0;
  for (const auto& p : profiles_) {
    // Lognormal mean of total connection bytes.
    const double meanBytes =
        std::exp(p.logMeanBytes + 0.5 * p.logSigmaBytes * p.logSigmaBytes);
    num += p.mixWeight * meanBytes * p.forwardFraction;
    den += p.mixWeight * meanBytes;
  }
  return num / den;
}

ApplicationMix ApplicationMix::normalized() const {
  double total = 0.0;
  for (const auto& p : profiles_) total += p.mixWeight;
  std::vector<AppProfile> scaled = profiles_;
  for (auto& p : scaled) p.mixWeight /= total;
  return ApplicationMix(std::move(scaled));
}

ApplicationMix DefaultMix2006() {
  // Forward fractions follow Paxson [15] (telnet ~0.05) and Tstat [12]
  // (HTTP ~0.06, Gnutella ~0.35); sizes are heavy-tailed lognormals.
  // The byte-weighted aggregate forward fraction of this mix is ~0.25,
  // inside the paper's observed 0.2-0.3 band (Fig. 4).
  // Sizes are expressed at "flow bundle" granularity (hundreds of KB
  // mean — each draw stands for a batch of same-app connections between
  // the same hosts) so that PoP-level bins aggregate hundreds to
  // thousands of draws, matching the high aggregation of real backbone
  // OD flows.  Relative size ordering across apps is preserved.
  return ApplicationMix({
      {"web", 0.10, 0.46, 10.8, 1.2},
      {"p2p", 0.42, 0.22, 12.9, 1.2},
      {"ftp", 0.06, 0.05, 13.4, 1.2},
      {"smtp", 0.75, 0.13, 10.1, 1.0},
      {"nntp", 0.12, 0.04, 12.2, 1.1},
      {"interactive", 0.35, 0.10, 9.0, 0.9},
  });
}

ApplicationMix WebHeavyMix() {
  return ApplicationMix({
      {"web", 0.08, 0.85, 10.8, 1.2},
      {"smtp", 0.75, 0.08, 10.1, 1.0},
      {"interactive", 0.35, 0.07, 9.0, 0.9},
  });
}

ApplicationMix P2pHeavyMix() {
  return ApplicationMix({
      {"p2p", 0.40, 0.70, 12.9, 1.2},
      {"web", 0.08, 0.25, 10.8, 1.2},
      {"smtp", 0.75, 0.05, 10.1, 1.0},
  });
}

}  // namespace ictm::conngen
