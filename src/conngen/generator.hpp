// Connection-level traffic generator.
//
// This is the ground-truth substrate replacing the paper's netflow
// datasets: traffic matrices *emerge* from independently drawn
// connections — each with an initiator node (proportional to node
// activity), a responder node (proportional to node preference,
// independent of the initiator), an application (hence a forward
// fraction), and a heavy-tailed size.  Forward bytes land in
// X[initiator][responder], reverse bytes in X[responder][initiator],
// exactly the mechanism the IC model formalises (paper Sec. 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "conngen/applications.hpp"
#include "stats/rng.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::conngen {

/// One generated connection (aggregated, no per-packet detail).
struct Connection {
  std::size_t initiator = 0;
  std::size_t responder = 0;
  std::size_t appIndex = 0;
  double forwardBytes = 0.0;
  double reverseBytes = 0.0;
  std::size_t bin = 0;
};

/// Configuration of the generator.
struct GeneratorConfig {
  /// Per-node, per-bin activity targets: activities[i][t] is the total
  /// (fwd+rev) byte volume initiated at node i during bin t.
  std::vector<std::vector<double>> activities;
  /// Per-node preference weights (>= 0, at least one positive).  Not
  /// required to sum to 1 (normalised internally, as in the paper).
  std::vector<double> preferences;
  /// Application mix.
  ApplicationMix mix = DefaultMix2006();
  /// When true a connection's responder may equal its initiator
  /// (self-loop OD traffic, as in the paper's Fig. 2 example).
  bool allowSelfConnections = true;
  /// Fraction of *reverse* traffic that is misdelivered to a uniformly
  /// random other node instead of the initiator — models 'hot potato'
  /// routing asymmetry (paper Sec. 5.6).  0 disables.
  double routingAsymmetry = 0.0;
  /// Lognormal sigma of per-(i,j) multiplicative jitter applied to each
  /// connection's forward fraction in logit space; makes f_ij vary by
  /// pair so the *simplified* IC model is only approximately right.
  double pairFJitterSigma = 0.0;
};

/// Result of a generation run.
struct GeneratedTraffic {
  traffic::TrafficMatrixSeries series;
  /// Total number of connections generated.
  std::uint64_t connectionCount = 0;
  /// Realised network-wide forward fraction
  /// (total fwd bytes / total bytes).
  double realizedForwardFraction = 0.0;
};

/// Generates a ground-truth TM series from connections.
/// `binSeconds` is carried into the output series as metadata.
GeneratedTraffic GenerateTraffic(const GeneratorConfig& config,
                                 double binSeconds, stats::Rng& rng);

/// As GenerateTraffic but also returns every connection (memory-heavy;
/// use for small scenarios and the packet-trace pipeline).
GeneratedTraffic GenerateTraffic(const GeneratorConfig& config,
                                 double binSeconds, stats::Rng& rng,
                                 std::vector<Connection>* outConnections);

}  // namespace ictm::conngen
