#include "conngen/generator.hpp"

#include <cmath>

#include "stats/distributions.hpp"

namespace ictm::conngen {

namespace {

// Deterministic per-(i,j) jitter seed so a pair's f bias is stable over
// time (the paper's f_ij is a property of the pair, not of the bin).
std::uint64_t PairSeed(std::size_t i, std::size_t j) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h ^= (static_cast<std::uint64_t>(i) + 1) * 0xbf58476d1ce4e5b9ull;
  h ^= (static_cast<std::uint64_t>(j) + 1) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

double Logit(double p) { return std::log(p / (1.0 - p)); }
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

GeneratedTraffic GenerateTraffic(const GeneratorConfig& config,
                                 double binSeconds, stats::Rng& rng) {
  return GenerateTraffic(config, binSeconds, rng, nullptr);
}

GeneratedTraffic GenerateTraffic(const GeneratorConfig& config,
                                 double binSeconds, stats::Rng& rng,
                                 std::vector<Connection>* outConnections) {
  const std::size_t n = config.activities.size();
  ICTM_REQUIRE(n > 0, "no nodes in generator config");
  ICTM_REQUIRE(config.preferences.size() == n,
               "preferences size must match node count");
  ICTM_REQUIRE(config.routingAsymmetry >= 0.0 &&
                   config.routingAsymmetry <= 1.0,
               "routingAsymmetry out of [0,1]");
  ICTM_REQUIRE(config.pairFJitterSigma >= 0.0,
               "pairFJitterSigma must be >= 0");
  const std::size_t bins = config.activities.front().size();
  ICTM_REQUIRE(bins > 0, "generator needs at least one bin");
  for (const auto& a : config.activities) {
    ICTM_REQUIRE(a.size() == bins, "ragged activity matrix");
    for (double v : a) ICTM_REQUIRE(v >= 0.0, "negative activity");
  }

  stats::DiscreteSampler responderSampler(config.preferences);
  const auto& apps = config.mix.profiles();
  std::vector<double> appWeights;
  appWeights.reserve(apps.size());
  for (const auto& p : apps) appWeights.push_back(p.mixWeight);
  stats::DiscreteSampler appSampler(appWeights);

  // Precompute per-pair f jitter offsets (logit-space).
  linalg::Matrix fJitter(n, n, 0.0);
  if (config.pairFJitterSigma > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        stats::Rng pairRng(PairSeed(i, j));
        fJitter(i, j) = pairRng.gaussian(0.0, config.pairFJitterSigma);
      }
    }
  }

  GeneratedTraffic result{
      traffic::TrafficMatrixSeries(n, bins, binSeconds), 0, 0.0};
  double totalFwd = 0.0;
  double totalBytes = 0.0;

  for (std::size_t t = 0; t < bins; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      const double target = config.activities[i][t];
      double generated = 0.0;
      // Draw connections until node i's activity target for this bin is
      // met.  The last connection is kept whole (slight overshoot) so
      // sizes stay heavy-tailed rather than truncated.
      while (generated < target) {
        std::size_t responder = responderSampler.sample(rng);
        if (!config.allowSelfConnections) {
          std::size_t guard = 0;
          while (responder == i && ++guard < 64) {
            responder = responderSampler.sample(rng);
          }
          if (responder == i) break;  // degenerate preference vector
        }
        const std::size_t appIdx = appSampler.sample(rng);
        const AppProfile& app = apps[appIdx];

        const double bytes = std::exp(
            rng.gaussian(app.logMeanBytes, app.logSigmaBytes));
        double f = app.forwardFraction;
        if (config.pairFJitterSigma > 0.0) {
          f = Sigmoid(Logit(f) + fJitter(i, responder));
        }
        const double fwd = bytes * f;
        const double rev = bytes - fwd;

        result.series(t, i, responder) += fwd;
        // Routing asymmetry: some reverse traffic exits at a different
        // node than the initiator's ingress (hot-potato, Sec. 5.6).
        if (config.routingAsymmetry > 0.0 &&
            rng.bernoulli(config.routingAsymmetry) && n > 1) {
          std::size_t other = static_cast<std::size_t>(
              rng.uniformInt(0, n - 2));
          if (other >= i) ++other;
          result.series(t, responder, other) += rev;
        } else {
          result.series(t, responder, i) += rev;
        }

        generated += bytes;
        totalFwd += fwd;
        totalBytes += bytes;
        ++result.connectionCount;
        if (outConnections != nullptr) {
          outConnections->push_back(
              Connection{i, responder, appIdx, fwd, rev, t});
        }
      }
    }
  }

  result.realizedForwardFraction =
      totalBytes > 0.0 ? totalFwd / totalBytes : 0.0;
  return result;
}

}  // namespace ictm::conngen
