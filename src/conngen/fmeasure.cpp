#include "conngen/fmeasure.hpp"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"

namespace ictm::conngen {

namespace {

enum class Initiator { kUnknown, kSideA, kSideB };

}  // namespace

FMeasurement MeasureForwardFraction(const LinkTracePair& trace,
                                    double binSeconds) {
  ICTM_REQUIRE(binSeconds > 0.0, "bin size must be positive");
  ICTM_REQUIRE(trace.durationSec > 0.0, "empty trace window");
  const std::size_t bins = static_cast<std::size_t>(
      std::ceil(trace.durationSec / binSeconds));
  ICTM_REQUIRE(bins > 0, "trace shorter than one bin");

  // Pass 1: find each flow's initiator from SYN observations.
  std::unordered_map<std::uint64_t, Initiator> initiator;
  initiator.reserve(trace.aToB.size() / 4 + trace.bToA.size() / 4 + 1);
  for (const PacketRecord& p : trace.aToB) {
    if (p.syn) initiator[p.flowId] = Initiator::kSideA;
  }
  for (const PacketRecord& p : trace.bToA) {
    if (p.syn) initiator[p.flowId] = Initiator::kSideB;
  }

  // Pass 2: per-bin byte tallies.
  std::vector<double> iA(bins, 0.0);  // A->B link, A-initiated (forward)
  std::vector<double> rA(bins, 0.0);  // A->B link, B-initiated (reverse)
  std::vector<double> iB(bins, 0.0);  // B->A link, B-initiated (forward)
  std::vector<double> rB(bins, 0.0);  // B->A link, A-initiated (reverse)
  double unknownBytes = 0.0;
  double totalBytes = 0.0;

  auto binOf = [&](double ts) {
    std::size_t b = static_cast<std::size_t>(ts / binSeconds);
    return b >= bins ? bins - 1 : b;
  };

  for (const PacketRecord& p : trace.aToB) {
    totalBytes += p.bytes;
    const auto it = initiator.find(p.flowId);
    if (it == initiator.end()) {
      unknownBytes += p.bytes;
      continue;
    }
    const std::size_t b = binOf(p.timestampSec);
    if (it->second == Initiator::kSideA) {
      iA[b] += p.bytes;
    } else {
      rA[b] += p.bytes;
    }
  }
  for (const PacketRecord& p : trace.bToA) {
    totalBytes += p.bytes;
    const auto it = initiator.find(p.flowId);
    if (it == initiator.end()) {
      unknownBytes += p.bytes;
      continue;
    }
    const std::size_t b = binOf(p.timestampSec);
    if (it->second == Initiator::kSideB) {
      iB[b] += p.bytes;
    } else {
      rB[b] += p.bytes;
    }
  }

  FMeasurement out;
  out.binSeconds = binSeconds;
  out.unknownByteFraction =
      totalBytes > 0.0 ? unknownBytes / totalBytes : 0.0;
  out.fAB.resize(bins);
  out.fBA.resize(bins);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t b = 0; b < bins; ++b) {
    // f_AB = I_A / (I_A + R_B): forward bytes of A-initiated
    // connections over their total (forward + reverse) bytes.
    out.fAB[b] = (iA[b] + rB[b]) > 0.0 ? iA[b] / (iA[b] + rB[b]) : nan;
    out.fBA[b] = (iB[b] + rA[b]) > 0.0 ? iB[b] / (iB[b] + rA[b]) : nan;
  }
  return out;
}

double MeanFiniteF(const std::vector<double>& series) {
  double acc = 0.0;
  std::size_t count = 0;
  for (double v : series) {
    if (std::isfinite(v)) {
      acc += v;
      ++count;
    }
  }
  ICTM_REQUIRE(count > 0, "no finite f measurements");
  return acc / static_cast<double>(count);
}

}  // namespace ictm::conngen
