#include "conngen/packet_trace.hpp"

#include <algorithm>
#include <cmath>

#include "stats/distributions.hpp"

namespace ictm::conngen {

namespace {

// Emits `totalBytes` of packets into `out`, uniformly spread over
// [start, start+duration), clipped to the capture window [0, captureEnd).
// The first emitted packet carries the SYN flag when `markSyn` and its
// timestamp is inside the window.
void EmitPackets(std::vector<PacketRecord>& out, double start,
                 double duration, double totalBytes, std::uint32_t mss,
                 std::uint64_t flowId, bool markSyn, double captureEnd) {
  if (totalBytes <= 0.0) return;
  const std::size_t packets = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(totalBytes / mss)));
  const double step =
      packets > 1 ? duration / static_cast<double>(packets) : duration;
  double remaining = totalBytes;
  for (std::size_t k = 0; k < packets; ++k) {
    const double ts = start + step * static_cast<double>(k);
    const std::uint32_t size = static_cast<std::uint32_t>(
        std::min<double>(mss, std::max(remaining, 40.0)));
    remaining -= size;
    if (ts >= 0.0 && ts < captureEnd) {
      out.push_back(PacketRecord{ts, flowId, size, markSyn && k == 0});
    }
  }
}

}  // namespace

LinkTracePair SimulatePacketTraces(const TraceSimConfig& config,
                                   stats::Rng& rng) {
  ICTM_REQUIRE(config.durationSec > 0.0, "trace duration must be positive");
  ICTM_REQUIRE(config.connectionsPerSec > 0.0,
               "connection rate must be positive");
  ICTM_REQUIRE(config.fracInitiatedAtA >= 0.0 &&
                   config.fracInitiatedAtA <= 1.0,
               "fracInitiatedAtA out of [0,1]");
  ICTM_REQUIRE(config.mss >= 40, "MSS unrealistically small");
  ICTM_REQUIRE(config.meanThroughputBps > 0.0,
               "throughput must be positive");

  LinkTracePair trace;
  trace.durationSec = config.durationSec;

  const auto& apps = config.mix.profiles();
  std::vector<double> appWeights;
  appWeights.reserve(apps.size());
  for (const auto& p : apps) appWeights.push_back(p.mixWeight);
  stats::DiscreteSampler appSampler(appWeights);

  // Poisson arrivals over [-warmup, duration).
  const double horizon = config.warmupSec + config.durationSec;
  const std::uint64_t connCount =
      rng.poisson(config.connectionsPerSec * horizon);
  const double logThroughputMu =
      std::log(config.meanThroughputBps) -
      0.5 * config.throughputLogSigma * config.throughputLogSigma;

  for (std::uint64_t c = 0; c < connCount; ++c) {
    const double start =
        rng.uniform(-config.warmupSec, config.durationSec);
    const bool initiatedAtA = rng.bernoulli(config.fracInitiatedAtA);
    const AppProfile& app = apps[appSampler.sample(rng)];

    const double bytes =
        std::exp(rng.gaussian(app.logMeanBytes, app.logSigmaBytes));
    const double fwd = bytes * app.forwardFraction;
    const double rev = bytes - fwd;
    const double throughput = std::exp(
        rng.gaussian(logThroughputMu, config.throughputLogSigma));
    const double duration = std::max(bytes / throughput, 1e-3);
    const std::uint64_t flowId = c + 1;

    auto& fwdLink = initiatedAtA ? trace.aToB : trace.bToA;
    auto& revLink = initiatedAtA ? trace.bToA : trace.aToB;
    // Forward packets start at connection start (SYN first); reverse
    // packets lag by a small server think time.
    EmitPackets(fwdLink, start, duration, fwd, config.mss, flowId,
                /*markSyn=*/true, config.durationSec);
    EmitPackets(revLink, start + 0.01, duration, rev, config.mss, flowId,
                /*markSyn=*/false, config.durationSec);
  }

  auto byTime = [](const PacketRecord& a, const PacketRecord& b) {
    return a.timestampSec < b.timestampSec;
  };
  std::sort(trace.aToB.begin(), trace.aToB.end(), byTime);
  std::sort(trace.bToA.begin(), trace.bToA.end(), byTime);
  return trace;
}

}  // namespace ictm::conngen
