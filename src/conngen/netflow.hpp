// Sampled-netflow measurement noise.
//
// Datasets D1/D2 are built from netflow sampled at 1/1000 packets; the
// TMs the paper fits are therefore noisy rescaled estimates of the true
// matrices.  This module applies the same distortion to our
// ground-truth series: per OD pair and bin, the byte volume is
// converted to packets, thinned by the sampling rate (Poisson), and
// scaled back up — exactly what an operator's collector does.
#pragma once

#include "stats/rng.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::conngen {

/// Netflow sampling configuration.
struct NetflowConfig {
  double samplingRate = 1.0 / 1000.0;  ///< packet sampling probability
  double meanPacketBytes = 700.0;      ///< mean packet size
};

/// Applies sampling noise to a ground-truth series, returning the TM an
/// operator would reconstruct from the sampled flow records.
traffic::TrafficMatrixSeries ApplyNetflowSampling(
    const traffic::TrafficMatrixSeries& truth, const NetflowConfig& config,
    stats::Rng& rng);

/// Relative error introduced by sampling on the aggregate:
/// |sampled_total - true_total| / true_total.
double SamplingAggregateError(const traffic::TrafficMatrixSeries& truth,
                              const traffic::TrafficMatrixSeries& sampled);

}  // namespace ictm::conngen
