#include "dataset/datasets.hpp"

#include <cmath>

#include "conngen/netflow.hpp"
#include "linalg/simplex.hpp"
#include "stats/distributions.hpp"
#include "timeseries/cyclostationary.hpp"

namespace ictm::dataset {

namespace {

Dataset Build(std::size_t nodes, std::size_t binsPerWeek,
              double binSeconds, const DatasetConfig& config) {
  ICTM_REQUIRE(nodes > 0, "dataset needs nodes");
  ICTM_REQUIRE(config.weeks > 0, "dataset needs at least one week");
  const std::size_t bins = binsPerWeek * config.weeks;
  stats::Rng rng(config.seed);

  // Preferences: long-tailed across nodes, constant over the horizon
  // (the stability the paper observes and exploits).
  stats::Lognormal prefDist(config.preferenceMu, config.preferenceSigma);
  linalg::Vector preference(nodes);
  for (double& p : preference) p = prefDist.sample(rng);
  preference = linalg::NormalizeNonNegative(preference);
  if (config.preferenceCapShare < 1.0 && nodes > 1) {
    const double cap = std::max(config.preferenceCapShare,
                                1.0 / static_cast<double>(nodes));
    // Waterfill: clip shares at the cap and renormalise the rest until
    // the largest share fits under the cap.
    for (int pass = 0; pass < 64; ++pass) {
      double clippedMass = 0.0;
      double freeMass = 0.0;
      for (double p : preference) {
        if (p >= cap) {
          clippedMass += cap;
        } else {
          freeMass += p;
        }
      }
      bool changed = false;
      if (freeMass > 0.0 && clippedMass < 1.0) {
        const double scale = (1.0 - clippedMass) / freeMass;
        for (double& p : preference) {
          if (p >= cap) {
            if (p != cap) changed = true;
            p = cap;
          } else {
            p *= scale;
            if (p > cap) changed = true;
          }
        }
      }
      if (!changed) break;
    }
  }

  // Activities: cyclo-stationary with weekly drift.
  timeseries::ActivityModel activityModel;
  activityModel.profile.binsPerDay = binsPerWeek / 7;
  activityModel.peakLevel = config.peakActivityBytes;
  activityModel.phaseJitterHours = 3.0;
  const auto activities = timeseries::GenerateActivityEnsemble(
      nodes, bins, activityModel, config.peakLogSigma, rng);

  conngen::GeneratorConfig gen;
  gen.activities = activities;
  gen.preferences = preference;
  gen.pairFJitterSigma = config.pairFJitterSigma;
  gen.routingAsymmetry = config.routingAsymmetry;
  conngen::GeneratedTraffic traffic =
      conngen::GenerateTraffic(gen, binSeconds, rng);

  Dataset out{
      traffic.series, traffic.series, std::move(preference),
      traffic.realizedForwardFraction, binsPerWeek, binSeconds};
  if (config.netflowSampling) {
    conngen::NetflowConfig nf;
    out.measured = conngen::ApplyNetflowSampling(out.truth, nf, rng);
  }
  if (config.measurementNoiseSigma > 0.0) {
    // Unstructured per-entry noise on top of sampling (TM-construction
    // artifacts); mean-one lognormal so totals stay unbiased.
    const double mu = -0.5 * config.measurementNoiseSigma *
                      config.measurementNoiseSigma;
    for (std::size_t t = 0; t < bins; ++t) {
      for (std::size_t i = 0; i < nodes; ++i) {
        for (std::size_t j = 0; j < nodes; ++j) {
          out.measured(t, i, j) *= std::exp(
              rng.gaussian(mu, config.measurementNoiseSigma));
        }
      }
    }
  }
  return out;
}

}  // namespace

Dataset MakeGeantLike(const DatasetConfig& config) {
  // 22 PoPs, 5-minute bins, 2016 bins per week (paper Sec. 4, D1).
  return Build(22, 2016, 300.0, config);
}

Dataset MakeTotemLike(const DatasetConfig& config) {
  // 23 PoPs, 15-minute bins, 672 bins per week (paper Sec. 4, D2).
  // D2 TMs show smaller IC-over-gravity fit gains in the paper
  // (Fig. 3b: 6-8% vs Géant's 20-25%).  The Totem TM pipeline is
  // documented to contain measurement anomalies [21]; model that with
  // unstructured measurement noise (which depresses *relative* gains
  // of any structural model) unless the caller set a value.
  DatasetConfig adjusted = config;
  if (adjusted.measurementNoiseSigma ==
      DatasetConfig{}.measurementNoiseSigma) {
    adjusted.measurementNoiseSigma = 0.6;
  }
  return Build(23, 672, 900.0, adjusted);
}

Dataset MakeSmallDataset(std::size_t nodes, std::size_t bins,
                         double binSeconds, const DatasetConfig& config) {
  ICTM_REQUIRE(bins >= 7, "small dataset still needs >= 7 bins");
  DatasetConfig c = config;
  c.weeks = 1;  // Build() treats `bins` as one week's worth
  return Build(nodes, bins, binSeconds, c);
}

Dataset MakeSmallWeeklyDataset(std::size_t nodes, std::size_t binsPerWeek,
                               double binSeconds,
                               const DatasetConfig& config) {
  ICTM_REQUIRE(binsPerWeek >= 7, "small dataset still needs >= 7 bins");
  return Build(nodes, binsPerWeek, binSeconds, config);
}

}  // namespace ictm::dataset
