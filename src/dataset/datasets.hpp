// Simulated stand-ins for the paper's three datasets (see DESIGN.md §2
// for the substitution rationale):
//
//   D1 "Géant-like": 22 PoPs, 5-minute bins, 2016 bins/week, sampled
//      netflow measurement noise;
//   D2 "Totem-like": 23 PoPs ('de' split in two), 15-minute bins,
//      672 bins/week, up to 7+ weeks;
//   D3 "Abilene-like": two-hour bidirectional packet-header traces on
//      an instrumented link pair (built directly with
//      conngen::SimulatePacketTraces; see bench_fig4).
//
// Ground truth is generated at the *connection* level: initiators
// proportional to cyclo-stationary node activities, responders drawn
// from a lognormal preference vector, applications from a 2006-era mix
// with per-app forward fractions, per-pair f jitter, and optional
// netflow thinning.  The IC structure therefore *emerges* with natural
// noise rather than being imposed exactly, keeping the gravity-vs-IC
// comparison honest.
#pragma once

#include <cstdint>

#include "conngen/generator.hpp"
#include "stats/rng.hpp"
#include "topology/graph.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::dataset {

/// Knobs shared by the builders; defaults reproduce the paper-scale
/// datasets.  Tests shrink bins/activity for speed.
struct DatasetConfig {
  std::size_t weeks = 1;
  /// Mean per-node per-bin activity bytes at the daily peak.
  double peakActivityBytes = 4e8;
  /// Lognormal sigma of per-node peak levels (node-size heterogeneity).
  double peakLogSigma = 1.0;
  /// Preference lognormal parameters (paper Fig. 7 MLE).
  double preferenceMu = -4.3;
  double preferenceSigma = 1.7;
  /// Cap on the largest *normalised* preference share.  The paper's
  /// empirical {P_i} top out around 0.30-0.35 (Fig. 6); unconstrained
  /// lognormal draws occasionally concentrate most mass on one node,
  /// which real PoP-level networks do not show.  Excess is
  /// redistributed proportionally (waterfilling).  >= 1 disables.
  double preferenceCapShare = 0.35;
  /// Per-pair forward-fraction jitter (logit-space sigma); makes the
  /// simplified IC model only approximately correct.  The default is
  /// calibrated so the stable-fP fit improves on gravity by roughly
  /// the 20-25% the paper reports for Géant (Fig. 3a).
  double pairFJitterSigma = 1.5;
  /// Hot-potato routing asymmetry fraction (Sec. 5.6); 0 disables.
  double routingAsymmetry = 0.0;
  /// Apply 1/1000 netflow sampling noise to the measured series.
  bool netflowSampling = true;
  /// Extra unstructured measurement noise: each measured X_ij(t) is
  /// multiplied by an independent lognormal factor with this log-space
  /// sigma.  Models the TM-construction artifacts and anomalies the
  /// Totem providers document ([21]); 0 disables.
  double measurementNoiseSigma = 0.0;
  std::uint64_t seed = 42;
};

/// A simulated dataset: what the operator measures, what is true, and
/// the generating parameters for validation.
struct Dataset {
  traffic::TrafficMatrixSeries measured;  ///< after measurement noise
  traffic::TrafficMatrixSeries truth;     ///< exact per-bin OD bytes
  linalg::Vector truePreference;          ///< normalised
  double realizedForwardFraction = 0.0;   ///< aggregate f of the run
  std::size_t binsPerWeek = 0;
  double binSeconds = 0.0;
};

/// 22-node Géant-like dataset (D1): 5-minute bins, 2016 bins/week.
Dataset MakeGeantLike(const DatasetConfig& config = {});

/// 23-node Totem-like dataset (D2): 15-minute bins, 672 bins/week.
Dataset MakeTotemLike(const DatasetConfig& config = {});

/// Small generic dataset for unit tests: n nodes, `bins` bins of
/// `binSeconds`, same generative machinery.
Dataset MakeSmallDataset(std::size_t nodes, std::size_t bins,
                         double binSeconds, const DatasetConfig& config);

/// Small dataset spanning `config.weeks` weeks of `binsPerWeek` bins
/// each — the multi-week counterpart of MakeSmallDataset, used by the
/// scenario registry's tiny configurations (weekly-stability scenarios
/// need more than one week even at test scale).
Dataset MakeSmallWeeklyDataset(std::size_t nodes, std::size_t binsPerWeek,
                               double binSeconds,
                               const DatasetConfig& config);

}  // namespace ictm::dataset
