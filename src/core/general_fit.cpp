#include "core/general_fit.hpp"

#include <algorithm>
#include <cmath>

#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "linalg/lsq.hpp"

namespace ictm::core {

namespace {

// Builds the general-model activity operator: x(t) = Phi A(t) with
// Phi[(i,j), k] = F(i,j) Pn_j [k==i] + (1 - F(j,i)) Pn_i [k==j].
linalg::Matrix BuildGeneralActivityOperator(
    const linalg::Matrix& forwardFractions,
    const linalg::Vector& preference) {
  const std::size_t n = preference.size();
  const double prefSum = linalg::Sum(preference);
  ICTM_REQUIRE(prefSum > 0.0, "all preferences are zero");
  linalg::Matrix phi(n * n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t row = i * n + j;
      phi(row, i) += forwardFractions(i, j) * preference[j] / prefSum;
      phi(row, j) +=
          (1.0 - forwardFractions(j, i)) * preference[i] / prefSum;
    }
  }
  return phi;
}

// F-step: per unordered pair, a 2-unknown least squares over time.
// With u_t = A_i(t) Pn_j and v_t = A_j(t) Pn_i, the model gives
//   X_ij + X_ji = u_t + v_t                (conservation, no info)
//   X_ij - X_ji = 2 f_ij u_t - 2 f_ji v_t + v_t - u_t,
// so each bin contributes one informative equation
//   u_t f_ij - v_t f_ji = (X_ij - X_ji - v_t + u_t) / 2.
// The pair is identified when the ratio u_t/v_t varies over time.
void UpdateForwardFractions(const traffic::TrafficMatrixSeries& series,
                            const linalg::Matrix& activitySeries,
                            const linalg::Vector& preference,
                            linalg::Matrix& forwardFractions) {
  const std::size_t n = series.nodeCount();
  const double prefSum = linalg::Sum(preference);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Accumulate the 2x2 normal equations of rows (u_t, -v_t).
      double g00 = 0.0, g01 = 0.0, g11 = 0.0, r0 = 0.0, r1 = 0.0;
      for (std::size_t t = 0; t < series.binCount(); ++t) {
        const double u =
            activitySeries(i, t) * preference[j] / prefSum;
        const double v =
            activitySeries(j, t) * preference[i] / prefSum;
        const double rhs2 =
            0.5 * (series(t, i, j) - series(t, j, i) - v + u);
        g00 += u * u;
        g01 += -u * v;
        g11 += v * v;
        r0 += u * rhs2;
        r1 += -v * rhs2;
      }
      const double ridge = std::max(g00 + g11, 1e-30) * 1e-12;
      g00 += ridge;
      g11 += ridge;
      const double det = g00 * g11 - g01 * g01;
      double fij = forwardFractions(i, j);
      double fji = forwardFractions(j, i);
      if (det > 1e-30) {
        fij = (g11 * r0 - g01 * r1) / det;
        fji = (-g01 * r0 + g00 * r1) / det;
      }
      forwardFractions(i, j) = std::clamp(fij, 0.0, 1.0);
      forwardFractions(j, i) = std::clamp(fji, 0.0, 1.0);
    }
  }
}

void UpdateActivitiesGeneral(const traffic::TrafficMatrixSeries& series,
                             const linalg::Matrix& forwardFractions,
                             const linalg::Vector& preference,
                             linalg::Matrix& activitySeries) {
  const std::size_t n = series.nodeCount();
  const linalg::Matrix phi =
      BuildGeneralActivityOperator(forwardFractions, preference);
  const linalg::Matrix gram = phi.transposed() * phi;
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    linalg::Vector x(n * n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) x[i * n + j] = series(t, i, j);
    const linalg::Vector rhs = linalg::TransposeTimes(phi, x);
    const linalg::Vector a = linalg::SolveGramNnls(gram, rhs);
    for (std::size_t i = 0; i < n; ++i) activitySeries(i, t) = a[i];
  }
}

}  // namespace

traffic::TrafficMatrixSeries EvaluateGeneralIcSeries(
    const linalg::Matrix& forwardFractions,
    const linalg::Matrix& activitySeries,
    const linalg::Vector& preference, double binSeconds) {
  const std::size_t bins = activitySeries.cols();
  traffic::TrafficMatrixSeries out(activitySeries.rows(), bins,
                                   binSeconds);
  for (std::size_t t = 0; t < bins; ++t) {
    out.setBin(t, EvaluateGeneralIc(forwardFractions,
                                    activitySeries.col(t), preference));
  }
  return out;
}

double ForwardFractionAsymmetry(const linalg::Matrix& forwardFractions) {
  const std::size_t n = forwardFractions.rows();
  ICTM_REQUIRE(forwardFractions.cols() == n, "F must be square");
  ICTM_REQUIRE(n >= 2, "asymmetry needs at least two nodes");
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      acc += std::fabs(forwardFractions(i, j) - forwardFractions(j, i));
      ++count;
    }
  }
  return acc / static_cast<double>(count);
}

GeneralIcFit FitGeneralIc(const traffic::TrafficMatrixSeries& series,
                          const GeneralFitOptions& options) {
  // Stage 1: simplified fit for (f, A, P).
  const StableFPFit base = FitStableFP(series, options.base);

  GeneralIcFit fit;
  fit.preference = base.preference;
  fit.activitySeries = base.activitySeries;
  fit.forwardFractions =
      linalg::Matrix(series.nodeCount(), series.nodeCount(), base.f);
  fit.simplifiedObjective = base.objective();

  // Stage 2: alternate per-pair F refinement with activity re-solves.
  for (std::size_t round = 0; round < options.refinementRounds; ++round) {
    UpdateForwardFractions(series, fit.activitySeries, fit.preference,
                           fit.forwardFractions);
    UpdateActivitiesGeneral(series, fit.forwardFractions, fit.preference,
                            fit.activitySeries);
  }
  if (options.refinementRounds == 0) {
    fit.objective = fit.simplifiedObjective;
  } else {
    fit.objective = RelL2Objective(
        series,
        EvaluateGeneralIcSeries(fit.forwardFractions, fit.activitySeries,
                                fit.preference, series.binSeconds()));
  }
  return fit;
}

}  // namespace ictm::core
