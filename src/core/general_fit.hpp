// Fitting the *general* IC model (paper Eq. 1, Sec. 5.6 future work).
//
// The simplified model's single network-wide f breaks under routing
// asymmetry ('hot potato' exits), where f_ij != f_ji.  The general
// model keeps a per-pair forward fraction matrix F.  This module fits
// F on top of a stable-fP fit: given (A(t), P), each unordered node
// pair's (f_ij, f_ji) solves an independent 2x2 linear least-squares
// problem over time, clamped into [0, 1]:
//
//   X_ij(t) = f_ij * A_i(t) Pn_j + (1 - f_ji) * A_j(t) Pn_i
//   X_ji(t) = f_ji * A_j(t) Pn_i + (1 - f_ij) * A_i(t) Pn_j
//
// Optionally the (A, F) blocks are alternated for a few rounds.
#pragma once

#include "core/fit.hpp"
#include "linalg/matrix.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

/// Options for the general-IC fit.
struct GeneralFitOptions {
  /// Options for the inner stable-fP fit providing (A, P) and the
  /// initial f.
  FitOptions base;
  /// Number of (F-step, A-step) alternations after the initial fit.
  std::size_t refinementRounds = 2;
};

/// Result of a general-IC fit.
struct GeneralIcFit {
  linalg::Matrix forwardFractions;  ///< n x n, entries in [0, 1]
  linalg::Vector preference;        ///< normalised
  linalg::Matrix activitySeries;    ///< n x T
  double objective = 0.0;           ///< sum_t RelL2(t)
  /// The simplified-model objective before per-pair refinement, for
  /// comparing how much the general model buys.
  double simplifiedObjective = 0.0;
};

/// Fits the general IC model to a series.
GeneralIcFit FitGeneralIc(const traffic::TrafficMatrixSeries& series,
                          const GeneralFitOptions& options = {});

/// Evaluates the general IC model over a series of activities
/// (column t = A(t)), returning the reconstructed TM series.
traffic::TrafficMatrixSeries EvaluateGeneralIcSeries(
    const linalg::Matrix& forwardFractions,
    const linalg::Matrix& activitySeries,
    const linalg::Vector& preference, double binSeconds = 300.0);

/// Asymmetry summary of a fitted F matrix: mean |f_ij - f_ji| over
/// off-diagonal pairs — a direct measure of routing asymmetry
/// (Sec. 5.6).
double ForwardFractionAsymmetry(const linalg::Matrix& forwardFractions);

}  // namespace ictm::core
