// The gravity model — the baseline the paper argues against.
//
// Under packet-level ingress/egress independence the expected OD flow
// is X_ij = X_i* * X_*j / X_**.  Used both as a model-fit baseline
// (Fig. 3) and as the prior the IC priors are compared to in the TM
// estimation experiments (Figs. 11-13).
#pragma once

#include "linalg/matrix.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

/// Gravity prediction from ingress/egress marginals (lengths equal,
/// non-negative, equal sums up to measurement noise; the total used is
/// the mean of the two sums).
linalg::Matrix GravityPredict(const linalg::Vector& ingress,
                              const linalg::Vector& egress);

/// Gravity prediction for one bin of an observed series (uses the
/// bin's own marginals, which is how the paper applies it).
linalg::Matrix GravityPredictBin(const traffic::TrafficMatrixSeries& series,
                                 std::size_t t);

/// Full-series gravity reconstruction.
traffic::TrafficMatrixSeries GravityPredictSeries(
    const traffic::TrafficMatrixSeries& series);

}  // namespace ictm::core
