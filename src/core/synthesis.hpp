// Synthetic TM generation — the paper Sec. 5.5 recipe:
//   1. choose f (0.2-0.3 observed),
//   2. draw preferences {P_i} from a long-tailed (lognormal)
//      distribution (Fig. 7: MLE mu ~ -4.3, sigma ~ 1.7),
//   3. generate activity series {A_i(t)} with a cyclo-stationary
//      model (diurnal + weekend),
//   4. compose X_ij(t) via the stable-fP model (Eq. 5).
#pragma once

#include "core/ic_model.hpp"
#include "stats/rng.hpp"
#include "timeseries/cyclostationary.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

/// Configuration of the Sec. 5.5 generator.
struct SynthesisConfig {
  std::size_t nodes = 22;        ///< number of PoP nodes
  std::size_t bins = 2016;       ///< one week of 5-minute bins
  double binSeconds = 300.0;     ///< bin duration metadata
  double f = 0.25;               ///< paper-recommended range 0.2-0.3
  double preferenceMu = -4.3;    ///< lognormal MLE from Fig. 7
  double preferenceSigma = 1.7;  ///< lognormal sigma of the preferences
  /// Cyclo-stationary activity model shared by all nodes; per-node
  /// peaks are scattered lognormally with `peakLogSigma`.
  timeseries::ActivityModel activityModel;
  /// Lognormal sigma of the per-node peak levels.
  double peakLogSigma = 1.0;
  /// Worker threads for the per-node activity generation and per-bin
  /// stable-fP composition fan-outs (0 = all hardware threads).  All
  /// RNG draws happen serially before the fan-out, so the generated
  /// series is bit-identical for every thread count.
  std::size_t threads = 1;
};

/// Output of the generator: the TM series plus the ground-truth
/// parameters that produced it (for validation / what-if analysis).
struct SyntheticTm {
  traffic::TrafficMatrixSeries series;  ///< the generated X_ij(t)
  linalg::Vector preference;      ///< normalised
  linalg::Matrix activitySeries;  ///< n x T
  double f = 0.25;                ///< the forward fraction used
};

/// Runs the full recipe.  Deterministic given the seed inside `rng`.
SyntheticTm GenerateSyntheticTm(const SynthesisConfig& config,
                                stats::Rng& rng);

}  // namespace ictm::core
