// The independent-connection (IC) model family — paper Sec. 3.
//
// Notation (paper Eq. 1-5):
//   f     forward fraction (network-wide in the simplified model),
//   A_i   activity of node i: bytes due to connections *initiated* at i,
//   P_i   preference of node i: likelihood a connection's responder is
//         at i (used normalised: P_i / sum_k P_k).
//
// The model composes an OD flow from the forward traffic of
// i-initiated connections and the reverse traffic of j-initiated ones:
//   X_ij = f * A_i * Pn_j + (1 - f) * A_j * Pn_i          (Eq. 2)
// where Pn is the normalised preference vector.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "traffic/tm_series.hpp"

/// Reproduction of the paper's models and algorithms: the IC model
/// family, gravity, parameter fitting, priors, tomogravity estimation,
/// synthetic TM generation and the error metrics.
namespace ictm::core {

/// Parameters of the simplified IC model at one time bin.
struct IcParameters {
  double f = 0.25;           ///< forward fraction, in (0, 1)
  linalg::Vector activity;   ///< A_i >= 0, length n
  linalg::Vector preference; ///< P_i >= 0, length n (any positive scale)

  /// Throws unless the invariants above hold.
  void validate() const;
  /// Number of nodes n (the activity vector length).
  std::size_t nodeCount() const noexcept { return activity.size(); }
};

/// Evaluates the simplified IC model (Eq. 2): returns the n x n TM.
linalg::Matrix EvaluateSimplifiedIc(const IcParameters& params);

/// Evaluates the *general* IC model (Eq. 1) with a per-pair forward
/// fraction matrix F (F(i,j) = f_ij in (0,1)).
linalg::Matrix EvaluateGeneralIc(const linalg::Matrix& forwardFractions,
                                 const linalg::Vector& activity,
                                 const linalg::Vector& preference);

/// Evaluates the stable-fP model (Eq. 5) over T bins: constant f and P,
/// per-bin activities given as an n x T matrix (column t = A(t)).
/// Bins are independent and fan out across `threads` workers (0 = all
/// hardware threads); the result is bit-identical for any count.
traffic::TrafficMatrixSeries EvaluateStableFP(
    double f, const linalg::Matrix& activitySeries,
    const linalg::Vector& preference, double binSeconds = 300.0,
    std::size_t threads = 1);

/// Builds the n^2 x n linear operator Phi with x(t) = Phi * A(t) for
/// fixed (f, P) — the matrix the stable-fP estimation premultiplies by
/// Q in Eq. 8.  Row i*n+j corresponds to X_ij; preference is
/// normalised internally.
linalg::Matrix BuildActivityOperator(double f,
                                     const linalg::Vector& preference);

/// Degrees-of-freedom accounting from paper Sec. 5.1 for a dataset of
/// n nodes over t bins.
struct DegreesOfFreedom {
  /// Gravity model: 2nt - 1 inputs.
  static std::size_t Gravity(std::size_t n, std::size_t t) {
    return 2 * n * t - 1;
  }
  /// Time-varying IC model (Eq. 3): 3nt inputs.
  static std::size_t TimeVaryingIc(std::size_t n, std::size_t t) {
    return 3 * n * t;
  }
  /// Stable-f IC model (Eq. 4): 2nt + 1 inputs.
  static std::size_t StableFIc(std::size_t n, std::size_t t) {
    return 2 * n * t + 1;
  }
  /// Stable-fP IC model (Eq. 5): nt + n + 1 inputs.
  static std::size_t StableFPIc(std::size_t n, std::size_t t) {
    return n * t + n + 1;
  }
};

/// P[E = j | I = i] = X_ij / X_i* for one TM — the quantity the paper's
/// Sec. 3 example uses to show packet-level independence failing.
double ConditionalEgressProbability(const linalg::Matrix& tm,
                                    std::size_t ingress,
                                    std::size_t egress);

/// Unconditional egress probability P[E = j] = X_*j / X_**.
double EgressProbability(const linalg::Matrix& tm, std::size_t egress);

/// Builds the 3-node example TM of paper Fig. 2: nodes A, B, C initiate
/// 3 connections each of 100, 2 and 1 packets per direction
/// respectively, with uniform responder choice over {A, B, C}.
linalg::Matrix BuildFig2ExampleTm();

}  // namespace ictm::core
