// Parameter estimation for the IC model — paper Sec. 5.1.
//
// The paper estimates (f, {P_i}, {A_i(t)}) by solving
//     minimize  sum_t RelL2_T(t)
//     s.t.      A_i(t) >= 0,  P_i >= 0,  sum_i P_i = 1
// with Matlab's NLP solver.  We solve the standard squared surrogate
// (sum_t ||X(t)-Xhat(t)||^2 / ||X(t)||^2) by alternating least squares:
// each block subproblem (A given f,P; P given f,A; f given A,P) is a
// linear least-squares problem, solved under non-negativity with NNLS.
// The simplex constraint on P is enforced by exploiting the model's
// scale invariance (P -> cP, A -> A/c leaves X unchanged).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

/// Options for the alternating solver.
struct FitOptions {
  std::size_t maxSweeps = 30;       ///< max alternating sweeps
  double relativeTolerance = 1e-5;  ///< stop when objective improves less
  double initialF = 0.25;           ///< starting forward fraction
  bool fitF = true;                 ///< when false, f stays at initialF
  /// Clamp range for the fitted f.  The simplified IC model has an
  /// exact mirror symmetry (f, A, P) <-> (1-f, c*P, A/c) whenever the
  /// activity series share a common temporal shape, so without a
  /// constraint the solver may return the mirrored solution.  Internet
  /// traffic is response-dominated (paper: f in 0.2-0.3), so the
  /// default search space is the physical branch f < 1/2; widen fMax
  /// explicitly to explore the mirrored branch.
  double fMin = 0.01;  ///< lower end of the f search range
  double fMax = 0.49;  ///< upper end (default: physical branch only)
  /// The alternating solver can stall in local optima whose f is far
  /// from the global one.  When `gridPoints > 0` (and fitF is true),
  /// the fit first scans a coarse grid of fixed-f short fits over
  /// [fMin, fMax] on a temporally subsampled series, then polishes the
  /// winner with the full alternating solve — the deterministic
  /// counterpart of the multi-start NLP solve the paper uses.
  std::size_t gridPoints = 9;  ///< grid size of the coarse f scan
  std::size_t gridSweeps = 4;  ///< sweeps per fixed-f grid fit
  /// During the grid stage, fit every k-th bin only (k = gridStride).
  std::size_t gridStride = 4;
};

/// Result of a stable-fP fit.
struct StableFPFit {
  double f = 0.25;                ///< fitted forward fraction
  linalg::Vector preference;      ///< length n, non-negative, sums to 1
  linalg::Matrix activitySeries;  ///< n x T, non-negative
  /// Objective sum_t RelL2(t) after each sweep (front = after sweep 1).
  std::vector<double> objectiveHistory;
  std::size_t sweeps = 0;         ///< alternating sweeps performed
  bool converged = false;         ///< true when the tolerance was met

  /// Final objective value (throws when no sweep ran).
  double objective() const;
};

/// Fits the stable-fP model (Eq. 5) to an observed series.
StableFPFit FitStableFP(const traffic::TrafficMatrixSeries& series,
                        const FitOptions& options = {});

/// Fits the time-varying IC model (Eq. 3): an independent
/// (f(t), P(t), A(t)) per bin, each via single-bin alternating fits.
struct TimeVaryingFit {
  std::vector<double> f;                   ///< per bin
  std::vector<linalg::Vector> preference;  ///< per bin
  linalg::Matrix activitySeries;           ///< n x T
  double objective = 0.0;                  ///< sum_t RelL2(t)
};
/// Runs the per-bin time-varying fit described above.
TimeVaryingFit FitTimeVarying(const traffic::TrafficMatrixSeries& series,
                              const FitOptions& options = {});

/// Reconstructs the fitted series Xhat from a stable-fP fit.
traffic::TrafficMatrixSeries ReconstructSeries(
    const StableFPFit& fit, double binSeconds = 300.0);

}  // namespace ictm::core
