#include "core/gravity.hpp"

namespace ictm::core {

linalg::Matrix GravityPredict(const linalg::Vector& ingress,
                              const linalg::Vector& egress) {
  const std::size_t n = ingress.size();
  ICTM_REQUIRE(n > 0, "empty marginals");
  ICTM_REQUIRE(egress.size() == n, "marginal size mismatch");
  for (double v : ingress) ICTM_REQUIRE(v >= 0.0, "negative ingress");
  for (double v : egress) ICTM_REQUIRE(v >= 0.0, "negative egress");
  const double inSum = linalg::Sum(ingress);
  const double outSum = linalg::Sum(egress);
  ICTM_REQUIRE(inSum > 0.0 && outSum > 0.0, "zero-traffic marginals");
  // Conservation says the sums agree; under measurement noise we use
  // their mean as X_**.
  const double total = 0.5 * (inSum + outSum);

  linalg::Matrix tm(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      tm(i, j) = ingress[i] * egress[j] / total;
    }
  }
  return tm;
}

linalg::Matrix GravityPredictBin(const traffic::TrafficMatrixSeries& series,
                                 std::size_t t) {
  return GravityPredict(series.ingress(t), series.egress(t));
}

traffic::TrafficMatrixSeries GravityPredictSeries(
    const traffic::TrafficMatrixSeries& series) {
  traffic::TrafficMatrixSeries out(series.nodeCount(), series.binCount(),
                                   series.binSeconds());
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    out.setBin(t, GravityPredictBin(series, t));
  }
  return out;
}

}  // namespace ictm::core
