// Error metrics — paper Eq. 6 and the improvement series plotted in
// Figs. 3, 11, 12, 13.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

/// Relative L2 temporal error at one bin (Eq. 6):
/// ||X(t) - Xhat(t)||_F / ||X(t)||_F.
double RelL2Temporal(const linalg::Matrix& actual,
                     const linalg::Matrix& estimate);

/// RelL2 per bin for two aligned series.
std::vector<double> RelL2TemporalSeries(
    const traffic::TrafficMatrixSeries& actual,
    const traffic::TrafficMatrixSeries& estimate);

/// Sum over bins of RelL2Temporal — the objective minimised by the
/// paper's parameter-fitting program (Sec. 5.1).
double RelL2Objective(const traffic::TrafficMatrixSeries& actual,
                      const traffic::TrafficMatrixSeries& estimate);

/// Relative L2 *spatial* error of one OD pair over time:
/// ||x_ij(.) - xhat_ij(.)||_2 / ||x_ij(.)||_2 (the companion metric in
/// the TM-estimation literature the paper cites).
double RelL2Spatial(const traffic::TrafficMatrixSeries& actual,
                    const traffic::TrafficMatrixSeries& estimate,
                    std::size_t i, std::size_t j);

/// Percentage improvement of `candidate` over `baseline` at each bin:
/// 100 * (err_baseline - err_candidate) / err_baseline.
/// This is the y-axis of Figs. 3 and 11-13.
std::vector<double> PercentImprovementSeries(
    const std::vector<double>& baselineErrors,
    const std::vector<double>& candidateErrors);

/// Mean of a series (helper for the horizontal mean lines the figures
/// draw).
double Mean(const std::vector<double>& xs);

}  // namespace ictm::core
