// Pluggable solver backends for the TM-estimation normal equations.
//
// Every bin of the tomogravity refinement solves one system
//   (A·diag(xp)·Aᵀ + ridge·I) z = d
// against the shared augmented operator A.  How that solve happens is
// a backend choice:
//
//   dense   — assemble the normal matrix densely and run the blocked
//             in-place Cholesky (the original path, kept as the
//             reference; unbeatable at the paper's 22 nodes),
//   sparse  — fill-reducing-ordered sparse Cholesky; the symbolic
//             factorization is computed once per AugmentedTmSystem and
//             shared read-only by every bin and thread
//             (linalg/sparse_chol.hpp).  Exact like dense; pays off
//             when the augmented normal matrix is genuinely sparse
//             (e.g. without marginal constraints) — with them, the
//             2n marginal rows densify the factor and dense wins,
//   cg      — matrix-free preconditioned conjugate gradient that
//             applies the operator through A's compressed arrays and
//             never forms the per-bin normal matrix; preconditioned
//             by the frozen unweighted-Gram factor computed once per
//             AugmentedTmSystem, so iteration counts track the
//             per-bin weight spread (linalg/pcg.hpp).  The fast path
//             at scale,
//   auto    — picks dense below kAutoSolverRowThreshold rows and cg
//             at or above it (the measured crossover).
//
// One backend instance belongs to one TmBinSolver (one worker thread)
// and owns all per-thread scratch through a WorkspaceArena, so the hot
// loop performs zero allocations after setup.  Each backend runs a
// fixed floating-point sequence per bin — bit-identical across thread
// counts — and all backends agree with `dense` to solver tolerance.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/estimation.hpp"

namespace ictm::core {

/// Single-allocation scratch pool for a backend's per-thread buffers:
/// size it once with Reserve, then carve slices with Take.  Keeps the
/// per-bin hot loop allocation-free after setup.
class WorkspaceArena {
 public:
  /// Allocates `doubles` zero-initialised doubles in one block and
  /// resets the carve pointer.
  void Reserve(std::size_t doubles) {
    storage_.assign(doubles, 0.0);
    used_ = 0;
  }

  /// Carves the next `count` doubles from the block.
  double* Take(std::size_t count) {
    ICTM_REQUIRE(used_ + count <= storage_.size(),
                 "workspace arena overflow");
    double* p = storage_.data() + used_;
    used_ += count;
    return p;
  }

 private:
  std::vector<double> storage_;
  std::size_t used_ = 0;
};

/// One worker thread's solver for the ridged normal equations; bound
/// to an AugmentedTmSystem at construction, then invoked once per bin.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  /// Stable backend name ("dense", "sparse", "cg") for reporting.
  virtual const char* name() const noexcept = 0;

  /// Solves (A·diag(weights)·Aᵀ + ridge·I) z = rhs in place
  /// (rhs := z) with ridge = max(trace, 1)·relativeRidge + 1e-30;
  /// `weights` has cols(A) elements, `rhs` has rows(A).
  virtual void SolveNormal(const double* weights, double* rhs) = 0;
};

/// Row count at and above which `auto` switches from the dense
/// reference to the cg backend.  Measured crossover: dense still wins
/// at the 290-row 50-node hierarchy (~0.8 vs ~1.1 ms/bin), cg wins
/// ~2x at the 586-row 100-node hierarchy and ~4x at 200 nodes.
inline constexpr std::size_t kAutoSolverRowThreshold = 400;

/// Maps `auto` to a concrete backend for a system with `rows`
/// augmented rows; concrete kinds pass through unchanged.
SolverKind ResolveSolverKind(SolverKind requested,
                             std::size_t rows) noexcept;

/// Builds the backend selected by `options.solver` (resolving `auto`
/// by system size) with its per-thread workspace.  The system must
/// outlive the backend.
std::unique_ptr<SolverBackend> MakeSolverBackend(
    const AugmentedTmSystem& system, const EstimationOptions& options);

}  // namespace ictm::core
