#include "core/synthesis.hpp"

#include "linalg/simplex.hpp"
#include "stats/distributions.hpp"

namespace ictm::core {

SyntheticTm GenerateSyntheticTm(const SynthesisConfig& config,
                                stats::Rng& rng) {
  ICTM_REQUIRE(config.nodes > 0, "need at least one node");
  ICTM_REQUIRE(config.bins > 0, "need at least one bin");
  ICTM_REQUIRE(config.f > 0.0 && config.f < 1.0, "f out of (0,1)");

  // Step 2: long-tailed preferences.
  stats::Lognormal prefDist(config.preferenceMu, config.preferenceSigma);
  linalg::Vector preference(config.nodes);
  for (double& p : preference) p = prefDist.sample(rng);
  preference = linalg::NormalizeNonNegative(preference);

  // Step 3: cyclo-stationary activities (per-node fan-out).
  const auto ensemble = timeseries::GenerateActivityEnsemble(
      config.nodes, config.bins, config.activityModel,
      config.peakLogSigma, rng, config.threads);
  linalg::Matrix activity(config.nodes, config.bins);
  for (std::size_t i = 0; i < config.nodes; ++i)
    for (std::size_t t = 0; t < config.bins; ++t)
      activity(i, t) = ensemble[i][t];

  // Step 4: compose via the stable-fP model (per-bin fan-out).
  SyntheticTm out{
      EvaluateStableFP(config.f, activity, preference, config.binSeconds,
                       config.threads),
      std::move(preference), std::move(activity), config.f};
  return out;
}

}  // namespace ictm::core
