#include "core/fit.hpp"

#include <algorithm>
#include <cmath>

#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "linalg/lsq.hpp"
#include "linalg/simplex.hpp"

namespace ictm::core {

namespace {

// A-step: given (f, P), each bin's activities solve an independent
// NNLS problem x(t) ~ Phi * A(t).
void UpdateActivities(const traffic::TrafficMatrixSeries& series, double f,
                      const linalg::Vector& preference,
                      linalg::Matrix& activitySeries) {
  const std::size_t n = series.nodeCount();
  const linalg::Matrix phi = BuildActivityOperator(f, preference);
  const linalg::Matrix gram = phi.transposed() * phi;

  for (std::size_t t = 0; t < series.binCount(); ++t) {
    linalg::Vector x(n * n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) x[i * n + j] = series(t, i, j);
    const linalg::Vector rhs = linalg::TransposeTimes(phi, x);
    const linalg::Vector a = linalg::SolveGramNnls(gram, rhs);
    for (std::size_t i = 0; i < n; ++i) activitySeries(i, t) = a[i];
  }
}

// P-step: accumulate the Gram system over all bins (weight 1/||X(t)||^2
// per the relative-error objective), solve NNLS, then renormalise P to
// the simplex and rescale A to keep the product unchanged.
void UpdatePreference(const traffic::TrafficMatrixSeries& series, double f,
                      linalg::Matrix& activitySeries,
                      linalg::Vector& preference,
                      const std::vector<double>& binWeights) {
  const std::size_t n = series.nodeCount();
  const double g = 1.0 - f;
  linalg::Matrix gram(n, n, 0.0);
  linalg::Vector rhs(n, 0.0);

  for (std::size_t t = 0; t < series.binCount(); ++t) {
    const double w = binWeights[t];
    for (std::size_t i = 0; i < n; ++i) {
      const double fai = f * activitySeries(i, t);
      for (std::size_t j = 0; j < n; ++j) {
        const double gaj = g * activitySeries(j, t);
        const double x = series(t, i, j);
        if (i == j) {
          // Row coefficient collapses to (f+g) * A_i = A_i on p_i.
          const double c = activitySeries(i, t);
          gram(i, i) += w * c * c;
          rhs[i] += w * c * x;
        } else {
          // X_ij ~ (f A_i) p_j + (g A_j) p_i.
          gram(j, j) += w * fai * fai;
          gram(i, i) += w * gaj * gaj;
          gram(i, j) += w * fai * gaj;
          gram(j, i) += w * fai * gaj;
          rhs[j] += w * fai * x;
          rhs[i] += w * gaj * x;
        }
      }
    }
  }

  linalg::Vector p = linalg::SolveGramNnls(gram, rhs);
  const double sum = linalg::Sum(p);
  if (sum <= 0.0) return;  // keep the previous preference vector
  // Scale invariance: P -> P/sum, A -> A*sum leaves the model output
  // unchanged while restoring the simplex constraint.
  for (double& pi : p) pi /= sum;
  preference = std::move(p);
  activitySeries *= sum;
}

// f-step: the model is affine in f; the weighted 1-D least-squares
// minimiser has a closed form, clamped into (fMin, fMax).
double UpdateF(const traffic::TrafficMatrixSeries& series,
               const linalg::Matrix& activitySeries,
               const linalg::Vector& preference,
               const std::vector<double>& binWeights, double fMin,
               double fMax, double fallback) {
  const std::size_t n = series.nodeCount();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    const double w = binWeights[t];
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        // X_ij = f*(A_i Pn_j - A_j Pn_i) + A_j Pn_i.
        const double slope = activitySeries(i, t) * preference[j] -
                             activitySeries(j, t) * preference[i];
        const double offset = activitySeries(j, t) * preference[i];
        num += w * (series(t, i, j) - offset) * slope;
        den += w * slope * slope;
      }
    }
  }
  if (den <= 0.0) return fallback;
  return std::clamp(num / den, fMin, fMax);
}

std::vector<double> ComputeBinWeights(
    const traffic::TrafficMatrixSeries& series) {
  std::vector<double> w(series.binCount());
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    const double norm = series.bin(t).frobeniusNorm();
    ICTM_REQUIRE(norm > 0.0,
                 "cannot fit a series containing all-zero bins");
    w[t] = 1.0 / (norm * norm);
  }
  return w;
}

}  // namespace

double StableFPFit::objective() const {
  ICTM_REQUIRE(!objectiveHistory.empty(), "fit has not run");
  return objectiveHistory.back();
}

namespace {

// A single alternating-least-squares run from a fixed starting f.
// When `initialPreference` is non-null it seeds the P block (warm
// start); otherwise the marginal heuristic is used.
StableFPFit RunAls(const traffic::TrafficMatrixSeries& series,
                   const FitOptions& options,
                   const linalg::Vector* initialPreference);

}  // namespace

StableFPFit FitStableFP(const traffic::TrafficMatrixSeries& series,
                        const FitOptions& options) {
  if (!options.fitF || options.gridPoints == 0) {
    return RunAls(series, options, nullptr);
  }
  // Stage 1: coarse scan over f on a subsampled series.  Alternating
  // solves at a fixed f can stall in (A, P) local optima, so each grid
  // point is attempted both cold (marginal-heuristic init) and warm
  // (continuation from the previous grid point's preference vector),
  // keeping whichever converges lower.
  const traffic::TrafficMatrixSeries coarse =
      options.gridStride > 1 && series.binCount() > options.gridStride
          ? series.downsample(options.gridStride)
          : series;
  double bestF = options.initialF;
  double bestObjective = -1.0;
  linalg::Vector bestPreference;
  linalg::Vector carry;  // continuation state along the grid
  for (std::size_t k = 0; k < options.gridPoints; ++k) {
    const double frac = options.gridPoints == 1
                            ? 0.5
                            : static_cast<double>(k) /
                                  static_cast<double>(options.gridPoints - 1);
    const double f = options.fMin + frac * (options.fMax - options.fMin);
    FitOptions probe = options;
    probe.fitF = false;
    probe.initialF = f;
    probe.maxSweeps = options.gridSweeps;
    StableFPFit fit = RunAls(coarse, probe, nullptr);
    if (!carry.empty()) {
      StableFPFit warm = RunAls(coarse, probe, &carry);
      if (warm.objective() < fit.objective()) fit = std::move(warm);
    }
    carry = fit.preference;
    if (bestObjective < 0.0 || fit.objective() < bestObjective) {
      bestObjective = fit.objective();
      bestF = f;
      bestPreference = fit.preference;
    }
  }
  // Stage 2: polish from the winning (f, P) with the full solver.
  FitOptions polish = options;
  polish.initialF = bestF;
  return RunAls(series, polish,
                bestPreference.empty() ? nullptr : &bestPreference);
}

namespace {

StableFPFit RunAls(const traffic::TrafficMatrixSeries& series,
                   const FitOptions& options,
                   const linalg::Vector* initialPreference) {
  ICTM_REQUIRE(options.maxSweeps > 0, "maxSweeps must be positive");
  ICTM_REQUIRE(options.fMin > 0.0 && options.fMax < 1.0 &&
                   options.fMin < options.fMax,
               "invalid f clamp range");
  const std::size_t n = series.nodeCount();
  const std::size_t bins = series.binCount();
  const std::vector<double> weights = ComputeBinWeights(series);

  StableFPFit fit;
  fit.f = std::clamp(options.initialF, options.fMin, options.fMax);
  // Initial preference: warm start when provided, otherwise the mean
  // normalised egress share — a reasonable proxy since responders
  // attract most (reverse) traffic when f < 1/2.
  if (initialPreference != nullptr) {
    ICTM_REQUIRE(initialPreference->size() == n,
                 "warm-start preference size mismatch");
    fit.preference = linalg::NormalizeNonNegative(*initialPreference);
  } else {
    fit.preference =
        linalg::NormalizeNonNegative(series.meanNormalizedEgress());
  }
  // Initial activities: per-bin ingress counts (refined immediately by
  // the first A-step).
  fit.activitySeries = linalg::Matrix(n, bins, 0.0);
  for (std::size_t t = 0; t < bins; ++t) {
    const linalg::Vector in = series.ingress(t);
    for (std::size_t i = 0; i < n; ++i) fit.activitySeries(i, t) = in[i];
  }

  double previousObjective = -1.0;
  for (std::size_t sweep = 0; sweep < options.maxSweeps; ++sweep) {
    UpdateActivities(series, fit.f, fit.preference, fit.activitySeries);
    UpdatePreference(series, fit.f, fit.activitySeries, fit.preference,
                     weights);
    if (options.fitF) {
      fit.f = UpdateF(series, fit.activitySeries, fit.preference, weights,
                      options.fMin, options.fMax, fit.f);
    }

    const double objective = RelL2Objective(
        series, ReconstructSeries(fit, series.binSeconds()));
    fit.objectiveHistory.push_back(objective);
    fit.sweeps = sweep + 1;
    if (previousObjective >= 0.0 &&
        previousObjective - objective <
            options.relativeTolerance * std::max(previousObjective, 1e-30)) {
      fit.converged = true;
      break;
    }
    previousObjective = objective;
  }
  return fit;
}

}  // namespace

TimeVaryingFit FitTimeVarying(const traffic::TrafficMatrixSeries& series,
                              const FitOptions& options) {
  TimeVaryingFit out;
  const std::size_t n = series.nodeCount();
  out.activitySeries = linalg::Matrix(n, series.binCount(), 0.0);
  out.f.reserve(series.binCount());
  out.preference.reserve(series.binCount());
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    const StableFPFit binFit = FitStableFP(series.slice(t, 1), options);
    out.f.push_back(binFit.f);
    out.preference.push_back(binFit.preference);
    for (std::size_t i = 0; i < n; ++i)
      out.activitySeries(i, t) = binFit.activitySeries(i, 0);
    out.objective += binFit.objective();
  }
  return out;
}

traffic::TrafficMatrixSeries ReconstructSeries(const StableFPFit& fit,
                                               double binSeconds) {
  return EvaluateStableFP(fit.f, fit.activitySeries, fit.preference,
                          binSeconds);
}

}  // namespace ictm::core
