#include "core/solver_backend.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "linalg/lsq.hpp"
#include "linalg/pcg.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_chol.hpp"
#include "obs/metrics.hpp"
#include "obs/now.hpp"

namespace ictm::core {

namespace {

// One bin-solve per call, so per-backend solve counts are invariant
// under the worker fan-out (deterministic class); the factor /
// substitute split is wall time (timing class).
void CountSolve(const char* counterName) {
  static obs::Counter& dense = obs::GetCounter(
      "solver.solves.dense", obs::MetricClass::kDeterministic);
  static obs::Counter& sparse = obs::GetCounter(
      "solver.solves.sparse", obs::MetricClass::kDeterministic);
  static obs::Counter& cg = obs::GetCounter(
      "solver.solves.cg", obs::MetricClass::kDeterministic);
  if (counterName[0] == 'd') {
    dense.add();
  } else if (counterName[0] == 's') {
    sparse.add();
  } else {
    cg.add();
  }
}

obs::Counter& FactorNsCounter() {
  static obs::Counter& c =
      obs::GetCounter("solver.factor_ns", obs::MetricClass::kTiming);
  return c;
}

obs::Counter& SubstituteNsCounter() {
  static obs::Counter& c =
      obs::GetCounter("solver.substitute_ns", obs::MetricClass::kTiming);
  return c;
}

// The reference path: dense normal matrix + blocked in-place Cholesky,
// exactly the floating-point sequence the estimator has always run —
// `dense` results are bit-identical to the pre-backend code.
class DenseBackend final : public SolverBackend {
 public:
  DenseBackend(const AugmentedTmSystem& system,
               const EstimationOptions& options)
      : system_(system), relativeRidge_(options.relativeRidge) {
    const std::size_t rows = system.rowCount();
    arena_.Reserve(rows * rows);
    m_ = arena_.Take(rows * rows);
  }

  const char* name() const noexcept override { return "dense"; }

  void SolveNormal(const double* weights, double* rhs) override {
    CountSolve(name());
    const std::size_t rows = system_.rowCount();
    linalg::WeightedGramInto(system_.matrix(), weights, m_);
    double trace = 0.0;
    for (std::size_t r = 0; r < rows; ++r) trace += m_[r * rows + r];
    const double ridge =
        std::max(trace, 1.0) * relativeRidge_ +
        1e-30;  // keep strictly positive even for an all-zero prior
    for (std::size_t r = 0; r < rows; ++r) m_[r * rows + r] += ridge;
    // Factor + substitute is exactly CholeskySolveInPlace (the split
    // is the documented definition), timed per phase.
    const bool recording = obs::Enabled();
    const std::uint64_t t0 = recording ? obs::Now() : 0;
    linalg::CholeskyFactorInPlace(m_, rows);
    const std::uint64_t t1 = recording ? obs::Now() : 0;
    linalg::CholeskySubstituteInPlace(m_, rhs, rows);
    if (recording) {
      FactorNsCounter().add(t1 - t0);
      SubstituteNsCounter().add(obs::Now() - t1);
    }
  }

 private:
  const AugmentedTmSystem& system_;
  double relativeRidge_;
  WorkspaceArena arena_;
  double* m_;  // rows x rows: normal matrix, then its factor
};

// Sparse Cholesky against the system's shared symbolic analysis; only
// the numeric buffers are per thread.
class SparseBackend final : public SolverBackend {
 public:
  SparseBackend(const AugmentedTmSystem& system,
                const EstimationOptions& options)
      : analysis_(system.sparseAnalysis()),
        relativeRidge_(options.relativeRidge) {
    arena_.Reserve(linalg::SparseNormalSolver::RequiredScratch(analysis_));
    solver_.emplace(analysis_, arena_.Take(
        linalg::SparseNormalSolver::RequiredScratch(analysis_)));
  }

  const char* name() const noexcept override { return "sparse"; }

  void SolveNormal(const double* weights, double* rhs) override {
    CountSolve(name());
    const bool recording = obs::Enabled();
    const std::uint64_t t0 = recording ? obs::Now() : 0;
    solver_->Factor(weights, relativeRidge_);
    const std::uint64_t t1 = recording ? obs::Now() : 0;
    solver_->Solve(rhs);
    if (recording) {
      FactorNsCounter().add(t1 - t0);
      SubstituteNsCounter().add(obs::Now() - t1);
    }
  }

 private:
  const linalg::SparseNormalAnalysis& analysis_;
  double relativeRidge_;
  WorkspaceArena arena_;
  std::optional<linalg::SparseNormalSolver> solver_;
};

// Matrix-free PCG straight off the system's compressed operator.
class CgBackend final : public SolverBackend {
 public:
  CgBackend(const AugmentedTmSystem& system,
            const EstimationOptions& options)
      : system_(system), relativeRidge_(options.relativeRidge) {
    arena_.Reserve(linalg::NormalPcg::RequiredScratch(system.matrix()));
    solver_.emplace(system.matrix(), system.cgPreconditioner(),
                    arena_.Take(linalg::NormalPcg::RequiredScratch(
                        system.matrix())));
  }

  const char* name() const noexcept override { return "cg"; }

  void SolveNormal(const double* weights, double* rhs) override {
    CountSolve(name());
    const linalg::PcgResult result =
        solver_->Solve(weights, relativeRidge_, rhs);
    // The residual can floor out marginally above the tolerance along
    // the redundant-marginal null direction (harmless — that
    // component never reaches the estimate), but a residual this
    // large means the range-space solve genuinely stalled; failing
    // loudly beats silently degraded estimates, matching the direct
    // backends' throw-on-numerical-failure behaviour.
    ICTM_REQUIRE(result.converged || result.relativeResidual < 1e-6,
                 "cg backend did not converge (relative residual " +
                     std::to_string(result.relativeResidual) +
                     "); retry with --solver dense or sparse");
  }

 private:
  const AugmentedTmSystem& system_;
  double relativeRidge_;
  WorkspaceArena arena_;
  std::optional<linalg::NormalPcg> solver_;
};

}  // namespace

SolverKind ResolveSolverKind(SolverKind requested,
                             std::size_t rows) noexcept {
  if (requested != SolverKind::kAuto) return requested;
  return rows >= kAutoSolverRowThreshold ? SolverKind::kCg
                                         : SolverKind::kDense;
}

std::unique_ptr<SolverBackend> MakeSolverBackend(
    const AugmentedTmSystem& system, const EstimationOptions& options) {
  const SolverKind resolved =
      ResolveSolverKind(options.solver, system.rowCount());
  // Auto-pick accounting.  Backends are constructed once per worker,
  // so these counts scale with the thread fan-out — timing class, not
  // deterministic (the per-bin solver.solves.* counters are the
  // thread-invariant view).
  if (options.solver == SolverKind::kAuto) {
    static obs::Counter& autoDense = obs::GetCounter(
        "solver.auto_picks.dense", obs::MetricClass::kTiming);
    static obs::Counter& autoCg =
        obs::GetCounter("solver.auto_picks.cg", obs::MetricClass::kTiming);
    (resolved == SolverKind::kCg ? autoCg : autoDense).add();
  }
  switch (resolved) {
    case SolverKind::kSparse:
      return std::make_unique<SparseBackend>(system, options);
    case SolverKind::kCg:
      return std::make_unique<CgBackend>(system, options);
    case SolverKind::kDense:
    case SolverKind::kAuto:
      break;
  }
  return std::make_unique<DenseBackend>(system, options);
}

}  // namespace ictm::core
