#include "core/priors.hpp"

#include <cmath>

#include "core/gravity.hpp"
#include "linalg/simplex.hpp"
#include "linalg/svd.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

void MarginalSeries::validate() const {
  ICTM_REQUIRE(ingress.rows() > 0 && ingress.cols() > 0,
               "empty marginal series");
  ICTM_REQUIRE(ingress.rows() == egress.rows() &&
                   ingress.cols() == egress.cols(),
               "ingress/egress shape mismatch");
  for (double v : ingress.data())
    ICTM_REQUIRE(v >= 0.0, "negative ingress count");
  for (double v : egress.data())
    ICTM_REQUIRE(v >= 0.0, "negative egress count");
}

MarginalSeries ExtractMarginals(
    const traffic::TrafficMatrixSeries& series) {
  const std::size_t n = series.nodeCount();
  MarginalSeries m{linalg::Matrix(n, series.binCount()),
                   linalg::Matrix(n, series.binCount())};
  for (std::size_t t = 0; t < series.binCount(); ++t) {
    const linalg::Vector in = series.ingress(t);
    const linalg::Vector out = series.egress(t);
    for (std::size_t i = 0; i < n; ++i) {
      m.ingress(i, t) = in[i];
      m.egress(i, t) = out[i];
    }
  }
  return m;
}

traffic::TrafficMatrixSeries GravityPriorSeries(
    const MarginalSeries& marginals, double binSeconds) {
  marginals.validate();
  const std::size_t n = marginals.nodeCount();
  traffic::TrafficMatrixSeries out(n, marginals.binCount(), binSeconds);
  for (std::size_t t = 0; t < marginals.binCount(); ++t) {
    out.setBin(t, GravityPredict(marginals.ingress.col(t),
                                 marginals.egress.col(t)));
  }
  return out;
}

traffic::TrafficMatrixSeries StableFPPrior(double f,
                                           const linalg::Vector& preference,
                                           const MarginalSeries& marginals,
                                           double binSeconds,
                                           linalg::Matrix* outActivities) {
  marginals.validate();
  const std::size_t n = marginals.nodeCount();
  ICTM_REQUIRE(preference.size() == n, "preference size mismatch");
  const std::size_t bins = marginals.binCount();

  // Eq. 7: x(t) = Phi A(t);  Eq. 8: Atilde = pinv(Q Phi) * (Q x)(t),
  // where Q x is exactly the stacked ingress/egress counts.
  const linalg::Matrix phi = BuildActivityOperator(f, preference);
  const linalg::Matrix q = traffic::BuildMarginalOperator(n);
  const linalg::Matrix qphi = q * phi;             // 2n x n
  const linalg::Matrix qphiPinv = linalg::PseudoInverse(qphi);  // n x 2n

  traffic::TrafficMatrixSeries prior(n, bins, binSeconds);
  if (outActivities != nullptr) {
    *outActivities = linalg::Matrix(n, bins, 0.0);
  }

  for (std::size_t t = 0; t < bins; ++t) {
    linalg::Vector counts(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      counts[i] = marginals.ingress(i, t);
      counts[n + i] = marginals.egress(i, t);
    }
    const linalg::Vector aTilde = qphiPinv * counts;
    if (outActivities != nullptr) {
      for (std::size_t i = 0; i < n; ++i) (*outActivities)(i, t) = aTilde[i];
    }
    // Eq. 9: prior = Phi Atilde, clamped to be a valid traffic matrix.
    const linalg::Vector x = phi * aTilde;
    linalg::Matrix tm(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        tm(i, j) = std::max(x[i * n + j], 0.0);
    prior.setBin(t, tm);
  }
  return prior;
}

StableFEstimates EstimateStableFParameters(double f,
                                           const linalg::Vector& ingress,
                                           const linalg::Vector& egress) {
  const std::size_t n = ingress.size();
  ICTM_REQUIRE(n > 0, "empty marginals");
  ICTM_REQUIRE(egress.size() == n, "marginal size mismatch");
  const double denom = 2.0 * f - 1.0;
  ICTM_REQUIRE(std::fabs(denom) > 1e-6,
               "stable-f closed forms are singular at f = 1/2");

  StableFEstimates est;
  est.activity.resize(n);
  linalg::Vector rawPreference(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Eq. 11: Atilde_i = (f X_i* - (1-f) X_*i) / (2f - 1).
    est.activity[i] =
        std::max((f * ingress[i] - (1.0 - f) * egress[i]) / denom, 0.0);
    // Eq. 12 numerator (the sum_j A_j factor cancels on normalisation):
    // Ptilde_i  proportional to  (f X_*i - (1-f) X_i*) / (2f - 1).
    rawPreference[i] =
        std::max((f * egress[i] - (1.0 - f) * ingress[i]) / denom, 0.0);
  }
  est.preference = linalg::NormalizeNonNegative(rawPreference);
  return est;
}

traffic::TrafficMatrixSeries StableFPrior(double f,
                                          const MarginalSeries& marginals,
                                          double binSeconds) {
  marginals.validate();
  const std::size_t n = marginals.nodeCount();
  traffic::TrafficMatrixSeries prior(n, marginals.binCount(), binSeconds);
  for (std::size_t t = 0; t < marginals.binCount(); ++t) {
    const StableFEstimates est = EstimateStableFParameters(
        f, marginals.ingress.col(t), marginals.egress.col(t));
    IcParameters params{f, est.activity, est.preference};
    prior.setBin(t, EvaluateSimplifiedIc(params));
  }
  return prior;
}

}  // namespace ictm::core
