#include "core/estimation.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "core/solver_backend.hpp"
#include "linalg/lsq.hpp"
#include "linalg/pcg.hpp"
#include "linalg/sparse_chol.hpp"
#include "topology/routing.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

namespace {

// Core IPF loop on a raw row-major n x n buffer, so series estimation
// can scale bins in place without a Matrix round-trip per bin.
// Preconditions (square shape, non-negative targets) are checked by
// the callers.
void IpfInPlace(double* tm, std::size_t n, const double* rowTargets,
                const double* colTargets, std::size_t maxIterations,
                double tolerance) {
  // Seed structurally-zero rows/columns whose target is positive, so
  // scaling has something to work with.
  for (std::size_t i = 0; i < n; ++i) {
    double* row = tm + i * n;
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) rowSum += row[j];
    if (rowSum == 0.0 && rowTargets[i] > 0.0) {
      for (std::size_t j = 0; j < n; ++j)
        row[j] = rowTargets[i] / static_cast<double>(n);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    double colSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) colSum += tm[i * n + j];
    if (colSum == 0.0 && colTargets[j] > 0.0) {
      for (std::size_t i = 0; i < n; ++i)
        tm[i * n + j] += colTargets[j] / static_cast<double>(n);
    }
  }

  for (std::size_t iter = 0; iter < maxIterations; ++iter) {
    // Row scaling.
    for (std::size_t i = 0; i < n; ++i) {
      double* row = tm + i * n;
      double rowSum = 0.0;
      for (std::size_t j = 0; j < n; ++j) rowSum += row[j];
      if (rowSum > 0.0) {
        const double s = rowTargets[i] / rowSum;
        for (std::size_t j = 0; j < n; ++j) row[j] *= s;
      }
    }
    // Column scaling, tracking the worst mismatch before scaling rows
    // again next round.
    double worst = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      double colSum = 0.0;
      for (std::size_t i = 0; i < n; ++i) colSum += tm[i * n + j];
      if (colSum > 0.0) {
        const double s = colTargets[j] / colSum;
        for (std::size_t i = 0; i < n; ++i) tm[i * n + j] *= s;
        const double scale = std::max(colTargets[j], 1.0);
        worst = std::max(worst, std::fabs(colSum - colTargets[j]) / scale);
      }
    }
    if (worst < tolerance) break;
  }
}

}  // namespace

const char* SolverKindName(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::kDense:
      return "dense";
    case SolverKind::kSparse:
      return "sparse";
    case SolverKind::kCg:
      return "cg";
    case SolverKind::kAuto:
      break;
  }
  return "auto";
}

bool ParseSolverKind(std::string_view name, SolverKind* out) noexcept {
  if (name == "auto") {
    *out = SolverKind::kAuto;
  } else if (name == "dense") {
    *out = SolverKind::kDense;
  } else if (name == "sparse") {
    *out = SolverKind::kSparse;
  } else if (name == "cg") {
    *out = SolverKind::kCg;
  } else {
    return false;
  }
  return true;
}

AugmentedTmSystem::AugmentedTmSystem(const linalg::CsrMatrix& routing,
                                     std::size_t nodes,
                                     bool marginalConstraints)
    : n_(nodes), links_(routing.rows()) {
  ICTM_REQUIRE(routing.cols() == n_ * n_,
               "routing matrix column mismatch");
  rows_ = AugmentedRowCount(links_, n_, marginalConstraints);
  std::vector<linalg::Triplet> entries;
  entries.reserve(routing.nonZeros() +
                  (marginalConstraints ? 2 * n_ * n_ : 0));
  for (std::size_t r = 0; r < links_; ++r) {
    for (std::size_t k = routing.rowPtr()[r]; k < routing.rowPtr()[r + 1];
         ++k) {
      entries.push_back({r, routing.colIdx()[k], routing.values()[k]});
    }
  }
  if (marginalConstraints) {
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        entries.push_back({links_ + i, i * n_ + j, 1.0});       // ingress row
        entries.push_back({links_ + n_ + j, i * n_ + j, 1.0});  // egress row
      }
    }
  }
  a_ = linalg::CscMatrix::FromTriplets(rows_, n_ * n_, std::move(entries));
}

AugmentedTmSystem::~AugmentedTmSystem() = default;

const linalg::SparseNormalAnalysis& AugmentedTmSystem::sparseAnalysis()
    const {
  std::call_once(sparseOnce_, [this] {
    sparse_ = std::make_unique<linalg::SparseNormalAnalysis>(a_);
  });
  return *sparse_;
}

const linalg::FrozenNormalPreconditioner&
AugmentedTmSystem::cgPreconditioner() const {
  std::call_once(cgOnce_, [this] {
    cgPrecond_ = std::make_unique<linalg::FrozenNormalPreconditioner>(a_);
  });
  return *cgPrecond_;
}

TmBinSolver::TmBinSolver(const AugmentedTmSystem& system,
                         const EstimationOptions& options)
    : system_(system),
      options_(options),
      d_(system.rowCount(), 0.0),
      backend_(MakeSolverBackend(system, options)) {}

TmBinSolver::~TmBinSolver() = default;

const char* TmBinSolver::solverName() const noexcept {
  return backend_->name();
}

void TmBinSolver::Solve(const double* linkLoads, const double* priorBin,
                        const double* ingress, const double* egress,
                        double* outBin) {
  const std::size_t n = system_.nodeCount();
  const std::size_t n2 = n * n;
  const std::size_t rows = system_.rowCount();
  const std::size_t links = system_.linkCount();
  for (std::size_t i = 0; i < n; ++i) {
    ICTM_REQUIRE(ingress[i] >= 0.0, "negative row target");
    ICTM_REQUIRE(egress[i] >= 0.0, "negative col target");
  }

  // Right-hand side y = [loads; ingress; egress] ...
  double* d = d_.data();
  std::copy(linkLoads, linkLoads + links, d);
  if (rows > links) {
    std::copy(ingress, ingress + n, d + links);
    std::copy(egress, egress + n, d + links + n);
  }
  // ... turned into the residual d = y - A xp.
  const auto& colPtr = system_.matrix().colPtr();
  const auto& rowIdx = system_.matrix().rowIdx();
  const auto& values = system_.matrix().values();
  for (std::size_t c = 0; c < n2; ++c) {
    const double xp = priorBin[c];
    if (xp == 0.0) continue;
    for (std::size_t k = colPtr[c]; k < colPtr[c + 1]; ++k) {
      d[rowIdx[k]] -= values[k] * xp;
    }
  }

  // Solve (A W Aᵀ + ridge) z = d with W = diag(xp) (prior-weighted
  // deviations, per tomogravity) through the configured backend, then
  // push back: x = xp + W Aᵀ z.
  backend_->SolveNormal(priorBin, d);
  for (std::size_t c = 0; c < n2; ++c) {
    const double xp = priorBin[c];
    double x = xp;
    if (xp > 0.0) {
      double dot = 0.0;
      for (std::size_t k = colPtr[c]; k < colPtr[c + 1]; ++k) {
        dot += values[k] * d[rowIdx[k]];
      }
      x += xp * dot;
    }
    outBin[c] = std::max(x, 0.0);
  }

  IpfInPlace(outBin, n, ingress, egress, options_.ipfIterations,
             options_.ipfTolerance);
}

linalg::Matrix Ipf(linalg::Matrix tm, const linalg::Vector& rowTargets,
                   const linalg::Vector& colTargets,
                   std::size_t maxIterations, double tolerance) {
  const std::size_t n = tm.rows();
  ICTM_REQUIRE(tm.cols() == n, "IPF requires a square matrix");
  ICTM_REQUIRE(rowTargets.size() == n && colTargets.size() == n,
               "target length mismatch");
  for (double v : rowTargets) ICTM_REQUIRE(v >= 0.0, "negative row target");
  for (double v : colTargets) ICTM_REQUIRE(v >= 0.0, "negative col target");
  IpfInPlace(tm.data().data(), n, rowTargets.data(), colTargets.data(),
             maxIterations, tolerance);
  return tm;
}

linalg::Matrix EstimateTmBin(const linalg::CsrMatrix& routing,
                             const linalg::Vector& linkLoads,
                             const linalg::Matrix& prior,
                             const linalg::Vector& ingress,
                             const linalg::Vector& egress,
                             const EstimationOptions& options) {
  const std::size_t n = prior.rows();
  ICTM_REQUIRE(prior.cols() == n, "prior must be square");
  ICTM_REQUIRE(routing.cols() == n * n, "routing matrix column mismatch");
  ICTM_REQUIRE(linkLoads.size() == routing.rows(),
               "link load length mismatch");
  ICTM_REQUIRE(ingress.size() == n && egress.size() == n,
               "marginal length mismatch");

  const AugmentedTmSystem sys(routing, n, options.useMarginalConstraints);
  TmBinSolver solver(sys, options);
  linalg::Matrix out(n, n);
  solver.Solve(linkLoads.data(), prior.data().data(), ingress.data(),
               egress.data(), out.data().data());
  return out;
}

linalg::Matrix EstimateTmBin(const linalg::Matrix& routing,
                             const linalg::Vector& linkLoads,
                             const linalg::Matrix& prior,
                             const linalg::Vector& ingress,
                             const linalg::Vector& egress,
                             const EstimationOptions& options) {
  return EstimateTmBin(linalg::CsrMatrix::FromDense(routing), linkLoads,
                       prior, ingress, egress, options);
}

traffic::TrafficMatrixSeries EstimateSeries(
    const linalg::CsrMatrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options) {
  const AugmentedTmSystem sys(routing, truth.nodeCount(),
                              options.useMarginalConstraints);
  return EstimateSeries(sys, routing, truth, priors, options);
}

traffic::TrafficMatrixSeries EstimateSeries(
    const AugmentedTmSystem& sys, const linalg::CsrMatrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options) {
  ICTM_REQUIRE(truth.nodeCount() == priors.nodeCount() &&
                   truth.binCount() == priors.binCount(),
               "truth/prior series shape mismatch");
  const std::size_t n = truth.nodeCount();
  const std::size_t bins = truth.binCount();
  ICTM_REQUIRE(sys.nodeCount() == n && sys.linkCount() == routing.rows(),
               "augmented system does not match the routing matrix");
  ICTM_REQUIRE(sys.rowCount() ==
                   AugmentedRowCount(routing.rows(), n,
                                     options.useMarginalConstraints),
               "augmented system was built with different marginal "
               "constraints than the options request");
  traffic::TrafficMatrixSeries out(n, bins, truth.binSeconds());

  // Each worker takes a contiguous run of bins and reuses one solver
  // (scratch) instance; bins write disjoint slices of `out`, so any
  // thread count produces bit-identical estimates.
  ParallelForRanges(
      std::size_t{0}, bins, options.threads,
      [&](std::size_t lo, std::size_t hi) {
        TmBinSolver solver(sys, options);
        std::vector<double> loads(sys.linkCount(), 0.0);
        std::vector<double> ingress(n, 0.0);
        std::vector<double> egress(n, 0.0);
        for (std::size_t t = lo; t < hi; ++t) {
          const double* truthBin = truth.binData(t);
          routing.MultiplyInto(truthBin, loads.data());
          std::fill(ingress.begin(), ingress.end(), 0.0);
          std::fill(egress.begin(), egress.end(), 0.0);
          for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
              const double v = truthBin[i * n + j];
              ingress[i] += v;
              egress[j] += v;
            }
          }
          solver.Solve(loads.data(), priors.binData(t), ingress.data(),
                       egress.data(), out.binData(t));
        }
      });
  return out;
}

traffic::TrafficMatrixSeries EstimateSeries(
    const linalg::Matrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options) {
  return EstimateSeries(linalg::CsrMatrix::FromDense(routing), truth,
                        priors, options);
}

}  // namespace ictm::core
