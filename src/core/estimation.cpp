#include "core/estimation.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lsq.hpp"
#include "topology/routing.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

linalg::Matrix Ipf(linalg::Matrix tm, const linalg::Vector& rowTargets,
                   const linalg::Vector& colTargets,
                   std::size_t maxIterations, double tolerance) {
  const std::size_t n = tm.rows();
  ICTM_REQUIRE(tm.cols() == n, "IPF requires a square matrix");
  ICTM_REQUIRE(rowTargets.size() == n && colTargets.size() == n,
               "target length mismatch");
  for (double v : rowTargets) ICTM_REQUIRE(v >= 0.0, "negative row target");
  for (double v : colTargets) ICTM_REQUIRE(v >= 0.0, "negative col target");

  // Seed structurally-zero rows/columns whose target is positive, so
  // scaling has something to work with.
  for (std::size_t i = 0; i < n; ++i) {
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) rowSum += tm(i, j);
    if (rowSum == 0.0 && rowTargets[i] > 0.0) {
      for (std::size_t j = 0; j < n; ++j)
        tm(i, j) = rowTargets[i] / static_cast<double>(n);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    double colSum = 0.0;
    for (std::size_t i = 0; i < n; ++i) colSum += tm(i, j);
    if (colSum == 0.0 && colTargets[j] > 0.0) {
      for (std::size_t i = 0; i < n; ++i)
        tm(i, j) += colTargets[j] / static_cast<double>(n);
    }
  }

  for (std::size_t iter = 0; iter < maxIterations; ++iter) {
    // Row scaling.
    for (std::size_t i = 0; i < n; ++i) {
      double rowSum = 0.0;
      for (std::size_t j = 0; j < n; ++j) rowSum += tm(i, j);
      if (rowSum > 0.0) {
        const double s = rowTargets[i] / rowSum;
        for (std::size_t j = 0; j < n; ++j) tm(i, j) *= s;
      }
    }
    // Column scaling, tracking the worst mismatch before scaling rows
    // again next round.
    double worst = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      double colSum = 0.0;
      for (std::size_t i = 0; i < n; ++i) colSum += tm(i, j);
      if (colSum > 0.0) {
        const double s = colTargets[j] / colSum;
        for (std::size_t i = 0; i < n; ++i) tm(i, j) *= s;
        const double scale = std::max(colTargets[j], 1.0);
        worst = std::max(worst, std::fabs(colSum - colTargets[j]) / scale);
      }
    }
    if (worst < tolerance) break;
  }
  return tm;
}

namespace {

// Sparse column view of a routing (or augmented) matrix: for each
// column, the list of (row, value) non-zeros.  Link-path columns have
// only a handful of entries, so this turns the dense normal-equation
// build into a near-linear pass.
struct SparseColumns {
  std::vector<std::vector<std::pair<std::size_t, double>>> cols;

  explicit SparseColumns(const linalg::Matrix& m) : cols(m.cols()) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        const double v = m(r, c);
        if (v != 0.0) cols[c].emplace_back(r, v);
      }
    }
  }
};

}  // namespace

linalg::Matrix EstimateTmBin(const linalg::Matrix& routing,
                             const linalg::Vector& linkLoads,
                             const linalg::Matrix& prior,
                             const linalg::Vector& ingress,
                             const linalg::Vector& egress,
                             const EstimationOptions& options) {
  const std::size_t n = prior.rows();
  ICTM_REQUIRE(prior.cols() == n, "prior must be square");
  ICTM_REQUIRE(routing.cols() == n * n, "routing matrix column mismatch");
  ICTM_REQUIRE(linkLoads.size() == routing.rows(),
               "link load length mismatch");
  ICTM_REQUIRE(ingress.size() == n && egress.size() == n,
               "marginal length mismatch");

  // Assemble the (optionally marginal-augmented) system.
  const std::size_t links = routing.rows();
  const std::size_t rows =
      options.useMarginalConstraints ? links + 2 * n : links;
  linalg::Matrix system(rows, n * n, 0.0);
  linalg::Vector y(rows, 0.0);
  for (std::size_t r = 0; r < links; ++r) {
    for (std::size_t c = 0; c < n * n; ++c) system(r, c) = routing(r, c);
    y[r] = linkLoads[r];
  }
  if (options.useMarginalConstraints) {
    const linalg::Matrix q = traffic::BuildMarginalOperator(n);
    for (std::size_t r = 0; r < 2 * n; ++r)
      for (std::size_t c = 0; c < n * n; ++c)
        system(links + r, c) = q(r, c);
    for (std::size_t i = 0; i < n; ++i) {
      y[links + i] = ingress[i];
      y[links + n + i] = egress[i];
    }
  }

  const SparseColumns sparse(system);
  const linalg::Vector xp = topology::FlattenTm(prior);

  // Residual d = y - R xp.
  linalg::Vector d = y;
  for (std::size_t c = 0; c < n * n; ++c) {
    if (xp[c] == 0.0) continue;
    for (const auto& [r, v] : sparse.cols[c]) d[r] -= v * xp[c];
  }

  // Normal matrix M = R W R^T with W = diag(xp) (prior-weighted
  // deviations, per tomogravity), built column-by-column.
  linalg::Matrix m(rows, rows, 0.0);
  for (std::size_t c = 0; c < n * n; ++c) {
    if (xp[c] <= 0.0) continue;
    const auto& nz = sparse.cols[c];
    for (const auto& [r1, v1] : nz) {
      for (const auto& [r2, v2] : nz) {
        m(r1, r2) += xp[c] * v1 * v2;
      }
    }
  }
  double trace = 0.0;
  for (std::size_t r = 0; r < rows; ++r) trace += m(r, r);
  const double ridge =
      std::max(trace, 1.0) * options.relativeRidge +
      1e-30;  // keep strictly positive even for an all-zero prior
  for (std::size_t r = 0; r < rows; ++r) m(r, r) += ridge;

  // Solve (M + ridge) z = d and push back: x = xp + W R^T z.
  const linalg::Matrix u = linalg::CholeskyUpper(m);
  const linalg::Vector w1 = linalg::ForwardSubstituteTranspose(u, d);
  // Back substitution U z = w1.
  linalg::Vector z(rows, 0.0);
  for (std::size_t ii = rows; ii-- > 0;) {
    double acc = w1[ii];
    for (std::size_t j = ii + 1; j < rows; ++j) acc -= u(ii, j) * z[j];
    z[ii] = acc / u(ii, ii);
  }

  linalg::Vector x = xp;
  for (std::size_t c = 0; c < n * n; ++c) {
    if (xp[c] <= 0.0) continue;
    double dot = 0.0;
    for (const auto& [r, v] : sparse.cols[c]) dot += v * z[r];
    x[c] += xp[c] * dot;
  }
  for (double& xi : x) xi = std::max(xi, 0.0);

  return Ipf(topology::UnflattenTm(x, n), ingress, egress,
             options.ipfIterations, options.ipfTolerance);
}

traffic::TrafficMatrixSeries EstimateSeries(
    const linalg::Matrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options) {
  ICTM_REQUIRE(truth.nodeCount() == priors.nodeCount() &&
                   truth.binCount() == priors.binCount(),
               "truth/prior series shape mismatch");
  const std::size_t n = truth.nodeCount();
  traffic::TrafficMatrixSeries out(n, truth.binCount(),
                                   truth.binSeconds());
  for (std::size_t t = 0; t < truth.binCount(); ++t) {
    const linalg::Matrix truthBin = truth.bin(t);
    const linalg::Vector loads =
        topology::ComputeLinkLoads(routing, truthBin);
    out.setBin(t, EstimateTmBin(routing, loads, priors.bin(t),
                                truth.ingress(t), truth.egress(t),
                                options));
  }
  return out;
}

}  // namespace ictm::core
