#include "core/metrics.hpp"

#include <cmath>

namespace ictm::core {

double RelL2Temporal(const linalg::Matrix& actual,
                     const linalg::Matrix& estimate) {
  ICTM_REQUIRE(actual.rows() == estimate.rows() &&
                   actual.cols() == estimate.cols(),
               "shape mismatch in RelL2Temporal");
  const double denom = actual.frobeniusNorm();
  ICTM_REQUIRE(denom > 0.0, "RelL2 of an all-zero actual matrix");
  return (actual - estimate).frobeniusNorm() / denom;
}

std::vector<double> RelL2TemporalSeries(
    const traffic::TrafficMatrixSeries& actual,
    const traffic::TrafficMatrixSeries& estimate) {
  ICTM_REQUIRE(actual.nodeCount() == estimate.nodeCount() &&
                   actual.binCount() == estimate.binCount(),
               "series shape mismatch");
  std::vector<double> out(actual.binCount());
  for (std::size_t t = 0; t < actual.binCount(); ++t) {
    out[t] = RelL2Temporal(actual.bin(t), estimate.bin(t));
  }
  return out;
}

double RelL2Objective(const traffic::TrafficMatrixSeries& actual,
                      const traffic::TrafficMatrixSeries& estimate) {
  double acc = 0.0;
  for (double e : RelL2TemporalSeries(actual, estimate)) acc += e;
  return acc;
}

double RelL2Spatial(const traffic::TrafficMatrixSeries& actual,
                    const traffic::TrafficMatrixSeries& estimate,
                    std::size_t i, std::size_t j) {
  const linalg::Vector a = actual.odSeries(i, j);
  const linalg::Vector e = estimate.odSeries(i, j);
  const double denom = linalg::Norm2(a);
  ICTM_REQUIRE(denom > 0.0, "RelL2Spatial of an all-zero OD series");
  return linalg::Norm2(linalg::Sub(a, e)) / denom;
}

std::vector<double> PercentImprovementSeries(
    const std::vector<double>& baselineErrors,
    const std::vector<double>& candidateErrors) {
  ICTM_REQUIRE(baselineErrors.size() == candidateErrors.size(),
               "error series length mismatch");
  std::vector<double> out(baselineErrors.size());
  for (std::size_t t = 0; t < baselineErrors.size(); ++t) {
    ICTM_REQUIRE(baselineErrors[t] > 0.0, "baseline error must be positive");
    out[t] = 100.0 * (baselineErrors[t] - candidateErrors[t]) /
             baselineErrors[t];
  }
  return out;
}

double Mean(const std::vector<double>& xs) {
  ICTM_REQUIRE(!xs.empty(), "mean of empty series");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

}  // namespace ictm::core
