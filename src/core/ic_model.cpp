#include "core/ic_model.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace ictm::core {

void IcParameters::validate() const {
  ICTM_REQUIRE(f > 0.0 && f < 1.0, "f must lie in (0,1)");
  ICTM_REQUIRE(!activity.empty(), "activity vector is empty");
  ICTM_REQUIRE(activity.size() == preference.size(),
               "activity/preference size mismatch");
  double prefSum = 0.0;
  for (double a : activity) ICTM_REQUIRE(a >= 0.0, "negative activity");
  for (double p : preference) {
    ICTM_REQUIRE(p >= 0.0, "negative preference");
    prefSum += p;
  }
  ICTM_REQUIRE(prefSum > 0.0, "all preferences are zero");
}

linalg::Matrix EvaluateSimplifiedIc(const IcParameters& params) {
  params.validate();
  const std::size_t n = params.nodeCount();
  const double prefSum = linalg::Sum(params.preference);
  linalg::Matrix tm(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double pnj = params.preference[j] / prefSum;
      const double pni = params.preference[i] / prefSum;
      tm(i, j) = params.f * params.activity[i] * pnj +
                 (1.0 - params.f) * params.activity[j] * pni;
    }
  }
  return tm;
}

linalg::Matrix EvaluateGeneralIc(const linalg::Matrix& forwardFractions,
                                 const linalg::Vector& activity,
                                 const linalg::Vector& preference) {
  const std::size_t n = activity.size();
  ICTM_REQUIRE(n > 0, "empty activity vector");
  ICTM_REQUIRE(preference.size() == n, "preference size mismatch");
  ICTM_REQUIRE(forwardFractions.rows() == n && forwardFractions.cols() == n,
               "forward-fraction matrix shape mismatch");
  double prefSum = 0.0;
  for (double p : preference) {
    ICTM_REQUIRE(p >= 0.0, "negative preference");
    prefSum += p;
  }
  ICTM_REQUIRE(prefSum > 0.0, "all preferences are zero");
  for (double a : activity) ICTM_REQUIRE(a >= 0.0, "negative activity");

  linalg::Matrix tm(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double fij = forwardFractions(i, j);
      const double fji = forwardFractions(j, i);
      ICTM_REQUIRE(fij >= 0.0 && fij <= 1.0, "f_ij out of [0,1]");
      // Eq. (1): forward share of i-initiated connections to j, plus
      // reverse share of j-initiated connections to i.
      tm(i, j) = fij * activity[i] * preference[j] / prefSum +
                 (1.0 - fji) * activity[j] * preference[i] / prefSum;
    }
  }
  return tm;
}

traffic::TrafficMatrixSeries EvaluateStableFP(
    double f, const linalg::Matrix& activitySeries,
    const linalg::Vector& preference, double binSeconds,
    std::size_t threads) {
  const std::size_t n = activitySeries.rows();
  const std::size_t bins = activitySeries.cols();
  ICTM_REQUIRE(preference.size() == n, "preference size mismatch");
  traffic::TrafficMatrixSeries series(n, bins, binSeconds);
  // Each bin writes only its own n x n block, so the fan-out is
  // bit-identical for every thread count.
  ParallelFor(0, bins, threads, [&](std::size_t t) {
    IcParameters params;
    params.f = f;
    params.activity = activitySeries.col(t);
    params.preference = preference;
    series.setBin(t, EvaluateSimplifiedIc(params));
  });
  return series;
}

linalg::Matrix BuildActivityOperator(double f,
                                     const linalg::Vector& preference) {
  ICTM_REQUIRE(f > 0.0 && f < 1.0, "f must lie in (0,1)");
  const std::size_t n = preference.size();
  ICTM_REQUIRE(n > 0, "empty preference vector");
  const double prefSum = linalg::Sum(preference);
  ICTM_REQUIRE(prefSum > 0.0, "all preferences are zero");

  linalg::Matrix phi(n * n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t row = i * n + j;
      // X_ij = f * Pn_j * A_i + (1-f) * Pn_i * A_j.
      phi(row, i) += f * preference[j] / prefSum;
      phi(row, j) += (1.0 - f) * preference[i] / prefSum;
    }
  }
  return phi;
}

double ConditionalEgressProbability(const linalg::Matrix& tm,
                                    std::size_t ingress,
                                    std::size_t egress) {
  ICTM_REQUIRE(tm.rows() == tm.cols(), "TM must be square");
  ICTM_REQUIRE(ingress < tm.rows() && egress < tm.cols(),
               "node index out of range");
  double rowSum = 0.0;
  for (std::size_t j = 0; j < tm.cols(); ++j) rowSum += tm(ingress, j);
  ICTM_REQUIRE(rowSum > 0.0, "no traffic enters at the given node");
  return tm(ingress, egress) / rowSum;
}

double EgressProbability(const linalg::Matrix& tm, std::size_t egress) {
  ICTM_REQUIRE(tm.rows() == tm.cols(), "TM must be square");
  ICTM_REQUIRE(egress < tm.cols(), "node index out of range");
  double colSum = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < tm.rows(); ++i) {
    for (std::size_t j = 0; j < tm.cols(); ++j) {
      total += tm(i, j);
      if (j == egress) colSum += tm(i, j);
    }
  }
  ICTM_REQUIRE(total > 0.0, "empty traffic matrix");
  return colSum / total;
}

linalg::Matrix BuildFig2ExampleTm() {
  // Node volumes per connection direction: A: 100, B: 2, C: 1.
  // Each node initiates one connection to each of {A, B, C}; forward
  // and reverse volumes are equal (the example's simplifying
  // assumption), so a connection i->j adds v to X_ij and v to X_ji
  // (2v to X_ii when i == j).
  const linalg::Vector volume = {100.0, 2.0, 1.0};
  linalg::Matrix tm(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      tm(i, j) += volume[i];  // forward of i-initiated connection to j
      tm(j, i) += volume[i];  // its reverse traffic
    }
  }
  return tm;
}

}  // namespace ictm::core
