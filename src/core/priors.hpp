// TM-estimation priors — paper Sec. 6.
//
// Three IC-based priors matching the paper's three measurement
// scenarios, plus the gravity prior they are compared against:
//
//  1. measured (Sec. 6.1): f, {P_i}, {A_i(t)} all known (from a fit)
//     — the prior is just the model evaluation;
//  2. stable-fP (Sec. 6.2): f and {P_i} known from an earlier week;
//     {A_i(t)} estimated from current ingress/egress counts via the
//     pseudo-inverse of Q*Phi (Eqs. 7-9);
//  3. stable-f (Sec. 6.3): only f known; both {A_i} and {P_i} come
//     from the closed forms (Eqs. 11-12) on the current marginals.
#pragma once

#include "core/ic_model.hpp"
#include "linalg/matrix.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

/// Ingress/egress marginal time series (what SNMP gives an operator):
/// each matrix is n x T, column t = the marginal vector at bin t.
struct MarginalSeries {
  linalg::Matrix ingress;  ///< n x T, column t = X_i*(t)
  linalg::Matrix egress;   ///< n x T, column t = X_*j(t)

  /// Number of nodes n.
  std::size_t nodeCount() const noexcept { return ingress.rows(); }
  /// Number of time bins T.
  std::size_t binCount() const noexcept { return ingress.cols(); }
  /// Throws unless both matrices are n x T with non-negative entries.
  void validate() const;
};

/// Extracts the marginal series of an observed TM series.
MarginalSeries ExtractMarginals(const traffic::TrafficMatrixSeries& series);

/// Gravity prior: per bin, X_ij = in_i * out_j / total (Sec. 2).
traffic::TrafficMatrixSeries GravityPriorSeries(
    const MarginalSeries& marginals, double binSeconds = 300.0);

/// Stable-fP prior (Eqs. 7-9).  Returns the prior series; when
/// `outActivities` is non-null it receives the estimated n x T matrix
/// Atilde (useful for diagnostics).  Negative model outputs (possible
/// because the pseudo-inverse is unconstrained) are clamped to zero.
traffic::TrafficMatrixSeries StableFPPrior(
    double f, const linalg::Vector& preference,
    const MarginalSeries& marginals, double binSeconds = 300.0,
    linalg::Matrix* outActivities = nullptr);

/// Closed-form stable-f estimates from one bin's marginals (Eqs. 11-12).
/// Throws when |2f - 1| < 1e-6 (the system loses rank at f = 1/2).
/// Negative estimates are clamped to zero (noise can produce them).
struct StableFEstimates {
  linalg::Vector activity;    ///< Atilde, length n
  linalg::Vector preference;  ///< Ptilde, normalised to sum 1
};
StableFEstimates EstimateStableFParameters(double f,
                                           const linalg::Vector& ingress,
                                           const linalg::Vector& egress);

/// Stable-f prior over a whole marginal series: per bin, estimate
/// (Atilde, Ptilde) via Eqs. 11-12 and evaluate Eq. 4.
traffic::TrafficMatrixSeries StableFPrior(double f,
                                          const MarginalSeries& marginals,
                                          double binSeconds = 300.0);

}  // namespace ictm::core
