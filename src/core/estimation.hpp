// TM estimation from link loads — the tomogravity blueprint of paper
// Sec. 6:
//   Step 1: pick a prior xinit (gravity or one of the IC priors),
//   Step 2: least-squares refinement respecting the link equations
//           Y = R x (Zhang et al. [22]: minimise the prior-weighted
//           deviation subject to the link constraints),
//   Step 3: iterative proportional fitting onto the measured
//           ingress/egress marginals.
#pragma once

#include <cstddef>
#include <vector>

#include "core/priors.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::core {

/// Options for the estimation pipeline.
struct EstimationOptions {
  /// Append the marginal equations (Q x = [ingress; egress]) to the
  /// link system, as operators do (access-link SNMP counters).
  bool useMarginalConstraints = true;
  /// Ridge added to the normal-equations diagonal, relative to its
  /// trace, making the solve robust to rank deficiency.
  double relativeRidge = 1e-10;
  std::size_t ipfIterations = 100;  ///< max IPF iterations (step 3)
  double ipfTolerance = 1e-9;       ///< IPF marginal convergence tolerance
  /// Worker threads for EstimateSeries' per-bin fan-out (bins are
  /// independent, so results are bit-identical for any value); 0 means
  /// all hardware threads.
  std::size_t threads = 1;
};

/// The augmented measurement operator A = [R; Q] compressed once into
/// column form: one column per OD pair holding that pair's few path
/// links plus (with marginal constraints) its ingress and egress rows.
/// Built once per routing matrix and shared read-only by every bin
/// solver — batch (EstimateSeries) and streaming
/// (stream::StreamingEstimator) consume the same system, which is what
/// makes their estimates bit-identical.
class AugmentedTmSystem {
 public:
  /// Compresses `routing` (links x n²) plus, when `marginalConstraints`
  /// is set, the 2n ingress/egress rows.
  AugmentedTmSystem(const linalg::CsrMatrix& routing, std::size_t nodes,
                    bool marginalConstraints);

  /// Number of nodes n.
  std::size_t nodeCount() const noexcept { return n_; }
  /// Number of routing-matrix rows (directed links).
  std::size_t linkCount() const noexcept { return links_; }
  /// Total rows: links (+ 2n with marginal constraints).
  std::size_t rowCount() const noexcept { return rows_; }
  /// The compressed operator (rowCount() x n²).
  const linalg::CscMatrix& matrix() const noexcept { return a_; }

 private:
  std::size_t n_ = 0;
  std::size_t links_ = 0;
  std::size_t rows_ = 0;
  linalg::CscMatrix a_;
};

/// One bin of the three-step pipeline (Sec. 6) with reusable scratch:
/// prior-weighted least-squares refinement of the prior against the
/// link loads (and marginals), clamped non-negative, then IPF onto the
/// marginals.  Create one solver per worker thread; Solve may be called
/// repeatedly and performs the exact same floating-point operations
/// regardless of which solver instance runs it, so any fan-out over
/// bins is bit-identical to a serial sweep.
class TmBinSolver {
 public:
  /// Binds the solver to a shared system (which must outlive it).
  explicit TmBinSolver(const AugmentedTmSystem& system,
                       const EstimationOptions& options = {});

  /// Solves one bin.  `linkLoads` has linkCount() elements, `priorBin`
  /// and `outBin` are row-major n x n buffers in FlattenTm order (they
  /// may not alias), `ingress`/`egress` have n elements.
  void Solve(const double* linkLoads, const double* priorBin,
             const double* ingress, const double* egress, double* outBin);

 private:
  const AugmentedTmSystem& system_;
  EstimationOptions options_;
  std::vector<double> d_;  // rows: rhs, then the dual solution
  std::vector<double> m_;  // rows x rows: normal matrix, then its factor
};

/// Iterative proportional fitting: rescales rows and columns of `tm`
/// until row sums match `rowTargets` and column sums match
/// `colTargets` (within tolerance).  All-zero rows/columns whose
/// target is positive are seeded uniformly first.
linalg::Matrix Ipf(linalg::Matrix tm, const linalg::Vector& rowTargets,
                   const linalg::Vector& colTargets,
                   std::size_t maxIterations = 100, double tolerance = 1e-9);

/// One bin of tomogravity refinement: returns the estimate
///   x = xp + W R^T (R W R^T + ridge)^-1 (y - R xp),   W = diag(xp),
/// clamped non-negative and IPF'd to the marginals.  The sparse
/// overload is the primary implementation; the dense one compresses
/// `routing` first and produces identical results.
linalg::Matrix EstimateTmBin(const linalg::CsrMatrix& routing,
                             const linalg::Vector& linkLoads,
                             const linalg::Matrix& prior,
                             const linalg::Vector& ingress,
                             const linalg::Vector& egress,
                             const EstimationOptions& options = {});
linalg::Matrix EstimateTmBin(const linalg::Matrix& routing,
                             const linalg::Vector& linkLoads,
                             const linalg::Matrix& prior,
                             const linalg::Vector& ingress,
                             const linalg::Vector& egress,
                             const EstimationOptions& options = {});

/// Full-series estimation: per bin, computes true link loads from
/// `truth` via the routing matrix (simulating SNMP), runs the
/// three-step pipeline with `priors`, and returns the estimated series.
/// The augmented system is compressed once and shared by all bins, and
/// bins fan out across `options.threads` workers; every thread count
/// yields bit-identical estimates.  The dense overload compresses
/// `routing` first and produces identical results.
traffic::TrafficMatrixSeries EstimateSeries(
    const linalg::CsrMatrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options = {});
traffic::TrafficMatrixSeries EstimateSeries(
    const linalg::Matrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options = {});

}  // namespace ictm::core
