// TM estimation from link loads — the tomogravity blueprint of paper
// Sec. 6:
//   Step 1: pick a prior xinit (gravity or one of the IC priors),
//   Step 2: least-squares refinement respecting the link equations
//           Y = R x (Zhang et al. [22]: minimise the prior-weighted
//           deviation subject to the link constraints),
//   Step 3: iterative proportional fitting onto the measured
//           ingress/egress marginals.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "core/priors.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "traffic/tm_series.hpp"

namespace ictm::linalg {
class FrozenNormalPreconditioner;  // linalg/pcg.hpp
class SparseNormalAnalysis;        // linalg/sparse_chol.hpp
}  // namespace ictm::linalg

namespace ictm::core {

class SolverBackend;  // core/solver_backend.hpp

/// How each bin's normal equations are solved (see
/// core/solver_backend.hpp for the backend layer).
enum class SolverKind {
  kAuto,    ///< dense below kAutoSolverRowThreshold rows, cg at/above
  kDense,   ///< dense normal matrix + blocked in-place Cholesky
  kSparse,  ///< fill-reducing sparse Cholesky, symbolic shared per system
  kCg,      ///< matrix-free CG, frozen-Gram preconditioner per system
};

/// Stable lowercase name of a solver kind ("auto", "dense", "sparse",
/// "cg") for CLI/JSON reporting.
const char* SolverKindName(SolverKind kind) noexcept;

/// Parses a solver-kind name as accepted by `--solver`; returns false
/// (leaving `out` untouched) on anything else.
bool ParseSolverKind(std::string_view name, SolverKind* out) noexcept;

/// Options for the estimation pipeline.
struct EstimationOptions {
  /// Append the marginal equations (Q x = [ingress; egress]) to the
  /// link system, as operators do (access-link SNMP counters).
  bool useMarginalConstraints = true;
  /// Ridge added to the normal-equations diagonal, relative to its
  /// trace, making the solve robust to rank deficiency.
  double relativeRidge = 1e-10;
  std::size_t ipfIterations = 100;  ///< max IPF iterations (step 3)
  double ipfTolerance = 1e-9;       ///< IPF marginal convergence tolerance
  /// Worker threads for EstimateSeries' per-bin fan-out (bins are
  /// independent, so results are bit-identical for any value); 0 means
  /// all hardware threads.
  std::size_t threads = 1;
  /// Backend for the per-bin normal-equations solve.  Every backend is
  /// bit-identical across thread counts and agrees with kDense to
  /// solver tolerance; kAuto picks by problem size.
  SolverKind solver = SolverKind::kAuto;
};

/// Rows of the augmented operator for a routing matrix with `links`
/// rows over `nodes` nodes: links plus, with marginal constraints,
/// the 2·nodes ingress/egress rows.  The one formula every layer that
/// predicts or reports a solver resolution shares.
inline std::size_t AugmentedRowCount(std::size_t links, std::size_t nodes,
                                     bool marginalConstraints) noexcept {
  return marginalConstraints ? links + 2 * nodes : links;
}

/// The augmented measurement operator A = [R; Q] compressed once into
/// column form: one column per OD pair holding that pair's few path
/// links plus (with marginal constraints) its ingress and egress rows.
/// Built once per routing matrix and shared read-only by every bin
/// solver — batch (EstimateSeries) and streaming
/// (stream::StreamingEstimator) consume the same system, which is what
/// makes their estimates bit-identical.
class AugmentedTmSystem {
 public:
  /// Compresses `routing` (links x n²) plus, when `marginalConstraints`
  /// is set, the 2n ingress/egress rows.
  AugmentedTmSystem(const linalg::CsrMatrix& routing, std::size_t nodes,
                    bool marginalConstraints);
  ~AugmentedTmSystem();  ///< out of line for the lazy shared analyses

  /// Number of nodes n.
  std::size_t nodeCount() const noexcept { return n_; }
  /// Number of routing-matrix rows (directed links).
  std::size_t linkCount() const noexcept { return links_; }
  /// Total rows: links (+ 2n with marginal constraints).
  std::size_t rowCount() const noexcept { return rows_; }
  /// The compressed operator (rowCount() x n²).
  const linalg::CscMatrix& matrix() const noexcept { return a_; }

  /// The sparse-Cholesky analysis (pattern, fill-reducing ordering,
  /// symbolic factor, assembly map) of this system's normal operator.
  /// Built lazily on first use — the weight-independent part of the
  /// sparse backend — then shared read-only by every bin solver and
  /// worker thread.  Thread-safe.
  const linalg::SparseNormalAnalysis& sparseAnalysis() const;

  /// The frozen (unweighted-Gram) CG preconditioner of this system's
  /// normal operator — the cg backend's weight-independent setup,
  /// with the same lazy once-per-system sharing as sparseAnalysis().
  /// Thread-safe.
  const linalg::FrozenNormalPreconditioner& cgPreconditioner() const;

 private:
  std::size_t n_ = 0;
  std::size_t links_ = 0;
  std::size_t rows_ = 0;
  linalg::CscMatrix a_;
  mutable std::once_flag sparseOnce_;
  mutable std::unique_ptr<linalg::SparseNormalAnalysis> sparse_;
  mutable std::once_flag cgOnce_;
  mutable std::unique_ptr<linalg::FrozenNormalPreconditioner> cgPrecond_;
};

/// One bin of the three-step pipeline (Sec. 6) with reusable scratch:
/// prior-weighted least-squares refinement of the prior against the
/// link loads (and marginals), clamped non-negative, then IPF onto the
/// marginals.  Create one solver per worker thread; Solve may be called
/// repeatedly and performs the exact same floating-point operations
/// regardless of which solver instance runs it, so any fan-out over
/// bins is bit-identical to a serial sweep.
class TmBinSolver {
 public:
  /// Binds the solver to a shared system (which must outlive it) and
  /// builds the backend selected by `options.solver` with its
  /// per-thread workspace.
  explicit TmBinSolver(const AugmentedTmSystem& system,
                       const EstimationOptions& options = {});
  ~TmBinSolver();  ///< out of line for the backend's incomplete type

  TmBinSolver(const TmBinSolver&) = delete;             ///< non-copyable
  TmBinSolver& operator=(const TmBinSolver&) = delete;  ///< non-copyable

  /// Solves one bin.  `linkLoads` has linkCount() elements, `priorBin`
  /// and `outBin` are row-major n x n buffers in FlattenTm order (they
  /// may not alias), `ingress`/`egress` have n elements.
  void Solve(const double* linkLoads, const double* priorBin,
             const double* ingress, const double* egress, double* outBin);

  /// Name of the backend actually in use ("dense", "sparse", "cg") —
  /// kAuto resolved by system size.
  const char* solverName() const noexcept;

 private:
  const AugmentedTmSystem& system_;
  EstimationOptions options_;
  std::vector<double> d_;  // rows: rhs, then the dual solution
  std::unique_ptr<SolverBackend> backend_;  // per-thread solve workspace
};

/// Iterative proportional fitting: rescales rows and columns of `tm`
/// until row sums match `rowTargets` and column sums match
/// `colTargets` (within tolerance).  All-zero rows/columns whose
/// target is positive are seeded uniformly first.
linalg::Matrix Ipf(linalg::Matrix tm, const linalg::Vector& rowTargets,
                   const linalg::Vector& colTargets,
                   std::size_t maxIterations = 100, double tolerance = 1e-9);

/// One bin of tomogravity refinement: returns the estimate
///   x = xp + W R^T (R W R^T + ridge)^-1 (y - R xp),   W = diag(xp),
/// clamped non-negative and IPF'd to the marginals.  The sparse
/// overload is the primary implementation; the dense one compresses
/// `routing` first and produces identical results.
linalg::Matrix EstimateTmBin(const linalg::CsrMatrix& routing,
                             const linalg::Vector& linkLoads,
                             const linalg::Matrix& prior,
                             const linalg::Vector& ingress,
                             const linalg::Vector& egress,
                             const EstimationOptions& options = {});
linalg::Matrix EstimateTmBin(const linalg::Matrix& routing,
                             const linalg::Vector& linkLoads,
                             const linalg::Matrix& prior,
                             const linalg::Vector& ingress,
                             const linalg::Vector& egress,
                             const EstimationOptions& options = {});

/// Full-series estimation: per bin, computes true link loads from
/// `truth` via the routing matrix (simulating SNMP), runs the
/// three-step pipeline with `priors`, and returns the estimated series.
/// The augmented system is compressed once and shared by all bins, and
/// bins fan out across `options.threads` workers; every thread count
/// yields bit-identical estimates.  The dense overload compresses
/// `routing` first and produces identical results.
traffic::TrafficMatrixSeries EstimateSeries(
    const linalg::CsrMatrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options = {});
traffic::TrafficMatrixSeries EstimateSeries(
    const linalg::Matrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options = {});

/// EstimateSeries against a caller-owned augmented system, so repeated
/// runs over the same topology (benchmark sweeps, per-backend
/// comparisons, re-estimation services) reuse one compression and the
/// backends' shared per-system setup.  `system` must have been built
/// from `routing` with `options.useMarginalConstraints`.
traffic::TrafficMatrixSeries EstimateSeries(
    const AugmentedTmSystem& system, const linalg::CsrMatrix& routing,
    const traffic::TrafficMatrixSeries& truth,
    const traffic::TrafficMatrixSeries& priors,
    const EstimationOptions& options = {});

}  // namespace ictm::core
