#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace ictm::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    ICTM_REQUIRE(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix{};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ICTM_REQUIRE(rows[r].size() == m.cols_, "ragged row list");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::FromColumn(const Vector& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  ICTM_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  ICTM_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
  ICTM_REQUIRE(r < rows_, "row index out of range");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
  ICTM_REQUIRE(c < cols_, "column index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::setRow(std::size_t r, const Vector& v) {
  ICTM_REQUIRE(r < rows_, "row index out of range");
  ICTM_REQUIRE(v.size() == cols_, "row length mismatch");
  std::copy(v.begin(), v.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::setCol(std::size_t c, const Vector& v) {
  ICTM_REQUIRE(c < cols_, "column index out of range");
  ICTM_REQUIRE(v.size() == rows_, "column length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  ICTM_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  ICTM_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Matrix::frobeniusNorm() const {
  // Scaled two-pass form: avoids overflow for entries near
  // sqrt(DBL_MAX) (huge byte counts squared can exceed the double
  // range).
  const double scale = maxAbs();
  if (scale == 0.0) return 0.0;
  double acc = 0.0;
  for (double x : data_) {
    const double r = x / scale;
    acc += r * r;
  }
  return scale * std::sqrt(acc);
}

double Matrix::maxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t rows,
                     std::size_t cols) const {
  ICTM_REQUIRE(r0 + rows <= rows_ && c0 + cols <= cols_,
               "block does not fit inside matrix");
  Matrix b(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) b(r, c) = (*this)(r0 + r, c0 + c);
  return b;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  ICTM_REQUIRE(a.cols() == b.rows(), "inner dimension mismatch in product");
  Matrix c(a.rows(), b.cols(), 0.0);
  // ikj loop order keeps the inner loop contiguous in both b and c.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& v) {
  ICTM_REQUIRE(a.cols() == v.size(), "dimension mismatch in matrix*vector");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * v[j];
    y[i] = acc;
  }
  return y;
}

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() && a.data() == b.data();
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

bool AlmostEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

double Dot(const Vector& a, const Vector& b) {
  ICTM_REQUIRE(a.size() == b.size(), "size mismatch in Dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

double Sum(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

Vector Add(const Vector& a, const Vector& b) {
  ICTM_REQUIRE(a.size() == b.size(), "size mismatch in Add");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vector Sub(const Vector& a, const Vector& b) {
  ICTM_REQUIRE(a.size() == b.size(), "size mismatch in Sub");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Vector Scale(const Vector& v, double s) {
  Vector r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = v[i] * s;
  return r;
}

void Axpy(double alpha, const Vector& x, Vector& y) {
  ICTM_REQUIRE(x.size() == y.size(), "size mismatch in Axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector TransposeTimes(const Matrix& a, const Vector& v) {
  ICTM_REQUIRE(a.rows() == v.size(), "dimension mismatch in TransposeTimes");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += a(i, j) * vi;
  }
  return y;
}

double MaxAbs(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace ictm::linalg
