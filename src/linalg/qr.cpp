#include "linalg/qr.hpp"

#include <cmath>

namespace ictm::linalg {

HouseholderQR::HouseholderQR(const Matrix& a) : qr_(a) {
  ICTM_REQUIRE(a.rows() >= a.cols(),
               "HouseholderQR requires rows() >= cols()");
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  betas_.assign(n, 0.0);
  diagR_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Norm of the k-th column below (and including) the diagonal.
    double normx = 0.0;
    for (std::size_t i = k; i < m; ++i) normx = std::hypot(normx, qr_(i, k));
    if (normx == 0.0) {
      betas_[k] = 0.0;
      diagR_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -normx : normx;
    // Householder vector v = x - alpha*e1, stored in the column below
    // (and including) the diagonal; beta = 2 / ||v||^2.
    qr_(k, k) -= alpha;
    double v2 = 0.0;
    for (std::size_t i = k; i < m; ++i) v2 += qr_(i, k) * qr_(i, k);
    betas_[k] = v2 == 0.0 ? 0.0 : 2.0 / v2;
    diagR_[k] = alpha;

    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += qr_(i, k) * qr_(i, j);
      const double s = betas_[k] * dot;
      for (std::size_t i = k; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

void HouseholderQR::applyQTranspose(Vector& v) const {
  ICTM_REQUIRE(v.size() == qr_.rows(), "vector length mismatch");
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (betas_[k] == 0.0) continue;
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += qr_(i, k) * v[i];
    const double s = betas_[k] * dot;
    for (std::size_t i = k; i < m; ++i) v[i] -= s * qr_(i, k);
  }
}

std::size_t HouseholderQR::rank(double rankTol) const {
  double dmax = 0.0;
  for (double d : diagR_) dmax = std::max(dmax, std::fabs(d));
  if (dmax == 0.0) return 0;
  std::size_t r = 0;
  for (double d : diagR_) {
    if (std::fabs(d) > rankTol * dmax) ++r;
  }
  return r;
}

Vector HouseholderQR::solve(const Vector& b, double rankTol) const {
  ICTM_REQUIRE(b.size() == qr_.rows(), "rhs length mismatch");
  const std::size_t n = qr_.cols();
  ICTM_REQUIRE(rank(rankTol) == n,
               "HouseholderQR::solve: matrix is rank deficient");
  Vector qtb = b;
  applyQTranspose(qtb);
  // Back substitution on R x = (Q^T b)[0..n).
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= qr_(ii, j) * x[j];
    x[ii] = acc / diagR_[ii];
  }
  return x;
}

Matrix HouseholderQR::solve(const Matrix& b, double rankTol) const {
  ICTM_REQUIRE(b.rows() == qr_.rows(), "rhs row count mismatch");
  Matrix x(qr_.cols(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    x.setCol(c, solve(b.col(c), rankTol));
  }
  return x;
}

Matrix HouseholderQR::thinR() const {
  const std::size_t n = qr_.cols();
  Matrix r(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    r(i, i) = diagR_[i];
    for (std::size_t j = i + 1; j < n; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Matrix HouseholderQR::thinQ() const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  Matrix q(m, n, 0.0);
  // Apply the stored reflectors to the first n columns of the identity:
  // Q e_j = H_0 H_1 ... H_{n-1} e_j, reflectors applied in reverse order.
  for (std::size_t j = 0; j < n; ++j) {
    Vector e(m, 0.0);
    e[j] = 1.0;
    for (std::size_t kk = n; kk-- > 0;) {
      if (betas_[kk] == 0.0) continue;
      double dot = 0.0;
      for (std::size_t i = kk; i < m; ++i) dot += qr_(i, kk) * e[i];
      const double s = betas_[kk] * dot;
      for (std::size_t i = kk; i < m; ++i) e[i] -= s * qr_(i, kk);
    }
    q.setCol(j, e);
  }
  return q;
}

}  // namespace ictm::linalg
