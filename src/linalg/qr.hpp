// Householder QR factorisation and QR-based least-squares solving.
#pragma once

#include "linalg/matrix.hpp"

namespace ictm::linalg {

/// Householder QR factorisation of an m x n matrix with m >= n.
///
/// Stores the factorisation in compact form (Householder vectors in the
/// lower triangle, R in the upper triangle) and exposes least-squares
/// solving, rank estimation and explicit Q/R extraction.
class HouseholderQR {
 public:
  /// Factors `a` (rows() >= cols() required).  O(m n^2).
  explicit HouseholderQR(const Matrix& a);

  std::size_t rows() const noexcept { return qr_.rows(); }
  std::size_t cols() const noexcept { return qr_.cols(); }

  /// Minimum-residual solution of `a x = b` in the least-squares sense.
  /// Throws when the factored matrix is rank deficient beyond `rankTol`
  /// relative to the largest diagonal of R.
  Vector solve(const Vector& b, double rankTol = 1e-12) const;

  /// Solves for each column of B; returns a cols() x B.cols() matrix.
  Matrix solve(const Matrix& b, double rankTol = 1e-12) const;

  /// Numerical rank: number of diagonal entries of R above
  /// rankTol * max|diag(R)|.
  std::size_t rank(double rankTol = 1e-12) const;

  /// Applies Q^T to a vector of length rows() (in place).
  void applyQTranspose(Vector& v) const;

  /// Explicit n x n upper-triangular R factor (thin form).
  Matrix thinR() const;

  /// Explicit m x n orthonormal Q factor (thin form).
  Matrix thinQ() const;

 private:
  Matrix qr_;          // compact Householder storage
  Vector betas_;       // Householder scalars
  Vector diagR_;       // diagonal of R
};

}  // namespace ictm::linalg
