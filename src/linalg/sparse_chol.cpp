#include "linalg/sparse_chol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"

namespace ictm::linalg {

namespace {

// Merges `extra` (sorted, alive-only) into sorted `dst`, dropping
// `skip`, in place via a scratch buffer.
void MergeInto(std::vector<std::uint32_t>& dst,
               const std::vector<std::uint32_t>& extra, std::uint32_t skipA,
               std::uint32_t skipB, std::vector<std::uint32_t>& scratch) {
  scratch.clear();
  scratch.reserve(dst.size() + extra.size());
  std::size_t i = 0, j = 0;
  while (i < dst.size() || j < extra.size()) {
    std::uint32_t v;
    if (j >= extra.size() || (i < dst.size() && dst[i] <= extra[j])) {
      v = dst[i];
      if (j < extra.size() && extra[j] == v) ++j;  // duplicate
      ++i;
    } else {
      v = extra[j++];
    }
    if (v != skipA && v != skipB) scratch.push_back(v);
  }
  dst.swap(scratch);
}

}  // namespace

SparseNormalAnalysis::SparseNormalAnalysis(const CscMatrix& a)
    : m_(a.rows()) {
  ICTM_REQUIRE(m_ < std::numeric_limits<std::uint32_t>::max(),
               "normal operator too large for the sparse analysis");
  const auto& colPtr = a.colPtr();
  const auto& rowIdx = a.rowIdx();
  const std::size_t cols = a.cols();

  // ---- initial adjacency of the M graph (union of per-column cliques)
  std::vector<std::vector<std::uint32_t>> adj(m_);
  {
    // Two passes: count then fill, then sort/unique per vertex.
    std::vector<std::size_t> count(m_, 0);
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t k = colPtr[c + 1] - colPtr[c];
      if (k < 2) continue;
      for (std::size_t p = colPtr[c]; p < colPtr[c + 1]; ++p) {
        count[rowIdx[p]] += k - 1;
      }
    }
    for (std::size_t v = 0; v < m_; ++v) adj[v].reserve(count[v]);
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t lo = colPtr[c], hi = colPtr[c + 1];
      if (hi - lo < 2) continue;
      for (std::size_t p1 = lo; p1 < hi; ++p1) {
        const std::uint32_t r1 = static_cast<std::uint32_t>(rowIdx[p1]);
        for (std::size_t p2 = lo; p2 < hi; ++p2) {
          if (p2 == p1) continue;
          adj[r1].push_back(static_cast<std::uint32_t>(rowIdx[p2]));
        }
      }
    }
    for (std::size_t v = 0; v < m_; ++v) {
      std::sort(adj[v].begin(), adj[v].end());
      adj[v].erase(std::unique(adj[v].begin(), adj[v].end()),
                   adj[v].end());
    }
  }

  // ---- greedy minimum-degree ordering with symbolic capture --------
  // Eliminating v turns its neighbourhood into a clique; that
  // neighbourhood is exactly the below-diagonal pattern of v's factor
  // column, so ordering and symbolic factorization are one pass.  The
  // moment every remaining vertex has full degree the residual graph
  // is a clique (the marginal rows always end this way) and the tail
  // is ordered densely without further graph updates.
  iperm_.assign(m_, 0);
  perm_.assign(m_, 0);
  std::vector<std::vector<std::uint32_t>> colPattern(m_);
  std::vector<bool> eliminated(m_, false);
  std::vector<std::uint32_t> scratch;
  std::size_t alive = m_;
  std::size_t pos = 0;
  while (alive > 0) {
    std::uint32_t best = 0;
    std::size_t bestDeg = std::numeric_limits<std::size_t>::max();
    for (std::uint32_t v = 0; v < m_; ++v) {
      if (!eliminated[v] && adj[v].size() < bestDeg) {
        bestDeg = adj[v].size();
        best = v;
      }
    }
    if (bestDeg + 1 == alive) {
      // Residual clique: order the tail by original index.  Each tail
      // column's pattern is the set of later tail vertices.
      std::vector<std::uint32_t> tail;
      tail.reserve(alive);
      for (std::uint32_t v = 0; v < m_; ++v) {
        if (!eliminated[v]) tail.push_back(v);
      }
      for (std::size_t t = 0; t < tail.size(); ++t) {
        const std::uint32_t v = tail[t];
        eliminated[v] = true;
        iperm_[pos] = v;
        perm_[v] = static_cast<std::uint32_t>(pos);
        ++pos;
        colPattern[v].assign(tail.begin() + t + 1, tail.end());
      }
      break;
    }

    const std::uint32_t v = best;
    eliminated[v] = true;
    iperm_[pos] = v;
    perm_[v] = static_cast<std::uint32_t>(pos);
    ++pos;
    --alive;
    std::vector<std::uint32_t> nbrs = std::move(adj[v]);
    adj[v].clear();
    for (const std::uint32_t u : nbrs) {
      MergeInto(adj[u], nbrs, u, v, scratch);
    }
    colPattern[v] = std::move(nbrs);
  }

  // ---- factor pattern in permuted coordinates ----------------------
  lp_.assign(m_ + 1, 0);
  std::size_t lnnz = 0;
  for (std::size_t j = 0; j < m_; ++j) lnnz += colPattern[iperm_[j]].size();
  li_.reserve(lnnz);
  for (std::size_t j = 0; j < m_; ++j) {
    std::vector<std::uint32_t>& pat = colPattern[iperm_[j]];
    for (std::uint32_t& r : pat) r = perm_[r];
    std::sort(pat.begin(), pat.end());
    li_.insert(li_.end(), pat.begin(), pat.end());
    lp_[j + 1] = static_cast<std::uint32_t>(li_.size());
    pat.clear();
    pat.shrink_to_fit();
  }

  // Transpose row lists: for each row i, the (column, offset) pairs of
  // L entries in that row, ascending in column (the natural order of a
  // column sweep).
  up_.assign(m_ + 1, 0);
  for (const std::uint32_t i : li_) ++up_[i + 1];
  for (std::size_t i = 0; i < m_; ++i) up_[i + 1] += up_[i];
  ucol_.assign(li_.size(), 0);
  uoff_.assign(li_.size(), 0);
  {
    std::vector<std::uint32_t> next(up_.begin(), up_.end() - 1);
    for (std::size_t j = 0; j < m_; ++j) {
      for (std::uint32_t k = lp_[j]; k < lp_[j + 1]; ++k) {
        const std::uint32_t slot = next[li_[k]]++;
        ucol_[slot] = static_cast<std::uint32_t>(j);
        uoff_[slot] = k;
      }
    }
  }

  // ---- lower(M) pattern + assembly scatter map ---------------------
  // Every (r1, r2) pair sharing an A-column lands in permuted
  // coordinates at column min(p1,p2), row max(p1,p2); the diagonal is
  // forced present so the ridge always has a slot.
  std::vector<std::uint64_t> positions;
  positions.reserve(m_ + 16 * cols);
  for (std::size_t j = 0; j < m_; ++j) {
    positions.push_back((static_cast<std::uint64_t>(j) << 32) | j);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t lo = colPtr[c], hi = colPtr[c + 1];
    for (std::size_t p1 = lo; p1 < hi; ++p1) {
      const std::uint32_t a1 = perm_[rowIdx[p1]];
      for (std::size_t p2 = p1; p2 < hi; ++p2) {
        const std::uint32_t a2 = perm_[rowIdx[p2]];
        const std::uint32_t cj = std::min(a1, a2);
        const std::uint32_t ri = std::max(a1, a2);
        positions.push_back((static_cast<std::uint64_t>(cj) << 32) | ri);
      }
    }
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());

  mp_.assign(m_ + 1, 0);
  mi_.resize(positions.size());
  for (std::size_t k = 0; k < positions.size(); ++k) {
    mi_[k] = static_cast<std::uint32_t>(positions[k] & 0xffffffffu);
    ++mp_[(positions[k] >> 32) + 1];
  }
  for (std::size_t j = 0; j < m_; ++j) mp_[j + 1] += mp_[j];
  diagSlot_.assign(m_, 0);
  for (std::size_t j = 0; j < m_; ++j) {
    // Diagonal is the smallest row index in a lower-triangular column.
    diagSlot_[j] = mp_[j];
  }

  auto slotOf = [&](std::uint32_t cj, std::uint32_t ri) {
    const auto first = mi_.begin() + mp_[cj];
    const auto last = mi_.begin() + mp_[cj + 1];
    const auto it = std::lower_bound(first, last, ri);
    return static_cast<std::uint32_t>(it - mi_.begin());
  };

  colPairPtr_.assign(cols + 1, 0);
  const auto& values = a.values();
  std::size_t totalPairs = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t k = colPtr[c + 1] - colPtr[c];
    totalPairs += k * (k + 1) / 2;
    colPairPtr_[c + 1] = totalPairs;
  }
  pairSlot_.resize(totalPairs);
  pairProd_.resize(totalPairs);
  std::size_t out = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t lo = colPtr[c], hi = colPtr[c + 1];
    for (std::size_t p1 = lo; p1 < hi; ++p1) {
      const std::uint32_t a1 = perm_[rowIdx[p1]];
      for (std::size_t p2 = p1; p2 < hi; ++p2) {
        const std::uint32_t a2 = perm_[rowIdx[p2]];
        pairSlot_[out] = slotOf(std::min(a1, a2), std::max(a1, a2));
        pairProd_[out] = values[p1] * values[p2];
        ++out;
      }
    }
  }
}

SparseNormalSolver::SparseNormalSolver(const SparseNormalAnalysis& analysis,
                                       double* scratch)
    : a_(analysis) {
  mvals_ = scratch;
  lv_ = mvals_ + analysis.normalNonZeros();
  ld_ = lv_ + analysis.factorNonZeros();
  work_ = ld_ + analysis.dim();
  rhs_ = work_ + analysis.dim();
  std::fill(work_, work_ + analysis.dim(), 0.0);  // kept zero between bins
}

void SparseNormalSolver::Factor(const double* weights,
                                double relativeRidge) {
  const std::size_t m = a_.m_;
  const std::size_t cols = a_.colPairPtr_.size() - 1;

  // Assemble lower(M); one weight load per A-column clique.
  std::fill(mvals_, mvals_ + a_.normalNonZeros(), 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    const double wc = weights[c];
    if (wc <= 0.0) continue;
    const std::size_t lo = a_.colPairPtr_[c], hi = a_.colPairPtr_[c + 1];
    for (std::size_t k = lo; k < hi; ++k) {
      mvals_[a_.pairSlot_[k]] += wc * a_.pairProd_[k];
    }
  }

  // Ridge, scaled by the trace exactly like the dense backend.
  double trace = 0.0;
  for (std::size_t j = 0; j < m; ++j) trace += mvals_[a_.diagSlot_[j]];
  const double ridge = std::max(trace, 1.0) * relativeRidge + 1e-30;
  for (std::size_t j = 0; j < m; ++j) mvals_[a_.diagSlot_[j]] += ridge;

  // Left-looking numeric factorization over the static pattern.  The
  // dense accumulator `work_` is kept all-zero between columns.
  double* x = work_;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::uint32_t k = a_.mp_[j]; k < a_.mp_[j + 1]; ++k) {
      x[a_.mi_[k]] = mvals_[k];
    }
    double xdiag = x[j];
    for (std::uint32_t idx = a_.up_[j]; idx < a_.up_[j + 1]; ++idx) {
      const std::uint32_t k = a_.ucol_[idx];
      const std::uint32_t off = a_.uoff_[idx];
      const double ljk = lv_[off];
      xdiag -= ljk * ljk;
      for (std::uint32_t t = off + 1; t < a_.lp_[k + 1]; ++t) {
        x[a_.li_[t]] -= ljk * lv_[t];
      }
    }
    ICTM_REQUIRE(xdiag > 0.0,
                 "matrix is not positive definite in Cholesky");
    const double diag = std::sqrt(xdiag);
    ld_[j] = diag;
    const double inv = 1.0 / diag;
    for (std::uint32_t k = a_.lp_[j]; k < a_.lp_[j + 1]; ++k) {
      lv_[k] = x[a_.li_[k]] * inv;
      x[a_.li_[k]] = 0.0;
    }
    x[j] = 0.0;
  }
}

void SparseNormalSolver::Solve(double* d) const {
  const std::size_t m = a_.m_;
  double* y = rhs_;
  for (std::size_t j = 0; j < m; ++j) y[j] = d[a_.iperm_[j]];
  // Forward: L y = b.
  for (std::size_t j = 0; j < m; ++j) {
    const double t = y[j] / ld_[j];
    y[j] = t;
    for (std::uint32_t k = a_.lp_[j]; k < a_.lp_[j + 1]; ++k) {
      y[a_.li_[k]] -= lv_[k] * t;
    }
  }
  // Backward: Lᵀ z = y.
  for (std::size_t j = m; j-- > 0;) {
    double acc = y[j];
    for (std::uint32_t k = a_.lp_[j]; k < a_.lp_[j + 1]; ++k) {
      acc -= lv_[k] * y[a_.li_[k]];
    }
    y[j] = acc / ld_[j];
  }
  for (std::size_t j = 0; j < m; ++j) d[a_.iperm_[j]] = y[j];
}

}  // namespace ictm::linalg
