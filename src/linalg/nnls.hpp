// Non-negative least squares (Lawson–Hanson active-set algorithm).
//
// The IC-model fitting procedure (paper Sec. 5.1) constrains activities
// A_i(t) >= 0 and preferences P_i >= 0; each alternating step is an
// NNLS problem solved here.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace ictm::linalg {

/// Options for the NNLS solver.
struct NnlsOptions {
  /// Maximum number of outer (active-set) iterations; the classic bound
  /// is 3n, we allow a safety factor.
  std::size_t maxIterations = 0;  // 0 => 10 * cols
  /// Dual-feasibility tolerance on the gradient.
  double tolerance = 1e-10;
};

/// Result of an NNLS solve.
struct NnlsResult {
  Vector x;              ///< solution, elementwise >= 0
  double residualNorm;   ///< ||a x - b||_2
  std::size_t iterations;
  bool converged;
};

/// Solves min_x ||a x - b||_2 subject to x >= 0 via Lawson–Hanson.
NnlsResult SolveNnls(const Matrix& a, const Vector& b,
                     const NnlsOptions& options = {});

}  // namespace ictm::linalg
