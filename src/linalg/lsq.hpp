// Least-squares solvers layered on QR/SVD, plus weighted and ridge
// variants used throughout the model-fitting and TM-estimation code.
#pragma once

#include "linalg/matrix.hpp"

namespace ictm::linalg {

/// Solves min_x ||a x - b||_2 for full-column-rank `a` via Householder
/// QR.  Falls back to the SVD minimum-norm solution when `a` is rank
/// deficient.
Vector SolveLeastSquares(const Matrix& a, const Vector& b);

/// Weighted least squares: min_x ||W^(1/2) (a x - b)||_2 where
/// `weights[i] >= 0` multiplies the squared residual of row i.
Vector SolveWeightedLeastSquares(const Matrix& a, const Vector& b,
                                 const Vector& weights);

/// Ridge regression: min_x ||a x - b||^2 + lambda ||x||^2 with
/// lambda > 0, solved via the augmented system.  Always well posed.
Vector SolveRidge(const Matrix& a, const Vector& b, double lambda);

/// Residual 2-norm ||a x - b||_2.
double ResidualNorm(const Matrix& a, const Vector& x, const Vector& b);

/// Upper Cholesky factor U (U^T U = a) of a symmetric positive-definite
/// matrix; throws when a is not (numerically) positive definite.
/// Used to reduce Gram-matrix NNLS subproblems to small dense solves.
Matrix CholeskyUpper(const Matrix& a);

/// Solves U^T y = b by forward substitution for upper-triangular U.
Vector ForwardSubstituteTranspose(const Matrix& u, const Vector& b);

/// Solves min_{x>=0} x^T G x - 2 x^T rhs for a symmetric
/// positive-semidefinite Gram matrix G (consumed by value; a tiny
/// relative ridge is added for numerical safety) via NNLS on its
/// Cholesky factor.  The unconstrained solution is tried first: when
/// it is already non-negative (the common case), the NNLS active-set
/// loop is skipped.  Shared by the stable-fP and general-IC fitters.
Vector SolveGramNnls(Matrix gram, const Vector& rhs);

/// Factors the upper triangle of a symmetric positive-definite
/// row-major n x n buffer in place (Uᵀ U = m; rank-4 blocked, nothing
/// below the diagonal is read or written).  Throws when `m` is not
/// numerically positive definite.
void CholeskyFactorInPlace(double* m, std::size_t n);

/// Substitution against a factor produced by CholeskyFactorInPlace:
/// overwrites `d` with the solution of (Uᵀ U) z = d.
void CholeskySubstituteInPlace(const double* m, double* d, std::size_t n);

/// Solves m z = d for symmetric positive-definite `m` given as a
/// row-major n x n buffer: CholeskyFactorInPlace followed by
/// CholeskySubstituteInPlace.  This is the allocation-free hot-path
/// variant of CholeskyUpper + substitution, used per bin by the TM
/// estimation fan-out.
void CholeskySolveInPlace(double* m, double* d, std::size_t n);

}  // namespace ictm::linalg
