// Euclidean projection onto the probability simplex and related
// normalisation helpers (used for preference vectors {P_i}, which the
// paper constrains to be non-negative and sum to one).
#pragma once

#include "linalg/matrix.hpp"

namespace ictm::linalg {

/// Euclidean projection of `v` onto the simplex
/// { x : x_i >= 0, sum x_i = radius } (Duchi et al. 2008 algorithm).
/// `radius` must be positive.
Vector ProjectToSimplex(const Vector& v, double radius = 1.0);

/// Clamps negatives to zero then rescales to sum to `total`.
/// Falls back to the uniform vector when everything clamps to zero.
Vector NormalizeNonNegative(const Vector& v, double total = 1.0);

}  // namespace ictm::linalg
