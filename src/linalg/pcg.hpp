// Matrix-free preconditioned conjugate gradient on the ridged
// weighted normal operator M(w) = A·diag(w)·Aᵀ + ridge·I.
//
// The per-bin operator is applied through the compressed arrays of A
// alone — q = A·(w ∘ (Aᵀp)) + ridge·p, fused per column — so the
// weighted normal matrix is never formed in the hot loop.
//
// Preconditioning exploits the estimation pipeline's structure: only
// the diagonal weights change from bin to bin, so the *unweighted*
// Gram P = A·Aᵀ + λ̄·I is factored once per augmented system
// (FrozenNormalPreconditioner, shared read-only by every worker) and
// each CG iteration solves against that frozen factor.  The
// preconditioned spectrum is contained in [min w, max w] by a
// Rayleigh-quotient argument, so iteration counts track the per-bin
// weight spread — a handful of iterations for the smooth
// gravity/IC-model priors the pipeline feeds — instead of the
// thousands a Jacobi-preconditioned iteration needs on this
// ill-conditioned system.
//
// The iteration is a fixed, single-threaded sequence of
// floating-point operations for a given (A, w, d), so results are
// bit-identical regardless of which worker thread runs the solve.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"

namespace ictm::linalg {

/// Weight-independent CG preconditioner: the dense Cholesky factor of
/// the unweighted Gram A·Aᵀ + λ̄·I (λ̄ scaled by the trace like the
/// per-bin ridge).  Built once per augmented system — the analogue of
/// the sparse backend's symbolic factorization — and shared read-only
/// across threads.
///
/// The factor is computed in double precision and stored in single:
/// the implied preconditioner U₃₂ᵀU₃₂ is still exactly symmetric
/// positive definite, the perturbation only nudges iteration counts,
/// and the triangular sweeps — the memory-bound inner loop of every
/// CG iteration — move half the bytes.  The outer iteration stays
/// entirely in double precision.
class FrozenNormalPreconditioner {
 public:
  /// Forms and factors A·Aᵀ + λ̄·I for `a` (rows x cols).
  explicit FrozenNormalPreconditioner(const CscMatrix& a);

  /// Dimension m of the factor (= a.rows()).
  std::size_t dim() const noexcept { return m_; }

  /// s := (U₃₂ᵀU₃₂)⁻¹ r (s and r have dim() elements and may not
  /// alias); double-precision accumulation against the stored
  /// single-precision factor.
  void Apply(const double* r, double* s) const;

 private:
  std::size_t m_ = 0;
  std::vector<float> factor_;  // m x m upper Cholesky factor (fp32)
};

/// Knobs for NormalPcg::Solve.
struct PcgOptions {
  /// Stop when ||r||₂ <= tolerance·||d||₂.
  double tolerance = 1e-12;
  /// Iteration cap; 0 picks 4·dim + 10 (CG terminates in at most
  /// rank(M) steps in exact arithmetic; the slack absorbs rounding).
  std::size_t maxIterations = 0;
};

/// Convergence report of one solve.
struct PcgResult {
  std::size_t iterations = 0;   ///< iterations performed
  double relativeResidual = 0;  ///< final ||r||₂ / ||d||₂
  bool converged = false;       ///< tolerance reached
};

/// Per-thread CG workspace bound to a fixed A and its shared frozen
/// preconditioner (both must outlive the solver).  Solve may be
/// called repeatedly with different weights and right-hand sides
/// without allocating.
class NormalPcg {
 public:
  /// Doubles of scratch a solver for `a` needs.
  static std::size_t RequiredScratch(const CscMatrix& a) {
    return 5 * a.rows() + a.cols();
  }

  /// Binds to `a` and `preconditioner` and carves the iteration
  /// vectors out of `scratch` (RequiredScratch(a) doubles).
  NormalPcg(const CscMatrix& a,
            const FrozenNormalPreconditioner& preconditioner,
            double* scratch);

  /// Solves (A·diag(w)·Aᵀ + ridge·I) z = d in place (d := z) with
  /// ridge = max(trace, 1)·relativeRidge + 1e-30 — the same ridge
  /// policy as the direct backends.  Columns with w <= 0 are skipped,
  /// matching WeightedGramInto.
  PcgResult Solve(const double* weights, double relativeRidge, double* d,
                  const PcgOptions& options = {});

 private:
  // Applies q = A·(w ∘ (Aᵀ p)) + ridge·p.
  void Apply(const double* weights, double ridge, const double* p,
             double* q);

  const CscMatrix& a_;
  const FrozenNormalPreconditioner& precond_;
  double* colNormSq_;  // cols-sized: per-column ||a_c||² for the trace
  double* r_;          // residual
  double* p_;          // search direction
  double* q_;          // operator application M·p
  double* s_;          // preconditioned residual
  double* x_;          // solution accumulator
};

}  // namespace ictm::linalg
