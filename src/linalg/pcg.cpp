#include "linalg/pcg.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/lsq.hpp"
#include "obs/metrics.hpp"

namespace ictm::linalg {

namespace {

// Iteration/convergence accounting (ISSUE 8 satellite): the iteration
// count and final residual of a solve are pure functions of the
// inputs (the FP sequence is fixed), so these are deterministic-class
// metrics — identical across thread counts for the same workload.
void RecordPcgMetrics(const PcgResult& result) {
  static obs::Counter& solves =
      obs::GetCounter("pcg.solves", obs::MetricClass::kDeterministic);
  static obs::Counter& iterationsTotal = obs::GetCounter(
      "pcg.iterations_total", obs::MetricClass::kDeterministic);
  static obs::Counter& converged =
      obs::GetCounter("pcg.converged", obs::MetricClass::kDeterministic);
  static obs::Counter& stalled =
      obs::GetCounter("pcg.stalled", obs::MetricClass::kDeterministic);
  static obs::Histogram& iterations = obs::GetHistogram(
      "pcg.iterations", obs::MetricClass::kDeterministic,
      obs::ExponentialBounds(1.0, 2.0, 12));
  static obs::Histogram& residual = obs::GetHistogram(
      "pcg.relative_residual", obs::MetricClass::kDeterministic,
      obs::ExponentialBounds(1e-14, 10.0, 12));
  solves.add();
  iterationsTotal.add(static_cast<std::uint64_t>(result.iterations));
  (result.converged ? converged : stalled).add();
  iterations.record(static_cast<double>(result.iterations));
  residual.record(result.relativeResidual);
}

double Dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// The frozen factor's ridge scale; kept independent of the per-bin
// EstimationOptions so one shared preconditioner serves every solver
// on the system (preconditioner accuracy never changes results, only
// iteration counts).
constexpr double kFrozenRelativeRidge = 1e-10;

}  // namespace

FrozenNormalPreconditioner::FrozenNormalPreconditioner(const CscMatrix& a)
    : m_(a.rows()), factor_(a.rows() * a.rows(), 0.0f) {
  // Unit weights: WeightedGramInto skips w <= 0, so feed explicit
  // ones.  The per-bin weight scale cancels out of the preconditioned
  // iteration, so the unweighted Gram is the natural frozen choice.
  std::vector<double> gram(m_ * m_, 0.0);
  const std::vector<double> ones(a.cols(), 1.0);
  WeightedGramInto(a, ones.data(), gram.data());
  double trace = 0.0;
  for (std::size_t r = 0; r < m_; ++r) trace += gram[r * m_ + r];
  const double ridge =
      std::max(trace, 1.0) * kFrozenRelativeRidge + 1e-30;
  for (std::size_t r = 0; r < m_; ++r) gram[r * m_ + r] += ridge;
  CholeskyFactorInPlace(gram.data(), m_);
  for (std::size_t k = 0; k < gram.size(); ++k) {
    factor_[k] = static_cast<float>(gram[k]);
  }
}

void FrozenNormalPreconditioner::Apply(const double* r, double* s) const {
  const std::size_t n = m_;
  std::copy(r, r + n, s);
  // Forward (Uᵀ y = r) in the row-streaming outer-product form; see
  // CholeskySubstituteInPlace for why this beats the column-strided
  // dot-product form.
  for (std::size_t j = 0; j < n; ++j) {
    const float* __restrict uj = factor_.data() + j * n;
    const double yj = s[j] / static_cast<double>(uj[j]);
    s[j] = yj;
    for (std::size_t i = j + 1; i < n; ++i) {
      s[i] -= static_cast<double>(uj[i]) * yj;
    }
  }
  for (std::size_t i = n; i-- > 0;) {  // backward: U z = y
    const float* __restrict ui = factor_.data() + i * n;
    double acc = s[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      acc -= static_cast<double>(ui[j]) * s[j];
    }
    s[i] = acc / static_cast<double>(ui[i]);
  }
}

NormalPcg::NormalPcg(const CscMatrix& a,
                     const FrozenNormalPreconditioner& preconditioner,
                     double* scratch)
    : a_(a), precond_(preconditioner) {
  ICTM_REQUIRE(preconditioner.dim() == a.rows(),
               "preconditioner dimension mismatch");
  const std::size_t rows = a.rows();
  colNormSq_ = scratch;
  r_ = colNormSq_ + a.cols();
  p_ = r_ + rows;
  q_ = p_ + rows;
  s_ = q_ + rows;
  x_ = s_ + rows;
  // Per-column squared norms, so the per-bin trace (ridge scale) is
  // one pass over the weights instead of over every nonzero.
  const auto& colPtr = a.colPtr();
  const auto& values = a.values();
  for (std::size_t c = 0; c < a.cols(); ++c) {
    double acc = 0.0;
    for (std::size_t k = colPtr[c]; k < colPtr[c + 1]; ++k) {
      acc += values[k] * values[k];
    }
    colNormSq_[c] = acc;
  }
}

void NormalPcg::Apply(const double* weights, double ridge, const double* p,
                      double* q) {
  const auto& colPtr = a_.colPtr();
  const auto& rowIdx = a_.rowIdx();
  const auto& values = a_.values();
  const std::size_t rows = a_.rows();
  const std::size_t cols = a_.cols();
  for (std::size_t i = 0; i < rows; ++i) q[i] = ridge * p[i];
  for (std::size_t c = 0; c < cols; ++c) {
    const double wc = weights[c];
    if (wc <= 0.0) continue;
    double acc = 0.0;
    for (std::size_t k = colPtr[c]; k < colPtr[c + 1]; ++k) {
      acc += values[k] * p[rowIdx[k]];
    }
    const double tc = wc * acc;
    if (tc == 0.0) continue;
    for (std::size_t k = colPtr[c]; k < colPtr[c + 1]; ++k) {
      q[rowIdx[k]] += values[k] * tc;
    }
  }
}

PcgResult NormalPcg::Solve(const double* weights, double relativeRidge,
                           double* d, const PcgOptions& options) {
  const std::size_t rows = a_.rows();
  const std::size_t cols = a_.cols();

  // Ridge scaled by trace(M) = Σ_c w_c·||a_c||², exactly the quantity
  // the direct backends read off the assembled diagonal.
  double trace = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const double wc = weights[c];
    if (wc > 0.0) trace += wc * colNormSq_[c];
  }
  const double ridge = std::max(trace, 1.0) * relativeRidge + 1e-30;

  PcgResult result;
  double bNormSq = 0.0;
  for (std::size_t i = 0; i < rows; ++i) bNormSq += d[i] * d[i];
  if (bNormSq == 0.0) {
    result.converged = true;
    RecordPcgMetrics(result);
    return result;  // d is already the (zero) solution
  }
  const double stop = options.tolerance * std::sqrt(bNormSq);
  const std::size_t maxIter = options.maxIterations > 0
                                  ? options.maxIterations
                                  : 4 * rows + 10;

  // x = 0, r = d, s = P⁻¹ r, p = s.
  std::fill(x_, x_ + rows, 0.0);
  std::copy(d, d + rows, r_);
  precond_.Apply(r_, s_);
  std::copy(s_, s_ + rows, p_);
  double rz = Dot(r_, s_, rows);

  double resNorm = std::sqrt(bNormSq);
  // Stagnation guard: the ridged operator is nearly singular along
  // the redundant-marginal direction, so the residual can floor out
  // above the tolerance; stop once it has not improved for a while.
  // The window must comfortably exceed the plateau sparse-support
  // priors induce (every zero/tiny-weight column contributes an
  // outlier eigenvalue the frozen preconditioner cannot see, and CG
  // picks outliers off roughly one per iteration before its final
  // superlinear plunge) — a tight guard here aborts mid-plateau with
  // the residual still at O(1).
  double bestNorm = resNorm;
  std::size_t sinceImproved = 0;
  const std::size_t stagnationWindow = std::max<std::size_t>(256, rows);

  while (result.iterations < maxIter) {
    Apply(weights, ridge, p_, q_);
    const double pq = Dot(p_, q_, rows);
    if (!(pq > 0.0)) break;  // breakdown (numerically semi-definite)
    const double alpha = rz / pq;
    for (std::size_t i = 0; i < rows; ++i) x_[i] += alpha * p_[i];
    for (std::size_t i = 0; i < rows; ++i) r_[i] -= alpha * q_[i];
    ++result.iterations;

    resNorm = std::sqrt(Dot(r_, r_, rows));
    if (resNorm <= stop) {
      result.converged = true;
      break;
    }
    if (resNorm < 0.5 * bestNorm) {
      bestNorm = resNorm;
      sinceImproved = 0;
    } else if (++sinceImproved >= stagnationWindow) {
      break;  // residual floor reached
    }

    precond_.Apply(r_, s_);
    const double rzNew = Dot(r_, s_, rows);
    if (!(rzNew > 0.0)) break;
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < rows; ++i) p_[i] = s_[i] + beta * p_[i];
  }

  std::copy(x_, x_ + rows, d);
  result.relativeResidual = resNorm / std::sqrt(bNormSq);
  RecordPcgMetrics(result);
  return result;
}

}  // namespace ictm::linalg
