// Singular value decomposition (one-sided Jacobi) and pseudo-inverse.
//
// The TM-estimation pipeline needs Moore–Penrose pseudo-inverses of
// rank-deficient routing matrices (Sec. 6 of the paper), which QR alone
// cannot provide; Jacobi SVD is compact and unconditionally convergent
// at the modest sizes used here.
#pragma once

#include "linalg/matrix.hpp"

namespace ictm::linalg {

/// Result of a thin singular value decomposition A = U * diag(S) * V^T.
///
/// For an m x n input with k = min(m, n):  U is m x k with orthonormal
/// columns, S holds the k singular values sorted descending, and V is
/// n x k with orthonormal columns.
struct SvdResult {
  Matrix u;
  Vector s;
  Matrix v;

  /// Numerical rank: singular values above tol * max(S).
  std::size_t rank(double tol = 1e-12) const;

  /// Reconstructs U * diag(S) * V^T (mainly for tests).
  Matrix reconstruct() const;
};

/// Computes the thin SVD of `a` via the one-sided Jacobi method.
///
/// `maxSweeps` bounds the number of full Jacobi sweeps; convergence is
/// declared when all column pairs are numerically orthogonal.
SvdResult ComputeSvd(const Matrix& a, int maxSweeps = 60);

/// Moore–Penrose pseudo-inverse computed from the SVD; singular values
/// below `tol * max(S)` are treated as zero.
Matrix PseudoInverse(const Matrix& a, double tol = 1e-12);

/// Solves min ||a x - b||_2 with the minimum-norm solution (works for
/// rank-deficient and underdetermined systems).
Vector SolveMinNorm(const Matrix& a, const Vector& b, double tol = 1e-12);

}  // namespace ictm::linalg
