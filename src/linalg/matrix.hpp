// Dense row-major matrix and vector primitives.
//
// This is the numerical substrate for the whole library (the build
// environment has no Eigen).  It is deliberately small: dense double
// storage, value semantics, bounds-checked accessors, and the handful
// of BLAS-1/2/3 style operations the traffic-matrix algorithms need.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "common/error.hpp"

namespace ictm::linalg {

/// Dense vector of doubles.  A plain std::vector is used as the storage
/// type so that callers can interoperate with the standard library; the
/// free functions below provide the numerical operations.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles with value semantics.
///
/// Sizes in this library are modest (at most a few thousand rows), so we
/// favour clarity and bounds safety over blocking/vectorisation tricks.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from a nested initializer list; all rows must
  /// have the same length.  Example: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Returns the n x n identity matrix.
  static Matrix Identity(std::size_t n);

  /// Returns a square matrix with `diag` on the main diagonal.
  static Matrix Diagonal(const Vector& diag);

  /// Builds a matrix whose i-th row is rows[i]; all rows must have the
  /// same length.  An empty argument yields the 0x0 matrix.
  static Matrix FromRows(const std::vector<Vector>& rows);

  /// Builds a column vector matrix (n x 1) from `v`.
  static Matrix FromColumn(const Vector& v);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  /// Total number of elements (rows()*cols()).
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Unchecked element access (row-major).
  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws ictm::Error when out of range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Raw row-major storage (size rows()*cols()).
  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& data() noexcept { return data_; }

  /// Returns a copy of row r.
  Vector row(std::size_t r) const;
  /// Returns a copy of column c.
  Vector col(std::size_t c) const;
  /// Overwrites row r with `v` (v.size() must equal cols()).
  void setRow(std::size_t r, const Vector& v);
  /// Overwrites column c with `v` (v.size() must equal rows()).
  void setCol(std::size_t c, const Vector& v);

  /// Returns the transpose.
  Matrix transposed() const;

  /// Elementwise in-place operations.
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  /// Frobenius norm sqrt(sum of squares).
  double frobeniusNorm() const;
  /// Largest absolute element (0 for the empty matrix).
  double maxAbs() const;
  /// Sum of all elements.
  double sum() const;

  /// Fills every element with `value`.
  void fill(double value);

  /// Extracts the contiguous submatrix of size (rows x cols) starting
  /// at (r0, c0); throws if the block does not fit.
  Matrix block(std::size_t r0, std::size_t c0, std::size_t rows,
               std::size_t cols) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix addition/subtraction; dimensions must match.
Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
/// Scalar multiplication.
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);
/// Matrix product (inner dimensions must agree).
Matrix operator*(const Matrix& a, const Matrix& b);
/// Matrix * vector (v.size() must equal a.cols()).
Vector operator*(const Matrix& a, const Vector& v);
/// Exact elementwise equality (used by tests; prefer AlmostEqual).
bool operator==(const Matrix& a, const Matrix& b);

/// Streams a human-readable rendering (rows on separate lines).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// True when a and b have identical shape and all elements differ by
/// at most `tol` in absolute value.
bool AlmostEqual(const Matrix& a, const Matrix& b, double tol);
bool AlmostEqual(const Vector& a, const Vector& b, double tol);

// ---- BLAS-1 style vector helpers -------------------------------------

/// Dot product; sizes must match.
double Dot(const Vector& a, const Vector& b);
/// Euclidean norm.
double Norm2(const Vector& v);
/// Sum of elements.
double Sum(const Vector& v);
/// Returns a + b elementwise.
Vector Add(const Vector& a, const Vector& b);
/// Returns a - b elementwise.
Vector Sub(const Vector& a, const Vector& b);
/// Returns s * v.
Vector Scale(const Vector& v, double s);
/// y += alpha * x (sizes must match).
void Axpy(double alpha, const Vector& x, Vector& y);
/// Transpose-product A^T * v (v.size() must equal a.rows()).
Vector TransposeTimes(const Matrix& a, const Vector& v);
/// Largest absolute element (0 for empty).
double MaxAbs(const Vector& v);

}  // namespace ictm::linalg
