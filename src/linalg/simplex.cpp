#include "linalg/simplex.hpp"

#include <algorithm>
#include <cmath>

namespace ictm::linalg {

Vector ProjectToSimplex(const Vector& v, double radius) {
  ICTM_REQUIRE(radius > 0.0, "simplex radius must be positive");
  ICTM_REQUIRE(!v.empty(), "cannot project an empty vector");
  // Sort descending and find the threshold tau such that
  // sum max(v_i - tau, 0) = radius.
  Vector u = v;
  std::sort(u.begin(), u.end(), std::greater<double>());
  double cumsum = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    cumsum += u[i];
    const double candidate =
        (cumsum - radius) / static_cast<double>(i + 1);
    if (u[i] - candidate > 0.0) {
      rho = i + 1;
      tau = candidate;
    }
  }
  ICTM_REQUIRE(rho > 0, "simplex projection failed (degenerate input)");
  Vector x(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    x[i] = std::max(v[i] - tau, 0.0);
  return x;
}

Vector NormalizeNonNegative(const Vector& v, double total) {
  ICTM_REQUIRE(total > 0.0, "normalisation total must be positive");
  ICTM_REQUIRE(!v.empty(), "cannot normalise an empty vector");
  Vector x(v.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    x[i] = std::max(v[i], 0.0);
    sum += x[i];
  }
  if (sum <= 0.0) {
    // Degenerate: fall back to uniform.
    const double uniform = total / static_cast<double>(v.size());
    std::fill(x.begin(), x.end(), uniform);
    return x;
  }
  const double scale = total / sum;
  for (double& xi : x) xi *= scale;
  return x;
}

}  // namespace ictm::linalg
