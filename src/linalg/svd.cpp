#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ictm::linalg {

std::size_t SvdResult::rank(double tol) const {
  if (s.empty()) return 0;
  const double cutoff = tol * s.front();
  std::size_t r = 0;
  for (double sv : s) {
    if (sv > cutoff && sv > 0.0) ++r;
  }
  return r;
}

Matrix SvdResult::reconstruct() const {
  Matrix us = u;
  for (std::size_t j = 0; j < s.size(); ++j) {
    for (std::size_t i = 0; i < us.rows(); ++i) us(i, j) *= s[j];
  }
  return us * v.transposed();
}

namespace {

// One-sided Jacobi on the columns of `w` (m x n, m >= n).  On return the
// columns of w are U*S and `v` accumulates the right rotations.
void JacobiSweepLoop(Matrix& w, Matrix& v, int maxSweeps) {
  const std::size_t n = w.cols();
  const std::size_t m = w.rows();
  const double eps = 1e-15;

  for (int sweep = 0; sweep < maxSweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Compute the 2x2 Gram entries for columns p and q.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (std::fabs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        rotated = true;
        // Jacobi rotation annihilating the (p,q) Gram entry.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }
}

}  // namespace

SvdResult ComputeSvd(const Matrix& a, int maxSweeps) {
  ICTM_REQUIRE(!a.empty(), "SVD of an empty matrix");
  // Work on A (or A^T when wide) so that rows >= cols.
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? a.transposed() : a;
  const std::size_t n = w.cols();
  Matrix v = Matrix::Identity(n);

  JacobiSweepLoop(w, v, maxSweeps);

  // Column norms are the singular values.
  Vector s(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i)
      norm = std::hypot(norm, w(i, j));
    s[j] = norm;
  }

  // Sort descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return s[i] > s[j]; });

  Matrix u(w.rows(), n, 0.0);
  Matrix vSorted(n, n, 0.0);
  Vector sSorted(n, 0.0);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t src = order[jj];
    sSorted[jj] = s[src];
    for (std::size_t i = 0; i < n; ++i) vSorted(i, jj) = v(i, src);
    if (s[src] > 0.0) {
      for (std::size_t i = 0; i < w.rows(); ++i)
        u(i, jj) = w(i, src) / s[src];
    }
  }

  SvdResult out;
  if (transposed) {
    // a = (w)^T = (U S V^T)^T = V S U^T.
    out.u = std::move(vSorted);
    out.v = std::move(u);
  } else {
    out.u = std::move(u);
    out.v = std::move(vSorted);
  }
  out.s = std::move(sSorted);
  return out;
}

Matrix PseudoInverse(const Matrix& a, double tol) {
  const SvdResult svd = ComputeSvd(a);
  const double cutoff =
      svd.s.empty() ? 0.0 : tol * std::max(svd.s.front(), 0.0);
  // pinv(A) = V * diag(1/s) * U^T over the retained spectrum.
  Matrix vs = svd.v;  // n x k
  for (std::size_t j = 0; j < svd.s.size(); ++j) {
    const double inv = svd.s[j] > cutoff && svd.s[j] > 0.0
                           ? 1.0 / svd.s[j]
                           : 0.0;
    for (std::size_t i = 0; i < vs.rows(); ++i) vs(i, j) *= inv;
  }
  return vs * svd.u.transposed();
}

Vector SolveMinNorm(const Matrix& a, const Vector& b, double tol) {
  ICTM_REQUIRE(b.size() == a.rows(), "rhs length mismatch in SolveMinNorm");
  const SvdResult svd = ComputeSvd(a);
  const double cutoff =
      svd.s.empty() ? 0.0 : tol * std::max(svd.s.front(), 0.0);
  // x = V diag(1/s) U^T b over the retained spectrum.
  Vector utb = TransposeTimes(svd.u, b);
  for (std::size_t j = 0; j < svd.s.size(); ++j) {
    utb[j] = (svd.s[j] > cutoff && svd.s[j] > 0.0) ? utb[j] / svd.s[j] : 0.0;
  }
  return svd.v * utb;
}

}  // namespace ictm::linalg
