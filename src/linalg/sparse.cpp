#include "linalg/sparse.hpp"

#include <algorithm>

namespace ictm::linalg {

namespace {

// Shared assembly for both compressed layouts: sorts (major, minor)
// pairs, sums duplicates, drops exact zeros, and fills the three
// compressed arrays.  `major(t)`/`minor(t)` select which triplet field
// is the compressed dimension.
template <typename MajorFn, typename MinorFn>
void Compress(std::size_t majorCount, std::size_t majorBound,
              std::size_t minorBound, std::vector<Triplet>& entries,
              MajorFn major, MinorFn minor, std::vector<std::size_t>& ptr,
              std::vector<std::size_t>& idx, std::vector<double>& values) {
  for (const Triplet& t : entries) {
    ICTM_REQUIRE(major(t) < majorBound && minor(t) < minorBound,
                 "triplet index out of range");
  }
  std::sort(entries.begin(), entries.end(),
            [&](const Triplet& a, const Triplet& b) {
              if (major(a) != major(b)) return major(a) < major(b);
              return minor(a) < minor(b);
            });

  ptr.assign(majorCount + 1, 0);
  idx.clear();
  values.clear();
  idx.reserve(entries.size());
  values.reserve(entries.size());
  std::size_t i = 0;
  for (std::size_t m = 0; m < majorCount; ++m) {
    while (i < entries.size() && major(entries[i]) == m) {
      const std::size_t mi = minor(entries[i]);
      double acc = 0.0;
      while (i < entries.size() && major(entries[i]) == m &&
             minor(entries[i]) == mi) {
        acc += entries[i].value;
        ++i;
      }
      if (acc != 0.0) {
        idx.push_back(mi);
        values.push_back(acc);
      }
    }
    ptr[m + 1] = idx.size();
  }
}

}  // namespace

// ---- CsrMatrix -------------------------------------------------------

CsrMatrix CsrMatrix::FromDense(const Matrix& m) {
  CsrMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  out.rowPtr_.assign(m.rows() + 1, 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double v = m(r, c);
      if (v != 0.0) {
        out.colIdx_.push_back(c);
        out.values_.push_back(v);
      }
    }
    out.rowPtr_[r + 1] = out.colIdx_.size();
  }
  return out;
}

CsrMatrix CsrMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> entries) {
  CsrMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  Compress(
      rows, rows, cols, entries, [](const Triplet& t) { return t.row; },
      [](const Triplet& t) { return t.col; }, out.rowPtr_, out.colIdx_,
      out.values_);
  return out;
}

Vector CsrMatrix::Multiply(const Vector& x) const {
  ICTM_REQUIRE(x.size() == cols_, "SpMV dimension mismatch");
  Vector y(rows_, 0.0);
  MultiplyInto(x.data(), y.data());
  return y;
}

void CsrMatrix::MultiplyInto(const double* x, double* y) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      acc += values_[k] * x[colIdx_[k]];
    }
    y[r] = acc;
  }
}

Vector CsrMatrix::TransposeMultiply(const Vector& x) const {
  ICTM_REQUIRE(x.size() == rows_, "SpMV dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      y[colIdx_[k]] += values_[k] * xr;
    }
  }
  return y;
}

Matrix CsrMatrix::ToDense() const {
  Matrix m(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      m(r, colIdx_[k]) = values_[k];
    }
  }
  return m;
}

// ---- CscMatrix -------------------------------------------------------

CscMatrix CscMatrix::FromDense(const Matrix& m) {
  CscMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  out.colPtr_.assign(m.cols() + 1, 0);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      const double v = m(r, c);
      if (v != 0.0) {
        out.rowIdx_.push_back(r);
        out.values_.push_back(v);
      }
    }
    out.colPtr_[c + 1] = out.rowIdx_.size();
  }
  return out;
}

CscMatrix CscMatrix::FromCsr(const CsrMatrix& m) {
  std::vector<Triplet> entries;
  entries.reserve(m.nonZeros());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
      entries.push_back({r, m.colIdx()[k], m.values()[k]});
    }
  }
  return FromTriplets(m.rows(), m.cols(), std::move(entries));
}

CscMatrix CscMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                  std::vector<Triplet> entries) {
  CscMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  Compress(
      cols, cols, rows, entries, [](const Triplet& t) { return t.col; },
      [](const Triplet& t) { return t.row; }, out.colPtr_, out.rowIdx_,
      out.values_);
  return out;
}

Vector CscMatrix::Multiply(const Vector& x) const {
  ICTM_REQUIRE(x.size() == cols_, "SpMV dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    if (xc == 0.0) continue;
    for (std::size_t k = colPtr_[c]; k < colPtr_[c + 1]; ++k) {
      y[rowIdx_[k]] += values_[k] * xc;
    }
  }
  return y;
}

Vector CscMatrix::TransposeMultiply(const Vector& x) const {
  ICTM_REQUIRE(x.size() == rows_, "SpMV dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    double acc = 0.0;
    for (std::size_t k = colPtr_[c]; k < colPtr_[c + 1]; ++k) {
      acc += values_[k] * x[rowIdx_[k]];
    }
    y[c] = acc;
  }
  return y;
}

Matrix CscMatrix::ToDense() const {
  Matrix m(rows_, cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t k = colPtr_[c]; k < colPtr_[c + 1]; ++k) {
      m(rowIdx_[k], c) = values_[k];
    }
  }
  return m;
}

// ---- kernels ---------------------------------------------------------

Matrix WeightedGram(const CscMatrix& a, const Vector& w) {
  ICTM_REQUIRE(w.size() == a.cols(), "weight length mismatch");
  Matrix m(a.rows(), a.rows(), 0.0);
  WeightedGramInto(a, w.data(), m.data().data());
  // The kernel writes only the upper triangle; mirror it to honour
  // this function's full-matrix contract.
  for (std::size_t r = 1; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < r; ++c) m(r, c) = m(c, r);
  }
  return m;
}

void WeightedGramInto(const CscMatrix& a, const double* w, double* out) {
  const std::size_t rows = a.rows();
  std::fill(out, out + rows * rows, 0.0);
  const auto& colPtr = a.colPtr();
  const auto& rowIdx = a.rowIdx();
  const auto& values = a.values();
  // Row indices are strictly increasing within a column, so starting
  // the inner sweep at k1 emits exactly the upper-triangle (row <=
  // col) products — half the work, and all the downstream Cholesky
  // reads.
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const double wc = w[c];
    if (wc <= 0.0) continue;
    const std::size_t lo = colPtr[c];
    const std::size_t hi = colPtr[c + 1];
    for (std::size_t k1 = lo; k1 < hi; ++k1) {
      const double wv1 = wc * values[k1];
      double* row = out + rowIdx[k1] * rows;
      for (std::size_t k2 = k1; k2 < hi; ++k2) {
        row[rowIdx[k2]] += wv1 * values[k2];
      }
    }
  }
}

}  // namespace ictm::linalg
