// Sparse matrix primitives for the TM-estimation hot path.
//
// Routing matrices are extremely sparse — a link-path column holds the
// few links on one OD pair's shortest path(s), so densities sit around
// 2/links.  The estimation pipeline (core/estimation.hpp) therefore
// stores the link system in compressed form and runs its kernels
// (SpMV for link loads, A·diag(w)·Aᵀ for the tomogravity normal
// matrix) off the compressed arrays instead of scanning dense zeros.
//
// Two layouts are provided: CSR (row-compressed, natural for per-link
// SpMV) and CSC (column-compressed, natural for per-OD-pair kernels).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace ictm::linalg {

/// One explicit entry of a sparse matrix under assembly.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix of doubles.
///
/// Row r's entries live in [rowPtr()[r], rowPtr()[r+1]) of the
/// colIdx()/values() arrays, with column indices strictly increasing
/// inside a row.  Explicit zeros are dropped at construction.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compresses a dense matrix, dropping exact zeros.
  static CsrMatrix FromDense(const Matrix& m);

  /// Assembles from (row, col, value) entries in any order; duplicate
  /// positions are summed and resulting exact zeros dropped.
  static CsrMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> entries);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nonZeros() const noexcept { return values_.size(); }

  /// SpMV y = A x.
  Vector Multiply(const Vector& x) const;
  /// SpMV off raw buffers: x has cols() elements, y gets rows()
  /// elements (overwritten).  Lets callers feed matrix views (e.g. a
  /// TrafficMatrixSeries bin) without copying into a Vector first.
  void MultiplyInto(const double* x, double* y) const;
  /// y = Aᵀ x (x has rows() elements).
  Vector TransposeMultiply(const Vector& x) const;

  /// Expands back to dense (tests / interop with the dense solvers).
  Matrix ToDense() const;

  const std::vector<std::size_t>& rowPtr() const noexcept { return rowPtr_; }
  const std::vector<std::size_t>& colIdx() const noexcept { return colIdx_; }
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rowPtr_{0};
  std::vector<std::size_t> colIdx_;
  std::vector<double> values_;
};

/// Compressed-sparse-column matrix of doubles (the transpose layout of
/// CsrMatrix; same invariants per column).
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Compresses a dense matrix, dropping exact zeros.
  static CscMatrix FromDense(const Matrix& m);

  /// Re-compresses a CSR matrix column-wise.
  static CscMatrix FromCsr(const CsrMatrix& m);

  /// Assembles from (row, col, value) entries in any order; duplicate
  /// positions are summed and resulting exact zeros dropped.
  static CscMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> entries);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nonZeros() const noexcept { return values_.size(); }

  /// SpMV y = A x.
  Vector Multiply(const Vector& x) const;
  /// y = Aᵀ x (x has rows() elements).
  Vector TransposeMultiply(const Vector& x) const;

  /// Expands back to dense.
  Matrix ToDense() const;

  const std::vector<std::size_t>& colPtr() const noexcept { return colPtr_; }
  const std::vector<std::size_t>& rowIdx() const noexcept { return rowIdx_; }
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> colPtr_{0};
  std::vector<std::size_t> rowIdx_;
  std::vector<double> values_;
};

/// Weighted Gram matrix A·diag(w)·Aᵀ as a dense (rows x rows) matrix —
/// the tomogravity normal matrix R·diag(xp)·Rᵀ.  Cost is
/// sum over columns of nnz(col)² instead of rows²·cols; columns whose
/// weight is <= 0 are skipped (matching the prior-support convention of
/// the estimation pipeline).  `w` has a.cols() elements.
Matrix WeightedGram(const CscMatrix& a, const Vector& w);

/// Same kernel writing into a caller-owned row-major buffer of
/// a.rows()² doubles (overwritten), so per-bin callers can reuse one
/// allocation across thousands of solves.  Only the upper triangle
/// (row <= col) is written — the matrix is symmetric and the Cholesky
/// consumer reads nothing below the diagonal; the rest is zero-filled.
void WeightedGramInto(const CscMatrix& a, const double* w, double* out);

}  // namespace ictm::linalg
