#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/lsq.hpp"

namespace ictm::linalg {

namespace {

// Solves the unconstrained least-squares subproblem restricted to the
// passive set: columns of `a` indexed by `passive`.
Vector SolveOnPassiveSet(const Matrix& a, const Vector& b,
                         const std::vector<std::size_t>& passive) {
  Matrix sub(a.rows(), passive.size());
  for (std::size_t j = 0; j < passive.size(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) sub(i, j) = a(i, passive[j]);
  }
  return SolveLeastSquares(sub, b);
}

}  // namespace

NnlsResult SolveNnls(const Matrix& a, const Vector& b,
                     const NnlsOptions& options) {
  ICTM_REQUIRE(a.rows() == b.size(), "rhs length mismatch in NNLS");
  const std::size_t n = a.cols();
  const std::size_t maxIter =
      options.maxIterations > 0 ? options.maxIterations : 10 * n + 10;

  NnlsResult result;
  result.x.assign(n, 0.0);
  result.iterations = 0;
  result.converged = false;

  std::vector<bool> inPassive(n, false);
  std::vector<std::size_t> passive;

  // Gradient of 1/2||Ax-b||^2 is A^T(Ax - b); we track w = A^T(b - Ax).
  Vector residual = b;  // b - A*0
  while (result.iterations < maxIter) {
    ++result.iterations;
    Vector w = TransposeTimes(a, residual);

    // Pick the most positive gradient among active (zero) variables.
    std::size_t best = n;
    double bestW = options.tolerance;
    for (std::size_t j = 0; j < n; ++j) {
      if (!inPassive[j] && w[j] > bestW) {
        bestW = w[j];
        best = j;
      }
    }
    if (best == n) {
      result.converged = true;  // dual feasible: done
      break;
    }
    inPassive[best] = true;
    passive.push_back(best);

    // Inner loop: solve on the passive set; move variables that go
    // non-positive back to the active set.
    while (true) {
      Vector z = SolveOnPassiveSet(a, b, passive);
      bool allPositive = true;
      for (double zj : z) {
        if (zj <= 0.0) {
          allPositive = false;
          break;
        }
      }
      if (allPositive) {
        for (std::size_t j = 0; j < passive.size(); ++j)
          result.x[passive[j]] = z[j];
        break;
      }
      // Step as far as possible along (z - x) while staying feasible.
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < passive.size(); ++j) {
        if (z[j] <= 0.0) {
          const double xj = result.x[passive[j]];
          const double denom = xj - z[j];
          if (denom > 0.0) alpha = std::min(alpha, xj / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (std::size_t j = 0; j < passive.size(); ++j) {
        const std::size_t col = passive[j];
        result.x[col] += alpha * (z[j] - result.x[col]);
      }
      // Drop variables that hit (or numerically cross) zero.
      std::vector<std::size_t> kept;
      kept.reserve(passive.size());
      for (std::size_t col : passive) {
        if (result.x[col] > 1e-14) {
          kept.push_back(col);
        } else {
          result.x[col] = 0.0;
          inPassive[col] = false;
        }
      }
      passive = std::move(kept);
      if (passive.empty()) break;
    }

    residual = Sub(b, a * result.x);
  }

  result.residualNorm = Norm2(Sub(b, a * result.x));
  return result;
}

}  // namespace ictm::linalg
