#include "linalg/lsq.hpp"

#include <cmath>

#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace ictm::linalg {

Vector SolveLeastSquares(const Matrix& a, const Vector& b) {
  ICTM_REQUIRE(a.rows() == b.size(), "rhs length mismatch");
  if (a.rows() >= a.cols()) {
    HouseholderQR qr(a);
    if (qr.rank() == a.cols()) {
      return qr.solve(b);
    }
  }
  return SolveMinNorm(a, b);
}

Vector SolveWeightedLeastSquares(const Matrix& a, const Vector& b,
                                 const Vector& weights) {
  ICTM_REQUIRE(a.rows() == b.size(), "rhs length mismatch");
  ICTM_REQUIRE(a.rows() == weights.size(), "weight length mismatch");
  Matrix wa = a;
  Vector wb = b;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ICTM_REQUIRE(weights[i] >= 0.0, "negative weight");
    const double sw = std::sqrt(weights[i]);
    for (std::size_t j = 0; j < a.cols(); ++j) wa(i, j) *= sw;
    wb[i] *= sw;
  }
  return SolveLeastSquares(wa, wb);
}

Vector SolveRidge(const Matrix& a, const Vector& b, double lambda) {
  ICTM_REQUIRE(lambda > 0.0, "ridge parameter must be positive");
  ICTM_REQUIRE(a.rows() == b.size(), "rhs length mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // Augmented system [A; sqrt(lambda) I] x = [b; 0].
  Matrix aug(m + n, n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) aug(i, j) = a(i, j);
  const double sl = std::sqrt(lambda);
  for (std::size_t j = 0; j < n; ++j) aug(m + j, j) = sl;
  Vector bAug(m + n, 0.0);
  for (std::size_t i = 0; i < m; ++i) bAug[i] = b[i];
  HouseholderQR qr(aug);
  return qr.solve(bAug);
}

double ResidualNorm(const Matrix& a, const Vector& x, const Vector& b) {
  return Norm2(Sub(a * x, b));
}

Matrix CholeskyUpper(const Matrix& a) {
  ICTM_REQUIRE(a.rows() == a.cols(), "Cholesky of a non-square matrix");
  const std::size_t n = a.rows();
  Matrix u(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < i; ++k) acc -= u(k, i) * u(k, j);
      if (i == j) {
        ICTM_REQUIRE(acc > 0.0,
                     "matrix is not positive definite in Cholesky");
        u(i, i) = std::sqrt(acc);
      } else {
        u(i, j) = acc / u(i, i);
      }
    }
  }
  return u;
}

Vector ForwardSubstituteTranspose(const Matrix& u, const Vector& b) {
  ICTM_REQUIRE(u.rows() == u.cols(), "triangular matrix must be square");
  ICTM_REQUIRE(b.size() == u.rows(), "rhs length mismatch");
  const std::size_t n = u.rows();
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= u(k, i) * y[k];
    ICTM_REQUIRE(u(i, i) != 0.0, "singular triangular matrix");
    y[i] = acc / u(i, i);
  }
  return y;
}

}  // namespace ictm::linalg
