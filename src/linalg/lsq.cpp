#include "linalg/lsq.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/nnls.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace ictm::linalg {

Vector SolveLeastSquares(const Matrix& a, const Vector& b) {
  ICTM_REQUIRE(a.rows() == b.size(), "rhs length mismatch");
  if (a.rows() >= a.cols()) {
    HouseholderQR qr(a);
    if (qr.rank() == a.cols()) {
      return qr.solve(b);
    }
  }
  return SolveMinNorm(a, b);
}

Vector SolveWeightedLeastSquares(const Matrix& a, const Vector& b,
                                 const Vector& weights) {
  ICTM_REQUIRE(a.rows() == b.size(), "rhs length mismatch");
  ICTM_REQUIRE(a.rows() == weights.size(), "weight length mismatch");
  Matrix wa = a;
  Vector wb = b;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ICTM_REQUIRE(weights[i] >= 0.0, "negative weight");
    const double sw = std::sqrt(weights[i]);
    for (std::size_t j = 0; j < a.cols(); ++j) wa(i, j) *= sw;
    wb[i] *= sw;
  }
  return SolveLeastSquares(wa, wb);
}

Vector SolveRidge(const Matrix& a, const Vector& b, double lambda) {
  ICTM_REQUIRE(lambda > 0.0, "ridge parameter must be positive");
  ICTM_REQUIRE(a.rows() == b.size(), "rhs length mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // Augmented system [A; sqrt(lambda) I] x = [b; 0].
  Matrix aug(m + n, n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) aug(i, j) = a(i, j);
  const double sl = std::sqrt(lambda);
  for (std::size_t j = 0; j < n; ++j) aug(m + j, j) = sl;
  Vector bAug(m + n, 0.0);
  for (std::size_t i = 0; i < m; ++i) bAug[i] = b[i];
  HouseholderQR qr(aug);
  return qr.solve(bAug);
}

double ResidualNorm(const Matrix& a, const Vector& x, const Vector& b) {
  return Norm2(Sub(a * x, b));
}

Matrix CholeskyUpper(const Matrix& a) {
  ICTM_REQUIRE(a.rows() == a.cols(), "Cholesky of a non-square matrix");
  const std::size_t n = a.rows();
  Matrix u(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < i; ++k) acc -= u(k, i) * u(k, j);
      if (i == j) {
        ICTM_REQUIRE(acc > 0.0,
                     "matrix is not positive definite in Cholesky");
        u(i, i) = std::sqrt(acc);
      } else {
        u(i, j) = acc / u(i, i);
      }
    }
  }
  return u;
}

void CholeskyFactorInPlace(double* m, std::size_t n) {
  // Factors the upper triangle in place (Uᵀ U = m) in right-looking
  // form: the inner update — row i minus a multiple of row k, both
  // contiguous — is a branch-free axpy the compiler vectorises,
  // unlike the serial reductions of the textbook dot-product form.
  // Rank-4 blocking fuses four pivot sweeps of the bandwidth-bound
  // trailing submatrix into one pass.
  std::size_t k = 0;
  for (; k + 3 < n; k += 4) {
    for (std::size_t kk = k; kk < k + 4; ++kk) {
      double* __restrict ukRow = m + kk * n;
      for (std::size_t p = k; p < kk; ++p) {
        const double* __restrict up = m + p * n;
        const double c = up[kk];
        for (std::size_t j = kk; j < n; ++j) ukRow[j] -= c * up[j];
      }
      ICTM_REQUIRE(ukRow[kk] > 0.0,
                   "matrix is not positive definite in Cholesky");
      const double diag = std::sqrt(ukRow[kk]);
      ukRow[kk] = diag;
      const double inv = 1.0 / diag;
      for (std::size_t j = kk + 1; j < n; ++j) ukRow[j] *= inv;
    }
    const double* __restrict u0 = m + k * n;
    const double* __restrict u1 = m + (k + 1) * n;
    const double* __restrict u2 = m + (k + 2) * n;
    const double* __restrict u3 = m + (k + 3) * n;
    for (std::size_t i = k + 4; i < n; ++i) {
      const double a = u0[i], b = u1[i], c = u2[i], e = u3[i];
      double* __restrict ui = m + i * n;
      for (std::size_t j = i; j < n; ++j) {
        ui[j] -= a * u0[j] + b * u1[j] + c * u2[j] + e * u3[j];
      }
    }
  }
  for (; k < n; ++k) {  // remainder rows (n mod 4)
    double* __restrict uk = m + k * n;
    ICTM_REQUIRE(uk[k] > 0.0, "matrix is not positive definite in Cholesky");
    const double ukk = std::sqrt(uk[k]);
    uk[k] = ukk;
    const double inv = 1.0 / ukk;
    for (std::size_t j = k + 1; j < n; ++j) uk[j] *= inv;
    for (std::size_t i = k + 1; i < n; ++i) {
      const double uki = uk[i];
      double* __restrict ui = m + i * n;
      for (std::size_t j = i; j < n; ++j) ui[j] -= uki * uk[j];
    }
  }
}

void CholeskySubstituteInPlace(const double* m, double* d,
                               std::size_t n) {
  // Forward (Uᵀ y = d) in outer-product form: after y[j] is final,
  // subtract its contribution from every later entry using row j of
  // U — contiguous and vectorisable, unlike the column-strided
  // dot-product form.  Each d[i] still accumulates its subtractions
  // in ascending-j order, so the floating-point result is identical.
  for (std::size_t j = 0; j < n; ++j) {
    const double* __restrict uj = m + j * n;
    const double yj = d[j] / uj[j];
    d[j] = yj;
    for (std::size_t i = j + 1; i < n; ++i) d[i] -= uj[i] * yj;
  }
  for (std::size_t i = n; i-- > 0;) {  // backward: U z = y
    const double* ui = m + i * n;
    double acc = d[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= ui[j] * d[j];
    d[i] = acc / ui[i];
  }
}

void CholeskySolveInPlace(double* m, double* d, std::size_t n) {
  CholeskyFactorInPlace(m, n);
  CholeskySubstituteInPlace(m, d, n);
}

Vector SolveGramNnls(Matrix gram, const Vector& rhs) {
  ICTM_REQUIRE(gram.rows() == gram.cols(), "Gram matrix must be square");
  ICTM_REQUIRE(rhs.size() == gram.rows(), "rhs length mismatch");
  const std::size_t n = gram.rows();
  double maxDiag = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    maxDiag = std::max(maxDiag, gram(i, i));
  const double ridge = std::max(maxDiag, 1.0) * 1e-12;
  for (std::size_t i = 0; i < n; ++i) gram(i, i) += ridge;

  const Matrix u = CholeskyUpper(gram);
  const Vector b = ForwardSubstituteTranspose(u, rhs);

  // Fast path: back-substitute U x = b and accept when feasible.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= u(ii, j) * x[j];
    x[ii] = acc / u(ii, ii);
  }
  for (double xi : x) {
    if (xi < 0.0) return SolveNnls(u, b).x;
  }
  return x;
}

Vector ForwardSubstituteTranspose(const Matrix& u, const Vector& b) {
  ICTM_REQUIRE(u.rows() == u.cols(), "triangular matrix must be square");
  ICTM_REQUIRE(b.size() == u.rows(), "rhs length mismatch");
  const std::size_t n = u.rows();
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= u(k, i) * y[k];
    ICTM_REQUIRE(u(i, i) != 0.0, "singular triangular matrix");
    y[i] = acc / u(i, i);
  }
  return y;
}

}  // namespace ictm::linalg
