// Sparse Cholesky factorization of the weighted normal operator
// M = A·diag(w)·Aᵀ for a fixed sparse A whose weights change per solve.
//
// The TM-estimation hot loop factors the same *pattern* thousands of
// times — once per time bin — with only the prior weights w varying.
// The expensive, weight-independent work is therefore hoisted into an
// immutable SparseNormalAnalysis computed once per augmented system:
//
//   1. the nonzero pattern of M (each column c of A couples its rows
//      pairwise — a clique per OD pair),
//   2. a fill-reducing ordering (greedy minimum degree with a
//      dense-tail cutoff: once the uneliminated vertices form a
//      clique — which the 2n marginal rows always do eventually — the
//      remainder is ordered as a dense trailing block),
//   3. the symbolic factor L (column patterns recorded during the
//      elimination simulation, plus the transpose row lists the
//      numeric left-looking sweep consumes),
//   4. an assembly scatter map: for every pair of rows sharing an
//      A-column, the destination slot in the packed values of
//      lower(M) and the weight-independent product v₁·v₂, grouped by
//      A-column so one weight load covers the whole clique.
//
// Any number of SparseNormalSolver instances (one per worker thread)
// then assemble, factor and solve against the shared analysis with
// zero allocations per bin.  Every step is a fixed sequence of
// floating-point operations, so results are bit-identical regardless
// of which thread runs them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/sparse.hpp"

namespace ictm::linalg {

/// Weight-independent analysis of M = A·diag(w)·Aᵀ: pattern,
/// fill-reducing ordering, symbolic factor and assembly scatter map.
/// Immutable after construction and safe to share across threads.
class SparseNormalAnalysis {
 public:
  /// Analyses the operator for the given A (CSC, rows x cols).
  explicit SparseNormalAnalysis(const CscMatrix& a);

  /// Dimension m of M (= a.rows()).
  std::size_t dim() const noexcept { return m_; }
  /// Stored nonzeros of lower(M) in the permuted layout.
  std::size_t normalNonZeros() const noexcept { return mi_.size(); }
  /// Nonzeros of the factor L strictly below the diagonal.
  std::size_t factorNonZeros() const noexcept { return li_.size(); }

 private:
  friend class SparseNormalSolver;

  std::size_t m_ = 0;

  // Fill-reducing permutation: perm_[original] = elimination position,
  // iperm_[position] = original index.
  std::vector<std::uint32_t> perm_, iperm_;

  // lower(M) pattern in permuted coordinates, CSC: column j holds rows
  // >= j (diagonal first).  diagSlot_[j] indexes M-values storage.
  std::vector<std::uint32_t> mp_, mi_, diagSlot_;

  // Symbolic factor, CSC, strictly-below-diagonal rows sorted
  // ascending per column.
  std::vector<std::uint32_t> lp_, li_;
  // Transpose row lists for the left-looking sweep: for row j, the
  // (column k, offset into li_/L-values) pairs with L[j,k] != 0,
  // ascending in k.
  std::vector<std::uint32_t> up_, ucol_, uoff_;

  // Assembly scatter map grouped by A-column: pairs
  // [colPairPtr_[c], colPairPtr_[c+1]) scatter w_c * pairProd_ into
  // M-values slot pairSlot_.
  std::vector<std::size_t> colPairPtr_;
  std::vector<std::uint32_t> pairSlot_;
  std::vector<double> pairProd_;
};

/// Per-thread numeric workspace bound to a shared analysis: assembles
/// the weighted normal matrix, factors it and solves, reusing the same
/// caller-provided scratch (e.g. a workspace-arena slice) for every
/// bin — no allocations after construction.
class SparseNormalSolver {
 public:
  /// Doubles of scratch a solver for `analysis` needs.
  static std::size_t RequiredScratch(const SparseNormalAnalysis& analysis) {
    return analysis.normalNonZeros() + analysis.factorNonZeros() +
           3 * analysis.dim();
  }

  /// Binds to `analysis` and carves its buffers out of `scratch`
  /// (RequiredScratch(analysis) doubles); both must outlive the
  /// solver.
  SparseNormalSolver(const SparseNormalAnalysis& analysis,
                     double* scratch);

  /// Assembles M = A·diag(w)·Aᵀ (skipping columns with w <= 0, like
  /// WeightedGramInto), adds ridge = max(trace(M), 1)·relativeRidge +
  /// 1e-30 to the diagonal, and factors.  Throws when the ridged
  /// matrix is not numerically positive definite.
  void Factor(const double* weights, double relativeRidge);

  /// Solves M z = d using the last Factor(), overwriting `d` (dim()
  /// elements) with z.
  void Solve(double* d) const;

 private:
  const SparseNormalAnalysis& a_;
  double* mvals_;  // packed lower(M) values
  double* ld_;     // diagonal of L
  double* lv_;     // strictly-lower values of L
  double* work_;   // factor accumulator (kept all-zero between bins)
  double* rhs_;    // permuted right-hand side of Solve
};

}  // namespace ictm::linalg
