// A measurement study in miniature (paper Secs. 5.2-5.4).
//
// Plays the role of the researcher: measure f directly from packet
// header traces on an instrumented link pair, fit IC parameters from
// netflow-derived TMs, characterise the preference distribution, and
// cross-validate the two views of f.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "conngen/fmeasure.hpp"
#include "conngen/packet_trace.hpp"
#include "core/fit.hpp"
#include "dataset/datasets.hpp"
#include "stats/fitting.hpp"
#include "stats/summary.hpp"
#include "timeseries/diurnal.hpp"

using namespace ictm;

int main() {
  // --- Part 1: packet-trace view of f (Sec. 5.2) ----------------------
  std::printf("[1] measuring f from a 2-hour bidirectional packet "
              "trace\n");
  conngen::TraceSimConfig traceCfg;
  traceCfg.durationSec = 3600.0;
  traceCfg.connectionsPerSec = 15.0;
  stats::Rng traceRng(1);
  const auto trace = conngen::SimulatePacketTraces(traceCfg, traceRng);
  const auto fm = conngen::MeasureForwardFraction(trace, 300.0);
  std::vector<double> fAB;
  for (double v : fm.fAB)
    if (std::isfinite(v)) fAB.push_back(v);
  std::printf("    f(A->B): mean %.3f, range [%.3f, %.3f], unknown "
              "bytes %.1f%%\n",
              stats::Summarize(fAB).mean,
              *std::min_element(fAB.begin(), fAB.end()),
              *std::max_element(fAB.begin(), fAB.end()),
              100.0 * fm.unknownByteFraction);

  // --- Part 2: TM view of f and P (Sec. 5.1/5.3) ----------------------
  std::printf("\n[2] fitting the stable-fP model to a week of "
              "netflow TMs\n");
  dataset::DatasetConfig cfg;
  cfg.seed = 3;
  cfg.peakActivityBytes = 5e7;
  const dataset::Dataset d = dataset::MakeSmallDataset(16, 336, 1800.0, cfg);
  const core::StableFPFit fit = core::FitStableFP(d.measured);
  std::printf("    fitted f = %.3f (trace view said %.3f)\n", fit.f,
              stats::Summarize(fAB).mean);

  // The NNLS fit can drive a node's preference exactly to zero; the
  // lognormal MLE needs strictly positive samples, so study the
  // positive support (as the paper's CCDF plots implicitly do).
  std::vector<double> p;
  for (double v : fit.preference) {
    if (v > 0.0) p.push_back(v);
  }
  const stats::Lognormal ln = stats::FitLognormalMle(p);
  const stats::Exponential ex = stats::FitExponentialMle(p);
  std::printf("    preference tail: lognormal(mu=%.2f, sigma=%.2f) "
              "KS=%.3f vs exponential KS=%.3f\n",
              ln.mu(), ln.sigma(), stats::KsStatistic(p, ln),
              stats::KsStatistic(p, ex));

  // --- Part 3: activity rhythms (Sec. 5.4) ----------------------------
  std::printf("\n[3] activity rhythm of the busiest node\n");
  std::size_t busiest = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < 16; ++i) {
    double mean = 0.0;
    for (std::size_t t = 0; t < fit.activitySeries.cols(); ++t)
      mean += fit.activitySeries(i, t);
    if (mean > best) {
      best = mean;
      busiest = i;
    }
  }
  std::vector<double> series(fit.activitySeries.cols());
  for (std::size_t t = 0; t < series.size(); ++t)
    series[t] = fit.activitySeries(busiest, t);
  const std::size_t binsPerDay = 48;  // 30-min bins
  std::printf("    dominant period: %zu bins (1 day = %zu)\n",
              timeseries::DominantPeriod(series, 24, 72), binsPerDay);
  std::printf("    weekend/weekday ratio: %.2f\n",
              timeseries::WeekendWeekdayRatio(series, binsPerDay));

  std::printf("\nconclusion: both measurement paths agree on f in the "
              "0.2-0.35 band,\npreferences are lognormal-tailed, and "
              "activities carry the diurnal cycle —\nthe Sec. 5 "
              "characterisation reproduced end to end.\n");
  return 0;
}
