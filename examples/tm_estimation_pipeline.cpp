// The operator's TM-estimation workflow (paper Sec. 6.2 scenario).
//
// Week 1: netflow collection is enabled once; the operator fits the
//         stable-fP IC parameters (f, {P_i}) from the measured TMs.
// Week 2: only SNMP is available (link loads + ingress/egress
//         counters).  The stable-fP prior turns the marginals into a
//         full TM prior; tomogravity least squares + IPF refine it.
//
// The same pipeline is run with a gravity prior for comparison.
#include <algorithm>
#include <cstdio>

#include "core/estimation.hpp"
#include "core/fit.hpp"
#include "core/gravity.hpp"
#include "core/metrics.hpp"
#include "core/priors.hpp"
#include "dataset/datasets.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"

using namespace ictm;

int main() {
  // Two weeks of Géant-like traffic (smaller volume for a quick run).
  dataset::DatasetConfig cfg;
  cfg.seed = 7;
  cfg.weeks = 2;
  cfg.peakActivityBytes = 5e7;
  const dataset::Dataset d = dataset::MakeGeantLike(cfg);
  const std::size_t bpw = d.binsPerWeek;
  const auto week1 = d.measured.slice(0, bpw);
  const auto week2 = d.measured.slice(bpw, bpw);

  std::printf("calibration: fitting stable-fP on week 1 (%zu bins)\n",
              week1.binCount());
  const core::StableFPFit fit = core::FitStableFP(week1);
  std::printf("  f = %.3f, %zu sweeps, objective %.1f\n\n", fit.f,
              fit.sweeps, fit.objective());

  // Week 2: SNMP only.  Simulate the measurements.
  const topology::Graph g = topology::MakeGeant22();
  const linalg::Matrix routing = topology::BuildRoutingMatrix(g);
  const core::MarginalSeries margs = core::ExtractMarginals(week2);

  std::printf("estimation: week 2 from link loads + marginals only\n");
  const auto icPrior =
      core::StableFPPrior(fit.f, fit.preference, margs, d.binSeconds);
  const auto gravPrior = core::GravityPriorSeries(margs, d.binSeconds);

  // To keep the example fast, estimate every 8th bin.
  const auto target = week2.downsample(8);
  const auto icPriorDs = icPrior.downsample(8);
  const auto gravPriorDs = gravPrior.downsample(8);

  const auto estIc = core::EstimateSeries(routing, target, icPriorDs);
  const auto estGrav = core::EstimateSeries(routing, target, gravPriorDs);

  const auto icErr = core::RelL2TemporalSeries(target, estIc);
  const auto gravErr = core::RelL2TemporalSeries(target, estGrav);
  std::printf("  mean RelL2, gravity prior:   %.4f\n",
              core::Mean(gravErr));
  std::printf("  mean RelL2, stable-fP prior: %.4f\n",
              core::Mean(icErr));
  std::printf("  improvement: %.1f%%\n",
              core::Mean(core::PercentImprovementSeries(gravErr, icErr)));

  // Where does the improvement come from?  Show the five largest OD
  // flows' per-flow (spatial) errors.
  std::printf("\nper-OD-flow errors (5 largest flows):\n");
  const std::size_t n = target.nodeCount();
  std::vector<std::pair<double, std::pair<std::size_t, std::size_t>>>
      flows;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double volume = 0.0;
      for (std::size_t t = 0; t < target.binCount(); ++t)
        volume += target(t, i, j);
      flows.push_back({volume, {i, j}});
    }
  }
  std::sort(flows.rbegin(), flows.rend());
  std::printf("%8s %8s %14s %14s\n", "origin", "dest", "gravity",
              "stable-fP");
  for (std::size_t k = 0; k < 5; ++k) {
    const auto [i, j] = flows[k].second;
    std::printf("%8s %8s %14.4f %14.4f\n", g.nodeName(i).c_str(),
                g.nodeName(j).c_str(),
                core::RelL2Spatial(target, estGrav, i, j),
                core::RelL2Spatial(target, estIc, i, j));
  }
  return 0;
}
