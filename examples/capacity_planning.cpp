// Capacity planning with synthetic traffic matrices (paper Sec. 5.5).
//
// An operator wants to know how link utilisation on a Géant-like
// backbone responds to "what-if" scenarios.  The IC model's inputs map
// directly onto the questions:
//   - application-mix shift (P2P boom) .......... dial f up,
//   - a service becoming a hot spot ............. concentrate {P_i},
//   - user growth at one PoP .................... scale {A_i(t)}.
//
// For each scenario we synthesise a day of TMs, route them over the
// topology, and report the most-loaded links.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/synthesis.hpp"
#include "topology/routing.hpp"
#include "topology/topologies.hpp"

using namespace ictm;

namespace {

struct LinkLoadReport {
  double maxLoad = 0.0;
  std::size_t maxLink = 0;
  double totalTraffic = 0.0;
};

LinkLoadReport PeakLoads(const topology::Graph& g,
                         const linalg::Matrix& routing,
                         const traffic::TrafficMatrixSeries& tms) {
  LinkLoadReport report;
  for (std::size_t t = 0; t < tms.binCount(); ++t) {
    const linalg::Vector loads =
        topology::ComputeLinkLoads(routing, tms.bin(t));
    for (std::size_t l = 0; l < loads.size(); ++l) {
      if (loads[l] > report.maxLoad) {
        report.maxLoad = loads[l];
        report.maxLink = l;
      }
    }
    report.totalTraffic += tms.total(t);
  }
  (void)g;
  return report;
}

void Report(const char* scenario, const topology::Graph& g,
            const linalg::Matrix& routing,
            const traffic::TrafficMatrixSeries& tms) {
  const LinkLoadReport r = PeakLoads(g, routing, tms);
  const topology::Link& link = g.link(r.maxLink);
  std::printf("%-28s peak link %s->%s at %7.2f GB/bin  (total %7.1f "
              "GB/day)\n",
              scenario, g.nodeName(link.src).c_str(),
              g.nodeName(link.dst).c_str(), r.maxLoad / 1e9,
              r.totalTraffic / 1e9);
}

core::SynthesisConfig BaseConfig() {
  core::SynthesisConfig cfg;
  cfg.nodes = 22;              // matches MakeGeant22()
  cfg.bins = 288;              // one day of 5-minute bins
  cfg.f = 0.25;
  cfg.activityModel.profile.binsPerDay = 288;
  cfg.activityModel.peakLevel = 2e9;
  return cfg;
}

}  // namespace

int main() {
  const topology::Graph g = topology::MakeGeant22();
  const linalg::Matrix routing = topology::BuildRoutingMatrix(g);
  std::printf("Geant-like backbone: %zu PoPs, %zu directed links\n\n",
              g.nodeCount(), g.linkCount());

  // Baseline day.
  stats::Rng rng(2024);
  core::SynthesisConfig cfg = BaseConfig();
  const core::SyntheticTm baseline = core::GenerateSyntheticTm(cfg, rng);
  Report("baseline (f=0.25)", g, routing, baseline.series);

  // Scenario 1: P2P boom — the application mix becomes more
  // symmetric, so more bytes flow initiator->responder.
  {
    stats::Rng r2(2024);
    core::SynthesisConfig s = BaseConfig();
    s.f = 0.42;
    Report("P2P boom (f=0.42)", g, routing,
           core::GenerateSyntheticTm(s, r2).series);
  }

  // Scenario 2: flash crowd — one node's preference grows 10x
  // (synthesise with the baseline parameters, then re-evaluate with a
  // modified preference vector to hold everything else fixed).
  {
    linalg::Vector hot = baseline.preference;
    const std::size_t target =
        std::max_element(hot.begin(), hot.end()) - hot.begin();
    hot[target] *= 10.0;
    const auto series = core::EvaluateStableFP(
        baseline.f, baseline.activitySeries, hot, 300.0);
    std::printf("(flash crowd at PoP '%s')\n",
                g.nodeName(target).c_str());
    Report("flash crowd (P x10)", g, routing, series);
  }

  // Scenario 3: user growth — double the activity of the three
  // smallest PoPs (new customer regions).
  {
    linalg::Matrix act = baseline.activitySeries;
    std::vector<double> mean(act.rows(), 0.0);
    for (std::size_t i = 0; i < act.rows(); ++i)
      for (std::size_t t = 0; t < act.cols(); ++t)
        mean[i] += act(i, t);
    std::vector<std::size_t> order(act.rows());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return mean[a] < mean[b];
              });
    for (std::size_t k = 0; k < 3; ++k)
      for (std::size_t t = 0; t < act.cols(); ++t)
        act(order[k], t) *= 2.0;
    const auto series = core::EvaluateStableFP(
        baseline.f, act, baseline.preference, 300.0);
    Report("edge growth (3 PoPs x2)", g, routing, series);
  }

  std::printf(
      "\nEach dial is a physical quantity (Sec. 5.5): f = application "
      "mix,\n{P_i} = service popularity, {A_i(t)} = user activity.\n");
  return 0;
}
