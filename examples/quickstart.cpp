// Quickstart: the independent-connection (IC) model in five minutes.
//
//  1. build a tiny network's ground-truth TM from the IC model,
//  2. see why the gravity model cannot reproduce it,
//  3. fit IC parameters back from the data alone,
//  4. forecast the TM of a "next day" from marginals only.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/fit.hpp"
#include "core/gravity.hpp"
#include "core/ic_model.hpp"
#include "core/metrics.hpp"
#include "core/priors.hpp"

using namespace ictm;

int main() {
  // --- 1. a 4-node network -------------------------------------------
  // Nodes: campus, datacenter, exchange, regional-ISP.
  // Activity: how many bytes each node's *users* cause (they initiate
  // connections).  Preference: how attractive each node's *services*
  // are (connections respond from there).  f: fraction of connection
  // bytes flowing initiator->responder (0.25 = response-heavy, like
  // Web traffic).
  core::IcParameters truth;
  truth.f = 0.25;
  truth.activity = {8e9, 1e9, 2e9, 5e9};    // campus users dominate
  truth.preference = {0.05, 0.60, 0.25, 0.10};  // datacenter dominates
  const linalg::Matrix tm = core::EvaluateSimplifiedIc(truth);

  const char* names[] = {"campus", "dcenter", "exchange", "isp"};
  std::printf("ground-truth TM (GB per bin):\n%10s", "");
  for (auto* n : names) std::printf("%10s", n);
  std::printf("\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("%10s", names[i]);
    for (std::size_t j = 0; j < 4; ++j)
      std::printf("%10.2f", tm(i, j) / 1e9);
    std::printf("\n");
  }

  // --- 2. gravity gets it wrong ---------------------------------------
  linalg::Vector in(4, 0.0), out(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      in[i] += tm(i, j);
      out[j] += tm(i, j);
    }
  const linalg::Matrix grav = core::GravityPredict(in, out);
  std::printf("\ngravity reconstruction error (RelL2): %.3f\n",
              core::RelL2Temporal(tm, grav));

  // --- 3. fit the IC parameters back from data ------------------------
  // Make a short time series by scaling activities over 12 bins (a
  // "day" of varying load) and fit with the stable-fP solver.
  linalg::Matrix activitySeries(4, 12);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t t = 0; t < 12; ++t)
      activitySeries(i, t) =
          truth.activity[i] * (0.6 + 0.08 * double(t) + 0.03 * double(i));
  const auto series =
      core::EvaluateStableFP(truth.f, activitySeries, truth.preference);

  const core::StableFPFit fit = core::FitStableFP(series);
  std::printf("\nfitted f = %.3f (truth %.3f)\n", fit.f, truth.f);
  std::printf("fitted preference:");
  for (double p : fit.preference) std::printf(" %.3f", p);
  std::printf("\n(truth:            ");
  for (double p : truth.preference) std::printf(" %.3f", p);
  std::printf(")\n");

  // --- 4. forecast from marginals only --------------------------------
  // Next-day marginals arrive from SNMP; the stable-fP prior turns
  // them into a full TM without any flow measurement.
  linalg::Matrix nextActivity(4, 1);
  for (std::size_t i = 0; i < 4; ++i)
    nextActivity(i, 0) = truth.activity[i] * 1.3;  // 30% growth
  const auto nextDay =
      core::EvaluateStableFP(truth.f, nextActivity, truth.preference);
  const core::MarginalSeries margs = core::ExtractMarginals(nextDay);
  const auto forecast =
      core::StableFPPrior(fit.f, fit.preference, margs);
  std::printf("\nnext-day TM forecast error from marginals only: %.4f\n",
              core::RelL2Temporal(nextDay.bin(0), forecast.bin(0)));
  std::printf("(gravity from the same marginals: %.4f)\n",
              core::RelL2Temporal(
                  nextDay.bin(0),
                  core::GravityPredict(nextDay.ingress(0),
                                       nextDay.egress(0))));
  return 0;
}
